lib/report/series.mli:
