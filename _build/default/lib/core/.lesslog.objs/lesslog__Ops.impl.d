lib/core/ops.ml: Cluster Lesslog_id Lesslog_membership Lesslog_prng Lesslog_ptree Lesslog_storage Lesslog_topology List Log Params Pid String
