open Lesslog_id
module Chord = Lesslog_chord.Chord

let pid = Pid.unsafe_of_int
let params m = Params.create ~m ()

let full_ring m = Chord.create (params m) ~live:(Pid.all (params m))

let test_successor_full_ring () =
  let c = full_ring 4 in
  (* Every id is its own successor when all slots are occupied. *)
  for x = 0 to 15 do
    Alcotest.(check int) "self" x (Pid.to_int (Chord.successor c x))
  done

let test_successor_sparse () =
  let c = Chord.create (params 4) ~live:(Test_support.pids [ 1; 5; 12 ]) in
  Alcotest.(check int) "wraps from 13" 1 (Pid.to_int (Chord.successor c 13));
  Alcotest.(check int) "exact" 5 (Pid.to_int (Chord.successor c 5));
  Alcotest.(check int) "between" 5 (Pid.to_int (Chord.successor c 2));
  Alcotest.(check int) "top" 12 (Pid.to_int (Chord.successor c 6))

let test_fingers_full_ring () =
  let c = full_ring 4 in
  (* finger k of n = n + 2^k when the ring is full. *)
  for k = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "finger %d" k)
      ((3 + (1 lsl k)) mod 16)
      (Pid.to_int (Chord.finger c (pid 3) k))
  done

let test_lookup_owner () =
  let c = Chord.create (params 5) ~live:(Test_support.pids [ 0; 7; 13; 21; 30 ]) in
  let r = Chord.lookup c ~from:(pid 0) ~target:15 in
  Alcotest.(check int) "owner" 21 (Pid.to_int r.Chord.owner);
  let r2 = Chord.lookup c ~from:(pid 21) ~target:31 in
  Alcotest.(check int) "wrap owner" 0 (Pid.to_int r2.Chord.owner)

let test_lookup_local () =
  let c = full_ring 4 in
  let r = Chord.lookup c ~from:(pid 5) ~target:5 in
  Alcotest.(check int) "self owner" 5 (Pid.to_int r.Chord.owner);
  Alcotest.(check int) "no hops" 0 r.Chord.hops

let test_lookup_rejects_stranger () =
  let c = Chord.create (params 4) ~live:(Test_support.pids [ 1; 2 ]) in
  Alcotest.check_raises "unknown origin"
    (Invalid_argument "Chord.lookup: unknown origin") (fun () ->
      ignore (Chord.lookup c ~from:(pid 9) ~target:3))

let test_empty_ring_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Chord.create: empty ring")
    (fun () -> ignore (Chord.create (params 4) ~live:[]))

(* --- Properties ------------------------------------------------------- *)

let gen_ring =
  QCheck2.Gen.(
    int_range 3 9 >>= fun m ->
    let space = 1 lsl m in
    int_range 1 space >>= fun n ->
    int_range 0 1_000_000 >>= fun seed ->
    let rng = Lesslog_prng.Rng.create ~seed in
    let live =
      Lesslog_prng.Rng.sample_without_replacement rng ~k:n
        (Array.init space (fun i -> i))
      |> Array.to_list |> List.sort compare
      |> List.map Pid.unsafe_of_int
    in
    int_range 0 (space - 1) >>= fun target ->
    int_range 0 (n - 1) >>= fun from_idx ->
    return (Params.create ~m (), live, target, List.nth live from_idx))

let brute_successor live space x =
  let ids = List.map Pid.to_int live in
  match List.filter (fun id -> id >= x) ids with
  | id :: _ -> id
  | [] -> List.hd ids
  |> fun id -> ignore space; id

let prop_successor_matches_brute =
  Test_support.qcheck_case ~name:"successor = brute force" gen_ring
    (fun (params, live, target, _) ->
      let c = Chord.create params ~live in
      Pid.to_int (Chord.successor c target)
      = brute_successor live (Params.space params) target)

let prop_lookup_finds_owner =
  Test_support.qcheck_case ~name:"lookup reaches the owner" gen_ring
    (fun (params, live, target, from) ->
      let c = Chord.create params ~live in
      let r = Chord.lookup c ~from ~target in
      Pid.to_int r.Chord.owner
      = brute_successor live (Params.space params) target)

let prop_lookup_logarithmic =
  Test_support.qcheck_case ~name:"hops <= 2m" gen_ring
    (fun (params, live, target, from) ->
      let c = Chord.create params ~live in
      let r = Chord.lookup c ~from ~target in
      r.Chord.hops <= 2 * Params.m params)

let prop_lookup_path_consistent =
  Test_support.qcheck_case ~name:"path starts at origin, ends at owner"
    gen_ring (fun (params, live, target, from) ->
      let c = Chord.create params ~live in
      let r = Chord.lookup c ~from ~target in
      match (r.Chord.path, List.rev r.Chord.path) with
      | first :: _, last :: _ ->
          Pid.equal first from && Pid.equal last r.Chord.owner
          && List.length r.Chord.path = r.Chord.hops + 1
      | _ -> false)

let () =
  Alcotest.run "chord"
    [
      ( "ring",
        [
          Alcotest.test_case "successor full" `Quick test_successor_full_ring;
          Alcotest.test_case "successor sparse" `Quick test_successor_sparse;
          Alcotest.test_case "fingers full" `Quick test_fingers_full_ring;
          Alcotest.test_case "lookup owner" `Quick test_lookup_owner;
          Alcotest.test_case "lookup local" `Quick test_lookup_local;
          Alcotest.test_case "stranger rejected" `Quick test_lookup_rejects_stranger;
          Alcotest.test_case "empty rejected" `Quick test_empty_ring_rejected;
        ] );
      ( "properties",
        [
          prop_successor_matches_brute;
          prop_lookup_finds_owner;
          prop_lookup_logarithmic;
          prop_lookup_path_consistent;
        ] );
    ]
