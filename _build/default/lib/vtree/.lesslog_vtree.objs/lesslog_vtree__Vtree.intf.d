lib/vtree/vtree.mli: Lesslog_id Params Vid
