open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Topology = Lesslog_topology.Topology
module File_store = Lesslog_storage.File_store
module Rng = Lesslog_prng.Rng

let pid = Pid.unsafe_of_int

(* Find a key whose ψ-target is the given PID, by brute force. *)
let key_targeting cluster target =
  let rec search i =
    if i > 100_000 then failwith "no key found"
    else
      let key = Printf.sprintf "synthetic-%d" i in
      if Pid.equal (Cluster.target_of_key cluster key) target then key
      else search (i + 1)
  in
  search 0

(* --- Insert ----------------------------------------------------------- *)

let test_insert_all_live () =
  let cluster = Cluster.create (Params.create ~m:4 ()) in
  let key = key_targeting cluster (pid 4) in
  let targets = Ops.insert cluster ~key in
  Alcotest.(check (list int)) "stored at target" [ 4 ]
    (List.map Pid.to_int targets);
  Alcotest.(check bool) "inserted origin" true
    (File_store.origin (Cluster.store cluster (pid 4)) ~key
    = Some File_store.Inserted)

let test_insert_dead_target () =
  (* Paper's example: P(4), P(5) dead; files targeting P(4) land at P(6). *)
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  let targets = Ops.insert cluster ~key in
  Alcotest.(check (list int)) "most-offspring live node" [ 6 ]
    (List.map Pid.to_int targets)

let test_insert_empty_system () =
  let params = Params.create ~m:3 () in
  let cluster = Cluster.create ~live:[] params in
  let targets = Ops.insert cluster ~key:"anything" in
  Alcotest.(check int) "nowhere to store" 0 (List.length targets)

(* --- Get -------------------------------------------------------------- *)

let test_get_from_everywhere () =
  let params = Params.create ~m:5 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 11) in
  ignore (Ops.insert cluster ~key);
  List.iter
    (fun origin ->
      let r = Ops.get cluster ~origin ~key in
      Alcotest.(check (option int)) "served at target" (Some 11)
        (Option.map Pid.to_int r.Ops.server);
      Alcotest.(check bool) "bounded hops" true (r.Ops.hops <= 5))
    (Pid.all params)

let test_get_local_copy_short_circuits () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  (* Plant a replica at P(8); a request at P(8) is served locally. *)
  File_store.add (Cluster.store cluster (pid 8)) ~key
    ~origin:File_store.Replicated ~version:0 ~now:0.0;
  let r = Ops.get cluster ~origin:(pid 8) ~key in
  Alcotest.(check (option int)) "local" (Some 8)
    (Option.map Pid.to_int r.Ops.server);
  Alcotest.(check int) "zero hops" 0 r.Ops.hops

let test_get_intercepted_on_path () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  (* P(8) routes via P(0); a replica at P(0) intercepts. *)
  File_store.add (Cluster.store cluster (pid 0)) ~key
    ~origin:File_store.Replicated ~version:0 ~now:0.0;
  let r = Ops.get cluster ~origin:(pid 8) ~key in
  Alcotest.(check (option int)) "intercepted" (Some 0)
    (Option.map Pid.to_int r.Ops.server);
  Alcotest.(check int) "one hop" 1 r.Ops.hops;
  Alcotest.(check (list int)) "path" [ 8; 0 ]
    (List.map Pid.to_int r.Ops.path)

let test_get_missing_faults () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let r = Ops.get cluster ~origin:(pid 3) ~key:"never-inserted" in
  Alcotest.(check (option int)) "fault" None
    (Option.map Pid.to_int r.Ops.server)

let test_get_dead_origin_rejected () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 3);
  Alcotest.check_raises "dead origin" (Invalid_argument "Ops.get: dead origin")
    (fun () -> ignore (Ops.get cluster ~origin:(pid 3) ~key:"x"))

let test_get_with_dead_nodes () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  (* Every live node can still fetch the file (stored at P(6)). *)
  List.iter
    (fun origin ->
      if Status_word.is_live (Cluster.status cluster) origin then begin
        let r = Ops.get cluster ~origin ~key in
        Alcotest.(check (option int))
          (Printf.sprintf "served from %d" (Pid.to_int origin))
          (Some 6)
          (Option.map Pid.to_int r.Ops.server)
      end)
    (Pid.all params)

(* --- Replicate -------------------------------------------------------- *)

let test_replicate_at_root_follows_children_list () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:1 in
  (* Children list of P(4) is (5, 6, 0, 12): replicas appear in that
     order. *)
  let order =
    List.init 4 (fun _ ->
        match Ops.replicate ~rng cluster ~overloaded:(pid 4) ~key with
        | Some p -> Pid.to_int p
        | None -> -1)
  in
  Alcotest.(check (list int)) "placement order" [ 5; 6; 0; 12 ] order

let test_replicate_halves_root_interception () =
  (* With one replica at the top child, requests from that child's half of
     the tree no longer reach the root: the root now serves exactly half
     of the uniformly-originated requests. *)
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 21) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:1 in
  let served_by_root () =
    List.length
      (List.filter
         (fun origin ->
           (Ops.get cluster ~origin ~key).Ops.server = Some (pid 21))
         (Pid.all params))
  in
  Alcotest.(check int) "initially all" 64 (served_by_root ());
  ignore (Ops.replicate ~rng cluster ~overloaded:(pid 21) ~key);
  Alcotest.(check int) "halved" 32 (served_by_root ())

let test_replicate_exhaustion () =
  let params = Params.create ~m:2 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 1) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:1 in
  let r1 = Ops.replicate ~rng cluster ~overloaded:(pid 1) ~key in
  let r2 = Ops.replicate ~rng cluster ~overloaded:(pid 1) ~key in
  Alcotest.(check bool) "placed twice" true (r1 <> None && r2 <> None);
  let r3 = Ops.replicate ~rng cluster ~overloaded:(pid 1) ~key in
  Alcotest.(check bool) "exhausted" true (r3 = None)

let test_replicate_non_root_uses_own_children () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:1 in
  (* Make P(5) (top child, VID 1110) a holder, then overload it: the
     replica must land in P(5)'s own children list. *)
  ignore (Ops.replicate ~rng cluster ~overloaded:(pid 4) ~key);
  let tree = Cluster.tree_of_key cluster key in
  let expected =
    Topology.children_list tree (Cluster.status cluster) (pid 5)
  in
  match Ops.replicate ~rng cluster ~overloaded:(pid 5) ~key with
  | None -> Alcotest.fail "expected placement"
  | Some p ->
      Alcotest.(check int) "first of P(5)'s children list"
        (Pid.to_int (List.hd expected))
        (Pid.to_int p)

let test_replicate_proportional_choice_cases () =
  (* Dead root: the max-VID live node replicates into either its own or
     the root's children list; both outcomes must be observed across
     seeds, and never a node already holding. *)
  let params = Params.create ~m:4 () in
  let make () =
    let cluster = Cluster.create params in
    Status_word.set_dead (Cluster.status cluster) (pid 4);
    Status_word.set_dead (Cluster.status cluster) (pid 5);
    let key = key_targeting cluster (pid 4) in
    ignore (Ops.insert cluster ~key);
    (cluster, key)
  in
  let cluster0, key0 = make () in
  let own, root_list =
    Ops.replication_candidates cluster0 ~overloaded:(pid 6) ~key:key0
  in
  Alcotest.(check bool) "own list non-empty" true (own <> []);
  Alcotest.(check bool) "root list non-empty" true (root_list <> []);
  let outcomes =
    List.map
      (fun seed ->
        let cluster, key = make () in
        let rng = Rng.create ~seed in
        match Ops.replicate ~rng cluster ~overloaded:(pid 6) ~key with
        | Some p -> Pid.to_int p
        | None -> -1)
      (List.init 64 (fun i -> i))
  in
  let own_hits =
    List.length
      (List.filter (fun o -> List.mem (pid o) own) outcomes)
  in
  let root_hits =
    List.length
      (List.filter (fun o -> List.mem (pid o) root_list) outcomes)
  in
  Alcotest.(check int) "all placements in a candidate list" 64
    (own_hits + root_hits);
  Alcotest.(check bool) "both branches exercised" true
    (own_hits > 0 && root_hits > 0)

(* --- Update ----------------------------------------------------------- *)

let test_update_reaches_all_copies () =
  let params = Params.create ~m:5 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 9) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:7 in
  (* Grow a replica population by repeatedly overloading current holders. *)
  for _ = 1 to 12 do
    let holders = Cluster.holders cluster ~key in
    let overloaded = Rng.pick_list rng holders in
    ignore (Ops.replicate ~rng cluster ~overloaded ~key)
  done;
  let copies = Cluster.total_copies cluster ~key in
  Alcotest.(check bool) "grew copies" true (copies > 3);
  let result = Ops.update cluster ~key in
  Alcotest.(check int) "every copy updated" copies result.Ops.updated;
  Alcotest.(check int) "version bumped" 1 result.Ops.version;
  Alcotest.(check (list int)) "no stale copies" []
    (List.map Pid.to_int (Ops.stale_copies cluster ~key));
  (* A second update bumps again. *)
  let r2 = Ops.update cluster ~key in
  Alcotest.(check int) "version 2" 2 r2.Ops.version

let test_update_with_dead_root () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 5 do
    let holders = Cluster.holders cluster ~key in
    let overloaded = Rng.pick_list rng holders in
    ignore (Ops.replicate ~rng cluster ~overloaded ~key)
  done;
  let copies = Cluster.total_copies cluster ~key in
  let result = Ops.update cluster ~key in
  Alcotest.(check int) "all copies updated" copies result.Ops.updated;
  Alcotest.(check (list int)) "no stale" []
    (List.map Pid.to_int (Ops.stale_copies cluster ~key))

(* --- Delete ------------------------------------------------------------ *)

let test_delete_removes_all_copies () =
  let params = Params.create ~m:5 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 9) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 6 do
    let holders = Cluster.holders cluster ~key in
    ignore (Ops.replicate ~rng cluster ~overloaded:(Rng.pick_list rng holders) ~key)
  done;
  let copies = Cluster.total_copies cluster ~key in
  let result = Ops.delete cluster ~key in
  Alcotest.(check int) "every copy removed" copies result.Ops.updated;
  Alcotest.(check int) "no copies remain" 0 (Cluster.total_copies cluster ~key);
  Alcotest.(check bool) "unregistered" true
    (not (List.mem key (Cluster.registered_keys cluster)));
  let r = Ops.get cluster ~origin:(pid 3) ~key in
  Alcotest.(check (option int)) "faults afterwards" None
    (Option.map Pid.to_int r.Ops.server)

let test_delete_with_dead_root () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let result = Ops.delete cluster ~key in
  Alcotest.(check int) "inserted copy removed" 1 result.Ops.updated;
  Alcotest.(check int) "gone" 0 (Cluster.total_copies cluster ~key)

let test_delete_missing_key () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let result = Ops.delete cluster ~key:"never-existed" in
  Alcotest.(check int) "nothing removed" 0 result.Ops.updated

(* --- Fault-tolerant model (b > 0) ------------------------------------- *)

let test_ft_insert_2b_copies () =
  let params = Params.create ~m:6 ~b:2 () in
  let cluster = Cluster.create params in
  let key = "some-file" in
  let targets = Ops.insert cluster ~key in
  Alcotest.(check int) "2^b copies" 4 (List.length targets);
  Alcotest.(check int) "4 live copies" 4 (Cluster.total_copies cluster ~key)

let test_ft_get_survives_subtree_failure () =
  let params = Params.create ~m:6 ~b:2 () in
  let cluster = Cluster.create params in
  let key = "resilient-file" in
  let targets = Ops.insert cluster ~key in
  (* Kill one entire target; other subtrees still serve via migration. *)
  let victim = List.hd targets in
  let victim_store = Cluster.store cluster victim in
  List.iter (fun key -> Lesslog_storage.File_store.remove victim_store ~key)
    (Lesslog_storage.File_store.keys victim_store);
  Status_word.set_dead (Cluster.status cluster) victim;
  List.iter
    (fun origin ->
      if Status_word.is_live (Cluster.status cluster) origin then begin
        let r = Ops.get cluster ~origin ~key in
        Alcotest.(check bool)
          (Printf.sprintf "origin %d served" (Pid.to_int origin))
          true (r.Ops.server <> None)
      end)
    (Pid.all params)

let test_ft_get_counts_migrations () =
  let params = Params.create ~m:6 ~b:2 () in
  let cluster = Cluster.create params in
  let key = "migrating-file" in
  let targets = Ops.insert cluster ~key in
  let tree = Cluster.tree_of_key cluster key in
  (* Remove the copy in subtree 0's target only (node stays live):
     requests originating in that subtree must migrate. *)
  let in_sub0 =
    List.find
      (fun p -> Lesslog_topology.Subtrees.subtree_id_of_pid tree p = 0)
      targets
  in
  Lesslog_storage.File_store.remove (Cluster.store cluster in_sub0) ~key;
  let origin = in_sub0 in
  let r = Ops.get cluster ~origin ~key in
  Alcotest.(check bool) "served elsewhere" true (r.Ops.server <> None);
  Alcotest.(check bool) "migrated at least once" true
    (r.Ops.subtree_migrations >= 1)

let test_ft_update_reaches_all_subtrees () =
  let params = Params.create ~m:6 ~b:2 () in
  let cluster = Cluster.create params in
  let key = "updating-file" in
  ignore (Ops.insert cluster ~key);
  let result = Ops.update cluster ~key in
  Alcotest.(check int) "all 4 copies" 4 result.Ops.updated;
  Alcotest.(check (list int)) "no stale" []
    (List.map Pid.to_int (Ops.stale_copies cluster ~key))

(* --- Properties -------------------------------------------------------- *)

let gen_cluster_setup =
  QCheck2.Gen.(
    Test_support.gen_params >>= fun params ->
    Test_support.gen_status params >>= fun status ->
    int_range 0 1_000_000 >>= fun seed -> return (params, status, seed))

let cluster_of (params, status, _) =
  let cluster = Cluster.create ~live:(Status_word.live_pids status) params in
  cluster

let prop_inserted_file_always_reachable =
  Test_support.qcheck_case ~name:"inserted file served from any live origin"
    gen_cluster_setup (fun ((_, status, seed) as setup) ->
      let cluster = cluster_of setup in
      let key = Printf.sprintf "file-%d" seed in
      match Ops.insert cluster ~key with
      | [] -> Status_word.live_count status = 0
      | _ :: _ ->
          List.for_all
            (fun origin ->
              (Ops.get cluster ~origin ~key).Ops.server <> None)
            (Status_word.live_pids status))

let prop_replicas_placed_on_live_non_holders =
  Test_support.qcheck_case ~name:"replicate targets live non-holder"
    gen_cluster_setup (fun ((_, status, seed) as setup) ->
      let cluster = cluster_of setup in
      let key = Printf.sprintf "file-%d" seed in
      let rng = Rng.create ~seed in
      match Ops.insert cluster ~key with
      | [] -> true
      | first :: _ ->
          let ok = ref true in
          let overloaded = ref first in
          for _ = 1 to 5 do
            let holders_before = Cluster.holders cluster ~key in
            (match Ops.replicate ~rng cluster ~overloaded:!overloaded ~key with
            | None -> ()
            | Some p ->
                if List.mem p holders_before then ok := false;
                if Status_word.is_dead status p then ok := false;
                overloaded := p)
          done;
          !ok)

let prop_update_leaves_no_stale =
  Test_support.qcheck_case ~name:"update reaches every copy"
    gen_cluster_setup (fun ((_, _, seed) as setup) ->
      let cluster = cluster_of setup in
      let key = Printf.sprintf "file-%d" seed in
      let rng = Rng.create ~seed in
      match Ops.insert cluster ~key with
      | [] -> true
      | _ ->
          for _ = 1 to 6 do
            match Cluster.holders cluster ~key with
            | [] -> ()
            | holders ->
                let overloaded = Rng.pick_list rng holders in
                ignore (Ops.replicate ~rng cluster ~overloaded ~key)
          done;
          let result = Ops.update cluster ~key in
          result.Ops.updated = Cluster.total_copies cluster ~key
          && Ops.stale_copies cluster ~key = [])

let prop_get_hops_bounded =
  Test_support.qcheck_case ~name:"lookup hops <= m + 1"
    gen_cluster_setup (fun ((params, status, seed) as setup) ->
      let cluster = cluster_of setup in
      let key = Printf.sprintf "file-%d" seed in
      match Ops.insert cluster ~key with
      | [] -> true
      | _ ->
          List.for_all
            (fun origin ->
              (Ops.get cluster ~origin ~key).Ops.hops <= Params.m params + 1)
            (Status_word.live_pids status))

let prop_ft_inserted_file_reachable_with_dead_nodes =
  Test_support.qcheck_case
    ~name:"FT: inserted file served from any live origin (random dead sets)"
    QCheck2.Gen.(
      Test_support.gen_params_ft >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      int_range 0 1_000_000 >>= fun seed -> return (params, status, seed))
    (fun (params, status, seed) ->
      let cluster = Cluster.create ~live:(Status_word.live_pids status) params in
      let key = Printf.sprintf "ft-file-%d" seed in
      match Ops.insert cluster ~key with
      | [] -> Status_word.live_count status = 0
      | _ :: _ ->
          List.for_all
            (fun origin -> (Ops.get cluster ~origin ~key).Ops.server <> None)
            (Status_word.live_pids status))

let prop_ft_update_no_stale =
  Test_support.qcheck_case ~name:"FT: update reaches every copy"
    QCheck2.Gen.(
      Test_support.gen_params_ft >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      int_range 0 1_000_000 >>= fun seed -> return (params, status, seed))
    (fun (params, status, seed) ->
      let cluster = Cluster.create ~live:(Status_word.live_pids status) params in
      let key = Printf.sprintf "ft-file-%d" seed in
      let rng = Rng.create ~seed in
      match Ops.insert cluster ~key with
      | [] -> true
      | _ ->
          for _ = 1 to 5 do
            match Cluster.holders cluster ~key with
            | [] -> ()
            | holders ->
                ignore
                  (Ops.replicate ~rng cluster
                     ~overloaded:(Rng.pick_list rng holders)
                     ~key)
          done;
          let result = Ops.update cluster ~key in
          result.Ops.updated = Cluster.total_copies cluster ~key
          && Ops.stale_copies cluster ~key = [])

let prop_ft_insert_distinct_subtrees =
  Test_support.qcheck_case ~name:"FT insert: one target per live subtree"
    QCheck2.Gen.(
      Test_support.gen_params_ft >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      int_range 0 1_000_000 >>= fun seed -> return (params, status, seed))
    (fun (params, status, seed) ->
      let cluster = Cluster.create ~live:(Status_word.live_pids status) params in
      let key = Printf.sprintf "file-%d" seed in
      let targets = Ops.insert cluster ~key in
      let tree = Cluster.tree_of_key cluster key in
      let sids =
        List.map (Lesslog_topology.Subtrees.subtree_id_of_pid tree) targets
      in
      List.length (List.sort_uniq compare sids) = List.length targets
      && List.length targets <= Params.subtree_count params)

let () =
  Alcotest.run "core_ops"
    [
      ( "insert",
        [
          Alcotest.test_case "all live" `Quick test_insert_all_live;
          Alcotest.test_case "dead target" `Quick test_insert_dead_target;
          Alcotest.test_case "empty system" `Quick test_insert_empty_system;
        ] );
      ( "get",
        [
          Alcotest.test_case "from everywhere" `Quick test_get_from_everywhere;
          Alcotest.test_case "local copy" `Quick test_get_local_copy_short_circuits;
          Alcotest.test_case "interception" `Quick test_get_intercepted_on_path;
          Alcotest.test_case "missing file faults" `Quick test_get_missing_faults;
          Alcotest.test_case "dead origin rejected" `Quick
            test_get_dead_origin_rejected;
          Alcotest.test_case "with dead nodes" `Quick test_get_with_dead_nodes;
        ] );
      ( "replicate",
        [
          Alcotest.test_case "root follows children list" `Quick
            test_replicate_at_root_follows_children_list;
          Alcotest.test_case "halves interception" `Quick
            test_replicate_halves_root_interception;
          Alcotest.test_case "exhaustion" `Quick test_replicate_exhaustion;
          Alcotest.test_case "non-root own children" `Quick
            test_replicate_non_root_uses_own_children;
          Alcotest.test_case "proportional choice" `Quick
            test_replicate_proportional_choice_cases;
        ] );
      ( "update",
        [
          Alcotest.test_case "reaches all copies" `Quick
            test_update_reaches_all_copies;
          Alcotest.test_case "dead root" `Quick test_update_with_dead_root;
        ] );
      ( "delete",
        [
          Alcotest.test_case "removes all copies" `Quick
            test_delete_removes_all_copies;
          Alcotest.test_case "dead root" `Quick test_delete_with_dead_root;
          Alcotest.test_case "missing key" `Quick test_delete_missing_key;
        ] );
      ( "fault-tolerant",
        [
          Alcotest.test_case "2^b copies" `Quick test_ft_insert_2b_copies;
          Alcotest.test_case "survives subtree failure" `Quick
            test_ft_get_survives_subtree_failure;
          Alcotest.test_case "migration count" `Quick test_ft_get_counts_migrations;
          Alcotest.test_case "update all subtrees" `Quick
            test_ft_update_reaches_all_subtrees;
        ] );
      ( "properties",
        [
          prop_inserted_file_always_reachable;
          prop_replicas_placed_on_live_non_holders;
          prop_update_leaves_no_stale;
          prop_get_hops_bounded;
          prop_ft_insert_distinct_subtrees;
          prop_ft_inserted_file_reachable_with_dead_nodes;
          prop_ft_update_no_stale;
        ] );
    ]
