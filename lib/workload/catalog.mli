(** Multi-file workloads: a catalogue of files whose popularity follows a
    Zipf law (or an explicit hot/warm/cold class split), each file's
    demand spread over origins by one of the {!Demand} models. Drives the
    counter-based-eviction ablation, the adaptive-replication experiments
    and the richer examples. *)

module Status_word = Lesslog_membership.Status_word

type spread = Uniform | Locality of { hot_fraction : float; hot_share : float }

type t = private {
  files : (string * Demand.t) array;
  index : (string, int) Hashtbl.t;
      (** Name → position, rebuilt with the entry array: {!demand_of} is
          an O(1) hash probe, never an O(files) scan. *)
}

val create :
  ?prefix:string ->
  ?zipf_s:float ->
  Status_word.t ->
  rng:Lesslog_prng.Rng.t ->
  files:int ->
  total:float ->
  spread:spread ->
  t
(** [files] file names ([prefix] + zero-padded rank, width derived from
    [files] with a minimum of 4 digits so names stay equal-width and
    lexically sorted at any catalogue size), rank popularity Zipf with
    exponent [zipf_s] (default 0.9), total demand [total] requests/s
    across the catalogue. *)

val files : t -> (string * Demand.t) list
(** Most popular first. *)

val demand_of : t -> key:string -> Demand.t option
(** O(1): one hash probe on the precomputed name index. *)

val shift_popularity : t -> rng:Lesslog_prng.Rng.t -> t
(** Re-deal the popularity ranks over the same file names — a popularity
    churn event for the eviction experiment: yesterday's hot file goes
    cold. *)

val total_demand : t -> float
(** Sum of every file's demand total. *)

(** {1 Time-varying catalogues}

    The adaptive-replication workloads: a catalogue per fixed-length
    analysis interval, with an explicit hot/warm/cold population, a
    popularity-shift schedule (yesterday's hot file goes cold every
    [shift_every] intervals) and flash crowds that multiply one file's
    demand for a window of intervals. *)

type classes = {
  hot_files : int;  (** Ranks [0, hot_files) are hot. *)
  warm_files : int;  (** The next [warm_files] ranks are warm. *)
  hot_share : float;  (** Demand share of the hot class. *)
  warm_share : float;
      (** Demand share of the warm class; the cold class gets the rest.
          Shares of empty classes re-spread over the populated ones, so
          total demand is conserved exactly. *)
}

val default_classes : classes
(** 1 hot, 4 warm files at a 60/30/10 split. *)

type flash = {
  rank : int;  (** File whose demand the crowd multiplies. *)
  factor : float;  (** Demand multiplier while active. *)
  from_i : int;  (** First interval index affected (inclusive). *)
  until_i : int;  (** First interval index no longer affected. *)
}

type timeline = private { interval : float; steps : t array }

val with_classes :
  ?prefix:string ->
  Status_word.t ->
  rng:Lesslog_prng.Rng.t ->
  files:int ->
  total:float ->
  spread:spread ->
  classes:classes ->
  t
(** A single catalogue with the hot/warm/cold split: per-file demand is
    the class share divided evenly over the class. *)

val timeline :
  ?prefix:string ->
  ?classes:classes ->
  ?shift_every:int ->
  ?flashes:flash list ->
  Status_word.t ->
  rng:Lesslog_prng.Rng.t ->
  files:int ->
  total:float ->
  spread:spread ->
  intervals:int ->
  interval:float ->
  timeline
(** [intervals] catalogues of [interval] seconds each. With [classes] the
    base catalogue is the hot/warm/cold split, otherwise {!create}'s Zipf
    profile. Every [shift_every] intervals (0 = never) the popularity
    ranks re-deal via {!shift_popularity}; each active {!flash} multiplies
    its file's demand by [factor]. Steps are materialized eagerly, so
    polling is allocation-free.
    @raise Invalid_argument on non-positive [intervals]/[interval], a
    non-positive flash window or a negative flash factor. *)

val step : timeline -> i:int -> t
(** The catalogue in force during interval [i].
    @raise Invalid_argument when [i] is out of range. *)

val at : timeline -> time:float -> t option
(** The catalogue at an instant; [None] past the end. *)

val interval_count : timeline -> int
val interval : timeline -> float
