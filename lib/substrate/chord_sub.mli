(** The Chord adapter: {!Substrate.t} over {!Lesslog_chord.Chord}.

    The ring and finger tables are rebuilt lazily per status-word epoch
    ({!Substrate.epoch_cached}); keys map to ring identifiers through the
    system's ψ, so every substrate resolves a key to the same m-bit
    identifier. Neighbors are the ring successor and predecessor
    (symmetric); delivery is guaranteed; membership repair is
    {!Substrate.Generic}. *)

val make :
  Lesslog_id.Params.t ->
  Lesslog_membership.Status_word.t ->
  Lesslog_hash.Psi.t ->
  Substrate.t
