open Lesslog_id
module Engine = Lesslog_sim.Engine
module Rng = Lesslog_prng.Rng

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  latency : Latency.t;
  mutable loss : float;
  mutable filter : (src:Pid.t -> dst:Pid.t -> bool) option;
  handlers : (src:Pid.t -> 'msg -> unit) option array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let check_loss loss =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Overlay: loss"

let create ~engine ~rng ?(latency = Latency.default) ?(loss = 0.0) params =
  check_loss loss;
  {
    engine;
    rng;
    latency;
    loss;
    filter = None;
    handlers = Array.make (Params.space params) None;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let set_loss t loss =
  check_loss loss;
  t.loss <- loss

let loss t = t.loss

let set_filter t f = t.filter <- f

let set_handler t p f = t.handlers.(Pid.to_int p) <- Some f

let clear_handler t p = t.handlers.(Pid.to_int p) <- None

let link_up t ~src ~dst =
  match t.filter with None -> true | Some f -> f ~src ~dst

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  if not (link_up t ~src ~dst) then t.dropped <- t.dropped + 1
  else if t.loss > 0.0 && Rng.bernoulli t.rng ~p:t.loss then
    t.dropped <- t.dropped + 1
  else begin
    let delay = Latency.sample t.latency t.rng in
    Engine.schedule t.engine ~delay (fun () ->
        match t.handlers.(Pid.to_int dst) with
        | Some handler ->
            t.delivered <- t.delivered + 1;
            handler ~src msg
        | None -> t.dropped <- t.dropped + 1)
  end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
