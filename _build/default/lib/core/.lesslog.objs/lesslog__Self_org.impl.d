lib/core/self_org.ml: Cluster Lesslog_id Lesslog_membership Lesslog_storage Lesslog_topology List Log Option Params Pid
