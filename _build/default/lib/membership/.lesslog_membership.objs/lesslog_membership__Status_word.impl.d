lib/membership/status_word.ml: Array Bytes Char Float Format Lesslog_id Lesslog_prng List Params Pid
