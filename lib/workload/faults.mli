(** Fault-injection plans: the disturbances a reliability scenario
    replays against the overlay — loss bursts, node crashes with optional
    restart, and (possibly asymmetric) network partitions.

    A plan is pure data; {!Lesslog_des.Fault_sim} interprets it. The
    generator confines every disturbance to an early {e active window} of
    the run so the tail is quiet — that quiet period is where detector
    convergence is measured. *)

open Lesslog_id

type burst = { from_ : float; until : float; loss : float }
(** Message loss raised to [loss] on every link during [[from_, until)]. *)

type crash = { node : Pid.t; at : float; restart_at : float option }
(** The node's process dies at [at] (its handler disappears; its disk
    contents are unreachable). [restart_at] brings it back with its PID —
    and whatever the self-organized mechanism left it. *)

type direction =
  | Both  (** No messages cross the cut. *)
  | Inbound  (** The group hears nothing from outside (asymmetric). *)
  | Outbound  (** Nothing the group sends gets out (asymmetric). *)

type partition = {
  from_ : float;
  until : float;
  group : Pid.t list;
  direction : direction;
}

type plan = {
  bursts : burst list;
  crashes : crash list;
  partitions : partition list;
}

val empty : plan

val last_disturbance : plan -> float
(** When the last injected disturbance ends (last burst/partition end,
    crash, or restart); [0] for {!empty}. Detector convergence is
    measured from here. *)

val crashed_at : plan -> time:float -> Pid.t list
(** Nodes down at [time] under the plan (crashed, not yet restarted). *)

val generate :
  rng:Lesslog_prng.Rng.t ->
  live:Pid.t list ->
  duration:float ->
  ?active_until:float ->
  ?crash_fraction:float ->
  ?restart_fraction:float ->
  ?mean_downtime:float ->
  ?bursts:int ->
  ?burst_loss:float ->
  ?mean_burst:float ->
  ?partitions:int ->
  ?partition_fraction:float ->
  ?mean_partition:float ->
  unit ->
  plan
(** A random plan over the [live] population. Disturbances start within
    [[0.05, active_until] * duration] ([active_until] defaults to [0.6])
    and every burst, partition and restart completes by
    [0.75 * duration]. Defaults: [crash_fraction = 0.05] of the
    population crashes, [restart_fraction = 0.5] of those restart after
    an exponential [mean_downtime] (default [duration / 8]); [bursts = 1]
    loss burst to [burst_loss = 0.5] lasting ~[mean_burst] (default
    [duration / 10]); [partitions = 0] cuts of
    [partition_fraction = 0.25] of the nodes (direction drawn uniformly
    from both/inbound/outbound) lasting ~[mean_partition] (default
    [duration / 10]). *)
