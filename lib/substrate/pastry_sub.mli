(** The Pastry adapter: {!Substrate.t} over {!Lesslog_pastry.Pastry}.

    Routing tables and leaf sets are rebuilt lazily per status-word epoch;
    keys map to identifiers through ψ. [digit_bits] defaults to 2 when it
    divides the space width m and falls back to 1 otherwise (Pastry
    requires digits to tile the identifier). Neighbors are the leaf set —
    numerically nearest nodes, which Pastry does {e not} guarantee to be
    symmetric at the window edges. Membership repair is
    {!Substrate.Generic}. *)

val make :
  ?digit_bits:int ->
  Lesslog_id.Params.t ->
  Lesslog_membership.Status_word.t ->
  Lesslog_hash.Psi.t ->
  Substrate.t
