type handler = int -> int -> float -> unit

type t = {
  q : Ladder_queue.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  mutable handlers : handler array;
  mutable nhandlers : int;
  (* slot store for legacy closure events, dispatched by handler 0 *)
  mutable thunks : (unit -> unit) array;
  mutable free : int list;
  mutable nthunks : int;
}

let noop_handler (_ : int) (_ : int) (_ : float) = ()
let noop_thunk () = ()

let run_thunk t slot =
  let f = t.thunks.(slot) in
  t.thunks.(slot) <- noop_thunk;
  t.free <- slot :: t.free;
  f ()

let create () =
  let t =
    {
      q = Ladder_queue.create ();
      clock = 0.0;
      next_seq = 0;
      executed = 0;
      handlers = Array.make 8 noop_handler;
      nhandlers = 1;
      thunks = [||];
      free = [];
      nthunks = 0;
    }
  in
  t.handlers.(0) <- (fun a _ _ -> run_thunk t a);
  t

let now t = t.clock

let register_handler t f =
  if t.nhandlers = Array.length t.handlers then begin
    let grown = Array.make (2 * t.nhandlers) noop_handler in
    Array.blit t.handlers 0 grown 0 t.nhandlers;
    t.handlers <- grown
  end;
  let id = t.nhandlers in
  t.handlers.(id) <- f;
  t.nhandlers <- id + 1;
  id

let enqueue t ~time ~h ~a ~b ~x =
  Ladder_queue.push t.q ~time ~seq:t.next_seq ~h ~a ~b ~x;
  t.next_seq <- t.next_seq + 1

let post_at t ~time ~h ~a ~b ~x =
  if time < t.clock then invalid_arg "Engine.post_at: time in the past";
  enqueue t ~time ~h ~a ~b ~x

let post t ~delay ~h ~a ~b ~x =
  if delay < 0.0 then invalid_arg "Engine.post: negative delay";
  enqueue t ~time:(t.clock +. delay) ~h ~a ~b ~x

(* Batched [post_at]: the first [len] slots of five parallel field
   arrays (a mailbox slice) in one call — one bounds/past validation
   pass and one seq-counter sweep instead of a call per event. Events
   get consecutive seqs in slice order, exactly as [len] single posts
   would. *)
let post_batch t ~len ~time ~h ~a ~b ~x =
  if
    len < 0 || len > Array.length time || len > Array.length h
    || len > Array.length a || len > Array.length b || len > Array.length x
  then invalid_arg "Engine.post_batch: len exceeds a field array";
  for i = 0 to len - 1 do
    if Array.unsafe_get time i < t.clock then
      invalid_arg "Engine.post_batch: time in the past"
  done;
  let seq = ref t.next_seq in
  t.next_seq <- t.next_seq + len;
  for i = 0 to len - 1 do
    Ladder_queue.push t.q ~time:(Array.unsafe_get time i) ~seq:!seq
      ~h:(Array.unsafe_get h i) ~a:(Array.unsafe_get a i)
      ~b:(Array.unsafe_get b i) ~x:(Array.unsafe_get x i);
    incr seq
  done

let alloc_slot t action =
  match t.free with
  | slot :: rest ->
      t.free <- rest;
      t.thunks.(slot) <- action;
      slot
  | [] ->
      if t.nthunks = Array.length t.thunks then begin
        let cap = max 16 (2 * t.nthunks) in
        let grown = Array.make cap noop_thunk in
        Array.blit t.thunks 0 grown 0 t.nthunks;
        t.thunks <- grown
      end;
      let slot = t.nthunks in
      t.thunks.(slot) <- action;
      t.nthunks <- slot + 1;
      slot

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  enqueue t ~time ~h:0 ~a:(alloc_slot t action) ~b:0 ~x:0.0

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  enqueue t ~time:(t.clock +. delay) ~h:0 ~a:(alloc_slot t action) ~b:0 ~x:0.0

let pending t = Ladder_queue.length t.q

(* Read the cursor before dispatch: the handler may push reentrantly. *)
let dispatch_cursor t =
  let time = Ladder_queue.time t.q in
  let h = Ladder_queue.handler t.q in
  let a = Ladder_queue.arg_a t.q in
  let b = Ladder_queue.arg_b t.q in
  let x = Ladder_queue.arg_x t.q in
  t.clock <- time;
  t.executed <- t.executed + 1;
  t.handlers.(h) a b x

let step t =
  if Ladder_queue.pop t.q then begin
    dispatch_cursor t;
    true
  end
  else false

let step_below t ~bound =
  if Ladder_queue.pop_until t.q ~bound then begin
    dispatch_cursor t;
    true
  end
  else false

let drain_below t ~bound = while step_below t ~bound do () done

let next_time t =
  if Ladder_queue.is_empty t.q then None else Some (Ladder_queue.min_time t.q)

let next_time_inf t =
  if Ladder_queue.is_empty t.q then Float.infinity
  else Ladder_queue.min_time t.q

let advance_to t ~time = if time > t.clock then t.clock <- time

let run ?until ?(max_events = max_int) t =
  match until with
  | None ->
      (* no horizon: drain without peeking at the next timestamp *)
      let budget = ref max_events in
      while !budget > 0 && step t do
        decr budget
      done
  | Some limit ->
      (* [Float.succ limit] turns the strict [pop_until] bound into the
         inclusive stop-at-[limit] contract of this function. *)
      let bound = Float.succ limit in
      let budget = ref max_events in
      while !budget > 0 && step_below t ~bound do
        decr budget
      done;
      if Ladder_queue.is_empty t.q || Ladder_queue.min_time t.q > limit then
        advance_to t ~time:limit

let events_executed t = t.executed
