type event = { time : float; seq : int; action : unit -> unit }

type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
}

let compare_event a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () =
  { queue = Heap.create ~cmp:compare_event; clock = 0.0; next_seq = 0; executed = 0 }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.executed <- t.executed + 1;
      ev.action ();
      true

let run ?until ?(max_events = max_int) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some ev -> (
        match until with
        | Some limit when ev.time > limit ->
            t.clock <- Float.max t.clock limit;
            continue := false
        | _ ->
            ignore (step t);
            decr budget)
  done;
  match until with
  | Some limit when Heap.is_empty t.queue && t.clock < limit -> t.clock <- limit
  | _ -> ()

let events_executed t = t.executed
