(** The substrate shootout: one replication core, four overlays.

    Drives the {e same} seeded churn schedule ({!Lesslog_check.Schedule}
    with [sim = Des]) and the same seeded fault schedule ([sim = Faults])
    over every {!Lesslog_substrate.Substrate.t} implementation — native
    LessLog trees, Chord, Pastry, CAN — with identical request workloads,
    per-hop latency, loss, rpc and heartbeat layers, and reports hops,
    latency quantiles, replica counts and availability per overlay. The
    protocol, seeds and first committed numbers are recorded in
    EXPERIMENTS.md ("substrate shootout"); [BENCH_substrates.json] is the
    machine-readable form.

    The native row doubles as the refactor's drift gate: the same Des
    schedule is also run through the direct (substrate-less) code path,
    and the two full trace digests must be equal —
    {!report.native_digest_match}. *)

type row = {
  name : string;
  (* Des phase: oracle-driven churn (Des_sim). *)
  served : int;
  faults : int;
  availability : float;  (** served / (served + faults). *)
  mean_hops : float;
  p50_latency : float;  (** Seconds; 0 when nothing was served. *)
  p99_latency : float;
  replicas_created : int;
  messages : int;
  file_transfers : int;
  digest : int;  (** FNV digest of the full Des-phase trace. *)
  (* Faults phase: detector-driven membership (Fault_sim). *)
  f_issued : int;
  f_served : int;
  f_faulted : int;
  f_lost_keys : int;
  f_availability : float;  (** f_served / f_issued. *)
}

type report = {
  m : int;
  seed : int;
  des_schedule : Lesslog_check.Schedule.t;
  fault_schedule : Lesslog_check.Schedule.t;
  rows : row list;  (** lesslog, chord, pastry, can — in that order. *)
  native_digest_match : bool;
      (** Native-via-substrate trace digest equals the direct-path digest
          — the bit-for-bit gate CI fails on. *)
}

val run : ?quick:bool -> seed:int -> m:int -> unit -> report
(** Generate both schedules from [seed] at space exponent [m] and run all
    four substrates plus the direct-path gate. [quick] caps both schedule
    durations at 5 simulated seconds (CI smoke). Keep [m <= 10]: the CAN
    adapter builds a [2^m]-zone torus with quadratic adjacency setup. *)

val to_bench : report -> (string * float) list
(** Flat [substrates/<name>/<metric>] pairs for
    {!Lesslog_report.Bench_json}, plus [substrates/native_digest_match]
    (1 or 0), [substrates/m] and [substrates/seed]. *)

val render : report -> string
(** The CLI comparison table, ready to print. *)
