lib/storage/access_counter.ml:
