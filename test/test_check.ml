(** Tests for the deterministic simulation checker (lib/check): schedule
    codec round-trips, shrinking, the mutation self-test, and
    byte-determinism of exploration output. *)

module Schedule = Lesslog_check.Schedule
module Shrink = Lesslog_check.Shrink
module Checker = Lesslog_check.Checker
module Oracle = Lesslog_check.Oracle
module Topology = Lesslog_topology.Topology

(* Schedule generation & codec --------------------------------------- *)

let schedule_equal (a : Schedule.t) (b : Schedule.t) =
  a.m = b.m && a.seed = b.seed && a.sim = b.sim && a.rate = b.rate
  && a.duration = b.duration
  && a.capacity = b.capacity
  && a.keys = b.keys && a.steps = b.steps

let test_generate_deterministic () =
  List.iter
    (fun sim ->
      let a = Schedule.generate ~seed:7 ~m:8 ~sim in
      let b = Schedule.generate ~seed:7 ~m:8 ~sim in
      Alcotest.(check bool) "same schedule" true (schedule_equal a b);
      let c = Schedule.generate ~seed:8 ~m:8 ~sim in
      Alcotest.(check bool) "different seed differs" false (schedule_equal a c))
    [ Schedule.Des; Schedule.Faults ]

let test_events_roundtrip () =
  List.iteri
    (fun i sim ->
      let sch = Schedule.generate ~seed:(100 + i) ~m:8 ~sim in
      let events = Schedule.to_events ~expect:"cache-coherence" ~mutation:true sch in
      match Schedule.of_events events with
      | Error msg -> Alcotest.fail msg
      | Ok d ->
          Alcotest.(check bool) "schedule" true (schedule_equal sch d.schedule);
          Alcotest.(check bool) "mutation" true d.mutation;
          Alcotest.(check (option string))
            "expect" (Some "cache-coherence") d.expect)
    [ Schedule.Des; Schedule.Faults ]

let test_file_roundtrip () =
  let sch = Schedule.generate ~seed:3 ~m:8 ~sim:Schedule.Faults in
  let path = Filename.temp_file "lesslog_check" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Schedule.save ~mutation:false path sch;
      match Schedule.load path with
      | Error msg -> Alcotest.fail msg
      | Ok d ->
          Alcotest.(check bool) "schedule" true (schedule_equal sch d.schedule);
          Alcotest.(check bool) "mutation off" false d.mutation;
          Alcotest.(check (option string)) "no expect" None d.expect)

let test_of_events_rejects_garbage () =
  (match Schedule.of_events [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted empty event list");
  let sch = Schedule.generate ~seed:1 ~m:8 ~sim:Schedule.Des in
  let events = Schedule.to_events sch in
  (* Drop the header markers: decoding must fail, not guess defaults. *)
  let no_headers =
    List.filter
      (function Schedule.Trace.Event.Mark _ -> false | _ -> true)
      events
  in
  match Schedule.of_events no_headers with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted schedule without headers"

let test_churn_sanitized () =
  (* Arbitrary step subsets (what the shrinker produces) must always
     yield an executable churn list: no join-of-live, no leave-of-dead. *)
  let sch = Schedule.generate ~seed:11 ~m:8 ~sim:Schedule.Des in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let rs = subsets rest in
        List.map (fun r -> x :: r) rs @ rs
  in
  let steps =
    match sch.Schedule.steps with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]
    | l -> l
  in
  List.iter
    (fun steps ->
      let churn = Schedule.to_churn { sch with steps } in
      let live = Hashtbl.create 16 in
      List.iter
        (fun (ev : Schedule.Des_sim.churn_event) ->
          let node, joins =
            match ev.action with
            | Schedule.Des_sim.Join p -> (p, true)
            | Schedule.Des_sim.Leave p | Schedule.Des_sim.Fail p -> (p, false)
          in
          let was_live =
            match Hashtbl.find_opt live node with
            | Some b -> b
            | None -> true
          in
          if joins then
            Alcotest.(check bool) "join of dead node" false was_live
          else
            Alcotest.(check bool) "leave/fail of live node" true was_live;
          Hashtbl.replace live node joins)
        churn)
    (subsets steps)

(* Shrink ------------------------------------------------------------ *)

let test_shrink_to_pair () =
  let input = List.init 40 Fun.id in
  let pred l = List.mem 13 l && List.mem 29 l in
  let kept, stats = Shrink.minimize ~pred input in
  Alcotest.(check (list int)) "minimal pair" [ 13; 29 ] kept;
  Alcotest.(check int) "kept" 2 stats.Shrink.kept;
  Alcotest.(check int) "dropped" 38 stats.Shrink.dropped;
  Alcotest.(check bool) "ran the predicate" true (stats.Shrink.runs > 0)

let test_shrink_to_empty () =
  (* A predicate that holds for every subset shrinks to nothing. *)
  let kept, _ = Shrink.minimize ~pred:(fun _ -> true) (List.init 10 Fun.id) in
  Alcotest.(check (list int)) "empty" [] kept

let test_shrink_one_minimal () =
  (* Failure needs >= 3 elements of a marked set: the result must be
     1-minimal (dropping any single element breaks the predicate). *)
  let marked = [ 2; 3; 5; 7; 11 ] in
  let pred l =
    List.length (List.filter (fun x -> List.mem x marked) l) >= 3
  in
  let kept, _ = Shrink.minimize ~pred (List.init 12 Fun.id) in
  Alcotest.(check bool) "still fails" true (pred kept);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) kept in
      Alcotest.(check bool) "1-minimal" false (pred without))
    kept

(* Checker runs ------------------------------------------------------ *)

let test_clean_run () =
  List.iter
    (fun sim ->
      let sch = Schedule.generate ~seed:5 ~m:8 ~sim in
      match Checker.run sch with
      | Ok stats ->
          Alcotest.(check bool) "events flowed" true (stats.Checker.events > 0)
      | Error v -> Alcotest.failf "unexpected violation: %s" v.Checker.detail)
    [ Schedule.Des; Schedule.Faults ]

let test_run_deterministic () =
  let sch = Schedule.generate ~seed:5 ~m:8 ~sim:Schedule.Des in
  match (Checker.run sch, Checker.run sch) with
  | Ok a, Ok b ->
      Alcotest.(check int) "served" a.Checker.served b.Checker.served;
      Alcotest.(check int) "faults" a.Checker.faults b.Checker.faults;
      Alcotest.(check int) "checks" a.Checker.checks b.Checker.checks;
      Alcotest.(check int) "events" a.Checker.events b.Checker.events
  | _ -> Alcotest.fail "run was not clean"

let test_mutation_flag_restored () =
  let sch = Schedule.generate ~seed:5 ~m:8 ~sim:Schedule.Des in
  (match Checker.run ~mutation:true sch with _ -> ());
  Alcotest.(check bool)
    "flag reset" false !Topology.Testing.broken_find_live_node

(* The self-test from the issue: the deliberately broken FINDLIVENODE
   must be found quickly and shrink to a small counterexample that
   replays deterministically. *)
let test_mutation_found_and_shrunk () =
  let dir = Filename.temp_file "lesslog_check" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let logs = Buffer.create 256 in
  let log s =
    Buffer.add_string logs s;
    Buffer.add_char logs '\n'
  in
  match
    Checker.explore ~mutation:true ~out_dir:dir ~log ~seed:42 ~m:8
      ~iterations:20 ()
  with
  | Checker.Clean _ -> Alcotest.fail "mutation not detected"
  | Checker.Found f ->
      Alcotest.(check bool)
        "shrunk to <= 12 steps" true
        (List.length f.Checker.shrunk.Schedule.steps <= 12);
      Alcotest.(check string)
        "same oracle after shrink" f.Checker.violation.Checker.oracle
        f.Checker.shrunk_violation.Checker.oracle;
      let path =
        match f.Checker.repro_path with
        | Some p -> p
        | None -> Alcotest.fail "no repro written"
      in
      let decoded =
        match Schedule.load path with
        | Ok d -> d
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check bool) "repro has mutation flag" true decoded.mutation;
      (match Checker.replay ~log decoded with
      | Checker.Reproduced v ->
          Alcotest.(check string)
            "replay hits same oracle" f.Checker.shrunk_violation.Checker.oracle
            v.Checker.oracle
      | Checker.Clean_run -> Alcotest.fail "replay was clean"
      | Checker.Mismatch _ -> Alcotest.fail "replay mismatched");
      Sys.remove path;
      Sys.rmdir dir

let test_explore_output_deterministic () =
  let capture () =
    let buf = Buffer.create 1024 in
    let log s =
      Buffer.add_string buf s;
      Buffer.add_char buf '\n'
    in
    (match Checker.explore ~log ~seed:42 ~m:8 ~iterations:6 () with
    | Checker.Clean { trials } -> Alcotest.(check int) "all trials" 6 trials
    | Checker.Found f ->
        Alcotest.failf "unexpected violation: %s" f.Checker.violation.detail);
    Buffer.contents buf
  in
  Alcotest.(check string) "byte-identical logs" (capture ()) (capture ())

let test_derive_seed () =
  Alcotest.(check int)
    "stable" (Checker.derive_seed 42 0) (Checker.derive_seed 42 0);
  Alcotest.(check bool)
    "trial-distinct" true
    (Checker.derive_seed 42 0 <> Checker.derive_seed 42 1);
  for i = 0 to 10 do
    let s = Checker.derive_seed 42 i in
    Alcotest.(check bool) "in prng range" true (s >= 0 && s <= 0x3FFFFFFF)
  done

let () =
  Alcotest.run "check"
    [
      ( "schedule",
        [
          Alcotest.test_case "generate deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "events roundtrip" `Quick test_events_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_of_events_rejects_garbage;
          Alcotest.test_case "churn sanitized" `Quick test_churn_sanitized;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "pair" `Quick test_shrink_to_pair;
          Alcotest.test_case "empty" `Quick test_shrink_to_empty;
          Alcotest.test_case "1-minimal" `Quick test_shrink_one_minimal;
        ] );
      ( "checker",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run;
          Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "mutation flag restored" `Quick
            test_mutation_flag_restored;
          Alcotest.test_case "mutation found and shrunk" `Slow
            test_mutation_found_and_shrunk;
          Alcotest.test_case "explore deterministic" `Slow
            test_explore_output_deterministic;
          Alcotest.test_case "derive_seed" `Quick test_derive_seed;
        ] );
    ]
