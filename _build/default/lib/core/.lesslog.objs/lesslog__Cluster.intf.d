lib/core/cluster.mli: Lesslog_hash Lesslog_id Lesslog_membership Lesslog_prng Lesslog_ptree Lesslog_storage Params Pid
