type t = { label : string; points : (float * float) array }

let make ~label points = { label; points = Array.of_list points }
let label t = t.label
let xs t = Array.map fst t.points
let ys t = Array.map snd t.points

let y_at t ~x =
  Array.find_opt (fun (px, _) -> px = x) t.points |> Option.map snd

let map_y t ~f = { t with points = Array.map (fun (x, y) -> (x, f y)) t.points }
