lib/pastry/pastry.mli: Lesslog_id Params Pid
