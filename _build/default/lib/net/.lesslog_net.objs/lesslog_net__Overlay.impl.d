lib/net/overlay.ml: Array Latency Lesslog_id Lesslog_prng Lesslog_sim Params Pid
