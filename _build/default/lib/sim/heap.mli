(** Array-based binary min-heap, the event queue's priority structure. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. For tests and inspection. *)
