(* Streaming log-bucketed histogram (DDSketch-style). A positive sample
   [x] lands in bucket [round (ln x / ln gamma)]; the bucket's
   representative value [gamma^i] is within half a bucket — about 0.25%
   relative error at gamma = 1.005 — of every sample it holds. Counts
   live in a lazily grown window array indexed from [base], so [add],
   [count], [mean] and [quantile] are all O(1)-ish (quantile walks the
   bucket window, whose size is bounded by the value range, not by the
   sample count). Count, sum, min and max are tracked exactly; samples
   [<= 0] go to a dedicated zero bucket (the sketch targets the
   non-negative latency/hop data of the simulators). *)

let gamma = 1.005
let inv_ln_gamma = 1.0 /. log gamma

(* |idx| cap: gamma^6000 ~ 1e13, gamma^-6000 ~ 1e-13. Values beyond are
   clamped into the edge buckets, bounding the window at ~12001 slots. *)
let max_idx = 6000

type t = {
  mutable counts : int array;
  mutable base : int; (* bucket index of counts.(0) *)
  mutable zero : int; (* samples <= 0 *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  {
    counts = [||];
    base = 0;
    zero = 0;
    n = 0;
    sum = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let bucket_idx x =
  let i = int_of_float (Float.round (log x *. inv_ln_gamma)) in
  if i < -max_idx then -max_idx else if i > max_idx then max_idx else i

let representative i = gamma ** float_of_int i

let grow t i =
  let lo = min t.base i - 16 and hi = max (t.base + Array.length t.counts) (i + 1) + 16 in
  let lo = max lo (-max_idx) and hi = min hi (max_idx + 1) in
  let grown = Array.make (hi - lo) 0 in
  Array.blit t.counts 0 grown (t.base - lo) (Array.length t.counts);
  t.counts <- grown;
  t.base <- lo

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  if x <= 0.0 then t.zero <- t.zero + 1
  else begin
    let i = bucket_idx x in
    if Array.length t.counts = 0 then begin
      t.counts <- Array.make 32 0;
      t.base <- max (-max_idx) (i - 16)
    end;
    if i < t.base || i >= t.base + Array.length t.counts then grow t i;
    t.counts.(i - t.base) <- t.counts.(i - t.base) + 1
  end

let add_int t x = add t (float_of_int x)
let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

(* Every sketch shares the module-level gamma, so bucket index [i] means
   the same value range in both operands and merging is a bucket-wise
   add over the union window. Count, sum, min and max recombine exactly;
   the bucket counts carry no per-sketch error, so (A ⊎ B) is the sketch
   that would have been built by streaming both inputs — merge is
   associative and commutative up to float addition of [sum]. *)
let merge t ~from =
  if from.n > 0 then begin
    t.n <- t.n + from.n;
    t.sum <- t.sum +. from.sum;
    if from.mn < t.mn then t.mn <- from.mn;
    if from.mx > t.mx then t.mx <- from.mx;
    t.zero <- t.zero + from.zero;
    let flen = Array.length from.counts in
    if flen > 0 then begin
      if Array.length t.counts = 0 then begin
        t.counts <- Array.copy from.counts;
        t.base <- from.base
      end
      else begin
        let lo = min t.base from.base
        and hi =
          max (t.base + Array.length t.counts) (from.base + flen)
        in
        if lo < t.base || hi > t.base + Array.length t.counts then begin
          let grown = Array.make (hi - lo) 0 in
          Array.blit t.counts 0 grown (t.base - lo) (Array.length t.counts);
          t.counts <- grown;
          t.base <- lo
        end;
        for i = 0 to flen - 1 do
          let j = from.base + i - t.base in
          t.counts.(j) <- t.counts.(j) + from.counts.(i)
        done
      end
    end
  end

let clamp t v = Float.max t.mn (Float.min t.mx v)

let quantile t q =
  if t.n = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: out of range";
  if q = 0.0 then t.mn
  else if q = 1.0 then t.mx
  else begin
    let rank = int_of_float (Float.round (q *. float_of_int (t.n - 1))) in
    if rank < t.zero then clamp t 0.0
    else begin
      let cum = ref t.zero and res = ref t.mx in
      (try
         for i = 0 to Array.length t.counts - 1 do
           cum := !cum + t.counts.(i);
           if rank < !cum then begin
             res := representative (t.base + i);
             raise Exit
           end
         done
       with Exit -> ());
      clamp t !res
    end
  end

let median t = quantile t 0.5

let max_value t =
  if t.n = 0 then invalid_arg "Histogram.max_value: empty";
  t.mx

let min_value t =
  if t.n = 0 then invalid_arg "Histogram.min_value: empty";
  t.mn

let buckets t ~width =
  if width <= 0.0 then invalid_arg "Histogram.buckets";
  if t.n = 0 then []
  else begin
    let tbl = Hashtbl.create 16 in
    let put v c =
      if c > 0 then begin
        let b = floor (v /. width) *. width in
        Hashtbl.replace tbl b (c + Option.value ~default:0 (Hashtbl.find_opt tbl b))
      end
    in
    put (clamp t 0.0) t.zero;
    Array.iteri (fun i c -> if c > 0 then put (clamp t (representative (t.base + i))) c) t.counts;
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
  end

let pp fmt t =
  if count t = 0 then Format.pp_print_string fmt "(empty)"
  else
    Format.fprintf fmt "n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g" (count t)
      (mean t) (median t) (quantile t 0.99) (max_value t)

(* Exact sample-retaining variant, kept for tests and small data. *)
module Exact = struct
  type t = {
    mutable samples : float list;
    mutable sorted : float array option;
    mutable n : int;
    mutable sum : float;
  }

  let create () = { samples = []; sorted = None; n = 0; sum = 0.0 }

  let add t x =
    t.samples <- x :: t.samples;
    t.sorted <- None;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x

  let add_int t x = add t (float_of_int x)
  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let merge t ~from =
    t.samples <- List.rev_append from.samples t.samples;
    t.sorted <- None;
    t.n <- t.n + from.n;
    t.sum <- t.sum +. from.sum

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.of_list t.samples in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let quantile t q =
    let a = sorted t in
    if Array.length a = 0 then invalid_arg "Histogram.quantile: empty";
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: out of range";
    let n = Array.length a in
    let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    a.(rank)

  let median t = quantile t 0.5

  let max_value t =
    let a = sorted t in
    if Array.length a = 0 then invalid_arg "Histogram.max_value: empty";
    a.(Array.length a - 1)

  let min_value t =
    let a = sorted t in
    if Array.length a = 0 then invalid_arg "Histogram.min_value: empty";
    a.(0)

  let buckets t ~width =
    if width <= 0.0 then invalid_arg "Histogram.buckets";
    let a = sorted t in
    if Array.length a = 0 then []
    else begin
      let tbl = Hashtbl.create 16 in
      Array.iter
        (fun x ->
          let b = floor (x /. width) *. width in
          Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
        a;
      Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    end

  let pp fmt t =
    if count t = 0 then Format.pp_print_string fmt "(empty)"
    else
      Format.fprintf fmt "n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g" (count t)
        (mean t) (median t) (quantile t 0.99) (max_value t)
end
