(** Array-based binary min-heap, the event queue's priority structure. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val pop_if : 'a t -> ('a -> bool) -> 'a option
(** Pop the minimum only when the predicate accepts it; [None] when
    empty or rejected (the heap is untouched). With a time-below-bound
    predicate this mirrors {!Ladder_queue.pop_until}, so the ladder/heap
    differential oracle covers epoch draining too. *)

val clear : 'a t -> unit
val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. For tests and inspection. *)
