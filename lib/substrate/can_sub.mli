(** The CAN adapter: {!Substrate.t} over {!Lesslog_can.Can}.

    The zone layout is built {e once} for the full [2^m]-slot population
    (zone [i] belongs to PID [i]) from a seed derived deterministically
    from the parameters, and liveness is consulted bit-by-bit at query
    time — no epoch rebuild, which keeps the randomized join sequence out
    of the membership-dependent state. Keys map to points of the unit
    [d]-torus by hashing the key per coordinate.

    The responsible node ({!Substrate.t.owner}) is the nearest {e live}
    zone to the key's point; greedy per-hop routing can dead-end when the
    zone containing the point is dead, so [guaranteed_delivery] is
    [false] — routing faults that the other substrates never exhibit are
    part of CAN's honest comparison numbers. Zone adjacency is symmetric.
    Membership repair is {!Substrate.Generic}. *)

val make :
  ?d:int ->
  Lesslog_id.Params.t ->
  Lesslog_membership.Status_word.t ->
  Substrate.t
(** [d] is the torus dimension (default 2).
    @raise Invalid_argument unless [1 <= d <= 6]. *)
