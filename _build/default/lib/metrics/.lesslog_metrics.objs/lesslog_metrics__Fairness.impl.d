lib/metrics/fairness.ml: Array Float List
