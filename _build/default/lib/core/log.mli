(** Logging source for the core algorithm. Disabled by default; enable
    with e.g. [Logs.Src.set_level Lesslog.Log.src (Some Logs.Debug)] or
    the CLI's [-v] flag. *)

val src : Logs.src

include Logs.LOG
