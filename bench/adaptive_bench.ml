(* `bench adaptive`: adaptive replication under time-varying demand.

   Three gates:

   1. Curve family (always enforced): the replicas-vs-request-rate sweep
      — >= 3 demand levels x {native logless, dynamic-RF} on the sharded
      simulator. Every point's end-state replica population must land
      inside its policy's band around the mean-field oracle
      max(1, R / capacity): the dynamic-RF policy sizes the replica set
      from the access log, so its band is tight ([0.6, 2]); the native
      logless trigger overshoots by design (per-node detection plus
      cooldown quantisation), so it keeps the established [1, 4]. The
      measured loss fraction must not exceed the fluid bound at the
      end-state population by more than 5 points (faults during the
      convergence ramp are the slack).

   2. Determinism (always enforced, the CI smoke gate): one dynamic-RF
      point re-run at 1, 2, 4 and 8 worker domains must reproduce the
      digest, served count and replica population bit for bit — the
      policy runs in sequential barrier globals and draws no randomness,
      so domain count stays a speed knob with the policy active.

   3. Timeline (always enforced): the multi-file hot/warm/cold timeline
      (popularity shifts plus a flash crowd) against the fluid
      multi-file balancer. At every interval the policy's prescribed
      population must stay within [0.5x, 3x] of the per-class oracle —
      the ramp-rate lag on the flash is expected and bounded, not a
      failure.

   Everything lands in BENCH_adaptive.json ($LESSLOG_BENCH_OUT or the
   working directory); LESSLOG_BENCH_QUICK=1 shrinks m and the
   durations for CI smoke. *)

module E = Lesslog_harness.Experiments
module Bench_json = Lesslog_report.Bench_json

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

let failed = ref false

let fail fmt =
  failed := true;
  Printf.eprintf fmt

(* Gate 1: the curve family against the mean-field oracle. *)
let curve_gate ~quick =
  let m = if quick then 9 else 12 in
  let duration = if quick then 6.0 else 8.0 in
  let rates =
    if quick then [ 500.0; 1000.0; 2000.0 ]
    else [ 500.0; 1000.0; 2000.0; 4000.0 ]
  in
  let points = E.adaptive_sweep ~m ~duration ~rates () in
  print_endline (E.render_adaptive points);
  List.iter
    (fun (p : E.adaptive_point) ->
      let ratio = float_of_int p.E.ad_replicas_end /. p.E.ad_oracle_replicas in
      let lo, hi =
        if p.E.ad_label = "dynamic-rf" then (0.6, 2.0) else (1.0, 4.0)
      in
      if ratio < lo || ratio > hi then
        fail
          "bench adaptive: FAIL: %s at %.0f req/s ended with %d replicas, \
           %.2fx the oracle %.1f (band [%g, %g])\n"
          p.E.ad_label p.E.ad_rate p.E.ad_replicas_end ratio
          p.E.ad_oracle_replicas lo hi;
      if p.E.ad_loss > p.E.ad_oracle_loss +. 0.05 then
        fail
          "bench adaptive: FAIL: %s at %.0f req/s lost %.4f of requests, \
           above the fluid bound %.4f + 0.05\n"
          p.E.ad_label p.E.ad_rate p.E.ad_loss p.E.ad_oracle_loss)
    points;
  (points, m, duration)

(* Gate 2: the digest survives the domain count with the policy active. *)
let determinism_gate ~quick =
  let m = if quick then 9 else 11 in
  let duration = if quick then 3.0 else 4.0 in
  let point domains =
    E.adaptive_point ~domains ~dynamic:true ~m ~rate:1000.0 ~duration
      ~capacity:100.0 ~seed:42 ()
  in
  let reference = point 1 in
  Printf.printf
    "determinism (dynamic-rf): m=%d, digest at 1 domain = %d\n%!" m
    reference.E.ad_digest;
  List.iter
    (fun domains ->
      let p = point domains in
      let same =
        p.E.ad_digest = reference.E.ad_digest
        && p.E.ad_served = reference.E.ad_served
        && p.E.ad_replicas_end = reference.E.ad_replicas_end
        && p.E.ad_events = reference.E.ad_events
      in
      Printf.printf "  %d domains: digest %d  served %d  %s\n%!" domains
        p.E.ad_digest p.E.ad_served
        (if same then "OK" else "DIVERGED");
      if not same then
        fail
          "bench adaptive: FAIL: dynamic-rf results at %d domains diverge \
           from 1 domain (digest %d vs %d)\n"
          domains p.E.ad_digest reference.E.ad_digest)
    [ 2; 4; 8 ];
  reference

(* Gate 3: the multi-file timeline tracks the per-class oracle. *)
let timeline_gate ~quick =
  let intervals = if quick then 12 else 16 in
  let steps = E.adaptive_timeline ~intervals () in
  print_endline (E.render_adaptive_timeline steps);
  List.iter
    (fun (s : E.adaptive_step) ->
      let ratio = float_of_int s.E.st_rf_replicas /. s.E.st_oracle in
      if ratio < 0.5 || ratio > 3.0 then
        fail
          "bench adaptive: FAIL: timeline interval %d prescribes %d \
           replicas, %.2fx the per-class oracle %.1f (band [0.5, 3])\n"
          s.E.st_i s.E.st_rf_replicas ratio s.E.st_oracle)
    steps;
  steps

let run () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  print_endline "bench adaptive: adaptive replication vs time-varying demand";
  print_endline "-----------------------------------------------------------";
  let points, m, duration = curve_gate ~quick in
  let reference = determinism_gate ~quick in
  let steps = timeline_gate ~quick in
  Bench_json.write
    ~path:(out_file "BENCH_adaptive.json")
    ([
       ("adaptive/m", float_of_int m);
       ("adaptive/duration_s", duration);
       ("adaptive/determinism_digest", float_of_int reference.E.ad_digest);
       ("adaptive/determinism_events", float_of_int reference.E.ad_events);
     ]
    @ List.concat_map
        (fun (p : E.adaptive_point) ->
          let k fmt =
            Printf.sprintf "adaptive/%s_r%.0f_%s" p.E.ad_label p.E.ad_rate fmt
          in
          [
            (k "replicas", float_of_int p.E.ad_replicas_end);
            (k "rf", float_of_int p.E.ad_rf_end);
            (k "oracle", p.E.ad_oracle_replicas);
            (k "loss", p.E.ad_loss);
          ])
        points
    @ List.concat_map
        (fun (s : E.adaptive_step) ->
          let k fmt = Printf.sprintf "adaptive/timeline_i%02d_%s" s.E.st_i fmt in
          [
            (k "fluid", float_of_int s.E.st_fluid_replicas);
            (k "rf", float_of_int s.E.st_rf_replicas);
            (k "oracle", s.E.st_oracle);
          ])
        steps);
  Printf.printf "wrote %s\n" (out_file "BENCH_adaptive.json");
  if !failed then exit 1
