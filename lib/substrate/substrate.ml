open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Rng = Lesslog_prng.Rng

type membership_style = Self_organized | Generic

type t = {
  name : string;
  next_hop : key:string -> Pid.t -> Pid.t option;
  owner : key:string -> Pid.t option;
  neighbors : key:string -> Pid.t -> Pid.t list;
  symmetric_neighbors : bool;
  guaranteed_delivery : bool;
  membership : membership_style;
  notify : unit -> unit;
  replica_target :
    rng:Rng.t ->
    holds:(Pid.t -> bool) ->
    overloaded:Pid.t ->
    key:string ->
    Pid.t option;
}

let route_path t ~key ~origin ~max_hops =
  let rec go acc hops p =
    match t.next_hop ~key p with
    | None -> (List.rev (p :: acc), true)
    | Some q ->
        if hops >= max_hops then (List.rev (p :: acc), false)
        else go (p :: acc) (hops + 1) q
  in
  go [] 0 origin

let neighbor_replica_target ~neighbors ~rng ~holds ~overloaded ~key =
  match List.filter (fun p -> not (holds p)) (neighbors ~key overloaded) with
  | [] -> None
  | [ p ] -> Some p
  | candidates -> Some (Rng.pick_list rng candidates)

let epoch_cached status ~build =
  let cache = ref None in
  fun () ->
    let e = Status_word.epoch status in
    match !cache with
    | Some (e', v) when e' = e -> v
    | _ ->
        let v = build () in
        cache := Some (e, v);
        v
