(** Writer for the machine-readable benchmark trajectory files
    ([BENCH_micro.json], [BENCH_figures.json]): a flat JSON object mapping
    benchmark name to a number (ns/op for micro-benchmarks, wall-clock
    seconds for figure regenerations). The format is documented in
    EXPERIMENTS.md; keep the two in sync. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control bytes) —
    shared with every JSON emitter in the repo so they agree on it. *)

val to_string : (string * float) list -> string
(** Render pairs as a flat JSON object, one key per line, preserving
    order. Non-finite numbers render as [null]. *)

val write : path:string -> (string * float) list -> unit
