lib/workload/demand.mli: Lesslog_id Lesslog_membership Lesslog_prng Pid
