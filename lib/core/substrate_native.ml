module Topology = Lesslog_topology.Topology
module Substrate = Lesslog_substrate.Substrate

let of_cluster cluster =
  let status = Cluster.status cluster in
  let next_hop ~key p =
    Topology.route_next (Cluster.tree_of_key cluster key) status p
  in
  let owner ~key =
    Topology.insertion_target (Cluster.tree_of_key cluster key) status
  in
  let neighbors ~key p =
    Topology.children_list (Cluster.tree_of_key cluster key) status p
  in
  let replica_target ~rng ~holds:_ ~overloaded ~key =
    Ops.choose_replica_target ~rng cluster ~overloaded ~key
  in
  {
    Substrate.name = "lesslog";
    next_hop;
    owner;
    neighbors;
    symmetric_neighbors = false;
    guaranteed_delivery = true;
    membership = Substrate.Self_organized;
    notify = (fun () -> ());
    replica_target;
  }
