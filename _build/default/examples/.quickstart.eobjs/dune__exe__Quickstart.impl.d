examples/quickstart.ml: Format Lesslog Lesslog_id Lesslog_prng Lesslog_ptree List Option Params Pid Printf String
