lib/core/locate.mli: Cluster Lesslog_id Lesslog_storage Pid
