examples/document_store.mli:
