open Lesslog_id
module Rng = Lesslog_prng.Rng
module Zipf = Lesslog_prng.Zipf
module Status_word = Lesslog_membership.Status_word
module Trace = Lesslog_trace.Trace
module Des_sim = Lesslog_des.Des_sim
module Churn_trace = Lesslog_des.Churn_trace
module Faults = Lesslog_workload.Faults
module Demand = Lesslog_workload.Demand

type sim = Des | Faults

type step =
  | Join of { at : float; node : int }
  | Leave of { at : float; node : int }
  | Fail of { at : float; node : int }
  | Loss of { at : float; until : float; rate : float }
  | Cut of {
      at : float;
      until : float;
      direction : [ `Both | `In | `Out ];
      nodes : int list;
    }

type t = {
  m : int;
  seed : int;
  sim : sim;
  rate : float;
  duration : float;
  capacity : float;
  keys : int;
  steps : step list;
}

let step_time = function
  | Join { at; _ } | Leave { at; _ } | Fail { at; _ } | Loss { at; _ }
  | Cut { at; _ } ->
      at

let sort_steps steps =
  List.stable_sort (fun a b -> Float.compare (step_time a) (step_time b)) steps

let key_of_index i = Printf.sprintf "check/k%d" i

(* --- Generation -------------------------------------------------------- *)

(* Churn is confined to a small set of churner nodes so schedules stay
   short enough to delta-debug (a few dozen steps, not one per node). *)
let churner_count = 8

let generate ~seed ~m ~sim =
  let rng = Rng.create ~seed in
  let params = Params.create ~m () in
  let status = Status_word.create params ~initially_live:true in
  let rate = 40.0 +. Rng.float rng 60.0 in
  let capacity = 60.0 +. Rng.float rng 60.0 in
  let keys = 1 + Rng.int rng 3 in
  match sim with
  | Des ->
      let duration = 20.0 in
      let live = Status_word.live_pids status in
      let churners =
        Array.to_list
          (Rng.sample_without_replacement rng ~k:churner_count
             (Array.of_list live))
      in
      let churn =
        Churn_trace.generate ~rng ~live:churners
          {
            Churn_trace.mean_session = duration /. 2.5;
            mean_downtime = duration /. 4.0;
            fail_fraction = 0.3;
            duration;
          }
      in
      let steps =
        List.map
          (fun { Des_sim.at; action } ->
            match action with
            | Des_sim.Join p -> Join { at; node = Pid.to_int p }
            | Des_sim.Leave p -> Leave { at; node = Pid.to_int p }
            | Des_sim.Fail p -> Fail { at; node = Pid.to_int p })
          churn
      in
      { m; seed; sim; rate; duration; capacity; keys; steps }
  | Faults ->
      let duration = 30.0 in
      let live = Status_word.live_pids status in
      let crash_fraction = 4.0 /. float_of_int (List.length live) in
      let plan =
        Faults.generate ~rng ~live ~duration ~crash_fraction
          ~restart_fraction:0.5 ~bursts:1 ~burst_loss:0.3
          ~partitions:(Rng.int rng 2)
          ~partition_fraction:0.1 ()
      in
      let steps =
        List.concat_map
          (fun { Faults.node; at; restart_at } ->
            let node = Pid.to_int node in
            Fail { at; node }
            ::
            (match restart_at with
            | Some r -> [ Join { at = r; node } ]
            | None -> []))
          plan.Faults.crashes
        @ List.map
            (fun { Faults.from_; until; loss } ->
              Loss { at = from_; until; rate = loss })
            plan.Faults.bursts
        @ List.map
            (fun { Faults.from_; until; group; direction } ->
              Cut
                {
                  at = from_;
                  until;
                  direction =
                    (match direction with
                    | Faults.Both -> `Both
                    | Faults.Inbound -> `In
                    | Faults.Outbound -> `Out);
                  nodes = List.map Pid.to_int group;
                })
            plan.Faults.partitions
      in
      { m; seed; sim; rate; duration; capacity; keys; steps = sort_steps steps }

(* --- Interpretation ---------------------------------------------------- *)

(* Shrinking drops arbitrary steps, which can leave a Join for a live node
   or a Leave/Fail for a dead one. Self_org raises on those, so the
   conversion sanitizes against a predicted liveness trace: impossible
   steps become no-ops. Purely data-driven, hence deterministic. *)
let to_churn t =
  let space = Params.space (Params.create ~m:t.m ()) in
  let live = Array.make space true in
  List.filter_map
    (fun step ->
      match step with
      | Join { at; node } when node < space && not live.(node) ->
          live.(node) <- true;
          Some { Des_sim.at; action = Des_sim.Join (Pid.unsafe_of_int node) }
      | Leave { at; node } when node < space && live.(node) ->
          live.(node) <- false;
          Some { Des_sim.at; action = Des_sim.Leave (Pid.unsafe_of_int node) }
      | Fail { at; node } when node < space && live.(node) ->
          live.(node) <- false;
          Some { Des_sim.at; action = Des_sim.Fail (Pid.unsafe_of_int node) }
      | Join _ | Leave _ | Fail _ | Loss _ | Cut _ -> None)
    (sort_steps t.steps)

let to_plan t =
  let space = Params.space (Params.create ~m:t.m ()) in
  let down = Array.make space false in
  let crashes = ref [] and bursts = ref [] and partitions = ref [] in
  List.iter
    (fun step ->
      match step with
      | Fail { at; node } when node < space && not down.(node) ->
          down.(node) <- true;
          crashes :=
            { Faults.node = Pid.unsafe_of_int node; at; restart_at = None }
            :: !crashes
      | Join { at; node } when node < space && down.(node) ->
          down.(node) <- false;
          (* Attach the restart to this node's latest crash — the first
             match in the newest-first accumulator. *)
          let attached = ref false in
          crashes :=
            List.map
              (fun c ->
                if
                  (not !attached)
                  && Pid.to_int c.Faults.node = node
                  && c.Faults.restart_at = None
                then begin
                  attached := true;
                  { c with Faults.restart_at = Some at }
                end
                else c)
              !crashes
      | Loss { at; until; rate } ->
          bursts := { Faults.from_ = at; until; loss = rate } :: !bursts
      | Cut { at; until; direction; nodes } ->
          let nodes = List.filter (fun n -> n >= 0 && n < space) nodes in
          if nodes <> [] then
            partitions :=
              {
                Faults.from_ = at;
                until;
                group = List.map Pid.unsafe_of_int nodes;
                direction =
                  (match direction with
                  | `Both -> Faults.Both
                  | `In -> Faults.Inbound
                  | `Out -> Faults.Outbound);
              }
              :: !partitions
      | Fail _ | Join _ | Leave _ -> ())
    (sort_steps t.steps);
  {
    Faults.bursts = List.rev !bursts;
    crashes = List.rev !crashes;
    partitions = List.rev !partitions;
  }

let demand t status =
  let rng = Rng.create ~seed:(t.seed lxor 0x5eed) in
  let live = Status_word.live_array status in
  Rng.shuffle rng live;
  let zipf = Zipf.create ~n:(Array.length live) ~s:0.8 in
  let rates =
    Array.make (Params.space (Params.create ~m:t.m ())) 0.0
  in
  Array.iteri
    (fun rank p ->
      rates.(Pid.to_int p) <- t.rate *. Zipf.probability zipf rank)
    live;
  Demand.of_rates rates

(* --- Codec ------------------------------------------------------------- *)

let mark name value = Trace.Event.Mark { at = 0.0; name; value }

let to_events ?expect ?(mutation = false) t =
  let header =
    [
      mark "check/version" 1.0;
      mark "check/m" (float_of_int t.m);
      mark "check/seed" (float_of_int t.seed);
      mark "check/sim" (match t.sim with Des -> 0.0 | Faults -> 1.0);
      mark "check/rate" t.rate;
      mark "check/duration" t.duration;
      mark "check/capacity" t.capacity;
      mark "check/keys" (float_of_int t.keys);
      mark "check/mutation" (if mutation then 1.0 else 0.0);
    ]
    @ (match expect with
      | Some oracle -> [ mark ("check/expect/" ^ oracle) 1.0 ]
      | None -> [])
  in
  let body =
    List.map
      (fun step ->
        match step with
        | Join { at; node } ->
            Trace.Event.Membership { at; node; change = `Join }
        | Leave { at; node } ->
            Trace.Event.Membership { at; node; change = `Leave }
        | Fail { at; node } ->
            Trace.Event.Membership { at; node; change = `Fail }
        | Loss { at; until; rate } -> Trace.Event.Loss { at; until; rate }
        | Cut { at; until; direction; nodes } ->
            Trace.Event.Cut { at; until; direction; nodes })
      (sort_steps t.steps)
  in
  header @ body

type decoded = { schedule : t; mutation : bool; expect : string option }

let expect_prefix = "check/expect/"

let of_events events =
  let marks = Hashtbl.create 16 in
  let expect = ref None in
  let steps = ref [] in
  let err = ref None in
  List.iter
    (fun e ->
      match e with
      | Trace.Event.Mark { name; value; _ } ->
          if
            String.length name > String.length expect_prefix
            && String.sub name 0 (String.length expect_prefix) = expect_prefix
          then
            expect :=
              Some
                (String.sub name
                   (String.length expect_prefix)
                   (String.length name - String.length expect_prefix))
          else Hashtbl.replace marks name value
      | Trace.Event.Membership { at; node; change } ->
          steps :=
            (match change with
            | `Join -> Join { at; node }
            | `Leave -> Leave { at; node }
            | `Fail -> Fail { at; node })
            :: !steps
      | Trace.Event.Loss { at; until; rate } ->
          steps := Loss { at; until; rate } :: !steps
      | Trace.Event.Cut { at; until; direction; nodes } ->
          steps := Cut { at; until; direction; nodes } :: !steps
      | _ -> err := Some "repro file contains non-schedule events")
    events;
  match !err with
  | Some msg -> Error msg
  | None -> (
      let get name =
        match Hashtbl.find_opt marks name with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "repro file missing %s mark" name)
      in
      let ( let* ) = Result.bind in
      let* _version = get "check/version" in
      let* m = get "check/m" in
      let* seed = get "check/seed" in
      let* sim = get "check/sim" in
      let* rate = get "check/rate" in
      let* duration = get "check/duration" in
      let* capacity = get "check/capacity" in
      let* keys = get "check/keys" in
      let* mutation = get "check/mutation" in
      let m = int_of_float m in
      if m < 2 || m > 20 then Error "check/m out of range"
      else
        Ok
          {
            schedule =
              {
                m;
                seed = int_of_float seed;
                sim = (if sim = 0.0 then Des else Faults);
                rate;
                duration;
                capacity;
                keys = int_of_float keys;
                steps = sort_steps (List.rev !steps);
              };
            mutation = mutation <> 0.0;
            expect = !expect;
          })

let save ?expect ?mutation path t =
  let w = Trace.Writer.to_file path in
  List.iter (Trace.Writer.emit w) (to_events ?expect ?mutation t);
  Trace.Writer.close w

let load path =
  match Trace.read_file path with
  | Error msg -> Error msg
  | Ok events -> of_events events

let pp_step fmt = function
  | Join { at; node } -> Format.fprintf fmt "t=%.3f join %d" at node
  | Leave { at; node } -> Format.fprintf fmt "t=%.3f leave %d" at node
  | Fail { at; node } -> Format.fprintf fmt "t=%.3f fail %d" at node
  | Loss { at; until; rate } ->
      Format.fprintf fmt "t=%.3f..%.3f loss %.2f" at until rate
  | Cut { at; until; direction; nodes } ->
      Format.fprintf fmt "t=%.3f..%.3f cut/%s {%s}" at until
        (match direction with `Both -> "both" | `In -> "in" | `Out -> "out")
        (String.concat "," (List.map string_of_int nodes))

let pp fmt t =
  Format.fprintf fmt "m=%d seed=%d sim=%s rate=%.1f capacity=%.1f keys=%d %d steps"
    t.m t.seed
    (match t.sim with Des -> "des" | Faults -> "faults")
    t.rate t.capacity t.keys (List.length t.steps)
