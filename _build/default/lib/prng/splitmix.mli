(** SplitMix64 — the raw deterministic 64-bit generator underneath {!Rng}.

    Implemented from the published constants (Steele, Lea & Flood 2014) so
    that experiments are reproducible without depending on OS entropy or on
    the stdlib [Random] state layout changing across compiler versions. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Any seed is acceptable. *)

val copy : t -> t
(** Independent copy with identical state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val next_int63 : t -> int
(** Next non-negative integer, uniform over [\[0, 2^62)] (the full
    non-negative range of a 63-bit OCaml [int]). *)

val split : t -> t
(** Derive an independent child generator; the parent state advances. *)
