lib/id/params.ml: Format Lesslog_bits
