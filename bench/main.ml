(* Benchmark harness.

   Part 1 — bechamel micro-benchmarks of the primitives the paper's claims
   rest on (bitwise tree navigation, logless placement, lookup routing).
   The `naive/` entries run the uncached reference implementations
   (Topology.Naive) on identical inputs, so each JSON snapshot carries its
   own before/after pair.

   Part 2 — regeneration of every figure of the paper's evaluation
   (Figures 5–8) plus the ablation tables A1–A5 and the V1 engine
   cross-validation, at the paper's full scale (m = 10, 1024 slots).

   Both parts append to the machine-readable trajectory files:
   BENCH_micro.json (name -> ns/op) and BENCH_figures.json (figure ->
   wall-clock seconds), written to $LESSLOG_BENCH_OUT or the working
   directory. The format is documented in EXPERIMENTS.md.

   Part 3 — `main.exe des` runs only the event-core throughput benchmark
   (Des_bench): packed scheduler vs the closure+heap baseline, plus full
   Des_sim runs at m = 10 and m = 16, appending BENCH_des.json.

   Part 4 — `main.exe obs` runs the observability overhead gate
   (Obs_bench): the des m = 10 workload plain vs instrumented, enforcing
   the < 5% budget and appending BENCH_obs.json.

   Part 5 — `main.exe adaptive` runs the adaptive-replication gates
   (Adaptive_bench): the native-vs-dynamic-RF curve family against the
   mean-field oracle, the policy-active determinism check and the
   multi-file timeline, appending BENCH_adaptive.json.

   Part 6 — `main.exe coldtier` runs the erasure-coded cold-tier gates
   (Coldtier_bench): storage amplification and repair bytes of the
   hybrid replicated/coded stack against full replication on the
   adaptive lifecycle, plus the cold-ledger domain-count determinism
   check, appending BENCH_coldtier.json.

   Set LESSLOG_BENCH_QUICK=1 to run the figures at reduced scale and
   LESSLOG_BENCH_MICRO_ONLY=1 to skip them entirely. *)

open Bechamel
open Toolkit
open Lesslog_id
module E = Lesslog_harness.Experiments
module A = Lesslog_harness.Ablations
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Topology = Lesslog_topology.Topology
module Demand = Lesslog_workload.Demand
module Flow = Lesslog_flow.Flow
module Rng = Lesslog_prng.Rng
module Bench_json = Lesslog_report.Bench_json

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

(* --- Part 1: micro-benchmarks ------------------------------------------ *)

let params10 = Params.create ~m:10 ()

let micro_tests () =
  let tree = Ptree.make params10 ~root:(Pid.unsafe_of_int 421) in
  let all_live = Status_word.create params10 ~initially_live:true in
  let holed =
    let s = Status_word.create params10 ~initially_live:true in
    let rng = Rng.create ~seed:5 in
    ignore (Status_word.kill_fraction s rng ~fraction:0.3);
    s
  in
  (* Correlated failure: a contiguous 30% band of the VID space is dead
     (slots 40%..70%), the regime where FINDLIVENODE must skip long dead
     runs. Random starts land in the band ~30% of the time, making the
     scan length the dominant cost. *)
  let block_holed =
    let s = Status_word.create params10 ~initially_live:true in
    let space = Params.space params10 in
    let lo = 4 * space / 10 and hi = 7 * space / 10 in
    for v = lo to hi - 1 do
      Status_word.set_dead s (Ptree.pid_of_vid tree (Vid.unsafe_of_int v))
    done;
    s
  in
  let mid = Pid.unsafe_of_int 777 in
  let psi = Lesslog_hash.Psi.create ~m:10 in
  let chord = Lesslog_chord.Chord.create params10 ~live:(Pid.all params10) in
  let pastry = Lesslog_pastry.Pastry.create params10 ~live:(Pid.all params10) in
  let can_rng = Rng.create ~seed:6 in
  let can = Lesslog_can.Can.create ~rng:can_rng ~n:1024 ~d:2 in
  let fs = Lesslog_fs.Fs.create ~m:10 () in
  (match Lesslog_fs.Fs.write fs ~key:"bench/blob" ~data:(String.make 4096 'x') with
  | Ok _ -> ()
  | Error _ -> failwith "bench fs write failed");
  let cluster = Cluster.create params10 in
  let key = "bench/object" in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:9 in
  (* A mid-sized holder population for the flow evaluation. *)
  for _ = 1 to 63 do
    match Cluster.holders cluster ~key with
    | [] -> ()
    | holders ->
        ignore
          (Ops.replicate ~rng cluster ~overloaded:(Rng.pick_list rng holders)
             ~key)
  done;
  let flow = Flow.create (Cluster.tree_of_key cluster key) all_live in
  let holders p = Cluster.holds cluster p ~key in
  let demand = Demand.uniform all_live ~total:10_000.0 in
  let i = ref 0 in
  let next_pid () =
    i := (!i + 7919) land 1023;
    Pid.unsafe_of_int !i
  in
  [
    Test.make ~name:"tree/parent"
      (Staged.stage (fun () -> Ptree.parent tree (next_pid ())));
    Test.make ~name:"tree/children"
      (Staged.stage (fun () -> Ptree.children tree (next_pid ())));
    Test.make ~name:"tree/depth"
      (Staged.stage (fun () -> Ptree.depth tree (next_pid ())));
    Test.make ~name:"tree/children_list(30% dead)"
      (Staged.stage (fun () -> Topology.children_list tree holed (next_pid ())));
    Test.make ~name:"naive/children_list(30% dead)"
      (Staged.stage (fun () ->
           Topology.Naive.children_list tree holed (next_pid ())));
    Test.make ~name:"tree/find_live_node(30% dead)"
      (Staged.stage (fun () ->
           Topology.find_live_node tree block_holed ~start:(next_pid ())));
    Test.make ~name:"naive/find_live_node(30% dead)"
      (Staged.stage (fun () ->
           Topology.Naive.find_live_node tree block_holed ~start:(next_pid ())));
    Test.make ~name:"tree/find_live_node(30% random dead)"
      (Staged.stage (fun () ->
           Topology.find_live_node tree holed ~start:(next_pid ())));
    Test.make ~name:"lookup/route_path(all live)"
      (Staged.stage (fun () -> Topology.route_path tree all_live ~origin:mid));
    Test.make ~name:"lookup/route_path(30% dead)"
      (Staged.stage (fun () ->
           let origin =
             match Topology.find_live_node tree holed ~start:(next_pid ()) with
             | Some p -> p
             | None -> mid
           in
           Topology.route_path tree holed ~origin));
    Test.make ~name:"naive/route_path(30% dead)"
      (Staged.stage (fun () ->
           let origin =
             match Topology.find_live_node tree holed ~start:(next_pid ()) with
             | Some p -> p
             | None -> mid
           in
           Topology.Naive.route_path tree holed ~origin));
    Test.make ~name:"lookup/psi"
      (Staged.stage (fun () -> Lesslog_hash.Psi.target psi "http://example.com/some/object.bin"));
    Test.make ~name:"lookup/chord"
      (Staged.stage (fun () ->
           Lesslog_chord.Chord.lookup chord ~from:(next_pid ()) ~target:512));
    Test.make ~name:"lookup/pastry"
      (Staged.stage (fun () ->
           Lesslog_pastry.Pastry.lookup pastry ~from:(next_pid ()) ~target:512));
    Test.make ~name:"lookup/can(d=2)"
      (Staged.stage (fun () ->
           Lesslog_can.Can.random_lookup can ~rng:can_rng));
    Test.make ~name:"fs/read(4KiB blob)"
      (Staged.stage (fun () ->
           Lesslog_fs.Fs.read fs ~origin:(next_pid ()) ~key:"bench/blob"));
    Test.make ~name:"core/get(1024 nodes)"
      (Staged.stage (fun () -> Ops.get cluster ~origin:(next_pid ()) ~key));
    Test.make ~name:"core/replica_decision"
      (Staged.stage (fun () ->
           Ops.choose_replica_target ~rng cluster
             ~overloaded:(Cluster.target_of_key cluster key)
             ~key));
    Test.make ~name:"flow/serve_rates(1024 nodes, 64 copies)"
      (Staged.stage (fun () -> Flow.serve_rates flow ~holders ~demand));
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let tests = Test.make_grouped ~name:"lesslog" (micro_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  print_endline "Micro-benchmarks (monotonic clock, ns/op)";
  print_endline "-----------------------------------------";
  List.iter
    (fun (name, ns) -> Printf.printf "%-44s %12.1f ns\n" name ns)
    rows;
  print_newline ();
  Bench_json.write ~path:(out_file "BENCH_micro.json") rows;
  Printf.printf "wrote %s\n\n" (out_file "BENCH_micro.json")

(* --- Part 2: paper figures and ablations -------------------------------- *)

let figure_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  figure_times := (name, Unix.gettimeofday () -. t0) :: !figure_times;
  result

let show ~title ~x_label series =
  print_endline title;
  print_endline (String.make (String.length title) '-');
  print_endline (Lesslog_report.Table.of_series ~x_label series);
  print_newline ()

let run_figures () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  let config = if quick then E.quick else E.default in
  Printf.printf
    "Paper evaluation: m = %d (%d slots), capacity = %.0f req/s, %d trials\n\n"
    config.E.m (1 lsl config.E.m) config.E.capacity config.E.trials;
  show ~title:"Figure 5: replicas to balance vs demand (even load)"
    ~x_label:"req/s"
    (timed "fig5" (fun () -> E.fig5 ~config ()));
  show ~title:"Figure 6: LessLog with 10/20/30% dead nodes (even load)"
    ~x_label:"req/s"
    (timed "fig6" (fun () -> E.fig6 ~config ()));
  show ~title:"Figure 7: replicas to balance vs demand (locality 80/20)"
    ~x_label:"req/s"
    (timed "fig7" (fun () -> E.fig7 ~config ()));
  show ~title:"Figure 8: LessLog with 10/20/30% dead nodes (locality)"
    ~x_label:"req/s"
    (timed "fig8" (fun () -> E.fig8 ~config ()));
  show ~title:"A1: mean lookup hops vs m = log2 N (lesslog, chord, pastry, CAN)"
    ~x_label:"m"
    (timed "A1" (fun () -> A.hops ~samples:(if quick then 500 else 2000) ()));
  show ~title:"A2: counter-based eviction after 10x demand decay"
    ~x_label:"peak req/s"
    (timed "A2" (fun () -> A.eviction ~config ()));
  show ~title:"A3: read-fault rate vs simultaneously failed fraction"
    ~x_label:"failed"
    (timed "A3" (fun () -> A.fault_tolerance ()));
  show ~title:"A5: proportional choice vs biased placements (locality, 30% dead)"
    ~x_label:"req/s"
    (timed "A5" (fun () -> A.proportional_choice ~config ()));
  let lifecycle =
    timed "A2_lifecycle" (fun () ->
        A.eviction_lifecycle
          ~peak_duration:(if quick then 15.0 else 40.0)
          ~calm_duration:(if quick then 30.0 else 80.0)
          ())
  in
  print_endline "A2 (message-level): flash-crowd replica lifecycle";
  print_endline "--------------------------------------------------";
  Printf.printf
    "created %d, evicted %d, peak concurrent %.0f, final copies %d, faults %d\n\n"
    lifecycle.A.created lifecycle.A.evicted lifecycle.A.peak_copies
    lifecycle.A.final_copies lifecycle.A.lifecycle_faults;
  show ~title:"A6: UPDATEFILE messages vs replica population (m = 10)"
    ~x_label:"copies"
    (timed "A6" (fun () -> A.update_cost ()));
  show ~title:"V1: fluid solver vs event-driven simulator"
    ~x_label:"req/s"
    (timed "V1" (fun () ->
         A.fluid_vs_des ~duration:(if quick then 10.0 else 30.0) ()));
  let sessions =
    timed "A7" (fun () ->
        A.session_churn ~duration:(if quick then 30.0 else 120.0) ())
  in
  print_endline "A7: availability under session-based churn (event-driven)";
  print_endline "----------------------------------------------------------";
  print_endline
    (Lesslog_report.Table.render
       ~header:
         [ "session(s)"; "availability"; "served"; "faults"; "joins";
           "leaves"; "fails"; "replicas"; "ctrl msgs"; "transfers" ]
       (List.map
          (fun o ->
            [
              Printf.sprintf "%.0f" o.A.mean_session;
              Printf.sprintf "%.4f" o.A.availability;
              string_of_int o.A.served;
              string_of_int o.A.faults;
              string_of_int o.A.joins;
              string_of_int o.A.leaves;
              string_of_int o.A.fails;
              string_of_int o.A.replicas_created;
              string_of_int o.A.control_messages;
              string_of_int o.A.file_transfers;
            ])
          sessions));
  print_newline ();
  let outcomes =
    timed "A4" (fun () -> A.churn ~duration:(if quick then 20.0 else 60.0) ())
  in
  print_endline "A4: availability under membership churn (event-driven)";
  print_endline "------------------------------------------------------";
  print_endline
    (Lesslog_report.Table.render
       ~header:[ "events/min"; "availability"; "served"; "faults"; "replicas" ]
       (List.map
          (fun o ->
            [
              Printf.sprintf "%.0f" o.A.events_per_min;
              Printf.sprintf "%.4f" o.A.availability;
              string_of_int o.A.served;
              string_of_int o.A.faults;
              string_of_int o.A.replicas_created;
            ])
          outcomes));
  Bench_json.write
    ~path:(out_file "BENCH_figures.json")
    (List.rev !figure_times);
  Printf.printf "\nwrote %s\n" (out_file "BENCH_figures.json")

let () =
  if Array.exists (( = ) "des") Sys.argv then Des_bench.run ()
  else if Array.exists (( = ) "pdes") Sys.argv then Pdes_bench.run ()
  else if Array.exists (( = ) "obs") Sys.argv then Obs_bench.run ()
  else if Array.exists (( = ) "adaptive") Sys.argv then Adaptive_bench.run ()
  else if Array.exists (( = ) "coldtier") Sys.argv then Coldtier_bench.run ()
  else begin
    run_micro ();
    if Sys.getenv_opt "LESSLOG_BENCH_MICRO_ONLY" <> Some "1" then run_figures ()
  end
