(** Per-node local storage.

    Distinguishes the two file categories of Section 5.2: an {e inserted}
    file is the original copy placed by (ADVANCED)INSERTFILE; a
    {e replicated} file was copied in by REPLICATEFILE from an overloaded
    node. Leaving nodes discard replicas but must re-insert their inserted
    files. Every copy carries a version (for UPDATEFILE) and an access
    counter (for counter-based eviction). *)

type origin = Inserted | Replicated

val pp_origin : Format.formatter -> origin -> unit

type entry = {
  key : string;
  origin : origin;
  mutable version : int;
  counter : Access_counter.t;
}

type t

val create : unit -> t

val set_observer : t -> (string -> bool -> unit) -> unit
(** [set_observer t f] registers the single change observer: [f key true]
    fires after every {!add} and [f key false] after every removal that
    actually dropped a copy ({!remove}, {!drop_replicas},
    {!evict_cold_replicas}). Notifications are idempotent with respect to
    holding — an [add] of an already-held key still fires [f key true] —
    so observers maintaining an index must treat them as "now holds" /
    "now does not hold" statements, not as deltas. {!Cluster} uses this to
    keep a per-key holder bitset exact without scanning stores. *)

val add : t -> key:string -> origin:origin -> version:int -> now:float -> unit
(** Store a copy. Re-adding an existing key keeps the entry but upgrades
    its origin to [Inserted] if either is inserted, and raises the stored
    version to [version] if newer. *)

val remove : t -> key:string -> unit
val holds : t -> key:string -> bool
val find : t -> key:string -> entry option
val version : t -> key:string -> int option
val origin : t -> key:string -> origin option

val record_access : t -> key:string -> now:float -> unit
(** Bump the access counter; no-op when the key is absent. *)

val set_version : t -> key:string -> version:int -> unit
(** No-op when the key is absent. *)

val keys : t -> string list
val inserted_keys : t -> string list
val replicated_keys : t -> string list
val size : t -> int

val demote_to_replica : t -> key:string -> unit
(** Turn an inserted copy into a plain replica — used when the inserted
    copy migrates to a (re)joined node and the old holder keeps serving a
    non-authoritative copy. No-op when the key is absent. *)

val drop_replicas : t -> string list
(** Remove every replicated copy (a voluntarily leaving node); returns the
    dropped keys. *)

val evict_cold_replicas : t -> now:float -> min_rate:float -> string list
(** The counter-based mechanism: remove replicated (never inserted) copies
    whose estimated access rate fell below [min_rate]; returns the evicted
    keys. *)

val iter : t -> (entry -> unit) -> unit
