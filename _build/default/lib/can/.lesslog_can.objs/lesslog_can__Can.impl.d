lib/can/can.ml: Array Float Hashtbl Lesslog_prng List
