(** Width-parametric bit manipulation.

    All LessLog identifier arithmetic — Properties 1 through 4 of the paper —
    reduces to operations on [width]-bit unsigned integers stored in OCaml
    [int]s. [width] is the paper's [m] (plus, for the fault-tolerant model,
    the derived width [m - b]). Values are always in [\[0, 2^width)];
    functions do not mask their inputs, callers keep that invariant. *)

val max_width : int
(** Largest supported width (we need [2^width] to fit comfortably in an
    OCaml [int] and in an [Array] length). *)

val mask : width:int -> int
(** [mask ~width] is [2^width - 1], the all-ones value — the VID of the
    virtual-tree root. *)

val complement : width:int -> int -> int
(** [complement ~width v] is the bitwise complement of [v] restricted to
    [width] bits — the paper's [k-bar], used to map VIDs to PIDs. *)

val popcount : int -> int
(** Number of set bits. The depth of VID [v] in the virtual tree is
    [width - popcount v]. *)

val floor_log2 : int -> int
(** [floor_log2 x] for [x > 0] is the position of the highest set bit.
    @raise Invalid_argument on [x <= 0]. *)

val leading_ones : width:int -> int -> int
(** Number of consecutive 1-bits starting from bit [width - 1] downward.
    By Property 1 this is the child count of a VID in the virtual tree. *)

val highest_zero_bit : width:int -> int -> int option
(** Position of the leftmost 0-bit below [width], or [None] when the value
    is all ones. By Property 2 setting this bit yields the parent VID. *)

val test_bit : int -> int -> bool
(** [test_bit v i] is whether bit [i] of [v] is set. *)

val set_bit : int -> int -> int
(** [set_bit v i] sets bit [i]. *)

val clear_bit : int -> int -> int
(** [clear_bit v i] clears bit [i]. *)

val trailing_zeros : int -> int
(** Number of consecutive 0-bits from bit 0 upward; [trailing_zeros 0]
    raises. @raise Invalid_argument on [0]. *)

val is_all_ones : width:int -> int -> bool
(** Whether the value is the [width]-bit all-ones pattern. *)

val in_range : width:int -> int -> bool
(** Whether the value lies in [\[0, 2^width)]. *)

val low_bits : width:int -> int -> int
(** [low_bits ~width v] keeps the lowest [width] bits — extracts the
    fault-tolerant model's subtree identifier. *)

val high_bits : total:int -> low:int -> int -> int
(** [high_bits ~total ~low v] extracts bits [low .. total-1], shifted down —
    the fault-tolerant model's subtree VID. *)

val splice : total:int -> low:int -> high:int -> int -> int
(** [splice ~total ~low ~high lowv] recombines a subtree VID [high] with a
    subtree identifier [lowv] into a full [total]-bit VID. *)

val pp_binary : width:int -> Format.formatter -> int -> unit
(** Print as a fixed-width binary literal, matching the paper's VID
    notation. *)

val to_binary_string : width:int -> int -> string
(** Same as {!pp_binary} but as a string. *)
