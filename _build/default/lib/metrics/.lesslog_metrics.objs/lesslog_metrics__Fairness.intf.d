lib/metrics/fairness.mli:
