lib/report/table.mli: Series
