open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module File_store = Lesslog_storage.File_store
module Demand = Lesslog_workload.Demand
module Flow = Lesslog_flow.Flow
module Balance = Lesslog_flow.Balance
module Policy = Lesslog_flow.Policy
module Rng = Lesslog_prng.Rng

let pid = Pid.unsafe_of_int

let key_targeting cluster target =
  let rec search i =
    if i > 100_000 then failwith "no key found"
    else
      let key = Printf.sprintf "synthetic-%d" i in
      if Pid.equal (Cluster.target_of_key cluster key) target then key
      else search (i + 1)
  in
  search 0

let setup ?(m = 5) ?(dead = []) ~target () =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  List.iter (fun p -> Status_word.set_dead (Cluster.status cluster) (pid p)) dead;
  let key = key_targeting cluster (pid target) in
  ignore (Ops.insert cluster ~key);
  (cluster, key)

let flow_of cluster key =
  Flow.create (Cluster.tree_of_key cluster key) (Cluster.status cluster)

(* --- Flow --------------------------------------------------------------- *)

let test_serve_rates_single_holder () =
  let cluster, key = setup ~target:9 () in
  let flow = flow_of cluster key in
  let demand = Demand.uniform (Cluster.status cluster) ~total:3200.0 in
  let loads =
    Flow.serve_rates flow ~holders:(fun p -> Cluster.holds cluster p ~key) ~demand
  in
  (* One copy: the target serves everything. *)
  Alcotest.(check (float 1e-6)) "all at target" 3200.0
    loads.Flow.serve.(9);
  Alcotest.(check (float 1e-9)) "none unserved" 0.0 loads.Flow.unserved;
  Alcotest.(check (float 1e-6)) "mass conserved" 3200.0
    (Array.fold_left ( +. ) 0.0 loads.Flow.serve)

let test_serve_rates_split_by_subtree () =
  let cluster, key = setup ~target:9 () in
  let rng = Rng.create ~seed:1 in
  (* Replicate once at the root: the top child covers exactly half. *)
  ignore (Ops.replicate ~rng cluster ~overloaded:(pid 9) ~key);
  let flow = flow_of cluster key in
  let demand = Demand.uniform (Cluster.status cluster) ~total:3200.0 in
  let loads =
    Flow.serve_rates flow ~holders:(fun p -> Cluster.holds cluster p ~key) ~demand
  in
  Alcotest.(check (float 1e-6)) "root serves half" 1600.0 loads.Flow.serve.(9);
  Alcotest.(check (float 1e-6)) "mass conserved" 3200.0
    (Array.fold_left ( +. ) 0.0 loads.Flow.serve)

let test_serve_rates_no_holder_unserved () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  (* Never inserted: every request is unserved. *)
  let flow = flow_of cluster key in
  let demand = Demand.uniform (Cluster.status cluster) ~total:160.0 in
  let loads = Flow.serve_rates flow ~holders:(fun _ -> false) ~demand in
  Alcotest.(check (float 1e-6)) "all unserved" 160.0 loads.Flow.unserved

let test_serving_node_matches_ops_get () =
  (* The fluid solver's notion of "who serves" must agree with the actual
     message-path semantics of Ops.get. *)
  let cluster, key = setup ~m:5 ~dead:[ 3; 17; 29 ] ~target:3 () in
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 6 do
    match Cluster.holders cluster ~key with
    | [] -> ()
    | holders ->
        ignore
          (Ops.replicate ~rng cluster ~overloaded:(Rng.pick_list rng holders) ~key)
  done;
  let flow = flow_of cluster key in
  let holders p = Cluster.holds cluster p ~key in
  Status_word.iter_live (Cluster.status cluster) (fun origin ->
      let fluid = Flow.serving_node flow ~holders ~origin in
      let real = (Ops.get cluster ~origin ~key).Ops.server in
      Alcotest.(check (option Test_support.pid))
        (Printf.sprintf "origin %d" (Pid.to_int origin))
        real fluid)

let test_inflows_decomposition () =
  let cluster, key = setup ~target:9 () in
  let flow = flow_of cluster key in
  let demand = Demand.uniform (Cluster.status cluster) ~total:3200.0 in
  let holders p = Cluster.holds cluster p ~key in
  let inflows = Flow.inflows flow ~holders ~demand ~at:(pid 9) in
  (* Entries decompose the full served rate. *)
  let total = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 inflows in
  Alcotest.(check (float 1e-6)) "decomposes serve rate" 3200.0 total;
  (* Self-origination shows up as None. *)
  Alcotest.(check bool) "self entry" true
    (List.exists (fun (e, _) -> e = None) inflows);
  (* Entries are the root's children (all live): the biggest forwarder is
     the child with the most offspring. *)
  (match inflows with
  | (Some top, rate) :: _ ->
      let tree = Cluster.tree_of_key cluster key in
      let expected = List.hd (Lesslog_ptree.Ptree.children tree (pid 9)) in
      Alcotest.(check Test_support.pid) "top forwarder" expected top;
      Alcotest.(check (float 1e-6)) "half minus self" 1600.0 rate
  | _ -> Alcotest.fail "expected a forwarding entry first")

(* --- Balance -------------------------------------------------------------- *)

let run_balance ?(policy = Policy.Lesslog) ?(capacity = 100.0) ~total cluster key =
  let rng = Rng.create ~seed:3 in
  let demand = Demand.uniform (Cluster.status cluster) ~total in
  Balance.run ~rng ~cluster ~key ~demand ~capacity ~policy ()

let test_balance_noop_when_under_capacity () =
  let cluster, key = setup ~target:9 () in
  let outcome = run_balance ~total:50.0 cluster key in
  Alcotest.(check int) "no replicas" 0 outcome.Balance.replicas;
  Alcotest.(check bool) "balanced" true outcome.Balance.balanced

let test_balance_reaches_capacity () =
  let cluster, key = setup ~target:9 () in
  let outcome = run_balance ~total:3200.0 cluster key in
  Alcotest.(check bool) "balanced" true outcome.Balance.balanced;
  Alcotest.(check bool) "max load under capacity" true
    (outcome.Balance.max_load <= 100.0);
  Alcotest.(check bool) "created replicas" true (outcome.Balance.replicas > 0)

let test_balance_impossible_demand () =
  (* 32 nodes x 100 req/s capacity = 3200; ask for much more. *)
  let cluster, key = setup ~target:9 () in
  let outcome = run_balance ~total:50_000.0 cluster key in
  Alcotest.(check bool) "not balanced" false outcome.Balance.balanced;
  Alcotest.(check bool) "every node enlisted" true
    (List.length (Balance.holder_pids cluster ~key) = 32)

let test_balance_policies_agree_on_balance () =
  List.iter
    (fun policy ->
      let cluster, key = setup ~target:9 () in
      let outcome = run_balance ~policy ~total:1600.0 cluster key in
      Alcotest.(check bool)
        (Printf.sprintf "%s balanced" (Policy.name policy))
        true outcome.Balance.balanced)
    Policy.all

let test_balance_lesslog_not_more_than_random () =
  let run policy =
    let cluster, key = setup ~m:7 ~target:9 () in
    (run_balance ~policy ~total:4000.0 cluster key).Balance.replicas
  in
  let lesslog = run Policy.Lesslog and random = run Policy.Random in
  Alcotest.(check bool)
    (Printf.sprintf "lesslog %d <= random %d" lesslog random)
    true (lesslog <= random)

let test_balance_logbased_not_more_than_lesslog_locality () =
  let run policy =
    let params = Params.create ~m:7 () in
    let cluster = Cluster.create params in
    let key = key_targeting cluster (pid 9) in
    ignore (Ops.insert cluster ~key);
    let rng = Rng.create ~seed:5 in
    let demand =
      Demand.locality (Cluster.status cluster) ~rng ~total:4000.0
    in
    let outcome =
      Balance.run ~rng ~cluster ~key ~demand ~capacity:100.0 ~policy ()
    in
    outcome.Balance.replicas
  in
  let log_based = run Policy.Log_based and lesslog = run Policy.Lesslog in
  Alcotest.(check bool)
    (Printf.sprintf "log-based %d <= lesslog %d" log_based lesslog)
    true (log_based <= lesslog)

let test_balance_is_fair_under_even_demand () =
  (* Beyond the threshold test: the surviving load is spread evenly among
     the serving nodes (Jain's index near 1 for uniform demand). *)
  let cluster, key = setup ~m:7 ~target:9 () in
  let demand = Demand.uniform (Cluster.status cluster) ~total:5000.0 in
  let rng = Rng.create ~seed:8 in
  let outcome =
    Balance.run ~rng ~cluster ~key ~demand ~capacity:100.0 ~policy:Policy.Lesslog ()
  in
  Alcotest.(check bool) "balanced" true outcome.Balance.balanced;
  let loads = Balance.loads ~cluster ~key ~demand in
  let fairness = Lesslog_metrics.Fairness.jain_nonzero loads.Flow.serve in
  Alcotest.(check bool)
    (Printf.sprintf "fair (jain %.3f)" fairness)
    true (fairness > 0.9)

let test_evict_cold_keeps_balance () =
  let cluster, key = setup ~m:7 ~target:9 () in
  let demand = Demand.uniform (Cluster.status cluster) ~total:5000.0 in
  let rng = Rng.create ~seed:6 in
  let outcome =
    Balance.run ~rng ~cluster ~key ~demand ~capacity:100.0 ~policy:Policy.Lesslog ()
  in
  Alcotest.(check bool) "balanced first" true outcome.Balance.balanced;
  let decayed = Demand.scale demand ~factor:0.1 in
  let evicted =
    Balance.evict_cold ~capacity:100.0 ~cluster ~key ~demand:decayed
      ~min_rate:10.0 ()
  in
  Alcotest.(check bool) "evicted some" true (evicted > 0);
  let loads = Balance.loads ~cluster ~key ~demand:decayed in
  Alcotest.(check bool) "still balanced" true
    (Array.for_all (fun r -> r <= 100.0) loads.Flow.serve);
  Alcotest.(check (float 1e-9)) "nothing unserved" 0.0 loads.Flow.unserved

let test_evict_cold_never_removes_inserted () =
  let cluster, key = setup ~target:9 () in
  let demand = Demand.uniform (Cluster.status cluster) ~total:10.0 in
  let evicted =
    Balance.evict_cold ~cluster ~key ~demand ~min_rate:1000.0 ()
  in
  Alcotest.(check int) "nothing to evict" 0 evicted;
  Alcotest.(check bool) "inserted copy stays" true
    (Cluster.holds cluster (pid 9) ~key)

let test_evict_cold_blocks_unbalancing_removal () =
  let cluster, key = setup ~target:9 () in
  let replica = pid 20 in
  File_store.add (Cluster.store cluster replica) ~key
    ~origin:File_store.Replicated ~version:0 ~now:0.0;
  let demand = Demand.uniform (Cluster.status cluster) ~total:120.0 in
  (* Both copies are cold (min_rate far above either serve rate), but
     dropping the replica would concentrate all 120 req/s on the one
     remaining copy — beyond capacity 100. The rollback path must restore
     the copy, mark the node blocked, and terminate with no eviction
     instead of retrying it forever. *)
  let evicted =
    Balance.evict_cold ~capacity:100.0 ~cluster ~key ~demand ~min_rate:1000.0 ()
  in
  Alcotest.(check int) "eviction blocked" 0 evicted;
  Alcotest.(check bool) "replica restored" true
    (Cluster.holds cluster replica ~key);
  (* Without the capacity constraint the same replica goes. *)
  let evicted = Balance.evict_cold ~cluster ~key ~demand ~min_rate:1000.0 () in
  Alcotest.(check int) "unconstrained eviction proceeds" 1 evicted;
  Alcotest.(check bool) "replica gone" true
    (not (Cluster.holds cluster replica ~key))

(* --- Properties ------------------------------------------------------------ *)

let gen_setup =
  QCheck2.Gen.(
    int_range 3 7 >>= fun m ->
    int_range 0 1_000_000 >>= fun seed ->
    float_range 100.0 5000.0 >>= fun total -> return (m, seed, total))

let prop_balance_always_ends_balanced_when_feasible =
  Test_support.qcheck_case ~count:100 ~name:"feasible demand always balances"
    gen_setup (fun (m, seed, total) ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      let key = Printf.sprintf "file-%d" seed in
      ignore (Ops.insert cluster ~key);
      let rng = Rng.create ~seed in
      let demand = Demand.uniform (Cluster.status cluster) ~total in
      let capacity = 100.0 in
      let feasible = total <= capacity *. float_of_int (Params.space params) in
      let outcome =
        Balance.run ~rng ~cluster ~key ~demand ~capacity ~policy:Policy.Lesslog ()
      in
      (not feasible) || (outcome.Balance.balanced && outcome.Balance.max_load <= capacity))

let prop_flow_mass_conservation =
  Test_support.qcheck_case ~count:150 ~name:"serve + unserved = demand"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      int_range 0 1_000_000 >>= fun seed ->
      return (params, status, tree, seed))
    (fun (_, status, tree, seed) ->
      let rng = Rng.create ~seed in
      let flow = Flow.create tree status in
      let demand = Demand.uniform status ~total:1000.0 in
      (* Random holder set. *)
      let holders p = Pid.to_int p land 1 = Rng.int (Rng.copy rng) 2 in
      let loads = Flow.serve_rates flow ~holders ~demand in
      let served = Array.fold_left ( +. ) 0.0 loads.Flow.serve in
      Float.abs (served +. loads.Flow.unserved -. Demand.total demand) < 1e-6)

let () =
  Alcotest.run "flow"
    [
      ( "flow",
        [
          Alcotest.test_case "single holder" `Quick test_serve_rates_single_holder;
          Alcotest.test_case "split by subtree" `Quick
            test_serve_rates_split_by_subtree;
          Alcotest.test_case "unserved without holder" `Quick
            test_serve_rates_no_holder_unserved;
          Alcotest.test_case "matches Ops.get" `Quick
            test_serving_node_matches_ops_get;
          Alcotest.test_case "inflows decomposition" `Quick
            test_inflows_decomposition;
        ] );
      ( "balance",
        [
          Alcotest.test_case "no-op under capacity" `Quick
            test_balance_noop_when_under_capacity;
          Alcotest.test_case "reaches capacity" `Quick test_balance_reaches_capacity;
          Alcotest.test_case "impossible demand" `Quick
            test_balance_impossible_demand;
          Alcotest.test_case "all policies balance" `Quick
            test_balance_policies_agree_on_balance;
          Alcotest.test_case "lesslog <= random" `Quick
            test_balance_lesslog_not_more_than_random;
          Alcotest.test_case "log-based <= lesslog (locality)" `Quick
            test_balance_logbased_not_more_than_lesslog_locality;
          Alcotest.test_case "fair under even demand" `Quick
            test_balance_is_fair_under_even_demand;
          Alcotest.test_case "eviction keeps balance" `Quick
            test_evict_cold_keeps_balance;
          Alcotest.test_case "eviction spares inserted" `Quick
            test_evict_cold_never_removes_inserted;
          Alcotest.test_case "eviction blocked by capacity" `Quick
            test_evict_cold_blocks_unbalancing_removal;
        ] );
      ( "properties",
        [ prop_balance_always_ends_balanced_when_feasible; prop_flow_mass_conservation ] );
    ]
