open Lesslog_id
module Engine = Lesslog_sim.Engine
module Overlay = Lesslog_net.Overlay
module Latency = Lesslog_net.Latency
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Self_org = Lesslog.Self_org
module Status_word = Lesslog_membership.Status_word
module Topology = Lesslog_topology.Topology
module File_store = Lesslog_storage.File_store
module Access_counter = Lesslog_storage.Access_counter
module Demand = Lesslog_workload.Demand
module Histogram = Lesslog_metrics.Histogram
module Timeseries = Lesslog_metrics.Timeseries
module Rng = Lesslog_prng.Rng
module Trace = Lesslog_trace.Trace
module Obs = Lesslog_obs.Obs
module Substrate = Lesslog_substrate.Substrate
module Rf_policy = Lesslog_policy.Rf_policy

module Packed_bits = Lesslog_bits.Packed_bits

type eviction = { period : float; min_rate : float }

type cold_tier = {
  code_k : int;
  code_r : int;
  file_bytes : int;
  demote_after : int;
}

let default_cold_tier =
  { code_k = 10; code_r = 4; file_bytes = 1 lsl 20; demote_after = 2 }

type config = {
  capacity : float;
  detection_tau : float;
  cooldown : float;
  latency : Latency.t;
  loss : float;
  eviction : eviction option;
}

let default_config =
  {
    capacity = 100.0;
    detection_tau = 2.0;
    cooldown = 0.5;
    latency = Latency.default;
    loss = 0.0;
    eviction = None;
  }

type churn_action = Join of Pid.t | Leave of Pid.t | Fail of Pid.t

type churn_event = { at : float; action : churn_action }

(* Overlay messages ride the packed plane: the tag lives in bits 0-2 of
   the payload word [b], fields above it, and the float slot [x] carries
   the issue timestamp where one is needed.

     GET    b = 0 | origin << 3 | hops << 27 | id << 33     x = issued_at
     REPLY  b = 1 | hops << 3 | server << 9 | id << 33      x = issued_at
     PUSH   b = 2 | version << 3

   The request id (a per-run monotone counter, masked to 30 bits — far
   beyond any run length) sits at bit 33 in both request and reply, and
   is what keys the per-request span in the observability sink. No
   message constructor allocates. *)

let tag_get = 0
let tag_reply = 1
let tag_push = 2
let origin_bits = 24
let origin_mask = (1 lsl origin_bits) - 1
let hops_bits = 6
let hops_mask = (1 lsl hops_bits) - 1
let id_mask = (1 lsl 30) - 1

let get_b ~id ~origin ~hops =
  tag_get lor (origin lsl 3)
  lor ((hops land hops_mask) lsl (3 + origin_bits))
  lor (id lsl (3 + origin_bits + hops_bits))

let reply_b ~id ~server ~hops =
  tag_reply
  lor ((hops land hops_mask) lsl 3)
  lor (server lsl (3 + hops_bits))
  lor (id lsl (3 + hops_bits + origin_bits))

let push_b ~version = tag_push lor (version lsl 3)

type cold_stats = {
  demotions : int;
  promotions : int;
  fragment_repairs : int;
  lost_cold : bool;
  coded_at_end : bool;
  coded_serves : int;
  bytes_stored_end : int;
  mean_bytes_stored : float;
  bytes_moved : int;
  repair_bytes : int;
}

type result = {
  served : int;
  faults : int;
  latencies : Histogram.t;
  hops : Histogram.t;
  replicas_created : int;
  replicas_evicted : int;
  replica_timeline : Timeseries.t;
  last_replication : float option;
  messages : int;
  control_messages : int;
  file_transfers : int;
  overloaded_at_end : int;
  events : int;
  cold : cold_stats option;
}

(* Observability handles, resolved once per run. Only the span sink is
   touched per event — the des/* counters duplicate tallies the simulator
   keeps anyway, so they are filled in once at end of run
   ({!finalize_obs}), and the latency and hop timers are backed by the
   run's own result histograms ({!Obs.Registry.timer_backed}): per-request
   attribution costs exactly one span open and one span close. *)
type instruments = {
  spans : Obs.Span.sink;
  sp_lookup : int;
  sp_replicate : int;
}

let make_instruments (obs : Obs.t) =
  {
    spans = obs.Obs.spans;
    sp_lookup = Obs.Span.intern obs.Obs.spans "lookup";
    sp_replicate = Obs.Span.intern obs.Obs.spans "replicate";
  }

(* Cold-tier run state: fragment placement is [Ops]'s, this record is
   the byte ledger plus an O(1) fragment-holder bitset for the per-hop
   serve check ([refresh_frags] rebuilds it whenever fragment placement
   changes — demote, promote, repair, churn — all of which happen at
   scheduled events in this sequential simulator). Byte counts follow
   wire traffic: [bytes_moved] is every byte that crossed the network
   for placement, demotion, promotion or repair; [repair_bytes] is the
   failure-triggered subset (a relocated full copy, or k fragment reads
   plus one write per rebuilt fragment). [byte_seconds] integrates the
   stored-byte step function, sampled at every event that can change
   it. *)
type cold_rt = {
  ct : cold_tier;
  frag_bytes : int;
  frag_holders : Packed_bits.t;
  mutable coded : bool;
  mutable servable : bool;
  mutable cold_streak : int;
  mutable demotions : int;
  mutable promotions : int;
  mutable fragment_repairs : int;
  mutable lost : bool;
  mutable coded_serves : int;
  mutable bytes_moved : int;
  mutable repair_bytes : int;
  mutable byte_seconds : float;
  mutable last_bytes : int;
  mutable last_sample_t : float;
}

type state = {
  config : config;
  rng : Rng.t;
  cluster : Cluster.t;
  key : string;
  tree : Lesslog_ptree.Ptree.t;
      (* the key's lookup tree, fixed for the whole run *)
  engine : Engine.t;
  overlay : unit Overlay.t;
  estimators : Access_counter.t array;
  cooldown_until : float array;
  (* one demand/deadline pair per workload phase, indexed by the arrival
     event's [b] word *)
  phase_demand : Demand.t array;
  phase_until : float array;
  mutable h_arrival : int;
  mutable served : int;
  mutable faults : int;
  latencies : Histogram.t;
  hops : Histogram.t;
  mutable replicas_created : int;
  mutable replicas_evicted : int;
  replica_timeline : Timeseries.t;
  mutable last_replication : float option;
  mutable control_messages : int;
  mutable file_transfers : int;
  mutable next_req : int;
  sink : (Trace.Event.t -> unit) option;
  obs : instruments option;
  substrate : Substrate.t option;
      (* [None] = the native direct path (the default, digest-pinned);
         [Some] routes, places replicas and repairs churn through the
         substrate contract instead *)
  policy : Rf_policy.t option;
      (* [Some] swaps the native overload-driven replication for the
         log-driven dynamic-RF competitor: accesses are logged at request
         issue, and an interval tick enforces the policy's replica
         factor. [None] (the default) leaves the event stream and the RNG
         draw sequence untouched — the golden digest path. *)
  cold : cold_rt option;
      (* [Some] adds the erasure-coded cold tier on top of the policy:
         sustained Cold verdicts demote the key to fragments, a Hot
         verdict promotes it back, churn repairs lost fragments. [None]
         leaves every path bit-identical. *)
}

let now st = Engine.now st.engine

(* --- Cold-tier bookkeeping (every function below is a no-op shape when
   [st.cold = None], keeping the digest-pinned paths untouched). --- *)

let current_bytes st c =
  (Cluster.total_copies st.cluster ~key:st.key * c.ct.file_bytes)
  + (Ops.live_fragment_count st.cluster ~key:st.key * c.frag_bytes)

let sample_bytes st c =
  let t = now st in
  c.byte_seconds <-
    c.byte_seconds +. (float_of_int c.last_bytes *. (t -. c.last_sample_t));
  c.last_sample_t <- t;
  c.last_bytes <- current_bytes st c

let refresh_frags st c =
  Packed_bits.clear_all c.frag_holders;
  match Cluster.coded_params st.cluster ~key:st.key with
  | None ->
      c.coded <- false;
      c.servable <- false
  | Some (k, r) ->
      c.coded <- true;
      for i = 0 to k + r - 1 do
        List.iter
          (fun p -> Packed_bits.set c.frag_holders (Pid.to_int p))
          (Cluster.holders st.cluster ~key:(Ops.frag_key st.key i))
      done;
      c.servable <- Ops.coded_servable st.cluster ~key:st.key

(* A full copy crossed the network (push arrival, policy fill). *)
let cold_note_copy_moved st =
  match st.cold with
  | None -> ()
  | Some c -> c.bytes_moved <- c.bytes_moved + c.ct.file_bytes

let cold_note_repair _st c ~rebuilt ~lost =
  if rebuilt > 0 then begin
    c.fragment_repairs <- c.fragment_repairs + rebuilt;
    let traffic = rebuilt * (c.ct.code_k + 1) * c.frag_bytes in
    c.repair_bytes <- c.repair_bytes + traffic;
    c.bytes_moved <- c.bytes_moved + traffic
  end;
  if lost then c.lost <- true

let route_next st me =
  match st.substrate with
  | None -> Topology.route_next st.tree (Cluster.status st.cluster) me
  | Some sub -> sub.Substrate.next_hop ~key:st.key me

let emit st event = match st.sink with None -> () | Some f -> f event

(* A request resolved at [origin] ([server < 0] = fault): record its
   whole span in one call. The wire already carries the issue timestamp
   on every GET and REPLY, and a reply's destination is the origin, so
   the sink's open-span table is never touched — requests in flight when
   the engine stops simply leave no span. Outcome counts and latency/hop
   quantiles flow into the registry at end of run, through the
   simulator's own tallies and the backing histograms — not here. *)
let obs_resolved st ~id ~origin ~server ~hops ~issued_at =
  match st.obs with
  | None -> ()
  | Some i ->
      Obs.Span.emit_int i.spans ~name:i.sp_lookup ~id ~origin
        ~at:issued_at
        ~dur:(now st -. issued_at)
        ~server ~hops ~attempt:0

(* Trigger a replication from [overloaded] when its estimated serve rate
   exceeds capacity and its cooldown has expired. The copy travels the
   network: it only becomes servable when the push arrives. *)
let maybe_replicate st ~overloaded =
  let i = Pid.to_int overloaded in
  let rate = Access_counter.rate st.estimators.(i) ~now:(now st) in
  if rate > st.config.capacity && now st >= st.cooldown_until.(i) then begin
    let target =
      match st.substrate with
      | None ->
          Ops.choose_replica_target ~rng:st.rng st.cluster ~overloaded
            ~key:st.key
      | Some sub ->
          Ops.choose_replica_target_via ~rng:st.rng sub st.cluster ~overloaded
            ~key:st.key
    in
    match target with
    | None -> ()
    | Some dest ->
        st.cooldown_until.(i) <- now st +. st.config.cooldown;
        let version =
          Option.value ~default:0
            (File_store.version (Cluster.store st.cluster overloaded) ~key:st.key)
        in
        Overlay.send_packed st.overlay ~src:overloaded ~dst:dest
          ~b:(push_b ~version) ~x:0.0
  end

let serve st ~server ~id ~origin ~issued_at ~hops =
  let i = Pid.to_int server in
  File_store.record_access (Cluster.store st.cluster server) ~key:st.key
    ~now:(now st);
  Access_counter.record st.estimators.(i) ~now:(now st);
  st.served <- st.served + 1;
  Histogram.add_int st.hops hops;
  emit st
    (Trace.Event.Request
       { at = now st; origin = Pid.to_int origin; server = Some i; hops });
  if Pid.equal server origin then begin
    (* Served locally: the reply needs no network hop. *)
    Histogram.add st.latencies (now st -. issued_at);
    obs_resolved st ~id ~origin:(Pid.to_int origin) ~server:i ~hops ~issued_at
  end
  else
    Overlay.send_packed st.overlay ~src:server ~dst:origin
      ~b:(reply_b ~id ~server:i ~hops) ~x:issued_at;
  (* Under the dynamic-RF policy the interval tick owns replica
     management; the native overload trigger stays off. *)
  match st.policy with
  | None -> maybe_replicate st ~overloaded:server
  | Some _ -> ()

let handle st ~me ~src b x =
  match b land 7 with
  | 0 (* GET *) ->
      let origin = Pid.unsafe_of_int ((b lsr 3) land origin_mask) in
      let hops = (b lsr (3 + origin_bits)) land hops_mask in
      let id = b lsr (3 + origin_bits + hops_bits) in
      if Cluster.holds st.cluster me ~key:st.key then
        serve st ~server:me ~id ~origin ~issued_at:x ~hops
      else begin
        match st.cold with
        | Some c when c.coded && Packed_bits.get c.frag_holders (Pid.to_int me)
          ->
            (* A fragment holder on the route: with >= k fragments live it
               gathers and decodes (the fan-in is byte accounting, not
               simulated messages); below k the payload is unrecoverable
               and the request degrades to a reported fault. *)
            if c.servable then begin
              c.coded_serves <- c.coded_serves + 1;
              serve st ~server:me ~id ~origin ~issued_at:x ~hops
            end
            else begin
              st.faults <- st.faults + 1;
              emit st
                (Trace.Event.Request
                   {
                     at = now st;
                     origin = Pid.to_int origin;
                     server = None;
                     hops;
                   });
              obs_resolved st ~id ~origin:(Pid.to_int origin) ~server:(-1)
                ~hops ~issued_at:x
            end
        | _ -> begin
        (* The [hops < hops_mask] guard keeps a (non-conforming) substrate
           route from wrapping the packed hop field: overflow is a routing
           fault. Native routes are bounded by the tree depth (≤ m) and
           never reach it. *)
        match route_next st me with
        | Some next when hops < hops_mask ->
            Overlay.send_packed st.overlay ~src:me ~dst:next
              ~b:(get_b ~id ~origin:(Pid.to_int origin) ~hops:(hops + 1))
              ~x
        | Some _ | None ->
            st.faults <- st.faults + 1;
            emit st
              (Trace.Event.Request
                 { at = now st; origin = Pid.to_int origin; server = None; hops });
            obs_resolved st ~id ~origin:(Pid.to_int origin) ~server:(-1) ~hops
              ~issued_at:x
          end
      end
  | 1 (* REPLY *) ->
      (* A reply's destination is the request's origin. *)
      let hops = (b lsr 3) land hops_mask in
      let server = (b lsr (3 + hops_bits)) land origin_mask in
      let id = b lsr (3 + hops_bits + origin_bits) in
      Histogram.add st.latencies (now st -. x);
      obs_resolved st ~id ~origin:(Pid.to_int me) ~server ~hops ~issued_at:x
  | 2 (* PUSH *) ->
      if not (Cluster.holds st.cluster me ~key:st.key) then begin
        let version = b lsr 3 in
        File_store.add (Cluster.store st.cluster me) ~key:st.key
          ~origin:File_store.Replicated ~version ~now:(now st);
        st.replicas_created <- st.replicas_created + 1;
        st.last_replication <- Some (now st);
        cold_note_copy_moved st;
        emit st
          (Trace.Event.Replicate
             { at = now st; src = Pid.to_int src; dst = Pid.to_int me;
               key = st.key });
        (match st.obs with
        | None -> ()
        | Some i ->
            Obs.Span.emit i.spans ~name:i.sp_replicate ~id:(Pid.to_int src)
              ~origin:(Pid.to_int src) ~at:(now st) ~dur:0.0
              ~server:(Some (Pid.to_int me)) ~hops:0 ~attempt:0);
        Timeseries.record st.replica_timeline ~time:(now st)
          (float_of_int (Cluster.total_copies st.cluster ~key:st.key))
      end
  | _ -> ()

let issue_request st ~origin =
  let id = st.next_req land id_mask in
  st.next_req <- st.next_req + 1;
  (* The access log the weighted dynamic-RF scheme needs and LessLog
     forgoes: every issued request, keyed by the accessing node. *)
  (match st.policy with
  | None -> ()
  | Some p -> Rf_policy.record p ~file:0 ~node:(Pid.to_int origin));
  (* The client contacts its node directly; local service costs no hop. *)
  if Cluster.holds st.cluster origin ~key:st.key then
    serve st ~server:origin ~id ~origin ~issued_at:(now st) ~hops:0
  else begin
    match st.cold with
    | Some c when c.coded && Packed_bits.get c.frag_holders (Pid.to_int origin)
      ->
        if c.servable then begin
          c.coded_serves <- c.coded_serves + 1;
          serve st ~server:origin ~id ~origin ~issued_at:(now st) ~hops:0
        end
        else begin
          st.faults <- st.faults + 1;
          obs_resolved st ~id ~origin:(Pid.to_int origin) ~server:(-1) ~hops:0
            ~issued_at:(now st)
        end
    | _ -> (
        match route_next st origin with
        | Some next ->
            Overlay.send_packed st.overlay ~src:origin ~dst:next
              ~b:(get_b ~id ~origin:(Pid.to_int origin) ~hops:1)
              ~x:(now st)
        | None ->
            st.faults <- st.faults + 1;
            obs_resolved st ~id ~origin:(Pid.to_int origin) ~server:(-1)
              ~hops:0 ~issued_at:(now st))
  end

(* One Poisson arrival at a node: serve/forward the request, then draw the
   next inter-arrival gap — a self-rescheduling packed event, no closure
   chain. A node that died since stops its chain (and a later rejoin does
   not restart it, matching the documented semantics). *)
let on_arrival st origin_i phase _x =
  let origin = Pid.unsafe_of_int origin_i in
  if Status_word.is_live (Cluster.status st.cluster) origin then begin
    issue_request st ~origin;
    let rate = Demand.rate st.phase_demand.(phase) origin in
    let t = now st +. Rng.exponential st.rng ~rate in
    if t < st.phase_until.(phase) then
      Engine.post_at st.engine ~time:t ~h:st.h_arrival ~a:origin_i ~b:phase
        ~x:0.0
  end

(* Poisson arrivals for one demand phase: per origin, events on
   [from_time, until). *)
let start_arrivals st ~phase ~from_time =
  let demand = st.phase_demand.(phase) and until = st.phase_until.(phase) in
  Status_word.iter_live (Cluster.status st.cluster) (fun origin ->
      let rate = Demand.rate demand origin in
      if rate > 0.0 then begin
        let t = from_time +. Rng.exponential st.rng ~rate in
        if t < until then
          Engine.post_at st.engine ~time:t ~h:st.h_arrival
            ~a:(Pid.to_int origin) ~b:phase ~x:0.0
      end)

(* The counter-based mechanism of Section 2.2: each node periodically
   drops replicated copies whose locally-observed access rate fell below
   the threshold — a purely local decision, still logless. *)
let start_eviction st ~duration =
  match st.config.eviction with
  | None -> ()
  | Some { period; min_rate } ->
      let rec tick () =
        let t = now st +. period in
        if t <= duration then
          Engine.schedule_at st.engine ~time:t (fun () ->
              let removed = ref 0 in
              Status_word.iter_live (Cluster.status st.cluster) (fun p ->
                  let dropped =
                    (* The survivor floor: when every live holder is a
                       below-rate replica (the inserted copy's node is
                       down), unguarded local eviction would drop the
                       last live copy cluster-wide. *)
                    File_store.evict_cold_replicas
                      ~survivors:(fun key ->
                        Cluster.total_copies st.cluster ~key)
                      ~min_survivors:1
                      (Cluster.store st.cluster p)
                      ~now:(now st) ~min_rate
                  in
                  let mine =
                    List.length (List.filter (String.equal st.key) dropped)
                  in
                  if mine > 0 then
                    emit st
                      (Trace.Event.Evict
                         { at = now st; node = Pid.to_int p; key = st.key });
                  removed := !removed + mine);
              if !removed > 0 then begin
                st.replicas_evicted <- st.replicas_evicted + !removed;
                Timeseries.record st.replica_timeline ~time:(now st)
                  (float_of_int (Cluster.total_copies st.cluster ~key:st.key))
              end;
              tick ())
      in
      tick ()

(* Bring the key's live copy count to the policy's replica factor:
   deficits fill at the first live non-holders in ascending PID order,
   surpluses shed replicated copies from the highest-PID holders down —
   the inserted original is never evicted, so the count never drops
   below one. Deliberately instantaneous (no push latency): the policy
   models a coordinator that already holds the access log, and the
   comparison against LessLog should not charge it the simulator's
   network model twice. *)
let policy_enforce st p =
  let key = st.key in
  let rf = Rf_policy.rf p ~file:0 in
  let before = Cluster.total_copies st.cluster ~key in
  if before < rf then begin
    let src, version =
      match Cluster.holders st.cluster ~key with
      | h :: _ ->
          ( Pid.to_int h,
            Option.value ~default:0
              (File_store.version (Cluster.store st.cluster h) ~key) )
      | [] -> (-1, 0)
    in
    let deficit = ref (rf - before) in
    Status_word.iter_live (Cluster.status st.cluster) (fun q ->
        if !deficit > 0 && not (Cluster.holds st.cluster q ~key) then begin
          File_store.add (Cluster.store st.cluster q) ~key
            ~origin:File_store.Replicated ~version ~now:(now st);
          st.replicas_created <- st.replicas_created + 1;
          st.last_replication <- Some (now st);
          cold_note_copy_moved st;
          emit st
            (Trace.Event.Replicate
               { at = now st; src; dst = Pid.to_int q; key });
          decr deficit
        end)
  end
  else if before > rf then begin
    let surplus = ref (before - rf) in
    List.iter
      (fun q ->
        if
          !surplus > 0
          && File_store.origin (Cluster.store st.cluster q) ~key
             = Some File_store.Replicated
        then begin
          File_store.remove (Cluster.store st.cluster q) ~key;
          st.replicas_evicted <- st.replicas_evicted + 1;
          emit st (Trace.Event.Evict { at = now st; node = Pid.to_int q; key });
          decr surplus
        end)
      (List.rev (Cluster.holders st.cluster ~key))
  end;
  let after = Cluster.total_copies st.cluster ~key in
  if after <> before then
    Timeseries.record st.replica_timeline ~time:(now st) (float_of_int after)

(* Tier transitions, evaluated at the policy tick right after the
   interval closes: [demote_after] consecutive Cold verdicts demote the
   key to fragments, the first Hot verdict after that promotes it back
   to the policy's replica factor. A failed demotion (too few distinct
   live nodes) or promotion (fewer than k fragments alive) leaves the
   state as is and retries at the next qualifying tick. *)
let cold_policy_step st p =
  match st.cold with
  | None -> ()
  | Some c ->
      let cls = Rf_policy.classification p ~file:0 in
      if not c.coded then begin
        (match cls with
        | Rf_policy.Cold -> c.cold_streak <- c.cold_streak + 1
        | Rf_policy.Hot | Rf_policy.Warm -> c.cold_streak <- 0);
        if c.cold_streak >= c.ct.demote_after then
          match
            Ops.demote_to_coded ~now:(now st) ?substrate:st.substrate
              st.cluster ~key:st.key ~k:c.ct.code_k ~r:c.ct.code_r
          with
          | None -> ()
          | Some holders ->
              c.cold_streak <- 0;
              c.demotions <- c.demotions + 1;
              c.bytes_moved <-
                c.bytes_moved + (List.length holders * c.frag_bytes);
              refresh_frags st c;
              Timeseries.record st.replica_timeline ~time:(now st)
                (float_of_int (Cluster.total_copies st.cluster ~key:st.key))
      end
      else if cls = Rf_policy.Hot then
        let copies = max 1 (Rf_policy.rf p ~file:0) in
        match
          Ops.promote_from_coded ~now:(now st) ?substrate:st.substrate
            st.cluster ~key:st.key ~copies
        with
        | None -> ()
        | Some placed ->
            c.promotions <- c.promotions + 1;
            (* k fragments gathered to rebuild, then the copies fan out. *)
            c.bytes_moved <-
              c.bytes_moved
              + (c.ct.code_k * c.frag_bytes)
              + (List.length placed * c.ct.file_bytes);
            refresh_frags st c;
            Timeseries.record st.replica_timeline ~time:(now st)
              (float_of_int (Cluster.total_copies st.cluster ~key:st.key))

(* The policy's analysis-interval tick, same self-rescheduling shape as
   {!start_eviction}: close the interval (PD, thresholds, RF updates),
   run tier transitions, then reconcile the copy count (only while the
   key has full copies — fragments are not the RF enforcer's to
   manage). *)
let start_policy st ~duration =
  match st.policy with
  | None -> ()
  | Some p ->
      let period = (Rf_policy.config p).Rf_policy.interval in
      let rec tick () =
        let t = now st +. period in
        if t <= duration then
          Engine.schedule_at st.engine ~time:t (fun () ->
              ignore (Rf_policy.end_interval p);
              cold_policy_step st p;
              (match st.cold with
              | Some c when c.coded -> ()
              | Some _ | None -> policy_enforce st p);
              (match st.cold with
              | Some c -> sample_bytes st c
              | None -> ());
              tick ())
      in
      tick ()

(* Registry attribution, once per run: counters from the simulator's own
   tallies (so the hot path never touches them), timers backed by the
   result histograms the run filled anyway. [des/served] counts requests
   served at a server; spans close at the origin when the reply lands, so
   at engine stop the difference is the replies still in flight. *)
let finalize_obs st (obs : Obs.t) =
  let r = obs.Obs.registry in
  let count name v = Obs.Registry.add (Obs.Registry.counter r name) v in
  count "des/requests" st.next_req;
  count "des/served" st.served;
  count "des/faults" st.faults;
  count "des/replications" st.replicas_created;
  count "des/evictions" st.replicas_evicted;
  ignore (Obs.Registry.timer_backed r "des/latency_s" st.latencies);
  ignore (Obs.Registry.timer_backed r "des/hops" st.hops)

(* Control-traffic model for a membership event: the status word is
   broadcast to every live node (Section 5), and each relocated file costs
   one transfer. *)
let account_churn st ~relocated =
  st.control_messages <-
    st.control_messages + Status_word.live_count (Cluster.status st.cluster);
  st.file_transfers <- st.file_transfers + relocated;
  match st.cold with
  | None -> ()
  | Some c ->
      (* A relocated full copy is failure-triggered movement. *)
      let bytes = relocated * c.ct.file_bytes in
      c.bytes_moved <- c.bytes_moved + bytes;
      c.repair_bytes <- c.repair_bytes + bytes

(* Membership repair dispatch: Generic substrates run the overlay-agnostic
   registry repair; everything else (the direct path and the native
   adapter, whose membership is Self_organized) runs the paper's Section 5
   mechanism verbatim. Each returns the relocation count for
   {!account_churn}. *)
(* The cold-tier side of a membership event: the Generic-substrate path
   repairs inside [on_membership_via] (this callback only accounts it);
   the native path runs [Ops.repair_coded] after the Section 5 handler.
   Either way the fragment bitset and byte ledger are refreshed. *)
let coded_repair_cb st =
  match st.cold with
  | None -> None
  | Some c -> Some (fun ~key:_ ~rebuilt ~lost -> cold_note_repair st c ~rebuilt ~lost)

let cold_after_churn st ~native =
  match st.cold with
  | None -> ()
  | Some c ->
      if native && c.coded then begin
        match
          Ops.repair_coded ~now:(now st) ?substrate:st.substrate st.cluster
            ~key:st.key
        with
        | `Intact -> ()
        | `Repaired n -> cold_note_repair st c ~rebuilt:n ~lost:false
        | `Lost -> cold_note_repair st c ~rebuilt:0 ~lost:true
      end;
      refresh_frags st c;
      sample_bytes st c

let churn_join st p =
  match st.substrate with
  | Some sub when sub.Substrate.membership = Substrate.Generic ->
      let n =
        Ops.on_membership_via ~now:(now st)
          ?on_coded_repair:(coded_repair_cb st) sub st.cluster ~event:(`Join p)
      in
      cold_after_churn st ~native:false;
      n
  | _ ->
      let stats = Self_org.join ~now:(now st) st.cluster p in
      cold_after_churn st ~native:true;
      List.length stats.Self_org.took_over

let churn_leave st p =
  match st.substrate with
  | Some sub when sub.Substrate.membership = Substrate.Generic ->
      let n =
        Ops.on_membership_via ~now:(now st)
          ?on_coded_repair:(coded_repair_cb st) sub st.cluster
          ~event:(`Leave p)
      in
      cold_after_churn st ~native:false;
      n
  | _ ->
      let stats = Self_org.leave ~now:(now st) st.cluster p in
      cold_after_churn st ~native:true;
      List.length stats.Self_org.reinserted

let churn_fail st p =
  match st.substrate with
  | Some sub when sub.Substrate.membership = Substrate.Generic ->
      let n =
        Ops.on_membership_via ~now:(now st)
          ?on_coded_repair:(coded_repair_cb st) sub st.cluster ~event:(`Fail p)
      in
      cold_after_churn st ~native:false;
      n
  | _ ->
      let stats = Self_org.fail ~now:(now st) st.cluster p in
      cold_after_churn st ~native:true;
      List.length stats.Self_org.recovered

let apply_churn st events =
  List.iter
    (fun { at; action } ->
      Engine.schedule_at st.engine ~time:at (fun () ->
          let status = Cluster.status st.cluster in
          match action with
          | Join p ->
              if Status_word.is_dead status p then begin
                emit st
                  (Trace.Event.Membership
                     { at = now st; node = Pid.to_int p; change = `Join });
                account_churn st ~relocated:(churn_join st p);
                Overlay.attach st.overlay p
              end
          | Leave p ->
              if Status_word.is_live status p then begin
                emit st
                  (Trace.Event.Membership
                     { at = now st; node = Pid.to_int p; change = `Leave });
                account_churn st ~relocated:(churn_leave st p);
                Overlay.detach st.overlay p
              end
          | Fail p ->
              if Status_word.is_live status p then begin
                emit st
                  (Trace.Event.Membership
                     { at = now st; node = Pid.to_int p; change = `Fail });
                account_churn st ~relocated:(churn_fail st p);
                Overlay.detach st.overlay p
              end))
    events

let run_internal ~config ~churn ~sink ~obs ~substrate ~policy ~cold_tier ~rng
    ~cluster ~key ~phases ~duration =
  let params = Cluster.params cluster in
  (match policy with
  | Some p when Rf_policy.nodes p <> Params.space params ->
      invalid_arg "Des_sim: policy accessor population <> cluster space"
  | _ -> ());
  (match cold_tier with
  | Some ct ->
      if policy = None then
        invalid_arg "Des_sim: cold_tier needs a policy (its Cold verdicts)";
      if ct.code_k < 1 || ct.code_r < 0 || ct.code_k + ct.code_r > 256 then
        invalid_arg "Des_sim: invalid cold_tier code parameters";
      if ct.file_bytes <= 0 then invalid_arg "Des_sim: file_bytes must be > 0";
      if ct.demote_after < 1 then
        invalid_arg "Des_sim: demote_after must be >= 1"
  | None -> ());
  let engine = Engine.create () in
  let overlay =
    Overlay.create ~engine ~rng ~latency:config.latency ~loss:config.loss params
  in
  let nphases = List.length phases in
  let phase_demand = Array.make (max 1 nphases) (Demand.of_rates [||]) in
  let phase_until = Array.make (max 1 nphases) 0.0 in
  let offset = ref 0.0 in
  List.iteri
    (fun i (demand, phase_duration) ->
      phase_demand.(i) <- demand;
      offset := !offset +. phase_duration;
      phase_until.(i) <- !offset)
    phases;
  let latencies = Histogram.create () and hops = Histogram.create () in
  let st =
    {
      config;
      rng;
      cluster;
      key;
      tree = Cluster.tree_of_key cluster key;
      engine;
      overlay;
      estimators =
        Array.init (Params.space params) (fun _ ->
            Access_counter.create ~tau:config.detection_tau ~now:0.0 ());
      cooldown_until = Array.make (Params.space params) 0.0;
      phase_demand;
      phase_until;
      h_arrival = -1;
      served = 0;
      faults = 0;
      latencies;
      hops;
      replicas_created = 0;
      replicas_evicted = 0;
      replica_timeline = Timeseries.create ~label:"copies" ();
      last_replication = None;
      control_messages = 0;
      file_transfers = 0;
      next_req = 0;
      sink;
      obs = Option.map make_instruments obs;
      substrate;
      policy;
      cold =
        Option.map
          (fun ct ->
            {
              ct;
              frag_bytes = (ct.file_bytes + ct.code_k - 1) / ct.code_k;
              frag_holders = Packed_bits.create (Params.space params);
              coded = false;
              servable = false;
              cold_streak = 0;
              demotions = 0;
              promotions = 0;
              fragment_repairs = 0;
              lost = false;
              coded_serves = 0;
              bytes_moved = 0;
              repair_bytes = 0;
              byte_seconds = 0.0;
              last_bytes = 0;
              last_sample_t = 0.0;
            })
          cold_tier;
    }
  in
  (match st.cold with
  | Some c -> c.last_bytes <- current_bytes st c
  | None -> ());
  st.h_arrival <- Engine.register_handler engine (on_arrival st);
  Overlay.set_packed_recv overlay
    (Some (fun ~src ~dst b x -> handle st ~me:dst ~src b x));
  Status_word.iter_live (Cluster.status cluster) (fun p ->
      Overlay.attach overlay p);
  Timeseries.record st.replica_timeline ~time:0.0
    (float_of_int (Cluster.total_copies cluster ~key));
  apply_churn st churn;
  List.iteri
    (fun i (_, _) ->
      start_arrivals st ~phase:i
        ~from_time:(if i = 0 then 0.0 else st.phase_until.(i - 1)))
    phases;
  start_eviction st ~duration;
  start_policy st ~duration;
  Engine.run ~until:duration engine;
  (* Close the byte integral at the horizon. *)
  (match st.cold with
  | Some c ->
      c.byte_seconds <-
        c.byte_seconds
        +. (float_of_int c.last_bytes *. (duration -. c.last_sample_t));
      c.last_sample_t <- duration
  | None -> ());
  Option.iter (finalize_obs st) obs;
  let overloaded_at_end =
    Status_word.fold_live (Cluster.status cluster) ~init:0 ~f:(fun acc p ->
        let rate =
          Access_counter.rate st.estimators.(Pid.to_int p) ~now:duration
        in
        if rate > config.capacity then acc + 1 else acc)
  in
  {
    served = st.served;
    faults = st.faults;
    latencies = st.latencies;
    hops = st.hops;
    replicas_created = st.replicas_created;
    replicas_evicted = st.replicas_evicted;
    replica_timeline = st.replica_timeline;
    last_replication = st.last_replication;
    messages = Overlay.messages_sent overlay;
    control_messages = st.control_messages;
    file_transfers = st.file_transfers;
    overloaded_at_end;
    events = Engine.events_executed engine;
    cold =
      Option.map
        (fun c ->
          {
            demotions = c.demotions;
            promotions = c.promotions;
            fragment_repairs = c.fragment_repairs;
            lost_cold = c.lost;
            coded_at_end = c.coded;
            coded_serves = c.coded_serves;
            bytes_stored_end = c.last_bytes;
            mean_bytes_stored =
              (if duration > 0.0 then c.byte_seconds /. duration else 0.0);
            bytes_moved = c.bytes_moved;
            repair_bytes = c.repair_bytes;
          })
        st.cold;
  }

let run ?(config = default_config) ?(churn = []) ?sink ?obs ?substrate
    ?policy ?cold_tier ~rng ~cluster ~key ~demand ~duration () =
  run_internal ~config ~churn ~sink ~obs ~substrate ~policy ~cold_tier ~rng
    ~cluster ~key
    ~phases:[ (demand, duration) ] ~duration

let run_scenario ?(config = default_config) ?(churn = []) ?sink ?obs
    ?substrate ?policy ?cold_tier ~rng ~cluster ~key ~scenario () =
  let phases =
    List.map
      (fun p ->
        (p.Lesslog_workload.Scenario.demand, p.Lesslog_workload.Scenario.duration))
      (Lesslog_workload.Scenario.phases scenario)
  in
  run_internal ~config ~churn ~sink ~obs ~substrate ~policy ~cold_tier ~rng
    ~cluster ~key ~phases
    ~duration:(Lesslog_workload.Scenario.total_duration scenario)
