(* The shared Substrate conformance suite and the native differential
   gate.

   Part 1 applies the same properties to all four adapters — native
   LessLog trees, Chord, Pastry, CAN — exactly as promised by the
   contract in lib/substrate/substrate.mli: routes terminate at the
   responsible node, neighbor sets are symmetric where the adapter
   guarantees it, and routing stays consistent across kill/revive cycles
   (epoch semantics).

   Part 2 is the refactor's differential gate: the native adapter driven
   through the substrate-parameterized simulator paths must produce the
   same trace event-for-event as the direct (substrate-less) code, in
   both Des_sim and Fault_sim. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Substrate_native = Lesslog.Substrate_native
module Substrate = Lesslog_substrate.Substrate
module Chord_sub = Lesslog_substrate.Chord_sub
module Pastry_sub = Lesslog_substrate.Pastry_sub
module Can_sub = Lesslog_substrate.Can_sub
module Schedule = Lesslog_check.Schedule
module Des_sim = Lesslog_des.Des_sim
module Fault_sim = Lesslog_des.Fault_sim
module Trace = Lesslog_trace.Trace
module Rng = Lesslog_prng.Rng

(* --- Part 1: conformance ----------------------------------------------- *)

(* All four adapters over one cluster, so a Status_word mutation plus
   [notify] is visible to every substrate at once. *)
let adapters cluster =
  let params = Cluster.params cluster in
  let status = Cluster.status cluster in
  let psi = Cluster.psi cluster in
  [
    Substrate_native.of_cluster cluster;
    Chord_sub.make params status psi;
    Pastry_sub.make params status psi;
    Can_sub.make params status;
  ]

let hop_cap params = 8 * Params.space params

let check_route sub params status ~key ~origin =
  let name = sub.Substrate.name in
  let path, terminated =
    Substrate.route_path sub ~key ~origin ~max_hops:(hop_cap params)
  in
  let finite =
    terminated
    || QCheck2.Test.fail_reportf "%s: route exceeded %d hops" name
         (hop_cap params)
  in
  let all_live =
    List.for_all (Status_word.is_live status) path
    || QCheck2.Test.fail_reportf "%s: route passed through a dead node" name
  in
  let at_owner =
    match sub.Substrate.owner ~key with
    | None -> QCheck2.Test.fail_reportf "%s: live nodes but no owner" name
    | Some o ->
        let last = List.nth path (List.length path - 1) in
        Pid.equal last o
        (* A terminated route not at the owner is a greedy dead end:
           allowed only on best-effort substrates, and only when some
           node is dead. *)
        || (not sub.Substrate.guaranteed_delivery)
           && Status_word.dead_count status > 0
        || QCheck2.Test.fail_reportf "%s: route ended at %d, owner is %d"
             name (Pid.to_int last) (Pid.to_int o)
  in
  finite && all_live && at_owner

(* m, key index, origin slot, kill list (slot indices into the live
   population, dedup'd at use). *)
let gen_case =
  QCheck2.Gen.(
    int_range 3 7 >>= fun m ->
    let space = 1 lsl m in
    quad (return m) (int_range 0 99)
      (int_range 0 (space - 1))
      (list_size (int_range 0 (space / 2)) (int_range 0 (space - 1))))

let print_case (m, k, origin, kills) =
  Printf.sprintf "m=%d key=k%d origin=%d kills=[%s]" m k origin
    (String.concat ";" (List.map string_of_int kills))

let prop_route_terminates =
  QCheck2.Test.make ~count:150 ~name:"route terminates at responsible node"
    ~print:print_case gen_case (fun (m, k, origin, _) ->
      let cluster = Cluster.create (Params.create ~m ()) in
      let params = Cluster.params cluster in
      let status = Cluster.status cluster in
      let key = Printf.sprintf "sub/k%d" k in
      List.for_all
        (fun sub ->
          check_route sub params status ~key ~origin:(Pid.of_int params origin))
        (adapters cluster))

let prop_neighbor_symmetry =
  QCheck2.Test.make ~count:100
    ~name:"neighbor symmetry where guaranteed" ~print:print_case gen_case
    (fun (m, k, _, kills) ->
      let cluster = Cluster.create (Params.create ~m ()) in
      let params = Cluster.params cluster in
      let status = Cluster.status cluster in
      let key = Printf.sprintf "sub/k%d" k in
      let subs = adapters cluster in
      (* Symmetry must hold on any population, not just the full one. *)
      List.iter
        (fun s ->
          if Status_word.live_count status > 1 then
            Status_word.set_dead status (Pid.of_int params s))
        kills;
      List.iter (fun sub -> sub.Substrate.notify ()) subs;
      List.for_all
        (fun sub ->
          (not sub.Substrate.symmetric_neighbors)
          || Status_word.fold_live status ~init:true ~f:(fun ok p ->
                 ok
                 && List.for_all
                      (fun q ->
                        List.exists (Pid.equal p)
                          (sub.Substrate.neighbors ~key q)
                        || QCheck2.Test.fail_reportf
                             "%s: %d lists %d but not vice versa"
                             sub.Substrate.name (Pid.to_int p) (Pid.to_int q))
                      (sub.Substrate.neighbors ~key p)))
        subs)

let prop_kill_revive_consistency =
  QCheck2.Test.make ~count:100
    ~name:"routing consistent under kill/revive" ~print:print_case gen_case
    (fun (m, k, origin, kills) ->
      let cluster = Cluster.create (Params.create ~m ()) in
      let params = Cluster.params cluster in
      let status = Cluster.status cluster in
      let key = Printf.sprintf "sub/k%d" k in
      let subs = adapters cluster in
      let owner0 =
        List.map (fun sub -> sub.Substrate.owner ~key) subs
      in
      (* Kill a subset (keeping at least two nodes live), notify, and
         check every adapter routes in the shrunken system. *)
      List.iter
        (fun s ->
          if Status_word.live_count status > 2 then
            Status_word.set_dead status (Pid.of_int params s))
        kills;
      List.iter (fun sub -> sub.Substrate.notify ()) subs;
      let origin =
        let p = Pid.of_int params origin in
        if Status_word.is_live status p then p
        else List.hd (Status_word.live_pids status)
      in
      let shrunken_ok =
        List.for_all
          (fun sub ->
            (match sub.Substrate.owner ~key with
            | None ->
                QCheck2.Test.fail_reportf "%s: no owner with live nodes"
                  sub.Substrate.name
            | Some o ->
                Status_word.is_live status o
                || QCheck2.Test.fail_reportf "%s: dead owner %d"
                     sub.Substrate.name (Pid.to_int o))
            && check_route sub params status ~key ~origin)
          subs
      in
      (* Revive everything: every adapter must return to its original
         all-live answer (no stale epoch state). *)
      List.iter
        (fun p -> Status_word.set_live status p)
        (Status_word.dead_pids status);
      List.iter (fun sub -> sub.Substrate.notify ()) subs;
      shrunken_ok
      && List.for_all2
           (fun sub o0 ->
             sub.Substrate.owner ~key = o0
             || QCheck2.Test.fail_reportf "%s: owner drifted after revive"
                  sub.Substrate.name)
           subs owner0)

let prop_replica_target_fresh =
  QCheck2.Test.make ~count:80
    ~name:"replica target is live and not a holder" ~print:print_case
    gen_case (fun (m, k, origin, _) ->
      let cluster = Cluster.create (Params.create ~m ()) in
      let params = Cluster.params cluster in
      let status = Cluster.status cluster in
      let key = Printf.sprintf "sub/k%d" k in
      let overloaded = Pid.of_int params origin in
      let rng = Rng.create ~seed:(m + k) in
      let holds p = Pid.equal p overloaded in
      List.for_all
        (fun sub ->
          match
            sub.Substrate.replica_target ~rng ~holds ~overloaded ~key
          with
          | None -> true
          | Some p ->
              Status_word.is_live status p
              && (not (holds p))
              || QCheck2.Test.fail_reportf "%s: bad replica target %d"
                   sub.Substrate.name (Pid.to_int p))
        (adapters cluster))

(* --- Part 2: native differential gate ---------------------------------- *)

let scalars_des (r : Des_sim.result) =
  ( r.Des_sim.served,
    r.Des_sim.faults,
    r.Des_sim.replicas_created,
    r.Des_sim.messages,
    r.Des_sim.control_messages,
    r.Des_sim.file_transfers,
    r.Des_sim.events )

let scalars_faults (r : Fault_sim.result) =
  ( r.Fault_sim.issued,
    r.Fault_sim.served,
    r.Fault_sim.faulted,
    r.Fault_sim.replicas_created,
    r.Fault_sim.migrations,
    r.Fault_sim.lost_keys,
    r.Fault_sim.messages )

let fresh_cluster (sch : Schedule.t) =
  let cluster = Cluster.create (Params.create ~m:sch.Schedule.m ()) in
  for i = 0 to sch.Schedule.keys - 1 do
    ignore (Ops.insert cluster ~key:(Schedule.key_of_index i))
  done;
  cluster

let des_events substrate (sch : Schedule.t) =
  let cluster = fresh_cluster sch in
  let substrate =
    if substrate then Some (Substrate_native.of_cluster cluster) else None
  in
  let events = ref [] in
  let r =
    Des_sim.run
      ~config:{ Des_sim.default_config with capacity = sch.Schedule.capacity }
      ~churn:(Schedule.to_churn sch)
      ~sink:(fun e -> events := e :: !events)
      ?substrate
      ~rng:(Rng.create ~seed:sch.Schedule.seed)
      ~cluster
      ~key:(Schedule.key_of_index 0)
      ~demand:(Schedule.demand sch (Cluster.status cluster))
      ~duration:sch.Schedule.duration ()
  in
  (List.rev !events, r)

let fault_events substrate (sch : Schedule.t) =
  let cluster = fresh_cluster sch in
  let substrate =
    if substrate then Some (Substrate_native.of_cluster cluster) else None
  in
  let events = ref [] in
  let r =
    Fault_sim.run
      ~config:
        { Fault_sim.default_config with capacity = sch.Schedule.capacity }
      ~plan:(Schedule.to_plan sch)
      ~sink:(fun e -> events := e :: !events)
      ?substrate
      ~rng:(Rng.create ~seed:sch.Schedule.seed)
      ~cluster
      ~key:(Schedule.key_of_index 0)
      ~demand:(Schedule.demand sch (Cluster.status cluster))
      ~duration:sch.Schedule.duration ()
  in
  (List.rev !events, r)

let check_identical name (direct_ev, direct_r) (via_ev, via_r) scalars =
  Alcotest.(check int)
    (name ^ ": event count")
    (List.length direct_ev) (List.length via_ev);
  List.iteri
    (fun i (d, v) ->
      if not (Trace.Event.equal d v) then
        Alcotest.failf "%s: event %d differs:\n  direct: %s\n  via:    %s"
          name i (Trace.Event.to_line d) (Trace.Event.to_line v))
    (List.combine direct_ev via_ev);
  if scalars direct_r <> scalars via_r then
    Alcotest.failf "%s: result counters differ" name

let test_des_differential () =
  List.iter
    (fun seed ->
      let sch = Schedule.generate ~seed ~m:6 ~sim:Schedule.Des in
      check_identical
        (Printf.sprintf "des seed %d" seed)
        (des_events false sch) (des_events true sch) scalars_des)
    [ 7; 42; 1234 ]

let test_faults_differential () =
  List.iter
    (fun seed ->
      let sch = Schedule.generate ~seed ~m:6 ~sim:Schedule.Faults in
      let sch = { sch with Schedule.duration = 10.0 } in
      check_identical
        (Printf.sprintf "faults seed %d" seed)
        (fault_events false sch) (fault_events true sch) scalars_faults)
    [ 7; 42 ]

(* The shootout's own gate, exercised at test scale: the report must
   self-certify the native digest. *)
let test_shootout_gate () =
  let report = Lesslog_harness.Shootout.run ~quick:true ~seed:9 ~m:5 () in
  Alcotest.(check bool)
    "native digest matches direct path" true
    report.Lesslog_harness.Shootout.native_digest_match;
  Alcotest.(check int)
    "four rows" 4
    (List.length report.Lesslog_harness.Shootout.rows)

let () =
  let to_alcotest = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "substrate"
    [
      ( "conformance",
        to_alcotest
          [
            prop_route_terminates;
            prop_neighbor_symmetry;
            prop_kill_revive_consistency;
            prop_replica_target_fresh;
          ] );
      ( "differential",
        [
          Alcotest.test_case "des: native via substrate = direct" `Quick
            test_des_differential;
          Alcotest.test_case "faults: native via substrate = direct" `Quick
            test_faults_differential;
          Alcotest.test_case "shootout digest gate" `Quick test_shootout_gate;
        ] );
    ]
