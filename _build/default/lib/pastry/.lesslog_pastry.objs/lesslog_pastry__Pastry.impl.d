lib/pastry/pastry.ml: Array Hashtbl Lesslog_id List Params Pid
