lib/storage/file_store.ml: Access_counter Format Hashtbl List Option
