lib/flow/balance.mli: Flow Lesslog Lesslog_id Lesslog_prng Lesslog_workload Pid Policy
