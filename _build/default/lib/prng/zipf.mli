(** Zipf-distributed sampling over ranks [1..n].

    Used by the multi-file workloads: request popularity across a catalogue
    of files follows a Zipf law, the standard model for P2P content
    popularity. Sampling is by inverse CDF over a precomputed table. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over [n] ranks with exponent [s >= 0].
    [s = 0] degenerates to the uniform distribution. *)

val n : t -> int

val probability : t -> int -> float
(** [probability t rank] for [rank] in [\[0, n)] (rank 0 is the most
    popular item). *)

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)]. O(log n) by binary search on the CDF. *)
