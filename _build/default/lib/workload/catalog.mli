(** Multi-file workloads: a catalogue of files whose popularity follows a
    Zipf law, each file's demand spread over origins by one of the
    {!Demand} models. Drives the counter-based-eviction ablation and the
    richer examples. *)

module Status_word = Lesslog_membership.Status_word

type spread = Uniform | Locality of { hot_fraction : float; hot_share : float }

type t = private { files : (string * Demand.t) array }

val create :
  ?prefix:string ->
  ?zipf_s:float ->
  Status_word.t ->
  rng:Lesslog_prng.Rng.t ->
  files:int ->
  total:float ->
  spread:spread ->
  t
(** [files] file names ([prefix] + rank), rank popularity Zipf with
    exponent [zipf_s] (default 0.9), total demand [total] requests/s
    across the catalogue. *)

val files : t -> (string * Demand.t) list
(** Most popular first. *)

val demand_of : t -> key:string -> Demand.t option

val shift_popularity : t -> rng:Lesslog_prng.Rng.t -> t
(** Re-deal the popularity ranks over the same file names — a popularity
    churn event for the eviction experiment: yesterday's hot file goes
    cold. *)
