(* lesslog-sim: regenerate every figure and ablation of the LessLog paper
   from the command line. *)

open Cmdliner
module E = Lesslog_harness.Experiments
module A = Lesslog_harness.Ablations
module Series = Lesslog_report.Series

(* --- Common options ---------------------------------------------------- *)

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ]
           ~doc:"Enable debug logging of the core file operations.")

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.set_level (Some Logs.Debug)
  else Logs.set_level (Some Logs.Warning)

let m_arg =
  Arg.(value & opt (some int) None
       & info [ "m" ] ~docv:"M" ~doc:"Identifier-space width (2^M slots).")

let capacity_arg =
  Arg.(value & opt (some float) None
       & info [ "capacity" ] ~docv:"R"
           ~doc:"Per-node capacity in requests/s (default 100).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let trials_arg =
  Arg.(value & opt (some int) None
       & info [ "trials" ] ~docv:"N" ~doc:"Trials averaged per point.")

let quick_arg =
  Arg.(value & flag
       & info [ "quick" ]
           ~doc:"Scaled-down configuration (m=7, 5 sweep points, 1 trial).")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"D"
           ~doc:"Worker domains for parallel sweeps (1 = sequential).")

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV.")

let plot_arg =
  Arg.(value & flag & info [ "plot" ] ~doc:"Render an ASCII plot too.")

let config_of ~quick ~m ~capacity ~seed ~trials ~domains =
  let base = if quick then E.quick else E.default in
  {
    base with
    E.m = Option.value ~default:base.E.m m;
    E.capacity = Option.value ~default:base.E.capacity capacity;
    E.trials = Option.value ~default:base.E.trials trials;
    E.seed = seed;
    E.domains = domains;
  }

let emit ~title ~x_label ~y_label ~csv ~plot series =
  print_endline title;
  print_endline (String.make (String.length title) '=');
  print_endline (Lesslog_report.Table.of_series ~x_label series);
  if plot then begin
    print_newline ();
    print_endline (Lesslog_report.Ascii_plot.render ~x_label ~y_label series)
  end;
  match csv with
  | Some path ->
      Lesslog_report.Csv.write_file ~path
        (Lesslog_report.Csv.of_series ~x_label series);
      Printf.printf "wrote %s\n" path
  | None -> ()

(* --- Figure commands --------------------------------------------------- *)

let figure_cmd ~name ~title ~doc ~runner =
  let run verbose quick m capacity seed trials domains csv plot =
    setup_logs verbose;
    let config = config_of ~quick ~m ~capacity ~seed ~trials ~domains in
    emit ~title ~x_label:"req/s" ~y_label:"replicas" ~csv ~plot
      (runner ~config ())
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ verbose_arg $ quick_arg $ m_arg $ capacity_arg $ seed_arg
      $ trials_arg $ domains_arg $ csv_arg $ plot_arg)

let fig5_cmd =
  figure_cmd ~name:"fig5"
    ~title:"Figure 5: replicas to balance, evenly-distributed load"
    ~doc:"Figure 5: log-based vs LessLog vs random under even load."
    ~runner:(fun ~config () -> E.fig5 ~config ())

let fig6_cmd =
  figure_cmd ~name:"fig6"
    ~title:"Figure 6: LessLog with 10/20/30% dead nodes, even load"
    ~doc:"Figure 6: LessLog with dead nodes under even load."
    ~runner:(fun ~config () -> E.fig6 ~config ())

let fig7_cmd =
  figure_cmd ~name:"fig7"
    ~title:"Figure 7: replicas to balance, locality model (80/20)"
    ~doc:"Figure 7: the three policies under the locality model."
    ~runner:(fun ~config () -> E.fig7 ~config ())

let fig8_cmd =
  figure_cmd ~name:"fig8"
    ~title:"Figure 8: LessLog with 10/20/30% dead nodes, locality model"
    ~doc:"Figure 8: LessLog with dead nodes under the locality model."
    ~runner:(fun ~config () -> E.fig8 ~config ())

(* --- Ablations ---------------------------------------------------------- *)

let hops_cmd =
  let run samples seed csv plot =
    emit ~title:"A1: mean lookup hops vs log2 N (lesslog, chord, pastry, CAN)"
      ~x_label:"m" ~y_label:"hops" ~csv ~plot (A.hops ~samples ~seed ())
  in
  Cmd.v
    (Cmd.info "hops" ~doc:"A1: O(log N) lookup — LessLog tree vs Chord, Pastry and CAN.")
    Term.(
      const run
      $ Arg.(value & opt int 2000
             & info [ "samples" ] ~docv:"N" ~doc:"Random lookups per point.")
      $ seed_arg $ csv_arg $ plot_arg)

let eviction_cmd =
  let run quick m capacity seed trials domains decay min_rate csv plot =
    let config = config_of ~quick ~m ~capacity ~seed ~trials ~domains in
    emit ~title:"A2: counter-based replica eviction after demand decay"
      ~x_label:"peak req/s" ~y_label:"replicas" ~csv ~plot
      (A.eviction ~config ~decay_factor:decay ~min_rate ())
  in
  Cmd.v
    (Cmd.info "eviction" ~doc:"A2: counter-based removal of cold replicas.")
    Term.(
      const run $ quick_arg $ m_arg $ capacity_arg $ seed_arg $ trials_arg
      $ domains_arg
      $ Arg.(value & opt float 10.0
             & info [ "decay" ] ~docv:"F" ~doc:"Demand decay factor.")
      $ Arg.(value & opt float 10.0
             & info [ "min-rate" ] ~docv:"R"
                 ~doc:"Eviction threshold, requests/s.")
      $ csv_arg $ plot_arg)

let ft_cmd =
  let run m files seed csv plot =
    emit
      ~title:"A3: read-fault rate vs simultaneously failed fraction, per b"
      ~x_label:"failed fraction" ~y_label:"fault rate" ~csv ~plot
      (A.fault_tolerance ~m ~files ~seed ())
  in
  Cmd.v
    (Cmd.info "ft"
       ~doc:"A3: the 2^b-subtree fault-tolerance model under failures.")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt int 32
             & info [ "files" ] ~docv:"N" ~doc:"Files inserted.")
      $ seed_arg $ csv_arg $ plot_arg)

let propchoice_cmd =
  let run quick m capacity seed trials domains dead csv plot =
    let config = config_of ~quick ~m ~capacity ~seed ~trials ~domains in
    emit
      ~title:"A5: proportional choice vs always-own / always-root placement"
      ~x_label:"req/s" ~y_label:"replicas" ~csv ~plot
      (A.proportional_choice ~config ~dead_fraction:dead ())
  in
  Cmd.v
    (Cmd.info "propchoice"
       ~doc:"A5: the Section 3 proportional choice at the max-VID live node.")
    Term.(
      const run $ quick_arg $ m_arg $ capacity_arg $ seed_arg $ trials_arg
      $ domains_arg
      $ Arg.(value & opt float 0.3
             & info [ "dead" ] ~docv:"F" ~doc:"Dead-node fraction.")
      $ csv_arg $ plot_arg)

let validate_cmd =
  let run m duration seed csv plot =
    emit ~title:"V1: fluid solver vs event-driven simulator (LessLog policy)"
      ~x_label:"req/s" ~y_label:"replicas" ~csv ~plot
      (A.fluid_vs_des ~m ~duration ~seed ())
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"V1: cross-validate the two evaluation engines.")
    Term.(
      const run
      $ Arg.(value & opt int 7 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 30.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ seed_arg $ csv_arg $ plot_arg)

let lifecycle_cmd =
  let run m peak calm seed plot =
    let o = A.eviction_lifecycle ~m ~peak ~calm ~seed () in
    print_endline "A2 (message-level): flash-crowd replica lifecycle";
    print_endline "=================================================";
    Printf.printf
      "replicas created %d, evicted %d; peak concurrent copies %.0f; final \
       copies %d; faults %d\n"
      o.A.created o.A.evicted o.A.peak_copies o.A.final_copies
      o.A.lifecycle_faults;
    if plot then begin
      print_newline ();
      print_endline
        (Lesslog_report.Ascii_plot.render ~x_label:"time (s)"
           ~y_label:"copies" (A.lifecycle_series o))
    end
  in
  Cmd.v
    (Cmd.info "lifecycle"
       ~doc:
         "A2 in the event-driven simulator: grow the fleet in a flash \
          crowd, trim it with the counter-based mechanism.")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 3000.0
             & info [ "peak" ] ~docv:"R" ~doc:"Peak demand, requests/s.")
      $ Arg.(value & opt float 150.0
             & info [ "calm" ] ~docv:"R" ~doc:"Post-crowd demand, requests/s.")
      $ seed_arg $ plot_arg)

let update_cost_cmd =
  let run m seed csv plot =
    emit ~title:"A6: UPDATEFILE messages vs replica population"
      ~x_label:"copies" ~y_label:"messages" ~csv ~plot
      (A.update_cost ~m ~seed ())
  in
  Cmd.v
    (Cmd.info "update-cost"
       ~doc:"A6: cost of the children-list update broadcast vs flooding.")
    Term.(
      const run
      $ Arg.(value & opt int 10 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ seed_arg $ csv_arg $ plot_arg)

let sessions_cmd =
  let run m rate duration seed =
    let outcomes = A.session_churn ~m ~rate ~duration ~seed () in
    print_endline "A7: availability under session-based churn (DES)";
    print_endline "================================================";
    print_endline
      (Lesslog_report.Table.render
         ~header:
           [ "session(s)"; "availability"; "served"; "faults"; "joins";
             "leaves"; "fails"; "replicas"; "ctrl msgs"; "transfers" ]
         (List.map
            (fun o ->
              [
                Printf.sprintf "%.0f" o.A.mean_session;
                Printf.sprintf "%.4f"
                  o.A.availability;
                string_of_int o.A.served;
                string_of_int o.A.faults;
                string_of_int o.A.joins;
                string_of_int o.A.leaves;
                string_of_int o.A.fails;
                string_of_int o.A.replicas_created;
                string_of_int o.A.control_messages;
                string_of_int o.A.file_transfers;
              ])
            outcomes))
  in
  Cmd.v
    (Cmd.info "sessions"
       ~doc:
         "A7: realistic alternating session/downtime churn (the paper's \
          future work).")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 2000.0
             & info [ "rate" ] ~docv:"R" ~doc:"Total demand, requests/s.")
      $ Arg.(value & opt float 120.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ seed_arg)

let churn_cmd =
  let run m rate duration seed =
    let outcomes = A.churn ~m ~rate ~duration ~seed () in
    print_endline "A4: availability under join/leave/fail churn";
    print_endline "==============================================";
    let rows =
      List.map
        (fun o ->
          [
            Printf.sprintf "%.0f" o.A.events_per_min;
            Printf.sprintf "%.4f" o.A.availability;
            string_of_int o.A.served;
            string_of_int o.A.faults;
            string_of_int o.A.replicas_created;
          ])
        outcomes
    in
    print_endline
      (Lesslog_report.Table.render
         ~header:[ "events/min"; "availability"; "served"; "faults"; "replicas" ]
         rows)
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"A4: availability under membership churn (DES).")
    Term.(
      const run
      $ Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 2000.0
             & info [ "rate" ] ~docv:"R" ~doc:"Total demand, requests/s.")
      $ Arg.(value & opt float 60.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ seed_arg)

let trace_run_cmd =
  let run m rate duration churn_epm seed out =
    let params = Lesslog_id.Params.create ~m () in
    let cluster = Lesslog.Cluster.create params in
    let key = "trace/hot-object" in
    ignore (Lesslog.Ops.insert cluster ~key);
    let rng = Lesslog_prng.Rng.create ~seed in
    let demand =
      Lesslog_workload.Demand.uniform (Lesslog.Cluster.status cluster)
        ~total:rate
    in
    let churn =
      if churn_epm <= 0.0 then []
      else
        Lesslog_des.Churn_trace.generate ~rng
          ~live:
            (Lesslog_membership.Status_word.live_pids
               (Lesslog.Cluster.status cluster))
          {
            Lesslog_des.Churn_trace.default with
            mean_session = 60.0 /. churn_epm *. 60.0;
            duration;
          }
    in
    let writer = Lesslog_trace.Trace.Writer.to_file out in
    let result =
      Lesslog_des.Des_sim.run ~churn
        ~sink:(Lesslog_trace.Trace.Writer.emit writer)
        ~rng ~cluster ~key ~demand ~duration ()
    in
    Lesslog_trace.Trace.Writer.close writer;
    Printf.printf
      "wrote %s: %d events (served %d, faults %d, replicas %d)\n" out
      (Lesslog_trace.Trace.Writer.count writer)
      result.Lesslog_des.Des_sim.served result.Lesslog_des.Des_sim.faults
      result.Lesslog_des.Des_sim.replicas_created;
    match Lesslog_trace.Trace.read_file out with
    | Ok events ->
        let s = Lesslog_trace.Trace.summarize events in
        Printf.printf
          "trace check: %d events over %.1fs (%d requests, %d replications, \
           %d evictions, %d membership changes)\n"
          s.Lesslog_trace.Trace.events s.Lesslog_trace.Trace.span
          s.Lesslog_trace.Trace.requests s.Lesslog_trace.Trace.replications
          s.Lesslog_trace.Trace.evictions
          s.Lesslog_trace.Trace.membership_changes
    | Error msg -> Printf.printf "trace check failed: %s\n" msg
  in
  Cmd.v
    (Cmd.info "trace-run"
       ~doc:"Run the event-driven simulator and record a replayable trace.")
    Term.(
      const run
      $ Arg.(value & opt int 7 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 1500.0
             & info [ "rate" ] ~docv:"R" ~doc:"Total demand, requests/s.")
      $ Arg.(value & opt float 30.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ Arg.(value & opt float 0.0
             & info [ "churn" ] ~docv:"EPM"
                 ~doc:"Approximate membership events per minute (0 = none).")
      $ seed_arg
      $ Arg.(value & opt string "lesslog.trace"
             & info [ "out" ] ~docv:"FILE" ~doc:"Trace output path."))

let faults_cmd =
  let run m rate duration crash restart_frac bursts partitions timeout retries
      deadline loss seed =
    let losses = match loss with Some l -> [ l ] | None -> [ 0.0; 0.1; 0.2; 0.3 ] in
    let usage msg =
      prerr_endline ("lesslog-sim: faults: " ^ msg);
      exit 2
    in
    List.iter
      (fun l -> if l < 0.0 || l >= 1.0 then usage "--loss must be in [0, 1)")
      losses;
    if retries < 0 then usage "--retries must be >= 0";
    if timeout <= 0.0 then usage "--timeout must be > 0";
    print_endline
      "R1: request reliability under loss, crashes and partitions (no oracle)";
    print_endline
      "=======================================================================";
    let rows =
      List.map
        (fun loss ->
          let params = Lesslog_id.Params.create ~m () in
          let cluster = Lesslog.Cluster.create params in
          let key = "faults/hot-object" in
          ignore (Lesslog.Ops.insert cluster ~key);
          let rng = Lesslog_prng.Rng.create ~seed in
          let demand =
            Lesslog_workload.Demand.uniform (Lesslog.Cluster.status cluster)
              ~total:rate
          in
          let live =
            Lesslog_membership.Status_word.live_pids
              (Lesslog.Cluster.status cluster)
          in
          let plan =
            Lesslog_workload.Faults.generate ~rng ~live ~duration
              ~crash_fraction:crash ~restart_fraction:restart_frac ~bursts
              ~partitions ()
          in
          let config =
            {
              Lesslog_des.Fault_sim.default_config with
              loss;
              deadline;
              rpc =
                {
                  Lesslog_net.Rpc.timeout;
                  policy = Lesslog_net.Retry.create ~max_retries:retries ();
                };
            }
          in
          let r =
            Lesslog_des.Fault_sim.run ~config ~plan ~rng ~cluster ~key ~demand
              ~duration ()
          in
          let module F = Lesslog_des.Fault_sim in
          let resolved = r.F.served + r.F.faulted in
          let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b in
          [
            Printf.sprintf "%.2f" loss;
            string_of_int r.F.issued;
            string_of_int r.F.served;
            string_of_int r.F.faulted;
            string_of_int r.F.pending_at_end;
            Printf.sprintf "%.2f" (pct resolved r.F.issued);
            Printf.sprintf "%.1f" (pct r.F.within_deadline r.F.issued);
            string_of_int r.F.retransmissions;
            string_of_int r.F.duplicate_serves;
            Printf.sprintf "%d/%d" r.F.suspicions r.F.spurious_suspicions;
            Printf.sprintf "%d/%d" r.F.migrations r.F.spurious_migrations;
            Printf.sprintf "%.1f" (100.0 *. r.F.detector_agreement);
            (match r.F.convergence with
            | Some s -> Printf.sprintf "%.1f" s
            | None -> "-");
            string_of_int r.F.messages;
          ])
        losses
    in
    print_endline
      (Lesslog_report.Table.render
         ~header:
           [ "loss"; "issued"; "served"; "faulted"; "pending"; "del|flt%";
             "<=ddl%"; "rexmit"; "dup"; "susp/spur"; "migr/spur"; "agree%";
             "conv(s)"; "msgs" ]
         rows)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "R1: the reliability layer under injected faults — request \
          timeouts/retries over a lossy overlay, heartbeat-driven \
          membership (no oracle), crash/restart, loss bursts and \
          partitions.")
    Term.(
      const run
      $ Arg.(value & opt int 7 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 1500.0
             & info [ "rate" ] ~docv:"R" ~doc:"Total demand, requests/s.")
      $ Arg.(value & opt float 60.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ Arg.(value & opt float 0.05
             & info [ "crash" ] ~docv:"F"
                 ~doc:"Fraction of nodes crashed during the run.")
      $ Arg.(value & opt float 0.5
             & info [ "restart" ] ~docv:"F"
                 ~doc:"Fraction of crashed nodes that restart.")
      $ Arg.(value & opt int 1
             & info [ "bursts" ] ~docv:"N" ~doc:"Loss bursts injected.")
      $ Arg.(value & opt int 1
             & info [ "partitions" ] ~docv:"N" ~doc:"Partitions injected.")
      $ Arg.(value & opt float 1.0
             & info [ "timeout" ] ~docv:"S" ~doc:"Per-attempt timeout.")
      $ Arg.(value & opt int 4
             & info [ "retries" ] ~docv:"N" ~doc:"Retransmissions per request.")
      $ Arg.(value & opt float 2.0
             & info [ "deadline" ] ~docv:"S"
                 ~doc:"Delivered-within-deadline threshold.")
      $ Arg.(value & opt (some float) None
             & info [ "loss" ] ~docv:"P"
                 ~doc:"Single baseline loss (default: sweep 0, .1, .2, .3).")
      $ seed_arg)

let msweep_cmd =
  let run ms rate_per_node duration capacity seed pdes_domains b =
    let ms =
      match ms with
      | [] -> [ 10; 11; 12; 13; 14; 15; 16 ]
      | ms -> ms
    in
    print_endline
      "S1: DES scale-up sweep over the identifier-space exponent m";
    print_endline
      "===========================================================";
    let points =
      E.des_sweep ~ms ~rate_per_node ~duration ~capacity ~seed ()
    in
    print_endline (E.render_des_sweep points);
    match pdes_domains with
    | None -> ()
    | Some domains ->
        Printf.printf
          "\nS2: sharded DES, %d subtree shards on %d worker domain(s)\n" (1 lsl b)
          domains;
        print_endline
          "===========================================================";
        let points =
          E.pdes_sweep ~ms ~b ~domains ~rate_per_node ~duration ~capacity ~seed
            ()
        in
        print_endline (E.render_pdes_sweep points);
        print_endline
          "(digests are invariant in --domains; rerun with a different D to \
           check)"
  in
  Cmd.v
    (Cmd.info "msweep"
       ~doc:
         "S1: run the full event-driven simulator at m = 10..16 on the \
          packed event core and report events/s, latency quantiles and \
          replication outcomes per point.")
    Term.(
      const run
      $ Arg.(value & opt_all int []
             & info [ "m" ] ~docv:"M"
                 ~doc:"Space width; repeatable (default 10..16).")
      $ Arg.(value & opt float 2.0
             & info [ "rate" ] ~docv:"R"
                 ~doc:"Demand per live node, requests/s.")
      $ Arg.(value & opt float 5.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ Arg.(value & opt float 100.0
             & info [ "capacity" ] ~docv:"R"
                 ~doc:"Per-node capacity in requests/s.")
      $ seed_arg
      $ Arg.(value & opt (some int) None
             & info [ "domains" ] ~docv:"D"
                 ~doc:"Also run the domain-parallel sharded simulator \
                       (Pdes_sim) on $(docv) worker domains. Results and \
                       digests are identical for every $(docv).")
      $ Arg.(value & opt int 2
             & info [ "b" ] ~docv:"B"
                 ~doc:"Subtree exponent for the sharded run: 2^$(docv) \
                       shards."))

let adaptive_cmd =
  let run m rates duration capacity seed domains files intervals =
    let m = Option.value ~default:10 m in
    let capacity = Option.value ~default:100.0 capacity in
    let rates =
      match rates with [] -> [ 500.0; 1000.0; 2000.0 ] | rates -> rates
    in
    print_endline
      "D1: adaptive replication — native logless vs dynamic-RF vs oracle";
    print_endline
      "=================================================================";
    let points =
      E.adaptive_sweep ~domains ~m ~duration ~capacity ~seed ~rates ()
    in
    print_endline (E.render_adaptive points);
    Printf.printf
      "\nD2: hot/warm/cold timeline (%d files, shifting popularity, one \
       flash crowd)\n"
      files;
    print_endline
      "=================================================================";
    let steps = E.adaptive_timeline ~capacity ~seed ~files ~intervals () in
    print_endline (E.render_adaptive_timeline steps);
    print_endline
      "(dynamic-rf digests are invariant in --domains; rerun with a \
       different D to check)"
  in
  Cmd.v
    (Cmd.info "adaptive"
       ~doc:
         "D1/D2: adaptive replication under time-varying demand — the \
          replicas-vs-rate curve family (native logless trigger vs the \
          weighted dynamic-RF policy, each against the mean-field \
          oracle), then the multi-file hot/warm/cold timeline with \
          popularity shifts and a flash crowd against the fluid \
          balancer.")
    Term.(
      const run $ m_arg
      $ Arg.(value & opt_all float []
             & info [ "rate" ] ~docv:"R"
                 ~doc:"Total demand, requests/s; repeatable (default \
                       500, 1000, 2000).")
      $ Arg.(value & opt float 8.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ capacity_arg $ seed_arg $ domains_arg
      $ Arg.(value & opt int 8
             & info [ "files" ] ~docv:"N"
                 ~doc:"Catalogue size for the timeline.")
      $ Arg.(value & opt int 12
             & info [ "intervals" ] ~docv:"N"
                 ~doc:"One-second intervals in the timeline."))

let coldtier_cmd =
  let run m capacity seed peak calm code_k code_r file_bytes rf_min =
    let m = Option.value ~default:10 m in
    let capacity = Option.value ~default:100.0 capacity in
    print_endline
      "Erasure-coded cold tier — hybrid replicated/coded vs full replication";
    print_endline
      "=====================================================================";
    let points =
      E.coldtier_run ~m ~capacity ~seed ~peak ~calm_duration:calm ~code_k
        ~code_r ~file_bytes ~rf_min ()
    in
    print_endline (E.render_coldtier points);
    match points with
    | [ full; hybrid ] ->
        Printf.printf
          "\nhybrid stores %.1f%% fewer bytes than full replication \
           (%.2fx vs %.2fx the file size) at a loss gap of %.4f\n"
          (100.0 *. (1.0 -. (hybrid.E.ct_mean_bytes /. full.E.ct_mean_bytes)))
          hybrid.E.ct_amplification full.E.ct_amplification
          (Float.abs (hybrid.E.ct_loss -. full.E.ct_loss))
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "coldtier"
       ~doc:
         "Erasure-coded cold tier: the adaptive lifecycle (flash crowd, \
          idle stretch with a mid-calm double failure, re-heat) run \
          through the dynamic-RF policy twice — demotion to a (k, r) \
          Reed-Solomon fragment set armed vs disarmed — comparing \
          storage amplification, repair bytes and loss, byte for byte.")
    Term.(
      const run $ m_arg $ capacity_arg $ seed_arg
      $ Arg.(value & opt float 500.0
             & info [ "peak" ] ~docv:"R"
                 ~doc:"Flash-crowd demand, requests/s.")
      $ Arg.(value & opt float 12.0
             & info [ "calm" ] ~docv:"S"
                 ~doc:"Idle-stretch length, simulated seconds.")
      $ Arg.(value & opt int 10
             & info [ "k" ] ~docv:"K" ~doc:"Data fragments of the code.")
      $ Arg.(value & opt int 4
             & info [ "r" ] ~docv:"P" ~doc:"Parity fragments of the code.")
      $ Arg.(value & opt int (1 lsl 20)
             & info [ "file-bytes" ] ~docv:"B"
                 ~doc:"Logical file size, bytes.")
      $ Arg.(value & opt int 3
             & info [ "rf-min" ] ~docv:"N"
                 ~doc:"Durability floor of the replication policy."))

(* --- Observability ------------------------------------------------------ *)

module Obs = Lesslog_obs.Obs

(* One instrumented DES run shared by [stats] and [trace]. *)
let instrumented_run ~m ~rate ~duration ~capacity ~seed =
  let params = Lesslog_id.Params.create ~m () in
  let cluster = Lesslog.Cluster.create params in
  let key = "obs/hot-object" in
  ignore (Lesslog.Ops.insert cluster ~key);
  let rng = Lesslog_prng.Rng.create ~seed in
  let demand =
    Lesslog_workload.Demand.uniform (Lesslog.Cluster.status cluster)
      ~total:rate
  in
  (* A generous ring so a whole CLI-scale run exports in full — the
     cache-sized default only retains the newest 16384 spans. *)
  let obs = Obs.create ~span_capacity:(1 lsl 18) () in
  let config = { Lesslog_des.Des_sim.default_config with capacity } in
  let result =
    Lesslog_des.Des_sim.run ~config ~obs ~rng ~cluster ~key ~demand ~duration
      ()
  in
  (obs, result)

let stats_cmd =
  let run m rate duration capacity seed json =
    let obs, result = instrumented_run ~m ~rate ~duration ~capacity ~seed in
    print_endline "O1: metrics registry after an instrumented DES run";
    print_endline "==================================================";
    let num v = if Float.is_nan v then "-" else Printf.sprintf "%.4g" v in
    let rows =
      List.map
        (fun (s : Obs.Registry.snapshot) ->
          [
            s.Obs.Registry.name;
            (match s.Obs.Registry.kind with
            | `Counter -> "counter"
            | `Gauge -> "gauge"
            | `Timer -> "timer");
            string_of_int s.Obs.Registry.count;
            num s.Obs.Registry.value;
            num s.Obs.Registry.p50;
            num s.Obs.Registry.p99;
            num s.Obs.Registry.max_v;
          ])
        (Obs.Registry.snapshot obs.Obs.registry)
    in
    print_endline
      (Lesslog_report.Table.render
         ~header:[ "metric"; "kind"; "count"; "value"; "p50"; "p99"; "max" ]
         rows);
    Printf.printf
      "spans: %d completed, %d retained, %d dropped, %d open; run served %d, \
       faults %d\n"
      (Obs.Span.completed obs.Obs.spans)
      (Obs.Span.retained obs.Obs.spans)
      (Obs.Span.dropped obs.Obs.spans)
      (Obs.Span.open_spans obs.Obs.spans)
      result.Lesslog_des.Des_sim.served result.Lesslog_des.Des_sim.faults;
    match json with
    | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Registry.to_json obs.Obs.registry);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "O1: run the event-driven simulator with the metrics registry \
          attached and print every des/* and core/* metric.")
    Term.(
      const run
      $ Arg.(value & opt int 10 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 2000.0
             & info [ "rate" ] ~docv:"R" ~doc:"Total demand, requests/s.")
      $ Arg.(value & opt float 10.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ Arg.(value & opt float 100.0
             & info [ "capacity" ] ~docv:"R"
                 ~doc:"Per-node capacity in requests/s.")
      $ seed_arg
      $ Arg.(value & opt (some string) None
             & info [ "json" ] ~docv:"FILE"
                 ~doc:"Also write the registry snapshot as JSON."))

let trace_cmd =
  let run m rate duration capacity seed spans lines =
    let obs, result = instrumented_run ~m ~rate ~duration ~capacity ~seed in
    Obs.Span.write_chrome ~path:spans obs.Obs.spans;
    Printf.printf
      "wrote %s: %d spans (%d completed, %d dropped; run served %d, faults \
       %d) — load it in chrome://tracing or Perfetto\n"
      spans
      (Obs.Span.retained obs.Obs.spans)
      (Obs.Span.completed obs.Obs.spans)
      (Obs.Span.dropped obs.Obs.spans)
      result.Lesslog_des.Des_sim.served result.Lesslog_des.Des_sim.faults;
    match lines with
    | Some path ->
        let writer = Lesslog_trace.Trace.Writer.to_file path in
        Obs.Span.iter obs.Obs.spans (Lesslog_trace.Trace.Writer.emit writer);
        Lesslog_trace.Trace.Writer.close writer;
        Printf.printf "wrote %s: %d SPN lines\n" path
          (Lesslog_trace.Trace.Writer.count writer)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "O2: run the event-driven simulator with span tracing attached and \
          export the per-request spans as Chrome trace_event JSON.")
    Term.(
      const run
      $ Arg.(value & opt int 10 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt float 2000.0
             & info [ "rate" ] ~docv:"R" ~doc:"Total demand, requests/s.")
      $ Arg.(value & opt float 10.0
             & info [ "duration" ] ~docv:"S" ~doc:"Simulated seconds.")
      $ Arg.(value & opt float 100.0
             & info [ "capacity" ] ~docv:"R"
                 ~doc:"Per-node capacity in requests/s.")
      $ seed_arg
      $ Arg.(value & opt string "spans.json"
             & info [ "spans" ] ~docv:"FILE"
                 ~doc:"Chrome trace_event output path.")
      $ Arg.(value & opt (some string) None
             & info [ "lines" ] ~docv:"FILE"
                 ~doc:"Also write the spans as SPN trace lines."))

(* --- Deterministic checking --------------------------------------------- *)

module Checker = Lesslog_check.Checker
module Check_schedule = Lesslog_check.Schedule

let check_cmd =
  let run m seed iterations budget out mutate =
    (match out with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    let stop =
      match budget with
      | None -> fun () -> false
      | Some b ->
          let t0 = Sys.time () in
          fun () -> Sys.time () -. t0 > b
    in
    Printf.printf "check: m=%d seed=%d iterations=%d%s%s\n" m seed iterations
      (if mutate then " [mutation: broken FINDLIVENODE]" else "")
      (match budget with
      | Some b -> Printf.sprintf " budget=%.0fs" b
      | None -> "");
    match
      Checker.explore ~mutation:mutate ?out_dir:out ~stop
        ~log:print_endline ~seed ~m ~iterations ()
    with
    | Checker.Clean { trials } ->
        Printf.printf "clean: %d schedules, 0 oracle violations\n" trials
    | Checker.Found f ->
        Printf.printf
          "FOUND: trial %d violated %s; shrunk to %d steps (%d runs)%s\n"
          f.Checker.trial f.Checker.shrunk_violation.Checker.oracle
          (List.length f.Checker.shrunk.Check_schedule.steps)
          f.Checker.shrink_stats.Lesslog_check.Shrink.runs
          (match f.Checker.repro_path with
          | Some p -> Printf.sprintf "; repro: %s" p
          | None -> "");
        exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "C1: deterministic simulation checking — run seeded random \
          churn/fault schedules through the simulators with invariant \
          oracles attached; on violation, shrink to a minimal \
          counterexample and write a replayable repro file. Exits 1 when \
          a violation is found.")
    Term.(
      const run
      $ Arg.(value & opt int 10 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ seed_arg
      $ Arg.(value & opt int 100
             & info [ "iterations" ] ~docv:"N"
                 ~doc:"Maximum schedules to explore.")
      $ Arg.(value & opt (some float) None
             & info [ "budget" ] ~docv:"SEC"
                 ~doc:"Stop after this much CPU time even if iterations \
                       remain (iteration output stays deterministic; the \
                       cut-off point does not).")
      $ Arg.(value & opt (some string) None
             & info [ "out" ] ~docv:"DIR"
                 ~doc:"Directory for repro files (created if missing).")
      $ Arg.(value & flag
             & info [ "mutate" ]
                 ~doc:"Self-test: enable the deliberately broken \
                       FINDLIVENODE and demand the checker catch it."))

let replay_cmd =
  let run path =
    match Check_schedule.load path with
    | Error msg ->
        Printf.eprintf "cannot load %s: %s\n" path msg;
        exit 2
    | Ok decoded -> (
        match Checker.replay ~log:print_endline decoded with
        | Checker.Reproduced _ | Checker.Clean_run -> ()
        | Checker.Mismatch _ -> exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "C2: re-execute a checker repro file and verify it reproduces \
          the recorded violation (or clean run) deterministically. Exits \
          1 on mismatch.")
    Term.(
      const run
      $ Arg.(required & pos 0 (some string) None
             & info [] ~docv:"FILE" ~doc:"Repro file written by check."))

(* --- Substrate shootout ------------------------------------------------- *)

let substrates_cmd =
  let run quick m seed out =
    let m = Option.value ~default:(if quick then 6 else 8) m in
    let report = Lesslog_harness.Shootout.run ~quick ~seed ~m () in
    print_string (Lesslog_harness.Shootout.render report);
    (match out with
    | None -> ()
    | Some path ->
        Lesslog_report.Bench_json.write ~path
          (Lesslog_harness.Shootout.to_bench report);
        Printf.printf "wrote %s\n" path);
    if not report.Lesslog_harness.Shootout.native_digest_match then exit 1
  in
  Cmd.v
    (Cmd.info "substrates"
       ~doc:
         "Run the substrate shootout: the same seeded churn (Des_sim) and \
          fault (Fault_sim) schedules through the one replication core \
          over four overlays — native LessLog, Chord, Pastry, CAN — and \
          print the hops/latency/replica/availability comparison. Exits 1 \
          if the native-mode trace digest drifts from the direct \
          (substrate-less) path.")
    Term.(
      const run $ quick_arg $ m_arg $ seed_arg
      $ Arg.(value & opt (some string) None
             & info [ "out" ] ~docv:"FILE"
                 ~doc:"Also write the comparison as flat JSON (the \
                       BENCH_substrates.json format)."))

(* --- Inspection --------------------------------------------------------- *)

let tree_cmd =
  let run m root =
    let params = Lesslog_id.Params.create ~m () in
    let tree =
      Lesslog_ptree.Ptree.make params
        ~root:(Lesslog_id.Pid.of_int params root)
    in
    Format.printf "%a@." Lesslog_ptree.Ptree.pp tree
  in
  Cmd.v
    (Cmd.info "tree" ~doc:"Print the physical lookup tree of a node.")
    Term.(
      const run
      $ Arg.(value & opt int 4 & info [ "m" ] ~docv:"M" ~doc:"Space width.")
      $ Arg.(value & opt int 4
             & info [ "root" ] ~docv:"PID" ~doc:"Root node PID."))

let all_cmd =
  let run quick m capacity seed trials domains plot =
    let config = config_of ~quick ~m ~capacity ~seed ~trials ~domains in
    let figures =
      [
        ("Figure 5 (even load)", E.fig5 ~config ());
        ("Figure 6 (dead nodes, even)", E.fig6 ~config ());
        ("Figure 7 (locality)", E.fig7 ~config ());
        ("Figure 8 (dead nodes, locality)", E.fig8 ~config ());
      ]
    in
    List.iter
      (fun (title, series) ->
        emit ~title ~x_label:"req/s" ~y_label:"replicas" ~csv:None ~plot series;
        print_newline ())
      figures
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate all four paper figures.")
    Term.(
      const run $ quick_arg $ m_arg $ capacity_arg $ seed_arg $ trials_arg
      $ domains_arg $ plot_arg)

let () =
  let doc = "Reproduce the LessLog (IPDPS 2004) evaluation." in
  let info = Cmd.info "lesslog-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig5_cmd; fig6_cmd; fig7_cmd; fig8_cmd; all_cmd; hops_cmd;
            eviction_cmd; ft_cmd; propchoice_cmd; validate_cmd; churn_cmd;
            update_cost_cmd; sessions_cmd; lifecycle_cmd; trace_run_cmd;
            faults_cmd; msweep_cmd; adaptive_cmd; coldtier_cmd; stats_cmd;
            trace_cmd;
            check_cmd;
            replay_cmd; substrates_cmd; tree_cmd;
          ]))
