(** Simulation event traces: capture what the event-driven simulator did,
    one event per line, for offline analysis and replay. The format is a
    stable, human-greppable text codec with an exact round-trip; see
    [lib/trace/README.md] for the line grammar, one section per variant,
    with example lines. *)

module Event : sig
  type t =
    | Request of {
        at : float;
        origin : int;
        server : int option;  (** [None] = fault. *)
        hops : int;
      }
    | Replicate of { at : float; src : int; dst : int; key : string }
    | Evict of { at : float; node : int; key : string }
    | Membership of { at : float; node : int; change : [ `Join | `Leave | `Fail ] }
    | Timeout of { at : float; id : int; origin : int; attempt : int }
        (** Attempt [attempt] of request [id] went unanswered at [origin]. *)
    | Retry of { at : float; id : int; origin : int; attempt : int }
        (** [origin] retransmitted request [id] as attempt [attempt]. *)
    | Suspect of { at : float; node : int }
        (** The failure detector stopped trusting [node]. *)
    | Trust of { at : float; node : int }
        (** The failure detector trusts [node] again (false-suspicion
            recovery, or a restarted node coming back). *)
    | Span of {
        at : float;  (** Start time. *)
        dur : float;  (** Duration, simulated seconds ([0] = instant). *)
        name : string;  (** Span kind, e.g. ["lookup"]; percent-encoded. *)
        id : int;  (** Request id the span is attributed to. *)
        origin : int;
        server : int option;  (** [None] = the request faulted. *)
        hops : int;
        attempt : int;
      }
        (** A timed span from the observability layer ({!Lesslog_obs.Obs}):
            one per-request interval (or instant marker) with its hop
            attribution. *)
    | Loss of { at : float; until : float; rate : float }
        (** A message-loss burst: every link drops with probability [rate]
            from [at] until [until]. Stacks with other bursts. *)
    | Cut of {
        at : float;
        until : float;
        direction : [ `Both | `In | `Out ];
        nodes : int list;
      }
        (** A network partition: traffic to ([`In]), from ([`Out]) or
            both ways across [nodes] is cut from [at] until [until]. *)
    | Mark of { at : float; name : string; value : float }
        (** A named scalar annotation, e.g. checker schedule parameters
            in a repro file; [name] is percent-encoded. *)

  val time : t -> float

  val to_line : t -> string
  (** One line, no newline. Keys are percent-encoded so the codec is
      total. *)

  val of_line : string -> (t, string) result

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Writer : sig
  type t

  val to_file : string -> t
  val to_buffer : Buffer.t -> t
  val emit : t -> Event.t -> unit
  val count : t -> int
  val close : t -> unit
  (** Flush and (for files) close. Idempotent. *)
end

val read_file : string -> (Event.t list, string) result
(** All events; fails on the first malformed line with its number. *)

val read_string : string -> (Event.t list, string) result

type summary = {
  events : int;
  requests : int;
  faults : int;
  replications : int;
  evictions : int;
  membership_changes : int;
  timeouts : int;
  retries : int;
  suspicions : int;
  recoveries : int;
  spans : int;
  span : float;  (** Last event time minus first. *)
}

val summarize : Event.t list -> summary
