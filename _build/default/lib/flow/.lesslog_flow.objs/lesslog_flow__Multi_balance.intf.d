lib/flow/multi_balance.mli: Lesslog Lesslog_id Lesslog_prng Lesslog_workload Pid Policy
