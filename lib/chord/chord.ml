open Lesslog_id

type t = {
  params : Params.t;
  ids : int array;  (* sorted live node identifiers *)
  index_of : (int, int) Hashtbl.t;  (* id -> position in [ids] *)
  fingers : int array array;  (* fingers.(i).(k) = id of finger k of node i *)
}

(* Is [x] in the circular half-open interval (a, b] ?  When a = b the
   interval wraps the whole ring (Chord convention). *)
let in_interval_oc ~space x ~a ~b =
  if a = b then true
  else begin
    let norm v = (((v - a) mod space) + space) mod space in
    let x' = norm x and b' = norm b in
    x' > 0 && x' <= b'
  end

(* Is [x] strictly inside the circular open interval (a, b) ? *)
let in_interval_oo ~space x ~a ~b =
  let norm v = ((v - a) mod space + space) mod space in
  let x' = norm x and b' = norm b in
  if b' = 0 then x' > 0 else x' > 0 && x' < b'

let successor_id ids space x =
  let x = ((x mod space) + space) mod space in
  (* Binary search: first id >= x, wrapping to ids.(0). *)
  let n = Array.length ids in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ids.(mid) >= x then hi := mid else lo := mid + 1
  done;
  if !lo = n then ids.(0) else ids.(!lo)

let create params ~live =
  (match live with [] -> invalid_arg "Chord.create: empty ring" | _ -> ());
  let ids = List.map Pid.to_int live |> List.sort_uniq compare |> Array.of_list in
  let space = Params.space params in
  let m = Params.m params in
  let index_of = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let fingers =
    Array.mapi
      (fun _ id ->
        Array.init m (fun k -> successor_id ids space (id + (1 lsl k))))
      ids
  in
  { params; ids; index_of; fingers }

let node_count t = Array.length t.ids

let successor t x =
  Pid.unsafe_of_int (successor_id t.ids (Params.space t.params) x)

type lookup_result = { owner : Pid.t; hops : int; path : Pid.t list }

let closest_preceding_finger t ~node_id ~target =
  let space = Params.space t.params in
  let i = Hashtbl.find t.index_of node_id in
  let fingers = t.fingers.(i) in
  let rec scan k =
    if k < 0 then node_id
    else
      let f = fingers.(k) in
      if f <> node_id && in_interval_oo ~space f ~a:node_id ~b:target then f
      else scan (k - 1)
  in
  scan (Params.m t.params - 1)

let lookup t ~from ~target =
  let space = Params.space t.params in
  if not (Hashtbl.mem t.index_of (Pid.to_int from)) then
    invalid_arg "Chord.lookup: unknown origin";
  let owner = successor_id t.ids space target in
  let rec route current hops acc =
    if current = owner then
      { owner = Pid.unsafe_of_int owner; hops; path = List.rev acc }
    else begin
      let succ = successor_id t.ids space (current + 1) in
      if in_interval_oc ~space target ~a:current ~b:succ then
        (* The successor owns the target: final hop. *)
        { owner = Pid.unsafe_of_int succ;
          hops = hops + 1;
          path = List.rev (Pid.unsafe_of_int succ :: acc) }
      else begin
        let next = closest_preceding_finger t ~node_id:current ~target in
        if next = current then
          (* Degenerate finger table (tiny rings): fall back to the
             successor hop, which always makes progress. *)
          route succ (hops + 1) (Pid.unsafe_of_int succ :: acc)
        else route next (hops + 1) (Pid.unsafe_of_int next :: acc)
      end
    end
  in
  route (Pid.to_int from) 0 [ from ]

let finger t n k =
  let i = Hashtbl.find t.index_of (Pid.to_int n) in
  Pid.unsafe_of_int t.fingers.(i).(k)

(* One step of the iterative routing above, kept in lockstep with
   [lookup]: a full route through [next_hop] visits exactly the nodes
   [lookup] reports. A [from] outside the ring (a stale message to a node
   the snapshot no longer contains) falls back to its ring successor,
   which always makes progress toward the owner. *)
let next_hop t ~from ~target =
  let space = Params.space t.params in
  let current = Pid.to_int from in
  let owner = successor_id t.ids space target in
  if current = owner then None
  else begin
    let succ = successor_id t.ids space (current + 1) in
    if in_interval_oc ~space target ~a:current ~b:succ then
      Some (Pid.unsafe_of_int succ)
    else if not (Hashtbl.mem t.index_of current) then
      Some (Pid.unsafe_of_int succ)
    else begin
      let next = closest_preceding_finger t ~node_id:current ~target in
      if next = current then Some (Pid.unsafe_of_int succ)
      else Some (Pid.unsafe_of_int next)
    end
  end

let ring_neighbors t p =
  let n = Array.length t.ids in
  match Hashtbl.find_opt t.index_of (Pid.to_int p) with
  | None -> []
  | Some i ->
      if n <= 1 then []
      else begin
        let succ = t.ids.((i + 1) mod n) in
        let pred = t.ids.((i - 1 + n) mod n) in
        if succ = pred then [ Pid.unsafe_of_int succ ]
        else [ Pid.unsafe_of_int succ; Pid.unsafe_of_int pred ]
      end
