type t = { m : int; b : int }

let create ?(b = 0) ~m () =
  if m < 1 || m > Lesslog_bits.Bitops.max_width then
    invalid_arg "Params.create: m out of range";
  if b < 0 || b >= m then invalid_arg "Params.create: b out of range";
  { m; b }

let m t = t.m
let b t = t.b
let space t = 1 lsl t.m
let mask t = (1 lsl t.m) - 1
let subtree_count t = 1 lsl t.b
let subtree_space t = 1 lsl (t.m - t.b)

let pp fmt t = Format.fprintf fmt "{m=%d; b=%d}" t.m t.b
