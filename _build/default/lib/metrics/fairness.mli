(** Load-distribution fairness measures.

    The paper's evaluation stops at "no node is overloaded"; these indices
    quantify how evenly the surviving load is spread, which is how the
    balance results are sanity-checked beyond the threshold test. *)

val jain : float array -> float
(** Jain's fairness index: [(Σx)² / (n·Σx²)], in [\[1/n, 1\]]; 1 means
    perfectly even. Ignores nothing — zero entries count. 1.0 on an empty
    or all-zero array by convention. *)

val jain_nonzero : float array -> float
(** Jain's index over the strictly positive entries only — fairness among
    the nodes actually serving (the natural view when most nodes hold no
    copy). *)

val peak_to_mean : float array -> float
(** Max over mean of the positive entries; 1.0 when empty. *)
