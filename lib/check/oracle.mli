(** Invariant oracles for the deterministic checker.

    An oracle value watches one cluster through one trial: {!on_event} is
    the simulator sink — it runs the cheap epoch-monotonicity check on
    every trace event and the heavy state oracles (cache coherence, tree
    properties P1–P4, replica availability) at every membership or
    detector-verdict event, which is exactly when the status word can have
    moved; {!at_end} re-runs everything on the final state and, for Des
    runs, checks span/trace consistency against the run's tallies. The
    oracle contract: checks either return unit or raise {!Violation} —
    they never mutate the cluster, so a passing check is free of side
    effects and a trial is bit-reproducible from its schedule.

    See [lib/check/README.md] for what each oracle asserts and why its
    blind spots (Fault-mode availability, lost/orphaned keys) are
    deliberate. *)

module Cluster = Lesslog.Cluster
module Obs = Lesslog_obs.Obs
module Des_sim = Lesslog_des.Des_sim
module Trace = Lesslog_trace.Trace

exception Violation of { oracle : string; at : float; detail : string }
(** [oracle] is the stable oracle name recorded in repro files
    ("cache-coherence", "tree-properties", "replica-availability",
    "epoch-monotonic", "epoch-stale", "span-consistency"). *)

type t

val create : Cluster.t -> sim:Schedule.sim -> t
(** Snapshot the initial epoch/membership; the cluster must be fully set
    up (keys inserted) before the first event. *)

val on_event : t -> Trace.Event.t -> unit
(** Feed as the simulator's [sink]. @raise Violation on the first failed
    invariant. *)

val at_end :
  ?obs:Obs.t -> ?result:Des_sim.result -> t -> now:float -> unit
(** Final sweep at simulation time [now]. Pass [obs] and [result] for Des
    runs to enable the span-consistency oracle. @raise Violation. *)

val heavy_checks : t -> int
(** How many heavy sweeps ran — part of the checker's deterministic
    output, so a schedule change that silently skips checking shows up. *)

val events_seen : t -> int
