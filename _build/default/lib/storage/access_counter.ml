type t = { tau : float; mutable count : float; mutable stamp : float }

let create ?(tau = 30.0) ~now () =
  if tau <= 0.0 then invalid_arg "Access_counter.create";
  { tau; count = 0.0; stamp = now }

let decay t ~now =
  if now > t.stamp then begin
    t.count <- t.count *. exp (-.(now -. t.stamp) /. t.tau);
    t.stamp <- now
  end

let record t ~now =
  decay t ~now;
  t.count <- t.count +. 1.0

let record_many t ~now ~count =
  decay t ~now;
  t.count <- t.count +. float_of_int count

let value t ~now =
  decay t ~now;
  t.count

let rate t ~now = value t ~now /. t.tau

let reset t ~now =
  t.count <- 0.0;
  t.stamp <- now
