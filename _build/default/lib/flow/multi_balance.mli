(** Multi-file load balancing: the whole-catalogue generalization of
    {!Balance}.

    The paper's evaluation uses a single hot file; a deployed LessLog node
    serves many files at once and overloads on its {e total} serve rate.
    This module runs the same replicate-until-balanced loop against a
    catalogue: each iteration finds the node with the highest aggregate
    load and replicates the file contributing most to it, using the
    regular per-file placement policy. *)

open Lesslog_id

type outcome = {
  replicas_per_key : (string * int) list;
      (** Replicas created for each key (keys with none omitted). *)
  total_replicas : int;
  iterations : int;
  balanced : bool;
  max_load : float;  (** Highest aggregate per-node serve rate at the end. *)
}

val run :
  ?max_steps:int ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  catalog:(string * Lesslog_workload.Demand.t) list ->
  capacity:float ->
  policy:Policy.t ->
  unit ->
  outcome
(** Every key must already be inserted. [max_steps] defaults to
    8 × slot count. *)

val aggregate_loads :
  cluster:Lesslog.Cluster.t ->
  catalog:(string * Lesslog_workload.Demand.t) list ->
  float array
(** Total serve rate per PID slot across the catalogue, under the current
    holder sets. *)

val per_key_loads :
  cluster:Lesslog.Cluster.t ->
  catalog:(string * Lesslog_workload.Demand.t) list ->
  at:Pid.t ->
  (string * float) list
(** The decomposition of one node's aggregate load by key, heaviest
    first. *)
