open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Des_sim = Lesslog_des.Des_sim
module Balance = Lesslog_flow.Balance
module Policy = Lesslog_flow.Policy
module Histogram = Lesslog_metrics.Histogram
module Latency = Lesslog_net.Latency
module Rng = Lesslog_prng.Rng
module Trace = Lesslog_trace.Trace

let key = "des/test-object"

let make_cluster ?(m = 6) () =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  ignore (Ops.insert cluster ~key);
  cluster

let run ?config ?churn ?(m = 6) ?(seed = 11) ~total ~duration () =
  let cluster = make_cluster ~m () in
  let rng = Rng.create ~seed in
  let demand = Demand.uniform (Cluster.status cluster) ~total in
  let result = Des_sim.run ?config ?churn ~rng ~cluster ~key ~demand ~duration () in
  (cluster, result)

let test_low_load_no_replication () =
  let _, r = run ~total:50.0 ~duration:10.0 () in
  Alcotest.(check int) "no replicas" 0 r.Des_sim.replicas_created;
  Alcotest.(check int) "no faults" 0 r.Des_sim.faults;
  Alcotest.(check bool) "some service" true (r.Des_sim.served > 0)

let test_overload_triggers_replication () =
  let cluster, r = run ~total:2000.0 ~duration:20.0 () in
  Alcotest.(check bool) "replicated" true (r.Des_sim.replicas_created > 0);
  Alcotest.(check int) "no faults" 0 r.Des_sim.faults;
  Alcotest.(check int) "no overloaded node at end" 0 r.Des_sim.overloaded_at_end;
  Alcotest.(check int) "copies match timeline" (1 + r.Des_sim.replicas_created)
    (Cluster.total_copies cluster ~key);
  match r.Des_sim.last_replication with
  | Some t -> Alcotest.(check bool) "converged before end" true (t < 20.0)
  | None -> Alcotest.fail "expected replication"

let test_latency_bounded_by_hops () =
  let config =
    { Des_sim.default_config with latency = Latency.Constant 0.01 }
  in
  let _, r = run ~config ~total:200.0 ~duration:10.0 () in
  (* With constant 10ms hops and at most m forwarding hops + 1 reply, no
     request can take longer than (m + 1) * 10ms. *)
  Alcotest.(check bool) "max latency bound" true
    (Histogram.max_value r.Des_sim.latencies <= 0.01 *. 7.0 +. 1e-9);
  Alcotest.(check bool) "hops bound" true
    (Histogram.max_value r.Des_sim.hops <= 6.0)

let test_determinism () =
  let _, r1 = run ~seed:99 ~total:800.0 ~duration:10.0 () in
  let _, r2 = run ~seed:99 ~total:800.0 ~duration:10.0 () in
  Alcotest.(check int) "served" r1.Des_sim.served r2.Des_sim.served;
  Alcotest.(check int) "replicas" r1.Des_sim.replicas_created
    r2.Des_sim.replicas_created;
  Alcotest.(check int) "messages" r1.Des_sim.messages r2.Des_sim.messages

let test_seed_sensitivity () =
  let _, r1 = run ~seed:1 ~total:800.0 ~duration:10.0 () in
  let _, r2 = run ~seed:2 ~total:800.0 ~duration:10.0 () in
  Alcotest.(check bool) "different arrival streams" true
    (r1.Des_sim.served <> r2.Des_sim.served)

let test_agrees_with_fluid_solver () =
  (* Same workload through both engines: the DES replica count must be in
     the same regime as the fluid optimum (>= it, within a small factor). *)
  let m = 6 and total = 1500.0 in
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:5 in
  let demand = Demand.uniform (Cluster.status cluster) ~total in
  let fluid =
    Balance.run ~rng ~cluster ~key ~demand ~capacity:100.0 ~policy:Policy.Lesslog ()
  in
  let _, des = run ~seed:5 ~m ~total ~duration:30.0 () in
  let f = fluid.Balance.replicas and d = des.Des_sim.replicas_created in
  Alcotest.(check bool)
    (Printf.sprintf "fluid %d <= des %d <= 4x fluid" f d)
    true
    (d >= f && d <= 4 * f)

let test_churn_leave_keeps_serving () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:3 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:500.0 in
  (* The file's own target leaves mid-run; the Section 5 mechanism re-homes
     it and requests keep resolving. *)
  let target = Cluster.target_of_key cluster key in
  let churn = [ { Des_sim.at = 5.0; action = Des_sim.Leave target } ] in
  let result = Des_sim.run ~churn ~rng ~cluster ~key ~demand ~duration:15.0 () in
  Alcotest.(check int) "no faults across the handover" 0 result.Des_sim.faults;
  Alcotest.(check bool) "target is gone" true
    (Status_word.is_dead (Cluster.status cluster) target)

let test_churn_join_is_applied () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let absent = Pid.unsafe_of_int 13 in
  Status_word.set_dead (Cluster.status cluster) absent;
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:4 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:200.0 in
  let churn = [ { Des_sim.at = 2.0; action = Des_sim.Join absent } ] in
  let result = Des_sim.run ~churn ~rng ~cluster ~key ~demand ~duration:8.0 () in
  Alcotest.(check bool) "joined" true
    (Status_word.is_live (Cluster.status cluster) absent);
  Alcotest.(check int) "no faults" 0 result.Des_sim.faults

let test_message_loss_still_converges () =
  let config = { Des_sim.default_config with loss = 0.05 } in
  let _, r = run ~config ~total:1500.0 ~duration:30.0 () in
  (* Requests can be lost (clients see timeouts, which we do not model),
     but the system still de-overloads. *)
  Alcotest.(check int) "no overloaded node at end" 0 r.Des_sim.overloaded_at_end;
  Alcotest.(check bool) "replicated" true (r.Des_sim.replicas_created > 0)

let test_scenario_with_eviction_trims_fleet () =
  let params = Params.create ~m:6 () in
  let cluster = make_cluster ~m:6 () in
  ignore params;
  let rng = Rng.create ~seed:21 in
  let scenario =
    Lesslog_workload.Scenario.flash_crowd (Cluster.status cluster) ~rng
      ~peak:2000.0 ~calm:100.0 ~peak_duration:20.0 ~calm_duration:40.0
  in
  let config =
    {
      Des_sim.default_config with
      eviction = Some { Des_sim.period = 4.0; min_rate = 5.0 };
    }
  in
  let r = Des_sim.run_scenario ~config ~rng ~cluster ~key ~scenario () in
  Alcotest.(check bool) "replicated during peak" true
    (r.Des_sim.replicas_created > 0);
  Alcotest.(check bool) "evicted after dispersal" true
    (r.Des_sim.replicas_evicted > 0);
  Alcotest.(check int) "bookkeeping consistent"
    (1 + r.Des_sim.replicas_created - r.Des_sim.replicas_evicted)
    (Cluster.total_copies cluster ~key);
  Alcotest.(check int) "no faults" 0 r.Des_sim.faults;
  (* The crowd's fleet shrinks: final copies well below the peak. *)
  let pts = Lesslog_metrics.Timeseries.points r.Des_sim.replica_timeline in
  let peak = Array.fold_left (fun a (_, v) -> Float.max a v) 0.0 pts in
  let final = snd pts.(Array.length pts - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "final %.0f < peak %.0f" final peak)
    true (final < peak)

let test_eviction_never_removes_inserted_copy () =
  let cluster = make_cluster ~m:6 () in
  let rng = Rng.create ~seed:22 in
  (* Tiny demand + aggressive eviction: the inserted copy must survive. *)
  let demand = Demand.uniform (Cluster.status cluster) ~total:5.0 in
  let config =
    {
      Des_sim.default_config with
      eviction = Some { Des_sim.period = 1.0; min_rate = 1000.0 };
    }
  in
  let r = Des_sim.run ~config ~rng ~cluster ~key ~demand ~duration:20.0 () in
  Alcotest.(check int) "inserted copy immune" 1
    (Cluster.total_copies cluster ~key);
  Alcotest.(check int) "no faults" 0 r.Des_sim.faults

(* Golden trace: the full event log of a fixed-seed run — churn, loss,
   eviction, all features on — captured on the closure+binary-heap engine
   before the ladder-queue/packed-event port. The port is required to
   reproduce it bit for bit: every event at the same simulated time, in
   the same order, with the same RNG draws. Any scheduling or RNG
   reordering shows up here as a digest mismatch. *)
let test_golden_trace_reproduced () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let key = "golden/object" in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:77 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:1500.0 in
  let target = Cluster.target_of_key cluster key in
  let churn =
    [ { Des_sim.at = 4.0; action = Des_sim.Fail target };
      { Des_sim.at = 7.0; action = Des_sim.Join target } ]
  in
  let config =
    { Des_sim.default_config with
      loss = 0.03;
      eviction = Some { Des_sim.period = 2.0; min_rate = 5.0 } }
  in
  let buf = Buffer.create 65536 in
  let writer = Trace.Writer.to_buffer buf in
  let r =
    Des_sim.run ~config ~churn ~sink:(Trace.Writer.emit writer) ~rng ~cluster
      ~key ~demand ~duration:10.0 ()
  in
  Alcotest.(check int) "trace digest" 4045666517057985694
    (Lesslog_hash.Fnv.hash63 (Buffer.contents buf));
  Alcotest.(check int) "trace events" 14512 (Trace.Writer.count writer);
  Alcotest.(check int) "served" 13980 r.Des_sim.served;
  Alcotest.(check int) "faults" 405 r.Des_sim.faults;
  Alcotest.(check int) "replicas" 68 r.Des_sim.replicas_created;
  Alcotest.(check int) "evicted" 57 r.Des_sim.replicas_evicted;
  Alcotest.(check int) "messages" 29479 r.Des_sim.messages;
  Alcotest.(check (float 0.0)) "max latency (bit-exact)" 0x1.79ff3939ab99ep-2
    (Histogram.max_value r.Des_sim.latencies);
  Alcotest.(check (float 0.0)) "max hops (bit-exact)" 0x1.8p+2
    (Histogram.max_value r.Des_sim.hops);
  (* Runs without a [cold_tier] carry no cold ledger — the tier is
     strictly opt-in, and the digest above proves it leaves the event
     stream untouched. *)
  Alcotest.(check bool) "no cold ledger" true (r.Des_sim.cold = None)

(* --- Dynamic-RF policy --------------------------------------------------- *)

module Rf_policy = Lesslog_policy.Rf_policy

let make_policy ?rf0 ~params ~capacity () =
  Rf_policy.create
    ~config:
      {
        Rf_policy.default_config with
        Rf_policy.interval = 0.25;
        rf_max = Params.space params;
        capacity = Some capacity;
      }
    ?rf0 ~nodes:(Params.space params) ~files:1 ()

let test_policy_sizes_fleet_to_demand () =
  let cluster = make_cluster ~m:6 () in
  let params = Cluster.params cluster in
  let policy = make_policy ~params ~capacity:100.0 () in
  let rng = Rng.create ~seed:5 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:800.0 in
  let r = Des_sim.run ~policy ~rng ~cluster ~key ~demand ~duration:10.0 () in
  Alcotest.(check int) "no faults" 0 r.Des_sim.faults;
  Alcotest.(check bool) "policy replicated" true (r.Des_sim.replicas_created > 0);
  (* The interval tick enforces the prescribed factor, so the cluster
     ends exactly at the policy's RF — which must sit at the mean-field
     target, 800 req/s over 100 req/s-per-copy = 8 copies. *)
  let rf = Rf_policy.rf policy ~file:0 in
  Alcotest.(check int) "copies = prescribed RF" rf
    (Cluster.total_copies cluster ~key);
  Alcotest.(check bool)
    (Printf.sprintf "RF %d within 1 of the fluid target 8" rf)
    true
    (abs (rf - 8) <= 1)

let test_policy_drains_after_demand () =
  let cluster = make_cluster ~m:6 () in
  let params = Cluster.params cluster in
  (* Start over-provisioned at 16 copies with almost no demand: the
     policy walks the fleet back down, never touching the inserted
     copy. *)
  let policy = make_policy ~rf0:16 ~params ~capacity:100.0 () in
  let rng = Rng.create ~seed:6 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:5.0 in
  let r = Des_sim.run ~policy ~rng ~cluster ~key ~demand ~duration:10.0 () in
  Alcotest.(check int) "no faults" 0 r.Des_sim.faults;
  Alcotest.(check bool) "evicted surplus" true (r.Des_sim.replicas_evicted > 0);
  (* The trickle keeps the observed-rate target at one copy; PD spikes
     above the EMA threshold may pre-provision one of headroom. *)
  let final = Cluster.total_copies cluster ~key in
  Alcotest.(check bool)
    (Printf.sprintf "drained to the floor (%d copies)" final)
    true
    (final >= 1 && final <= 2)

let test_policy_rejects_wrong_population () =
  let cluster = make_cluster ~m:6 () in
  let policy =
    Rf_policy.create ~nodes:4 ~files:1 () (* cluster space is 64 *)
  in
  let rng = Rng.create ~seed:7 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:10.0 in
  Alcotest.check_raises "population mismatch"
    (Invalid_argument "Des_sim: policy accessor population <> cluster space")
    (fun () ->
      ignore (Des_sim.run ~policy ~rng ~cluster ~key ~demand ~duration:1.0 ()))

(* --- Erasure-coded cold tier ---------------------------------------- *)

module Experiments = Lesslog_harness.Experiments

(* The Ops layer end to end: demote, serve from fragments, lose up to
   [r] holders and keep serving, repair, then lose [r + 1] and degrade
   to faults — never an exception. *)
let test_cold_ops_lifecycle () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let key = "cold/object" in
  ignore (Ops.insert cluster ~key);
  let status = Cluster.status cluster in
  let k = 4 and r = 2 in
  let holders =
    match Ops.demote_to_coded cluster ~key ~k ~r with
    | Some hs -> hs
    | None -> Alcotest.fail "demotion refused"
  in
  Alcotest.(check int) "k+r fragment holders" (k + r) (List.length holders);
  Alcotest.(check int) "no full copies left" 0
    (Cluster.total_copies cluster ~key);
  Alcotest.(check bool) "servable" true (Ops.coded_servable cluster ~key);
  let origin =
    (* A live node holding no fragment, so the request must walk. *)
    let rec find i =
      let p = Pid.unsafe_of_int i in
      if
        Status_word.is_live status p
        && not (Ops.holds_fragment cluster p ~key)
      then p
      else find (i + 1)
    in
    find 0
  in
  let serves () = (Ops.get cluster ~origin ~key).Ops.server <> None in
  Alcotest.(check bool) "serves from fragments" true (serves ());
  (* Fail the r parity holders: still >= k fragments, still servable,
     and the data-stripe holder at the walk's insertion target stays up
     so the path keeps meeting a fragment. *)
  List.iteri
    (fun i p -> if i >= k then Status_word.set_dead status p)
    holders;
  Alcotest.(check int) "k fragments survive" k
    (Ops.live_fragment_count cluster ~key);
  Alcotest.(check bool) "still serves at r losses" true (serves ());
  (* Churn repair re-seats the missing fragments on fresh nodes. *)
  (match Ops.repair_coded cluster ~key with
  | `Repaired n -> Alcotest.(check int) "rebuilt" r n
  | `Intact | `Lost -> Alcotest.fail "expected a repair");
  Alcotest.(check int) "full strength again" (k + r)
    (Ops.live_fragment_count cluster ~key);
  (* Now lose r + 1 of the current holders with no repair in between:
     fewer than k fragments survive, and every path degrades
     gracefully. *)
  let current =
    List.concat_map
      (fun i -> Cluster.holders cluster ~key:(Ops.frag_key key i))
      (List.init (k + r) Fun.id)
    |> List.filter (Status_word.is_live status)
  in
  List.iteri
    (fun i p -> if i <= r then Status_word.set_dead status p)
    current;
  Alcotest.(check bool) "below k" true
    (Ops.live_fragment_count cluster ~key < k);
  Alcotest.(check bool) "not servable" false (Ops.coded_servable cluster ~key);
  Alcotest.(check bool) "get faults, no exception" false (serves ());
  Alcotest.(check bool) "promotion refused" true
    (Ops.promote_from_coded cluster ~key ~copies:3 = None);
  (match Ops.repair_coded cluster ~key with
  | `Lost -> ()
  | `Intact | `Repaired _ -> Alcotest.fail "expected `Lost")

(* The simulator end to end, through the harness lifecycle: flash
   crowd, demotion during the calm, two fragment-holder failures
   (<= r), fragment repair, promotion on the re-heat — the payload
   survives and requests are served out of fragments. *)
let test_cold_sim_lifecycle () =
  let points =
    Experiments.coldtier_run ~m:9 ~calm_duration:10.0 ()
  in
  match points with
  | [ full; hybrid ] ->
      Alcotest.(check int) "baseline never demotes" 0
        full.Experiments.ct_demotions;
      Alcotest.(check bool) "hybrid demotes" true
        (hybrid.Experiments.ct_demotions >= 1);
      Alcotest.(check bool) "hybrid promotes" true
        (hybrid.Experiments.ct_promotions >= 1);
      Alcotest.(check bool) "served from fragments" true
        (hybrid.Experiments.ct_coded_serves >= 1);
      Alcotest.(check bool) "payload survived <= r failures" false
        hybrid.Experiments.ct_lost;
      Alcotest.(check bool) "failures triggered fragment repair" true
        (hybrid.Experiments.ct_fragment_repairs >= 1
        && hybrid.Experiments.ct_repair_bytes > 0);
      Alcotest.(check bool) "loss parity with the baseline" true
        (Float.abs
           (hybrid.Experiments.ct_loss -. full.Experiments.ct_loss)
        <= 0.05);
      Alcotest.(check bool) "hybrid stores fewer bytes" true
        (hybrid.Experiments.ct_mean_bytes < full.Experiments.ct_mean_bytes)
  | _ -> Alcotest.fail "coldtier_run: expected [full; hybrid]"

let test_cold_tier_validation () =
  let cluster = make_cluster ~m:6 () in
  let params = Cluster.params cluster in
  let rng = Rng.create ~seed:3 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:10.0 in
  let attempt ?policy cold_tier =
    ignore (Des_sim.run ?policy ~cold_tier ~rng ~cluster ~key ~demand
              ~duration:1.0 ())
  in
  Alcotest.check_raises "needs a policy"
    (Invalid_argument "Des_sim: cold_tier needs a policy (its Cold verdicts)")
    (fun () -> attempt Des_sim.default_cold_tier);
  let policy () = make_policy ~params ~capacity:100.0 () in
  Alcotest.check_raises "bad code"
    (Invalid_argument "Des_sim: invalid cold_tier code parameters")
    (fun () ->
      attempt ~policy:(policy ())
        { Des_sim.default_cold_tier with code_k = 0 });
  Alcotest.check_raises "bad size"
    (Invalid_argument "Des_sim: file_bytes must be > 0")
    (fun () ->
      attempt ~policy:(policy ())
        { Des_sim.default_cold_tier with file_bytes = 0 });
  Alcotest.check_raises "bad streak"
    (Invalid_argument "Des_sim: demote_after must be >= 1")
    (fun () ->
      attempt ~policy:(policy ())
        { Des_sim.default_cold_tier with demote_after = 0 })

let test_replica_timeline_monotone () =
  let _, r = run ~total:2000.0 ~duration:15.0 () in
  let pts = Lesslog_metrics.Timeseries.points r.Des_sim.replica_timeline in
  let ok = ref true in
  for i = 1 to Array.length pts - 1 do
    if snd pts.(i) < snd pts.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "copies never decrease during a run" true !ok

let () =
  Alcotest.run "des"
    [
      ( "behaviour",
        [
          Alcotest.test_case "low load" `Quick test_low_load_no_replication;
          Alcotest.test_case "overload replicates" `Quick
            test_overload_triggers_replication;
          Alcotest.test_case "latency bounds" `Quick test_latency_bounded_by_hops;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "seed-sensitive" `Quick test_seed_sensitivity;
          Alcotest.test_case "replica timeline monotone" `Quick
            test_replica_timeline_monotone;
          Alcotest.test_case "golden trace reproduced" `Quick
            test_golden_trace_reproduced;
        ] );
      ( "integration",
        [
          Alcotest.test_case "agrees with fluid solver" `Slow
            test_agrees_with_fluid_solver;
          Alcotest.test_case "leave handover" `Quick test_churn_leave_keeps_serving;
          Alcotest.test_case "join applied" `Quick test_churn_join_is_applied;
          Alcotest.test_case "converges under loss" `Slow
            test_message_loss_still_converges;
          Alcotest.test_case "flash-crowd lifecycle" `Slow
            test_scenario_with_eviction_trims_fleet;
          Alcotest.test_case "eviction spares inserted" `Quick
            test_eviction_never_removes_inserted_copy;
        ] );
      ( "dynamic-rf policy",
        [
          Alcotest.test_case "sizes fleet to demand" `Quick
            test_policy_sizes_fleet_to_demand;
          Alcotest.test_case "drains after demand" `Quick
            test_policy_drains_after_demand;
          Alcotest.test_case "rejects wrong population" `Quick
            test_policy_rejects_wrong_population;
        ] );
      ( "cold tier",
        [
          Alcotest.test_case "ops lifecycle" `Quick test_cold_ops_lifecycle;
          Alcotest.test_case "sim lifecycle" `Slow test_cold_sim_lifecycle;
          Alcotest.test_case "validation" `Quick test_cold_tier_validation;
        ] );
    ]
