lib/flow/multi_balance.ml: Array Float Flow Hashtbl Lesslog Lesslog_id Lesslog_storage List Option Params Pid Policy
