lib/core/self_org.mli: Cluster Lesslog_id Pid
