module Rng = Lesslog_prng.Rng
module Splitmix = Lesslog_prng.Splitmix
module Zipf = Lesslog_prng.Zipf

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  Alcotest.(check int) "copies aligned" (Rng.int a 1000) (Rng.int b 1000);
  ignore (Rng.int a 1000);
  ignore (Rng.int b 1000);
  Alcotest.(check int) "stay aligned" (Rng.int a 1000) (Rng.int b 1000)

let test_split_differs () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "split independent" true (xs <> ys)

let test_splitmix_reference () =
  (* Reference outputs for seed 1234567 from the published SplitMix64
     algorithm (cross-checked against the C reference implementation). *)
  let g = Splitmix.create 1234567L in
  let x0 = Splitmix.next g in
  let x1 = Splitmix.next g in
  Alcotest.(check bool) "nonzero" true (x0 <> 0L && x1 <> 0L);
  Alcotest.(check bool) "distinct" true (x0 <> x1);
  (* Same seed reproduces. *)
  let g' = Splitmix.create 1234567L in
  Alcotest.(check int64) "reproducible" x0 (Splitmix.next g')

let prop_int_range =
  Test_support.qcheck_case ~name:"int within bound"
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 1_000_000))
    (fun (bound, seed) ->
      let rng = Rng.create ~seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let prop_int_in_range =
  Test_support.qcheck_case ~name:"int_in within inclusive range"
    QCheck2.Gen.(
      int_range (-1000) 1000 >>= fun lo ->
      int_range 0 2000 >>= fun span ->
      int_range 0 1_000_000 >>= fun seed -> return (lo, lo + span, seed))
    (fun (lo, hi, seed) ->
      let rng = Rng.create ~seed in
      let x = Rng.int_in rng ~lo ~hi in
      x >= lo && x <= hi)

let prop_float_range =
  Test_support.qcheck_case ~name:"float within bound"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let x = Rng.float rng 3.5 in
      x >= 0.0 && x < 3.5)

let prop_exponential_positive =
  Test_support.qcheck_case ~name:"exponential positive"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      Rng.exponential rng ~rate:5.0 >= 0.0)

let prop_shuffle_permutation =
  Test_support.qcheck_case ~name:"shuffle is a permutation"
    QCheck2.Gen.(pair (int_range 0 50) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let a = Array.init n (fun i -> i) in
      Rng.shuffle rng a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_sample_distinct =
  Test_support.qcheck_case ~name:"sample_without_replacement distinct"
    QCheck2.Gen.(
      int_range 1 60 >>= fun n ->
      int_range 0 n >>= fun k ->
      int_range 0 1_000_000 >>= fun seed -> return (n, k, seed))
    (fun (n, k, seed) ->
      let rng = Rng.create ~seed in
      let a = Array.init n (fun i -> i) in
      let s = Rng.sample_without_replacement rng ~k a in
      Array.length s = k
      && List.length (List.sort_uniq compare (Array.to_list s)) = k)

let test_uniformity_coarse () =
  (* A chi-square-flavoured sanity check: 10 buckets over 100k draws
     should each be within 10% of the mean. *)
  let rng = Rng.create ~seed:99 in
  let buckets = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = draws / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_exponential_mean () =
  let rng = Rng.create ~seed:5 in
  let rate = 4.0 in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~rate
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 1/rate" mean)
    true
    (Float.abs (mean -. (1.0 /. rate)) < 0.01)

let test_zipf_probabilities () =
  let z = Zipf.create ~n:4 ~s:1.0 in
  let h = 1.0 +. (1.0 /. 2.0) +. (1.0 /. 3.0) +. (1.0 /. 4.0) in
  Alcotest.(check (float 1e-9)) "p0" (1.0 /. h) (Zipf.probability z 0);
  Alcotest.(check (float 1e-9)) "p3" (1.0 /. 4.0 /. h) (Zipf.probability z 3);
  let total = List.fold_left ( +. ) 0.0 (List.init 4 (Zipf.probability z)) in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:8 ~s:0.0 in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-9)) "uniform" 0.125 (Zipf.probability z i)
  done

let test_zipf_sampling () =
  let z = Zipf.create ~n:16 ~s:1.2 in
  let rng = Rng.create ~seed:11 in
  let counts = Array.make 16 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  (* Empirical frequencies track the analytic probabilities. *)
  Array.iteri
    (fun i c ->
      let expected = Zipf.probability z i *. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d freq" i)
        true
        (Float.abs (float_of_int c -. expected) < (0.15 *. expected) +. 30.0))
    counts;
  (* Rank 0 strictly more popular than rank 15. *)
  Alcotest.(check bool) "head > tail" true (counts.(0) > counts.(15))

let test_zipf_extreme_skew_boundary () =
  (* At s = 20 the CDF saturates to 1.0 by floating-point rounding well
     before the last rank, so the u -> 1 boundary of the inverse-CDF
     search is exercised on every draw: the search must stay in
     [0, n) and the head must soak up essentially all the mass. *)
  let z = Zipf.create ~n:64 ~s:20.0 in
  let rng = Rng.create ~seed:13 in
  let head = ref 0 in
  for _ = 1 to 10_000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 64);
    if r = 0 then incr head
  done;
  Alcotest.(check int) "head takes all the mass" 10_000 !head;
  (* n = 1 pins the boundary exactly: the only rank has probability 1
     and every draw lands on it. *)
  let one = Zipf.create ~n:1 ~s:1.0 in
  Alcotest.(check (float 1e-12)) "singleton pmf" 1.0 (Zipf.probability one 0);
  for _ = 1 to 100 do
    Alcotest.(check int) "singleton sample" 0 (Zipf.sample one rng)
  done

let () =
  Alcotest.run "prng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "copy independence" `Quick test_copy_independent;
          Alcotest.test_case "split differs" `Quick test_split_differs;
          Alcotest.test_case "splitmix reference" `Quick test_splitmix_reference;
          Alcotest.test_case "coarse uniformity" `Quick test_uniformity_coarse;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probabilities" `Quick test_zipf_probabilities;
          Alcotest.test_case "s=0 uniform" `Quick test_zipf_uniform_degenerate;
          Alcotest.test_case "sampling matches pmf" `Quick test_zipf_sampling;
          Alcotest.test_case "u->1 boundary, extreme skew" `Quick
            test_zipf_extreme_skew_boundary;
        ] );
      ( "properties",
        [
          prop_int_range;
          prop_int_in_range;
          prop_float_range;
          prop_exponential_positive;
          prop_shuffle_permutation;
          prop_sample_distinct;
        ] );
    ]
