(** Message-passing overlay on top of the discrete-event engine: each node
    registers a handler; sends are delivered after a sampled per-hop
    latency, with optional loss injection. *)

open Lesslog_id

type 'msg t

val create :
  engine:Lesslog_sim.Engine.t ->
  rng:Lesslog_prng.Rng.t ->
  ?latency:Latency.t ->
  ?loss:float ->
  Params.t ->
  'msg t
(** [loss] is the probability a message is silently dropped (default 0). *)

val set_loss : 'msg t -> float -> unit
(** Change the drop probability mid-run — loss bursts in fault-injection
    scenarios. @raise Invalid_argument outside [[0, 1)]. *)

val loss : 'msg t -> float

val set_filter : 'msg t -> (src:Pid.t -> dst:Pid.t -> bool) option -> unit
(** Install (or clear) a link filter consulted at send time: a message
    whose link is down ([false]) is dropped and counted. Partitions —
    including asymmetric ones — are expressed here. *)

val set_handler : 'msg t -> Pid.t -> (src:Pid.t -> 'msg -> unit) -> unit

val clear_handler : 'msg t -> Pid.t -> unit
(** A node with no handler silently drops deliveries (a crashed node). *)

val send : 'msg t -> src:Pid.t -> dst:Pid.t -> 'msg -> unit
(** Schedule delivery after one latency sample. Delivery to a node without
    a handler counts as dropped. *)

(** {2 Packed plane}

    Allocation-free counterpart of {!send}: the message is an [(int,
    float)] payload carried inside a packed engine event (src/dst share
    one word), dispatched to a single per-overlay receive function —
    node-level demux is the receiver's job. Loss, filters, latency
    sampling and the counters behave exactly as for {!send}, and both
    planes share them. Liveness is per-plane: {!attach}/{!detach} play
    the role of {!set_handler}/{!clear_handler} — a detached destination
    drops the delivery. *)

val set_packed_recv :
  'msg t -> (src:Pid.t -> dst:Pid.t -> int -> float -> unit) option -> unit
(** The simulator's demux: receives every packed delivery as
    [(src, dst, b, x)]. *)

val attach : 'msg t -> Pid.t -> unit
(** Mark a node live for packed deliveries. *)

val detach : 'msg t -> Pid.t -> unit
(** A detached node silently drops packed deliveries (a crashed node). *)

val send_packed : 'msg t -> src:Pid.t -> dst:Pid.t -> b:int -> x:float -> unit
(** Schedule a packed delivery after one latency sample; no per-message
    closure. [b] and [x] are opaque payload words. *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int
val messages_dropped : 'msg t -> int
