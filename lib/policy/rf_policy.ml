module Packed_bits = Lesslog_bits.Packed_bits

type class_ = Hot | Warm | Cold

let class_name = function Hot -> "hot" | Warm -> "warm" | Cold -> "cold"

type config = {
  interval : float;
  rf_min : int;
  rf_max : int;
  hot_factor : float;
  cold_factor : float;
  history : float;
  capacity : float option;
}

let default_config =
  {
    interval = 1.0;
    rf_min = 1;
    rf_max = 64;
    hot_factor = 1.5;
    cold_factor = 0.5;
    history = 0.5;
    capacity = None;
  }

type decision = {
  file : int;
  cls : class_;
  ac : int;
  dnc : int;
  pd : float;
  rf_before : int;
  rf_after : int;
}

type t = {
  config : config;
  nodes : int;
  nfiles : int;
  ac : int array;  (* interval access count per file *)
  dnc : int array;  (* interval distinct-node count per file *)
  seen : Packed_bits.t array;  (* per-file accessed-node bitset *)
  touched : bool array;  (* files with interval activity, for cheap reset *)
  rf_ : int array;  (* replica factor, carried across intervals *)
  cls : class_ array;  (* last interval's classification *)
  mutable reference : float;  (* EMA of the mean PD over accessed files *)
  mutable intervals_closed : int;
}

let create ?(config = default_config) ?rf0 ~nodes ~files () =
  if nodes <= 0 then invalid_arg "Rf_policy.create: nodes";
  if files <= 0 then invalid_arg "Rf_policy.create: files";
  if config.interval <= 0.0 then invalid_arg "Rf_policy.create: interval";
  if config.rf_min < 1 then invalid_arg "Rf_policy.create: rf_min";
  if config.rf_max < config.rf_min then invalid_arg "Rf_policy.create: rf_max";
  if config.cold_factor > config.hot_factor then
    invalid_arg "Rf_policy.create: cold_factor > hot_factor";
  if config.history < 0.0 || config.history >= 1.0 then
    invalid_arg "Rf_policy.create: history";
  (match config.capacity with
  | Some c when c <= 0.0 -> invalid_arg "Rf_policy.create: capacity"
  | _ -> ());
  let rf0 = Option.value rf0 ~default:config.rf_min in
  if rf0 < config.rf_min || rf0 > config.rf_max then
    invalid_arg "Rf_policy.create: rf0";
  {
    config;
    nodes;
    nfiles = files;
    ac = Array.make files 0;
    dnc = Array.make files 0;
    seen = Array.init files (fun _ -> Packed_bits.create nodes);
    touched = Array.make files false;
    rf_ = Array.make files rf0;
    cls = Array.make files Warm;
    reference = 0.0;
    intervals_closed = 0;
  }

let config t = t.config
let files t = t.nfiles
let nodes t = t.nodes

let record t ~file ~node =
  if file < 0 || file >= t.nfiles then invalid_arg "Rf_policy.record: file";
  if node < 0 || node >= t.nodes then invalid_arg "Rf_policy.record: node";
  t.ac.(file) <- t.ac.(file) + 1;
  t.touched.(file) <- true;
  let seen = t.seen.(file) in
  if not (Packed_bits.get seen node) then begin
    Packed_bits.set seen node;
    t.dnc.(file) <- t.dnc.(file) + 1
  end

let note t ~file ~ac ~dnc =
  if file < 0 || file >= t.nfiles then invalid_arg "Rf_policy.note: file";
  if ac < 0 || dnc < 0 then invalid_arg "Rf_policy.note: negative tally";
  if ac > 0 || dnc > 0 then t.touched.(file) <- true;
  t.ac.(file) <- t.ac.(file) + ac;
  t.dnc.(file) <- min t.nodes (t.dnc.(file) + dnc)

let rf t ~file =
  if file < 0 || file >= t.nfiles then invalid_arg "Rf_policy.rf: file";
  t.rf_.(file)

let classification t ~file =
  if file < 0 || file >= t.nfiles then
    invalid_arg "Rf_policy.classification: file";
  t.cls.(file)

let reference_pd t = t.reference

let pd_of t ~file =
  let w = float_of_int t.dnc.(file) /. float_of_int t.nodes in
  w *. float_of_int t.ac.(file)

let end_interval t =
  (* Mean PD over the files accessed this interval — the system-wide
     popularity level the dynamic thresholds hang off. *)
  let sum = ref 0.0 and accessed = ref 0 in
  for f = 0 to t.nfiles - 1 do
    if t.ac.(f) > 0 then begin
      sum := !sum +. pd_of t ~file:f;
      incr accessed
    end
  done;
  let mean = if !accessed = 0 then 0.0 else !sum /. float_of_int !accessed in
  t.reference <-
    (if t.intervals_closed = 0 then mean
     else
       (t.config.history *. t.reference)
       +. ((1.0 -. t.config.history) *. mean));
  let hot_at = t.config.hot_factor *. t.reference in
  let cold_at = t.config.cold_factor *. t.reference in
  let decisions =
    Array.init t.nfiles (fun f ->
        let ac = t.ac.(f) and dnc = t.dnc.(f) in
        let pd = pd_of t ~file:f in
        let cls =
          match t.config.capacity with
          | None ->
              (* Pure PD thresholds (the classic scheme). A silent
                 interval is Cold regardless (a zero-activity system
                 would otherwise pin everything Warm at reference 0). *)
              if ac = 0 then Cold
              else if pd > hot_at then Hot
              else if pd < cold_at then Cold
              else Warm
          | Some c ->
              (* Capacity-aware mode: the access log sizes the replica
                 set to the observed rate — [need] replicas absorb this
                 interval's accesses at [c] each — and a file whose
                 weighted popularity clears the dynamic hot threshold
                 pre-provisions one replica of headroom. The pure-PD
                 thresholds degenerate on a one-file catalogue (the
                 file's PD {e is} the reference), so without this the
                 single-hot-file simulators could never grow or shed. *)
              let need =
                if ac = 0 then 0
                else
                  int_of_float
                    (Float.ceil
                       (float_of_int ac /. (t.config.interval *. c)))
              in
              let target = need + (if ac > 0 && pd > hot_at then 1 else 0) in
              if t.rf_.(f) < target then Hot
              else if t.rf_.(f) > target then Cold
              else Warm
        in
        let rf_before = t.rf_.(f) in
        let rf_after =
          match cls with
          | Hot -> min t.config.rf_max (rf_before + 1)
          | Cold -> max t.config.rf_min (rf_before - 1)
          | Warm -> rf_before
        in
        t.rf_.(f) <- rf_after;
        t.cls.(f) <- cls;
        { file = f; cls; ac; dnc; pd; rf_before; rf_after })
  in
  (* Reset interval tallies; only touched files pay the bitset clear. *)
  for f = 0 to t.nfiles - 1 do
    if t.touched.(f) then begin
      t.ac.(f) <- 0;
      t.dnc.(f) <- 0;
      Packed_bits.clear_all t.seen.(f);
      t.touched.(f) <- false
    end
  done;
  t.intervals_closed <- t.intervals_closed + 1;
  decisions
