lib/hash/psi.mli:
