lib/prng/zipf.ml: Array Rng
