(* Domain-parallel DES: one packed-core [Engine] per shard, conservative
   epoch synchronization, deterministic at any worker count.

   The decomposition leans on a lookahead [L]: every cross-shard message
   is delivered at least [L] of simulated time after it is sent (the
   minimum inter-shard delivery delay — a network hop in the overlay
   simulators). An epoch is then the window [T, B) where [T] is the
   earliest pending event across all shards and [B = T + L]: a message
   sent during the epoch arrives at [>= T + L = B], so no shard can be
   influenced by another within the window and all shards may drain
   their own queues concurrently.

   {b Fused phases.} One pool job per {e phase}, not per epoch. A phase
   hands every worker a fixed contiguous block of shards; per epoch
   window the worker (1) drains the mailboxes addressed to its own
   destination shards — one {!Engine.post_batch} per nonempty mailbox,
   in the fixed source-then-FIFO order that pins tie-breaking seqs —
   (2) drains its shards below the window bound, and (3) publishes its
   local minimum next-event time (engines plus its own undelivered
   sends) through a pre-sized per-worker results array. No coordinator
   pass touches the shards between windows.

   {b Epoch fusion.} At the end of a window the workers meet at an
   in-job {!Par.Barrier}; the last arriver folds the per-worker minima
   and, when the window ended with every mailbox empty and neither a
   global action nor the horizon due, opens the next window in place —
   the workers spin through consecutive quiet windows against the shared
   phase descriptor and a run of k quiet epochs costs one pool dispatch
   plus k barrier crossings instead of k dispatches. Any cross-shard
   traffic, global or horizon ends the phase and returns control to the
   coordinator.

   {b Mailboxes.} Cross-shard sends go to per-(src, dst) mailboxes —
   single-producer by construction, since a shard's events execute on
   exactly one worker during a window. Mailboxes are double-buffered by
   window parity: senders append to the buffer of the current window
   while destination owners drain the previous window's buffer, so
   delivery and sending never touch the same arrays; the inter-window
   barrier provides the happens-before edge between a source's appends
   and the destination's drain. Each source shard also tracks the
   minimum timestamp and count of its undelivered sends, which is how
   the window minimum can include parked mail without scanning n^2
   mailboxes.

   Together with per-shard sequential draining this makes the full event
   sequence — order, timestamps, payloads, per-engine tie-breaking
   seqs — bit-identical at any domain count, including 1, and identical
   with fusion on or off.

   Rare whole-system actions (membership churn, phase changes) run as
   {e global events}: the window is clipped so it never spans one, and
   the action runs sequentially at the barrier with all shard clocks
   lined up on its timestamp. *)

module Par = Lesslog_parallel.Par

type mailbox = {
  mutable t : float array;
  mutable h : int array;
  mutable a : int array;
  mutable b : int array;
  mutable x : float array;
  mutable len : int;
}

let mb_make () =
  { t = [||]; h = [||]; a = [||]; b = [||]; x = [||]; len = 0 }

(* Growth is a plain function — no per-push closure allocation — and
   all five arrays go through the same two helpers. *)
let grow_floats old ~len ~cap =
  let n = Array.make cap 0.0 in
  Array.blit old 0 n 0 len;
  n

let grow_ints old ~len ~cap =
  let n = Array.make cap 0 in
  Array.blit old 0 n 0 len;
  n

let mb_grow mb =
  let cap = max 16 (2 * mb.len) in
  mb.t <- grow_floats mb.t ~len:mb.len ~cap;
  mb.h <- grow_ints mb.h ~len:mb.len ~cap;
  mb.a <- grow_ints mb.a ~len:mb.len ~cap;
  mb.b <- grow_ints mb.b ~len:mb.len ~cap;
  mb.x <- grow_floats mb.x ~len:mb.len ~cap

let mb_push mb ~time ~h ~a ~b ~x =
  if mb.len = Array.length mb.t then mb_grow mb;
  let i = mb.len in
  mb.t.(i) <- time;
  mb.h.(i) <- h;
  mb.a.(i) <- a;
  mb.b.(i) <- b;
  mb.x.(i) <- x;
  mb.len <- i + 1

(* Shared state of one fused phase: written by the coordinator before
   the pool job starts, per-worker slots written by their owner during a
   window, decision fields written by the barrier's last arriver. All
   plain fields ride the happens-before edges of the pool hand-off and
   the in-job barrier. *)
type descriptor = {
  d_workers : int;
  block_lo : int array;  (* worker w owns shards [lo, hi) — contiguous *)
  block_hi : int array;
  wmin : float array;  (* per-worker window minimum (engines + own sends) *)
  wsent : int array;  (* per-worker cross-shard sends this window *)
  wdelivered : int array;  (* per-worker mailbox messages delivered, phase total *)
  bar : Par.Barrier.t;
  abort : bool Atomic.t;  (* a worker raised: end the phase, re-raise after *)
  mutable bound : float;  (* current window's drain bound *)
  mutable until_bound : float;  (* Float.succ horizon, or infinity *)
  mutable next_global : float;  (* next in-horizon global's time, or infinity *)
  mutable fuse : bool;
  mutable continue_ : bool;  (* decision: open another window in place *)
  mutable cur_min : float;  (* decision: global minimum incl. parked mail *)
}

type t = {
  shards : Engine.t array;
  lookahead : float;
  mail : mailbox array;  (* (parity * n + src) * n + dst *)
  sent_min : float array;  (* per src shard: min undelivered send time *)
  sent_cnt : int array;  (* per src shard: undelivered sends *)
  mutable parity : int;  (* buffer index current-window sends append to *)
  mutable epoch : int;
  mutable phases : int;  (* pool dispatches; epochs/phases = fusion factor *)
  mutable cross_sends : int;  (* delivered mailbox messages *)
  mutable desc : descriptor option;  (* reused while the worker count holds *)
}

let create ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Sharded_engine.create: shards";
  if not (lookahead > 0.0) then invalid_arg "Sharded_engine.create: lookahead";
  {
    shards = Array.init shards (fun _ -> Engine.create ());
    lookahead;
    mail = Array.init (2 * shards * shards) (fun _ -> mb_make ());
    sent_min = Array.make shards Float.infinity;
    sent_cnt = Array.make shards 0;
    parity = 0;
    epoch = 0;
    phases = 0;
    cross_sends = 0;
    desc = None;
  }

let shard_count t = Array.length t.shards
let engine t i = t.shards.(i)
let lookahead t = t.lookahead
let now t ~shard = Engine.now t.shards.(shard)
let epoch t = t.epoch
let phases t = t.phases
let cross_sends t = t.cross_sends

let events_executed t =
  Array.fold_left (fun acc e -> acc + Engine.events_executed e) 0 t.shards

let pending t =
  let queued = Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.shards
  and mailed = Array.fold_left (fun acc mb -> acc + mb.len) 0 t.mail in
  queued + mailed

let send t ~src ~dst ~delay ~h ~a ~b ~x =
  if src = dst then Engine.post t.shards.(src) ~delay ~h ~a ~b ~x
  else begin
    if delay < t.lookahead then
      invalid_arg "Sharded_engine.send: cross-shard delay below lookahead";
    let n = Array.length t.shards in
    let time = Engine.now t.shards.(src) +. delay in
    mb_push t.mail.((((t.parity * n) + src) * n) + dst) ~time ~h ~a ~b ~x;
    if time < t.sent_min.(src) then t.sent_min.(src) <- time;
    t.sent_cnt.(src) <- t.sent_cnt.(src) + 1
  end

(* Hand every parked message of parity [parity] addressed to [dst] to
   its engine — source shard order, then FIFO, so the destination's
   monotone seq counter assigns the same tie-breaking seqs regardless of
   how many domains executed the epoch. One [post_batch] per nonempty
   mailbox. Returns the number delivered. *)
let deliver_dst t ~parity ~dst =
  let n = Array.length t.shards in
  let e = t.shards.(dst) in
  let delivered = ref 0 in
  for src = 0 to n - 1 do
    let mb = t.mail.((((parity * n) + src) * n) + dst) in
    let len = mb.len in
    if len > 0 then begin
      Engine.post_batch e ~len ~time:mb.t ~h:mb.h ~a:mb.a ~b:mb.b ~x:mb.x;
      delivered := !delivered + len;
      mb.len <- 0
    end
  done;
  !delivered

(* Coordinator-only full flush (run start, after a global action): both
   parity buffers, destination-major — at most one buffer holds mail at
   any barrier, so the order across parities is immaterial. *)
let flush_mail t =
  let n = Array.length t.shards in
  for dst = 0 to n - 1 do
    t.cross_sends <- t.cross_sends + deliver_dst t ~parity:0 ~dst;
    t.cross_sends <- t.cross_sends + deliver_dst t ~parity:1 ~dst
  done;
  Array.fill t.sent_min 0 n Float.infinity;
  Array.fill t.sent_cnt 0 n 0

(* Sentinel scan — no [float option] boxing. Only meaningful when the
   mailboxes are empty (coordinator, after a flush). *)
let min_next t =
  let mn = ref Float.infinity in
  Array.iter
    (fun e ->
      let ti = Engine.next_time_inf e in
      if ti < !mn then mn := ti)
    t.shards;
  !mn

let advance_all t ~time =
  Array.iter (fun e -> Engine.advance_to e ~time) t.shards

(* Fold the per-worker results and either open the next window in place
   (epoch fusion: quiet window, nothing due before it) or end the phase.
   Runs on the barrier's last arriver; its writes are released to every
   worker and, through the pool join, to the coordinator. *)
let decide t d =
  let mn = ref Float.infinity and sent = ref 0 in
  for w = 0 to d.d_workers - 1 do
    if d.wmin.(w) < !mn then mn := d.wmin.(w);
    sent := !sent + d.wsent.(w)
  done;
  d.cur_min <- !mn;
  if
    d.fuse
    && (not (Atomic.get d.abort))
    && !sent = 0
    && !mn < d.next_global
    && !mn < d.until_bound
  then begin
    d.bound <- Float.min (!mn +. t.lookahead) (Float.min d.until_bound d.next_global);
    t.epoch <- t.epoch + 1;
    d.continue_ <- true
  end
  else d.continue_ <- false

(* One worker's phase: windows until the decision ends the phase. A
   handler exception must not strand the other parties at the barrier,
   so it is trapped, flagged, and re-raised only after the release. *)
let phase_worker t d w =
  let lo = d.block_lo.(w) and hi = d.block_hi.(w) in
  let continue = ref true in
  while !continue do
    let ex = ref None in
    (try
       (* Previous window's mail for our destinations. Fused windows are
          quiet by construction, so this scan finds nothing after the
          first window of the phase. *)
       let old_parity = 1 - t.parity in
       let delivered = ref 0 in
       for dst = lo to hi - 1 do
         delivered := !delivered + deliver_dst t ~parity:old_parity ~dst
       done;
       d.wdelivered.(w) <- d.wdelivered.(w) + !delivered;
       for s = lo to hi - 1 do
         t.sent_min.(s) <- Float.infinity;
         t.sent_cnt.(s) <- 0
       done;
       let bound = d.bound in
       for s = lo to hi - 1 do
         Engine.drain_below t.shards.(s) ~bound
       done;
       let mn = ref Float.infinity and sent = ref 0 in
       for s = lo to hi - 1 do
         let ti = Engine.next_time_inf t.shards.(s) in
         if ti < !mn then mn := ti;
         if t.sent_min.(s) < !mn then mn := t.sent_min.(s);
         sent := !sent + t.sent_cnt.(s)
       done;
       d.wmin.(w) <- !mn;
       d.wsent.(w) <- !sent
     with e ->
       ex := Some (e, Printexc.get_raw_backtrace ());
       Atomic.set d.abort true;
       d.wmin.(w) <- Float.infinity;
       d.wsent.(w) <- 0);
    Par.Barrier.arrive d.bar ~last:(fun () -> decide t d);
    (match !ex with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    continue := d.continue_
  done

let descriptor_for t ~workers =
  match t.desc with
  | Some d when d.d_workers = workers -> d
  | _ ->
      let n = Array.length t.shards in
      let d =
        {
          d_workers = workers;
          block_lo = Array.init workers (fun w -> w * n / workers);
          block_hi = Array.init workers (fun w -> (w + 1) * n / workers);
          wmin = Array.make workers Float.infinity;
          wsent = Array.make workers 0;
          wdelivered = Array.make workers 0;
          bar = Par.Barrier.create ~parties:workers ();
          abort = Atomic.make false;
          bound = 0.0;
          until_bound = Float.infinity;
          next_global = Float.infinity;
          fuse = true;
          continue_ = false;
          cur_min = Float.infinity;
        }
      in
      t.desc <- Some d;
      d

let run ?until ?(globals = []) ?(domains = 1) ?(fuse = true) t =
  if domains < 1 then invalid_arg "Sharded_engine.run: domains";
  let n = Array.length t.shards in
  let workers = max 1 (min domains n) in
  let pool = if workers = 1 then None else Some (Par.ensure_pool workers) in
  let horizon = match until with None -> Float.infinity | Some u -> u in
  (* [Float.succ] turns the strict drain bound inclusive: events at
     exactly [until] still run. *)
  let until_bound =
    match until with None -> Float.infinity | Some u -> Float.succ u
  in
  let d = descriptor_for t ~workers in
  d.until_bound <- until_bound;
  d.fuse <- fuse;
  flush_mail t;
  let globals = ref globals in
  let cur_min = ref (min_next t) in
  let continue = ref true in
  while !continue do
    let next_global =
      match !globals with
      | (g_at, _) :: _ when g_at <= horizon -> g_at
      | _ -> Float.infinity
    in
    if next_global < Float.infinity && next_global <= !cur_min then begin
      (* Global action due at or before the event frontier: sequential,
         full access to all shards, then a flush so anything it posted
         is queued before the next window is chosen. *)
      match !globals with
      | [] -> assert false
      | (g_at, fire) :: rest ->
          globals := rest;
          advance_all t ~time:g_at;
          fire ();
          flush_mail t;
          cur_min := min_next t
    end
    else if !cur_min >= until_bound then begin
      (* Done: no pending event inside the horizon. Sends parked past
         the horizon stay in their mailboxes; a later [run] flushes
         them first. *)
      (match until with Some u -> advance_all t ~time:u | None -> ());
      continue := false
    end
    else begin
      t.epoch <- t.epoch + 1;
      t.phases <- t.phases + 1;
      d.bound <-
        Float.min (!cur_min +. t.lookahead) (Float.min until_bound next_global);
      d.next_global <- next_global;
      Atomic.set d.abort false;
      Array.fill d.wdelivered 0 workers 0;
      (* Flip the mailbox parity: this phase's sends buffer separately
         from the previous window's mail being delivered. *)
      t.parity <- 1 - t.parity;
      (match pool with
      | None -> phase_worker t d 0
      | Some pool ->
          (* The shared pool only grows, so it may be wider than
             [workers]; extra workers are not barrier parties and must
             not touch any shard. *)
          Par.Pool.run pool (fun w -> if w < workers then phase_worker t d w));
      for w = 0 to workers - 1 do
        t.cross_sends <- t.cross_sends + d.wdelivered.(w)
      done;
      cur_min := d.cur_min
    end
  done
