lib/topology/subtrees.ml: Lesslog_bits Lesslog_id Lesslog_membership Lesslog_ptree Lesslog_vtree List Params Pid Vid
