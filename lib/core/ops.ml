open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Topology = Lesslog_topology.Topology
module Subtrees = Lesslog_topology.Subtrees
module File_store = Lesslog_storage.File_store
module Rng = Lesslog_prng.Rng
module Obs = Lesslog_obs.Obs

type get_result = {
  server : Pid.t option;
  hops : int;
  path : Pid.t list;
  subtree_migrations : int;
}

type update_result = { version : int; updated : int; messages : int }

let fault_tolerant cluster = Params.b (Cluster.params cluster) > 0

let insert ?(now = 0.0) cluster ~key =
  Cluster.register_key cluster key;
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let targets =
    if fault_tolerant cluster then Subtrees.insertion_targets tree status
    else
      match Topology.insertion_target tree status with
      | None -> []
      | Some p -> [ p ]
  in
  List.iter
    (fun p ->
      File_store.add (Cluster.store cluster p) ~key ~origin:File_store.Inserted
        ~version:0 ~now)
    targets;
  Log.debug (fun f ->
      f "insert %S -> [%s]" key
        (String.concat ";"
           (List.map (fun p -> string_of_int (Pid.to_int p)) targets)));
  targets

(* Serve a request along a forwarding path: the first node holding a copy
   answers. Returns the (possibly truncated) visited path. *)
let serve_along cluster ~now ~key path =
  let rec find visited hops = function
    | [] -> None
    | p :: rest ->
        if Cluster.holds cluster p ~key then begin
          File_store.record_access (Cluster.store cluster p) ~key ~now;
          Some (p, hops, List.rev (p :: visited))
        end
        else find (p :: visited) (hops + 1) rest
  in
  find [] 0 path

(* --- Erasure-coded cold tier ---

   A Cold-classified key trades its full copies for the k + r fragments
   of a systematic Reed-Solomon (k, r) code ({!Lesslog_erasure.Erasure}).
   The simulator's stores are metadata-only, so what moves here are
   fragment *entries* (key, index, version); the byte-level transform
   itself is the codec's, and the placement/repair logic below preserves
   exactly its precondition — any k surviving fragments rebuild the
   payload, fewer lose it. *)

module Erasure = Lesslog_erasure.Erasure

let frag_key key index = Printf.sprintf "%s#frag%d" key index

(* Fragment indices that still have at least one live holder. *)
let live_fragments cluster ~key ~k ~r =
  let acc = ref [] in
  for i = k + r - 1 downto 0 do
    if Cluster.holders cluster ~key:(frag_key key i) <> [] then acc := i :: !acc
  done;
  !acc

let live_fragment_count cluster ~key =
  match Cluster.coded_params cluster ~key with
  | None -> 0
  | Some (k, r) -> List.length (live_fragments cluster ~key ~k ~r)

let coded_servable cluster ~key =
  match Cluster.coded_params cluster ~key with
  | None -> false
  | Some (k, r) -> List.length (live_fragments cluster ~key ~k ~r) >= k

let holds_fragment cluster p ~key =
  match Cluster.coded_params cluster ~key with
  | None -> false
  | Some (k, r) ->
      let rec scan i =
        i < k + r
        && (Cluster.holds cluster p ~key:(frag_key key i) || scan (i + 1))
      in
      scan 0

let coded_can_serve cluster ~key ~at =
  holds_fragment cluster at ~key && coded_servable cluster ~key

let get_single_tree cluster ~now ~origin ~key =
  (* Walk hop by hop instead of materializing the full route first: the
     common request is answered within a hop or two, so computing the
     rest of the route (and its list) would be wasted work. *)
  let held = Cluster.holder_bitset cluster ~key in
  let router = Cluster.router_of_key cluster key in
  let rec walk visited hops p =
    if Lesslog_bits.Packed_bits.get held (Pid.to_int p) then begin
      File_store.record_access (Cluster.store cluster p) ~key ~now;
      {
        server = Some p;
        hops;
        path = List.rev (p :: visited);
        subtree_migrations = 0;
      }
    end
    else
      match Topology.next_hop_int router (Pid.to_int p) with
      | -1 ->
          {
            server = None;
            hops;
            path = List.rev (p :: visited);
            subtree_migrations = 0;
          }
      | q -> walk (p :: visited) (hops + 1) (Pid.unsafe_of_int q)
  in
  walk [] 0 origin

let get_fault_tolerant cluster ~now ~origin ~key =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let params = Cluster.params cluster in
  let nsub = Params.subtree_count params in
  let sid0 = Subtrees.subtree_id_of_pid tree origin in
  let rec attempt k acc_path acc_hops migrations =
    if k >= nsub then
      { server = None; hops = acc_hops; path = List.rev acc_path;
        subtree_migrations = migrations }
    else begin
      let sid = (sid0 + k) mod nsub in
      let start =
        if k = 0 then Some origin
        else begin
          (* Migrate the request: rewrite the subtree identifier, keeping
             the subtree VID; fall back to where the file is stored when
             the corresponding node is dead. *)
          let v = Ptree.vid_of_pid tree origin in
          let mirrored =
            Ptree.pid_of_vid tree (Subtrees.migrate_vid params v ~to_subtree:sid)
          in
          if Status_word.is_live status mirrored then Some mirrored
          else Subtrees.insertion_target_in_subtree tree status ~subtree_id:sid
        end
      in
      match start with
      | None -> attempt (k + 1) acc_path acc_hops migrations
      | Some start -> begin
          let migrations = if k = 0 then migrations else migrations + 1 in
          let acc_hops = if List.is_empty acc_path then acc_hops else acc_hops + 1 in
          let path = Subtrees.route_path_in_subtree tree status ~origin:start in
          match serve_along cluster ~now ~key path with
          | Some (p, hops, visited) ->
              { server = Some p; hops = acc_hops + hops;
                path = List.rev_append acc_path visited;
                subtree_migrations = migrations }
          | None ->
              attempt (k + 1)
                (List.rev_append path acc_path)
                (acc_hops + List.length path - 1)
                migrations
        end
    end
  in
  attempt 0 [] 0 0

(* Attribution of a finished lookup. The handles are re-fetched per call
   (a hashtable hit each): [get] with a registry is the inspection path,
   the hot simulators resolve their handles once at start-up instead. *)
let record_get registry (r : get_result) =
  Obs.Registry.incr (Obs.Registry.counter registry "core/get");
  if r.server = None then
    Obs.Registry.incr (Obs.Registry.counter registry "core/get_fault");
  Obs.Registry.observe_int (Obs.Registry.timer registry "core/get_hops") r.hops;
  if r.subtree_migrations > 0 then
    Obs.Registry.add
      (Obs.Registry.counter registry "core/get_migrations")
      r.subtree_migrations

(* When the walk found no full copy but passed through a holder of a
   coded fragment, and at least k fragments are live somewhere, that
   node can gather k fragments and decode — the request is served. The
   fan-in traffic is cost accounting (Des_sim), not extra hops. *)
let coded_fallback cluster ~now ~key (r : get_result) =
  match r.server with
  | Some _ -> r
  | None -> (
      if not (coded_servable cluster ~key) then r
      else
        match
          List.find_opt (fun p -> holds_fragment cluster p ~key) r.path
        with
        | None -> r
        | Some p ->
            File_store.record_access (Cluster.store cluster p) ~key ~now;
            { r with server = Some p })

let get ?(now = 0.0) ?registry cluster ~origin ~key =
  if Status_word.is_dead (Cluster.status cluster) origin then
    invalid_arg "Ops.get: dead origin";
  let r =
    if fault_tolerant cluster then get_fault_tolerant cluster ~now ~origin ~key
    else get_single_tree cluster ~now ~origin ~key
  in
  let r = coded_fallback cluster ~now ~key r in
  Option.iter (fun reg -> record_get reg r) registry;
  r

let non_holders cluster ~key pids =
  List.filter (fun p -> not (Cluster.holds cluster p ~key)) pids

let replication_candidates cluster ~overloaded ~key =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let own, root_list =
    if fault_tolerant cluster then begin
      let sid = Subtrees.subtree_id_of_pid tree overloaded in
      let sroot = Subtrees.subtree_root tree ~subtree_id:sid in
      let cl p = Subtrees.children_list_in_subtree tree status p in
      if Pid.equal overloaded sroot then (cl sroot, [])
      else if Subtrees.has_live_with_greater_svid tree status overloaded then
        (cl overloaded, [])
      else (cl overloaded, cl sroot)
    end
    else begin
      let r = Ptree.root tree in
      let cl p = Topology.children_list tree status p in
      if Pid.equal overloaded r then (cl r, [])
      else if Topology.has_live_with_greater_vid tree status overloaded then
        (cl overloaded, [])
      else (cl overloaded, cl r)
    end
  in
  (non_holders cluster ~key own, non_holders cluster ~key root_list)

let current_version cluster ~key ~overloaded =
  match File_store.version (Cluster.store cluster overloaded) ~key with
  | Some v -> v
  | None -> (
      match Cluster.holders cluster ~key with
      | [] -> 0
      | p :: _ -> (
          match File_store.version (Cluster.store cluster p) ~key with
          | Some v -> v
          | None -> 0))

let choose_replica_target ~rng cluster ~overloaded ~key =
  let own, root_list = replication_candidates cluster ~overloaded ~key in
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  match (own, root_list) with
    | [], [] -> None
    | c :: _, [] | [], c :: _ -> Some c
    | own_first :: _, root_first :: _ ->
        (* Proportional choice (Section 3): attribute the overload to the
           overloaded node's offspring vs. the rest of the system in
           proportion to their populations. *)
        let offspring =
          if fault_tolerant cluster then
            Subtrees.live_offspring_count_in_subtree tree status overloaded
          else Topology.live_offspring_count tree status overloaded
        in
        let population =
          if fault_tolerant cluster then
            let sid = Subtrees.subtree_id_of_pid tree overloaded in
            List.length
              (List.filter
                 (Status_word.is_live status)
                 (Subtrees.members tree ~subtree_id:sid))
          else Status_word.live_count status
        in
        let rest = max 0 (population - 1 - offspring) in
        let total = offspring + rest in
        let p =
          if total = 0 then 0.0 else float_of_int offspring /. float_of_int total
        in
        if Rng.bernoulli rng ~p then Some own_first else Some root_first

let replicate ?(now = 0.0) ?registry ~rng cluster ~overloaded ~key =
  (match registry with
  | None -> ()
  | Some reg ->
      Obs.Registry.incr (Obs.Registry.counter reg "core/replicate"));
  match choose_replica_target ~rng cluster ~overloaded ~key with
  | None ->
      Log.debug (fun f ->
          f "replicate %S: P(%d) has no candidate left" key
            (Pid.to_int overloaded));
      None
  | Some dest ->
      (match registry with
      | None -> ()
      | Some reg ->
          Obs.Registry.incr (Obs.Registry.counter reg "core/replicate_placed"));
      let version = current_version cluster ~key ~overloaded in
      File_store.add (Cluster.store cluster dest) ~key
        ~origin:File_store.Replicated ~version ~now;
      Log.debug (fun f ->
          f "replicate %S: P(%d) -> P(%d) (v%d)" key (Pid.to_int overloaded)
            (Pid.to_int dest) version);
      Some dest

let max_holder_version cluster ~key =
  List.fold_left
    (fun acc p ->
      match File_store.version (Cluster.store cluster p) ~key with
      | Some v -> max acc v
      | None -> acc)
    0
    (Cluster.holders cluster ~key)

(* Top-down broadcast from a set of entry nodes: a live holder applies the
   action and forwards to its children list; a non-holder discards. *)
let broadcast cluster ~key ~on_holder ~children_list_of entries =
  let messages = ref 0 and updated = ref 0 in
  let rec visit p =
    if Cluster.holds cluster p ~key then begin
      on_holder p;
      incr updated;
      let children = children_list_of p in
      List.iter
        (fun c ->
          incr messages;
          visit c)
        children
    end
  in
  List.iter
    (fun p ->
      incr messages;
      visit p)
    entries;
  (!updated, !messages)

(* Run the top-down broadcast from the proper entry points: the target
   root (or its children list when it is dead), per subtree when the
   fault-tolerant model is on. *)
let broadcast_all cluster ~tree ~status ~key ~on_holder =
  if fault_tolerant cluster then begin
    let params = Cluster.params cluster in
    let totals = ref (0, 0) in
    for sid = 0 to Params.subtree_count params - 1 do
      let sroot = Subtrees.subtree_root tree ~subtree_id:sid in
      let entries =
        if Status_word.is_live status sroot then [ sroot ]
        else Subtrees.children_list_in_subtree tree status sroot
      in
      let u, m =
        broadcast cluster ~key ~on_holder
          ~children_list_of:(Subtrees.children_list_in_subtree tree status)
          entries
      in
      let tu, tm = !totals in
      totals := (tu + u, tm + m)
    done;
    !totals
  end
  else begin
    let r = Ptree.root tree in
    let entries =
      if Status_word.is_live status r then [ r ]
      else Topology.children_list tree status r
    in
    broadcast cluster ~key ~on_holder
      ~children_list_of:(Topology.children_list tree status)
      entries
  end

let update ?now cluster ~key =
  ignore now;
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let version = max_holder_version cluster ~key + 1 in
  let updated, messages =
    broadcast_all cluster ~tree ~status ~key
      ~on_holder:(fun p ->
        File_store.set_version (Cluster.store cluster p) ~key ~version)
  in
  Log.debug (fun f ->
      f "update %S: v%d to %d copies in %d messages" key version updated
        messages);
  { version; updated; messages }

let delete ?now cluster ~key =
  ignore now;
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let updated, messages =
    broadcast_all cluster ~tree ~status ~key
      ~on_holder:(fun p -> File_store.remove (Cluster.store cluster p) ~key)
  in
  Cluster.unregister_key cluster key;
  { version = 0; updated; messages }

(* --- Substrate-parameterized operations (ARCHITECTURE.md, Substrate
   contract): the same protocol steps as above, but every routing and
   placement decision is delegated to a Substrate.t value, so the identical
   code runs over the native trees, Chord, Pastry or CAN. *)

module Substrate = Lesslog_substrate.Substrate

let insert_via ?(now = 0.0) sub cluster ~key =
  Cluster.register_key cluster key;
  match sub.Substrate.owner ~key with
  | None -> []
  | Some p ->
      File_store.add (Cluster.store cluster p) ~key ~origin:File_store.Inserted
        ~version:0 ~now;
      Log.debug (fun f ->
          f "insert[%s] %S -> P(%d)" sub.Substrate.name key (Pid.to_int p));
      [ p ]

let get_via ?(now = 0.0) ?registry sub cluster ~origin ~key =
  if Status_word.is_dead (Cluster.status cluster) origin then
    invalid_arg "Ops.get_via: dead origin";
  let held = Cluster.holder_bitset cluster ~key in
  (* A conforming substrate terminates long before visiting every slot;
     the cap only turns a non-conforming route into a fault instead of a
     hang. *)
  let cap = Params.space (Cluster.params cluster) in
  let rec walk visited hops p =
    if Lesslog_bits.Packed_bits.get held (Pid.to_int p) then begin
      File_store.record_access (Cluster.store cluster p) ~key ~now;
      {
        server = Some p;
        hops;
        path = List.rev (p :: visited);
        subtree_migrations = 0;
      }
    end
    else if hops >= cap then
      { server = None; hops; path = List.rev (p :: visited);
        subtree_migrations = 0 }
    else
      match sub.Substrate.next_hop ~key p with
      | None ->
          { server = None; hops; path = List.rev (p :: visited);
            subtree_migrations = 0 }
      | Some q -> walk (p :: visited) (hops + 1) q
  in
  let r = coded_fallback cluster ~now ~key (walk [] 0 origin) in
  Option.iter (fun reg -> record_get reg r) registry;
  r

let choose_replica_target_via ~rng sub cluster ~overloaded ~key =
  sub.Substrate.replica_target ~rng
    ~holds:(fun p -> Cluster.holds cluster p ~key)
    ~overloaded ~key

(* Placement of fragment [index], mirroring ADVANCEDINSERTFILE's
   one-copy-per-subtree spread: fragment i goes to subtree (i mod 2^b),
   preferably at that subtree's insertion target (the node every request
   walk in the subtree dead-ends at, so coded GETs terminate on a
   fragment holder), then at further live members of the subtree in
   climb-path order. [taken] holds the slots already carrying a fragment
   of this key — the code's whole point is distinct holders. *)
let fragment_candidates cluster ~key ~index =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let params = Cluster.params cluster in
  let scoped =
    if fault_tolerant cluster then begin
      let nsub = Params.subtree_count params in
      let sid = index mod nsub in
      let target =
        Subtrees.insertion_target_in_subtree tree status ~subtree_id:sid
      in
      let rest =
        List.filter (Status_word.is_live status)
          (Subtrees.members tree ~subtree_id:sid)
      in
      (match target with Some p -> p :: rest | None -> rest)
    end
    else
      match Topology.insertion_target tree status with
      | Some p -> [ p ]
      | None -> []
  in
  (* Global fallback: every live slot, ascending PID. *)
  let global =
    Lesslog_bits.Packed_bits.fold_set (Status_word.live_bits status) ~init:[]
      ~f:(fun acc i -> Pid.unsafe_of_int i :: acc)
    |> List.rev
  in
  scoped @ global

let pick_target ?substrate cluster ~key ~index ~taken =
  let rec first = function
    | [] -> None
    | p :: rest ->
        if
          Hashtbl.mem taken (Pid.to_int p)
          || Status_word.is_dead (Cluster.status cluster) p
        then first rest
        else begin
          Hashtbl.replace taken (Pid.to_int p) ();
          Some p
        end
  in
  (* Substrate placement first: the owner of the fragment key — distinct
     keys hash apart, spreading fragments — then its neighbors; the
     native scoped/global scan is the collision fallback either way. *)
  let sub_candidates =
    match substrate with
    | None -> []
    | Some sub -> (
        let fkey = frag_key key index in
        match sub.Substrate.owner ~key:fkey with
        | Some o -> o :: sub.Substrate.neighbors ~key:fkey o
        | None -> [])
  in
  first (sub_candidates @ fragment_candidates cluster ~key ~index)

(* Remove a key from every store whose slot bit is set in the holder
   index, live or dead — a stale full copy on a dead node would come
   back as authoritative data when the node rejoins. The set bits are
   collected first: removing mutates the very bitset being walked. *)
let remove_everywhere cluster ~key =
  let bits = Cluster.holder_bitset cluster ~key in
  let slots =
    Lesslog_bits.Packed_bits.fold_set bits ~init:[] ~f:(fun acc i -> i :: acc)
  in
  List.iter
    (fun i ->
      File_store.remove (Cluster.store cluster (Pid.unsafe_of_int i)) ~key)
    slots;
  List.length slots

let max_fragment_version cluster ~key ~k ~r =
  let v = ref 0 in
  for i = 0 to k + r - 1 do
    List.iter
      (fun p ->
        match File_store.version (Cluster.store cluster p) ~key:(frag_key key i)
        with
        | Some x -> v := max !v x
        | None -> ())
      (Cluster.holders cluster ~key:(frag_key key i))
  done;
  !v

let demote_to_coded ?(now = 0.0) ?substrate cluster ~key ~k ~r =
  if Cluster.coded_params cluster ~key <> None then None
  else begin
    (* Validates k >= 1, r >= 0, k + r <= 256. *)
    let (_ : Erasure.t) = Erasure.create ~k ~r in
    let n = k + r in
    let version = max_holder_version cluster ~key in
    let taken = Hashtbl.create n in
    let targets =
      List.init n (fun i ->
          Option.map
            (fun p -> (i, p))
            (pick_target ?substrate cluster ~key ~index:i ~taken))
      |> List.filter_map Fun.id
    in
    if List.length targets < n then None
    else begin
      List.iter
        (fun (i, p) ->
          File_store.add
            ~tier:(File_store.Coded { index = i; k; r })
            (Cluster.store cluster p) ~key:(frag_key key i)
            ~origin:File_store.Inserted ~version ~now)
        targets;
      let (_ : int) = remove_everywhere cluster ~key in
      Cluster.register_coded cluster key ~k ~r;
      Log.debug (fun f ->
          f "demote %S -> (%d,%d) fragments at [%s]" key k r
            (String.concat ";"
               (List.map (fun (_, p) -> string_of_int (Pid.to_int p)) targets)));
      Some (List.map snd targets)
    end
  end

let promote_from_coded ?(now = 0.0) ?substrate cluster ~key ~copies =
  match Cluster.coded_params cluster ~key with
  | None -> None
  | Some (k, r) ->
      if List.length (live_fragments cluster ~key ~k ~r) < k then None
      else begin
        let version = max_fragment_version cluster ~key ~k ~r in
        (* Authoritative copies go back to the insertion targets; extras
           up to [copies] fill ascending live PIDs, as plain replicas. *)
        let tree = Cluster.tree_of_key cluster key in
        let status = Cluster.status cluster in
        let targets =
          match substrate with
          | Some sub -> (
              match sub.Substrate.owner ~key with Some p -> [ p ] | None -> [])
          | None ->
              if fault_tolerant cluster then
                Subtrees.insertion_targets tree status
              else (
                match Topology.insertion_target tree status with
                | Some p -> [ p ]
                | None -> [])
        in
        if targets = [] then None
        else begin
          (* Drop every fragment entry first (any slot, live or dead). *)
          for i = 0 to k + r - 1 do
            let (_ : int) = remove_everywhere cluster ~key:(frag_key key i) in
            ()
          done;
          Cluster.unregister_coded cluster key;
          List.iter
            (fun p ->
              File_store.add (Cluster.store cluster p) ~key
                ~origin:File_store.Inserted ~version ~now)
            targets;
          let taken = Hashtbl.create copies in
          List.iter
            (fun p -> Hashtbl.replace taken (Pid.to_int p) ())
            targets;
          let placed = ref (List.rev targets) in
          let live = Status_word.live_bits status in
          (try
             Lesslog_bits.Packed_bits.iter_set live (fun i ->
                 if List.length !placed >= copies then raise Exit;
                 if not (Hashtbl.mem taken i) then begin
                   Hashtbl.replace taken i ();
                   let p = Pid.unsafe_of_int i in
                   File_store.add (Cluster.store cluster p) ~key
                     ~origin:File_store.Replicated ~version ~now;
                   placed := p :: !placed
                 end)
           with Exit -> ());
          Log.debug (fun f ->
              f "promote %S: (%d,%d) -> %d full copies" key k r
                (List.length !placed));
          Some (List.rev !placed)
        end
      end

let repair_coded ?(now = 0.0) ?substrate cluster ~key =
  match Cluster.coded_params cluster ~key with
  | None -> `Intact
  | Some (k, r) ->
      let live = live_fragments cluster ~key ~k ~r in
      let missing =
        List.filter
          (fun i -> not (List.mem i live))
          (List.init (k + r) Fun.id)
      in
      if missing = [] then `Intact
      else if List.length live < k then `Lost
      else begin
        let version = max_fragment_version cluster ~key ~k ~r in
        (* Never co-locate the rebuilt fragment with a surviving one. *)
        let taken = Hashtbl.create (k + r) in
        List.iter
          (fun i ->
            List.iter
              (fun p -> Hashtbl.replace taken (Pid.to_int p) ())
              (Cluster.holders cluster ~key:(frag_key key i)))
          live;
        let rebuilt =
          List.filter
            (fun i ->
              match pick_target ?substrate cluster ~key ~index:i ~taken with
              | None -> false
              | Some p ->
                  File_store.add
                    ~tier:(File_store.Coded { index = i; k; r })
                    (Cluster.store cluster p) ~key:(frag_key key i)
                    ~origin:File_store.Inserted ~version ~now;
                  true)
            missing
        in
        Log.debug (fun f ->
            f "repair %S: rebuilt %d of %d missing fragment(s)" key
              (List.length rebuilt) (List.length missing));
        `Repaired (List.length rebuilt)
      end

let on_membership_via ?(now = 0.0) ?on_coded_repair sub cluster ~event =
  let status = Cluster.status cluster in
  let relocated = ref 0 in
  (* Re-home a key whose current owner lacks a copy; versions survive
     through any live holder, and a fully lost key is re-created at
     version 0 from the registry (the same integrity registry that drives
     the native Self_org recovery). Keys demoted to the coded tier have
     no full copies by design — their repair is [repair_coded] below. *)
  let repair_key key =
    if Cluster.coded_params cluster ~key <> None then ()
    else
      match sub.Substrate.owner ~key with
      | None -> ()
      | Some o ->
          if not (Cluster.holds cluster o ~key) then begin
            let version = max_holder_version cluster ~key in
            File_store.add (Cluster.store cluster o) ~key
              ~origin:File_store.Inserted ~version ~now;
            incr relocated
          end
  in
  (match event with
  | `Join p ->
      if Status_word.is_live status p then
        invalid_arg "Ops.on_membership_via: join of a live node";
      Status_word.set_live status p;
      sub.Substrate.notify ()
  | `Leave p ->
      if Status_word.is_dead status p then
        invalid_arg "Ops.on_membership_via: leave of a dead node";
      (* Graceful departure: hand each held copy off before dropping the
         store, so a sole copy keeps its version. *)
      let store = Cluster.store cluster p in
      (* Coded fragments are not handed off under their fragment key —
         they are dropped and rebuilt by [repair_coded] below. *)
      let saved =
        List.filter_map
          (fun key ->
            match File_store.tier store ~key with
            | Some (File_store.Coded _) -> None
            | _ ->
                Some
                  (key, Option.value ~default:0 (File_store.version store ~key)))
          (File_store.keys store)
      in
      Status_word.set_dead status p;
      sub.Substrate.notify ();
      List.iter
        (fun key -> File_store.remove store ~key)
        (File_store.keys store);
      List.iter
        (fun (key, version) ->
          if Cluster.holders cluster ~key = [] then
            match sub.Substrate.owner ~key with
            | None -> ()
            | Some o ->
                File_store.add (Cluster.store cluster o) ~key
                  ~origin:File_store.Inserted ~version ~now;
                incr relocated)
        saved
  | `Fail p ->
      if Status_word.is_dead status p then
        invalid_arg "Ops.on_membership_via: fail of a dead node";
      (* Crash: the store is lost before anything can be handed off. *)
      Status_word.set_dead status p;
      sub.Substrate.notify ();
      let store = Cluster.store cluster p in
      List.iter
        (fun key -> File_store.remove store ~key)
        (File_store.keys store));
  List.iter repair_key (Cluster.registered_keys cluster);
  (* Coded-tier repair: rebuild any fragment the event left without a
     live holder, from the >= k survivors. *)
  List.iter
    (fun key ->
      match repair_coded ~now ~substrate:sub cluster ~key with
      | `Intact -> ()
      | `Lost -> (
          match on_coded_repair with
          | Some f -> f ~key ~rebuilt:0 ~lost:true
          | None -> ())
      | `Repaired n -> (
          match on_coded_repair with
          | Some f -> f ~key ~rebuilt:n ~lost:false
          | None -> ()))
    (Cluster.coded_keys cluster);
  !relocated

let stale_copies cluster ~key =
  let top = max_holder_version cluster ~key in
  List.filter
    (fun p ->
      match File_store.version (Cluster.store cluster p) ~key with
      | Some v -> v < top
      | None -> false)
    (Cluster.holders cluster ~key)
