type t = int

let of_int params p =
  if p < 0 || p > Params.mask params then invalid_arg "Pid.of_int";
  p

let unsafe_of_int p = p
let to_int p = p
let equal = Int.equal
let compare = Int.compare
let hash p = p
let pp = Format.pp_print_int

let all params = List.init (Params.space params) (fun i -> i)
