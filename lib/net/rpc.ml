module Engine = Lesslog_sim.Engine
module Rng = Lesslog_prng.Rng
module Obs = Lesslog_obs.Obs

type config = { timeout : float; policy : Retry.policy }

let default_config = { timeout = 1.0; policy = Retry.default }

(* Registry handles resolved once at [create]; per-event updates are a
   field write each. *)
type metrics = {
  m_issued : Obs.Registry.counter;
  m_completed : Obs.Registry.counter;
  m_timeouts : Obs.Registry.counter;
  m_retransmissions : Obs.Registry.counter;
  m_exhausted : Obs.Registry.counter;
  m_latency : Obs.Registry.timer;
      (* issue-to-completion, including every retry *)
}

let make_metrics registry =
  {
    m_issued = Obs.Registry.counter registry "rpc/issued";
    m_completed = Obs.Registry.counter registry "rpc/completed";
    m_timeouts = Obs.Registry.counter registry "rpc/timeouts";
    m_retransmissions = Obs.Registry.counter registry "rpc/retransmissions";
    m_exhausted = Obs.Registry.counter registry "rpc/exhausted";
    m_latency = Obs.Registry.timer registry "rpc/request_s";
  }

type 'meta event =
  | Timeout of { id : int; attempt : int; meta : 'meta }
  | Retransmit of { id : int; attempt : int; meta : 'meta }
  | Exhausted of { id : int; attempts : int; meta : 'meta }

(* The engine has no timer cancellation: a timeout callback fires
   unconditionally and checks that the request is still pending on the
   same attempt it was armed for. Completion removes the pending entry, so
   stale timers are no-ops. *)
type 'meta request = { meta : 'meta; issued_at : float; mutable attempt : int }

type 'meta t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  transmit : id:int -> attempt:int -> 'meta -> unit;
  on_event : ('meta event -> unit) option;
  metrics : metrics option;
  live : (int, 'meta request) Hashtbl.t;
  mutable next_id : int;
  mutable issued : int;
  mutable completed : int;
  mutable exhausted : int;
  mutable retransmissions : int;
  mutable timeouts : int;
}

let create ~engine ~rng ?(config = default_config) ?on_event ?registry
    ~transmit () =
  if config.timeout <= 0.0 then invalid_arg "Rpc.create: timeout";
  {
    engine;
    rng;
    config;
    transmit;
    on_event;
    metrics = Option.map make_metrics registry;
    live = Hashtbl.create 64;
    next_id = 0;
    issued = 0;
    completed = 0;
    exhausted = 0;
    retransmissions = 0;
    timeouts = 0;
  }

let emit t e = match t.on_event with None -> () | Some f -> f e

let count t f = match t.metrics with None -> () | Some m -> Obs.Registry.incr (f m)

let rec arm t id attempt =
  Engine.schedule t.engine ~delay:t.config.timeout (fun () ->
      match Hashtbl.find_opt t.live id with
      | Some r when r.attempt = attempt ->
          t.timeouts <- t.timeouts + 1;
          count t (fun m -> m.m_timeouts);
          emit t (Timeout { id; attempt; meta = r.meta });
          if attempt + 1 >= Retry.attempts t.config.policy then begin
            Hashtbl.remove t.live id;
            t.exhausted <- t.exhausted + 1;
            count t (fun m -> m.m_exhausted);
            emit t (Exhausted { id; attempts = attempt + 1; meta = r.meta })
          end
          else
            let backoff =
              Retry.delay t.config.policy t.rng ~retry:(attempt + 1)
            in
            Engine.schedule t.engine ~delay:backoff (fun () ->
                match Hashtbl.find_opt t.live id with
                | Some r when r.attempt = attempt ->
                    r.attempt <- attempt + 1;
                    t.retransmissions <- t.retransmissions + 1;
                    count t (fun m -> m.m_retransmissions);
                    emit t (Retransmit { id; attempt = attempt + 1; meta = r.meta });
                    t.transmit ~id ~attempt:(attempt + 1) r.meta;
                    arm t id (attempt + 1)
                | _ -> ())
      | _ -> ())

let issue t meta =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.issued <- t.issued + 1;
  count t (fun m -> m.m_issued);
  Hashtbl.add t.live id { meta; issued_at = Engine.now t.engine; attempt = 0 };
  t.transmit ~id ~attempt:0 meta;
  arm t id 0;
  id

let complete t ~id =
  match Hashtbl.find_opt t.live id with
  | Some r ->
      Hashtbl.remove t.live id;
      t.completed <- t.completed + 1;
      (match t.metrics with
      | None -> ()
      | Some m ->
          Obs.Registry.incr m.m_completed;
          Obs.Registry.observe m.m_latency (Engine.now t.engine -. r.issued_at));
      Some r.meta
  | None -> None

let meta t ~id = Option.map (fun r -> r.meta) (Hashtbl.find_opt t.live id)
let pending t ~id = Hashtbl.mem t.live id
let in_flight t = Hashtbl.length t.live
let issued t = t.issued
let completed t = t.completed
let exhausted t = t.exhausted
let retransmissions t = t.retransmissions
let timeouts t = t.timeouts

module Dedup = struct
  type t = { seen : (int, unit) Hashtbl.t; mutable duplicates : int }

  let create () = { seen = Hashtbl.create 64; duplicates = 0 }

  let first t ~id =
    if Hashtbl.mem t.seen id then begin
      t.duplicates <- t.duplicates + 1;
      false
    end
    else begin
      Hashtbl.add t.seen id ();
      true
    end

  let seen t ~id = Hashtbl.mem t.seen id
  let duplicates t = t.duplicates
end
