(** Ladder (calendar) event queue with struct-of-arrays storage.

    Holds fixed-shape events — [(time, seq, h, a, b, x)] where [h] names a
    handler and [a]/[b]/[x] are its payload — ordered by [(time, seq)].
    Near-horizon events live in windowed buckets with O(1) amortized
    push/pop; far timers spill to a binary heap that is re-scattered into
    buckets when the horizon reaches them; a bucket that turns out to be
    crowded is split into a finer child rung. [seq] must be unique per
    queue (the engine's monotone counter), which makes the order total:
    for the same inputs the pop order is bit-identical to a binary heap
    keyed by [(Float.compare, Int.compare)] — [Heap] stays in-tree as the
    differential oracle for exactly that property.

    Popping uses a cursor so the hot path allocates nothing: [pop] returns
    whether an event was dequeued and the accessors read its fields. *)

type t

val create : ?buckets:int -> ?split_threshold:int -> unit -> t
(** [buckets] is the bucket count per rung (default 64, min 2);
    [split_threshold] is the bucket population above which a bucket is
    split into a child rung instead of heapified (default 64). *)

val length : t -> int
val is_empty : t -> bool

val push :
  t -> time:float -> seq:int -> h:int -> a:int -> b:int -> x:float -> unit
(** [time] must be finite and [seq] unique within the queue. Events may be
    pushed at any time value, including below already-popped times. *)

val min_time : t -> float
(** Time of the next event to pop. @raise Invalid_argument when empty. *)

val pop : t -> bool
(** Dequeue the minimum event into the cursor; [false] when empty. *)

val pop_until : t -> bound:float -> bool
(** Dequeue the minimum event into the cursor only when its time is
    strictly below [bound]; [false] when empty or the head is at or past
    the bound (the queue is untouched). Drains an epoch in the sharded
    engine: [while pop_until q ~bound do … done] executes exactly the
    events below the epoch boundary, in [(time, seq)] order. *)

(** {2 Cursor accessors} — fields of the most recently popped event. *)

val time : t -> float
val seq : t -> int
val handler : t -> int
val arg_a : t -> int
val arg_b : t -> int
val arg_x : t -> float
