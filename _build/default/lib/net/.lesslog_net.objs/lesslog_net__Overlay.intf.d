lib/net/overlay.mli: Latency Lesslog_id Lesslog_prng Lesslog_sim Params Pid
