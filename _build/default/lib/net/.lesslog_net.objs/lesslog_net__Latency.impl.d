lib/net/latency.ml: Format Lesslog_prng
