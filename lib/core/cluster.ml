open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module File_store = Lesslog_storage.File_store
module Psi = Lesslog_hash.Psi
module Packed_bits = Lesslog_bits.Packed_bits
module Topology = Lesslog_topology.Topology

type t = {
  params : Params.t;
  psi : Psi.t;
  status : Status_word.t;
  stores : File_store.t array;
  registry : (string, unit) Hashtbl.t;
  (* base key -> (k, r) for keys currently held as erasure-coded
     fragments instead of full copies. *)
  coded : (string, int * int) Hashtbl.t;
  (* key -> lookup tree memo; ψ and the tree root are pure functions of
     the key, so entries never invalidate. The one-slot [last_tree] keeps
     the common case — the same key queried repeatedly — at a pointer
     compare instead of a string hash. *)
  trees : (string, Ptree.t) Hashtbl.t;
  mutable last_tree : (string * Ptree.t) option;
  (* key -> bitset of PID slots whose store holds a copy (live or dead),
     maintained exactly by the per-store observers installed in [make].
     [holds] is a bit test and [holders] a live-AND-holder word walk. *)
  holder_index : (string, Packed_bits.t) Hashtbl.t;
  mutable last_holders : (string * Packed_bits.t) option;
  (* (key, status epoch, router) — revalidated by an int compare, saving
     the domain-local cache lookup on every request walk. *)
  mutable last_router : (string * int * Topology.router) option;
}

let holder_bits t key =
  match t.last_holders with
  | Some (k, bits) when k == key || String.equal k key -> bits
  | _ -> (
      match Hashtbl.find_opt t.holder_index key with
      | Some bits ->
          t.last_holders <- Some (key, bits);
          bits
      | None ->
          let bits = Packed_bits.create (Params.space t.params) in
          Hashtbl.add t.holder_index key bits;
          t.last_holders <- Some (key, bits);
          bits)

let make params status =
  let t =
    {
      params;
      psi = Psi.create ~m:(Params.m params);
      status;
      stores = Array.init (Params.space params) (fun _ -> File_store.create ());
      registry = Hashtbl.create 16;
      coded = Hashtbl.create 16;
      trees = Hashtbl.create 16;
      last_tree = None;
      holder_index = Hashtbl.create 16;
      last_holders = None;
      last_router = None;
    }
  in
  Array.iteri
    (fun i store ->
      File_store.set_observer store (fun key held ->
          let bits = holder_bits t key in
          if held then Packed_bits.set bits i else Packed_bits.clear bits i))
    t.stores;
  t

let create ?live params =
  let status =
    match live with
    | None -> Status_word.create params ~initially_live:true
    | Some pids -> Status_word.of_live_list params pids
  in
  make params status

let create_with_dead_fraction params ~rng ~fraction =
  let status = Status_word.create params ~initially_live:true in
  let (_ : Pid.t list) = Status_word.kill_fraction status rng ~fraction in
  make params status

let params t = t.params
let status t = t.status
let psi t = t.psi
let live_count t = Status_word.live_count t.status
let store t p = t.stores.(Pid.to_int p)

let tree_of t p = Ptree.make t.params ~root:p

let tree_of_key t key =
  match t.last_tree with
  | Some (k, tree) when k == key || String.equal k key -> tree
  | _ ->
      let tree =
        match Hashtbl.find_opt t.trees key with
        | Some tree -> tree
        | None ->
            let tree = tree_of t (Pid.unsafe_of_int (Psi.target t.psi key)) in
            Hashtbl.add t.trees key tree;
            tree
      in
      t.last_tree <- Some (key, tree);
      tree

let target_of_key t key = Ptree.root (tree_of_key t key)

let router_of_key t key =
  let epoch = Status_word.epoch t.status in
  match t.last_router with
  | Some (k, e, r) when e = epoch && (k == key || String.equal k key) -> r
  | _ ->
      let r = Topology.router (tree_of_key t key) t.status in
      t.last_router <- Some (key, epoch, r);
      r

let holds t p ~key = Packed_bits.get (holder_bits t key) (Pid.to_int p)

let holder_bitset t ~key = holder_bits t key

let holders t ~key =
  let acc = ref [] in
  Packed_bits.iter_inter (Status_word.live_bits t.status) (holder_bits t key)
    (fun i -> acc := Pid.unsafe_of_int i :: !acc);
  List.rev !acc

let register_key t key = Hashtbl.replace t.registry key ()

let unregister_key t key = Hashtbl.remove t.registry key

let registered_keys t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.registry [] |> List.sort compare

let register_coded t key ~k ~r = Hashtbl.replace t.coded key (k, r)

let unregister_coded t key = Hashtbl.remove t.coded key

let coded_params t ~key = Hashtbl.find_opt t.coded key

let coded_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.coded [] |> List.sort compare

let count_copies t ~key pred =
  let acc = ref 0 in
  Packed_bits.iter_inter (Status_word.live_bits t.status) (holder_bits t key)
    (fun i ->
      match File_store.origin t.stores.(i) ~key with
      | Some o when pred o -> incr acc
      | Some _ | None -> ());
  !acc

let replica_count t ~key =
  count_copies t ~key (fun o -> o = File_store.Replicated)

let total_copies t ~key = count_copies t ~key (fun _ -> true)
