lib/report/series.ml: Array Option
