module Event = struct
  type t =
    | Request of { at : float; origin : int; server : int option; hops : int }
    | Replicate of { at : float; src : int; dst : int; key : string }
    | Evict of { at : float; node : int; key : string }
    | Membership of { at : float; node : int; change : [ `Join | `Leave | `Fail ] }
    | Timeout of { at : float; id : int; origin : int; attempt : int }
    | Retry of { at : float; id : int; origin : int; attempt : int }
    | Suspect of { at : float; node : int }
    | Trust of { at : float; node : int }
    | Span of {
        at : float;
        dur : float;
        name : string;
        id : int;
        origin : int;
        server : int option;
        hops : int;
        attempt : int;
      }
    | Loss of { at : float; until : float; rate : float }
    | Cut of {
        at : float;
        until : float;
        direction : [ `Both | `In | `Out ];
        nodes : int list;
      }
    | Mark of { at : float; name : string; value : float }

  let time = function
    | Request { at; _ } | Replicate { at; _ } | Evict { at; _ }
    | Membership { at; _ } | Timeout { at; _ } | Retry { at; _ }
    | Suspect { at; _ } | Trust { at; _ } | Span { at; _ }
    | Loss { at; _ } | Cut { at; _ } | Mark { at; _ } ->
        at

  (* Percent-encode anything that would break space-separated parsing. *)
  let encode_key s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | ' ' | '%' | '\n' | '\r' | '\t' ->
            Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let decode_key s =
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i < n then
        if s.[i] = '%' && i + 2 < n then begin
          Buffer.add_char buf
            (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
          go (i + 3)
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents buf

  let float_repr x = Printf.sprintf "%h" x

  let to_line = function
    | Request { at; origin; server; hops } ->
        Printf.sprintf "REQ %s %d %s %d" (float_repr at) origin
          (match server with Some s -> string_of_int s | None -> "fault")
          hops
    | Replicate { at; src; dst; key } ->
        Printf.sprintf "REP %s %d %d %s" (float_repr at) src dst (encode_key key)
    | Evict { at; node; key } ->
        Printf.sprintf "EVI %s %d %s" (float_repr at) node (encode_key key)
    | Membership { at; node; change } ->
        Printf.sprintf "MEM %s %d %s" (float_repr at) node
          (match change with `Join -> "join" | `Leave -> "leave" | `Fail -> "fail")
    | Timeout { at; id; origin; attempt } ->
        Printf.sprintf "TMO %s %d %d %d" (float_repr at) id origin attempt
    | Retry { at; id; origin; attempt } ->
        Printf.sprintf "RTY %s %d %d %d" (float_repr at) id origin attempt
    | Suspect { at; node } -> Printf.sprintf "SUS %s %d" (float_repr at) node
    | Trust { at; node } -> Printf.sprintf "TRU %s %d" (float_repr at) node
    | Span { at; dur; name; id; origin; server; hops; attempt } ->
        Printf.sprintf "SPN %s %s %s %d %d %s %d %d" (float_repr at)
          (float_repr dur) (encode_key name) id origin
          (match server with Some s -> string_of_int s | None -> "fault")
          hops attempt
    | Loss { at; until; rate } ->
        Printf.sprintf "LOS %s %s %s" (float_repr at) (float_repr until)
          (float_repr rate)
    | Cut { at; until; direction; nodes } ->
        Printf.sprintf "CUT %s %s %s %s" (float_repr at) (float_repr until)
          (match direction with `Both -> "both" | `In -> "in" | `Out -> "out")
          (String.concat "," (List.map string_of_int nodes))
    | Mark { at; name; value } ->
        Printf.sprintf "MRK %s %s %s" (float_repr at) (encode_key name)
          (float_repr value)

  let of_line line =
    let fail () = Error (Printf.sprintf "malformed trace line: %S" line) in
    match String.split_on_char ' ' line with
    | [ "REQ"; at; origin; server; hops ] -> (
        match
          ( float_of_string_opt at,
            int_of_string_opt origin,
            int_of_string_opt hops )
        with
        | Some at, Some origin, Some hops -> (
            match server with
            | "fault" -> Ok (Request { at; origin; server = None; hops })
            | s -> (
                match int_of_string_opt s with
                | Some server ->
                    Ok (Request { at; origin; server = Some server; hops })
                | None -> fail ()))
        | _ -> fail ())
    | [ "REP"; at; src; dst; key ] -> (
        match
          (float_of_string_opt at, int_of_string_opt src, int_of_string_opt dst)
        with
        | Some at, Some src, Some dst ->
            Ok (Replicate { at; src; dst; key = decode_key key })
        | _ -> fail ())
    | [ "EVI"; at; node; key ] -> (
        match (float_of_string_opt at, int_of_string_opt node) with
        | Some at, Some node -> Ok (Evict { at; node; key = decode_key key })
        | _ -> fail ())
    | [ "MEM"; at; node; change ] -> (
        match
          ( float_of_string_opt at,
            int_of_string_opt node,
            match change with
            | "join" -> Some `Join
            | "leave" -> Some `Leave
            | "fail" -> Some `Fail
            | _ -> None )
        with
        | Some at, Some node, Some change ->
            Ok (Membership { at; node; change })
        | _ -> fail ())
    | [ (("TMO" | "RTY") as tag); at; id; origin; attempt ] -> (
        match
          ( float_of_string_opt at,
            int_of_string_opt id,
            int_of_string_opt origin,
            int_of_string_opt attempt )
        with
        | Some at, Some id, Some origin, Some attempt ->
            if tag = "TMO" then Ok (Timeout { at; id; origin; attempt })
            else Ok (Retry { at; id; origin; attempt })
        | _ -> fail ())
    | [ "SPN"; at; dur; name; id; origin; server; hops; attempt ] -> (
        match
          ( float_of_string_opt at,
            float_of_string_opt dur,
            int_of_string_opt id,
            int_of_string_opt origin,
            int_of_string_opt hops,
            int_of_string_opt attempt )
        with
        | Some at, Some dur, Some id, Some origin, Some hops, Some attempt -> (
            let name = decode_key name in
            match server with
            | "fault" ->
                Ok
                  (Span
                     { at; dur; name; id; origin; server = None; hops; attempt })
            | s -> (
                match int_of_string_opt s with
                | Some server ->
                    Ok
                      (Span
                         { at; dur; name; id; origin; server = Some server;
                           hops; attempt })
                | None -> fail ()))
        | _ -> fail ())
    | [ (("SUS" | "TRU") as tag); at; node ] -> (
        match (float_of_string_opt at, int_of_string_opt node) with
        | Some at, Some node ->
            if tag = "SUS" then Ok (Suspect { at; node })
            else Ok (Trust { at; node })
        | _ -> fail ())
    | [ "LOS"; at; until; rate ] -> (
        match
          ( float_of_string_opt at,
            float_of_string_opt until,
            float_of_string_opt rate )
        with
        | Some at, Some until, Some rate -> Ok (Loss { at; until; rate })
        | _ -> fail ())
    | [ "CUT"; at; until; direction; nodes ] -> (
        match
          ( float_of_string_opt at,
            float_of_string_opt until,
            match direction with
            | "both" -> Some `Both
            | "in" -> Some `In
            | "out" -> Some `Out
            | _ -> None )
        with
        | Some at, Some until, Some direction -> (
            let parts =
              if nodes = "" then []
              else String.split_on_char ',' nodes
            in
            let ids = List.map int_of_string_opt parts in
            if List.exists (fun o -> o = None) ids then fail ()
            else
              Ok
                (Cut
                   { at; until; direction;
                     nodes = List.filter_map Fun.id ids }))
        | _ -> fail ())
    | [ "MRK"; at; name; value ] -> (
        match (float_of_string_opt at, float_of_string_opt value) with
        | Some at, Some value -> Ok (Mark { at; name = decode_key name; value })
        | _ -> fail ())
    | _ -> fail ()

  let equal a b = a = b

  let pp fmt t = Format.pp_print_string fmt (to_line t)
end

module Writer = struct
  type sink = Channel of out_channel | Buf of Buffer.t

  type t = { sink : sink; mutable count : int; mutable closed : bool }

  let to_file path = { sink = Channel (open_out path); count = 0; closed = false }

  let to_buffer buf = { sink = Buf buf; count = 0; closed = false }

  let emit t event =
    if t.closed then invalid_arg "Trace.Writer.emit: closed";
    let line = Event.to_line event in
    (match t.sink with
    | Channel oc ->
        output_string oc line;
        output_char oc '\n'
    | Buf b ->
        Buffer.add_string b line;
        Buffer.add_char b '\n');
    t.count <- t.count + 1

  let count t = t.count

  let close t =
    if not t.closed then begin
      t.closed <- true;
      match t.sink with Channel oc -> close_out oc | Buf _ -> ()
    end
end

let read_lines lines =
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc (i + 1) rest
    | line :: rest -> (
        match Event.of_line line with
        | Ok e -> go (e :: acc) (i + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go [] 1 lines

let read_string s = read_lines (String.split_on_char '\n' s)

let read_file path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  read_string contents

type summary = {
  events : int;
  requests : int;
  faults : int;
  replications : int;
  evictions : int;
  membership_changes : int;
  timeouts : int;
  retries : int;
  suspicions : int;
  recoveries : int;
  spans : int;
  span : float;
}

let summarize events =
  let requests = ref 0
  and faults = ref 0
  and replications = ref 0
  and evictions = ref 0
  and membership = ref 0
  and timeouts = ref 0
  and retries = ref 0
  and suspicions = ref 0
  and recoveries = ref 0
  and spans = ref 0
  and t_min = ref infinity
  and t_max = ref neg_infinity in
  List.iter
    (fun e ->
      let t = Event.time e in
      if t < !t_min then t_min := t;
      if t > !t_max then t_max := t;
      match e with
      | Event.Request { server; _ } ->
          incr requests;
          if server = None then incr faults
      | Event.Replicate _ -> incr replications
      | Event.Evict _ -> incr evictions
      | Event.Membership _ -> incr membership
      | Event.Timeout _ -> incr timeouts
      | Event.Retry _ -> incr retries
      | Event.Suspect _ -> incr suspicions
      | Event.Trust _ -> incr recoveries
      | Event.Span _ -> incr spans
      | Event.Loss _ | Event.Cut _ | Event.Mark _ -> ())
    events;
  {
    events = List.length events;
    requests = !requests;
    faults = !faults;
    replications = !replications;
    evictions = !evictions;
    membership_changes = !membership;
    timeouts = !timeouts;
    retries = !retries;
    suspicions = !suspicions;
    recoveries = !recoveries;
    spans = !spans;
    span = (if events = [] then 0.0 else !t_max -. !t_min);
  }
