(* GF(256) with primitive polynomial 0x11d, generator 2. The exp table
   is doubled (510 entries) so [mul] can skip the mod-255 reduction. *)

let exp_table = Array.make 255 0
let log_table = Array.make 256 0
let exp2 = Array.make 510 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor 0x11d
  done;
  for i = 0 to 509 do
    exp2.(i) <- exp_table.(i mod 255)
  done

let add a b = a lxor b

let mul a b =
  if a = 0 || b = 0 then 0 else exp2.(log_table.(a) + log_table.(b))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp2.(log_table.(a) - log_table.(b) + 255)

let inv a = div 1 a

let pow x n =
  if n < 0 then invalid_arg "Gf256.pow: negative exponent";
  if x = 0 then (if n = 0 then 1 else 0)
  else exp_table.(log_table.(x) * n mod 255)
