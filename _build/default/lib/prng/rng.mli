(** Seeded random source with the distributions the experiments need.

    Every harness entry point threads an explicit [Rng.t]; two runs with the
    same seed produce identical figures. *)

type t

val create : seed:int -> t
val copy : t -> t

val split : t -> t
(** Independent stream, e.g. one per parallel sweep point. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform over the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [true] with probability [p]. *)

val exponential : t -> rate:float -> float
(** Exponential inter-arrival time with the given rate — Poisson request
    arrivals in the event-driven simulator. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> k:int -> 'a array -> 'a array
(** [k] distinct elements drawn uniformly; [k] may not exceed the array
    length. Input is not modified. *)
