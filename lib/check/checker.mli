(** The deterministic simulation checker: generate → run → check →
    shrink → repro.

    A trial is a pure function of its {!Schedule.t}: {!run} builds a
    fresh cluster, inserts the schedule's keys, attaches an {!Oracle} as
    the simulator sink and plays the schedule through {!Lesslog_des}
    ({!Lesslog_des.Des_sim} or {!Lesslog_des.Fault_sim} by mode).
    {!explore} drives seeded trials — alternating Des and Fault mode —
    until a violation, then delta-debugs the schedule with {!Shrink} and
    writes a replayable repro file; {!replay} re-executes one. All output
    goes through the caller's [log], carries no wall-clock times, and is
    byte-identical across runs of the same seed list. *)

type violation = { oracle : string; at : float; detail : string }

type stats = {
  served : int;
  faults : int;
  checks : int;  (** Heavy oracle sweeps that ran. *)
  events : int;  (** Trace events the oracle saw. *)
}

val run : ?mutation:bool -> Schedule.t -> (stats, violation) result
(** One trial. [mutation] enables the deliberately broken FINDLIVENODE
    ({!Lesslog_topology.Topology.Testing}) for the duration of the run —
    the checker's self-test. *)

val shrink :
  mutation:bool -> Schedule.t -> violation -> Schedule.t * Shrink.stats
(** Minimize the schedule's steps so the same oracle still fires. *)

type found = {
  trial : int;
  schedule : Schedule.t;  (** As generated. *)
  violation : violation;  (** What the full schedule raised. *)
  shrunk : Schedule.t;
  shrunk_violation : violation;  (** From the confirming re-run. *)
  shrink_stats : Shrink.stats;
  repro_path : string option;
}

type exploration = Clean of { trials : int } | Found of found

val explore :
  ?mutation:bool ->
  ?out_dir:string ->
  ?stop:(unit -> bool) ->
  log:(string -> unit) ->
  seed:int ->
  m:int ->
  iterations:int ->
  unit ->
  exploration
(** Up to [iterations] seeded trials (seed [i] derived from [seed]), even
    trials in Des mode, odd in Fault mode; stops early when [stop ()]
    turns true (the CLI's wall-clock budget) or at the first violation,
    which is shrunk and — when [out_dir] is given — saved as
    [out_dir/repro-<seed>.trace]. *)

val derive_seed : int -> int -> int
(** The per-trial seed derivation, exposed for the tests. *)

type replay_outcome =
  | Reproduced of violation
  | Clean_run
  | Mismatch of { expected : string option; got : violation option }

val replay : log:(string -> unit) -> Schedule.decoded -> replay_outcome
(** Re-execute a loaded repro and compare against its recorded
    expectation. *)

val pp_violation : Format.formatter -> violation -> unit
