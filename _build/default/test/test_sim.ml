module Heap = Lesslog_sim.Heap
module Engine = Lesslog_sim.Engine

(* --- Heap -------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3; 5; 8; 9 ]
    (List.init 6 (fun _ -> Option.get (Heap.pop h)))

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_to_sorted_list_nondestructive () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "untouched" 3 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorts =
  Test_support.qcheck_case ~name:"heap drain = List.sort"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_interleaved =
  Test_support.qcheck_case ~name:"interleaved push/pop keeps min order"
    QCheck2.Gen.(list_size (int_range 0 100) (option (int_range 0 1000)))
    (fun ops ->
      (* Some x = push x, None = pop; popped sequence must never exceed the
         current min of remaining contents. *)
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Heap.push h x;
              model := x :: !model;
              true
          | None -> (
              match Heap.pop h with
              | None -> !model = []
              | Some v ->
                  let min_model = List.fold_left min max_int !model in
                  let ok = v = min_model in
                  model := List.filter (( <> ) v) !model @ List.init
                    (List.length (List.filter (( = ) v) !model) - 1)
                    (fun _ -> v);
                  ok))
        ops)

(* --- Engine ------------------------------------------------------------ *)

let test_engine_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at e ~time:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:0.5 (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock clamped" 5.0 (Engine.now e);
  Alcotest.(check int) "late event queued" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "late event runs" 2 !fired

let test_engine_until_idle_advances_clock () =
  let e = Engine.create () in
  Engine.run ~until:7.0 e;
  Alcotest.(check (float 1e-9)) "clock" 7.0 (Engine.now e)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule e ~delay:1.0 forever in
  forever ();
  Engine.run ~max_events:100 e;
  Alcotest.(check int) "bounded" 100 (Engine.events_executed e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5.0 (fun () -> ());
  ignore (Engine.step e);
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ()));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let prop_engine_executes_in_time_order =
  Test_support.qcheck_case ~name:"events run in nondecreasing time"
    QCheck2.Gen.(list_size (int_range 0 100) (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d -> Engine.schedule e ~delay:d (fun () -> times := Engine.now e :: !times))
        delays;
      Engine.run e;
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing (List.rev !times))

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "to_sorted_list" `Quick
            test_heap_to_sorted_list_nondestructive;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_time_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "until on idle queue" `Quick
            test_engine_until_idle_advances_clock;
          Alcotest.test_case "max_events guard" `Quick test_engine_max_events;
          Alcotest.test_case "rejects past times" `Quick test_engine_rejects_past;
        ] );
      ( "properties",
        [ prop_heap_sorts; prop_heap_interleaved; prop_engine_executes_in_time_order ] );
    ]
