(** Discrete-event simulation engine: a simulated clock over a ladder
    event queue ({!Ladder_queue}). Events scheduled for the same instant
    fire in scheduling order (a monotone sequence number breaks ties),
    which keeps runs deterministic.

    Two scheduling planes share one timeline:

    - the {b packed} plane — {!register_handler} + {!post}/{!post_at} —
      stores events as plain scalars [(h, a, b, x)] and dispatches through
      a handler table, so the hot path allocates nothing per event;
    - the {b closure} plane — {!schedule}/{!schedule_at} — accepts
      arbitrary thunks, parked in a slot store and fired by a reserved
      handler. Convenient for rare timers (ticks, timeouts) and tests.

    Simulators should post packed events for per-message work and reserve
    closures for low-frequency control events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, seconds. Starts at 0. *)

(** {2 Packed events} *)

val register_handler : t -> (int -> int -> float -> unit) -> int
(** Add a dispatch-table entry; the returned id is passed to {!post}.
    The handler receives the event payload [(a, b, x)]. Ids are engine-
    specific and never reused. *)

val post : t -> delay:float -> h:int -> a:int -> b:int -> x:float -> unit
(** Enqueue a packed event [delay] seconds from now for handler [h].
    [delay >= 0]. Allocation-free once queue capacity is warm. *)

val post_at : t -> time:float -> h:int -> a:int -> b:int -> x:float -> unit
(** Same at an absolute time [>= now]. *)

val post_batch :
  t ->
  len:int ->
  time:float array ->
  h:int array ->
  a:int array ->
  b:int array ->
  x:float array ->
  unit
(** Enqueue the first [len] events of five parallel field arrays (a
    mailbox slice) in one call: one validation pass and one seq-counter
    sweep instead of a {!post_at} per event. Events receive consecutive
    tie-breaking seqs in slice order — bit-identical scheduling to [len]
    single posts. The arrays are read, never kept.
    @raise Invalid_argument when [len] exceeds any array or any of the
    first [len] times is below [now]. *)

(** {2 Closure events} *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now. [delay >= 0]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute time [>= now]. *)

(** {2 Driving the clock} *)

val pending : t -> int
(** Events still queued. *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val step_below : t -> bound:float -> bool
(** Execute the next event only when its time is strictly below [bound];
    [false] when the queue is empty or the head is at or past the bound
    (nothing is dequeued, the clock does not move). *)

val drain_below : t -> bound:float -> unit
(** Execute every event with time strictly below [bound], including ones
    posted by handlers during the drain — one shard's share of an epoch
    in the sharded engine ({!Sharded_engine}). *)

val next_time : t -> float option
(** Time of the next queued event; [None] when the queue is empty. *)

val next_time_inf : t -> float
(** Same with [Float.infinity] as the empty sentinel — no [option] box,
    so the sharded engine's per-epoch minimum scan allocates nothing. *)

val advance_to : t -> time:float -> unit
(** Move the clock forward to [time] without executing anything (no-op
    when [time <= now]). The epoch barrier uses this to line shards up
    on a common boundary. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue. [until] stops the clock at that time (later events
    stay queued, [now] is clamped to [until]); [max_events] bounds the
    number of callbacks executed — a runaway guard. *)

val events_executed : t -> int
