open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Vtree = Lesslog_vtree.Vtree
module Topology = Lesslog_topology.Topology
module Subtrees = Lesslog_topology.Subtrees

let params4 = Params.create ~m:4 ()
let pid = Pid.unsafe_of_int

(* The paper's running example: a 14-node system, lookup tree of P(4),
   with P(0) and P(5) dead (Figure 3). *)
let figure3 () =
  let status = Status_word.create params4 ~initially_live:true in
  Status_word.set_dead status (pid 0);
  Status_word.set_dead status (pid 5);
  (status, Ptree.make params4 ~root:(pid 4))

let test_figure3_children_list () =
  let status, tree = figure3 () in
  (* Paper: the children list of P(4) is (P(6), P(7), P(1), P(12), P(13),
     P(8)), sorted by VID. *)
  Alcotest.(check (list int)) "children list of P(4)" [ 6; 7; 1; 12; 13; 8 ]
    (List.map Pid.to_int (Topology.children_list tree status (pid 4)))

let test_figure3_findlivenode () =
  (* Paper (Section 3 / 5.1): with P(4) and P(5) dead, files targeting
     P(4) are stored at P(6), the live node with the most offspring. *)
  let status = Status_word.create params4 ~initially_live:true in
  Status_word.set_dead status (pid 4);
  Status_word.set_dead status (pid 5);
  let tree = Ptree.make params4 ~root:(pid 4) in
  Alcotest.(check (option int)) "insertion target" (Some 6)
    (Option.map Pid.to_int (Topology.insertion_target tree status))

let test_findlivenode_live_start () =
  let status, tree = figure3 () in
  Alcotest.(check (option int)) "live start returned" (Some 8)
    (Option.map Pid.to_int (Topology.find_live_node tree status ~start:(pid 8)))

let test_findlivenode_all_dead () =
  let status = Status_word.create params4 ~initially_live:false in
  let tree = Ptree.make params4 ~root:(pid 4) in
  Alcotest.(check (option int)) "no live node" None
    (Option.map Pid.to_int (Topology.insertion_target tree status))

let test_first_alive_ancestor () =
  let status, tree = figure3 () in
  (* P(13) has VID 0110; parent VID 1110 = P(5), dead; grandparent VID
     1111 = P(4), live. *)
  Alcotest.(check (option int)) "skips dead parent" (Some 4)
    (Option.map Pid.to_int (Topology.first_alive_ancestor tree status (pid 13)));
  (* Live root has no ancestor. *)
  Alcotest.(check (option int)) "root" None
    (Option.map Pid.to_int (Topology.first_alive_ancestor tree status (pid 4)))

let test_max_live () =
  let status = Status_word.create params4 ~initially_live:true in
  Status_word.set_dead status (pid 4);
  Status_word.set_dead status (pid 5);
  let tree = Ptree.make params4 ~root:(pid 4) in
  Alcotest.(check (option int)) "max live = P(6)" (Some 6)
    (Option.map Pid.to_int (Topology.max_live tree status));
  Alcotest.(check bool) "P(6) has no greater live VID" false
    (Topology.has_live_with_greater_vid tree status (pid 6));
  Alcotest.(check bool) "P(8) has greater live VID" true
    (Topology.has_live_with_greater_vid tree status (pid 8))

let test_route_path_complete_tree () =
  let status = Status_word.create params4 ~initially_live:true in
  let tree = Ptree.make params4 ~root:(pid 4) in
  Alcotest.(check (list int)) "P(8) path" [ 8; 0; 4 ]
    (List.map Pid.to_int (Topology.route_path tree status ~origin:(pid 8)))

let test_route_path_with_dead_root () =
  let status = Status_word.create params4 ~initially_live:true in
  Status_word.set_dead status (pid 4);
  Status_word.set_dead status (pid 5);
  let tree = Ptree.make params4 ~root:(pid 4) in
  (* From P(8): P(0) live, P(4) dead; chain P(8) -> P(0); P(0)'s only
     strict ancestor P(4) is dead, so the request migrates to P(6). *)
  Alcotest.(check (list int)) "migrating path" [ 8; 0; 6 ]
    (List.map Pid.to_int (Topology.route_path tree status ~origin:(pid 8)))

let test_live_offspring_count () =
  let status, tree = figure3 () in
  (* P(4) is the root: all other 13 live nodes are its offspring. *)
  Alcotest.(check int) "root offspring" 13
    (Topology.live_offspring_count tree status (pid 4));
  (* P(8) (VID 0011) has one child 0001=P(10)... VID 0011 children:
     leading ones of 0011 is 0, so P(8) is a leaf in this tree. *)
  Alcotest.(check int) "leaf" 0 (Topology.live_offspring_count tree status (pid 8))

(* --- Fault-tolerant subtrees (Figure 4: m = 4, b = 2) ---------------- *)

let params_ft = Params.create ~m:4 ~b:2 ()

let test_subtree_decomposition () =
  let tree = Ptree.make params_ft ~root:(pid 4) in
  (* 4 subtrees of 4 slots each. *)
  Alcotest.(check int) "count" 4 (Params.subtree_count params_ft);
  Alcotest.(check int) "space" 4 (Params.subtree_space params_ft);
  (* Subtree ids partition the slots. *)
  let ids = List.map (fun p -> Subtrees.subtree_id_of_pid tree (pid p))
      (List.init 16 (fun i -> i)) in
  List.iter (fun sid -> Alcotest.(check bool) "sid in range" true (sid >= 0 && sid < 4)) ids;
  let count_sid s = List.length (List.filter (( = ) s) ids) in
  List.iter (fun s -> Alcotest.(check int) "4 members" 4 (count_sid s)) [ 0; 1; 2; 3 ]

let test_subtree_vid_split () =
  (* VID 1110: subtree id = 10, subtree VID = 11 (paper Figure 4 text). *)
  let v = Vid.unsafe_of_int 0b1110 in
  Alcotest.(check int) "sid" 0b10 (Subtrees.subtree_id_of_vid params_ft v);
  Alcotest.(check int) "svid" 0b11 (Subtrees.subtree_vid_of_vid params_ft v);
  Alcotest.(check int) "compose"
    0b1110
    (Vid.to_int (Subtrees.compose_vid params_ft ~subtree_vid:0b11 ~subtree_id:0b10))

let test_subtree_roots () =
  let tree = Ptree.make params_ft ~root:(pid 4) in
  (* The subtree root has subtree VID 11; with comp(4)=1011 its PID is
     (11 ++ sid) xor 1011. *)
  List.iter
    (fun sid ->
      let root = Subtrees.subtree_root tree ~subtree_id:sid in
      Alcotest.(check int) "root svid" 0b11
        (Subtrees.subtree_vid_of_vid params_ft (Ptree.vid_of_pid tree root));
      Alcotest.(check int) "root sid" sid (Subtrees.subtree_id_of_pid tree root))
    [ 0; 1; 2; 3 ]

let test_subtree_navigation_stays_inside () =
  let tree = Ptree.make params_ft ~root:(pid 4) in
  List.iter
    (fun p ->
      let p = pid p in
      let sid = Subtrees.subtree_id_of_pid tree p in
      (match Subtrees.parent_in_subtree tree p with
      | Some q ->
          Alcotest.(check int) "parent same subtree" sid
            (Subtrees.subtree_id_of_pid tree q)
      | None -> ());
      List.iter
        (fun c ->
          Alcotest.(check int) "child same subtree" sid
            (Subtrees.subtree_id_of_pid tree c))
        (Subtrees.children_in_subtree tree p))
    (List.init 16 (fun i -> i))

let test_insertion_targets_ft () =
  let status = Status_word.create params_ft ~initially_live:true in
  let tree = Ptree.make params_ft ~root:(pid 4) in
  let targets = Subtrees.insertion_targets tree status in
  Alcotest.(check int) "2^b targets" 4 (List.length targets);
  (* All targets distinct and in distinct subtrees. *)
  let sids = List.map (Subtrees.subtree_id_of_pid tree) targets in
  Alcotest.(check int) "distinct subtrees" 4
    (List.length (List.sort_uniq compare sids))

let test_migrate_vid () =
  let v = Vid.unsafe_of_int 0b1110 in
  let v' = Subtrees.migrate_vid params_ft v ~to_subtree:0b01 in
  Alcotest.(check int) "migrated" 0b1101 (Vid.to_int v')

(* --- Properties ------------------------------------------------------ *)

(* Brute-force reference: max-VID live node with VID <= start's VID. *)
let brute_find_live tree status ~start =
  let rec scan vid =
    if vid < 0 then None
    else
      let p = Ptree.pid_of_vid tree (Vid.unsafe_of_int vid) in
      if Status_word.is_live status p then Some p else scan (vid - 1)
  in
  scan (Vid.to_int (Ptree.vid_of_pid tree start))

let prop_find_live_node_matches_brute =
  Test_support.qcheck_case ~name:"find_live_node = brute force"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun start ->
      return (status, tree, start))
    (fun (status, tree, start) ->
      Topology.find_live_node tree status ~start
      = brute_find_live tree status ~start)

(* Brute-force reference for the dead-aware children list: the live
   strict descendants whose intermediate ancestors are all dead. *)
let brute_children_list tree status p =
  let result = ref [] in
  Ptree.iter_subtree tree p (fun q ->
      if (not (Pid.equal q p)) && Status_word.is_live status q then begin
        let rec intermediate_dead x =
          match Ptree.parent tree x with
          | None -> false
          | Some parent ->
              if Pid.equal parent p then true
              else Status_word.is_dead status parent && intermediate_dead parent
        in
        if intermediate_dead q then result := q :: !result
      end);
  List.sort
    (fun a b -> Vid.compare (Ptree.vid_of_pid tree b) (Ptree.vid_of_pid tree a))
    !result

let prop_children_list_matches_brute =
  Test_support.qcheck_case ~name:"children_list = brute force"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun p -> return (status, tree, p))
    (fun (status, tree, p) ->
      Topology.children_list tree status p = brute_children_list tree status p)

let prop_children_list_all_live =
  Test_support.qcheck_case ~name:"children_list members are live"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun p -> return (status, tree, p))
    (fun (status, tree, p) ->
      List.for_all (Status_word.is_live status)
        (Topology.children_list tree status p))

let prop_route_terminates_at_holder_location =
  Test_support.qcheck_case ~name:"route ends at live root or migration target"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun origin ->
      return (params, status, tree, origin))
    (fun (_, status, tree, origin) ->
      (not (Status_word.is_live status origin))
      ||
      let path = Topology.route_path tree status ~origin in
      match List.rev path with
      | [] -> false
      | last :: _ ->
          let root = Ptree.root tree in
          if Status_word.is_live status root then Pid.equal last root
          else Topology.insertion_target tree status = Some last)

let prop_route_all_live =
  Test_support.qcheck_case ~name:"route visits only live nodes"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun origin ->
      return (status, tree, origin))
    (fun (status, tree, origin) ->
      (not (Status_word.is_live status origin))
      || List.for_all (Status_word.is_live status)
           (Topology.route_path tree status ~origin))

let prop_route_length_bounded =
  Test_support.qcheck_case ~name:"route length <= m + 2"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun origin ->
      return (params, status, tree, origin))
    (fun (params, status, tree, origin) ->
      (not (Status_word.is_live status origin))
      || List.length (Topology.route_path tree status ~origin)
         <= Params.m params + 2)

let prop_subtree_route_stays_in_subtree =
  Test_support.qcheck_case ~name:"FT subtree route stays in origin's subtree"
    QCheck2.Gen.(
      Test_support.gen_params_ft >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      Test_support.gen_pid params >>= fun root ->
      Test_support.gen_pid params >>= fun origin ->
      return (status, Ptree.make params ~root, origin))
    (fun (status, tree, origin) ->
      (not (Status_word.is_live status origin))
      ||
      let sid = Subtrees.subtree_id_of_pid tree origin in
      List.for_all
        (fun p -> Subtrees.subtree_id_of_pid tree p = sid)
        (Subtrees.route_path_in_subtree tree status ~origin))

(* Brute-force references for the fault-tolerant subtree layer. *)

let gen_ft_setup =
  QCheck2.Gen.(
    Test_support.gen_params_ft >>= fun params ->
    Test_support.gen_status params >>= fun status ->
    Test_support.gen_pid params >>= fun root ->
    Test_support.gen_pid params >>= fun p ->
    return (params, status, Ptree.make params ~root, p))

let prop_subtree_find_live_matches_brute =
  Test_support.qcheck_case ~name:"FT find_live_node = brute force"
    gen_ft_setup (fun (params, status, tree, start) ->
      let sid = Subtrees.subtree_id_of_pid tree start in
      let svid p =
        Subtrees.subtree_vid_of_vid params (Ptree.vid_of_pid tree p)
      in
      let brute =
        (* Max-subtree-VID live member at or below start's subtree VID. *)
        List.filter
          (fun p -> Status_word.is_live status p && svid p <= svid start)
          (Subtrees.members tree ~subtree_id:sid)
        |> List.sort (fun a b -> compare (svid b) (svid a))
        |> function
        | [] -> None
        | p :: _ -> Some p
      in
      Subtrees.find_live_node_in_subtree tree status ~subtree_id:sid ~start
      = brute)

let prop_subtree_children_list_matches_brute =
  Test_support.qcheck_case ~name:"FT children_list = brute force"
    gen_ft_setup (fun (params, status, tree, p) ->
      let reduced = Subtrees.reduced_params params in
      let sid = Subtrees.subtree_id_of_pid tree p in
      let svid q =
        Subtrees.subtree_vid_of_vid params (Ptree.vid_of_pid tree q)
      in
      (* Live members of p's subtree that are strict descendants of p in
         the reduced tree, whose intermediate ancestors are all dead. *)
      let is_reduced_ancestor a d =
        Lesslog_vtree.Vtree.is_ancestor reduced
          ~ancestor:(Vid.unsafe_of_int (svid a))
          (Vid.unsafe_of_int (svid d))
      in
      let parent_in q = Subtrees.parent_in_subtree tree q in
      let rec intermediates_dead q =
        match parent_in q with
        | None -> false
        | Some parent ->
            if Pid.equal parent p then true
            else Status_word.is_dead status parent && intermediates_dead parent
      in
      let brute =
        List.filter
          (fun q ->
            (not (Pid.equal q p))
            && Status_word.is_live status q
            && is_reduced_ancestor p q && intermediates_dead q)
          (Subtrees.members tree ~subtree_id:sid)
        |> List.sort (fun a b -> compare (svid b) (svid a))
      in
      Subtrees.children_list_in_subtree tree status p = brute)

let prop_subtree_insertion_target_is_max_live =
  Test_support.qcheck_case ~name:"FT insertion target = max live svid"
    gen_ft_setup (fun (params, status, tree, p) ->
      let sid = Subtrees.subtree_id_of_pid tree p in
      let svid q =
        Subtrees.subtree_vid_of_vid params (Ptree.vid_of_pid tree q)
      in
      let brute =
        List.filter (Status_word.is_live status)
          (Subtrees.members tree ~subtree_id:sid)
        |> List.sort (fun a b -> compare (svid b) (svid a))
        |> function
        | [] -> None
        | q :: _ -> Some q
      in
      Subtrees.insertion_target_in_subtree tree status ~subtree_id:sid = brute)

let prop_live_offspring_bounded =
  Test_support.qcheck_case ~name:"live offspring <= offspring"
    QCheck2.Gen.(
      Test_support.gen_tree_setup >>= fun (params, status, tree) ->
      Test_support.gen_pid params >>= fun p -> return (status, tree, p))
    (fun (status, tree, p) ->
      let live = Topology.live_offspring_count tree status p in
      live >= 0 && live <= Ptree.offspring_count tree p)

(* --- Differential tests: cached layer vs. the naive oracle ----------- *)

(* Every cached query must return bit-identical answers to the naive
   reference implementations in [Topology.Naive], across a randomized
   kill/revive sequence. Checking after every mutation exercises the
   epoch-invalidation machinery: each effective [set_live]/[set_dead]
   must force a cache rebuild, and a stale answer shows up as a
   divergence from the oracle here. *)
let all_queries_agree params tree status =
  let module T = Topology in
  let module N = Topology.Naive in
  let space = Params.space params in
  T.max_live tree status = N.max_live tree status
  && T.insertion_target tree status = N.insertion_target tree status
  && List.for_all
       (fun i ->
         let p = pid i in
         T.find_live_node tree status ~start:p
         = N.find_live_node tree status ~start:p
         && T.children_list tree status p = N.children_list tree status p
         && T.first_alive_ancestor tree status p
            = N.first_alive_ancestor tree status p
         && T.has_live_with_greater_vid tree status p
            = N.has_live_with_greater_vid tree status p
         && T.live_offspring_count tree status p
            = N.live_offspring_count tree status p
         && T.route_next tree status p = N.route_next tree status p
         && T.route_path tree status ~origin:p
            = N.route_path tree status ~origin:p)
       (List.init space Fun.id)

let prop_cached_matches_naive =
  Test_support.qcheck_case ~name:"cached topology = naive oracle under churn"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_pid params >>= fun root ->
      bool >>= fun initially_live ->
      list_size (int_range 1 30)
        (pair bool (int_range 0 (Params.space params - 1)))
      >>= fun churn -> return (params, root, initially_live, churn))
    (fun (params, root, initially_live, churn) ->
      let status = Status_word.create params ~initially_live in
      let tree = Ptree.make params ~root in
      all_queries_agree params tree status
      && List.for_all
           (fun (revive, i) ->
             if revive then Status_word.set_live status (pid i)
             else Status_word.set_dead status (pid i);
             all_queries_agree params tree status)
           churn)

(* Mid-epoch differential: where [prop_cached_matches_naive] sweeps every
   query at quiescence after each mutation, this interleaves single
   queries *between* kill/revive/join mutations. Each query touches the
   cache in a different partial state — a children memo built this epoch,
   a route table not yet built, a VID view about to be invalidated — so a
   revalidation path that skips part of the rebuild (stale max-live VID,
   surviving memo entries, a route table from the previous epoch) shows
   up as a single-query divergence from the oracle. *)
let prop_cached_mid_epoch =
  Test_support.qcheck_case ~name:"cached topology = naive oracle mid-epoch"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_pid params >>= fun root ->
      list_size (int_range 1 120)
        (pair (int_range 0 9) (int_range 0 (Params.space params - 1)))
      >>= fun ops -> return (params, root, ops))
    (fun (params, root, ops) ->
      let module T = Topology in
      let module N = Topology.Naive in
      let status = Status_word.create params ~initially_live:true in
      let tree = Ptree.make params ~root in
      List.for_all
        (fun (op, i) ->
          let p = pid i in
          match op with
          | 0 -> (* kill (join/leave semantics are the same bit flips) *)
              Status_word.set_dead status p;
              true
          | 1 ->
              Status_word.set_live status p;
              true
          | 2 ->
              T.find_live_node tree status ~start:p
              = N.find_live_node tree status ~start:p
          | 3 -> T.children_list tree status p = N.children_list tree status p
          | 4 ->
              T.first_alive_ancestor tree status p
              = N.first_alive_ancestor tree status p
          | 5 ->
              T.has_live_with_greater_vid tree status p
              = N.has_live_with_greater_vid tree status p
          | 6 ->
              T.live_offspring_count tree status p
              = N.live_offspring_count tree status p
          | 7 -> T.route_next tree status p = N.route_next tree status p
          | 8 ->
              T.route_path tree status ~origin:p
              = N.route_path tree status ~origin:p
          | _ -> T.max_live tree status = N.max_live tree status)
        ops)

(* Two trees sharing one status word must not poison each other's cache
   entries, and a copied status word must not alias the original's. *)
let test_cache_isolation () =
  let status, tree4 = figure3 () in
  let tree9 = Ptree.make params4 ~root:(pid 9) in
  let check_both () =
    List.iter
      (fun tree ->
        Alcotest.(check bool) "matches naive" true
          (all_queries_agree params4 tree status))
      [ tree4; tree9 ]
  in
  check_both ();
  Status_word.set_dead status (pid 6);
  check_both ();
  let snapshot = Status_word.copy status in
  Status_word.set_live status (pid 6);
  check_both ();
  Alcotest.(check bool) "copy unaffected" true
    (all_queries_agree params4 tree4 snapshot);
  Alcotest.(check bool) "copy still sees P(6) dead" true
    (Status_word.is_dead snapshot (pid 6))

let () =
  Alcotest.run "topology"
    [
      ( "figure 3 (advanced model)",
        [
          Alcotest.test_case "children list with dead nodes" `Quick
            test_figure3_children_list;
          Alcotest.test_case "FINDLIVENODE example" `Quick
            test_figure3_findlivenode;
          Alcotest.test_case "FINDLIVENODE live start" `Quick
            test_findlivenode_live_start;
          Alcotest.test_case "FINDLIVENODE empty system" `Quick
            test_findlivenode_all_dead;
          Alcotest.test_case "first alive ancestor" `Quick
            test_first_alive_ancestor;
          Alcotest.test_case "max live / greater VID" `Quick test_max_live;
          Alcotest.test_case "route in complete tree" `Quick
            test_route_path_complete_tree;
          Alcotest.test_case "route with dead root" `Quick
            test_route_path_with_dead_root;
          Alcotest.test_case "live offspring count" `Quick
            test_live_offspring_count;
        ] );
      ( "figure 4 (fault-tolerant subtrees)",
        [
          Alcotest.test_case "decomposition" `Quick test_subtree_decomposition;
          Alcotest.test_case "vid split" `Quick test_subtree_vid_split;
          Alcotest.test_case "subtree roots" `Quick test_subtree_roots;
          Alcotest.test_case "navigation confined" `Quick
            test_subtree_navigation_stays_inside;
          Alcotest.test_case "2^b insertion targets" `Quick
            test_insertion_targets_ft;
          Alcotest.test_case "migrate vid" `Quick test_migrate_vid;
        ] );
      ( "properties",
        [
          prop_find_live_node_matches_brute;
          prop_children_list_matches_brute;
          prop_children_list_all_live;
          prop_route_terminates_at_holder_location;
          prop_route_all_live;
          prop_route_length_bounded;
          prop_subtree_route_stays_in_subtree;
          prop_subtree_find_live_matches_brute;
          prop_subtree_children_list_matches_brute;
          prop_subtree_insertion_target_is_max_live;
          prop_live_offspring_bounded;
        ] );
      ( "differential (cached vs naive)",
        [
          prop_cached_matches_naive;
          prop_cached_mid_epoch;
          Alcotest.test_case "cache isolation across trees/copies" `Quick
            test_cache_isolation;
        ] );
    ]
