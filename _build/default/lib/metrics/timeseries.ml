type t = { label : string; mutable rev_points : (float * float) list }

let create ?(label = "") () = { label; rev_points = [] }

let label t = t.label

let record t ~time v =
  (match t.rev_points with
  | (prev, _) :: _ when time < prev ->
      invalid_arg "Timeseries.record: time went backwards"
  | _ -> ());
  t.rev_points <- (time, v) :: t.rev_points

let length t = List.length t.rev_points

let points t = Array.of_list (List.rev t.rev_points)

let last t = match t.rev_points with [] -> None | p :: _ -> Some p

let value_at t ~time =
  let rec find = function
    | [] -> None
    | (ts, v) :: rest -> if ts <= time then Some v else find rest
  in
  find t.rev_points
