open Lesslog_id
module Engine = Lesslog_sim.Engine
module Retry = Lesslog_net.Retry
module Rpc = Lesslog_net.Rpc
module Heartbeat = Lesslog_net.Heartbeat
module Rng = Lesslog_prng.Rng

(* --- Retry policy ------------------------------------------------------- *)

let test_backoff_growth_and_cap () =
  let p = Retry.create ~max_retries:6 ~base:0.25 ~factor:2.0 ~max_delay:2.0 () in
  Alcotest.(check (float 1e-9)) "first" 0.25 (Retry.backoff p ~retry:1);
  Alcotest.(check (float 1e-9)) "second" 0.5 (Retry.backoff p ~retry:2);
  Alcotest.(check (float 1e-9)) "third" 1.0 (Retry.backoff p ~retry:3);
  Alcotest.(check (float 1e-9)) "capped" 2.0 (Retry.backoff p ~retry:4);
  Alcotest.(check (float 1e-9)) "stays capped" 2.0 (Retry.backoff p ~retry:6);
  Alcotest.(check int) "attempts" 7 (Retry.attempts p)

let test_jitter_bounds () =
  let p = Retry.create ~jitter:0.5 () in
  let rng = Rng.create ~seed:7 in
  for retry = 1 to 4 do
    let b = Retry.backoff p ~retry in
    for _ = 1 to 200 do
      let d = Retry.delay p rng ~retry in
      Alcotest.(check bool)
        (Printf.sprintf "retry %d in [b/2, b]" retry)
        true
        (d >= (b /. 2.0) -. 1e-12 && d <= b +. 1e-12)
    done
  done

let test_no_jitter_deterministic () =
  let p = Retry.create ~jitter:0.0 () in
  let rng = Rng.create ~seed:8 in
  Alcotest.(check (float 1e-9)) "no jitter" (Retry.backoff p ~retry:2)
    (Retry.delay p rng ~retry:2)

let test_policy_validation () =
  let invalid f = Alcotest.check_raises "rejects" (Invalid_argument "") (fun () ->
      try ignore (f ()) with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  invalid (fun () -> Retry.create ~max_retries:(-1) ());
  invalid (fun () -> Retry.create ~base:0.0 ());
  invalid (fun () -> Retry.create ~factor:0.5 ());
  invalid (fun () -> Retry.create ~max_delay:0.1 ~base:0.2 ());
  invalid (fun () -> Retry.create ~jitter:1.5 ())

let test_max_lifetime () =
  let p = Retry.create ~max_retries:2 ~base:1.0 ~factor:2.0 ~max_delay:8.0 () in
  (* 3 attempts * 0.5s timeout + backoffs 1 + 2. *)
  Alcotest.(check (float 1e-9)) "lifetime" 4.5 (Retry.max_lifetime p ~timeout:0.5)

(* --- Rpc tracker --------------------------------------------------------- *)

(* A toy transport: transmissions append to a log; a "network" function
   decides which attempts eventually complete and when. *)
let make_rpc ?config () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42 in
  let log = ref [] in
  let events = ref [] in
  let rpc =
    Rpc.create ~engine ~rng ?config
      ~on_event:(fun e -> events := e :: !events)
      ~transmit:(fun ~id ~attempt _meta -> log := (id, attempt) :: !log)
      ()
  in
  (engine, rpc, log, events)

let test_complete_cancels_retries () =
  let engine, rpc, log, _ = make_rpc () in
  let id = Rpc.issue rpc "meta" in
  Alcotest.(check (list (pair int int))) "attempt 0 sent" [ (id, 0) ] !log;
  (* Complete before the timeout: no retransmissions ever. *)
  Engine.schedule engine ~delay:0.1 (fun () ->
      Alcotest.(check (option string)) "meta back" (Some "meta")
        (Rpc.complete rpc ~id));
  Engine.run engine;
  Alcotest.(check (list (pair int int))) "no retransmit" [ (id, 0) ] !log;
  Alcotest.(check int) "completed" 1 (Rpc.completed rpc);
  Alcotest.(check int) "in flight" 0 (Rpc.in_flight rpc);
  Alcotest.(check (option string)) "duplicate completion" None
    (Rpc.complete rpc ~id)

let test_exhaustion_reports_fault () =
  let config =
    {
      Rpc.timeout = 1.0;
      policy = Retry.create ~max_retries:3 ~base:0.5 ~jitter:0.0 ();
    }
  in
  let engine, rpc, log, events = make_rpc ~config () in
  let id = Rpc.issue rpc "m" in
  Engine.run engine;
  (* Nothing ever answers: 1 + 3 transmissions, then exhaustion. *)
  Alcotest.(check (list (pair int int)))
    "all attempts sent"
    [ (id, 0); (id, 1); (id, 2); (id, 3) ]
    (List.rev !log);
  Alcotest.(check int) "timeouts" 4 (Rpc.timeouts rpc);
  Alcotest.(check int) "retransmissions" 3 (Rpc.retransmissions rpc);
  Alcotest.(check int) "exhausted" 1 (Rpc.exhausted rpc);
  Alcotest.(check int) "in flight" 0 (Rpc.in_flight rpc);
  Alcotest.(check (option string)) "late completion rejected" None
    (Rpc.complete rpc ~id);
  let exhausted_events =
    List.filter (function Rpc.Exhausted _ -> true | _ -> false) !events
  in
  Alcotest.(check int) "one exhausted event" 1 (List.length exhausted_events)

let test_mid_flight_completion () =
  let config =
    {
      Rpc.timeout = 1.0;
      policy = Retry.create ~max_retries:5 ~base:0.5 ~jitter:0.0 ();
    }
  in
  let engine, rpc, log, _ = make_rpc ~config () in
  let id = Rpc.issue rpc "m" in
  (* Answer after two timeouts (attempt 2 is in flight at t = 3.5). *)
  Engine.schedule engine ~delay:3.6 (fun () ->
      ignore (Rpc.complete rpc ~id));
  Engine.run engine;
  Alcotest.(check int) "three transmissions" 3 (List.length !log);
  Alcotest.(check int) "completed" 1 (Rpc.completed rpc);
  Alcotest.(check int) "no fault" 0 (Rpc.exhausted rpc)

let test_accounting_invariant () =
  let engine, rpc, _, _ = make_rpc () in
  let ids = List.init 10 (fun i -> Rpc.issue rpc (string_of_int i)) in
  (* Complete every other request; let the rest exhaust. *)
  List.iteri
    (fun i id -> if i mod 2 = 0 then ignore (Rpc.complete rpc ~id))
    ids;
  Engine.run engine;
  Alcotest.(check int) "issued" 10 (Rpc.issued rpc);
  Alcotest.(check int) "completed + exhausted + in flight" 10
    (Rpc.completed rpc + Rpc.exhausted rpc + Rpc.in_flight rpc);
  Alcotest.(check int) "drained" 0 (Rpc.in_flight rpc)

let test_dedup () =
  let d = Rpc.Dedup.create () in
  Alcotest.(check bool) "first" true (Rpc.Dedup.first d ~id:7);
  Alcotest.(check bool) "second is duplicate" false (Rpc.Dedup.first d ~id:7);
  Alcotest.(check bool) "third is duplicate" false (Rpc.Dedup.first d ~id:7);
  Alcotest.(check bool) "other id fresh" true (Rpc.Dedup.first d ~id:8);
  Alcotest.(check bool) "seen" true (Rpc.Dedup.seen d ~id:7);
  Alcotest.(check bool) "unseen" false (Rpc.Dedup.seen d ~id:9);
  Alcotest.(check int) "duplicates counted" 2 (Rpc.Dedup.duplicates d)

let prop_never_silent =
  (* Whatever subset of requests the "network" answers, every request ends
     completed or exhausted once the engine drains — none vanish. *)
  Test_support.qcheck_case ~name:"completed + exhausted = issued"
    QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 20.0))
    (fun reply_delays ->
      let engine = Engine.create () in
      let rng = Rng.create ~seed:3 in
      let rpc_ref = ref None in
      let rpc =
        Rpc.create ~engine ~rng
          ~transmit:(fun ~id:_ ~attempt:_ () -> ())
          ()
      in
      rpc_ref := Some rpc;
      List.iter
        (fun delay ->
          let id = Rpc.issue rpc () in
          (* Some delays land after exhaustion: those completions are
             rejected, the request already counted as a fault. *)
          Engine.schedule engine ~delay (fun () ->
              ignore (Rpc.complete rpc ~id)))
        reply_delays;
      Engine.run engine;
      Rpc.completed rpc + Rpc.exhausted rpc = Rpc.issued rpc
      && Rpc.in_flight rpc = 0)

(* --- Heartbeat detector --------------------------------------------------- *)

(* A loopback harness: pings are answered instantly by live peers, with a
   mutable set of "crashed" ones that never answer. *)
let make_detector ?config ~peers () =
  let engine = Engine.create () in
  let down = Hashtbl.create 8 in
  let changes = ref [] in
  let detector_ref = ref None in
  let ping ~seq peer =
    if not (Hashtbl.mem down (Pid.to_int peer)) then
      (* Answer on the next instant, like a zero-latency network. *)
      Engine.schedule engine ~delay:0.0 (fun () ->
          Heartbeat.pong (Option.get !detector_ref) ~peer ~seq)
  in
  let detector =
    Heartbeat.create ~engine ?config ~peers
      ~ping
      ~on_change:(fun p v -> changes := (Pid.to_int p, v) :: !changes)
      ()
  in
  detector_ref := Some detector;
  (engine, detector, down, changes)

let peers_of_ints l = Array.of_list (List.map Pid.unsafe_of_int l)

let test_detector_suspects_dead () =
  let config = { Heartbeat.period = 0.5; suspect_after = 3 } in
  let peers = peers_of_ints [ 0; 1; 2 ] in
  let engine, detector, down, changes = make_detector ~config ~peers () in
  Hashtbl.replace down 1 ();
  Heartbeat.start detector ~until:10.0;
  Engine.run engine;
  Alcotest.(check bool) "1 suspected" true
    (Heartbeat.suspected detector (Pid.unsafe_of_int 1));
  Alcotest.(check bool) "0 trusted" false
    (Heartbeat.suspected detector (Pid.unsafe_of_int 0));
  Alcotest.(check int) "one suspicion" 1 (Heartbeat.suspicions detector);
  Alcotest.(check (list (pair int string)))
    "change log"
    [ (1, "suspect") ]
    (List.rev_map
       (fun (p, v) -> (p, match v with `Suspect -> "suspect" | `Trust -> "trust"))
       !changes)

let test_detector_recovers () =
  let config = { Heartbeat.period = 0.5; suspect_after = 3 } in
  let peers = peers_of_ints [ 0; 1 ] in
  let engine, detector, down, _ = make_detector ~config ~peers () in
  Hashtbl.replace down 1 ();
  (* Down for 4 s (long enough to be suspected), then back. *)
  Engine.schedule engine ~delay:4.0 (fun () -> Hashtbl.remove down 1);
  Heartbeat.start detector ~until:10.0;
  Engine.run engine;
  Alcotest.(check bool) "trusted again" false
    (Heartbeat.suspected detector (Pid.unsafe_of_int 1));
  Alcotest.(check int) "one suspicion" 1 (Heartbeat.suspicions detector);
  Alcotest.(check int) "one recovery" 1 (Heartbeat.recoveries detector)

let test_detector_timing () =
  (* The suspicion lands exactly after suspect_after unanswered rounds. *)
  let config = { Heartbeat.period = 1.0; suspect_after = 4 } in
  let peers = peers_of_ints [ 0 ] in
  let engine = Engine.create () in
  let suspect_time = ref nan in
  let detector =
    Heartbeat.create ~engine ~config ~peers
      ~ping:(fun ~seq:_ _ -> ())
      ~on_change:(fun _ -> function
        | `Suspect -> suspect_time := Engine.now engine
        | `Trust -> ())
      ()
  in
  Heartbeat.start detector ~until:20.0;
  Engine.run engine;
  (* Rounds at t=0..: the ping of round k is scored missed at round k+1;
     4 misses accumulate at the round at t=4. *)
  Alcotest.(check (float 1e-9)) "suspected at t=4" 4.0 !suspect_time

let () =
  Alcotest.run "rpc"
    [
      ( "retry",
        [
          Alcotest.test_case "backoff growth and cap" `Quick
            test_backoff_growth_and_cap;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "no jitter deterministic" `Quick
            test_no_jitter_deterministic;
          Alcotest.test_case "validation" `Quick test_policy_validation;
          Alcotest.test_case "max lifetime" `Quick test_max_lifetime;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "complete cancels retries" `Quick
            test_complete_cancels_retries;
          Alcotest.test_case "exhaustion reports a fault" `Quick
            test_exhaustion_reports_fault;
          Alcotest.test_case "mid-flight completion" `Quick
            test_mid_flight_completion;
          Alcotest.test_case "accounting invariant" `Quick
            test_accounting_invariant;
          Alcotest.test_case "server dedup" `Quick test_dedup;
        ] );
      ("rpc properties", [ prop_never_silent ]);
      ( "heartbeat",
        [
          Alcotest.test_case "suspects a dead peer" `Quick
            test_detector_suspects_dead;
          Alcotest.test_case "recovers a false suspicion" `Quick
            test_detector_recovers;
          Alcotest.test_case "suspicion timing" `Quick test_detector_timing;
        ] );
    ]
