(** Global state of a simulated LessLog system: the identifier-space
    parameters, ψ, the membership status word, and one {!File_store} per
    PID slot.

    The cluster also keeps a registry of every key ever inserted. A real
    deployment has no such global table — the self-organized mechanism of
    Section 5 finds files by examining children lists — but the simulator
    uses it for integrity checking and to drive recovery; {!Self_org}
    additionally implements the paper's children-list search and the test
    suite checks both agree. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module File_store = Lesslog_storage.File_store

type t

val create : ?live:Pid.t list -> Params.t -> t
(** A cluster with the given live population ([live] defaults to every PID
    slot — the basic model of Section 2 where N = 2^m). *)

val create_with_dead_fraction :
  Params.t -> rng:Lesslog_prng.Rng.t -> fraction:float -> t
(** All slots live, then a uniform [fraction] of them marked dead — the
    configurations of Figures 6 and 8. *)

val params : t -> Params.t
val status : t -> Status_word.t
val psi : t -> Lesslog_hash.Psi.t

val live_count : t -> int

val store : t -> Pid.t -> File_store.t
(** Local storage of a node (live or dead — dead nodes keep stale state
    until {!Self_org.fail} clears it). *)

val target_of_key : t -> string -> Pid.t
(** [P(ψ(f))]: the target node slot of a key. *)

val tree_of_key : t -> string -> Ptree.t
(** The lookup tree of the key's target node. Memoized: ψ and the root
    are pure functions of the key, so the same tree value is returned on
    every call (the common repeated key costs a pointer compare). *)

val router_of_key : t -> string -> Lesslog_topology.Topology.router
(** The key's current next-hop table ({!Lesslog_topology.Topology.router}),
    revalidated against the status word's epoch. Same freshness contract
    as the router itself: fetch per walk, do not hold across membership
    changes. *)

val tree_of : t -> Pid.t -> Ptree.t
(** The lookup tree rooted at an arbitrary node. *)

val holds : t -> Pid.t -> key:string -> bool

val holder_bitset : t -> key:string -> Lesslog_bits.Packed_bits.t
(** The live-agnostic holder bitset of a key (bit [i] set iff slot [i]'s
    store holds a copy), maintained by the store observers. Read-only:
    callers test bits out of it on hot paths ({!Ops.get}'s walk) but must
    never mutate it; it stays valid across store mutations because it IS
    the index being maintained. *)

val holders : t -> key:string -> Pid.t list
(** Live nodes currently holding a copy, ascending PID. *)

val register_key : t -> string -> unit
(** Add to the key registry (done automatically by {!Ops.insert}). *)

val unregister_key : t -> string -> unit
(** Remove from the key registry (done by {!Ops.delete}). *)

val registered_keys : t -> string list

val register_coded : t -> string -> k:int -> r:int -> unit
(** Mark a base key as held in erasure-coded form with code parameters
    [(k, r)] (done by {!Ops.demote_to_coded}). While registered, the
    key has no full copies; its bytes live in [k + r] fragment entries
    under {!Ops.frag_key}-derived keys. *)

val unregister_coded : t -> string -> unit

val coded_params : t -> key:string -> (int * int) option
(** [(k, r)] when the key is currently coded. *)

val coded_keys : t -> string list
(** Base keys currently held as fragments, sorted. *)

val replica_count : t -> key:string -> int
(** Number of live replicated (non-inserted) copies. *)

val total_copies : t -> key:string -> int
(** Live copies of any origin. *)
