(** One entry point per figure of the paper's evaluation (Section 6).

    The setup mirrors the paper: [m = 10] (a 1024-slot identifier space),
    [b = 0], per-node capacity 100 requests/s, a single hot file, and
    total demand swept from 1,000 to 20,000 requests/s. Each experiment
    returns one {!Lesslog_report.Series.t} per curve of the figure; y is
    the number of replicas created to reach a load-balanced system.

    Every point carries an independently seeded RNG, so sweeps are
    reproducible and safe to parallelize over domains. *)

module Series = Lesslog_report.Series

type config = {
  m : int;
  capacity : float;  (** Max requests/s a node may serve. *)
  rates : float list;  (** Total-demand sweep (requests/s). *)
  trials : int;  (** Runs averaged per point (fresh seeds). *)
  seed : int;
  hot_fraction : float;  (** Locality model: fraction of hot nodes. *)
  hot_share : float;  (** Locality model: demand share of hot nodes. *)
  domains : int;  (** Worker domains for the sweep (1 = sequential). *)
}

val default : config
(** The paper's parameters: m = 10, capacity = 100, rates
    1,000–20,000 step 1,000, 3 trials, hot 20%/80%. *)

val quick : config
(** A scaled-down configuration (m = 7, 5 sweep points, 1 trial) for smoke
    tests and CI. *)

type demand_model = Even | Locality

val hot_file : string
(** The key used for the single hot file in every figure. *)

val one_trial :
  config ->
  rng:Lesslog_prng.Rng.t ->
  dead_fraction:float ->
  demand_model:demand_model ->
  policy:Lesslog_flow.Policy.t ->
  rate:float ->
  float
(** One run: fresh cluster, [dead_fraction] of the slots killed, one file
    inserted, demand applied, balanced; returns the replica count. *)

val replicas_to_balance :
  config ->
  rng:Lesslog_prng.Rng.t ->
  dead_fraction:float ->
  demand_model:demand_model ->
  policy:Lesslog_flow.Policy.t ->
  rate:float ->
  float
(** {!one_trial} averaged over [config.trials] runs seeded from [rng]. *)

val fig5 : ?config:config -> unit -> Series.t list
(** Figure 5: evenly-distributed load; one series per policy
    (log-based, LessLog, random). *)

val fig6 : ?config:config -> unit -> Series.t list
(** Figure 6: evenly-distributed load on LessLog with 10%, 20% and 30%
    dead nodes. *)

val fig7 : ?config:config -> unit -> Series.t list
(** Figure 7: the locality model (80% of requests from 20% of nodes);
    one series per policy. *)

val fig8 : ?config:config -> unit -> Series.t list
(** Figure 8: the locality model on LessLog with dead nodes. *)

val render :
  title:string -> x_label:string -> y_label:string -> Series.t list -> string
(** Table plus ASCII plot, ready to print. *)

(** {1 DES m-sweep}

    Scale-up runs of the full discrete-event simulation on the packed
    event core, from the paper's m = 10 (1,024 slots) up to m = 16
    (65,536 slots). Demand is uniform and scales with the number of live
    nodes, so events per simulated second grow with the identifier
    space. *)

type des_point = {
  des_m : int;  (** Identifier-space exponent for this row. *)
  nodes : int;  (** Live nodes at the start of the run. *)
  events : int;  (** Engine events executed. *)
  secs : float;  (** CPU seconds ([Sys.time]) for the run. *)
  events_per_sec : float;  (** [events /. secs]; the headline number. *)
  served : int;
  faults : int;
  replicas : int;  (** Replicas created by flow balancing. *)
  messages : int;
  p50_latency : float;  (** Sketch-histogram quantiles (0 if unserved). *)
  p99_latency : float;
  mean_hops : float;
}

val des_point :
  m:int ->
  rate_per_node:float ->
  duration:float ->
  capacity:float ->
  seed:int ->
  des_point
(** One {!Lesslog_des.Des_sim} run at identifier-space exponent [m] with
    total demand [rate_per_node * live_nodes], timed with [Sys.time]. *)

val des_sweep :
  ?ms:int list ->
  ?rate_per_node:float ->
  ?duration:float ->
  ?capacity:float ->
  ?seed:int ->
  unit ->
  des_point list
(** {!des_point} for each exponent in [ms] (default 10–16, 2 req/s per
    node, 5 simulated seconds, capacity 100, seed 42). *)

val render_des_sweep : des_point list -> string
(** One table row per sweep point, ready to print. *)

(** {1 S2: domain-parallel sharded DES}

    The same scale-up protocol on {!Lesslog_des.Pdes_sim}: one shard per
    binomial subtree, deterministic at any domain count. The point
    carries the run digest so sweeps can double as determinism checks,
    plus the mean-field replica oracle for steady-state validation. *)

type pdes_point = {
  pdes_m : int;  (** Identifier-space exponent for this row. *)
  pdes_b : int;  (** Subtree exponent; [2^b] shards. *)
  pdes_domains : int;  (** Worker domains the run used (speed only). *)
  pdes_nodes : int;  (** Live nodes at the start of the run. *)
  pdes_events : int;  (** Engine events executed, summed over shards. *)
  pdes_secs : float;  (** Wall CPU seconds ([Sys.time]) for the run. *)
  pdes_events_per_sec : float;
  pdes_served : int;
  pdes_faults : int;
  pdes_migrations : int;  (** Requests handed to a sibling subtree. *)
  pdes_replicas_end : int;  (** Copies held across subtrees at the end. *)
  pdes_oracle_replicas : float;
      (** Mean-field steady-state prediction, {!pdes_oracle_replicas}. *)
  pdes_messages : int;
  pdes_cross_sends : int;  (** Mailbox messages between shards. *)
  pdes_epochs : int;  (** Epoch windows of the sharded engine. *)
  pdes_phases : int;
      (** Pool dispatches; [epochs / phases] is the epoch-fusion factor. *)
  pdes_digest : int;  (** Domain-count-invariant run digest. *)
  pdes_p50_latency : float;
  pdes_p99_latency : float;
}

val pdes_oracle_replicas : total_rate:float -> capacity:float -> float
(** Mean-field steady-state replica count for one hot file under Poisson
    demand: flow balancing spawns copies until per-copy load fits under
    [capacity], so the population settles near [total_rate /. capacity]
    (never below the 1 copy insertion guarantees per subtree's worth of
    demand). The simulated end-state should land within a small constant
    factor — the acceptance gate checks the ratio, not equality, because
    cooldowns and discrete copies quantise the approach.
    @raise Invalid_argument if [capacity <= 0]. *)

val pdes_point :
  ?b:int ->
  ?domains:int ->
  ?fuse:bool ->
  ?faults:Lesslog_workload.Faults.plan ->
  m:int ->
  rate_per_node:float ->
  duration:float ->
  capacity:float ->
  seed:int ->
  unit ->
  pdes_point
(** One {!Lesslog_des.Pdes_sim} run at exponent [m] with [2^b] subtrees
    (default 2, i.e. 4 shards) on [domains] worker domains (default 1),
    total demand [rate_per_node * live_nodes], timed with [Sys.time].
    [fuse] and [faults] pass through to {!Lesslog_des.Pdes_sim.run}.
    The run seed is derived as [hash63 "seed|pdes|m"], so rows are
    independent and reproducible point-wise. *)

val pdes_fault_point :
  ?b:int ->
  ?domains:int ->
  ?fuse:bool ->
  m:int ->
  rate_per_node:float ->
  duration:float ->
  capacity:float ->
  seed:int ->
  unit ->
  pdes_point
(** {!pdes_point} under a churn-heavy generated fault plan (crashes of
    up to a quarter of the population with 50% restarts, two loss
    bursts, no partitions) derived from [hash63 "seed|pdesfault|m"] —
    the workload that exercises barrier globals and cross-epoch traffic
    rather than the embarrassingly parallel steady state. *)

val pdes_sweep :
  ?ms:int list ->
  ?b:int ->
  ?domains:int ->
  ?rate_per_node:float ->
  ?duration:float ->
  ?capacity:float ->
  ?seed:int ->
  unit ->
  pdes_point list
(** {!pdes_point} for each exponent in [ms] (defaults mirror
    {!des_sweep}). *)

val render_pdes_sweep : pdes_point list -> string
(** One table row per sweep point, ready to print. *)

(** {1 Adaptive replication under time-varying demand}

    The dynamic-RF competitor ({!Lesslog_policy.Rf_policy}) against
    LessLog's native logless placement, on the sharded simulator, with a
    per-class mean-field oracle to validate steady states. *)

type demand_class = {
  class_files : int;  (** Files in the class. *)
  class_rate : float;  (** Aggregate demand of the class, requests/s. *)
}

val adaptive_oracle_replicas :
  classes:demand_class list -> capacity:float -> float
(** Per-class mean-field steady-state replica count:
    [sum_c m_c *. max 1 (R_c /. (m_c *. capacity))] — each file needs
    enough copies to absorb its class share at [capacity] per copy,
    never below the one copy insertion guarantees. One class with one
    file degenerates to {!pdes_oracle_replicas}. Empty classes
    contribute nothing.
    @raise Invalid_argument if [capacity <= 0]. *)

val adaptive_oracle_loss :
  total_rate:float -> replicas:float -> capacity:float -> float
(** Fluid upper bound on the steady-state loss fraction:
    [max 0 (1 - replicas *. capacity /. total_rate)] — zero once the
    population reaches the oracle. *)

type adaptive_point = {
  ad_label : string;  (** ["lesslog"] or ["dynamic-rf"]. *)
  ad_m : int;
  ad_rate : float;  (** Total offered demand, requests/s. *)
  ad_requests : int;
  ad_served : int;
  ad_faults : int;
  ad_loss : float;  (** [faults /. requests] (0 when no requests). *)
  ad_replicas_end : int;
  ad_rf_end : int;  (** Final replica factor (0 for the native policy). *)
  ad_oracle_replicas : float;
  ad_oracle_loss : float;  (** The fluid bound at [ad_replicas_end]. *)
  ad_digest : int;  (** Domain-count-invariant run digest. *)
  ad_events : int;
  ad_secs : float;
}

val adaptive_policy :
  ?config:Lesslog_policy.Rf_policy.config ->
  params:Lesslog_id.Params.t ->
  capacity:float ->
  unit ->
  Lesslog_policy.Rf_policy.t
(** A fresh single-file policy instance sized to [params]: 0.25 s
    intervals, capacity-aware classification, RF capped at the slot
    count, starting from the per-subtree insertion population. *)

val adaptive_point :
  ?b:int ->
  ?domains:int ->
  ?policy_config:Lesslog_policy.Rf_policy.config ->
  dynamic:bool ->
  m:int ->
  rate:float ->
  duration:float ->
  capacity:float ->
  seed:int ->
  unit ->
  adaptive_point
(** One {!Lesslog_des.Pdes_sim} run at total demand [rate]: native
    logless placement when [dynamic] is false, the dynamic-RF policy
    (via {!adaptive_policy}, or [policy_config]) when true. The run seed
    is derived from [seed], [m], [rate] and [dynamic], so points are
    independent and reproducible; [domains] is a speed knob that leaves
    [ad_digest] unchanged. *)

val adaptive_sweep :
  ?b:int ->
  ?domains:int ->
  ?m:int ->
  ?duration:float ->
  ?capacity:float ->
  ?seed:int ->
  ?rates:float list ->
  unit ->
  adaptive_point list
(** The replicas-vs-request-rate curve family: for each rate (default
    500/1,000/2,000 requests/s at m = 10, 8 simulated seconds), one
    native point and one dynamic-RF point, in that order. *)

val render_adaptive : adaptive_point list -> string
(** One table row per point, ready to print. *)

type adaptive_step = {
  st_i : int;  (** Interval index. *)
  st_total : float;  (** Catalogue demand in force, requests/s. *)
  st_hot : string;  (** Most-demanded file this interval. *)
  st_fluid_replicas : int;
      (** Total copies after {!Lesslog_flow.Multi_balance} on a fresh
          cluster — the omniscient balancer's steady state. *)
  st_rf_replicas : int;
      (** Total copies the dynamic-RF policy prescribes after closing
          this interval (replica factors summed over the catalogue). *)
  st_oracle : float;  (** {!adaptive_oracle_replicas}, one class/file. *)
}

val adaptive_timeline :
  ?m:int ->
  ?capacity:float ->
  ?seed:int ->
  ?files:int ->
  ?intervals:int ->
  ?shift_every:int ->
  ?flash_factor:float ->
  unit ->
  adaptive_step list
(** The multi-file experiment: a hot/warm/cold
    {!Lesslog_workload.Catalog.timeline} (popularity re-dealt every
    [shift_every] intervals, one flash crowd of [flash_factor]x in the
    middle) played against both sides — per interval, the fluid
    multi-file balancer's replica population versus the total the
    dynamic-RF policy prescribes from the same demand (file identity
    tracked by name across popularity shifts). Defaults: m = 8, 8
    files, 12 one-second intervals, shift every 4, flash 25x (a cold
    file's demand must clear one node's capacity to force replicas). *)

val render_adaptive_timeline : adaptive_step list -> string
(** One table row per interval, ready to print. *)

(** {1 Erasure-coded cold tier}

    Storage amplification and repair traffic of the hybrid
    replicated/coded storage stack against full replication, on the
    adaptive-lifecycle timeline (flash crowd, long idle stretch, a
    mid-calm double node failure, re-heat). Both sides run the same
    dynamic-RF policy and the same {!Lesslog_des.Des_sim} byte ledger;
    the baseline simply never demotes ([demote_after = max_int]). *)

type coldtier_point = {
  ct_label : string;  (** ["full"] or ["hybrid"]. *)
  ct_requests : int;
  ct_served : int;
  ct_faults : int;
  ct_loss : float;  (** [faults /. requests] (0 when no requests). *)
  ct_demotions : int;
  ct_promotions : int;
  ct_fragment_repairs : int;
  ct_coded_serves : int;
  ct_mean_bytes : float;  (** Time-averaged stored bytes over the run. *)
  ct_amplification : float;  (** [ct_mean_bytes /. file_bytes]. *)
  ct_bytes_moved : int;
  ct_repair_bytes : int;
  ct_bytes_end : int;
  ct_lost : bool;  (** The coded payload became unrecoverable. *)
  ct_secs : float;
}

val coldtier_point :
  ?m:int ->
  ?capacity:float ->
  ?seed:int ->
  ?peak:float ->
  ?peak_duration:float ->
  ?calm_duration:float ->
  ?code_k:int ->
  ?code_r:int ->
  ?file_bytes:int ->
  ?rf_min:int ->
  hybrid:bool ->
  unit ->
  coldtier_point
(** One {!Lesslog_des.Des_sim.run_scenario} pass over the three-phase
    lifecycle (peak [peak_duration] at [peak] req/s, idle
    [calm_duration], peak again) with the capacity-aware dynamic-RF
    policy at a durability floor of [rf_min] copies (default 3): the
    hybrid side arms the [(code_k, code_r)] cold tier with
    [demote_after = 2], the baseline runs the identical configuration
    with demotion disarmed. Two fragment-holding nodes fail mid-calm so
    both sides pay a failure-triggered repair. Defaults: m = 10, 500
    req/s peaks of 1.5 s, 12 s of calm, a (10, 4) code over 1 MiB. *)

val coldtier_run :
  ?m:int ->
  ?capacity:float ->
  ?seed:int ->
  ?peak:float ->
  ?peak_duration:float ->
  ?calm_duration:float ->
  ?code_k:int ->
  ?code_r:int ->
  ?file_bytes:int ->
  ?rf_min:int ->
  unit ->
  coldtier_point list
(** The pair [[full; hybrid]] at identical parameters and run seed. *)

val render_coldtier : coldtier_point list -> string
(** One table row per point, ready to print. *)

val coldtier_pdes :
  ?m:int ->
  ?b:int ->
  ?domains:int ->
  ?rate:float ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  Lesslog_des.Pdes_sim.result
(** One sharded-simulator run with the cold tier armed at
    [demote_after = 1] under trickle demand (default 8 req/s over
    [2^m] nodes): empty policy intervals classify Cold and demote,
    bursts promote — several full tier cycles, all inside barrier
    globals, so {!Lesslog_des.Pdes_sim.result.digest} and the cold
    ledger must be bit-identical at any [domains]. *)
