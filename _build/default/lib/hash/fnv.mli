(** FNV-1a 64-bit hashing.

    The paper's hash function ψ only needs to map a file's unique name
    (e.g. its URL) to a well-spread identifier; FNV-1a is a standard
    dependency-free choice with good avalanche behaviour on short keys. *)

val hash64 : string -> int64
(** FNV-1a over the full string. *)

val hash63 : string -> int
(** Non-negative projection of {!hash64} (the low 62 bits). *)

val fold_int64 : int64 -> bits:int -> int
(** XOR-fold a 64-bit hash down to [bits] bits — preserves entropy better
    than plain truncation for small identifier spaces. *)
