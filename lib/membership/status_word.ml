open Lesslog_id
module Rng = Lesslog_prng.Rng
module Packed_bits = Lesslog_bits.Packed_bits

type t = {
  params : Params.t;
  bits : Packed_bits.t;
  mutable live : int;
  mutable epoch : int;
  uid : int;
}

(* Unique per status word, never reused: the key derived caches (the
   topology cache) index by. Atomic because experiments fan out across
   domains (Lesslog_parallel.Par). *)
let next_uid = Atomic.make 0

let create params ~initially_live =
  let space = Params.space params in
  {
    params;
    bits =
      (if initially_live then Packed_bits.create_full space
       else Packed_bits.create space);
    live = (if initially_live then space else 0);
    epoch = 0;
    uid = Atomic.fetch_and_add next_uid 1;
  }

let params t = t.params
let epoch t = t.epoch
let uid t = t.uid
let live_bits t = t.bits

let is_live t p = Packed_bits.get t.bits (Pid.to_int p)
let is_dead t p = not (is_live t p)

let set_live t p =
  if not (is_live t p) then begin
    Packed_bits.set t.bits (Pid.to_int p);
    t.live <- t.live + 1;
    t.epoch <- t.epoch + 1
  end

let set_dead t p =
  if is_live t p then begin
    Packed_bits.clear t.bits (Pid.to_int p);
    t.live <- t.live - 1;
    t.epoch <- t.epoch + 1
  end

let of_live_list params pids =
  let t = create params ~initially_live:false in
  List.iter (set_live t) pids;
  t

let copy t =
  {
    params = t.params;
    bits = Packed_bits.copy t.bits;
    live = t.live;
    epoch = 0;
    uid = Atomic.fetch_and_add next_uid 1;
  }

let live_count t = t.live
let dead_count t = Params.space t.params - t.live

let fold_live t ~init ~f =
  Packed_bits.fold_set t.bits ~init ~f:(fun acc i -> f acc (Pid.unsafe_of_int i))

let iter_live t f = Packed_bits.iter_set t.bits (fun i -> f (Pid.unsafe_of_int i))

let live_pids t = List.rev (fold_live t ~init:[] ~f:(fun acc p -> p :: acc))

let dead_pids t =
  let acc = ref [] in
  Packed_bits.iter_clear t.bits (fun i -> acc := Pid.unsafe_of_int i :: !acc);
  List.rev !acc

let live_array t =
  let a = Array.make t.live (Pid.unsafe_of_int 0) in
  let j = ref 0 in
  iter_live t (fun p ->
      a.(!j) <- p;
      incr j);
  a

let first_live_at_or_below t p =
  match Packed_bits.first_set_at_or_below t.bits (Pid.to_int p) with
  | -1 -> None
  | i -> Some (Pid.unsafe_of_int i)

let first_live_in_range t ~lo ~hi =
  match
    Packed_bits.first_set_in_range t.bits ~lo:(Pid.to_int lo)
      ~hi:(Pid.to_int hi)
  with
  | -1 -> None
  | i -> Some (Pid.unsafe_of_int i)

let nth_live t n =
  match Packed_bits.nth_set t.bits n with
  | -1 -> None
  | i -> Some (Pid.unsafe_of_int i)

let nth_dead t n =
  match Packed_bits.nth_clear t.bits n with
  | -1 -> None
  | i -> Some (Pid.unsafe_of_int i)

(* Rejection sampling is cheap when the wanted population is dense, which
   holds for every experiment in the paper; after a few misses we switch
   to exact rank/select, which costs one word scan. *)
let max_sample_attempts = 16

let random_live t rng =
  if t.live = 0 then None
  else begin
    let space = Params.space t.params in
    let rec try_random k =
      if k = 0 then nth_live t (Rng.int rng t.live)
      else
        let i = Rng.int rng space in
        if Packed_bits.get t.bits i then Some (Pid.unsafe_of_int i)
        else try_random (k - 1)
    in
    try_random max_sample_attempts
  end

let random_dead t rng =
  let dead = dead_count t in
  if dead = 0 then None
  else begin
    let space = Params.space t.params in
    let rec try_random k =
      if k = 0 then nth_dead t (Rng.int rng dead)
      else
        let i = Rng.int rng space in
        if not (Packed_bits.get t.bits i) then Some (Pid.unsafe_of_int i)
        else try_random (k - 1)
    in
    try_random max_sample_attempts
  end

let kill_fraction t rng ~fraction =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Status_word.kill_fraction";
  let live = live_array t in
  let k = int_of_float (Float.round (fraction *. float_of_int (Array.length live))) in
  let victims = Rng.sample_without_replacement rng ~k live in
  Array.iter (set_dead t) victims;
  Array.to_list victims

let equal a b = a.params = b.params && Packed_bits.equal a.bits b.bits

let pp fmt t =
  Format.fprintf fmt "status_word(live=%d/%d)" t.live (Params.space t.params)
