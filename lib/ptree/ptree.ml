open Lesslog_id
module Bitops = Lesslog_bits.Bitops
module Vtree = Lesslog_vtree.Vtree

type t = { params : Params.t; root : Pid.t; comp : int }

let make params ~root =
  { params; root; comp = Bitops.complement ~width:(Params.m params) (Pid.to_int root) }

let params t = t.params
let root t = t.root
let comp t = t.comp

let vid_of_pid t p = Vid.unsafe_of_int (Pid.to_int p lxor t.comp)
let pid_of_vid t v = Pid.unsafe_of_int (Vid.to_int v lxor t.comp)

let is_root t p = Pid.equal p t.root

let parent t p =
  match Vtree.parent t.params (vid_of_pid t p) with
  | None -> None
  | Some v -> Some (pid_of_vid t v)

let children t p =
  List.map (pid_of_vid t) (Vtree.children t.params (vid_of_pid t p))

let child_count t p = Vtree.child_count t.params (vid_of_pid t p)
let offspring_count t p = Vtree.offspring_count t.params (vid_of_pid t p)
let depth t p = Vtree.depth t.params (vid_of_pid t p)

let path_to_root t p =
  List.map (pid_of_vid t) (Vtree.path_to_root t.params (vid_of_pid t p))

let is_ancestor t ~ancestor p =
  Vtree.is_ancestor t.params ~ancestor:(vid_of_pid t ancestor) (vid_of_pid t p)

let iter_subtree t p f =
  Vtree.iter_subtree t.params (vid_of_pid t p) (fun v -> f (pid_of_vid t v))

let pp fmt t =
  let rec render indent p =
    let v = vid_of_pid t p in
    Format.fprintf fmt "%s P(%a) vid=%a@\n" (String.make indent ' ') Pid.pp p
      (Vid.pp t.params) v;
    List.iter (render (indent + 2)) (children t p)
  in
  Format.fprintf fmt "lookup tree of P(%a):@\n" Pid.pp t.root;
  render 0 t.root
