lib/storage/access_counter.mli:
