lib/ptree/ptree.mli: Format Lesslog_id Params Pid Vid
