open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Rng = Lesslog_prng.Rng

type t = { rates : float array; total : float }

let of_rates rates =
  { rates; total = Array.fold_left ( +. ) 0.0 rates }

let uniform status ~total =
  let params = Status_word.params status in
  let live = Status_word.live_count status in
  let rates = Array.make (Params.space params) 0.0 in
  if live > 0 then begin
    let per_node = total /. float_of_int live in
    Status_word.iter_live status (fun p -> rates.(Pid.to_int p) <- per_node)
  end;
  { rates; total = (if live = 0 then 0.0 else total) }

let locality ?(hot_fraction = 0.2) ?(hot_share = 0.8) status ~rng ~total =
  if hot_fraction < 0.0 || hot_fraction > 1.0 then
    invalid_arg "Demand.locality: hot_fraction";
  if hot_share < 0.0 || hot_share > 1.0 then
    invalid_arg "Demand.locality: hot_share";
  let params = Status_word.params status in
  let live = Status_word.live_array status in
  let n = Array.length live in
  let rates = Array.make (Params.space params) 0.0 in
  if n = 0 then { rates; total = 0.0 }
  else begin
    let hot_count =
      max 1 (int_of_float (Float.round (hot_fraction *. float_of_int n)))
    in
    let hot_count = min hot_count n in
    let hot = Rng.sample_without_replacement rng ~k:hot_count live in
    let cold_count = n - hot_count in
    let hot_rate = total *. hot_share /. float_of_int hot_count in
    let cold_rate =
      if cold_count = 0 then 0.0
      else total *. (1.0 -. hot_share) /. float_of_int cold_count
    in
    Array.iter (fun p -> rates.(Pid.to_int p) <- cold_rate) live;
    Array.iter (fun p -> rates.(Pid.to_int p) <- hot_rate) hot;
    (* When every node is hot the cold share has nowhere to go; keep the
       accounted total exact by rescaling. The tolerance is relative to
       [total]: an absolute epsilon misfires for large totals (where
       rounding alone exceeds it, forcing a useless rescale every call)
       and never fires for tiny ones (where the discrepancy can be 100%
       of the mass yet under the epsilon). *)
    let accounted = Array.fold_left ( +. ) 0.0 rates in
    if
      accounted > 0.0
      && Float.abs (accounted -. total) > 1e-12 *. Float.max 1.0 total
    then begin
      let k = total /. accounted in
      Array.iteri (fun i r -> rates.(i) <- r *. k) rates
    end;
    { rates; total }
  end

let hotspot status ~at ~total =
  let params = Status_word.params status in
  if Status_word.is_dead status at then invalid_arg "Demand.hotspot: dead node";
  let rates = Array.make (Params.space params) 0.0 in
  rates.(Pid.to_int at) <- total;
  { rates; total }

let rate t p = t.rates.(Pid.to_int p)
let total t = t.total

let scale t ~factor =
  { rates = Array.map (fun r -> r *. factor) t.rates; total = t.total *. factor }
