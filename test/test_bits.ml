module Bitops = Lesslog_bits.Bitops
module Packed_bits = Lesslog_bits.Packed_bits

let check = Alcotest.(check int)

let test_mask () =
  check "mask 1" 1 (Bitops.mask ~width:1);
  check "mask 4" 15 (Bitops.mask ~width:4);
  check "mask 10" 1023 (Bitops.mask ~width:10)

let test_complement () =
  check "comp 4-bit of 4" 0b1011 (Bitops.complement ~width:4 4);
  check "comp 4-bit of 0" 0b1111 (Bitops.complement ~width:4 0);
  check "comp 4-bit of 15" 0 (Bitops.complement ~width:4 15);
  check "comp involutive" 9 (Bitops.complement ~width:4 (Bitops.complement ~width:4 9))

let test_popcount () =
  check "popcount 0" 0 (Bitops.popcount 0);
  check "popcount 1" 1 (Bitops.popcount 1);
  check "popcount 0b1011" 3 (Bitops.popcount 0b1011);
  check "popcount max_int" 62 (Bitops.popcount max_int)

let test_floor_log2 () =
  check "log2 1" 0 (Bitops.floor_log2 1);
  check "log2 2" 1 (Bitops.floor_log2 2);
  check "log2 3" 1 (Bitops.floor_log2 3);
  check "log2 1024" 10 (Bitops.floor_log2 1024);
  check "log2 max_int" 61 (Bitops.floor_log2 max_int);
  Alcotest.check_raises "log2 0" (Invalid_argument "Bitops.floor_log2")
    (fun () -> ignore (Bitops.floor_log2 0))

let test_leading_ones () =
  check "all ones" 4 (Bitops.leading_ones ~width:4 0b1111);
  check "1110" 3 (Bitops.leading_ones ~width:4 0b1110);
  check "1101" 2 (Bitops.leading_ones ~width:4 0b1101);
  check "1011" 1 (Bitops.leading_ones ~width:4 0b1011);
  check "0111" 0 (Bitops.leading_ones ~width:4 0b0111);
  check "0000" 0 (Bitops.leading_ones ~width:4 0)

let test_highest_zero_bit () =
  Alcotest.(check (option int)) "1111" None (Bitops.highest_zero_bit ~width:4 0b1111);
  Alcotest.(check (option int)) "1101" (Some 1) (Bitops.highest_zero_bit ~width:4 0b1101);
  Alcotest.(check (option int)) "0111" (Some 3) (Bitops.highest_zero_bit ~width:4 0b0111);
  Alcotest.(check (option int)) "0000" (Some 3) (Bitops.highest_zero_bit ~width:4 0)

let test_bit_ops () =
  Alcotest.(check bool) "test set" true (Bitops.test_bit 0b100 2);
  Alcotest.(check bool) "test clear" false (Bitops.test_bit 0b100 1);
  check "set" 0b110 (Bitops.set_bit 0b100 1);
  check "set idempotent" 0b100 (Bitops.set_bit 0b100 2);
  check "clear" 0b100 (Bitops.clear_bit 0b110 1);
  check "clear idempotent" 0b110 (Bitops.clear_bit 0b110 0)

let test_trailing_zeros () =
  check "tz 1" 0 (Bitops.trailing_zeros 1);
  check "tz 8" 3 (Bitops.trailing_zeros 8);
  check "tz 12" 2 (Bitops.trailing_zeros 12)

let test_field_extraction () =
  (* Subtree id/vid split of the fault-tolerant model: m=4, b=2. *)
  check "low bits" 0b10 (Bitops.low_bits ~width:2 0b1110);
  check "high bits" 0b11 (Bitops.high_bits ~total:4 ~low:2 0b1110);
  check "splice" 0b1110 (Bitops.splice ~total:4 ~low:2 ~high:0b11 0b10)

let test_binary_string () =
  Alcotest.(check string) "vid rendering" "1011" (Bitops.to_binary_string ~width:4 0b1011);
  Alcotest.(check string) "padded" "0001" (Bitops.to_binary_string ~width:4 1)

(* Properties ---------------------------------------------------------- *)

let gen_width_value =
  QCheck2.Gen.(
    int_range 1 20 >>= fun width ->
    int_range 0 (Bitops.mask ~width) >>= fun v -> return (width, v))

let prop_complement_involutive =
  Test_support.qcheck_case ~name:"complement involutive" gen_width_value
    (fun (width, v) ->
      Bitops.complement ~width (Bitops.complement ~width v) = v)

let prop_popcount_split =
  Test_support.qcheck_case ~name:"popcount v + popcount ~v = width"
    gen_width_value (fun (width, v) ->
      Bitops.popcount v + Bitops.popcount (Bitops.complement ~width v) = width)

let prop_leading_ones_bound =
  Test_support.qcheck_case ~name:"leading_ones bounded by popcount"
    gen_width_value (fun (width, v) ->
      let lo = Bitops.leading_ones ~width v in
      lo >= 0 && lo <= Bitops.popcount v)

let prop_splice_inverse =
  Test_support.qcheck_case ~name:"splice inverts high/low split"
    QCheck2.Gen.(
      int_range 2 16 >>= fun total ->
      int_range 1 (total - 1) >>= fun low ->
      int_range 0 (Bitops.mask ~width:total) >>= fun v -> return (total, low, v))
    (fun (total, low, v) ->
      let high = Bitops.high_bits ~total ~low v in
      let lowv = Bitops.low_bits ~width:low v in
      Bitops.splice ~total ~low ~high lowv = v)

let prop_floor_log2 =
  Test_support.qcheck_case ~name:"floor_log2 bounds"
    QCheck2.Gen.(int_range 1 max_int)
    (fun x ->
      let l = Bitops.floor_log2 x in
      x lsr l = 1)

(* Packed bitsets ------------------------------------------------------- *)

let members t =
  let acc = ref [] in
  Packed_bits.iter_set t (fun i -> acc := i :: !acc);
  List.rev !acc

let non_members t =
  let acc = ref [] in
  Packed_bits.iter_clear t (fun i -> acc := i :: !acc);
  List.rev !acc

let test_packed_basics () =
  let t = Packed_bits.create 124 in
  check "empty count" 0 (Packed_bits.count t);
  (* Word boundaries for 62-bit words: 61|62 and 123 (tail). *)
  List.iter (Packed_bits.set t) [ 0; 61; 62; 123 ];
  check "count" 4 (Packed_bits.count t);
  Alcotest.(check (list int)) "members" [ 0; 61; 62; 123 ] (members t);
  Alcotest.(check bool) "get 61" true (Packed_bits.get t 61);
  Alcotest.(check bool) "get 60" false (Packed_bits.get t 60);
  Packed_bits.clear t 61;
  Alcotest.(check (list int)) "after clear" [ 0; 62; 123 ] (members t);
  Packed_bits.clear_all t;
  check "cleared" 0 (Packed_bits.count t)

let test_packed_full () =
  (* space = 2^m exactly fills words only when 62 | space: check both a
     power of two (1024 = 16*62 + 32: partial tail) and a multiple. *)
  List.iter
    (fun len ->
      let t = Packed_bits.create_full len in
      check (Printf.sprintf "full count %d" len) len (Packed_bits.count t);
      Alcotest.(check bool) "last set" true (Packed_bits.get t (len - 1));
      check "nth_clear overflow" (-1) (Packed_bits.nth_clear t 0);
      check "first above" 0 (Packed_bits.first_set_at_or_above t 0))
    [ 1; 62; 124; 1024; 4096 ]

let test_packed_selects () =
  let t = Packed_bits.create 1024 in
  List.iter (Packed_bits.set t) [ 5; 100; 700; 1023 ];
  check "below 1023" 1023 (Packed_bits.first_set_at_or_below t 1023);
  check "below 1022" 700 (Packed_bits.first_set_at_or_below t 1022);
  check "below 699" 100 (Packed_bits.first_set_at_or_below t 699);
  check "below 4" (-1) (Packed_bits.first_set_at_or_below t 4);
  check "above 0" 5 (Packed_bits.first_set_at_or_above t 0);
  check "above 701" 1023 (Packed_bits.first_set_at_or_above t 701);
  check "range empty" (-1) (Packed_bits.first_set_in_range t ~lo:101 ~hi:699);
  check "range hit" 700 (Packed_bits.first_set_in_range t ~lo:101 ~hi:700);
  check "range inverted" (-1) (Packed_bits.first_set_in_range t ~lo:9 ~hi:3);
  check "nth 0" 5 (Packed_bits.nth_set t 0);
  check "nth 2" 700 (Packed_bits.nth_set t 2);
  check "nth overflow" (-1) (Packed_bits.nth_set t 4);
  check "nth_clear 0" 0 (Packed_bits.nth_clear t 0);
  check "nth_clear 5" 6 (Packed_bits.nth_clear t 5)

let test_packed_index_arithmetic () =
  (* The magic-number division by 62 must agree with real division for
     every index in use. nth_set/iter_set compute positions independently
     of word_of_index, so a single-bit roundtrip catches a misplaced
     word. Sweep all indices of a multi-word set plus boundaries. *)
  let len = 5 * 62 + 17 in
  let t = Packed_bits.create len in
  for i = 0 to len - 1 do
    Packed_bits.clear_all t;
    Packed_bits.set t i;
    Alcotest.(check (list int))
      (Printf.sprintf "single bit %d" i)
      [ i ] (members t);
    check "nth_set roundtrip" i (Packed_bits.nth_set t 0)
  done;
  (* Large indices: spot-check the magic constant far beyond any m. *)
  let big = Packed_bits.create 1_000_000 in
  List.iter
    (fun i ->
      Packed_bits.set big i;
      Alcotest.(check bool) (Printf.sprintf "big %d" i) true
        (Packed_bits.get big i))
    [ 0; 61; 62; 999_998; 999_999; 123_456; 619_999 ];
  check "big count" 7 (Packed_bits.count big)

let test_packed_inter () =
  let a = Packed_bits.create 200 and b = Packed_bits.create 200 in
  List.iter (Packed_bits.set a) [ 1; 63; 64; 150; 199 ];
  List.iter (Packed_bits.set b) [ 0; 63; 150; 160; 199 ];
  let acc = ref [] in
  Packed_bits.iter_inter a b (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "intersection" [ 63; 150; 199 ] (List.rev !acc)

(* Model-based property: a packed set behaves like a bool array. *)
let prop_packed_model =
  Test_support.qcheck_case ~name:"packed_bits matches bool-array model"
    QCheck2.Gen.(
      int_range 1 300 >>= fun len ->
      list_size (int_range 0 120) (pair bool (int_range 0 (len - 1)))
      >>= fun ops -> return (len, ops))
    (fun (len, ops) ->
      let t = Packed_bits.create len in
      let model = Array.make len false in
      List.iter
        (fun (set, i) ->
          if set then begin
            Packed_bits.set t i;
            model.(i) <- true
          end
          else begin
            Packed_bits.clear t i;
            model.(i) <- false
          end)
        ops;
      let model_members =
        List.filter (fun i -> model.(i)) (List.init len Fun.id)
      in
      let model_clear =
        List.filter (fun i -> not model.(i)) (List.init len Fun.id)
      in
      let below i =
        let rec go j = if j < 0 then -1 else if model.(j) then j else go (j - 1) in
        go i
      in
      let above i =
        let rec go j = if j >= len then -1 else if model.(j) then j else go (j + 1) in
        go i
      in
      members t = model_members
      && non_members t = model_clear
      && Packed_bits.count t = List.length model_members
      && List.for_all (fun i -> Packed_bits.get t i = model.(i))
           (List.init len Fun.id)
      && List.for_all
           (fun i -> Packed_bits.first_set_at_or_below t i = below i)
           (List.init len Fun.id)
      && List.for_all
           (fun i -> Packed_bits.first_set_at_or_above t i = above i)
           (List.init len Fun.id)
      && List.for_all
           (fun n ->
             Packed_bits.nth_set t n
             = (match List.nth_opt model_members n with Some i -> i | None -> -1))
           (List.init (List.length model_members + 2) Fun.id)
      && List.for_all
           (fun n ->
             Packed_bits.nth_clear t n
             = (match List.nth_opt model_clear n with Some i -> i | None -> -1))
           (List.init (List.length model_clear + 2) Fun.id)
      && Packed_bits.equal t t
      && Packed_bits.equal (Packed_bits.copy t) t)

let () =
  Alcotest.run "bits"
    [
      ( "bitops",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "floor_log2" `Quick test_floor_log2;
          Alcotest.test_case "leading_ones" `Quick test_leading_ones;
          Alcotest.test_case "highest_zero_bit" `Quick test_highest_zero_bit;
          Alcotest.test_case "bit set/clear/test" `Quick test_bit_ops;
          Alcotest.test_case "trailing_zeros" `Quick test_trailing_zeros;
          Alcotest.test_case "field extraction" `Quick test_field_extraction;
          Alcotest.test_case "binary rendering" `Quick test_binary_string;
        ] );
      ( "properties",
        [
          prop_complement_involutive;
          prop_popcount_split;
          prop_leading_ones_bound;
          prop_splice_inverse;
          prop_floor_log2;
        ] );
      ( "packed_bits",
        [
          Alcotest.test_case "basics" `Quick test_packed_basics;
          Alcotest.test_case "create_full" `Quick test_packed_full;
          Alcotest.test_case "selects" `Quick test_packed_selects;
          Alcotest.test_case "index arithmetic" `Quick
            test_packed_index_arithmetic;
          Alcotest.test_case "intersection" `Quick test_packed_inter;
          prop_packed_model;
        ] );
    ]
