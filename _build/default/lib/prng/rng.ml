type t = Splitmix.t

let create ~seed = Splitmix.create (Int64.of_int seed)

let copy = Splitmix.copy

let split = Splitmix.split

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling to avoid modulo bias. *)
  let max63 = max_int in
  let limit = max63 - (max63 mod bound) in
  let rec draw () =
    let x = Splitmix.next_int63 t in
    if x >= limit then draw () else x mod bound
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 of the 62 random bits, scaled to [0, bound). *)
  let bits = Splitmix.next_int63 t lsr 9 in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Splitmix.next_int63 t land 1 = 1

let bernoulli t ~p = float t 1.0 < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list"
  | _ -> List.nth l (int t (List.length l))

let sample_without_replacement t ~k a =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let copy = Array.copy a in
  (* Partial Fisher-Yates: the first k slots end up a uniform sample. *)
  for i = 0 to k - 1 do
    let j = int_in t ~lo:i ~hi:(n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
