(** Dead-node-aware tree navigation — the paper's advanced system model
    (Section 3).

    All queries combine a physical lookup tree with the membership status
    word. The toplevel functions answer out of the domain-local
    {!Topology_cache}: the live set re-expressed in VID space as a packed
    bitset, revalidated lazily against the status word's epoch. Selects
    like {!find_live_node} and {!max_live} become word scans
    (O(space/62)), ancestry climbs become pure bit arithmetic, and
    {!children_list} is memoized per (epoch, node).

    {!Naive} keeps the original per-node scans; the cached versions are
    verified bit-identical against them by the differential tests. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree

(** Test-only fault injection used by the deterministic checker
    ([lib/check]) to validate itself: with {!Testing.broken_find_live_node}
    set, the cached {!find_live_node} deliberately scans {e upward} in VID
    space, violating FINDLIVENODE whenever the start node is dead. The
    checker must then find and shrink a counterexample. Never set this
    outside tests. *)
module Testing : sig
  val broken_find_live_node : bool ref
end

val find_live_node : Ptree.t -> Status_word.t -> start:Pid.t -> Pid.t option
(** The paper's FINDLIVENODE(s, r): if [start] is live return it; otherwise
    scan VIDs downward from [start]'s VID and return the first live node —
    the live node with the most offspring at or below [start] (by
    Property 3). [None] when the system below [start] is entirely dead. *)

val insertion_target : Ptree.t -> Status_word.t -> Pid.t option
(** FINDLIVENODE(r, r): where ADVANCEDINSERTFILE stores a file whose hash
    targets this tree's root — the live node with the most offspring in the
    whole tree. [None] iff no node is live. *)

val first_alive_ancestor : Ptree.t -> Status_word.t -> Pid.t -> Pid.t option
(** The augmented FP of Section 3: the nearest live strict ancestor in this
    tree, skipping dead nodes; [None] when every strict ancestor (including
    the root) is dead or the node is the root. *)

val children_list : Ptree.t -> Status_word.t -> Pid.t -> Pid.t list
(** The advanced-model children list (Section 3): every live child, with
    each dead child transparently replaced by its own (recursively
    expanded) children list; the result is sorted by descending VID. For
    the 14-node example of Figure 3 this yields
    (P(6), P(7), P(1), P(12), P(13), P(8)) for P(4).

    The returned list is memoized inside the cache entry; treat it as
    immutable and do not hold it across status-word mutations. *)

val has_live_with_greater_vid : Ptree.t -> Status_word.t -> Pid.t -> bool
(** Whether some live node has a strictly larger VID than the given node in
    this tree — the test deciding which children list an overloaded
    non-root node replicates into (Section 3, Replicating File). *)

val max_live : Ptree.t -> Status_word.t -> Pid.t option
(** The live node with the largest VID (equivalently, the most offspring)
    in this tree. *)

val live_offspring_count : Ptree.t -> Status_word.t -> Pid.t -> int
(** Number of live strict descendants — the numerator of the proportional
    choice made by the max-VID live node. The subtree of a node with [n]
    leading one bits is its residue class modulo [2^(m-n)], so this counts
    live members of that class: O(min(2^n, live) ) bit tests instead of a
    fold over every live node with an ancestry climb each. *)

type router
(** A snapshot of every ROUTE-NEXT answer for one (tree, status) pair —
    the cache's lazily built per-PID next-hop table. Valid until the next
    status-word mutation: fetch it once per request walk, use it
    immediately, do not store it across mutations. *)

val router : Ptree.t -> Status_word.t -> router

val next_hop : router -> Pid.t -> Pid.t option
(** Same answer as {!route_next}, as one array load. *)

val next_hop_int : router -> int -> int
(** [next_hop_int r (Pid.to_int p)] is [Pid.to_int] of the next hop, or
    [-1] at the end of the route. No bounds check: the caller guarantees
    the argument is a valid PID of the router's tree. *)

val route_next : Ptree.t -> Status_word.t -> Pid.t -> Pid.t option
(** One forwarding hop of the advanced GETFILE from a live node: the first
    alive ancestor if any; otherwise, when the root is dead, the migration
    hop to {!insertion_target} (unless we are already there). [None] when
    the node is the end of the route (root, or migration target). *)

val route_path : Ptree.t -> Status_word.t -> origin:Pid.t -> Pid.t list
(** The complete resolution path from a live origin: origin inclusive,
    following {!route_next} to the end. Every request for this tree's
    target travels a prefix of this path. *)

(** The original uncached implementations — straight per-node scans over
    PIDs. They are the semantic ground truth: the differential tests
    assert every toplevel query equals its [Naive] counterpart after
    arbitrary kill/revive sequences. Also useful as honest baselines in
    benchmarks. *)
module Naive : sig
  val find_live_node : Ptree.t -> Status_word.t -> start:Pid.t -> Pid.t option
  val insertion_target : Ptree.t -> Status_word.t -> Pid.t option
  val first_alive_ancestor : Ptree.t -> Status_word.t -> Pid.t -> Pid.t option
  val children_list : Ptree.t -> Status_word.t -> Pid.t -> Pid.t list
  val has_live_with_greater_vid : Ptree.t -> Status_word.t -> Pid.t -> bool
  val max_live : Ptree.t -> Status_word.t -> Pid.t option
  val live_offspring_count : Ptree.t -> Status_word.t -> Pid.t -> int
  val route_next : Ptree.t -> Status_word.t -> Pid.t -> Pid.t option
  val route_path : Ptree.t -> Status_word.t -> origin:Pid.t -> Pid.t list
end
