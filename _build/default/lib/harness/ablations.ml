open Lesslog_id
module Series = Lesslog_report.Series
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Demand = Lesslog_workload.Demand
module Balance = Lesslog_flow.Balance
module Policy = Lesslog_flow.Policy
module Chord = Lesslog_chord.Chord
module Rng = Lesslog_prng.Rng
module File_store = Lesslog_storage.File_store

(* --- A1: lookup hops, LessLog tree vs Chord --------------------------- *)

let hops ?(ms = [ 4; 6; 8; 10; 12; 14 ]) ?(samples = 2000) ?(seed = 42)
    ?(with_can = true) () =
  let lesslog_points = ref []
  and chord_points = ref []
  and pastry_points = ref []
  and can_points = ref [] in
  List.iter
    (fun m ->
      let params = Params.create ~m () in
      let rng = Rng.create ~seed:(seed + m) in
      let live = Pid.all params in
      let chord = Chord.create params ~live in
      let pastry =
        let digit_bits = if m mod 2 = 0 then 2 else 1 in
        Lesslog_pastry.Pastry.create ~digit_bits params ~live
      in
      let can =
        (* CAN construction is quadratic in this implementation; keep its
           series to the sizes where that stays instant. *)
        if with_can && m <= 12 then
          Some (Lesslog_can.Can.create ~rng ~n:(Params.space params) ~d:2)
        else None
      in
      let lesslog_total = ref 0
      and chord_total = ref 0
      and pastry_total = ref 0
      and can_total = ref 0 in
      for _ = 1 to samples do
        let origin = Pid.unsafe_of_int (Rng.int rng (Params.space params)) in
        let target = Rng.int rng (Params.space params) in
        (* LessLog: hops = depth of the origin in the target's tree. *)
        let tree = Ptree.make params ~root:(Pid.unsafe_of_int target) in
        lesslog_total := !lesslog_total + Ptree.depth tree origin;
        let r = Chord.lookup chord ~from:origin ~target in
        chord_total := !chord_total + r.Chord.hops;
        let r = Lesslog_pastry.Pastry.lookup pastry ~from:origin ~target in
        pastry_total := !pastry_total + r.Lesslog_pastry.Pastry.hops;
        match can with
        | Some can ->
            let r = Lesslog_can.Can.random_lookup can ~rng in
            can_total := !can_total + r.Lesslog_can.Can.hops
        | None -> ()
      done;
      let mean total = float_of_int total /. float_of_int samples in
      lesslog_points := (float_of_int m, mean !lesslog_total) :: !lesslog_points;
      chord_points := (float_of_int m, mean !chord_total) :: !chord_points;
      pastry_points := (float_of_int m, mean !pastry_total) :: !pastry_points;
      (match can with
      | Some _ -> can_points := (float_of_int m, mean !can_total) :: !can_points
      | None -> ()))
    ms;
  [
    Series.make ~label:"lesslog tree" (List.rev !lesslog_points);
    Series.make ~label:"chord fingers" (List.rev !chord_points);
    Series.make ~label:"pastry prefixes" (List.rev !pastry_points);
  ]
  @
  if with_can then [ Series.make ~label:"can d=2" (List.rev !can_points) ]
  else []

(* --- A2: counter-based replica eviction ------------------------------- *)

let eviction ?(config = Experiments.default) ?(decay_factor = 10.0)
    ?(min_rate = 10.0) () =
  let key = Experiments.hot_file in
  let created = ref [] and kept = ref [] in
  List.iter
    (fun rate ->
      let rng = Rng.create ~seed:config.Experiments.seed in
      let params = Params.create ~m:config.Experiments.m () in
      let cluster = Cluster.create params in
      ignore (Ops.insert cluster ~key);
      let status = Cluster.status cluster in
      let demand = Demand.uniform status ~total:rate in
      let outcome =
        Balance.run ~rng ~cluster ~key ~demand
          ~capacity:config.Experiments.capacity ~policy:Policy.Lesslog ()
      in
      (* The flash crowd passes: demand decays, cold replicas go — but
         never past the point where some node would overload again. *)
      let decayed = Demand.scale demand ~factor:(1.0 /. decay_factor) in
      let evicted =
        Balance.evict_cold ~capacity:config.Experiments.capacity ~cluster ~key
          ~demand:decayed ~min_rate ()
      in
      created := (rate, float_of_int outcome.Balance.replicas) :: !created;
      kept :=
        (rate, float_of_int (outcome.Balance.replicas - evicted)) :: !kept)
    config.Experiments.rates;
  [
    Series.make ~label:"created at peak" (List.rev !created);
    Series.make ~label:"kept after decay" (List.rev !kept);
  ]

(* --- A3: fault rate vs simultaneous failures, per b -------------------- *)

let fault_tolerance ?(m = 8) ?(bs = [ 0; 1; 2; 3 ])
    ?(fractions = [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 ]) ?(files = 32) ?(seed = 7)
    () =
  List.map
    (fun b ->
      let points =
        List.map
          (fun fraction ->
            let params = Params.create ~m ~b () in
            let cluster = Cluster.create params in
            let rng = Rng.create ~seed:(seed + b) in
            let keys =
              List.init files (fun i -> Printf.sprintf "ft-file-%d" i)
            in
            List.iter (fun key -> ignore (Ops.insert cluster ~key)) keys;
            (* Simultaneous failure: victims die and their stores vanish,
               with no recovery window in between. *)
            let status = Cluster.status cluster in
            let victims = Status_word.kill_fraction status rng ~fraction in
            List.iter
              (fun v ->
                let store = Cluster.store cluster v in
                List.iter
                  (fun key -> File_store.remove store ~key)
                  (File_store.keys store))
              victims;
            let total = ref 0 and faulted = ref 0 in
            Status_word.iter_live status (fun origin ->
                List.iter
                  (fun key ->
                    incr total;
                    if (Ops.get cluster ~origin ~key).Ops.server = None then
                      incr faulted)
                  keys);
            ( fraction,
              if !total = 0 then 0.0
              else float_of_int !faulted /. float_of_int !total ))
          fractions
      in
      Series.make ~label:(Printf.sprintf "b=%d" b) points)
    bs

(* --- A5: proportional choice vs biased variants ------------------------ *)

(* The proportional choice only matters when the key's target node is
   dead and the max-VID live node takes its traffic, so this trial kills
   the target explicitly on top of the random dead fraction. *)
let proportional_trial config ~rng ~dead_fraction ~policy ~rate =
  let params = Params.create ~m:config.Experiments.m () in
  let cluster = Cluster.create params in
  let status = Cluster.status cluster in
  let key = Experiments.hot_file in
  Status_word.set_dead status (Cluster.target_of_key cluster key);
  ignore (Status_word.kill_fraction status rng ~fraction:dead_fraction);
  ignore (Ops.insert cluster ~key);
  let demand =
    Demand.locality ~hot_fraction:config.Experiments.hot_fraction
      ~hot_share:config.Experiments.hot_share status ~rng ~total:rate
  in
  let outcome =
    Balance.run ~rng ~cluster ~key ~demand
      ~capacity:config.Experiments.capacity ~policy ()
  in
  float_of_int outcome.Balance.replicas

let proportional_choice ?(config = Experiments.default) ?(dead_fraction = 0.3)
    () =
  List.map
    (fun policy ->
      let points =
        List.map
          (fun rate ->
            let total = ref 0.0 in
            for trial = 1 to config.Experiments.trials do
              let rng =
                Rng.create
                  ~seed:
                    (Lesslog_hash.Fnv.hash63
                       (Printf.sprintf "prop|%d|%s|%g|%d"
                          config.Experiments.seed (Policy.name policy) rate
                          trial)
                    land 0x3FFFFFFF)
              in
              total :=
                !total
                +. proportional_trial config ~rng ~dead_fraction ~policy ~rate
            done;
            (rate, !total /. float_of_int config.Experiments.trials))
          config.Experiments.rates
      in
      Series.make ~label:(Policy.name policy) points)
    [ Policy.Lesslog; Policy.Lesslog_biased `Own; Policy.Lesslog_biased `Root ]

(* --- V1: fluid solver vs event-driven simulator ------------------------ *)

let fluid_vs_des ?(m = 7) ?(capacity = 100.0)
    ?(rates = [ 500.0; 1000.0; 1500.0; 2000.0; 2500.0 ]) ?(duration = 30.0)
    ?(seed = 42) () =
  let key = Experiments.hot_file in
  let fluid = ref [] and des = ref [] in
  List.iter
    (fun rate ->
      let params = Params.create ~m () in
      (* Fluid. *)
      let cluster = Cluster.create params in
      ignore (Ops.insert cluster ~key);
      let rng = Rng.create ~seed in
      let demand =
        Demand.uniform (Cluster.status cluster) ~total:rate
      in
      let outcome =
        Balance.run ~rng ~cluster ~key ~demand ~capacity ~policy:Policy.Lesslog ()
      in
      fluid := (rate, float_of_int outcome.Balance.replicas) :: !fluid;
      (* DES on a fresh cluster. *)
      let cluster = Cluster.create params in
      ignore (Ops.insert cluster ~key);
      let rng = Rng.create ~seed in
      let demand = Demand.uniform (Cluster.status cluster) ~total:rate in
      let result =
        Lesslog_des.Des_sim.run
          ~config:{ Lesslog_des.Des_sim.default_config with capacity }
          ~rng ~cluster ~key ~demand ~duration ()
      in
      des := (rate, float_of_int result.Lesslog_des.Des_sim.replicas_created) :: !des)
    rates;
  [
    Series.make ~label:"fluid solver" (List.rev !fluid);
    Series.make ~label:"event-driven" (List.rev !des);
  ]

(* --- A2 (message-level): the flash-crowd replica lifecycle --------------- *)

type lifecycle_outcome = {
  created : int;
  evicted : int;
  final_copies : int;
  peak_copies : float;
  lifecycle_faults : int;
  timeline : (float * float) list;
}

let eviction_lifecycle ?(m = 8) ?(peak = 3000.0) ?(calm = 150.0)
    ?(peak_duration = 40.0) ?(calm_duration = 80.0) ?(period = 5.0)
    ?(min_rate = 5.0) ?(seed = 42) () =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  let key = Experiments.hot_file in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed in
  let scenario =
    Lesslog_workload.Scenario.flash_crowd (Cluster.status cluster) ~rng ~peak
      ~calm ~peak_duration ~calm_duration
  in
  let config =
    {
      Lesslog_des.Des_sim.default_config with
      eviction = Some { Lesslog_des.Des_sim.period; min_rate };
    }
  in
  let r =
    Lesslog_des.Des_sim.run_scenario ~config ~rng ~cluster ~key ~scenario ()
  in
  let pts =
    Lesslog_metrics.Timeseries.points r.Lesslog_des.Des_sim.replica_timeline
  in
  let keep_every = max 1 (Array.length pts / 24) in
  let timeline =
    Array.to_list pts
    |> List.filteri (fun i _ -> i mod keep_every = 0 || i = Array.length pts - 1)
  in
  {
    created = r.Lesslog_des.Des_sim.replicas_created;
    evicted = r.Lesslog_des.Des_sim.replicas_evicted;
    final_copies = Cluster.total_copies cluster ~key;
    peak_copies = Array.fold_left (fun a (_, v) -> Float.max a v) 0.0 pts;
    lifecycle_faults = r.Lesslog_des.Des_sim.faults;
    timeline;
  }

let lifecycle_series outcome =
  [ Series.make ~label:"copies" outcome.timeline ]

(* --- A6: update broadcast cost ------------------------------------------ *)

let update_cost ?(m = 10) ?(replica_levels = [ 0; 3; 15; 63; 255 ]) ?(seed = 3)
    () =
  let broadcast_points = ref [] and flood_points = ref [] in
  List.iter
    (fun replicas ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      let key = Experiments.hot_file in
      ignore (Ops.insert cluster ~key);
      let rng = Rng.create ~seed in
      let placed = ref 0 in
      while !placed < replicas do
        match Cluster.holders cluster ~key with
        | [] -> placed := replicas
        | holders -> (
            match
              Ops.replicate ~rng cluster
                ~overloaded:(Rng.pick_list rng holders)
                ~key
            with
            | Some _ -> incr placed
            | None -> ())
      done;
      let copies = float_of_int (Cluster.total_copies cluster ~key) in
      let result = Ops.update cluster ~key in
      broadcast_points := (copies, float_of_int result.Ops.messages) :: !broadcast_points;
      flood_points :=
        (copies, float_of_int (Status_word.live_count (Cluster.status cluster)))
        :: !flood_points)
    replica_levels;
  [
    Series.make ~label:"children-list broadcast" (List.rev !broadcast_points);
    Series.make ~label:"naive flood" (List.rev !flood_points);
  ]

(* --- A7: realistic session churn (the paper's future work) --------------- *)

type session_outcome = {
  mean_session : float;
  availability : float;
  served : int;
  faults : int;
  joins : int;
  leaves : int;
  fails : int;
  replicas_created : int;
  control_messages : int;
  file_transfers : int;
}

let session_churn ?(m = 8) ?(rate = 2000.0) ?(duration = 120.0)
    ?(mean_sessions = [ 30.0; 60.0; 120.0; 300.0 ]) ?(seed = 42) () =
  let key = Experiments.hot_file in
  List.map
    (fun mean_session ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      ignore (Ops.insert cluster ~key);
      let rng = Rng.create ~seed in
      let demand = Demand.uniform (Cluster.status cluster) ~total:rate in
      let trace =
        Lesslog_des.Churn_trace.generate ~rng
          ~live:(Status_word.live_pids (Cluster.status cluster))
          {
            Lesslog_des.Churn_trace.default with
            mean_session;
            mean_downtime = mean_session /. 2.0;
            duration;
          }
      in
      let joins, leaves, fails = Lesslog_des.Churn_trace.summary trace in
      let result =
        Lesslog_des.Des_sim.run ~churn:trace ~rng ~cluster ~key ~demand
          ~duration ()
      in
      let served = result.Lesslog_des.Des_sim.served in
      let faults = result.Lesslog_des.Des_sim.faults in
      {
        mean_session;
        availability =
          (if served + faults = 0 then 1.0
           else float_of_int served /. float_of_int (served + faults));
        served;
        faults;
        joins;
        leaves;
        fails;
        replicas_created = result.Lesslog_des.Des_sim.replicas_created;
        control_messages = result.Lesslog_des.Des_sim.control_messages;
        file_transfers = result.Lesslog_des.Des_sim.file_transfers;
      })
    mean_sessions

(* --- A4: availability under churn -------------------------------------- *)

type churn_outcome = {
  events_per_min : float;
  availability : float;
  faults : int;
  served : int;
  replicas_created : int;
}

let churn ?(m = 8) ?(rate = 2000.0) ?(duration = 60.0)
    ?(events_per_min = [ 0.0; 6.0; 12.0; 30.0; 60.0 ]) ?(seed = 42) () =
  let key = Experiments.hot_file in
  List.map
    (fun epm ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      ignore (Ops.insert cluster ~key);
      let rng = Rng.create ~seed in
      let demand = Demand.uniform (Cluster.status cluster) ~total:rate in
      (* Pre-generate a deterministic churn schedule: alternating leaves,
         failures and (re)joins of random nodes. *)
      let events = ref [] in
      let count = int_of_float (Float.round (epm *. duration /. 60.0)) in
      let gone = ref [] in
      for k = 1 to count do
        let at = duration *. float_of_int k /. float_of_int (count + 1) in
        let action =
          match (k mod 3, !gone) with
          | 0, p :: rest ->
              gone := rest;
              Lesslog_des.Des_sim.Join p
          | _ -> (
              (* Choose a victim that is not the key's current holder set
                 owner; any live node works, the mechanism handles it. *)
              match Status_word.random_live (Cluster.status cluster) rng with
              | Some p ->
                  gone := p :: !gone;
                  if k mod 2 = 0 then Lesslog_des.Des_sim.Fail p
                  else Lesslog_des.Des_sim.Leave p
              | None -> Lesslog_des.Des_sim.Join (Pid.unsafe_of_int 0))
        in
        events := { Lesslog_des.Des_sim.at; action } :: !events
      done;
      let result =
        Lesslog_des.Des_sim.run ~churn:(List.rev !events) ~rng ~cluster ~key
          ~demand ~duration ()
      in
      let served = result.Lesslog_des.Des_sim.served in
      let faults = result.Lesslog_des.Des_sim.faults in
      let availability =
        if served + faults = 0 then 1.0
        else float_of_int served /. float_of_int (served + faults)
      in
      {
        events_per_min = epm;
        availability;
        faults;
        served;
        replicas_created = result.Lesslog_des.Des_sim.replicas_created;
      })
    events_per_min

let churn_series outcomes =
  [
    Series.make ~label:"availability"
      (List.map (fun o -> (o.events_per_min, o.availability)) outcomes);
  ]
