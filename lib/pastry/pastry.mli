(** A Pastry-style prefix-routing substrate (Rowstron & Druschel,
    Middleware 2001) — the third related-work system the paper cites
    (Section 7).

    Identifiers are the m-bit PIDs read as base-2^b digit strings. Each
    node keeps a routing table (one row per digit, one column per digit
    value, holding some node matching one more digit of the target) and a
    leaf set of numerically nearest neighbours. Routing resolves one digit
    per hop: O(log_{2^b} N).

    This is a static snapshot of the routing state over a fixed
    membership, which is what the lookup-hop comparison needs. *)

open Lesslog_id

type t

val create :
  ?digit_bits:int -> ?leaf_set:int -> Params.t -> live:Pid.t list -> t
(** [digit_bits] is Pastry's b (default 2, i.e. base-4 digits; must divide
    [Params.m]); [leaf_set] is the total leaf-set size (default 8).
    @raise Invalid_argument on an empty population or a non-dividing
    [digit_bits]. *)

val node_count : t -> int
val rows : t -> int
(** Digits per identifier = m / digit_bits. *)

val owner_of : t -> int -> Pid.t
(** The numerically closest live node to an identifier on the ring
    (ties break toward the smaller PID). *)

type lookup_result = { owner : Pid.t; hops : int; path : Pid.t list }

val lookup : t -> from:Pid.t -> target:int -> lookup_result
(** Prefix routing from [from] to the owner of [target].
    @raise Invalid_argument when [from] is not live. *)

val next_hop : t -> from:Pid.t -> target:int -> Pid.t option
(** One step of {!lookup}'s prefix routing: the node [from] forwards to
    next, or [None] when [from] already owns [target]. Following
    [next_hop] to the fixpoint visits exactly {!lookup}'s path. A [from]
    not in the snapshot (stale sender) jumps straight to the owner.
    @raise Invalid_argument on an out-of-space [target]. *)

val leaf_set_of : t -> Pid.t -> Pid.t list
(** For tests: the node's leaf set, nearest first. *)
