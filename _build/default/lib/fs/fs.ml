open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module File_store = Lesslog_storage.File_store
module Fnv = Lesslog_hash.Fnv

type blob = { data : string; version : int; checksum : int64 }

type t = {
  cluster : Cluster.t;
  blobs : (string, blob) Hashtbl.t array;  (* per PID slot *)
}

type read_result = {
  data : string;
  version : int;
  served_by : Pid.t;
  hops : int;
}

type error = Not_found | Corrupted of Pid.t | No_live_node

let pp_error fmt = function
  | Not_found -> Format.pp_print_string fmt "not found"
  | Corrupted p -> Format.fprintf fmt "corrupted at P(%a)" Pid.pp p
  | No_live_node -> Format.pp_print_string fmt "no live node"

let checksum ~data ~version =
  Fnv.hash64 (Printf.sprintf "%d:%s" version data)

let make_blob ~data ~version = { data; version; checksum = checksum ~data ~version }

let blob_valid b = Int64.equal b.checksum (checksum ~data:b.data ~version:b.version)

let create ?(b = 0) ?live ~m () =
  let params = Params.create ~m ~b () in
  let cluster = Cluster.create ?live params in
  { cluster; blobs = Array.init (Params.space params) (fun _ -> Hashtbl.create 8) }

let cluster t = t.cluster

let blob_table t p = t.blobs.(Pid.to_int p)

let put_blob t p ~key blob = Hashtbl.replace (blob_table t p) key blob

let drop_blob t p ~key = Hashtbl.remove (blob_table t p) key

let find_blob t p ~key = Hashtbl.find_opt (blob_table t p) key

(* Align blobs with metadata at every live node for one key: nodes that
   hold metadata get the blob, nodes that lost metadata lose the blob. *)
let align_key t ~key ~blob =
  Status_word.iter_live (Cluster.status t.cluster) (fun p ->
      if Cluster.holds t.cluster p ~key then put_blob t p ~key blob
      else drop_blob t p ~key)

let write ?(now = 0.0) t ~key ~data =
  if Cluster.holds t.cluster (Cluster.target_of_key t.cluster key) ~key
     || Cluster.holders t.cluster ~key <> []
  then begin
    (* Existing file: UPDATEFILE, then push content to every copy the
       broadcast reached (the ones now at the new version). *)
    let result = Ops.update ~now t.cluster ~key in
    let blob = make_blob ~data ~version:result.Ops.version in
    Status_word.iter_live (Cluster.status t.cluster) (fun p ->
        if
          File_store.version (Cluster.store t.cluster p) ~key
          = Some result.Ops.version
        then put_blob t p ~key blob);
    Ok result.Ops.version
  end
  else begin
    match Ops.insert ~now t.cluster ~key with
    | [] -> Error No_live_node
    | targets ->
        let blob = make_blob ~data ~version:0 in
        List.iter (fun p -> put_blob t p ~key blob) targets;
        Ok 0
  end

let read ?(now = 0.0) t ~origin ~key =
  let r = Ops.get ~now t.cluster ~origin ~key in
  match r.Ops.server with
  | None -> Error Not_found
  | Some server -> (
      match find_blob t server ~key with
      | None -> Error (Corrupted server)
      | Some blob ->
          if blob_valid blob then
            Ok
              {
                data = blob.data;
                version = blob.version;
                served_by = server;
                hops = r.Ops.hops;
              }
          else Error (Corrupted server))

let delete ?(now = 0.0) t ~key =
  let result = Ops.delete ~now t.cluster ~key in
  Array.iter (fun table -> Hashtbl.remove table key) t.blobs;
  result.Ops.updated

let replicate ?(now = 0.0) t ~rng ~overloaded ~key =
  match Ops.replicate ~now ~rng t.cluster ~overloaded ~key with
  | None -> None
  | Some dest ->
      (match find_blob t overloaded ~key with
      | Some blob -> put_blob t dest ~key blob
      | None -> (
          (* The overloaded node should hold the blob; fall back to any
             valid copy. *)
          match
            List.find_map
              (fun p -> find_blob t p ~key)
              (Cluster.holders t.cluster ~key)
          with
          | Some blob -> put_blob t dest ~key blob
          | None -> ()));
      Some dest

let sync_key t ~key =
  let copied = ref 0 in
  let source =
    List.find_map
      (fun p ->
        match find_blob t p ~key with
        | Some b when blob_valid b -> Some b
        | _ -> None)
      (Cluster.holders t.cluster ~key)
  in
  (match source with
  | None -> ()
  | Some blob ->
      Status_word.iter_live (Cluster.status t.cluster) (fun p ->
          if Cluster.holds t.cluster p ~key && find_blob t p ~key = None then begin
            put_blob t p ~key blob;
            incr copied
          end));
  !copied

let rebalance ?(now = 0.0) t ~rng ~catalog ~capacity =
  ignore now;
  let outcome =
    Lesslog_flow.Multi_balance.run ~rng ~cluster:t.cluster ~catalog ~capacity
      ~policy:Lesslog_flow.Policy.Lesslog ()
  in
  List.iter (fun (key, _) -> ignore (sync_key t ~key)) catalog;
  outcome

let evict_cold ?(now = 0.0) t ~catalog ~capacity ~min_rate =
  ignore now;
  let removed = ref 0 in
  List.iter
    (fun (key, demand) ->
      removed :=
        !removed
        + Lesslog_flow.Balance.evict_cold ~capacity ~cluster:t.cluster ~key
            ~demand ~min_rate ();
      (* Metadata went away on eviction; blobs follow. *)
      match
        List.find_map (fun p -> find_blob t p ~key) (Cluster.holders t.cluster ~key)
      with
      | Some blob -> align_key t ~key ~blob
      | None -> ())
    catalog;
  !removed

let keys t = Cluster.registered_keys t.cluster

let exists t ~key = Cluster.holders t.cluster ~key <> []

let copies t ~key = Cluster.total_copies t.cluster ~key

let bytes_stored t p =
  Hashtbl.fold
    (fun _ (blob : blob) acc -> acc + String.length blob.data)
    (blob_table t p) 0

let fsck t =
  let problems = ref [] in
  let status = Cluster.status t.cluster in
  List.iter
    (fun key ->
      Status_word.iter_live status (fun p ->
          let has_meta = Cluster.holds t.cluster p ~key in
          match (has_meta, find_blob t p ~key) with
          | true, Some blob when blob_valid blob -> ()
          | false, None -> ()
          | _, _ -> problems := (key, p) :: !problems))
    (keys t);
  List.rev !problems

let sync_blobs t =
  List.fold_left (fun acc key -> acc + sync_key t ~key) 0 (keys t)
