lib/topology/subtrees.mli: Lesslog_id Lesslog_membership Lesslog_ptree Params Pid Vid
