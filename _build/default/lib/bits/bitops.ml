let max_width = 24

let mask ~width = (1 lsl width) - 1

let complement ~width v = lnot v land mask ~width

let popcount x =
  (* SWAR popcount over the 63 value bits of an OCaml int. *)
  let m1 = 0x5555_5555_5555_5555 in
  let m2 = 0x3333_3333_3333_3333 in
  let m4 = 0x0F0F_0F0F_0F0F_0F0F in
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * 0x0101_0101_0101_0101) lsr 56

let floor_log2 x =
  if x <= 0 then invalid_arg "Bitops.floor_log2";
  let r = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin x := !x lsr 32; r := !r + 32 end;
  if !x lsr 16 <> 0 then begin x := !x lsr 16; r := !r + 16 end;
  if !x lsr 8 <> 0 then begin x := !x lsr 8; r := !r + 8 end;
  if !x lsr 4 <> 0 then begin x := !x lsr 4; r := !r + 4 end;
  if !x lsr 2 <> 0 then begin x := !x lsr 2; r := !r + 2 end;
  if !x lsr 1 <> 0 then r := !r + 1;
  !r

let highest_zero_bit ~width v =
  let zeros = lnot v land mask ~width in
  if zeros = 0 then None else Some (floor_log2 zeros)

let leading_ones ~width v =
  match highest_zero_bit ~width v with
  | None -> width
  | Some h -> width - 1 - h

let test_bit v i = (v lsr i) land 1 = 1

let set_bit v i = v lor (1 lsl i)

let clear_bit v i = v land lnot (1 lsl i)

let trailing_zeros x =
  if x = 0 then invalid_arg "Bitops.trailing_zeros";
  floor_log2 (x land -x)

let is_all_ones ~width v = v = mask ~width

let in_range ~width v = v >= 0 && v <= mask ~width

let low_bits ~width v = v land mask ~width

let high_bits ~total ~low v =
  (v lsr low) land mask ~width:(total - low)

let splice ~total ~low ~high lowv =
  ignore total;
  (high lsl low) lor lowv

let to_binary_string ~width v =
  String.init width (fun i ->
      if test_bit v (width - 1 - i) then '1' else '0')

let pp_binary ~width fmt v =
  Format.pp_print_string fmt (to_binary_string ~width v)
