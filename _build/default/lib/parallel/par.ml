let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let map ?domains ~f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let domains =
      max 1 (min n (match domains with Some d -> d | None -> recommended_domains ()))
    in
    if domains = 1 then Array.map f a
    else begin
      let results = Array.make n None in
      let worker w () =
        let i = ref w in
        while !i < n do
          results.(!i) <- Some (f a.(!i));
          i := !i + domains
        done
      in
      let handles =
        List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter Domain.join handles;
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* every index is covered by a stride *))
        results
    end
  end

let map_list ?domains ~f l =
  Array.to_list (map ?domains ~f (Array.of_list l))
