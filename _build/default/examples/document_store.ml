(* Document store: LessLog as the replicated file system the paper's title
   promises.

   A 128-node deployment stores a catalogue of documents whose popularity
   follows a Zipf law. We write real content, let the multi-file balancer
   spread the hot documents (one shared 100 req/s budget per node across
   all files), overwrite a document and watch the update broadcast reach
   every copy, crash a node, and verify integrity end to end.

   Run with: dune exec examples/document_store.exe *)

open Lesslog_id
module Fs = Lesslog_fs.Fs
module Cluster = Lesslog.Cluster
module Self_org = Lesslog.Self_org
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Catalog = Lesslog_workload.Catalog
module Multi_balance = Lesslog_flow.Multi_balance
module Rng = Lesslog_prng.Rng

let () =
  let fs = Fs.create ~m:7 () in
  let cluster = Fs.cluster fs in
  let rng = Rng.create ~seed:2026 in

  (* A Zipf catalogue: 12 documents, 6,000 req/s total demand. *)
  let spec =
    Catalog.create ~prefix:"wiki/article" (Cluster.status cluster) ~rng
      ~files:12 ~total:6000.0 ~spread:Catalog.Uniform
  in
  let catalog = Catalog.files spec in
  List.iter
    (fun (key, demand) ->
      let body =
        Printf.sprintf "# %s\n\nDemand %.0f req/s worth of text.\n" key
          (Demand.total demand)
      in
      match Fs.write fs ~key ~data:body with
      | Ok 0 -> ()
      | Ok v -> Printf.printf "unexpected version %d\n" v
      | Error e -> Format.printf "write failed: %a@." Fs.pp_error e)
    catalog;
  Printf.printf "stored %d documents on a 128-node system\n" (List.length catalog);

  (* Who is overloaded before balancing? *)
  let loads = Multi_balance.aggregate_loads ~cluster ~catalog in
  let over = Array.fold_left (fun acc r -> if r > 100.0 then acc + 1 else acc) 0 loads in
  Printf.printf "before balancing: %d node(s) over the 100 req/s budget (max %.0f)\n"
    over
    (Array.fold_left Float.max 0.0 loads);

  (* One whole-catalogue LessLog balancing pass. *)
  let outcome = Fs.rebalance fs ~rng ~catalog ~capacity:100.0 in
  Printf.printf
    "rebalance: %d replicas across %d documents in %d iterations (max load %.0f)\n"
    outcome.Multi_balance.total_replicas
    (List.length outcome.Multi_balance.replicas_per_key)
    outcome.Multi_balance.iterations outcome.Multi_balance.max_load;
  List.iteri
    (fun i (key, n) ->
      if i < 4 then Printf.printf "  %-18s %3d replicas\n" key n)
    (List.sort
       (fun (_, a) (_, b) -> compare b a)
       outcome.Multi_balance.replicas_per_key);

  (* Edit the hottest document: the top-down broadcast updates every
     replica; readers anywhere see the new text. *)
  let hottest, _ = List.hd catalog in
  (match Fs.write fs ~key:hottest ~data:"# edited\n\nfresh revision.\n" with
  | Ok v -> Printf.printf "\nedited %s -> version %d\n" hottest v
  | Error e -> Format.printf "edit failed: %a@." Fs.pp_error e);
  let stale = ref 0 in
  Status_word.iter_live (Cluster.status cluster) (fun origin ->
      match Fs.read fs ~origin ~key:hottest with
      | Ok r when r.Fs.data = "# edited\n\nfresh revision.\n" -> ()
      | _ -> incr stale);
  Printf.printf "readers seeing the old revision: %d\n" !stale;

  (* A storage node crashes; reads keep working off the replicas. *)
  let victim = Cluster.target_of_key cluster hottest in
  let stats = Self_org.fail cluster victim in
  Printf.printf "\nP(%d) (the hot document's target) crashed: lost=%d orphaned=%d\n"
    (Pid.to_int victim)
    (List.length stats.Self_org.lost)
    (List.length stats.Self_org.orphaned);
  let unreadable = ref 0 in
  Status_word.iter_live (Cluster.status cluster) (fun origin ->
      match Fs.read fs ~origin ~key:hottest with
      | Ok _ -> ()
      | Error _ -> incr unreadable);
  Printf.printf "origins that can no longer read it: %d\n" !unreadable;

  (* End-to-end integrity. *)
  let problems = Fs.fsck fs in
  Printf.printf "\nfsck: %d problem(s)\n" (List.length problems);
  assert (problems = [])
