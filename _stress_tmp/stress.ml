module L = Lesslog_sim.Ladder_queue

let () =
  let rng = Random.State.make [| 42 |] in
  for trial = 0 to 199 do
    let lq = L.create ~buckets:4 ~split_threshold:4 () in
    let n = 5000 in
    let seq = ref 0 in
    let pushed = ref 0 and popped = ref 0 in
    let last_t = ref neg_infinity and last_s = ref (-1) in
    (* adversarial times: clustered at multiples of irrational-ish widths,
       plus 1-ulp perturbations around bucket-boundary-like values *)
    let draw () =
      let base = float_of_int (Random.State.int rng 50) *. 0.7 in
      let eps = match Random.State.int rng 5 with
        | 0 -> 0.0
        | 1 -> epsilon_float *. base
        | 2 -> -. (epsilon_float *. base)
        | 3 -> Random.State.float rng 1e-12
        | _ -> Random.State.float rng 0.7
      in
      Float.abs (base +. eps)
    in
    for _ = 1 to n do
      (* interleave: mostly push, some pops *)
      if Random.State.int rng 3 = 0 && !popped < !pushed then begin
        if L.pop lq then begin
          let t = L.time lq and s = L.seq lq in
          if t < !last_t || (t = !last_t && s < !last_s) then begin
            Printf.printf "ORDER VIOLATION trial=%d t=%h last=%h\n" trial t !last_t;
            exit 1
          end;
          (* reentrant push at/near current time, like zero-delay msgs *)
          last_t := t; last_s := s; incr popped;
          if Random.State.int rng 4 = 0 then begin
            L.push lq ~time:(t +. Random.State.float rng 0.01) ~seq:!seq ~h:0 ~a:0 ~b:0 ~x:0.0;
            incr seq; incr pushed
          end
        end
      end
      else begin
        L.push lq ~time:(!last_t +. draw ()) ~seq:!seq ~h:0 ~a:0 ~b:0 ~x:0.0;
        incr seq; incr pushed
      end
    done;
    (* drain *)
    let guard = ref 0 in
    while L.pop lq do
      let t = L.time lq and s = L.seq lq in
      if t < !last_t || (t = !last_t && s < !last_s) then begin
        Printf.printf "DRAIN ORDER VIOLATION trial=%d\n" trial; exit 1
      end;
      last_t := t; last_s := s; incr popped;
      incr guard;
      if !guard > n * 3 then (Printf.printf "RUNAWAY trial=%d\n" trial; exit 1)
    done;
    if !popped <> !pushed then begin
      Printf.printf "LOST EVENTS trial=%d pushed=%d popped=%d remaining(len)=%d\n"
        trial !pushed !popped (L.length lq);
      exit 1
    end
  done;
  print_endline "stress OK"
