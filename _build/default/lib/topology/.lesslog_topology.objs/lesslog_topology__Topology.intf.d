lib/topology/topology.mli: Lesslog_id Lesslog_membership Lesslog_ptree Pid
