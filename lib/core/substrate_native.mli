(** The native LessLog adapter: {!Lesslog_substrate.Substrate.t} over the
    cluster's own binomial lookup trees.

    Every field delegates to the exact calls the direct code path makes —
    [next_hop] is {!Lesslog_topology.Topology.route_next} on the key's
    tree (answered out of the epoch-revalidated {!Topology_cache} fast
    path), [owner] is the FINDLIVENODE insertion target, [neighbors] is
    the advanced-model children list, and [replica_target] is
    {!Ops.choose_replica_target} including the Section 3 proportional
    choice and its single [rng] draw — so simulations routed through this
    adapter are bit-for-bit identical to the direct path (pinned by the
    golden digest and the event-for-event differential test).

    [membership] is {!Lesslog_substrate.Substrate.Self_organized}: churn
    must be repaired by {!Self_org}, as the simulators do natively. The
    adapter covers the single-tree model; [b > 0] clusters use the direct
    {!Ops} path. *)

val of_cluster : Cluster.t -> Lesslog_substrate.Substrate.t
