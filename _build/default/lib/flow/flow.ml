open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Topology = Lesslog_topology.Topology
module Demand = Lesslog_workload.Demand

type t = {
  tree : Ptree.t;
  status : Status_word.t;
  next : int array;  (* pid -> next hop pid, or -1 at the end of the route *)
}

let create tree status =
  let params = Ptree.params tree in
  let next = Array.make (Params.space params) (-1) in
  Status_word.iter_live status (fun p ->
      match Topology.route_next tree status p with
      | Some q -> next.(Pid.to_int p) <- Pid.to_int q
      | None -> ());
  { tree; status; next }

let tree t = t.tree
let status t = t.status

let next_hop t p =
  match t.next.(Pid.to_int p) with
  | -1 -> None
  | q -> Some (Pid.unsafe_of_int q)

let serving_node t ~holders ~origin =
  if Status_word.is_dead t.status origin then
    invalid_arg "Flow.serving_node: dead origin";
  let rec walk p =
    if holders (Pid.unsafe_of_int p) then Some (Pid.unsafe_of_int p)
    else
      match t.next.(p) with -1 -> None | q -> walk q
  in
  walk (Pid.to_int origin)

type loads = { serve : float array; unserved : float }

let serve_rates t ~holders ~demand =
  let params = Ptree.params t.tree in
  let serve = Array.make (Params.space params) 0.0 in
  let unserved = ref 0.0 in
  Status_word.iter_live t.status (fun origin ->
      let r = Demand.rate demand origin in
      if r > 0.0 then begin
        match serving_node t ~holders ~origin with
        | Some server -> serve.(Pid.to_int server) <- serve.(Pid.to_int server) +. r
        | None -> unserved := !unserved +. r
      end);
  { serve; unserved = !unserved }

let inflows t ~holders ~demand ~at =
  let at_int = Pid.to_int at in
  let acc : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let self = ref 0.0 in
  let add_entry entry r =
    match entry with
    | None -> self := !self +. r
    | Some p ->
        Hashtbl.replace acc p (r +. Option.value ~default:0.0 (Hashtbl.find_opt acc p))
  in
  Status_word.iter_live t.status (fun origin ->
      let r = Demand.rate demand origin in
      if r > 0.0 then begin
        (* Walk the route; requests already served before [at] never get
           there. *)
        let rec walk prev p =
          if holders (Pid.unsafe_of_int p) || p = at_int then begin
            if p = at_int then add_entry prev r
          end
          else
            match t.next.(p) with -1 -> () | q -> walk (Some p) q
        in
        walk None (Pid.to_int origin)
      end);
  let entries =
    Hashtbl.fold (fun p r l -> (Some (Pid.unsafe_of_int p), r) :: l) acc []
  in
  let entries = if !self > 0.0 then (None, !self) :: entries else entries in
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    entries
