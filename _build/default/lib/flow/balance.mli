(** The paper's load-balancing experiment loop (Section 6).

    A node is overloaded when it serves more than [capacity] requests/s; a
    system is load-balanced when no node is overloaded. Starting from the
    single inserted copy, the loop repeatedly lets the most overloaded
    node create one replica (placed by the policy under test) until the
    system is balanced — the figure metric is how many replicas that
    took. *)

open Lesslog_id

type outcome = {
  replicas : int;  (** Copies created beyond the inserted one(s). *)
  iterations : int;
  balanced : bool;
      (** [false] when the policy ran out of candidates while some node
          was still overloaded (possible when demand exceeds total system
          capacity). *)
  max_load : float;  (** Highest per-node serve rate at the end. *)
  unserved : float;  (** Demand that met no copy (0 in sane setups). *)
}

val run :
  ?max_steps:int ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  demand:Lesslog_workload.Demand.t ->
  capacity:float ->
  policy:Policy.t ->
  unit ->
  outcome
(** Requires the key to be already inserted. [max_steps] defaults to
    4 × the slot count. Replicas are materialized in the cluster's file
    stores, so the final holder set can be inspected afterwards. *)

val evict_cold :
  ?capacity:float ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  demand:Lesslog_workload.Demand.t ->
  min_rate:float ->
  unit ->
  int
(** The steady-state effect of the paper's counter-based removal:
    repeatedly drop the coldest replicated copy serving fewer than
    [min_rate] requests/s, re-evaluating flows after each removal (evicted
    traffic shifts to an ancestor copy). An eviction that would push any
    node above [capacity] (default: no limit) is rolled back and the
    process stops for that branch. Returns how many replicas were
    removed. *)

val loads :
  cluster:Lesslog.Cluster.t ->
  key:string ->
  demand:Lesslog_workload.Demand.t ->
  Flow.loads
(** Current per-node serve rates for the key under the demand. *)

val holder_pids : Lesslog.Cluster.t -> key:string -> Pid.t list
