(* Domain pool with a reusable start/finish barrier.

   [Pool.run] hands one job — a function of the worker index — to every
   worker and blocks until all of them return. The caller's own domain
   is worker 0, so a pool of size [n] spawns [n - 1] domains, once, and
   reuses them for every subsequent [run]: the sharded simulation engine
   crosses this barrier twice per epoch, and a spawn per crossing (the
   old [map] did one spawn per call) would dominate the epoch cost.

   Synchronization is a mutex plus two condition variables — a job
   generation counter wakes the workers, a running count wakes the
   caller. Workers idle in [Condition.wait] between jobs (no spinning),
   and the mutex acquire/release pairs give every job the happens-before
   edges the engine's mailbox hand-off needs: writes made by worker A
   during job k are visible to every worker during job k+1. *)

let default_cap = 16

let recommended_domains () =
  match Sys.getenv_opt "LESSLOG_DOMAINS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "LESSLOG_DOMAINS must be a positive integer")
  | None -> min default_cap (Domain.recommended_domain_count ())

(* True while the current domain is executing a pool job: a [map] from
   inside a job must not re-enter the (non-reentrant) pool, so it runs
   sequentially instead. *)
let in_job_key = Domain.DLS.new_key (fun () -> false)

module Pool = struct
  type t = {
    size : int;
    m : Mutex.t;
    wake : Condition.t;  (* workers: a new job (or stop) is posted *)
    idle : Condition.t;  (* caller: all workers finished the job *)
    mutable job : (int -> unit) option;
    mutable generation : int;  (* bumped per job; workers key off it *)
    mutable running : int;
    mutable stop : bool;
    failures : (exn * Printexc.raw_backtrace) option array;
    mutable domains : unit Domain.t list;
  }

  let size t = t.size

  let worker t w () =
    let seen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock t.m;
      while (not t.stop) && t.generation = !seen do
        Condition.wait t.wake t.m
      done;
      if t.stop then begin
        Mutex.unlock t.m;
        continue := false
      end
      else begin
        seen := t.generation;
        let job = Option.get t.job in
        Mutex.unlock t.m;
        Domain.DLS.set in_job_key true;
        (try job w
         with e -> t.failures.(w) <- Some (e, Printexc.get_raw_backtrace ()));
        Domain.DLS.set in_job_key false;
        Mutex.lock t.m;
        t.running <- t.running - 1;
        if t.running = 0 then Condition.signal t.idle;
        Mutex.unlock t.m
      end
    done

  let create ~domains =
    if domains < 1 then invalid_arg "Par.Pool.create: domains";
    let t =
      {
        size = domains;
        m = Mutex.create ();
        wake = Condition.create ();
        idle = Condition.create ();
        job = None;
        generation = 0;
        running = 0;
        stop = false;
        failures = Array.make domains None;
        domains = [];
      }
    in
    t.domains <- List.init (domains - 1) (fun k -> Domain.spawn (worker t (k + 1)));
    t

  let shutdown t =
    Mutex.lock t.m;
    if not t.stop then begin
      t.stop <- true;
      Condition.broadcast t.wake
    end;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []

  (* Run [f 0 .. f (size-1)], one call per worker, and join them all.
     Worker exceptions are trapped per worker; after the join the
     exception of the lowest-numbered failing worker is re-raised, so
     the outcome is deterministic at any interleaving. *)
  let run t f =
    if t.stop then invalid_arg "Par.Pool.run: pool is shut down";
    Array.fill t.failures 0 t.size None;
    if t.size = 1 then f 0
    else begin
      Mutex.lock t.m;
      t.job <- Some f;
      t.running <- t.size - 1;
      t.generation <- t.generation + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.m;
      Domain.DLS.set in_job_key true;
      (try f 0
       with e -> t.failures.(0) <- Some (e, Printexc.get_raw_backtrace ()));
      Domain.DLS.set in_job_key false;
      Mutex.lock t.m;
      while t.running > 0 do
        Condition.wait t.idle t.m
      done;
      t.job <- None;
      Mutex.unlock t.m
    end;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      t.failures
end

(* Phase barrier: a reusable in-job rendezvous for workers that are
   already inside one [Pool.run] job and want to cross several internal
   phases without returning to the coordinator. The last worker to
   arrive runs a decision closure while everyone else holds, then all
   parties are released together — one crossing per phase instead of a
   full job dispatch (wake broadcast + idle join).

   Waiting spins briefly (cheap when every party has its own core, the
   pool's normal regime) and then falls back to a condition variable so
   an oversubscribed host — more workers than cores — blocks instead of
   burning scheduler slices. The atomic generation counter doubles as
   the release flag and the memory fence: plain writes made before
   [Atomic.incr gen] by the last arriver (the decision's outputs) are
   visible to every party after it observes the new generation, and
   plain writes made by a party before its arrival RMW are visible to
   the last arriver. *)
module Barrier = struct
  type t = {
    parties : int;
    arrivals : int Atomic.t;
    gen : int Atomic.t;
    m : Mutex.t;
    c : Condition.t;
    spin : int;
  }

  let create ?(spin = 512) ~parties () =
    if parties < 1 then invalid_arg "Par.Barrier.create: parties";
    {
      parties;
      arrivals = Atomic.make 0;
      gen = Atomic.make 0;
      m = Mutex.create ();
      c = Condition.create ();
      spin;
    }

  let parties t = t.parties

  let arrive t ~last =
    if t.parties = 1 then last ()
    else begin
      let g = Atomic.get t.gen in
      if Atomic.fetch_and_add t.arrivals 1 = t.parties - 1 then begin
        last ();
        Atomic.set t.arrivals 0;
        Atomic.incr t.gen;
        (* Waiters re-check [gen] under the mutex before sleeping, so
           broadcasting under it closes the missed-wakeup window. *)
        Mutex.lock t.m;
        Condition.broadcast t.c;
        Mutex.unlock t.m
      end
      else begin
        let k = ref 0 in
        while Atomic.get t.gen = g && !k < t.spin do
          incr k;
          Domain.cpu_relax ()
        done;
        if Atomic.get t.gen = g then begin
          Mutex.lock t.m;
          while Atomic.get t.gen = g do
            Condition.wait t.c t.m
          done;
          Mutex.unlock t.m
        end
      end
    end
end

(* The shared pool: sized on first use, regrown (larger only) on demand,
   torn down at exit so no spawned domain outlives the program. *)
let global : Pool.t option ref = ref None
let global_registered = ref false

let ensure_pool n =
  let n = max 1 n in
  match !global with
  | Some p when Pool.size p >= n -> p
  | prev ->
      Option.iter Pool.shutdown prev;
      let p = Pool.create ~domains:n in
      global := Some p;
      if not !global_registered then begin
        global_registered := true;
        at_exit (fun () -> Option.iter Pool.shutdown !global)
      end;
      p

let map ?domains ~f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let domains =
      max 1 (min n (match domains with Some d -> d | None -> recommended_domains ()))
    in
    if domains = 1 || Domain.DLS.get in_job_key then Array.map f a
    else begin
      let pool = ensure_pool domains in
      let results = Array.make n None in
      (* Strided split, as before the pool: worker w owns indices
         w, w + domains, … — the result does not depend on which domain
         runs which stride. *)
      Pool.run pool (fun w ->
          if w < domains then begin
            let i = ref w in
            while !i < n do
              results.(!i) <- Some (f a.(!i));
              i := !i + domains
            done
          end);
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* every index is covered by a stride *))
        results
    end
  end

let map_list ?domains ~f l =
  Array.to_list (map ?domains ~f (Array.of_list l))
