lib/sim/heap.mli:
