(** Exponentially-decayed access counter.

    The paper suggests "a simple counter-based mechanism" to remove replicas
    that are not frequently accessed (Sections 2.2 and 6). This counter
    estimates a per-replica request rate: each access adds one, and the
    accumulated count decays with time constant [tau] seconds, so the value
    approximates [rate × tau] at steady state. *)

type t

val create : ?tau:float -> now:float -> unit -> t
(** [tau] defaults to 30 seconds. *)

val record : t -> now:float -> unit
(** One access at simulated time [now]. *)

val record_many : t -> now:float -> count:int -> unit

val value : t -> now:float -> float
(** Decayed count at time [now]. *)

val rate : t -> now:float -> float
(** Estimated accesses per second ([value / tau]). *)

val reset : t -> now:float -> unit
