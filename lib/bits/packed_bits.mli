(** Fixed-length bitsets packed into OCaml [int] arrays, 62 usable bits per
    word.

    This is the storage layer shared by the membership status word and the
    topology cache's per-tree VID sets. All hot queries are word-level:
    iteration skips zero words, counting is SWAR popcount, and the
    selects ([first_set_at_or_below], [first_set_at_or_above], [nth_set])
    scan words, not bits, so they cost O(length/62) in the worst case.

    Indices are [0 .. length-1]; functions do not range-check beyond what
    is needed for memory safety, callers keep indices in range. *)

type t

val bits_per_word : int
(** 62: the number of payload bits stored per array word. Chosen below the
    63 value bits of an OCaml [int] so that masks like
    [(1 lsl (b + 1)) - 1] for any in-word bit position [b] never touch the
    sign bit. *)

val create : int -> t
(** [create len] is the empty (all-zero) set over [0 .. len-1]. *)

val create_full : int -> t
(** All bits in [0 .. len-1] set; tail bits beyond [len] stay clear. *)

val length : t -> int

val copy : t -> t

val clear_all : t -> unit
(** Reset every bit to 0 in place. *)

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val count : t -> int
(** Number of set bits, by word popcount. *)

val equal : t -> t -> bool
(** Same length and same members. *)

val first_set_at_or_below : t -> int -> int
(** [first_set_at_or_below t i] is the largest set index [<= i], or [-1]
    when no such bit exists. The caller guarantees [0 <= i < length]. *)

val first_set_at_or_above : t -> int -> int
(** Smallest set index [>= i], or [-1]. *)

val first_set_in_range : t -> lo:int -> hi:int -> int
(** Smallest set index in [\[lo, hi\]], or [-1]; [lo > hi] is allowed and
    yields [-1]. *)

val nth_set : t -> int -> int
(** [nth_set t n] is the index of the [n]-th set bit (0-based, ascending),
    or [-1] when fewer than [n + 1] bits are set — rank/select in
    O(length/62). *)

val nth_clear : t -> int -> int
(** Same for clear bits, counting only indices below [length]. *)

val iter_set : t -> (int -> unit) -> unit
(** Ascending order, skipping zero words. *)

val fold_set : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val iter_clear : t -> (int -> unit) -> unit
(** Ascending order over clear indices below [length]. *)

val iter_inter : t -> t -> (int -> unit) -> unit
(** [iter_inter a b f] calls [f] on every member of [a AND b], ascending.
    The two sets must have the same length. *)
