lib/des/des_sim.mli: Lesslog Lesslog_id Lesslog_metrics Lesslog_net Lesslog_prng Lesslog_trace Lesslog_workload Pid
