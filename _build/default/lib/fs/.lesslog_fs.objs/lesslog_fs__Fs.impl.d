lib/fs/fs.ml: Array Format Hashtbl Int64 Lesslog Lesslog_flow Lesslog_hash Lesslog_id Lesslog_membership Lesslog_storage List Params Pid Printf String
