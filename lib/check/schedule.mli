(** Checker schedules: the pure-data description of one simulation trial.

    A schedule fixes everything a trial needs — system size, RNG seed,
    workload shape, and an explicit list of disturbance steps — so a trial
    is a deterministic function of its schedule. The shrinker edits the
    [steps] list; {!to_churn}/{!to_plan} interpret whatever list results,
    sanitizing impossible steps into no-ops so delta-debugging can drop
    any subset. Schedules round-trip through the {!Lesslog_trace.Trace}
    codec ({!save}/{!load}); that file is the replayable repro format
    documented in [lib/check/README.md]. *)

module Status_word = Lesslog_membership.Status_word
module Trace = Lesslog_trace.Trace
module Des_sim = Lesslog_des.Des_sim
module Faults = Lesslog_workload.Faults
module Demand = Lesslog_workload.Demand

type sim =
  | Des  (** Oracle-driven {!Lesslog_des.Des_sim}: churn writes the status
             word directly. *)
  | Faults
      (** Oracle-free {!Lesslog_des.Fault_sim}: a heartbeat detector
          drives the status word; steps become a fault plan. *)

type step =
  | Join of { at : float; node : int }
  | Leave of { at : float; node : int }
  | Fail of { at : float; node : int }
  | Loss of { at : float; until : float; rate : float }
  | Cut of {
      at : float;
      until : float;
      direction : [ `Both | `In | `Out ];
      nodes : int list;
    }

type t = {
  m : int;
  seed : int;
  sim : sim;
  rate : float;  (** Total request rate, req/s, Zipf-spread over nodes. *)
  duration : float;
  capacity : float;  (** Per-node serve capacity, req/s. *)
  keys : int;  (** Registered keys ["check/k0"] .. ["check/k<n-1>"]. *)
  steps : step list;
}

val key_of_index : int -> string

val generate : seed:int -> m:int -> sim:sim -> t
(** A random schedule, deterministic in [seed]: churn steps from
    {!Lesslog_des.Churn_trace} over a small churner subset (Des mode), or
    crashes/bursts/partitions from {!Lesslog_workload.Faults.generate}
    (Faults mode). *)

val to_churn : t -> Des_sim.churn_event list
(** The steps as a churn trace, skipping steps impossible under the
    predicted liveness (join of a live node, leave/fail of a dead one) so
    shrunk step lists stay executable. Loss/Cut steps are ignored —
    [Des_sim] has no burst hooks. *)

val to_plan : t -> Faults.plan
(** The steps as a fault plan: Fail = crash (a later Join of the same node
    becomes its restart), Loss = burst, Cut = partition. Leave steps are
    ignored — [Fault_sim] models crashes, not clean departures. *)

val demand : t -> Status_word.t -> Demand.t
(** Zipf(0.8)-distributed per-node request rates totalling [t.rate], node
    ranks drawn by a seed-derived shuffle. *)

val to_events : ?expect:string -> ?mutation:bool -> t -> Trace.Event.t list
(** The repro-file encoding: [MRK t=0] header lines for the scalar
    parameters (plus the enabled mutation flag and, optionally, the oracle
    expected to fire), then one [MEM]/[LOS]/[CUT] line per step. *)

type decoded = { schedule : t; mutation : bool; expect : string option }

val of_events : Trace.Event.t list -> (decoded, string) result
val save : ?expect:string -> ?mutation:bool -> string -> t -> unit
val load : string -> (decoded, string) result

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
