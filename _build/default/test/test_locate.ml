(* The distributed Section 5 search procedures must agree with the
   registry-driven self-organized mechanism. *)

open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Self_org = Lesslog.Self_org
module Locate = Lesslog.Locate
module Status_word = Lesslog_membership.Status_word
module File_store = Lesslog_storage.File_store
module Rng = Lesslog_prng.Rng

let pid = Pid.unsafe_of_int

let key_targeting cluster target =
  let rec search i =
    if i > 100_000 then failwith "no key found"
    else
      let key = Printf.sprintf "synthetic-%d" i in
      if Pid.equal (Cluster.target_of_key cluster key) target then key
      else search (i + 1)
  in
  search 0

(* Random, failure-free history: inserts, replications, joins, leaves. *)
let churned_cluster ~m ~seed ~files ~steps =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  let rng = Rng.create ~seed in
  for i = 1 to files do
    ignore (Ops.insert cluster ~key:(Printf.sprintf "f-%d-%d" seed i))
  done;
  for _ = 1 to steps do
    let status = Cluster.status cluster in
    match Rng.int rng 3 with
    | 0 when Status_word.live_count status > 2 -> (
        match Status_word.random_live status rng with
        | Some p -> ignore (Self_org.leave cluster p)
        | None -> ())
    | 1 -> (
        match Status_word.random_dead status rng with
        | Some p -> ignore (Self_org.join cluster p)
        | None -> ())
    | _ -> (
        let keys = Cluster.registered_keys cluster in
        match keys with
        | [] -> ()
        | _ -> (
            let key = Rng.pick_list rng keys in
            match Cluster.holders cluster ~key with
            | [] -> ()
            | holders ->
                ignore
                  (Ops.replicate ~rng cluster
                     ~overloaded:(Rng.pick_list rng holders)
                     ~key)))
  done;
  (cluster, rng)

(* --- classify ------------------------------------------------------------- *)

let test_classify_fresh_insert () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  Alcotest.(check bool) "target is inserted" true
    (Locate.classify cluster ~at:(pid 4) ~key = File_store.Inserted);
  Alcotest.(check bool) "elsewhere replica" true
    (Locate.classify cluster ~at:(pid 5) ~key = File_store.Replicated)

let test_classify_dead_target () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  (* P(6) is the max-VID live node of the tree of P(4). *)
  Alcotest.(check bool) "P(6) is inserted holder" true
    (Locate.classify cluster ~at:(pid 6) ~key = File_store.Inserted)

let prop_classification_matches_tags =
  Test_support.qcheck_case ~count:100
    ~name:"Section 5.2 rule = stored origin tags (failure-free history)"
    QCheck2.Gen.(
      int_range 3 6 >>= fun m ->
      int_range 0 1_000_000 >>= fun seed ->
      int_range 0 8 >>= fun files ->
      int_range 0 20 >>= fun steps -> return (m, seed, files, steps))
    (fun (m, seed, files, steps) ->
      let cluster, _ = churned_cluster ~m ~seed ~files ~steps in
      Status_word.fold_live (Cluster.status cluster) ~init:true ~f:(fun ok p ->
          ok
          && Locate.inserted_files cluster ~at:p
             = File_store.inserted_keys (Cluster.store cluster p)))

(* --- join_candidates -------------------------------------------------------- *)

let test_join_candidates_paper_example () =
  (* P(4), P(5) dead; f targets P(4), stored at P(6); P(5) registers as
     live: the search must find f at P(6). *)
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  Status_word.set_live (Cluster.status cluster) (pid 5);
  Alcotest.(check (list (pair string int))) "found at P(6)"
    [ (key, 6) ]
    (List.map
       (fun (k, p) -> (k, Pid.to_int p))
       (Locate.join_candidates cluster ~joining:(pid 5)))

let test_join_candidates_rejects_misuse () =
  let cluster = Cluster.create (Params.create ~m:4 ()) in
  Status_word.set_dead (Cluster.status cluster) (pid 3);
  Alcotest.check_raises "dead joiner"
    (Invalid_argument "Locate.join_candidates: joiner not registered live")
    (fun () -> ignore (Locate.join_candidates cluster ~joining:(pid 3)));
  let ft = Cluster.create (Params.create ~m:4 ~b:1 ()) in
  Alcotest.check_raises "ft unsupported"
    (Invalid_argument "Locate.join_candidates: b > 0 unsupported") (fun () ->
      ignore (Locate.join_candidates ft ~joining:(pid 0)))

let prop_join_search_matches_registry_mechanism =
  Test_support.qcheck_case ~count:100
    ~name:"Section 5.1 search = registry-driven join"
    QCheck2.Gen.(
      int_range 3 6 >>= fun m ->
      int_range 0 1_000_000 >>= fun seed ->
      int_range 1 8 >>= fun files ->
      int_range 0 15 >>= fun steps -> return (m, seed, files, steps))
    (fun (m, seed, files, steps) ->
      let cluster, rng = churned_cluster ~m ~seed ~files ~steps in
      match Status_word.random_dead (Cluster.status cluster) rng with
      | None -> true (* nobody to join *)
      | Some joiner ->
          (* Run the paper's search on a registered-live joiner... *)
          Status_word.set_live (Cluster.status cluster) joiner;
          let searched = Locate.join_candidates cluster ~joining:joiner in
          Status_word.set_dead (Cluster.status cluster) joiner;
          (* ...and the registry mechanism on an identical copy. *)
          let stats = Self_org.join cluster joiner in
          List.sort compare searched
          = List.sort compare stats.Self_org.took_over)

let () =
  Alcotest.run "locate"
    [
      ( "classify",
        [
          Alcotest.test_case "fresh insert" `Quick test_classify_fresh_insert;
          Alcotest.test_case "dead target" `Quick test_classify_dead_target;
        ] );
      ( "join search",
        [
          Alcotest.test_case "paper example" `Quick
            test_join_candidates_paper_example;
          Alcotest.test_case "misuse rejected" `Quick
            test_join_candidates_rejects_misuse;
        ] );
      ( "equivalence properties",
        [
          prop_classification_matches_tags;
          prop_join_search_matches_registry_mechanism;
        ] );
    ]
