module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Topology = Lesslog_topology.Topology
module Rng = Lesslog_prng.Rng

type t =
  | Lesslog
  | Log_based
  | Random
  | Lesslog_biased of [ `Own | `Root ]

let name = function
  | Lesslog -> "lesslog"
  | Log_based -> "log-based"
  | Random -> "random"
  | Lesslog_biased `Own -> "lesslog-own"
  | Lesslog_biased `Root -> "lesslog-root"

let all = [ Log_based; Lesslog; Random ]

(* The paper's placement is exactly the core algorithm's decision. *)
let place_lesslog ~rng ~cluster ~key ~overloaded =
  Ops.choose_replica_target ~rng cluster ~overloaded ~key

let place_log_based ~cluster ~flow ~demand ~key ~overloaded =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let holders p = Cluster.holds cluster p ~key in
  let candidates =
    List.filter
      (fun p -> not (holders p))
      (Topology.children_list tree status overloaded)
  in
  match candidates with
  | [] -> None
  | _ ->
      let inflows = Flow.inflows flow ~holders ~demand ~at:overloaded in
      let forwarded p =
        match List.assoc_opt (Some p) inflows with Some r -> r | None -> 0.0
      in
      (* The child that forwards the most requests; inflows are sorted by
         rate, so scan them first for a candidate, falling back to the
         children-list head when no candidate forwards anything. *)
      let best =
        List.fold_left
          (fun acc p ->
            match acc with
            | Some (_, best_rate) when forwarded p <= best_rate -> acc
            | _ -> Some (p, forwarded p))
          None candidates
      in
      Option.map fst best

let place_random ~rng ~cluster ~key =
  let status = Cluster.status cluster in
  let non_holders =
    Status_word.fold_live status ~init:[] ~f:(fun acc p ->
        if Cluster.holds cluster p ~key then acc else p :: acc)
  in
  match non_holders with
  | [] -> None
  | _ -> Some (Rng.pick_list rng non_holders)

let place_biased side ~cluster ~key ~overloaded =
  let own, root_list = Ops.replication_candidates cluster ~overloaded ~key in
  match (side, own, root_list) with
  | _, [], [] -> None
  | _, c :: _, [] | _, [], c :: _ -> Some c
  | `Own, c :: _, _ -> Some c
  | `Root, _, c :: _ -> Some c

let place t ~rng ~cluster ~flow ~demand ~key ~overloaded =
  match t with
  | Lesslog -> place_lesslog ~rng ~cluster ~key ~overloaded
  | Log_based -> place_log_based ~cluster ~flow ~demand ~key ~overloaded
  | Random -> place_random ~rng ~cluster ~key
  | Lesslog_biased side -> place_biased side ~cluster ~key ~overloaded
