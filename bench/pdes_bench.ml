(* `bench pdes`: the domain-parallel sharded simulator.

   Three gates, in increasing cost:

   1. Determinism (always enforced, the CI smoke gate): one Pdes_sim
      configuration run at 1, 2, 4 and 8 worker domains must produce the
      same digest, served count and end-state replica population,
      bit for bit. Domain count is a speed knob only; any divergence is
      a barrier or mailbox-ordering bug and fails the bench.

   2. Scaling (enforced only on hosts with >= 8 recommended domains,
      printed as SKIP elsewhere): aggregate events/s of the sharded
      simulator at 8 domains must be >= 3x the single-domain packed-core
      simulator at the m = 16 scale-up population — the parallel
      counterpart of `bench des`'s 5x scheduler gate.

   3. Steady state (always enforced): a large-m run must complete and
      its end-state replica count must land within a small constant
      factor of the mean-field oracle total_rate / capacity — the
      analytic fixed point of flow balancing. The band [1, 4] absorbs
      cooldown quantisation and per-subtree overshoot.

   Results append to BENCH_pdes.json (written to $LESSLOG_BENCH_OUT or
   the working directory); LESSLOG_BENCH_QUICK=1 shrinks m and the
   durations for CI smoke. *)

module E = Lesslog_harness.Experiments
module Bench_json = Lesslog_report.Bench_json

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

let failed = ref false

let fail fmt =
  failed := true;
  Printf.eprintf fmt

(* Gate 1: the digest (and every headline count) is invariant in the
   domain count. *)
let determinism_gate ~quick =
  let m = if quick then 10 else 12 in
  let duration = if quick then 2.0 else 3.0 in
  let point domains =
    E.pdes_point ~b:2 ~domains ~m ~rate_per_node:2.0 ~duration ~capacity:100.0
      ~seed:42 ()
  in
  let reference = point 1 in
  Printf.printf
    "determinism: m=%d, 4 shards, digest at 1 domain = %d\n%!" m
    reference.E.pdes_digest;
  List.iter
    (fun domains ->
      let p = point domains in
      let same =
        p.E.pdes_digest = reference.E.pdes_digest
        && p.E.pdes_served = reference.E.pdes_served
        && p.E.pdes_replicas_end = reference.E.pdes_replicas_end
        && p.E.pdes_events = reference.E.pdes_events
      in
      Printf.printf "  %d domains: digest %d  served %d  %s\n%!" domains
        p.E.pdes_digest p.E.pdes_served
        (if same then "OK" else "DIVERGED");
      if not same then
        fail
          "bench pdes: FAIL: results at %d domains diverge from 1 domain \
           (digest %d vs %d)\n"
          domains p.E.pdes_digest reference.E.pdes_digest)
    [ 2; 4; 8 ];
  reference

(* Gate 2: aggregate throughput at 8 domains vs the single-domain packed
   core, both at the m = 16 scale-up population. *)
let scaling_gate ~quick =
  let rate_per_node = if quick then 0.5 else 2.0 in
  let duration = if quick then 0.5 else 2.0 in
  let packed =
    E.des_point ~m:16 ~rate_per_node ~duration ~capacity:100.0 ~seed:42
  in
  let sharded domains =
    E.pdes_point ~b:3 ~domains ~m:16 ~rate_per_node ~duration ~capacity:100.0
      ~seed:42 ()
  in
  let p1 = sharded 1 in
  let p8 = sharded 8 in
  let speedup = p8.E.pdes_events_per_sec /. packed.E.events_per_sec in
  Printf.printf
    "scaling m=16: packed 1-domain %.3g ev/s   sharded 1-domain %.3g ev/s   \
     sharded 8-domain %.3g ev/s   %.2fx vs packed\n%!"
    packed.E.events_per_sec p1.E.pdes_events_per_sec p8.E.pdes_events_per_sec
    speedup;
  let cores = Domain.recommended_domain_count () in
  if cores >= 8 then begin
    if speedup < 3.0 then
      fail
        "bench pdes: FAIL: 8-domain speedup %.2fx below the 3x target on a \
         %d-domain host\n"
        speedup cores
  end
  else
    Printf.printf
      "  3x gate: SKIP (host recommends %d domain(s); gate needs >= 8)\n%!"
      cores;
  (packed.E.events_per_sec, p1.E.pdes_events_per_sec,
   p8.E.pdes_events_per_sec, speedup)

(* Gate 3: a large-m run completes and its end-state replica population
   sits within [1x, 4x] of the mean-field oracle. *)
let steady_state_gate ~quick =
  let m = if quick then 12 else 20 in
  let b = if quick then 2 else 3 in
  let rate_per_node = if quick then 2.0 else 0.01 in
  let duration = 6.0 in
  let p =
    E.pdes_point ~b ~domains:1 ~m ~rate_per_node ~duration ~capacity:100.0
      ~seed:42 ()
  in
  let ratio =
    float_of_int p.E.pdes_replicas_end /. p.E.pdes_oracle_replicas
  in
  Printf.printf
    "steady state m=%d: %d events in %.3fs, replicas %d vs oracle %.1f \
     (ratio %.2f, band [1, 4])\n%!"
    m p.E.pdes_events p.E.pdes_secs p.E.pdes_replicas_end
    p.E.pdes_oracle_replicas ratio;
  if ratio < 1.0 || ratio > 4.0 then
    fail
      "bench pdes: FAIL: m=%d replica ratio %.2f outside the mean-field band \
       [1, 4]\n"
      m ratio;
  (p, ratio)

let run () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  print_endline "bench pdes: domain-parallel sharded simulator";
  print_endline "---------------------------------------------";
  let reference = determinism_gate ~quick in
  let packed_eps, p1_eps, p8_eps, speedup = scaling_gate ~quick in
  let steady, ratio = steady_state_gate ~quick in
  Bench_json.write
    ~path:(out_file "BENCH_pdes.json")
    [
      ("pdes/determinism_digest", float_of_int reference.E.pdes_digest);
      ("pdes/determinism_events", float_of_int reference.E.pdes_events);
      ("pdes/m16_packed_events_per_sec", packed_eps);
      ("pdes/m16_sharded_1d_events_per_sec", p1_eps);
      ("pdes/m16_sharded_8d_events_per_sec", p8_eps);
      ("pdes/m16_speedup_vs_packed", speedup);
      ("pdes/steady_events_per_sec", steady.E.pdes_events_per_sec);
      ("pdes/steady_replica_ratio", ratio);
      ("pdes/steady_wall_s", steady.E.pdes_secs);
    ];
  Printf.printf "wrote %s\n" (out_file "BENCH_pdes.json");
  if !failed then exit 1
