(** The reliability testbed: the event-driven simulator with no oracle.

    {!Des_sim} tells every node which peers are dead (the status word is
    written directly by the churn schedule) and treats a dropped message
    as lost forever. This simulator removes both crutches:

    - requests travel through {!Lesslog_net.Rpc} — per-request IDs,
      per-attempt timeouts, exponential-backoff retransmission, and an
      explicit fault when the attempt budget is spent, so a request is
      never silently lost;
    - servers deduplicate request IDs ({!Lesslog_net.Rpc.Dedup}), so
      retransmissions are idempotent;
    - the membership status word is driven {e only} by a
      {!Lesslog_net.Heartbeat} failure detector observing ping timeouts
      over the same lossy overlay. FINDLIVENODE routing and subtree
      migration run off {e suspected} liveness: a false suspicion
      triggers a real (spurious) migration, and the later pong triggers a
      rejoin;
    - a {!Lesslog_workload.Faults.plan} injects loss bursts, node
      crashes with optional restart, and asymmetric partitions, while
      ground truth is tracked separately so detector accuracy is
      measurable.

    Every run reports delivered-within-deadline and delivered-or-faulted
    rates, duplicate serves, spurious suspicions/migrations, and the
    detector's agreement with injected truth over time. *)

module Latency = Lesslog_net.Latency
module Rpc = Lesslog_net.Rpc
module Heartbeat = Lesslog_net.Heartbeat
module Histogram = Lesslog_metrics.Histogram
module Timeseries = Lesslog_metrics.Timeseries
module Trace = Lesslog_trace.Trace

type config = {
  capacity : float;  (** Requests/s a node serves before replicating. *)
  detection_tau : float;  (** Access-counter decay constant, seconds. *)
  cooldown : float;  (** Minimum spacing of replications per node. *)
  latency : Latency.t;
  loss : float;  (** Baseline drop probability (bursts raise it). *)
  rpc : Rpc.config;
  heartbeat : Heartbeat.config;
  deadline : float;
      (** A request served within this many seconds of first issue counts
          as delivered within deadline. *)
  arrival_stop : float;
      (** Fraction of the run after which no new requests are issued, so
          in-flight requests drain before the end (default 0.65 —
          {!Lesslog_net.Retry.max_lifetime} under the default policy fits
          in the remaining 35% of any run of 30 s or more). *)
  agreement_target : float;
      (** Detector-vs-truth agreement that counts as converged. *)
  sample_period : float;  (** Agreement sampling interval, seconds. *)
}

val default_config : config

type result = {
  issued : int;
  served : int;
  faulted : int;  (** Exhausted the retry budget: a {e reported} fault. *)
  pending_at_end : int;
      (** Still in flight when the clock stopped — [0] whenever
          [arrival_stop] leaves room to drain. Never silently dropped:
          [issued = served + faulted + pending_at_end]. *)
  within_deadline : int;
  duplicate_serves : int;  (** Retransmissions absorbed by server dedup. *)
  retransmissions : int;
  timeouts : int;
  latencies : Histogram.t;  (** First issue to first reply, served only. *)
  hops : Histogram.t;
  replicas_created : int;
  suspicions : int;
  recoveries : int;
  spurious_suspicions : int;  (** Suspicions of a truly live node. *)
  migrations : int;  (** Suspicion-triggered relocations. *)
  spurious_migrations : int;
  crashes : int;
  restarts : int;
  lost_keys : int;  (** Keys wiped with no surviving copy ([b = 0]). *)
  detector_agreement : float;
      (** Fraction of monitored nodes whose detector verdict matches
          injected truth when the run ends. *)
  convergence : float option;
      (** Seconds after the last injected disturbance until agreement
          first reached [agreement_target]; [None] if it never did. *)
  agreement_timeline : Timeseries.t;
  messages : int;
}

val run :
  ?config:config ->
  ?plan:Lesslog_workload.Faults.plan ->
  ?sink:(Trace.Event.t -> unit) ->
  ?obs:Lesslog_obs.Obs.t ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  demand:Lesslog_workload.Demand.t ->
  duration:float ->
  unit ->
  result
(** Run the scenario. The cluster's status word must initially agree with
    truth (it is never written by the harness afterwards — only by
    {!Lesslog.Self_org} calls triggered by detector verdicts).

    With [obs], the rpc tracker keeps the [rpc/]* metrics in
    [obs.registry], serve completions feed the [fsim/]* counters and
    timers, and each request opens a ["lookup"] span keyed by its rpc id:
    retransmissions bump the span's attempt and drop instant
    ["rpc/retry"]/["rpc/timeout"] marks, completion closes it with the
    serving node and hop count, exhaustion closes it as a fault.

    With [substrate], routing, replica placement and verdict-triggered
    repair go through the given {!Lesslog_substrate.Substrate.t} (the
    generic registry repair for
    {!Lesslog_substrate.Substrate.Generic} substrates; the native
    adapter keeps the Section 5 mechanism and is bit-for-bit identical to
    omitting [substrate]). The rpc, dedup and heartbeat layers are
    substrate-independent and run unchanged. *)
