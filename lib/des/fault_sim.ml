open Lesslog_id
module Engine = Lesslog_sim.Engine
module Overlay = Lesslog_net.Overlay
module Latency = Lesslog_net.Latency
module Rpc = Lesslog_net.Rpc
module Heartbeat = Lesslog_net.Heartbeat
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Self_org = Lesslog.Self_org
module Status_word = Lesslog_membership.Status_word
module Topology = Lesslog_topology.Topology
module File_store = Lesslog_storage.File_store
module Access_counter = Lesslog_storage.Access_counter
module Demand = Lesslog_workload.Demand
module Faults = Lesslog_workload.Faults
module Histogram = Lesslog_metrics.Histogram
module Timeseries = Lesslog_metrics.Timeseries
module Rng = Lesslog_prng.Rng
module Trace = Lesslog_trace.Trace
module Obs = Lesslog_obs.Obs
module Substrate = Lesslog_substrate.Substrate

type config = {
  capacity : float;
  detection_tau : float;
  cooldown : float;
  latency : Latency.t;
  loss : float;
  rpc : Rpc.config;
  heartbeat : Heartbeat.config;
  deadline : float;
  arrival_stop : float;
  agreement_target : float;
  sample_period : float;
}

let default_config =
  {
    capacity = 100.0;
    detection_tau = 2.0;
    cooldown = 0.5;
    latency = Latency.default;
    loss = 0.0;
    rpc = Rpc.default_config;
    heartbeat = Heartbeat.default_config;
    deadline = 2.0;
    arrival_stop = 0.65;
    agreement_target = 0.95;
    sample_period = 0.25;
  }

type result = {
  issued : int;
  served : int;
  faulted : int;
  pending_at_end : int;
  within_deadline : int;
  duplicate_serves : int;
  retransmissions : int;
  timeouts : int;
  latencies : Histogram.t;
  hops : Histogram.t;
  replicas_created : int;
  suspicions : int;
  recoveries : int;
  spurious_suspicions : int;
  migrations : int;
  spurious_migrations : int;
  crashes : int;
  restarts : int;
  lost_keys : int;
  detector_agreement : float;
  convergence : float option;
  agreement_timeline : Timeseries.t;
  messages : int;
}

(* Overlay messages ride the packed plane (tag in bits 0-2 of [b], fields
   above, issue timestamp in [x] where needed):

     GET    b = 0 | origin << 3 | hops << 27 | id << 33   x = issued_at
     REPLY  b = 1 | hops << 3 | server << 9 | id << 33    x = issued_at
     PUSH   b = 2 | version << 3
     PING   b = 3 | seq << 3
     PONG   b = 4 | seq << 3

   Request ids are per-run monotone counters, comfortably under the 30
   bits both layouts leave them at bit 33. The reply carries the serving
   node so the origin can attribute the request's span. *)

let origin_bits = 24
let origin_mask = (1 lsl origin_bits) - 1
let hops_bits = 6
let hops_mask = (1 lsl hops_bits) - 1

let get_b ~id ~origin ~hops =
  0 lor (origin lsl 3)
  lor (hops lsl (3 + origin_bits))
  lor (id lsl (3 + origin_bits + hops_bits))

let reply_b ~id ~server ~hops =
  1 lor (hops lsl 3)
  lor (server lsl (3 + hops_bits))
  lor (id lsl (3 + hops_bits + origin_bits))
let push_b ~version = 2 lor (version lsl 3)
let ping_b ~seq = 3 lor (seq lsl 3)
let pong_b ~seq = 4 lor (seq lsl 3)

(* Per-request metadata threaded through the rpc tracker. *)
type request = { origin : Pid.t; issued_at : float }

(* Observability handles, resolved once per run (see {!Des_sim}). The
   [rpc/]* counters live in the tracker itself (it is created with the
   registry); here we keep the spans — one ["lookup"] span per request id,
   instant marks for timeouts/retries — and the serve-side attribution. *)
type instruments = {
  spans : Obs.Span.sink;
  sp_lookup : int;
  sp_timeout : int;
  sp_retry : int;
  sp_replicate : int;
  ob_served : Obs.Registry.counter;
}

let make_instruments ~latencies ~hops (obs : Obs.t) =
  let r = obs.Obs.registry in
  ignore (Obs.Registry.timer_backed r "fsim/latency_s" latencies);
  ignore (Obs.Registry.timer_backed r "fsim/hops" hops);
  {
    spans = obs.Obs.spans;
    sp_lookup = Obs.Span.intern obs.Obs.spans "lookup";
    sp_timeout = Obs.Span.intern obs.Obs.spans "rpc/timeout";
    sp_retry = Obs.Span.intern obs.Obs.spans "rpc/retry";
    sp_replicate = Obs.Span.intern obs.Obs.spans "replicate";
    ob_served = Obs.Registry.counter r "fsim/served";
  }

type state = {
  config : config;
  rng : Rng.t;
  cluster : Cluster.t;
  key : string;
  tree : Lesslog_ptree.Ptree.t;
      (* the key's lookup tree, fixed for the whole run *)
  engine : Engine.t;
  overlay : unit Overlay.t;
  (* Injected ground truth: which processes are actually up. It runs the
     physical world — handlers, who can act — and scores the detector; it
     is never consulted for routing or placement. *)
  truth : bool array;
  monitored : Pid.t array;
  mutable rpc : request Rpc.t option;
      (* built after the state: transmit closes over it *)
  mutable detector : Heartbeat.t option;
  estimators : Access_counter.t array;
  cooldown_until : float array;
  dedup : Rpc.Dedup.t;
  mutable served : int;
  mutable within_deadline : int;
  latencies : Histogram.t;
  hops : Histogram.t;
  mutable replicas_created : int;
  mutable spurious_suspicions : int;
  mutable migrations : int;
  mutable spurious_migrations : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable lost_keys : int;
  mutable convergence : float option;
  agreement_timeline : Timeseries.t;
  sink : (Trace.Event.t -> unit) option;
  obs : instruments option;
  substrate : Substrate.t option;
      (* [None] = the native direct path; [Some] routes, places replicas
         and repairs detector verdicts through the substrate contract *)
}

let now st = Engine.now st.engine
let emit st event = match st.sink with None -> () | Some f -> f event

let route_next st me =
  match st.substrate with
  | None -> Topology.route_next st.tree (Cluster.status st.cluster) me
  | Some sub -> sub.Substrate.next_hop ~key:st.key me

(* A request served at its origin: close its span and count it. Faults
   are closed from the Exhausted rpc event; latency and hops flow into
   the registry through the backing histograms. *)
let obs_completed st ~id ~server ~hops =
  match st.obs with
  | None -> ()
  | Some i ->
      Obs.Span.end_span_int i.spans ~id ~at:(now st) ~server ~hops;
      Obs.Registry.incr i.ob_served
let truth_live st p = st.truth.(Pid.to_int p)
let rpc st = Option.get st.rpc
let detector st = Option.get st.detector

(* --- Serving and replication (as in Des_sim, minus oracle faults) ------- *)

let maybe_replicate st ~overloaded =
  let i = Pid.to_int overloaded in
  let rate = Access_counter.rate st.estimators.(i) ~now:(now st) in
  if rate > st.config.capacity && now st >= st.cooldown_until.(i) then begin
    let target =
      match st.substrate with
      | None ->
          Ops.choose_replica_target ~rng:st.rng st.cluster ~overloaded
            ~key:st.key
      | Some sub ->
          Ops.choose_replica_target_via ~rng:st.rng sub st.cluster ~overloaded
            ~key:st.key
    in
    match target with
    | None -> ()
    | Some dest ->
        st.cooldown_until.(i) <- now st +. st.config.cooldown;
        let version =
          Option.value ~default:0
            (File_store.version (Cluster.store st.cluster overloaded)
               ~key:st.key)
        in
        Overlay.send_packed st.overlay ~src:overloaded ~dst:dest
          ~b:(push_b ~version) ~x:0.0
  end

(* First delivery of a request ID does the work; duplicates only re-send
   the reply, so retransmission is idempotent at the server. *)
let serve st ~server ~id ~origin ~issued_at ~hops =
  if Rpc.Dedup.first st.dedup ~id then begin
    let i = Pid.to_int server in
    File_store.record_access (Cluster.store st.cluster server) ~key:st.key
      ~now:(now st);
    Access_counter.record st.estimators.(i) ~now:(now st);
    emit st
      (Trace.Event.Request
         { at = now st; origin = Pid.to_int origin; server = Some i; hops });
    maybe_replicate st ~overloaded:server
  end;
  if Pid.equal server origin then begin
    match Rpc.complete (rpc st) ~id with
    | Some _ ->
        st.served <- st.served + 1;
        let latency = now st -. issued_at in
        Histogram.add st.latencies latency;
        Histogram.add_int st.hops hops;
        if latency <= st.config.deadline then
          st.within_deadline <- st.within_deadline + 1;
        obs_completed st ~id ~server:(Pid.to_int server) ~hops
    | None -> ()
  end
  else
    Overlay.send_packed st.overlay ~src:server ~dst:origin
      ~b:(reply_b ~id ~server:(Pid.to_int server) ~hops)
      ~x:issued_at

(* One transmission attempt: route the request from its origin. A dead
   end (no live route right now) sends nothing — the attempt simply times
   out and the retry may find a route once the detector has migrated the
   subtree. *)
let transmit st ~id ~attempt:_ { origin; issued_at } =
  if truth_live st origin then begin
    if Cluster.holds st.cluster origin ~key:st.key then
      serve st ~server:origin ~id ~origin ~issued_at ~hops:0
    else
      match route_next st origin with
      | Some next ->
          Overlay.send_packed st.overlay ~src:origin ~dst:next
            ~b:(get_b ~id ~origin:(Pid.to_int origin) ~hops:1)
            ~x:issued_at
      | None -> ()
  end

let handle st ~me ~src b x =
  match b land 7 with
  | 0 (* GET *) ->
      let origin = Pid.unsafe_of_int ((b lsr 3) land origin_mask) in
      let hops = (b lsr (3 + origin_bits)) land hops_mask in
      let id = b lsr (3 + origin_bits + hops_bits) in
      if Cluster.holds st.cluster me ~key:st.key then
        serve st ~server:me ~id ~origin ~issued_at:x ~hops
      else begin
        (* The hop guard keeps a (non-conforming) substrate route from
           wrapping the packed hop field; native routes never reach it. *)
        match route_next st me with
        | Some next when hops < hops_mask ->
            Overlay.send_packed st.overlay ~src:me ~dst:next
              ~b:(get_b ~id ~origin:(Pid.to_int origin) ~hops:(hops + 1))
              ~x
        | Some _ | None -> ()
        (* Dead end: the rpc layer, not the router, reports the fault. *)
      end
  | 1 (* REPLY *) -> (
      let hops = (b lsr 3) land hops_mask in
      let server = (b lsr (3 + hops_bits)) land origin_mask in
      let id = b lsr (3 + hops_bits + origin_bits) in
      match Rpc.complete (rpc st) ~id with
      | Some _ ->
          st.served <- st.served + 1;
          let latency = now st -. x in
          Histogram.add st.latencies latency;
          Histogram.add_int st.hops hops;
          if latency <= st.config.deadline then
            st.within_deadline <- st.within_deadline + 1;
          obs_completed st ~id ~server ~hops
      | None -> ())
  | 2 (* PUSH *) ->
      if not (Cluster.holds st.cluster me ~key:st.key) then begin
        let version = b lsr 3 in
        File_store.add (Cluster.store st.cluster me) ~key:st.key
          ~origin:File_store.Replicated ~version ~now:(now st);
        st.replicas_created <- st.replicas_created + 1;
        emit st
          (Trace.Event.Replicate
             { at = now st; src = Pid.to_int src; dst = Pid.to_int me;
               key = st.key });
        match st.obs with
        | None -> ()
        | Some i ->
            Obs.Span.emit i.spans ~name:i.sp_replicate ~id:(Pid.to_int src)
              ~origin:(Pid.to_int src) ~at:(now st) ~dur:0.0
              ~server:(Some (Pid.to_int me)) ~hops:0 ~attempt:0
      end
  | 3 (* PING *) ->
      Overlay.send_packed st.overlay ~src:me ~dst:src
        ~b:(pong_b ~seq:(b lsr 3)) ~x:0.0
  | 4 (* PONG *) -> Heartbeat.pong (detector st) ~peer:src ~seq:(b lsr 3)
  | _ -> ()

(* --- The detector drives membership -------------------------------------- *)

(* Pings originate from some node that is actually up (only live
   processes act); picking it needs no oracle because a process trivially
   knows whether it itself is running. *)
let pick_truth_live st =
  let space = Array.length st.truth in
  let rec try_random k =
    if k = 0 then
      (* Dense failure: scan from a random offset. *)
      let off = Rng.int st.rng space in
      let rec scan i =
        if i = space then None
        else
          let j = (off + i) mod space in
          if st.truth.(j) then Some (Pid.unsafe_of_int j) else scan (i + 1)
      in
      scan 0
    else
      let i = Rng.int st.rng space in
      if st.truth.(i) then Some (Pid.unsafe_of_int i) else try_random (k - 1)
  in
  try_random 16

let send_ping st ~seq peer =
  match pick_truth_live st with
  | None -> ()
  | Some monitor ->
      Overlay.send_packed st.overlay ~src:monitor ~dst:peer ~b:(ping_b ~seq)
        ~x:0.0

(* Membership repair dispatch (see Des_sim): Generic substrates run the
   overlay-agnostic registry repair; the direct path and the native
   adapter run the Section 5 mechanism verbatim. *)
let generic_sub st =
  match st.substrate with
  | Some sub when sub.Substrate.membership = Substrate.Generic -> Some sub
  | _ -> None

let repair_leave st p =
  match generic_sub st with
  | Some sub ->
      ignore (Ops.on_membership_via ~now:(now st) sub st.cluster ~event:(`Leave p))
  | None -> ignore (Self_org.leave ~now:(now st) st.cluster p)

(* Keys whose data dies with [p]: no other live holder. Computed before
   the repair re-creates them from the registry, matching the native
   fail_stats.lost accounting. *)
let sole_holder_keys st p =
  List.filter
    (fun key ->
      match Cluster.holders st.cluster ~key with
      | [ q ] -> Pid.equal q p
      | _ -> false)
    (Cluster.registered_keys st.cluster)

let repair_fail st p =
  match generic_sub st with
  | Some sub ->
      let lost = List.length (sole_holder_keys st p) in
      ignore (Ops.on_membership_via ~now:(now st) sub st.cluster ~event:(`Fail p));
      st.lost_keys <- st.lost_keys + lost
  | None ->
      let stats = Self_org.fail ~now:(now st) st.cluster p in
      st.lost_keys <- st.lost_keys + List.length stats.Self_org.lost

let repair_join st p =
  match generic_sub st with
  | Some sub ->
      ignore (Ops.on_membership_via ~now:(now st) sub st.cluster ~event:(`Join p))
  | None -> ignore (Self_org.join ~now:(now st) st.cluster p)

(* A verdict change is what a real deployment would act on: mark the
   status word and run the Section 5 self-organized migration. This is
   the only writer of the status word after t = 0. *)
let on_verdict st p verdict =
  let status = Cluster.status st.cluster in
  match verdict with
  | `Suspect ->
      emit st (Trace.Event.Suspect { at = now st; node = Pid.to_int p });
      if Status_word.is_live status p then begin
        st.migrations <- st.migrations + 1;
        if truth_live st p then begin
          (* False suspicion: the node is up, but the system routes and
             re-homes as if it departed. *)
          st.spurious_suspicions <- st.spurious_suspicions + 1;
          st.spurious_migrations <- st.spurious_migrations + 1;
          repair_leave st p
        end
        else repair_fail st p
      end
  | `Trust ->
      emit st (Trace.Event.Trust { at = now st; node = Pid.to_int p });
      if Status_word.is_dead status p then repair_join st p

(* --- Fault injection ------------------------------------------------------ *)

let install_handler st p = Overlay.attach st.overlay p

let crash st p =
  if truth_live st p then begin
    st.truth.(Pid.to_int p) <- false;
    Overlay.detach st.overlay p;
    st.crashes <- st.crashes + 1;
    emit st
      (Trace.Event.Membership
         { at = now st; node = Pid.to_int p; change = `Fail })
  end

let restart st p =
  if not (truth_live st p) then begin
    st.truth.(Pid.to_int p) <- true;
    install_handler st p;
    st.restarts <- st.restarts + 1;
    emit st
      (Trace.Event.Membership
         { at = now st; node = Pid.to_int p; change = `Join })
  end

let schedule_plan st (plan : Faults.plan) =
  let at time f = Engine.schedule_at st.engine ~time f in
  List.iter
    (fun (c : Faults.crash) ->
      at c.at (fun () -> crash st c.node);
      Option.iter (fun r -> at r (fun () -> restart st c.node)) c.restart_at)
    plan.crashes;
  (* Loss bursts stack: the effective loss is the max of the baseline and
     every active burst. *)
  let active_losses = ref [] in
  let apply_loss () =
    let eff = List.fold_left Float.max st.config.loss !active_losses in
    Overlay.set_loss st.overlay eff
  in
  List.iter
    (fun (b : Faults.burst) ->
      at b.from_ (fun () ->
          active_losses := b.loss :: !active_losses;
          apply_loss ());
      at b.until (fun () ->
          (* Remove one occurrence. *)
          let rec drop = function
            | [] -> []
            | x :: rest -> if x = b.loss then rest else x :: drop rest
          in
          active_losses := drop !active_losses;
          apply_loss ()))
    plan.bursts;
  (* Partitions: a send is dropped when any active cut blocks the link. *)
  let space = Array.length st.truth in
  let active_cuts : (bool array * Faults.direction) list ref = ref [] in
  Overlay.set_filter st.overlay
    (Some
       (fun ~src ~dst ->
         List.for_all
           (fun (in_group, direction) ->
             let s = in_group.(Pid.to_int src)
             and d = in_group.(Pid.to_int dst) in
             match direction with
             | Faults.Both -> s = d
             | Faults.Inbound -> not (d && not s)
             | Faults.Outbound -> not (s && not d))
           !active_cuts));
  List.iter
    (fun (p : Faults.partition) ->
      let in_group = Array.make space false in
      List.iter (fun q -> in_group.(Pid.to_int q) <- true) p.group;
      let cut = (in_group, p.direction) in
      at p.from_ (fun () -> active_cuts := cut :: !active_cuts);
      at p.until (fun () ->
          active_cuts := List.filter (fun c -> c != cut) !active_cuts))
    plan.partitions

(* --- Detector accuracy ---------------------------------------------------- *)

let agreement st =
  let status = Cluster.status st.cluster in
  let agree =
    Array.fold_left
      (fun acc p ->
        if Status_word.is_live status p = truth_live st p then acc + 1
        else acc)
      0 st.monitored
  in
  float_of_int agree /. float_of_int (Array.length st.monitored)

let start_sampling st ~quiet_from ~duration =
  let rec tick time =
    if time <= duration then
      Engine.schedule_at st.engine ~time (fun () ->
          let a = agreement st in
          Timeseries.record st.agreement_timeline ~time a;
          if
            st.convergence = None && time >= quiet_from
            && a >= st.config.agreement_target
          then st.convergence <- Some (time -. quiet_from);
          tick (time +. st.config.sample_period))
  in
  tick st.config.sample_period

(* --- Arrivals ------------------------------------------------------------- *)

let start_arrivals st ~demand ~until =
  Status_word.iter_live (Cluster.status st.cluster) (fun origin ->
      let rate = Demand.rate demand origin in
      if rate > 0.0 then begin
        let rec schedule_from t0 =
          let t = t0 +. Rng.exponential st.rng ~rate in
          if t < until then
            Engine.schedule_at st.engine ~time:t (fun () ->
                if truth_live st origin then begin
                  let id = Rpc.issue (rpc st) { origin; issued_at = now st } in
                  match st.obs with
                  | None -> ()
                  | Some i ->
                      Obs.Span.begin_span i.spans ~name:i.sp_lookup ~id
                        ~origin:(Pid.to_int origin) ~at:(now st)
                end;
                schedule_from (now st))
        in
        schedule_from 0.0
      end)

(* --- Entry point ----------------------------------------------------------- *)

let run ?(config = default_config) ?(plan = Faults.empty) ?sink ?obs
    ?substrate ~rng ~cluster ~key ~demand ~duration () =
  let params = Cluster.params cluster in
  let engine = Engine.create () in
  let overlay =
    Overlay.create ~engine ~rng ~latency:config.latency ~loss:config.loss
      params
  in
  let space = Params.space params in
  let truth = Array.make space false in
  Status_word.iter_live (Cluster.status cluster) (fun p ->
      truth.(Pid.to_int p) <- true);
  let monitored = Status_word.live_array (Cluster.status cluster) in
  let latencies = Histogram.create () and hops = Histogram.create () in
  let st =
    {
      config;
      rng;
      cluster;
      key;
      tree = Cluster.tree_of_key cluster key;
      engine;
      overlay;
      truth;
      monitored;
      rpc = None;
      detector = None;
      estimators =
        Array.init space (fun _ ->
            Access_counter.create ~tau:config.detection_tau ~now:0.0 ());
      cooldown_until = Array.make space 0.0;
      dedup = Rpc.Dedup.create ();
      served = 0;
      within_deadline = 0;
      latencies;
      hops;
      replicas_created = 0;
      spurious_suspicions = 0;
      migrations = 0;
      spurious_migrations = 0;
      crashes = 0;
      restarts = 0;
      lost_keys = 0;
      convergence = None;
      agreement_timeline = Timeseries.create ~label:"agreement" ();
      sink;
      obs = Option.map (make_instruments ~latencies ~hops) obs;
      substrate;
    }
  in
  let mark name ~id ~origin ~attempt =
    match st.obs with
    | None -> ()
    | Some i ->
        Obs.Span.emit i.spans ~name:(name i) ~id ~origin ~at:(now st) ~dur:0.0
          ~server:None ~hops:0 ~attempt
  in
  let rpc_events = function
    | Rpc.Timeout { id; attempt; meta } ->
        emit st
          (Trace.Event.Timeout
             { at = now st; id; origin = Pid.to_int meta.origin; attempt });
        mark (fun i -> i.sp_timeout) ~id ~origin:(Pid.to_int meta.origin)
          ~attempt
    | Rpc.Retransmit { id; attempt; meta } ->
        emit st
          (Trace.Event.Retry
             { at = now st; id; origin = Pid.to_int meta.origin; attempt });
        (match st.obs with
        | None -> ()
        | Some i -> Obs.Span.set_attempt i.spans ~id ~attempt);
        mark (fun i -> i.sp_retry) ~id ~origin:(Pid.to_int meta.origin)
          ~attempt
    | Rpc.Exhausted { id; attempts = _; meta } ->
        emit st
          (Trace.Event.Request
             { at = now st; origin = Pid.to_int meta.origin; server = None;
               hops = 0 });
        (match st.obs with
        | None -> ()
        | Some i ->
            Obs.Span.end_span i.spans ~id ~at:(now st) ~server:None ~hops:0)
  in
  st.rpc <-
    Some
      (Rpc.create ~engine ~rng ~config:config.rpc ~on_event:rpc_events
         ?registry:(Option.map (fun (o : Obs.t) -> o.Obs.registry) obs)
         ~transmit:(fun ~id ~attempt meta -> transmit st ~id ~attempt meta)
         ());
  st.detector <-
    Some
      (Heartbeat.create ~engine ~config:config.heartbeat ~peers:monitored
         ~ping:(fun ~seq peer -> send_ping st ~seq peer)
         ~on_change:(fun p verdict -> on_verdict st p verdict)
         ());
  Overlay.set_packed_recv overlay
    (Some (fun ~src ~dst b x -> handle st ~me:dst ~src b x));
  Array.iter (fun p -> install_handler st p) monitored;
  schedule_plan st plan;
  Heartbeat.start (detector st) ~until:duration;
  let quiet_from = Faults.last_disturbance plan in
  start_sampling st ~quiet_from ~duration;
  start_arrivals st ~demand ~until:(config.arrival_stop *. duration);
  Engine.run ~until:duration engine;
  let r = rpc st in
  let d = detector st in
  {
    issued = Rpc.issued r;
    served = st.served;
    faulted = Rpc.exhausted r;
    pending_at_end = Rpc.in_flight r;
    within_deadline = st.within_deadline;
    duplicate_serves = Rpc.Dedup.duplicates st.dedup;
    retransmissions = Rpc.retransmissions r;
    timeouts = Rpc.timeouts r;
    latencies = st.latencies;
    hops = st.hops;
    replicas_created = st.replicas_created;
    suspicions = Heartbeat.suspicions d;
    recoveries = Heartbeat.recoveries d;
    spurious_suspicions = st.spurious_suspicions;
    migrations = st.migrations;
    spurious_migrations = st.spurious_migrations;
    crashes = st.crashes;
    restarts = st.restarts;
    lost_keys = st.lost_keys;
    detector_agreement = agreement st;
    convergence = st.convergence;
    agreement_timeline = st.agreement_timeline;
    messages = Overlay.messages_sent overlay;
  }
