lib/harness/ablations.mli: Experiments Lesslog_report
