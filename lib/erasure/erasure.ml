type t = { k : int; r : int; rows : int array array }
(* [rows] is the full (k+r) x k systematic encode matrix: the top k
   rows are the identity, the bottom r produce parity. *)

let k t = t.k
let r t = t.r

(* Gauss-Jordan inversion of an n x n matrix over GF(256). Mutates a
   copy; raises on a singular input (cannot happen for Vandermonde
   submatrices with distinct points, but decode defends anyway). *)
let invert m =
  let n = Array.length m in
  let a = Array.map Array.copy m in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0)) in
  for col = 0 to n - 1 do
    (* Find a pivot at or below the diagonal and swap it in. *)
    let pivot = ref (-1) in
    (try
       for row = col to n - 1 do
         if a.(row).(col) <> 0 then begin
           pivot := row;
           raise Exit
         end
       done
     with Exit -> ());
    if !pivot < 0 then failwith "Erasure: singular matrix";
    if !pivot <> col then begin
      let swap m =
        let tmp = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- tmp
      in
      swap a; swap id
    end;
    let scale = Gf256.inv a.(col).(col) in
    for j = 0 to n - 1 do
      a.(col).(j) <- Gf256.mul a.(col).(j) scale;
      id.(col).(j) <- Gf256.mul id.(col).(j) scale
    done;
    for row = 0 to n - 1 do
      if row <> col && a.(row).(col) <> 0 then begin
        let factor = a.(row).(col) in
        for j = 0 to n - 1 do
          a.(row).(j) <- Gf256.add a.(row).(j) (Gf256.mul factor a.(col).(j));
          id.(row).(j) <- Gf256.add id.(row).(j) (Gf256.mul factor id.(col).(j))
        done
      end
    done
  done;
  id

let mat_mul a b =
  let n = Array.length a and k = Array.length b.(0) in
  Array.init n (fun i ->
      Array.init k (fun j ->
          let acc = ref 0 in
          for x = 0 to Array.length b - 1 do
            acc := Gf256.add !acc (Gf256.mul a.(i).(x) b.(x).(j))
          done;
          !acc))

let create ~k ~r =
  if k < 1 then invalid_arg "Erasure.create: k must be >= 1";
  if r < 0 then invalid_arg "Erasure.create: r must be >= 0";
  if k + r > 256 then invalid_arg "Erasure.create: k + r must be <= 256";
  let n = k + r in
  (* Vandermonde on the distinct points 0 .. n-1: any k rows are
     invertible. Right-multiplying by inv(top k rows) preserves that
     property and turns the top k rows into the identity. *)
  let vand = Array.init n (fun e -> Array.init k (fun i -> Gf256.pow e i)) in
  let top = Array.init k (fun i -> vand.(i)) in
  let rows = mat_mul vand (invert top) in
  { k; r; rows }

let fragment_size t ~len =
  if len < 0 then invalid_arg "Erasure.fragment_size: negative len";
  (len + t.k - 1) / t.k

let encode t payload =
  let len = String.length payload in
  let fs = fragment_size t ~len in
  let stripe i =
    (* Data stripe i, zero-padded to [fs]. *)
    let b = Bytes.make fs '\000' in
    let off = i * fs in
    let avail = min fs (max 0 (len - off)) in
    if avail > 0 then Bytes.blit_string payload off b 0 avail;
    b
  in
  let data = Array.init t.k stripe in
  let parity j =
    let row = t.rows.(t.k + j) in
    let b = Bytes.make fs '\000' in
    for i = 0 to t.k - 1 do
      let c = row.(i) in
      if c <> 0 then
        for p = 0 to fs - 1 do
          Bytes.unsafe_set b p
            (Char.unsafe_chr
               (Gf256.add
                  (Char.code (Bytes.unsafe_get b p))
                  (Gf256.mul c (Char.code (Bytes.unsafe_get data.(i) p)))))
        done
    done;
    b
  in
  Array.init (t.k + t.r)
    (fun idx ->
      Bytes.unsafe_to_string (if idx < t.k then data.(idx) else parity (idx - t.k)))

let decode t ~len survivors =
  let fs = fragment_size t ~len in
  (* Keep the first fragment seen for each distinct index, up to k. *)
  let seen = Hashtbl.create 16 in
  let picked = ref [] in
  let bad = ref None in
  List.iter
    (fun (idx, frag) ->
      if !bad = None && Hashtbl.length seen < t.k then
        if idx < 0 || idx >= t.k + t.r then
          bad := Some (Printf.sprintf "fragment index %d out of range" idx)
        else if String.length frag <> fs then
          bad :=
            Some
              (Printf.sprintf "fragment %d has %d bytes, expected %d" idx
                 (String.length frag) fs)
        else if not (Hashtbl.mem seen idx) then begin
          Hashtbl.add seen idx ();
          picked := (idx, frag) :: !picked
        end)
    survivors;
  match !bad with
  | Some msg -> Error msg
  | None ->
      if Hashtbl.length seen < t.k then
        Error
          (Printf.sprintf "need %d distinct fragments, have %d" t.k
             (Hashtbl.length seen))
      else begin
        let picked = Array.of_list (List.rev !picked) in
        let sub = Array.map (fun (idx, _) -> t.rows.(idx)) picked in
        match (try Ok (invert sub) with Failure msg -> Error msg) with
        | Error msg -> Error msg
        | Ok inv ->
        (* Stripe i = sum over survivors s of inv.(i).(s) * frag_s. *)
        let out = Bytes.make (t.k * fs) '\000' in
        for i = 0 to t.k - 1 do
          let base = i * fs in
          for s = 0 to t.k - 1 do
            let c = inv.(i).(s) in
            if c <> 0 then begin
              let frag = snd picked.(s) in
              for p = 0 to fs - 1 do
                Bytes.unsafe_set out (base + p)
                  (Char.unsafe_chr
                     (Gf256.add
                        (Char.code (Bytes.unsafe_get out (base + p)))
                        (Gf256.mul c (Char.code (String.unsafe_get frag p)))))
              done
            end
          done
        done;
        Ok (Bytes.sub_string out 0 len)
      end

let parity_row t j =
  if j < 0 || j >= t.r then invalid_arg "Erasure.parity_row";
  Array.copy t.rows.(t.k + j)
