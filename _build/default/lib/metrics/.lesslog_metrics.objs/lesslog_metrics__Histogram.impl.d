lib/metrics/histogram.ml: Array Float Format Hashtbl List Option
