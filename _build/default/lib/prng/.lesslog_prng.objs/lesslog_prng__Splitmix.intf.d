lib/prng/splitmix.mli:
