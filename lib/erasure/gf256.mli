(** Arithmetic over GF(2^8) with the primitive polynomial
    x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field used by every
    byte-oriented Reed-Solomon deployment. Multiplication and division
    go through precomputed log/antilog tables, so each operation is a
    couple of array reads. All arguments and results live in 0..255. *)

val add : int -> int -> int
(** Addition = subtraction = xor in characteristic 2. *)

val mul : int -> int -> int

val div : int -> int -> int
(** @raise Division_by_zero when the divisor is 0. *)

val inv : int -> int
(** Multiplicative inverse. @raise Division_by_zero on 0. *)

val pow : int -> int -> int
(** [pow x n] for n >= 0, with [pow 0 0 = 1]. *)

val exp_table : int array
(** [exp_table.(i)] = generator 2 raised to [i], for i in 0..254. *)

val log_table : int array
(** Discrete log base 2 of each nonzero element; [log_table.(0)] is
    unused and holds 0. *)
