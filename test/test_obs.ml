module Obs = Lesslog_obs.Obs
module Registry = Obs.Registry
module Span = Obs.Span
module Histogram = Lesslog_metrics.Histogram
module Trace = Lesslog_trace.Trace
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Demand = Lesslog_workload.Demand
module Des_sim = Lesslog_des.Des_sim
module Rng = Lesslog_prng.Rng
module Params = Lesslog_id.Params

(* Span timestamps are stored as integer nanoseconds; any time that is
   exact in ns round-trips exactly, so the float checks below can use a
   tight epsilon. *)
let flt = Alcotest.float 1e-9

(* --- Registry --- *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "requests" in
  Registry.incr c;
  Registry.incr c;
  Registry.add c 40;
  Alcotest.(check int) "value" 42 (Registry.value c);
  (* Re-registering the same name hands back the same live cell. *)
  Alcotest.(check int) "idempotent" 42 (Registry.value (Registry.counter r "requests"))

let test_gauge_basics () =
  let r = Registry.create () in
  let g = Registry.gauge r "load" in
  Registry.set g 0.75;
  Alcotest.(check flt) "read" 0.75 (Registry.read g)

let test_timer_snapshot () =
  let r = Registry.create () in
  let t = Registry.timer r "latency" in
  List.iter (Registry.observe t) [ 1.0; 2.0; 3.0; 4.0 ];
  match Registry.snapshot r with
  | [ s ] ->
      Alcotest.(check string) "name" "latency" s.Registry.name;
      Alcotest.(check bool) "kind" true (s.Registry.kind = `Timer);
      Alcotest.(check int) "count" 4 s.Registry.count;
      Alcotest.(check flt) "mean" 2.5 s.Registry.value;
      Alcotest.(check flt) "max" 4.0 s.Registry.max_v
  | l -> Alcotest.failf "expected one snapshot row, got %d" (List.length l)

let test_timer_backed_shares_histogram () =
  let r = Registry.create () in
  let hist = Histogram.create () in
  Histogram.add hist 1.0;
  let t = Registry.timer_backed r "lat" hist in
  (* Inserts into the backing histogram show up with no copy... *)
  Histogram.add hist 2.0;
  let count () =
    match Registry.snapshot r with [ s ] -> s.Registry.count | _ -> -1
  in
  Alcotest.(check int) "shared" 2 (count ());
  (* ...and reset detaches the sharing: the timer gets a fresh sketch,
     so later inserts into the old histogram no longer show. *)
  Registry.reset r;
  Alcotest.(check int) "reset empties" 0 (count ());
  Histogram.add hist 3.0;
  Alcotest.(check int) "detached" 0 (count ());
  Registry.observe t 5.0;
  Alcotest.(check int) "handle still live" 1 (count ())

let test_kind_clash_raises () =
  let r = Registry.create () in
  ignore (Registry.counter r "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Registry: \"x\" already registered as another kind")
    (fun () -> ignore (Registry.gauge r "x"))

let test_snapshot_sorted_and_reset () =
  let r = Registry.create () in
  let c = Registry.counter r "zeta" in
  let g = Registry.gauge r "alpha" in
  Registry.add c 7;
  Registry.set g 1.5;
  Alcotest.(check (list string)) "sorted by name" [ "alpha"; "zeta" ]
    (List.map (fun s -> s.Registry.name) (Registry.snapshot r));
  Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Registry.value c);
  Alcotest.(check flt) "gauge zeroed" 0.0 (Registry.read g)

let test_json_pairs_expand_timers () =
  let r = Registry.create () in
  Registry.add (Registry.counter r "served") 3;
  Registry.observe (Registry.timer r "lat") 2.0;
  Alcotest.(check (list string)) "keys"
    [ "lat/count"; "lat/mean"; "lat/p50"; "lat/p99"; "lat/max"; "served" ]
    (List.map fst (Registry.to_json_pairs r))

(* --- Span sink --- *)

(* A span's fields, unpacked — the [Span] payload is an inlined record,
   so it cannot escape its match. *)
type span_fields = {
  at : float;
  dur : float;
  name : string;
  id : int;
  origin : int;
  server : int option;
  hops : int;
  attempt : int;
}

let one_span sink =
  match Span.to_events sink with
  | [ Trace.Event.Span { at; dur; name; id; origin; server; hops; attempt } ] ->
      { at; dur; name; id; origin; server; hops; attempt }
  | l -> Alcotest.failf "expected exactly one span, got %d events" (List.length l)

let test_begin_end_fields () =
  let sink = Span.create_sink () in
  let lookup = Span.intern sink "lookup" in
  Span.begin_span sink ~name:lookup ~id:7 ~origin:3 ~at:1.5;
  Span.end_span sink ~id:7 ~at:2.25 ~server:(Some 5) ~hops:4;
  let s = one_span sink in
  Alcotest.(check string) "name" "lookup" s.name;
  Alcotest.(check int) "id" 7 s.id;
  Alcotest.(check int) "origin" 3 s.origin;
  Alcotest.(check (option int)) "server" (Some 5) s.server;
  Alcotest.(check int) "hops" 4 s.hops;
  Alcotest.(check flt) "at" 1.5 s.at;
  Alcotest.(check flt) "dur" 0.75 s.dur;
  Alcotest.(check int) "nothing left open" 0 (Span.open_spans sink)

let test_fault_span_has_no_server () =
  let sink = Span.create_sink () in
  let lookup = Span.intern sink "lookup" in
  Span.begin_span sink ~name:lookup ~id:1 ~origin:0 ~at:0.5;
  Span.end_span_int sink ~id:1 ~at:1.0 ~server:(-1) ~hops:6;
  let s = one_span sink in
  Alcotest.(check (option int)) "fault = no server" None s.server;
  let sink = Span.create_sink () in
  let lookup = Span.intern sink "lookup" in
  Span.begin_span sink ~name:lookup ~id:1 ~origin:0 ~at:0.5;
  Span.end_span_int sink ~id:1 ~at:1.0 ~server:0 ~hops:0;
  Alcotest.(check (option int)) "server 0 distinct from fault" (Some 0)
    (one_span sink).server

let test_end_without_begin_is_noop () =
  let sink = Span.create_sink () in
  Span.end_span sink ~id:9 ~at:1.0 ~server:None ~hops:0;
  Alcotest.(check int) "nothing completed" 0 (Span.completed sink);
  (* Duplicate replies: the second end of the same id is also a no-op. *)
  let lookup = Span.intern sink "lookup" in
  Span.begin_span sink ~name:lookup ~id:9 ~origin:1 ~at:1.0;
  Span.end_span sink ~id:9 ~at:2.0 ~server:(Some 2) ~hops:1;
  Span.end_span sink ~id:9 ~at:3.0 ~server:(Some 4) ~hops:2;
  Alcotest.(check int) "double end completes once" 1 (Span.completed sink)

let test_set_attempt () =
  let sink = Span.create_sink () in
  let lookup = Span.intern sink "lookup" in
  Span.set_attempt sink ~id:3 ~attempt:9 (* nothing open: no-op *);
  Span.begin_span sink ~name:lookup ~id:3 ~origin:2 ~at:0.25;
  Span.set_attempt sink ~id:3 ~attempt:2;
  Span.end_span sink ~id:3 ~at:0.5 ~server:(Some 1) ~hops:1;
  Alcotest.(check int) "attempt recorded" 2 (one_span sink).attempt

let test_slot_collision_drops_older () =
  (* open_capacity 4: ids 1 and 5 share slot 1, so the second begin
     evicts the first, which is counted, and only id 5 can complete. *)
  let sink = Span.create_sink ~open_capacity:4 () in
  let lookup = Span.intern sink "lookup" in
  Span.begin_span sink ~name:lookup ~id:1 ~origin:0 ~at:1.0;
  Span.begin_span sink ~name:lookup ~id:5 ~origin:0 ~at:2.0;
  Alcotest.(check int) "older dropped" 1 (Span.dropped sink);
  Span.end_span sink ~id:1 ~at:3.0 ~server:(Some 0) ~hops:0;
  Alcotest.(check int) "evicted id cannot end" 0 (Span.completed sink);
  Span.end_span sink ~id:5 ~at:3.0 ~server:(Some 0) ~hops:0;
  Alcotest.(check int) "survivor ends" 1 (Span.completed sink)

let test_emit_bypasses_open_table () =
  let sink = Span.create_sink () in
  let mark = Span.intern sink "replicate" in
  Span.emit sink ~name:mark ~id:11 ~origin:4 ~at:2.0 ~dur:0.0 ~server:(Some 6)
    ~hops:0 ~attempt:0;
  Alcotest.(check int) "completed directly" 1 (Span.completed sink);
  Alcotest.(check int) "open table untouched" 0 (Span.open_spans sink);
  let s = one_span sink in
  Alcotest.(check flt) "instant" 0.0 s.dur;
  Alcotest.(check int) "origin" 4 s.origin

let test_ring_wraparound () =
  let sink = Span.create_sink ~capacity:8 () in
  let lookup = Span.intern sink "lookup" in
  for id = 0 to 19 do
    Span.emit sink ~name:lookup ~id ~origin:0 ~at:(float_of_int id)
      ~dur:0.125 ~server:(Some 0) ~hops:1 ~attempt:0
  done;
  Alcotest.(check int) "completed counts all" 20 (Span.completed sink);
  Alcotest.(check int) "retained = capacity" 8 (Span.retained sink);
  let ids =
    List.map
      (function
        | Trace.Event.Span { id; _ } -> id
        | _ -> Alcotest.fail "not a span")
      (Span.to_events sink)
  in
  Alcotest.(check (list int)) "newest retained, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ] ids

let test_intern_idempotent () =
  let sink = Span.create_sink () in
  let a = Span.intern sink "lookup" in
  let b = Span.intern sink "replicate" in
  Alcotest.(check int) "same name, same index" a (Span.intern sink "lookup");
  Alcotest.(check bool) "distinct names, distinct indices" true (a <> b)

let test_trace_line_round_trip () =
  let sink = Span.create_sink () in
  (* A name needing percent-encoding exercises the codec's totality. *)
  let slow = Span.intern sink "slow lookup" in
  let lookup = Span.intern sink "lookup" in
  Span.emit sink ~name:slow ~id:42 ~origin:7 ~at:1.25 ~dur:0.5
    ~server:(Some 3) ~hops:2 ~attempt:1;
  Span.emit sink ~name:lookup ~id:43 ~origin:0 ~at:2.0 ~dur:0.25 ~server:None
    ~hops:6 ~attempt:0;
  Span.iter sink (fun e ->
      match Trace.Event.of_line (Trace.Event.to_line e) with
      | Ok e' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip %s" (Trace.Event.to_line e))
            true (Trace.Event.equal e e')
      | Error msg -> Alcotest.failf "of_line failed: %s" msg)

let prop_span_line_round_trip =
  Test_support.qcheck_case ~count:200 ~name:"span -> SPN line -> span"
    QCheck2.Gen.(
      tup6 (int_range 0 1_000_000) (int_range 0 4095)
        (opt (int_range 0 4095))
        (int_range 0 63) (int_range 0 255)
        (pair (int_range 0 1_000_000) (int_range 0 1_000_000)))
    (fun (id, origin, server, hops, attempt, (at_us, dur_us)) ->
      let sink = Span.create_sink () in
      let name = Span.intern sink "lookup" in
      (* Microsecond-grained times are exact in the sink's integer-ns
         storage, so equality is exact. *)
      Span.emit sink ~name ~id ~origin ~at:(float_of_int at_us *. 1e-6)
        ~dur:(float_of_int dur_us *. 1e-6) ~server ~hops ~attempt;
      match Span.to_events sink with
      | [ e ] -> (
          match Trace.Event.of_line (Trace.Event.to_line e) with
          | Ok e' -> Trace.Event.equal e e'
          | Error _ -> false)
      | _ -> false)

let test_chrome_json_shape () =
  let sink = Span.create_sink () in
  let lookup = Span.intern sink "lookup" in
  Span.emit sink ~name:lookup ~id:1 ~origin:2 ~at:1.0 ~dur:0.5 ~server:(Some 4)
    ~hops:3 ~attempt:0;
  Span.emit sink ~name:lookup ~id:2 ~origin:5 ~at:2.0 ~dur:0.25 ~server:None
    ~hops:6 ~attempt:1;
  let json = Span.to_chrome_json sink in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "object form" true
    (String.length json > 16 && String.sub json 0 16 = "{\"traceEvents\":[");
  Alcotest.(check bool) "complete events" true (contains "\"ph\":\"X\"");
  (* ns -> trace_event microseconds: at = 1.0 s is ts = 1e6 us. *)
  Alcotest.(check bool) "us timestamps" true (contains "\"ts\":1000000.000");
  Alcotest.(check bool) "fault is null server" true (contains "\"server\":null");
  Alcotest.(check bool) "one track per origin" true (contains "\"tid\":5")

(* --- Des_sim integration --- *)

let test_des_sim_instrumented_run () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let key = "obs/test-object" in
  ignore (Ops.insert cluster ~key);
  let demand = Demand.uniform (Cluster.status cluster) ~total:2000.0 in
  let obs = Obs.create () in
  let r =
    Des_sim.run ~obs ~rng:(Rng.create ~seed:11) ~cluster ~key ~demand
      ~duration:10.0 ()
  in
  let v name = Registry.value (Registry.counter obs.Obs.registry name) in
  Alcotest.(check int) "served counter" r.Des_sim.served (v "des/served");
  Alcotest.(check int) "fault counter" r.Des_sim.faults (v "des/faults");
  Alcotest.(check int) "replication counter" r.Des_sim.replicas_created
    (v "des/replications");
  Alcotest.(check bool) "requests counted" true (v "des/requests" > 0);
  (* The latency timer is backed by the result histogram itself. *)
  let lat =
    List.find (fun s -> s.Registry.name = "des/latency_s")
      (Registry.snapshot obs.Obs.registry)
  in
  Alcotest.(check int) "timer backed by result histogram"
    (Histogram.count r.Des_sim.latencies) lat.Registry.count;
  (* Spans: one lookup per request resolved *at its origin* (a request
     served remotely counts in [served] when the server acts, but its
     span only lands when the reply arrives — in step with the latency
     histogram) plus one instant replicate marker per push. Requests
     still in flight at engine stop leave none. *)
  Alcotest.(check int) "one span per resolution"
    (Histogram.count r.Des_sim.latencies
    + r.Des_sim.faults + r.Des_sim.replicas_created)
    (Span.completed obs.Obs.spans);
  Alcotest.(check int) "no stuck open spans" 0 (Span.open_spans obs.Obs.spans);
  Span.iter obs.Obs.spans (fun e ->
      match e with
      | Trace.Event.Span { name; hops; _ } ->
          if name = "lookup" then
            Alcotest.(check bool) "hops within m" true (hops <= 6)
      | _ -> Alcotest.fail "sink yields only spans")

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter_basics;
          Alcotest.test_case "gauge" `Quick test_gauge_basics;
          Alcotest.test_case "timer snapshot" `Quick test_timer_snapshot;
          Alcotest.test_case "timer_backed sharing" `Quick
            test_timer_backed_shares_histogram;
          Alcotest.test_case "kind clash" `Quick test_kind_clash_raises;
          Alcotest.test_case "snapshot order + reset" `Quick
            test_snapshot_sorted_and_reset;
          Alcotest.test_case "json pairs" `Quick test_json_pairs_expand_timers;
        ] );
      ( "span",
        [
          Alcotest.test_case "begin/end fields" `Quick test_begin_end_fields;
          Alcotest.test_case "fault span" `Quick test_fault_span_has_no_server;
          Alcotest.test_case "end without begin" `Quick
            test_end_without_begin_is_noop;
          Alcotest.test_case "set_attempt" `Quick test_set_attempt;
          Alcotest.test_case "slot collision" `Quick
            test_slot_collision_drops_older;
          Alcotest.test_case "emit" `Quick test_emit_bypasses_open_table;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "intern" `Quick test_intern_idempotent;
          Alcotest.test_case "SPN line round-trip" `Quick
            test_trace_line_round_trip;
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
        ] );
      ( "integration",
        [
          Alcotest.test_case "instrumented des run" `Slow
            test_des_sim_instrumented_run;
        ] );
      ("properties", [ prop_span_line_round_trip ]);
    ]
