let offset_basis = 0xCBF29CE484222325L

let prime = 0x100000001B3L

let hash64 s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hash63 s = Int64.to_int (hash64 s) land max_int

let fold_int64 h ~bits =
  if bits <= 0 || bits > 62 then invalid_arg "Fnv.fold_int64";
  let lo = Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical h 62) in
  let folded = lo lxor hi in
  let rec fold x width =
    if width <= bits then x land Lesslog_bits.Bitops.mask ~width:bits
    else
      (* Never fold below [bits], or entropy in the high part is lost. *)
      let half = max bits ((width + 1) / 2) in
      fold ((x lxor (x lsr half)) land Lesslog_bits.Bitops.mask ~width:half) half
  in
  fold folded 62
