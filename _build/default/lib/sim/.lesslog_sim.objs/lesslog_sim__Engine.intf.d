lib/sim/engine.mli:
