(* Minimal JSON emission — only what the benchmark trajectory files need
   (flat string->number objects), so the repo stays dependency-free. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number x =
  (* JSON has no NaN/infinity literals; emit null so readers fail loudly
     on a missing measurement rather than on a parse error. *)
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then "null"
  else Printf.sprintf "%.3f" x

let to_string pairs =
  let body =
    pairs
    |> List.map (fun (k, v) -> Printf.sprintf "  \"%s\": %s" (escape k) (number v))
    |> String.concat ",\n"
  in
  "{\n" ^ body ^ "\n}\n"

let write ~path pairs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string pairs))
