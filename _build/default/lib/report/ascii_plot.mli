(** Terminal line plots, for eyeballing the reproduced figures without
    leaving the shell. Each series gets a marker character; overlapping
    points show the later series' marker. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  Series.t list ->
  string
(** Defaults: 72×20 plot area. Axes are scaled to the data's bounding box
    (y always includes 0). *)
