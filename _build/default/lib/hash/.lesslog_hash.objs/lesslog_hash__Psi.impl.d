lib/hash/psi.ml: Fnv Lesslog_bits
