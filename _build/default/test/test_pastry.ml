open Lesslog_id
module Pastry = Lesslog_pastry.Pastry
module Rng = Lesslog_prng.Rng

let pid = Pid.unsafe_of_int
let params m = Params.create ~m ()

let full m = Pastry.create (params m) ~live:(Pid.all (params m))

let test_rows () =
  let t = Pastry.create ~digit_bits:2 (params 8) ~live:(Pid.all (params 8)) in
  Alcotest.(check int) "rows" 4 (Pastry.rows t);
  Alcotest.(check int) "nodes" 256 (Pastry.node_count t)

let test_digit_bits_must_divide () =
  Alcotest.check_raises "non-dividing"
    (Invalid_argument "Pastry.create: digit_bits must divide m") (fun () ->
      ignore (Pastry.create ~digit_bits:3 (params 8) ~live:(Pid.all (params 8))))

let test_empty_rejected () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Pastry.create: empty population") (fun () ->
      ignore (Pastry.create (params 4) ~live:[]))

let test_owner_full_ring () =
  let t = full 6 in
  for x = 0 to 63 do
    Alcotest.(check int) "self-owned" x (Pid.to_int (Pastry.owner_of t x))
  done

let test_owner_sparse () =
  let t = Pastry.create (params 4) ~live:(Test_support.pids [ 2; 8; 14 ]) in
  Alcotest.(check int) "near 2" 2 (Pid.to_int (Pastry.owner_of t 3));
  Alcotest.(check int) "near 8" 8 (Pid.to_int (Pastry.owner_of t 6));
  (* 0 is distance 2 from both 2 and 14 (ring): tie breaks to smaller. *)
  Alcotest.(check int) "tie to smaller" 2 (Pid.to_int (Pastry.owner_of t 0))

let test_lookup_local () =
  let t = full 6 in
  let r = Pastry.lookup t ~from:(pid 9) ~target:9 in
  Alcotest.(check int) "owner" 9 (Pid.to_int r.Pastry.owner);
  Alcotest.(check int) "no hops" 0 r.Pastry.hops

let test_leaf_set_size () =
  let t = Pastry.create ~leaf_set:4 (params 6) ~live:(Pid.all (params 6)) in
  Alcotest.(check int) "leaf set" 4 (List.length (Pastry.leaf_set_of t (pid 0)));
  (* Nearest first: distance-1 neighbours come before distance-2. *)
  match Pastry.leaf_set_of t (pid 10) with
  | a :: b :: _ ->
      Alcotest.(check bool) "nearest are ring neighbours" true
        (List.sort compare [ Pid.to_int a; Pid.to_int b ] = [ 9; 11 ])
  | _ -> Alcotest.fail "leaf set too small"

let test_lookup_rejects_stranger () =
  let t = Pastry.create (params 4) ~live:(Test_support.pids [ 1; 2 ]) in
  Alcotest.check_raises "stranger" (Invalid_argument "Pastry.lookup: unknown origin")
    (fun () -> ignore (Pastry.lookup t ~from:(pid 7) ~target:1))

(* --- Properties ----------------------------------------------------------- *)

let gen_ring =
  QCheck2.Gen.(
    (* m must be even for digit_bits = 2. *)
    oneofl [ 4; 6; 8 ] >>= fun m ->
    let space = 1 lsl m in
    int_range 1 space >>= fun n ->
    int_range 0 1_000_000 >>= fun seed ->
    let rng = Rng.create ~seed in
    let live =
      Rng.sample_without_replacement rng ~k:n (Array.init space (fun i -> i))
      |> Array.to_list |> List.sort compare |> List.map Pid.unsafe_of_int
    in
    int_range 0 (space - 1) >>= fun target ->
    int_range 0 (n - 1) >>= fun from_idx ->
    return (params m, live, target, List.nth live from_idx))

let brute_owner params live target =
  let space = Params.space params in
  let dist a b =
    let d = abs (a - b) in
    min d (space - d)
  in
  List.fold_left
    (fun best p ->
      let id = Pid.to_int p in
      match best with
      | None -> Some id
      | Some b ->
          if
            dist id target < dist b target
            || (dist id target = dist b target && id < b)
          then Some id
          else Some b)
    None live
  |> Option.get

let prop_owner_matches_brute =
  Test_support.qcheck_case ~count:150 ~name:"owner = numerically closest" gen_ring
    (fun (params, live, target, _) ->
      let t = Pastry.create params ~live in
      Pid.to_int (Pastry.owner_of t target) = brute_owner params live target)

let prop_lookup_reaches_owner =
  Test_support.qcheck_case ~count:150 ~name:"prefix routing reaches the owner" gen_ring
    (fun (params, live, target, from) ->
      let t = Pastry.create params ~live in
      let r = Pastry.lookup t ~from ~target in
      Pid.to_int r.Pastry.owner = brute_owner params live target)

let prop_hops_bounded =
  Test_support.qcheck_case ~count:150 ~name:"hops <= rows + leaf hop + slack" gen_ring
    (fun (params, live, target, from) ->
      let t = Pastry.create params ~live in
      let r = Pastry.lookup t ~from ~target in
      (* One digit resolved per table hop, plus the leaf-set/rare-case
         tail. *)
      r.Pastry.hops <= Pastry.rows t + 4)

let prop_path_consistent =
  Test_support.qcheck_case ~count:150 ~name:"path origin->owner, length = hops + 1"
    gen_ring (fun (params, live, target, from) ->
      let t = Pastry.create params ~live in
      let r = Pastry.lookup t ~from ~target in
      match (r.Pastry.path, List.rev r.Pastry.path) with
      | first :: _, last :: _ ->
          Pid.equal first from
          && Pid.equal last r.Pastry.owner
          && List.length r.Pastry.path = r.Pastry.hops + 1
      | _ -> false)

let test_mean_hops_logarithmic () =
  let t = full 10 in
  let rng = Rng.create ~seed:5 in
  let total = ref 0 in
  let samples = 1000 in
  for _ = 1 to samples do
    let from = pid (Rng.int rng 1024) in
    let target = Rng.int rng 1024 in
    total := !total + (Pastry.lookup t ~from ~target).Pastry.hops
  done;
  let mean = float_of_int !total /. float_of_int samples in
  (* log_4 1024 = 5 digits; mean resolved hops should sit well below. *)
  Alcotest.(check bool) (Printf.sprintf "mean %.2f <= 6" mean) true (mean <= 6.0)

let () =
  Alcotest.run "pastry"
    [
      ( "construction",
        [
          Alcotest.test_case "rows" `Quick test_rows;
          Alcotest.test_case "digit_bits divides" `Quick
            test_digit_bits_must_divide;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "owner full ring" `Quick test_owner_full_ring;
          Alcotest.test_case "owner sparse" `Quick test_owner_sparse;
          Alcotest.test_case "lookup local" `Quick test_lookup_local;
          Alcotest.test_case "leaf set" `Quick test_leaf_set_size;
          Alcotest.test_case "stranger rejected" `Quick
            test_lookup_rejects_stranger;
          Alcotest.test_case "mean hops logarithmic" `Quick
            test_mean_hops_logarithmic;
        ] );
      ( "properties",
        [
          prop_owner_matches_brute;
          prop_lookup_reaches_owner;
          prop_hops_bounded;
          prop_path_consistent;
        ] );
    ]
