(** Message-level simulation of a complete LessLog deployment.

    Where {!Lesslog_flow} solves the steady state in closed form (and
    generates the paper's figures), this simulator plays the system out
    event by event: Poisson request arrivals at each node, per-hop network
    latency, per-node overload detection from a decayed serve-rate
    estimator (the node's own observation — still no client-access logs),
    replica pushes that take time to arrive, and optional churn events.
    The integration tests check that both engines agree on replica counts;
    this engine additionally yields latency and hop distributions and
    convergence behaviour that the fluid solver cannot express. *)

open Lesslog_id
module Histogram = Lesslog_metrics.Histogram
module Timeseries = Lesslog_metrics.Timeseries

type eviction = {
  period : float;  (** How often each node reconsiders its replicas. *)
  min_rate : float;
      (** Locally-estimated accesses/s below which a replica is dropped. *)
}

type config = {
  capacity : float;  (** Requests/s a node serves without overload. *)
  detection_tau : float;
      (** Time constant of the serve-rate estimator (seconds). *)
  cooldown : float;
      (** Minimum time between two replications triggered by the same
          node. *)
  latency : Lesslog_net.Latency.t;
  loss : float;  (** Per-message drop probability. *)
  eviction : eviction option;
      (** When set, run the paper's counter-based replica removal: each
          node periodically drops replicated copies whose decayed access
          counter estimates fewer than [min_rate] accesses/s — a purely
          local, logless decision. *)
}

val default_config : config
(** capacity 100, tau 2 s, cooldown 0.5 s, default latency, no loss, no
    eviction. *)

type cold_tier = {
  code_k : int;  (** Data fragments of the Reed-Solomon code. *)
  code_r : int;  (** Parity fragments; any [code_k] of the [k+r] decode. *)
  file_bytes : int;  (** Logical size of the (single) hot file. *)
  demote_after : int;
      (** Consecutive Cold-classified policy intervals before the key is
          demoted to fragments. *)
}

val default_cold_tier : cold_tier
(** (10, 4) — Snippet 1's production choice — 1 MiB, demote after 2. *)

type churn_action = Join of Pid.t | Leave of Pid.t | Fail of Pid.t

type churn_event = { at : float; action : churn_action }

type cold_stats = {
  demotions : int;
  promotions : int;
  fragment_repairs : int;  (** Fragments rebuilt after churn. *)
  lost_cold : bool;
      (** Fewer than [k] fragments survived at some point — the payload
          became unrecoverable. *)
  coded_at_end : bool;
  coded_serves : int;  (** Requests served by fragment gather+decode. *)
  bytes_stored_end : int;
  mean_bytes_stored : float;
      (** Time average of stored bytes over the run — the numerator of
          storage amplification. *)
  bytes_moved : int;
      (** Bytes that crossed the network for placement, demotion,
          promotion and repair (replica pushes and policy fills count
          [file_bytes] each; a demotion moves the [k+r] fragments; a
          promotion gathers [k] fragments and fans the copies out). *)
  repair_bytes : int;
      (** The failure-triggered subset of [bytes_moved]: relocated full
          copies, plus [k] reads and one write per rebuilt fragment. *)
}

type result = {
  served : int;
  faults : int;  (** Requests whose path met no copy. *)
  latencies : Histogram.t;  (** Request completion time, seconds. *)
  hops : Histogram.t;  (** Forwarding hops per served request. *)
  replicas_created : int;
  replicas_evicted : int;
      (** Replicas removed by the counter-based mechanism (0 unless
          [config.eviction] is set). *)
  replica_timeline : Timeseries.t;  (** Copies of the key over time. *)
  last_replication : float option;
      (** When the system stopped creating replicas — convergence. *)
  messages : int;  (** Total overlay messages. *)
  control_messages : int;
      (** Status-word broadcasts triggered by churn events (one message
          per live node per event, Section 5). *)
  file_transfers : int;
      (** Files relocated by the self-organized mechanism (join
          copy-backs, leave re-inserts, failure recoveries). *)
  overloaded_at_end : int;
      (** Nodes whose estimated serve rate still exceeded capacity when
          the run ended. *)
  events : int;
      (** Engine events executed — the throughput denominator for
          events/sec benchmarks. *)
  cold : cold_stats option;
      (** Byte accounting and tier transitions; [Some] iff the run was
          given a [cold_tier] (even if nothing was ever demoted, so a
          full-replication baseline run carries the same ledger). *)
}

(** Both entry points accept an optional [sink] receiving a
    {!Lesslog_trace.Trace.Event.t} for every served/faulted request,
    replica push, eviction and membership change — feed it a
    [Trace.Writer] to record the run.

    With [obs], the run is instrumented: the [des/]* metrics land in
    [obs.registry] (request/served/fault/replication/eviction counters
    filled from the run's own tallies, latency and hop timers backed by
    the result histograms) and every resolved request records a
    ["lookup"] span in [obs.spans] keyed by its wire-level id, carrying
    origin, serving node (absent on a fault) and hop count — emitted in
    one call at resolution, since the wire already carries the issue
    timestamp. Requests still in flight when the engine stops leave no
    span. Each replica push records an instant ["replicate"] span. The
    hot path stays allocation-flat.

    With [substrate], every routing hop, replica placement and churn
    repair is delegated to the given {!Lesslog_substrate.Substrate.t}
    instead of the native direct path: routing through the substrate's
    [next_hop], placement through [Ops.choose_replica_target_via], and
    churn through [Ops.on_membership_via] for
    {!Lesslog_substrate.Substrate.Generic} substrates (the native
    adapter's [Self_organized] membership keeps the Section 5 mechanism,
    so running through {!Lesslog.Substrate_native} is bit-for-bit
    identical to omitting [substrate]). Routes longer than the packed
    hop field (63) — impossible on a conforming substrate — count as
    faults.

    With [policy], replica management switches from LessLog's native
    logless overload trigger to the log-driven weighted dynamic-RF
    competitor ({!Lesslog_policy.Rf_policy}): every issued request is
    logged against its origin node, and at each policy interval the tick
    closes the analysis window and reconciles the key's live copy count
    to the resulting replica factor — deficits fill at the first live
    non-holders in ascending PID order, surpluses shed replicated copies
    (never the inserted original). Enforcement is instantaneous and
    draws no randomness. The policy instance must be fresh for the run
    and sized to the cluster's PID space; inspect it after the run for
    the final RF and classification. Omitting [policy] leaves the event
    stream and RNG draws bit-identical to previous releases.

    With [cold_tier] (requires [policy]), the erasure-coded cold tier is
    armed: after [demote_after] consecutive Cold classifications the key
    trades its full copies for the [k + r] fragments of a Reed-Solomon
    code ({!Lesslog.Ops.demote_to_coded}); a later Hot verdict promotes
    it back to the policy's replica factor. While coded, a request is
    served when its route meets a fragment holder and at least [k]
    fragments are live anywhere (the decode fan-in is byte accounting,
    not simulated messages); below [k] survivors requests degrade to
    reported faults — no panic. Churn events trigger fragment repair
    ({!Lesslog.Ops.repair_coded}, through [Ops.on_membership_via] on
    Generic substrates). The [cold] result field carries demotion/
    promotion/repair counts and the byte ledger; it is present whenever
    [cold_tier] was given, so a baseline run with [demote_after =
    max_int] yields comparable byte accounting under full replication.
    @raise Invalid_argument when the policy's accessor population does
    not match the cluster's PID space, when [cold_tier] is given without
    [policy], or on invalid code/size parameters. *)

val run :
  ?config:config ->
  ?churn:churn_event list ->
  ?sink:(Lesslog_trace.Trace.Event.t -> unit) ->
  ?obs:Lesslog_obs.Obs.t ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  ?policy:Lesslog_policy.Rf_policy.t ->
  ?cold_tier:cold_tier ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  demand:Lesslog_workload.Demand.t ->
  duration:float ->
  unit ->
  result
(** Simulate [duration] seconds. The key must already be inserted in the
    cluster. Churn events call the Section 5 mechanism at their scheduled
    times (joins/leaves/failures); request arrivals stop at nodes that die
    and never start at nodes absent from the initial demand. *)

val run_scenario :
  ?config:config ->
  ?churn:churn_event list ->
  ?sink:(Lesslog_trace.Trace.Event.t -> unit) ->
  ?obs:Lesslog_obs.Obs.t ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  ?policy:Lesslog_policy.Rf_policy.t ->
  ?cold_tier:cold_tier ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  scenario:Lesslog_workload.Scenario.t ->
  unit ->
  result
(** Like {!run} but with a time-varying workload: each scenario phase
    drives its own arrival processes. With [config.eviction] set this
    plays the full flash-crowd lifecycle: replicas grow at the peak and
    the counter-based mechanism trims them when the crowd disperses. *)
