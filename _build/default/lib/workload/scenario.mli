(** Time-varying workloads: a sequence of demand phases played back to
    back — e.g. a flash crowd (high demand) followed by dispersal (low
    demand), the lifecycle that motivates the paper's counter-based
    replica removal. *)

type phase = { demand : Demand.t; duration : float }

type t

val of_phases : phase list -> t
(** @raise Invalid_argument on an empty list or non-positive duration. *)

val phases : t -> phase list

val total_duration : t -> float

val demand_at : t -> time:float -> Demand.t option
(** The demand in force at an instant; [None] past the end. *)

val flash_crowd :
  Lesslog_membership.Status_word.t ->
  rng:Lesslog_prng.Rng.t ->
  peak:float ->
  calm:float ->
  peak_duration:float ->
  calm_duration:float ->
  t
(** The canonical two-phase scenario: locality-model demand at [peak]
    req/s, then the same shape scaled down to [calm] req/s. *)
