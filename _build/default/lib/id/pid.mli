(** Physical identifiers (PIDs) — the unique node identifiers in
    [\[0, 2^m)] assigned at construction time (Section 2.1). *)

type t = private int

val of_int : Params.t -> int -> t
(** @raise Invalid_argument when outside [\[0, 2^m)]. *)

val unsafe_of_int : int -> t
(** Trusted constructor for hot paths; the caller guarantees range. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val all : Params.t -> t list
(** Every PID slot, ascending — handy for tests and full-population
    clusters. *)
