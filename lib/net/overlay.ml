open Lesslog_id
module Engine = Lesslog_sim.Engine
module Rng = Lesslog_prng.Rng

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  latency : Latency.t;
  mutable loss : float;
  mutable filter : (src:Pid.t -> dst:Pid.t -> bool) option;
  handlers : (src:Pid.t -> 'msg -> unit) option array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  (* packed plane: one engine handler for every delivery, src/dst bit-packed
     into the event's [a] word, node liveness as a byte per slot *)
  mutable deliver_h : int;
  mutable packed_recv : (src:Pid.t -> dst:Pid.t -> int -> float -> unit) option;
  attached : Bytes.t;
}

let check_loss loss =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Overlay: loss"

let dst_bits = 24
let dst_mask = (1 lsl dst_bits) - 1

let create ~engine ~rng ?(latency = Latency.default) ?(loss = 0.0) params =
  check_loss loss;
  let space = Params.space params in
  if space > dst_mask + 1 then invalid_arg "Overlay.create: space too large";
  let t =
    {
      engine;
      rng;
      latency;
      loss;
      filter = None;
      handlers = Array.make space None;
      sent = 0;
      delivered = 0;
      dropped = 0;
      deliver_h = -1;
      packed_recv = None;
      attached = Bytes.make space '\000';
    }
  in
  t.deliver_h <-
    Engine.register_handler engine (fun a b x ->
        let dst = a land dst_mask and src = a lsr dst_bits in
        if Bytes.unsafe_get t.attached dst = '\001' then begin
          match t.packed_recv with
          | Some recv ->
              t.delivered <- t.delivered + 1;
              recv ~src:(Pid.unsafe_of_int src) ~dst:(Pid.unsafe_of_int dst) b x
          | None -> t.dropped <- t.dropped + 1
        end
        else t.dropped <- t.dropped + 1);
  t

let set_loss t loss =
  check_loss loss;
  t.loss <- loss

let loss t = t.loss

let set_filter t f = t.filter <- f

let set_handler t p f = t.handlers.(Pid.to_int p) <- Some f

let clear_handler t p = t.handlers.(Pid.to_int p) <- None

let link_up t ~src ~dst =
  match t.filter with None -> true | Some f -> f ~src ~dst

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  if not (link_up t ~src ~dst) then t.dropped <- t.dropped + 1
  else if t.loss > 0.0 && Rng.bernoulli t.rng ~p:t.loss then
    t.dropped <- t.dropped + 1
  else begin
    let delay = Latency.sample t.latency t.rng in
    Engine.schedule t.engine ~delay (fun () ->
        match t.handlers.(Pid.to_int dst) with
        | Some handler ->
            t.delivered <- t.delivered + 1;
            handler ~src msg
        | None -> t.dropped <- t.dropped + 1)
  end

let set_packed_recv t f = t.packed_recv <- f

let attach t p = Bytes.set t.attached (Pid.to_int p) '\001'
let detach t p = Bytes.set t.attached (Pid.to_int p) '\000'

let send_packed t ~src ~dst ~b ~x =
  t.sent <- t.sent + 1;
  if not (link_up t ~src ~dst) then t.dropped <- t.dropped + 1
  else if t.loss > 0.0 && Rng.bernoulli t.rng ~p:t.loss then
    t.dropped <- t.dropped + 1
  else begin
    let delay = Latency.sample t.latency t.rng in
    Engine.post t.engine ~delay ~h:t.deliver_h
      ~a:((Pid.to_int src lsl dst_bits) lor Pid.to_int dst)
      ~b ~x
  end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
