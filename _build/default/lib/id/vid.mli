(** Virtual identifiers (VIDs) — positions in the unique virtual lookup
    tree (Section 2.1). Presented in binary in the paper; a [private int]
    here so tree arithmetic stays allocation-free while the type system
    keeps VIDs and PIDs apart. *)

type t = private int

val of_int : Params.t -> int -> t
(** @raise Invalid_argument when outside [\[0, 2^m)]. *)

val unsafe_of_int : int -> t
(** Trusted constructor for hot paths; the caller guarantees range. *)

val to_int : t -> int

val root : Params.t -> t
(** The all-ones VID, root of the virtual tree. *)

val zero : t
(** VID 0 — the deepest leaf. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Params.t -> Format.formatter -> t -> unit
(** Binary rendering, e.g. [1011]. *)

val pp_plain : Format.formatter -> t -> unit
(** Decimal rendering for contexts without params. *)
