lib/net/latency.mli: Format Lesslog_prng
