lib/report/bars.mli: Lesslog_metrics
