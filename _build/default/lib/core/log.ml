let src = Logs.Src.create "lesslog" ~doc:"LessLog core file operations"

include (val Logs.src_log src : Logs.LOG)
