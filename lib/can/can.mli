(** A CAN-style d-dimensional lookup substrate (Ratnasamy et al., SIGCOMM
    2001) — the second related-work system the paper cites (Section 7).

    Nodes own rectangular zones of the unit d-torus, built by the standard
    join procedure (pick a random point, split the owner's zone along its
    longest side). Lookup routes greedily through zone neighbours toward
    the target point, giving the well-known O(d · N^(1/d)) hop count that
    contrasts with the O(log N) of LessLog's trees and Chord's fingers in
    the A1 ablation. *)

type t

val create : rng:Lesslog_prng.Rng.t -> n:int -> d:int -> t
(** Build an [n]-zone CAN of dimension [d] by [n - 1] random joins.
    @raise Invalid_argument unless [n >= 1] and [1 <= d <= 6]. *)

val node_count : t -> int
val dimension : t -> int

val owner_of : t -> float array -> int
(** Index of the zone containing a point of the unit torus. *)

type lookup_result = { owner : int; hops : int }

val lookup : t -> from:int -> target:float array -> lookup_result
(** Greedy neighbour routing from zone [from] to the owner of [target].
    [hops] counts zone-to-zone forwardings. *)

val random_lookup : t -> rng:Lesslog_prng.Rng.t -> lookup_result
(** Lookup of a uniform random point from a uniform random zone. *)

val neighbors_of : t -> int -> int list
(** Indices of the zones adjacent to zone [i] (symmetric by
    construction). *)

val contains_point : t -> int -> float array -> bool
(** Whether zone [i] contains the point. *)

val live_owner_of : t -> target:float array -> alive:(int -> bool) -> int option
(** The nearest live zone to a point, by lexicographic
    (rectangle distance, center distance, index) — the deterministic
    responsible node when the containing zone may be dead. [None] iff no
    zone is live. *)

val next_hop_toward :
  t -> from:int -> target:float array -> alive:(int -> bool) -> int option
(** One stateless greedy step toward the point: the live neighbour
    strictly closer than the current zone under
    (rectangle distance, center distance), so repeated calls always
    terminate. [None] when [from] contains the point {e or} when greedy
    routing dead-ends; CAN does not guarantee delivery, so callers must
    check the terminal zone actually owns the target. *)

val expected_hops : n:int -> d:int -> float
(** The CAN paper's asymptotic mean path length, (d/4) · n^(1/d) — for
    sanity checks and documentation. *)

val mean_neighbors : t -> float
(** Average neighbour-table size (≈ 2d for well-shaped zones). *)
