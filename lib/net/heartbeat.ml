open Lesslog_id
module Engine = Lesslog_sim.Engine

type config = { period : float; suspect_after : int }

let default_config = { period = 0.5; suspect_after = 5 }

type verdict = [ `Suspect | `Trust ]

type peer = {
  pid : Pid.t;
  mutable misses : int;
  mutable suspected : bool;
  mutable last_seq : int;  (* sequence number of the outstanding ping *)
  mutable answered : bool;
}

type t = {
  engine : Engine.t;
  config : config;
  peers : peer array;
  index : (int, peer) Hashtbl.t;  (* PID int -> peer *)
  ping : seq:int -> Pid.t -> unit;
  on_change : Pid.t -> verdict -> unit;
  mutable next_seq : int;
  mutable rounds : int;
  mutable suspicions : int;
  mutable recoveries : int;
}

let create ~engine ?(config = default_config) ~peers ~ping ~on_change () =
  if config.period <= 0.0 then invalid_arg "Heartbeat.create: period";
  if config.suspect_after < 1 then invalid_arg "Heartbeat.create: suspect_after";
  let peers =
    Array.map
      (fun pid ->
        { pid; misses = 0; suspected = false; last_seq = -1; answered = true })
      peers
  in
  let index = Hashtbl.create (Array.length peers) in
  Array.iter (fun p -> Hashtbl.replace index (Pid.to_int p.pid) p) peers;
  {
    engine;
    config;
    peers;
    index;
    ping;
    on_change;
    next_seq = 0;
    rounds = 0;
    suspicions = 0;
    recoveries = 0;
  }

let round t =
  t.rounds <- t.rounds + 1;
  Array.iter
    (fun p ->
      if (not p.answered) && p.last_seq >= 0 then begin
        p.misses <- p.misses + 1;
        if p.misses >= t.config.suspect_after && not p.suspected then begin
          p.suspected <- true;
          t.suspicions <- t.suspicions + 1;
          t.on_change p.pid `Suspect
        end
      end;
      let seq = t.next_seq in
      t.next_seq <- t.next_seq + 1;
      p.last_seq <- seq;
      p.answered <- false;
      t.ping ~seq p.pid)
    t.peers

let start t ~until =
  let rec tick () =
    if Engine.now t.engine <= until then begin
      round t;
      let next = Engine.now t.engine +. t.config.period in
      if next <= until then Engine.schedule_at t.engine ~time:next tick
    end
  in
  tick ()

let pong t ~peer ~seq =
  match Hashtbl.find_opt t.index (Pid.to_int peer) with
  | None -> ()
  | Some p ->
      (* Accept any sequence number we actually sent to this peer: a pong
         that raced the next round is still evidence of life. *)
      if seq <= p.last_seq then begin
        if seq = p.last_seq then p.answered <- true;
        p.misses <- 0;
        if p.suspected then begin
          p.suspected <- false;
          t.recoveries <- t.recoveries + 1;
          t.on_change p.pid `Trust
        end
      end

let suspected t pid =
  match Hashtbl.find_opt t.index (Pid.to_int pid) with
  | None -> false
  | Some p -> p.suspected

let suspected_count t =
  Array.fold_left (fun acc p -> if p.suspected then acc + 1 else acc) 0 t.peers

let rounds t = t.rounds
let suspicions t = t.suspicions
let recoveries t = t.recoveries
