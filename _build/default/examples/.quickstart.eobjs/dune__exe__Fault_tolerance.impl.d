examples/fault_tolerance.ml: Lesslog Lesslog_id Lesslog_membership Lesslog_prng Lesslog_storage List Params Printf
