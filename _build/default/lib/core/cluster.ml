open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module File_store = Lesslog_storage.File_store
module Psi = Lesslog_hash.Psi

type t = {
  params : Params.t;
  psi : Psi.t;
  status : Status_word.t;
  stores : File_store.t array;
  registry : (string, unit) Hashtbl.t;
}

let make params status =
  {
    params;
    psi = Psi.create ~m:(Params.m params);
    status;
    stores = Array.init (Params.space params) (fun _ -> File_store.create ());
    registry = Hashtbl.create 16;
  }

let create ?live params =
  let status =
    match live with
    | None -> Status_word.create params ~initially_live:true
    | Some pids -> Status_word.of_live_list params pids
  in
  make params status

let create_with_dead_fraction params ~rng ~fraction =
  let status = Status_word.create params ~initially_live:true in
  let (_ : Pid.t list) = Status_word.kill_fraction status rng ~fraction in
  make params status

let params t = t.params
let status t = t.status
let psi t = t.psi
let live_count t = Status_word.live_count t.status
let store t p = t.stores.(Pid.to_int p)

let target_of_key t key = Pid.unsafe_of_int (Psi.target t.psi key)
let tree_of t p = Ptree.make t.params ~root:p
let tree_of_key t key = tree_of t (target_of_key t key)

let holds t p ~key = File_store.holds (store t p) ~key

let holders t ~key =
  Status_word.fold_live t.status ~init:[] ~f:(fun acc p ->
      if holds t p ~key then p :: acc else acc)
  |> List.rev

let register_key t key = Hashtbl.replace t.registry key ()

let unregister_key t key = Hashtbl.remove t.registry key

let registered_keys t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.registry [] |> List.sort compare

let count_copies t ~key pred =
  Status_word.fold_live t.status ~init:0 ~f:(fun acc p ->
      match File_store.origin (store t p) ~key with
      | Some o when pred o -> acc + 1
      | Some _ | None -> acc)

let replica_count t ~key =
  count_copies t ~key (fun o -> o = File_store.Replicated)

let total_copies t ~key = count_copies t ~key (fun _ -> true)
