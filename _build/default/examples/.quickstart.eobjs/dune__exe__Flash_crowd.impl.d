examples/flash_crowd.ml: Array Float Lesslog Lesslog_des Lesslog_flow Lesslog_id Lesslog_metrics Lesslog_prng Lesslog_workload Params Pid Printf
