(** Delta debugging for checker schedules.

    One-level ddmin over the step list: chunk-deletion passes with
    halving chunk sizes down to single steps, iterated to a fixpoint, and
    a final attempt at the empty schedule. The result is 1-minimal: no
    single remaining step can be dropped without losing the failure. *)

type stats = {
  runs : int;  (** Predicate evaluations (i.e. full re-runs). *)
  kept : int;
  dropped : int;
}

val minimize :
  pred:('a list -> bool) -> 'a list -> 'a list * stats
(** [minimize ~pred steps] with [pred candidate] true iff the trial still
    fails the same way. [pred] is assumed deterministic; it is never
    called on the input list itself (the caller has already seen it
    fail). *)
