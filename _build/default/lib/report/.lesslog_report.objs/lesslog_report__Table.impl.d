lib/report/table.ml: Array Float List Printf Series String
