open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Self_org = Lesslog.Self_org
module Status_word = Lesslog_membership.Status_word
module File_store = Lesslog_storage.File_store
module Rng = Lesslog_prng.Rng

let pid = Pid.unsafe_of_int

let key_targeting cluster target =
  let rec search i =
    if i > 100_000 then failwith "no key found"
    else
      let key = Printf.sprintf "synthetic-%d" i in
      if Pid.equal (Cluster.target_of_key cluster key) target then key
      else search (i + 1)
  in
  search 0

let took_over stats =
  List.map (fun (k, p) -> (k, Pid.to_int p)) stats.Self_org.took_over

(* --- The paper's join example (Section 5.1) --------------------------- *)

let test_join_takes_over_example () =
  (* 14-node system, P(4) and P(5) dead, f targets P(4): stored at P(6).
     P(5) joins: in the tree of P(4), VID(P(5)) = 1110 > VID(P(6)) = 1101,
     so f must move to P(5). *)
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  Alcotest.(check (list int)) "initially at P(6)" [ 6 ]
    (List.map Pid.to_int (Ops.insert cluster ~key));
  let stats = Self_org.join cluster (pid 5) in
  Alcotest.(check (list (pair string int))) "took over from P(6)"
    [ (key, 6) ] (took_over stats);
  Alcotest.(check bool) "P(5) now inserted holder" true
    (File_store.origin (Cluster.store cluster (pid 5)) ~key
    = Some File_store.Inserted);
  Alcotest.(check bool) "P(6) demoted" true
    (File_store.origin (Cluster.store cluster (pid 6)) ~key
    = Some File_store.Replicated);
  Alcotest.(check int) "integrity restored" 0
    (List.length (Self_org.integrity_violations cluster))

let test_join_root_reclaims () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 4);
  Status_word.set_dead (Cluster.status cluster) (pid 5);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let stats = Self_org.join cluster (pid 4) in
  Alcotest.(check (list (pair string int))) "reclaimed" [ (key, 6) ]
    (took_over stats);
  let r = Ops.get cluster ~origin:(pid 9) ~key in
  Alcotest.(check (option int)) "served at root" (Some 4)
    (Option.map Pid.to_int r.Ops.server)

let test_join_irrelevant_node () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Status_word.set_dead (Cluster.status cluster) (pid 9);
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let stats = Self_org.join cluster (pid 9) in
  Alcotest.(check int) "nothing copied" 0 (List.length stats.Self_org.took_over)

let test_join_already_live_rejected () =
  let cluster = Cluster.create (Params.create ~m:3 ()) in
  Alcotest.check_raises "already live"
    (Invalid_argument "Self_org.join: already live") (fun () ->
      ignore (Self_org.join cluster (pid 2)))

(* --- Leave (Section 5.2) ---------------------------------------------- *)

let test_leave_reinserts_and_drops () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  (* Plant a replica of another file on the leaver. *)
  let other = key_targeting cluster (pid 9) in
  ignore (Ops.insert cluster ~key:other);
  File_store.add (Cluster.store cluster (pid 4)) ~key:other
    ~origin:File_store.Replicated ~version:0 ~now:0.0;
  let stats = Self_org.leave cluster (pid 4) in
  Alcotest.(check (list string)) "replica discarded" [ other ]
    stats.Self_org.dropped_replicas;
  (* Inserted file re-homed at the new FINDLIVENODE target: with P(4)
     dead, the max-VID live node in the tree of P(4) is P(5). *)
  Alcotest.(check (list (pair string int))) "reinserted at P(5)"
    [ (key, 5) ]
    (List.map (fun (k, p) -> (k, Pid.to_int p)) stats.Self_org.reinserted);
  Alcotest.(check bool) "leaver dead" true
    (Status_word.is_dead (Cluster.status cluster) (pid 4));
  Alcotest.(check int) "integrity kept" 0
    (List.length (Self_org.integrity_violations cluster));
  (* Requests still resolve. *)
  let r = Ops.get cluster ~origin:(pid 9) ~key in
  Alcotest.(check (option int)) "served at P(5)" (Some 5)
    (Option.map Pid.to_int r.Ops.server)

let test_leave_already_dead_rejected () =
  let cluster = Cluster.create (Params.create ~m:3 ()) in
  Status_word.set_dead (Cluster.status cluster) (pid 1);
  Alcotest.check_raises "already dead"
    (Invalid_argument "Self_org.leave: already dead") (fun () ->
      ignore (Self_org.leave cluster (pid 1)))

(* --- Fail (Section 5.3) ----------------------------------------------- *)

let test_fail_b0_loses_unreplicated_file () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let stats = Self_org.fail cluster (pid 4) in
  Alcotest.(check (list string)) "lost" [ key ] stats.Self_org.lost;
  Alcotest.(check int) "nothing recovered" 0
    (List.length stats.Self_org.recovered);
  (* Requests now fault. *)
  let r = Ops.get cluster ~origin:(pid 9) ~key in
  Alcotest.(check (option int)) "fault" None
    (Option.map Pid.to_int r.Ops.server)

let test_fail_b0_survives_via_replica () =
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  let key = key_targeting cluster (pid 4) in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:1 in
  (* One replica at the top child P(5) before the crash. *)
  ignore (Ops.replicate ~rng cluster ~overloaded:(pid 4) ~key);
  let stats = Self_org.fail cluster (pid 4) in
  Alcotest.(check (list string)) "orphaned, not lost" [ key ]
    stats.Self_org.orphaned;
  (* The replica still serves every origin: P(5) is now the max-VID live
     node of the tree of P(4), where all routes converge. *)
  List.iter
    (fun origin ->
      if Status_word.is_live (Cluster.status cluster) origin then
        let r = Ops.get cluster ~origin ~key in
        Alcotest.(check (option int))
          (Printf.sprintf "origin %d" (Pid.to_int origin))
          (Some 5)
          (Option.map Pid.to_int r.Ops.server))
    (Pid.all params)

let test_fail_ft_recovers_from_sibling_subtree () =
  let params = Params.create ~m:6 ~b:2 () in
  let cluster = Cluster.create params in
  let key = "precious" in
  let targets = Ops.insert cluster ~key in
  Alcotest.(check int) "4 copies" 4 (List.length targets);
  let victim = List.hd targets in
  let stats = Self_org.fail cluster victim in
  Alcotest.(check int) "nothing lost" 0 (List.length stats.Self_org.lost);
  Alcotest.(check int) "one recovery" 1 (List.length stats.Self_org.recovered);
  Alcotest.(check int) "4 copies again" 4 (Cluster.total_copies cluster ~key);
  Alcotest.(check int) "integrity kept" 0
    (List.length (Self_org.integrity_violations cluster));
  (* Every live origin can still read the file. *)
  List.iter
    (fun origin ->
      if Status_word.is_live (Cluster.status cluster) origin then
        let r = Ops.get cluster ~origin ~key in
        Alcotest.(check bool)
          (Printf.sprintf "origin %d served" (Pid.to_int origin))
          true (r.Ops.server <> None))
    (Pid.all params)

let test_fail_ft_simultaneous_loss () =
  (* Killing all 2^b targets at once loses the file, as the paper's
     guarantee requires non-simultaneous failures. *)
  let params = Params.create ~m:6 ~b:1 () in
  let cluster = Cluster.create params in
  let key = "doomed" in
  let targets = Ops.insert cluster ~key in
  Alcotest.(check int) "2 copies" 2 (List.length targets);
  (match targets with
  | [ a; b ] ->
      (* Remove b's copy behind the recovery mechanism's back, then crash
         a: no donor remains. *)
      File_store.remove (Cluster.store cluster b) ~key;
      let stats = Self_org.fail cluster a in
      Alcotest.(check (list string)) "lost" [ key ] stats.Self_org.lost
  | _ -> Alcotest.fail "expected two targets")

(* --- Churn properties -------------------------------------------------- *)

let gen_churn =
  QCheck2.Gen.(
    int_range 3 7 >>= fun m ->
    int_range 0 1_000_000 >>= fun seed ->
    int_range 1 12 >>= fun files ->
    int_range 1 25 >>= fun steps -> return (m, seed, files, steps))

(* Random join/leave churn (no failures) preserves integrity: every key's
   inserted copy sits at its current FINDLIVENODE target. *)
let prop_churn_preserves_integrity =
  Test_support.qcheck_case ~count:120 ~name:"join/leave churn keeps integrity"
    gen_churn (fun (m, seed, files, steps) ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      let rng = Rng.create ~seed in
      for i = 1 to files do
        ignore (Ops.insert cluster ~key:(Printf.sprintf "f-%d-%d" seed i))
      done;
      let ok = ref true in
      for _ = 1 to steps do
        let status = Cluster.status cluster in
        let flip = Rng.bool rng in
        (if flip && Status_word.live_count status > 1 then
           match Status_word.random_live status rng with
           | Some p -> ignore (Self_org.leave cluster p)
           | None -> ()
         else
           match Status_word.random_dead status rng with
           | Some p -> ignore (Self_org.join cluster p)
           | None -> ());
        if Self_org.integrity_violations cluster <> [] then ok := false
      done;
      !ok)

(* After churn every file is still readable from every live node. *)
let prop_churn_preserves_availability =
  Test_support.qcheck_case ~count:80 ~name:"churn keeps files readable"
    gen_churn (fun (m, seed, files, steps) ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      let rng = Rng.create ~seed in
      let keys = List.init files (fun i -> Printf.sprintf "f-%d-%d" seed i) in
      List.iter (fun key -> ignore (Ops.insert cluster ~key)) keys;
      for _ = 1 to steps do
        let status = Cluster.status cluster in
        if Rng.bool rng && Status_word.live_count status > 1 then
          match Status_word.random_live status rng with
          | Some p -> ignore (Self_org.leave cluster p)
          | None -> ()
        else
          match Status_word.random_dead status rng with
          | Some p -> ignore (Self_org.join cluster p)
          | None -> ()
      done;
      let status = Cluster.status cluster in
      List.for_all
        (fun key ->
          List.for_all
            (fun origin -> (Ops.get cluster ~origin ~key).Ops.server <> None)
            (Status_word.live_pids status))
        keys)

(* Fault-tolerant churn with crashes: as long as we only crash one node at
   a time (and 2^b targets never die simultaneously), no file is lost. *)
let prop_ft_single_crashes_never_lose =
  Test_support.qcheck_case ~count:80 ~name:"FT: isolated crashes lose nothing"
    QCheck2.Gen.(
      int_range 4 7 >>= fun m ->
      int_range 1 2 >>= fun b ->
      int_range 0 1_000_000 >>= fun seed ->
      int_range 1 8 >>= fun files ->
      int_range 1 10 >>= fun crashes -> return (m, b, seed, files, crashes))
    (fun (m, b, seed, files, crashes) ->
      let params = Params.create ~m ~b () in
      let cluster = Cluster.create params in
      let rng = Rng.create ~seed in
      let keys = List.init files (fun i -> Printf.sprintf "f-%d-%d" seed i) in
      List.iter (fun key -> ignore (Ops.insert cluster ~key)) keys;
      let lost = ref [] in
      for _ = 1 to crashes do
        let status = Cluster.status cluster in
        (* Keep at least one live node per subtree population. *)
        if Status_word.live_count status > Params.subtree_count params then
          match Status_word.random_live status rng with
          | Some p ->
              let stats = Self_org.fail cluster p in
              lost := stats.Self_org.lost @ !lost
          | None -> ()
      done;
      !lost = []
      && List.for_all (fun key -> Cluster.holders cluster ~key <> []) keys)

let () =
  Alcotest.run "self_org"
    [
      ( "join",
        [
          Alcotest.test_case "paper example (P(5) joins)" `Quick
            test_join_takes_over_example;
          Alcotest.test_case "root reclaims" `Quick test_join_root_reclaims;
          Alcotest.test_case "irrelevant joiner" `Quick test_join_irrelevant_node;
          Alcotest.test_case "already live rejected" `Quick
            test_join_already_live_rejected;
        ] );
      ( "leave",
        [
          Alcotest.test_case "reinsert + drop replicas" `Quick
            test_leave_reinserts_and_drops;
          Alcotest.test_case "already dead rejected" `Quick
            test_leave_already_dead_rejected;
        ] );
      ( "fail",
        [
          Alcotest.test_case "b=0 loses unreplicated file" `Quick
            test_fail_b0_loses_unreplicated_file;
          Alcotest.test_case "b=0 survives via replica" `Quick
            test_fail_b0_survives_via_replica;
          Alcotest.test_case "b>0 recovers from sibling" `Quick
            test_fail_ft_recovers_from_sibling_subtree;
          Alcotest.test_case "b>0 simultaneous loss" `Quick
            test_fail_ft_simultaneous_loss;
        ] );
      ( "churn properties",
        [
          prop_churn_preserves_integrity;
          prop_churn_preserves_availability;
          prop_ft_single_crashes_never_lose;
        ] );
    ]
