type t = { n : int; probs : float array; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n";
  if s < 0.0 then invalid_arg "Zipf.create: s";
  let weights = Array.init n (fun i -> (float_of_int (i + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let probs = Array.map (fun w -> w /. total) weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    probs;
  cdf.(n - 1) <- 1.0;
  { n; probs; cdf }

let n t = t.n

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability";
  t.probs.(rank)

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
