type t = { mutable samples : float list; mutable sorted : float array option }

let create () = { samples = []; sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None

let add_int t x = add t (float_of_int x)

let count t = List.length t.samples

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

let mean t =
  match t.samples with
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let quantile t q =
  let a = sorted t in
  if Array.length a = 0 then invalid_arg "Histogram.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: out of range";
  let n = Array.length a in
  let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  a.(rank)

let median t = quantile t 0.5

let max_value t =
  let a = sorted t in
  if Array.length a = 0 then invalid_arg "Histogram.max_value: empty";
  a.(Array.length a - 1)

let min_value t =
  let a = sorted t in
  if Array.length a = 0 then invalid_arg "Histogram.min_value: empty";
  a.(0)

let buckets t ~width =
  if width <= 0.0 then invalid_arg "Histogram.buckets";
  let a = sorted t in
  if Array.length a = 0 then []
  else begin
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        let b = floor (x /. width) *. width in
        Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
      a;
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  end

let pp fmt t =
  if count t = 0 then Format.pp_print_string fmt "(empty)"
  else
    Format.fprintf fmt "n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g" (count t)
      (mean t) (median t) (quantile t 0.99) (max_value t)
