open Lesslog_id
module Vtree = Lesslog_vtree.Vtree
module Ptree = Lesslog_ptree.Ptree
module Bitops = Lesslog_bits.Bitops

let params4 = Params.create ~m:4 ()

let vid v = Vid.unsafe_of_int v
let pid p = Pid.unsafe_of_int p

let vids = List.map Vid.to_int

(* --- Virtual tree: the paper's Figure 1 (m = 4) ---------------------- *)

let test_root () =
  Alcotest.(check int) "root vid" 0b1111 (Vid.to_int (Vid.root params4));
  Alcotest.(check bool) "is_root" true (Vtree.is_root params4 (vid 0b1111));
  Alcotest.(check bool) "not root" false (Vtree.is_root params4 (vid 0b1110))

let test_children_of_root () =
  (* Property 1 on the root: 4 children, by descending offspring. *)
  Alcotest.(check (list int)) "root children"
    [ 0b1110; 0b1101; 0b1011; 0b0111 ]
    (vids (Vtree.children params4 (vid 0b1111)))

let test_children_figure1 () =
  (* The node of VID 1100 has 2 children: 0100 and 1000 (paper text). *)
  Alcotest.(check (list int)) "children of 1100" [ 0b1000; 0b0100 ]
    (vids (Vtree.children params4 (vid 0b1100)));
  (* 0111 is a leaf. *)
  Alcotest.(check (list int)) "children of 0111" []
    (vids (Vtree.children params4 (vid 0b0111)));
  (* 1000 has exactly one child: 0000. *)
  Alcotest.(check (list int)) "children of 1000" [ 0b0000 ]
    (vids (Vtree.children params4 (vid 0b1000)))

let test_parent_figure1 () =
  (* Paper: parent of 1011 is obtained by converting the leftmost 0 to 1. *)
  Alcotest.(check (option int)) "parent of 1011" (Some 0b1111)
    (Option.map Vid.to_int (Vtree.parent params4 (vid 0b1011)));
  Alcotest.(check (option int)) "parent of 0101" (Some 0b1101)
    (Option.map Vid.to_int (Vtree.parent params4 (vid 0b0101)));
  Alcotest.(check (option int)) "root parentless" None
    (Option.map Vid.to_int (Vtree.parent params4 (vid 0b1111)))

let test_offspring_figure1 () =
  (* Paper: nodes of VID 1110 and 1101 have 7 and 3 offspring. *)
  Alcotest.(check int) "offspring 1110" 7
    (Vtree.offspring_count params4 (vid 0b1110));
  Alcotest.(check int) "offspring 1101" 3
    (Vtree.offspring_count params4 (vid 0b1101));
  Alcotest.(check int) "offspring root" 15
    (Vtree.offspring_count params4 (vid 0b1111));
  Alcotest.(check int) "offspring leaf" 0
    (Vtree.offspring_count params4 (vid 0b0111))

let test_depth () =
  Alcotest.(check int) "depth root" 0 (Vtree.depth params4 (vid 0b1111));
  Alcotest.(check int) "depth 0000" 4 (Vtree.depth params4 (vid 0b0000));
  Alcotest.(check int) "depth 1011" 1 (Vtree.depth params4 (vid 0b1011))

let test_path_to_root () =
  Alcotest.(check (list int)) "path 0000"
    [ 0b0000; 0b1000; 0b1100; 0b1110; 0b1111 ]
    (vids (Vtree.path_to_root params4 (vid 0b0000)))

let test_subtree_iteration () =
  let count = ref 0 in
  Vtree.iter_subtree params4 (vid 0b1111) (fun _ -> incr count);
  Alcotest.(check int) "whole tree" 16 !count;
  let seen =
    Vtree.fold_subtree params4 (vid 0b1110) ~init:[] ~f:(fun acc v ->
        Vid.to_int v :: acc)
  in
  Alcotest.(check int) "subtree of 1110" 8 (List.length seen)

(* --- Physical tree: the paper's Figure 2 (tree of P(4), m = 4) ------- *)

let tree4 = Ptree.make params4 ~root:(pid 4)

let test_figure2_mapping () =
  (* comp(4) = 1011; PID = VID xor 1011. *)
  Alcotest.(check int) "root pid" 4 (Pid.to_int (Ptree.root tree4));
  Alcotest.(check int) "vid of P(4)" 0b1111
    (Vid.to_int (Ptree.vid_of_pid tree4 (pid 4)));
  Alcotest.(check int) "vid of P(8)" 0b0011
    (Vid.to_int (Ptree.vid_of_pid tree4 (pid 8)));
  Alcotest.(check int) "pid of 1110" 5
    (Pid.to_int (Ptree.pid_of_vid tree4 (vid 0b1110)))

let test_figure2_children_list () =
  (* Paper: the children list of P(4) is (P(5), P(6), P(0), P(12)). *)
  Alcotest.(check (list int)) "children list of P(4)" [ 5; 6; 0; 12 ]
    (List.map Pid.to_int (Ptree.children tree4 (pid 4)))

let test_figure2_routing () =
  (* Paper: P(8) routes to P(0), which routes to P(4). *)
  Alcotest.(check (option int)) "P(8) -> P(0)" (Some 0)
    (Option.map Pid.to_int (Ptree.parent tree4 (pid 8)));
  Alcotest.(check (option int)) "P(0) -> P(4)" (Some 4)
    (Option.map Pid.to_int (Ptree.parent tree4 (pid 0)));
  Alcotest.(check (list int)) "full path" [ 8; 0; 4 ]
    (List.map Pid.to_int (Ptree.path_to_root tree4 (pid 8)))

let test_ancestry () =
  Alcotest.(check bool) "P(4) ancestor of P(8)" true
    (Ptree.is_ancestor tree4 ~ancestor:(pid 4) (pid 8));
  Alcotest.(check bool) "P(0) ancestor of P(8)" true
    (Ptree.is_ancestor tree4 ~ancestor:(pid 0) (pid 8));
  Alcotest.(check bool) "P(8) not ancestor of P(0)" false
    (Ptree.is_ancestor tree4 ~ancestor:(pid 8) (pid 0));
  Alcotest.(check bool) "reflexive" true
    (Ptree.is_ancestor tree4 ~ancestor:(pid 8) (pid 8))

(* --- Properties ------------------------------------------------------ *)

let gen_params_vid =
  QCheck2.Gen.(
    Test_support.gen_params >>= fun params ->
    Test_support.gen_vid params >>= fun v -> return (params, v))

let prop_parent_child_inverse =
  Test_support.qcheck_case ~name:"v is a child of parent v" gen_params_vid
    (fun (params, v) ->
      match Vtree.parent params v with
      | None -> Vtree.is_root params v
      | Some p -> List.exists (Vid.equal v) (Vtree.children params p))

let prop_children_parent_inverse =
  Test_support.qcheck_case ~name:"parent of each child is v" gen_params_vid
    (fun (params, v) ->
      List.for_all
        (fun c ->
          match Vtree.parent params c with
          | Some p -> Vid.equal p v
          | None -> false)
        (Vtree.children params v))

let prop_offspring_count_exact =
  Test_support.qcheck_case ~name:"offspring_count = |subtree| - 1"
    QCheck2.Gen.(
      map (fun m -> Params.create ~m ()) (int_range 2 6) >>= fun params ->
      Test_support.gen_vid params >>= fun v -> return (params, v))
    (fun (params, v) ->
      let n = Vtree.fold_subtree params v ~init:0 ~f:(fun a _ -> a + 1) in
      Vtree.offspring_count params v = n - 1)

let prop_offspring_monotone =
  (* Property 3 of the paper. *)
  Test_support.qcheck_case ~name:"offspring monotone in VID"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_vid params >>= fun i ->
      Test_support.gen_vid params >>= fun j -> return (params, i, j))
    (fun (params, i, j) ->
      let i, j = if Vid.compare i j >= 0 then (i, j) else (j, i) in
      Vtree.offspring_count params i >= Vtree.offspring_count params j)

let prop_depth_popcount =
  Test_support.qcheck_case ~name:"depth = m - popcount" gen_params_vid
    (fun (params, v) ->
      Vtree.depth params v = Params.m params - Bitops.popcount (Vid.to_int v))

let prop_path_increasing_and_bounded =
  Test_support.qcheck_case ~name:"root path has increasing VIDs, len <= m+1"
    gen_params_vid (fun (params, v) ->
      let path = List.map Vid.to_int (Vtree.path_to_root params v) in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      increasing path
      && List.length path <= Params.m params + 1
      && List.nth path (List.length path - 1) = Params.mask params)

let gen_tree_pid =
  QCheck2.Gen.(
    Test_support.gen_params >>= fun params ->
    Test_support.gen_pid params >>= fun root ->
    Test_support.gen_pid params >>= fun p ->
    return (Ptree.make params ~root, p))

let prop_xor_bijection =
  Test_support.qcheck_case ~name:"pid<->vid round trip" gen_tree_pid
    (fun (tree, p) ->
      Pid.equal p (Ptree.pid_of_vid tree (Ptree.vid_of_pid tree p)))

let prop_physical_root_vid =
  Test_support.qcheck_case ~name:"root maps to all-ones VID" gen_tree_pid
    (fun (tree, _) ->
      Vid.to_int (Ptree.vid_of_pid tree (Ptree.root tree))
      = Params.mask (Ptree.params tree))

let prop_children_sorted_by_offspring =
  Test_support.qcheck_case ~name:"children list sorted by offspring desc"
    gen_tree_pid (fun (tree, p) ->
      let counts = List.map (Ptree.offspring_count tree) (Ptree.children tree p) in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing counts)

let prop_all_trees_distinct_roots =
  (* The XOR construction gives each node its own tree: P(r) is always the
     root of the tree built from complement r. *)
  Test_support.qcheck_case ~name:"tree of r rooted at r" gen_tree_pid
    (fun (tree, _) -> Ptree.is_root tree (Ptree.root tree))

let prop_path_through_parent =
  Test_support.qcheck_case ~name:"physical path consistent with parent"
    gen_tree_pid (fun (tree, p) ->
      match Ptree.path_to_root tree p with
      | [] -> false
      | first :: rest -> (
          Pid.equal first p
          &&
          match rest with
          | [] -> Ptree.is_root tree p
          | next :: _ -> Ptree.parent tree p = Some next))

let () =
  Alcotest.run "tree"
    [
      ( "virtual (figure 1)",
        [
          Alcotest.test_case "root" `Quick test_root;
          Alcotest.test_case "children of root" `Quick test_children_of_root;
          Alcotest.test_case "children examples" `Quick test_children_figure1;
          Alcotest.test_case "parents" `Quick test_parent_figure1;
          Alcotest.test_case "offspring counts" `Quick test_offspring_figure1;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "path to root" `Quick test_path_to_root;
          Alcotest.test_case "subtree iteration" `Quick test_subtree_iteration;
        ] );
      ( "physical (figure 2)",
        [
          Alcotest.test_case "xor mapping" `Quick test_figure2_mapping;
          Alcotest.test_case "children list of P(4)" `Quick
            test_figure2_children_list;
          Alcotest.test_case "routing P(8)->P(0)->P(4)" `Quick
            test_figure2_routing;
          Alcotest.test_case "ancestry" `Quick test_ancestry;
        ] );
      ( "properties",
        [
          prop_parent_child_inverse;
          prop_children_parent_inverse;
          prop_offspring_count_exact;
          prop_offspring_monotone;
          prop_depth_popcount;
          prop_path_increasing_and_bounded;
          prop_xor_bijection;
          prop_physical_root_vid;
          prop_children_sorted_by_offspring;
          prop_all_trees_distinct_roots;
          prop_path_through_parent;
        ] );
    ]
