type phase = { demand : Demand.t; duration : float }

type t = { phases : phase list; total : float }

let of_phases phases =
  if phases = [] then invalid_arg "Scenario.of_phases: empty";
  List.iter
    (fun p ->
      if p.duration <= 0.0 then
        invalid_arg "Scenario.of_phases: non-positive duration")
    phases;
  { phases; total = List.fold_left (fun acc p -> acc +. p.duration) 0.0 phases }

let phases t = t.phases

let total_duration t = t.total

let demand_at t ~time =
  if time < 0.0 then None
  else begin
    let rec find offset = function
      | [] -> None
      | p :: rest ->
          if time < offset +. p.duration then Some p.demand
          else find (offset +. p.duration) rest
    in
    find 0.0 t.phases
  end

let flash_crowd status ~rng ~peak ~calm ~peak_duration ~calm_duration =
  let hot = Demand.locality status ~rng ~total:peak in
  let dispersed = Demand.scale hot ~factor:(calm /. peak) in
  of_phases
    [
      { demand = hot; duration = peak_duration };
      { demand = dispersed; duration = calm_duration };
    ]
