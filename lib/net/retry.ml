module Rng = Lesslog_prng.Rng

type policy = {
  max_retries : int;
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
}

let default =
  { max_retries = 4; base = 0.25; factor = 2.0; max_delay = 2.0; jitter = 0.5 }

let create ?(max_retries = default.max_retries) ?(base = default.base)
    ?(factor = default.factor) ?(max_delay = default.max_delay)
    ?(jitter = default.jitter) () =
  if max_retries < 0 then invalid_arg "Retry.create: max_retries";
  if base <= 0.0 then invalid_arg "Retry.create: base";
  if factor < 1.0 then invalid_arg "Retry.create: factor";
  if max_delay < base then invalid_arg "Retry.create: max_delay";
  if jitter < 0.0 || jitter > 1.0 then invalid_arg "Retry.create: jitter";
  { max_retries; base; factor; max_delay; jitter }

let attempts p = p.max_retries + 1

let backoff p ~retry =
  if retry < 1 then invalid_arg "Retry.backoff: retry";
  Float.min p.max_delay (p.base *. (p.factor ** float_of_int (retry - 1)))

let delay p rng ~retry =
  let b = backoff p ~retry in
  if p.jitter = 0.0 then b
  else b *. (1.0 -. (p.jitter *. Rng.float rng 1.0))

let max_lifetime p ~timeout =
  let rec sum acc retry =
    if retry > p.max_retries then acc
    else sum (acc +. backoff p ~retry) (retry + 1)
  in
  (float_of_int (attempts p) *. timeout) +. sum 0.0 1
