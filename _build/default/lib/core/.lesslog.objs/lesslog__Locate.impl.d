lib/core/locate.ml: Cluster Hashtbl Lesslog_id Lesslog_membership Lesslog_ptree Lesslog_storage Lesslog_topology List Params Pid Vid
