(** The file-system facade: LessLog as a usable replicated store.

    The paper's goal is "a high-performance, load-balanced, and
    fault-tolerant file system for P2P distributed systems"; this module
    is that surface. It pairs the core algorithm's metadata operations
    with actual file contents (checksummed byte blobs that travel with
    every inserted copy, replica, update and recovery), and exposes a
    whole-catalogue rebalancing pass built on {!Lesslog_flow}.

    Invariant maintained throughout: a node holds a blob for a key iff its
    file store holds a (metadata) copy of that key, and the blob's
    checksum matches its version. {!fsck} verifies this. *)

open Lesslog_id

type t

type read_result = {
  data : string;
  version : int;
  served_by : Pid.t;
  hops : int;
}

type error =
  | Not_found  (** No copy lies on the resolution path. *)
  | Corrupted of Pid.t  (** A blob failed its checksum — storage fault. *)
  | No_live_node

val pp_error : Format.formatter -> error -> unit

val create : ?b:int -> ?live:Pid.t list -> m:int -> unit -> t
(** A fresh file system over a LessLog cluster. *)

val cluster : t -> Lesslog.Cluster.t
(** The underlying cluster, for membership operations and inspection. *)

val write : ?now:float -> t -> key:string -> data:string -> (int, error) result
(** Create or overwrite a file. A first write inserts it (at the
    FINDLIVENODE target(s)); later writes run UPDATEFILE, pushing the new
    content to every reachable copy. Returns the stored version. *)

val read : ?now:float -> t -> origin:Pid.t -> key:string -> (read_result, error) result
(** GETFILE plus content fetch and checksum verification at the serving
    node. @raise Invalid_argument when [origin] is dead. *)

val delete : ?now:float -> t -> key:string -> int
(** Remove a file from every reachable copy; returns how many copies were
    discarded. *)

val replicate :
  ?now:float ->
  t ->
  rng:Lesslog_prng.Rng.t ->
  overloaded:Pid.t ->
  key:string ->
  Pid.t option
(** One logless replication step, with the blob copied to the new
    holder. *)

val rebalance :
  ?now:float ->
  t ->
  rng:Lesslog_prng.Rng.t ->
  catalog:(string * Lesslog_workload.Demand.t) list ->
  capacity:float ->
  Lesslog_flow.Multi_balance.outcome
(** Whole-catalogue LessLog balancing under the given demand; new replica
    holders receive the blobs. *)

val evict_cold :
  ?now:float ->
  t ->
  catalog:(string * Lesslog_workload.Demand.t) list ->
  capacity:float ->
  min_rate:float ->
  int
(** Counter-based removal across the catalogue (per-file, capacity-safe);
    blobs follow the metadata. Returns replicas removed. *)

val keys : t -> string list
(** Registered keys, sorted. *)

val exists : t -> key:string -> bool

val copies : t -> key:string -> int
(** Live copies of the key. *)

val bytes_stored : t -> Pid.t -> int
(** Total blob bytes a node currently stores. *)

val fsck : t -> (string * Pid.t) list
(** Metadata/blob coherence check: returns every (key, node) where a
    metadata copy lacks a blob, a blob lacks metadata, or a checksum does
    not match. Empty on a healthy system. *)

val sync_blobs : t -> int
(** Repair pass used after raw cluster surgery in tests: copy blobs to
    holders that have metadata but no content (from any node that has a
    valid blob). Returns the number of blobs copied. *)
