type t = { m : int }

let create ~m =
  if m <= 0 || m > Lesslog_bits.Bitops.max_width then invalid_arg "Psi.create";
  { m }

let m t = t.m

let target t key = Fnv.fold_int64 (Fnv.hash64 key) ~bits:t.m
