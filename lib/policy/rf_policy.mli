(** Weighted dynamic replica-factor policy — the log-driven competitor to
    LessLog's logless placement.

    The classic access-frequency scheme (weighted dynamic replication for
    cloud storage; see SNIPPETS.md Snippet 1 and ROADMAP): time is cut
    into fixed analysis intervals, and for every file [i] the interval's
    access log yields

    - [ac_i] — the access count,
    - [dnc_i] — the number of distinct nodes that accessed it,
    - [w_i = dnc_i / nodes] — the node-coverage weight,
    - [PD_i = w_i *. ac_i] — the weighted popularity degree.

    Classification uses {e dynamic} thresholds derived from the
    system-wide popularity level: a file is Hot when its PD exceeds
    [hot_factor] times the reference popularity, Cold when it falls below
    [cold_factor] times it, Warm in between. The reference is an
    exponential moving average of the per-interval mean PD over accessed
    files, so thresholds track the demand level instead of being tuned
    constants. A Hot file's replica factor steps up (capped at [rf_max]),
    a Cold file's steps down (floored at [rf_min]), and the RF {e carries
    across intervals} — the persistent state that makes the policy
    log-driven, in contrast to LessLog's purely local, logless decision.

    Everything is deterministic and allocation-light: {!record} is an
    O(1) counter bump plus a bitset test, so the per-access hot path adds
    no measurable cost to a simulator, and {!end_interval} is O(files +
    touched-node-words). The module never draws randomness, which is what
    lets {!Lesslog_des.Pdes_sim} run it inside sequential barrier globals
    without perturbing per-shard RNG streams. *)

type class_ = Hot | Warm | Cold

val class_name : class_ -> string

type config = {
  interval : float;  (** Analysis-window length, seconds. *)
  rf_min : int;  (** Replica-factor floor (>= 1). *)
  rf_max : int;  (** Replica-factor cap. *)
  hot_factor : float;
      (** PD above [hot_factor *. reference] classifies Hot. *)
  cold_factor : float;
      (** PD below [cold_factor *. reference] classifies Cold. *)
  history : float;
      (** EMA weight of past intervals in the reference popularity,
          in [0, 1); 0 = thresholds from the current interval only. *)
  capacity : float option;
      (** [None] (pure mode): classification comes from the PD
          thresholds alone — the classic scheme. [Some c]
          (capacity-aware mode): the access log sizes each file's
          replica set to the observed rate ([ceil (ac / (interval *.
          c))] replicas absorb the interval's accesses at [c] requests/s
          each), and a file whose PD clears the dynamic hot threshold
          pre-provisions one replica of headroom; Hot/Cold then mean
          "below/above that target". Pure PD degenerates on a one-file
          catalogue — the file's PD {e is} the reference, so it can
          never cross its own thresholds — which is why the single-hot-
          file simulators use capacity-aware mode. *)
}

val default_config : config
(** 1 s intervals, RF in [1, 64], hot above 1.5x / cold below 0.5x the
    reference, history 0.5, pure mode (no capacity). *)

type decision = {
  file : int;
  cls : class_;
  ac : int;
  dnc : int;
  pd : float;
  rf_before : int;
  rf_after : int;
}

type t

val create : ?config:config -> ?rf0:int -> nodes:int -> files:int -> unit -> t
(** [nodes] is the accessing population size (the denominator of [w_i]);
    [files] the catalogue size. Every file starts at [rf0] (default
    [config.rf_min]) replicas.
    @raise Invalid_argument on non-positive sizes, [rf_min < 1],
    [rf_max < rf_min], [cold_factor > hot_factor], [history] outside
    [0, 1) or a non-positive [capacity]. *)

val config : t -> config
val files : t -> int
val nodes : t -> int

val record : t -> file:int -> node:int -> unit
(** One access to [file] originated by [node], O(1).
    @raise Invalid_argument on an out-of-range file or node. *)

val note : t -> file:int -> ac:int -> dnc:int -> unit
(** Merge a pre-aggregated observation into the current interval: [ac]
    accesses from [dnc] distinct nodes {e not already counted} — the
    shard-merge entry point for sharded simulators that tally locally and
    combine at a barrier. [dnc] saturates at [nodes]. *)

val rf : t -> file:int -> int
(** The current replica factor (carried across intervals). *)

val classification : t -> file:int -> class_
(** The class assigned at the last {!end_interval} ([Warm] before the
    first). *)

val reference_pd : t -> float
(** The EMA reference popularity the thresholds are derived from. *)

val end_interval : t -> decision array
(** Close the current analysis interval: compute every file's PD,
    refresh the dynamic thresholds, update replica factors, reset the
    interval tallies and return the per-file decisions (indexed by
    file). *)
