module Rng = Lesslog_prng.Rng

type config = {
  mean_session : float;
  mean_downtime : float;
  fail_fraction : float;
  duration : float;
}

let default =
  {
    mean_session = 120.0;
    mean_downtime = 60.0;
    fail_fraction = 0.2;
    duration = 300.0;
  }

let generate ~rng ~live config =
  if config.mean_session <= 0.0 || config.mean_downtime <= 0.0 then
    invalid_arg "Churn_trace.generate: means must be positive";
  if config.fail_fraction < 0.0 || config.fail_fraction > 1.0 then
    invalid_arg "Churn_trace.generate: fail_fraction";
  let events = ref [] in
  List.iter
    (fun node ->
      let t = ref (Rng.exponential rng ~rate:(1.0 /. config.mean_session)) in
      let online = ref true in
      while !t < config.duration do
        let action =
          if !online then
            if Rng.bernoulli rng ~p:config.fail_fraction then Des_sim.Fail node
            else Des_sim.Leave node
          else Des_sim.Join node
        in
        events := { Des_sim.at = !t; action } :: !events;
        online := not !online;
        let mean =
          if !online then config.mean_session else config.mean_downtime
        in
        t := !t +. Rng.exponential rng ~rate:(1.0 /. mean)
      done)
    live;
  List.sort (fun a b -> compare a.Des_sim.at b.Des_sim.at) !events

let summary events =
  List.fold_left
    (fun (j, l, f) e ->
      match e.Des_sim.action with
      | Des_sim.Join _ -> (j + 1, l, f)
      | Des_sim.Leave _ -> (j, l + 1, f)
      | Des_sim.Fail _ -> (j, l, f + 1))
    (0, 0, 0) events
