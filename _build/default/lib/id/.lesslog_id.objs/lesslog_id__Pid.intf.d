lib/id/pid.mli: Format Params
