(** Synthetic membership traces — the paper's stated future work is
    "a real-world scenario where nodes dynamically join and leave"; this
    generates the standard model of that scenario: every node alternates
    exponentially-distributed online sessions and offline periods, and a
    configurable fraction of departures are crashes rather than clean
    leaves. *)

type config = {
  mean_session : float;  (** Mean online time, seconds. *)
  mean_downtime : float;  (** Mean offline time, seconds. *)
  fail_fraction : float;  (** Probability a departure is a crash. *)
  duration : float;  (** Trace horizon, seconds. *)
}

val default : config
(** 120 s sessions, 60 s downtimes, 20% crashes, 300 s horizon. *)

val generate :
  rng:Lesslog_prng.Rng.t ->
  live:Lesslog_id.Pid.t list ->
  config ->
  Des_sim.churn_event list
(** One alternating session/downtime timeline per node (all initially
    online), merged and sorted by time. Deterministic given the RNG. *)

val summary : Des_sim.churn_event list -> int * int * int
(** (joins, leaves, fails) in a trace. *)
