(** Systematic Reed-Solomon erasure coding over {!Gf256}.

    A [(k, r)] code splits a payload into [k] data fragments and
    derives [r] parity fragments; the original payload is recoverable
    byte-identically from {e any} [k] of the [k + r] fragments. The
    encode matrix is the Vandermonde matrix on points [0 .. k+r-1]
    right-multiplied by the inverse of its top [k] rows, which makes
    the code systematic (fragments [0 .. k-1] are plain data stripes)
    while preserving the property that every [k]-row submatrix is
    invertible. Decode inverts the surviving rows with Gauss-Jordan
    elimination in GF(256). *)

type t

val create : k:int -> r:int -> t
(** @raise Invalid_argument unless [k >= 1], [r >= 0] and
    [k + r <= 256] (the field has only 256 distinct evaluation
    points). *)

val k : t -> int
val r : t -> int

val fragment_size : t -> len:int -> int
(** Bytes per fragment for a payload of [len] bytes:
    [ceil (len / k)]. *)

val encode : t -> string -> string array
(** [encode t payload] returns the [k + r] fragments, each
    [fragment_size t ~len:(String.length payload)] bytes. The first
    [k] are the zero-padded data stripes. *)

val decode : t -> len:int -> (int * string) list -> (string, string) result
(** [decode t ~len survivors] rebuilds the [len]-byte payload from any
    [>= k] surviving [(index, fragment)] pairs (duplicates and extras
    beyond [k] are ignored). [Error _] reports too few distinct
    indices, an out-of-range index, or a fragment whose size does not
    match [fragment_size t ~len]. *)

val parity_row : t -> int -> int array
(** [parity_row t j] for [j < r]: the encode-matrix row that produces
    parity fragment [k + j]. Exposed for property tests. *)
