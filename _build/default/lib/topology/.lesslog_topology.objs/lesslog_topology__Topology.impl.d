lib/topology/topology.ml: Lesslog_id Lesslog_membership Lesslog_ptree Lesslog_vtree List Params Pid Vid
