(** Client-side request reliability: per-request IDs, timeouts,
    retransmission with backoff, and an explicit fault on exhaustion.

    The tracker is transport-agnostic: the caller supplies a [transmit]
    callback that puts attempt [n] of request [id] on the wire (for
    LessLog, routing a GETFILE up the target's lookup tree via
    {!Overlay}), and calls {!complete} when the matching response
    arrives. The tracker owns the timers: every attempt is given
    [config.timeout] seconds; an unanswered attempt is retransmitted
    after a {!Retry} backoff until the policy's attempt budget is spent,
    at which point the request is {e reported} as exhausted — a request
    can end served or faulted, never silently lost.

    Each request carries caller metadata (['meta]: the origin node, the
    issue time, the routing key…) which is handed back to [transmit], to
    every event, and by {!complete}.

    Servers keep retransmissions idempotent with {!Dedup}: the first
    delivery of a request ID performs the side effects, duplicates only
    re-send the response. *)

type config = { timeout : float; policy : Retry.policy }
(** [timeout] is per-attempt, seconds. *)

val default_config : config
(** 1 s per attempt, {!Retry.default} backoff. *)

type 'meta event =
  | Timeout of { id : int; attempt : int; meta : 'meta }
      (** Attempt [attempt] (0-based) of request [id] went unanswered. *)
  | Retransmit of { id : int; attempt : int; meta : 'meta }
      (** Attempt [attempt] is being transmitted ([attempt >= 1]). *)
  | Exhausted of { id : int; attempts : int; meta : 'meta }
      (** All [attempts] transmissions timed out; the request is now a
          reported fault. *)

type 'meta t

val create :
  engine:Lesslog_sim.Engine.t ->
  rng:Lesslog_prng.Rng.t ->
  ?config:config ->
  ?on_event:('meta event -> unit) ->
  ?registry:Lesslog_obs.Obs.Registry.t ->
  transmit:(id:int -> attempt:int -> 'meta -> unit) ->
  unit ->
  'meta t
(** [transmit] is called synchronously from {!issue} (attempt 0) and from
    the engine's timer callbacks (retransmissions). With [registry], the
    tracker keeps the [rpc/]* metrics: issued / completed / timeouts /
    retransmissions / exhausted counters and an issue-to-completion
    latency timer ([rpc/request_s], retries included).
    @raise Invalid_argument when [config.timeout <= 0]. *)

val issue : 'meta t -> 'meta -> int
(** Allocate a fresh request ID, transmit attempt 0 and arm its timeout.
    IDs are unique for the lifetime of the tracker. *)

val complete : 'meta t -> id:int -> 'meta option
(** The response for [id] arrived: cancel its timers and return the
    request's metadata. [None] when the request is unknown, already
    completed, already exhausted, or this is a duplicate response —
    callers count a request served only on [Some]. *)

val meta : 'meta t -> id:int -> 'meta option
(** Metadata of a still-pending request. *)

val pending : 'meta t -> id:int -> bool
val in_flight : 'meta t -> int

(** Lifetime counters. [issued t = completed t + exhausted t + in_flight t]. *)

val issued : 'meta t -> int
val completed : 'meta t -> int
val exhausted : 'meta t -> int

val retransmissions : 'meta t -> int
val timeouts : 'meta t -> int

(** Server-side request-ID deduplication table. *)
module Dedup : sig
  type t

  val create : unit -> t

  val first : t -> id:int -> bool
  (** [true] exactly once per ID: perform the request's side effects only
      on [true], but answer on every delivery. *)

  val seen : t -> id:int -> bool

  val duplicates : t -> int
  (** Deliveries for which {!first} returned [false]. *)
end
