lib/prng/rng.mli:
