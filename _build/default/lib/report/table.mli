(** Aligned plain-text tables for terminal output. *)

val render : header:string list -> string list list -> string
(** Columns are padded to the widest cell; rows shorter than the header
    are right-padded with empty cells. *)

val of_series : x_label:string -> Series.t list -> string
(** One row per distinct x (union over the series), one column per
    series. *)
