lib/report/csv.ml: Array Fun List Printf Series String
