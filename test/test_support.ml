(** Shared helpers for the test suites: Alcotest testables for the id
    types, and QCheck generators for parameter spaces, memberships and
    trees. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree

let pid : Pid.t Alcotest.testable = Alcotest.testable Pid.pp Pid.equal

let vid : Vid.t Alcotest.testable = Alcotest.testable Vid.pp_plain Vid.equal

let pids l = List.map Pid.unsafe_of_int l

let ints_of_pids l = List.map Pid.to_int l

(* QCheck generators ------------------------------------------------- *)

let gen_m = QCheck2.Gen.int_range 2 8

let gen_params = QCheck2.Gen.map (fun m -> Params.create ~m ()) gen_m

let gen_params_ft =
  (* Parameter sets with b > 0 for the fault-tolerant model. *)
  QCheck2.Gen.(
    int_range 3 8 >>= fun m ->
    int_range 1 (min 3 (m - 1)) >>= fun b ->
    return (Params.create ~m ~b ()))

let gen_vid params =
  QCheck2.Gen.map
    (fun v -> Vid.unsafe_of_int v)
    (QCheck2.Gen.int_range 0 (Params.mask params))

let gen_pid params =
  QCheck2.Gen.map
    (fun p -> Pid.unsafe_of_int p)
    (QCheck2.Gen.int_range 0 (Params.mask params))

(* A membership with at least one live node. *)
let gen_status params =
  QCheck2.Gen.(
    int_range 0 (Params.mask params) >>= fun guaranteed ->
    list_size (return (Params.space params)) bool >>= fun flags ->
    let status = Status_word.create params ~initially_live:false in
    List.iteri
      (fun i alive -> if alive then Status_word.set_live status (Pid.unsafe_of_int i))
      flags;
    Status_word.set_live status (Pid.unsafe_of_int guaranteed);
    return status)

(* (params, status, tree-root) triple. *)
let gen_tree_setup =
  QCheck2.Gen.(
    gen_params >>= fun params ->
    gen_status params >>= fun status ->
    gen_pid params >>= fun root ->
    return (params, status, Ptree.make params ~root))

let print_tree_setup (params, status, tree) =
  Format.asprintf "m=%d live=%d root=%a live_set=%s" (Params.m params)
    (Status_word.live_count status) Pid.pp (Ptree.root tree)
    (String.concat ","
       (List.map
          (fun p -> string_of_int (Pid.to_int p))
          (Status_word.live_pids status)))

(* Every randomized suite derives its draws from one seed, settable with
   LESSLOG_TEST_SEED; a failure report then reproduces with a single env
   var instead of silently re-drawing. Each test mixes its own name into
   the state so suites stay order-independent: adding or removing a test
   does not shift the draws of the others. *)
let test_seed =
  match Sys.getenv_opt "LESSLOG_TEST_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some seed -> seed
      | None ->
          Printf.eprintf "LESSLOG_TEST_SEED=%S is not an integer\n" s;
          Stdlib.exit 2)
  | None -> 42

let announce_seed =
  lazy
    (Printf.printf "qcheck seed: LESSLOG_TEST_SEED=%d\n%!" test_seed)

let qcheck_rand ~name =
  Lazy.force announce_seed;
  Random.State.make [| test_seed; Hashtbl.hash name |]

let qcheck_case ?(count = 300) ~name gen law =
  QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ~name)
    (QCheck2.Test.make ~count ~name gen law)
