module File_store = Lesslog_storage.File_store
module Access_counter = Lesslog_storage.Access_counter

(* --- Access counter --------------------------------------------------- *)

let test_counter_accumulates () =
  let c = Access_counter.create ~tau:10.0 ~now:0.0 () in
  Access_counter.record c ~now:0.0;
  Access_counter.record c ~now:0.0;
  Alcotest.(check (float 1e-9)) "two accesses" 2.0 (Access_counter.value c ~now:0.0)

let test_counter_decays () =
  let c = Access_counter.create ~tau:10.0 ~now:0.0 () in
  Access_counter.record_many c ~now:0.0 ~count:100;
  let v = Access_counter.value c ~now:10.0 in
  (* One time constant: e^-1 of the mass remains. *)
  Alcotest.(check (float 0.01)) "decayed" (100.0 *. exp (-1.0)) v;
  let v2 = Access_counter.value c ~now:100.0 in
  Alcotest.(check bool) "nearly gone" true (v2 < 0.01)

let test_counter_rate_steady_state () =
  (* Feeding r accesses/s for many tau, rate ~ r. *)
  let c = Access_counter.create ~tau:5.0 ~now:0.0 () in
  let r = 20 in
  for t = 0 to 100 do
    Access_counter.record_many c ~now:(float_of_int t) ~count:r
  done;
  let rate = Access_counter.rate c ~now:100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.2f near %d" rate r)
    true
    (Float.abs (rate -. float_of_int r) < 3.0)

let test_counter_reset () =
  let c = Access_counter.create ~now:0.0 () in
  Access_counter.record c ~now:1.0;
  Access_counter.reset c ~now:2.0;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Access_counter.value c ~now:2.0)

let test_counter_monotone_time () =
  (* Queries never rewind the clock: an earlier [now] after a later one is
     treated as "no time elapsed". *)
  let c = Access_counter.create ~tau:1.0 ~now:0.0 () in
  Access_counter.record c ~now:10.0;
  let v = Access_counter.value c ~now:5.0 in
  Alcotest.(check (float 1e-9)) "no rewind" 1.0 v

(* --- File store ------------------------------------------------------- *)

let test_add_find () =
  let s = File_store.create () in
  File_store.add s ~key:"a" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  Alcotest.(check bool) "holds" true (File_store.holds s ~key:"a");
  Alcotest.(check bool) "not holds" false (File_store.holds s ~key:"b");
  Alcotest.(check (option int)) "version" (Some 0) (File_store.version s ~key:"a")

let test_origin_upgrade () =
  let s = File_store.create () in
  File_store.add s ~key:"a" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  File_store.add s ~key:"a" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  Alcotest.(check bool) "upgraded" true
    (File_store.origin s ~key:"a" = Some File_store.Inserted);
  (* Inserted never silently downgrades by re-adding. *)
  File_store.add s ~key:"a" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  Alcotest.(check bool) "sticky" true
    (File_store.origin s ~key:"a" = Some File_store.Inserted)

let test_version_keeps_max () =
  let s = File_store.create () in
  File_store.add s ~key:"a" ~origin:File_store.Replicated ~version:5 ~now:0.0;
  File_store.add s ~key:"a" ~origin:File_store.Replicated ~version:3 ~now:0.0;
  Alcotest.(check (option int)) "max kept" (Some 5) (File_store.version s ~key:"a")

let test_key_partitions () =
  let s = File_store.create () in
  File_store.add s ~key:"ins" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  File_store.add s ~key:"rep1" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  File_store.add s ~key:"rep2" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  Alcotest.(check (list string)) "inserted" [ "ins" ] (File_store.inserted_keys s);
  Alcotest.(check (list string)) "replicated" [ "rep1"; "rep2" ]
    (File_store.replicated_keys s);
  Alcotest.(check int) "size" 3 (File_store.size s)

let test_drop_replicas () =
  let s = File_store.create () in
  File_store.add s ~key:"ins" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  File_store.add s ~key:"rep" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  let dropped = File_store.drop_replicas s in
  Alcotest.(check (list string)) "dropped" [ "rep" ] dropped;
  Alcotest.(check bool) "inserted kept" true (File_store.holds s ~key:"ins");
  Alcotest.(check bool) "replica gone" false (File_store.holds s ~key:"rep")

let test_demote () =
  let s = File_store.create () in
  File_store.add s ~key:"a" ~origin:File_store.Inserted ~version:2 ~now:0.0;
  File_store.demote_to_replica s ~key:"a";
  Alcotest.(check bool) "demoted" true
    (File_store.origin s ~key:"a" = Some File_store.Replicated);
  Alcotest.(check (option int)) "version kept" (Some 2)
    (File_store.version s ~key:"a");
  (* Demoting a missing key is a no-op. *)
  File_store.demote_to_replica s ~key:"missing"

let test_evict_cold_replicas () =
  let s = File_store.create () in
  File_store.add s ~key:"hot" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  File_store.add s ~key:"cold" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  File_store.add s ~key:"ins" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  (* Heat up "hot" only. *)
  for t = 0 to 200 do
    File_store.record_access s ~key:"hot" ~now:(float_of_int t *. 0.1)
  done;
  let evicted = File_store.evict_cold_replicas s ~now:20.0 ~min_rate:1.0 in
  Alcotest.(check (list string)) "cold evicted" [ "cold" ] evicted;
  Alcotest.(check bool) "hot kept" true (File_store.holds s ~key:"hot");
  Alcotest.(check bool) "inserted immune" true (File_store.holds s ~key:"ins")

let test_tiers () =
  let s = File_store.create () in
  File_store.add s ~key:"whole" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  File_store.add s ~key:"whole#frag0" ~origin:File_store.Inserted
    ~tier:(File_store.Coded { index = 0; k = 4; r = 2 })
    ~version:0 ~now:0.0;
  Alcotest.(check bool) "default tier" true
    (File_store.tier s ~key:"whole" = Some File_store.Replicated_full);
  Alcotest.(check bool) "coded tier" true
    (File_store.tier s ~key:"whole#frag0"
    = Some (File_store.Coded { index = 0; k = 4; r = 2 }));
  Alcotest.(check bool) "missing key" true
    (File_store.tier s ~key:"nope" = None);
  Alcotest.(check (list string)) "coded_keys" [ "whole#frag0" ]
    (File_store.coded_keys s);
  (* Re-adding takes the new call's tier — promotion back to a full
     copy clears the fragment marker. *)
  File_store.add s ~key:"whole#frag0" ~origin:File_store.Inserted ~version:1
    ~now:1.0;
  Alcotest.(check (list string)) "promoted" [] (File_store.coded_keys s)

let test_evict_min_survivors () =
  (* Regression: a cold replica that is the last live copy
     cluster-wide must survive eviction when a [min_survivors] floor
     is given, and the [survivors] count is re-read before each
     removal so earlier evictions in the same sweep are seen. *)
  let s = File_store.create () in
  File_store.add s ~key:"lonely" ~origin:File_store.Replicated ~version:0
    ~now:0.0;
  File_store.add s ~key:"backed" ~origin:File_store.Replicated ~version:0
    ~now:0.0;
  let copies = Hashtbl.create 4 in
  Hashtbl.replace copies "lonely" 1;
  Hashtbl.replace copies "backed" 3;
  let survivors key = Option.value (Hashtbl.find_opt copies key) ~default:0 in
  let evicted =
    File_store.evict_cold_replicas ~survivors ~min_survivors:1 s ~now:20.0
      ~min_rate:1.0
  in
  Alcotest.(check (list string)) "only the backed copy goes" [ "backed" ]
    evicted;
  Alcotest.(check bool) "last copy kept" true (File_store.holds s ~key:"lonely");
  (* The count is re-read before each removal: a survivors function
     that ticks down as the observer index reflects evictions
     elsewhere stops the sweep at the floor. *)
  let live = ref 2 in
  let s2 = File_store.create () in
  File_store.add s2 ~key:"x1" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  File_store.add s2 ~key:"x2" ~origin:File_store.Replicated ~version:0 ~now:0.0;
  let evicted2 =
    File_store.evict_cold_replicas
      ~survivors:(fun _ ->
        let v = !live in
        decr live;
        v)
      ~min_survivors:1 s2 ~now:20.0 ~min_rate:1.0
  in
  Alcotest.(check int) "sweep stops at the floor" 1 (List.length evicted2);
  (* The historical default (no floor) still drops a last copy. *)
  let s3 = File_store.create () in
  File_store.add s3 ~key:"lonely" ~origin:File_store.Replicated ~version:0
    ~now:0.0;
  Alcotest.(check (list string)) "defaults unchanged" [ "lonely" ]
    (File_store.evict_cold_replicas s3 ~now:20.0 ~min_rate:1.0)

let test_set_version () =
  let s = File_store.create () in
  File_store.add s ~key:"a" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  File_store.set_version s ~key:"a" ~version:7;
  Alcotest.(check (option int)) "set" (Some 7) (File_store.version s ~key:"a");
  File_store.set_version s ~key:"nope" ~version:9

let test_remove () =
  let s = File_store.create () in
  File_store.add s ~key:"a" ~origin:File_store.Inserted ~version:0 ~now:0.0;
  File_store.remove s ~key:"a";
  Alcotest.(check bool) "removed" false (File_store.holds s ~key:"a");
  Alcotest.(check int) "empty" 0 (File_store.size s)

let prop_keys_sorted =
  Test_support.qcheck_case ~name:"keys sorted and unique"
    QCheck2.Gen.(list_size (int_range 0 30) (string_size (int_range 1 6)))
    (fun keys ->
      let s = File_store.create () in
      List.iter
        (fun key ->
          File_store.add s ~key ~origin:File_store.Replicated ~version:0 ~now:0.0)
        keys;
      let ks = File_store.keys s in
      ks = List.sort_uniq compare keys)

let prop_partition_exhaustive =
  Test_support.qcheck_case ~name:"inserted + replicated = keys"
    QCheck2.Gen.(
      list_size (int_range 0 30)
        (pair (string_size (int_range 1 6)) bool))
    (fun entries ->
      let s = File_store.create () in
      List.iter
        (fun (key, ins) ->
          let origin =
            if ins then File_store.Inserted else File_store.Replicated
          in
          File_store.add s ~key ~origin ~version:0 ~now:0.0)
        entries;
      List.sort compare (File_store.inserted_keys s @ File_store.replicated_keys s)
      = File_store.keys s)

let () =
  Alcotest.run "storage"
    [
      ( "access_counter",
        [
          Alcotest.test_case "accumulates" `Quick test_counter_accumulates;
          Alcotest.test_case "decays" `Quick test_counter_decays;
          Alcotest.test_case "steady-state rate" `Quick
            test_counter_rate_steady_state;
          Alcotest.test_case "reset" `Quick test_counter_reset;
          Alcotest.test_case "monotone time" `Quick test_counter_monotone_time;
        ] );
      ( "file_store",
        [
          Alcotest.test_case "add/find" `Quick test_add_find;
          Alcotest.test_case "origin upgrade" `Quick test_origin_upgrade;
          Alcotest.test_case "version max" `Quick test_version_keeps_max;
          Alcotest.test_case "key partitions" `Quick test_key_partitions;
          Alcotest.test_case "drop replicas" `Quick test_drop_replicas;
          Alcotest.test_case "demote" `Quick test_demote;
          Alcotest.test_case "counter-based eviction" `Quick
            test_evict_cold_replicas;
          Alcotest.test_case "tiers" `Quick test_tiers;
          Alcotest.test_case "eviction survivor floor" `Quick
            test_evict_min_survivors;
          Alcotest.test_case "set version" `Quick test_set_version;
          Alcotest.test_case "remove" `Quick test_remove;
        ] );
      ("properties", [ prop_keys_sorted; prop_partition_exhaustive ]);
    ]
