open Lesslog_id
module Bitops = Lesslog_bits.Bitops

let width = Params.m

let is_root params v = Vid.to_int v = Params.mask params

let child_count params v =
  Bitops.leading_ones ~width:(width params) (Vid.to_int v)

let nth_child params v i =
  let n = child_count params v in
  if i < 0 || i >= n then invalid_arg "Vtree.nth_child";
  (* Leading ones occupy bits m-1 .. m-n. Clearing a lower bit keeps more
     leading ones, hence more offspring: the i-th most offspring child
     clears bit (m - n + i). *)
  Vid.unsafe_of_int (Bitops.clear_bit (Vid.to_int v) (width params - n + i))

let children params v =
  let n = child_count params v in
  List.init n (fun i -> nth_child params v i)

let parent params v =
  match Bitops.highest_zero_bit ~width:(width params) (Vid.to_int v) with
  | None -> None
  | Some h -> Some (Vid.unsafe_of_int (Bitops.set_bit (Vid.to_int v) h))

let parent_exn params v =
  match parent params v with
  | Some p -> p
  | None -> invalid_arg "Vtree.parent_exn: root has no parent"

let offspring_count params v = (1 lsl child_count params v) - 1

let subtree_size params v = 1 lsl child_count params v

let depth params v = width params - Bitops.popcount (Vid.to_int v)

let is_ancestor params ~ancestor v =
  (* Walk v's parents; VIDs strictly increase along the path. *)
  let a = Vid.to_int ancestor in
  let rec climb v =
    if Vid.to_int v >= a then Vid.equal v ancestor
    else
      match parent params v with
      | None -> false
      | Some p -> climb p
  in
  climb v

let path_to_root params v =
  let rec climb acc v =
    match parent params v with
    | None -> List.rev (v :: acc)
    | Some p -> climb (v :: acc) p
  in
  climb [] v

let rec iter_subtree params v f =
  f v;
  List.iter (fun c -> iter_subtree params c f) (children params v)

let fold_subtree params v ~init ~f =
  let acc = ref init in
  iter_subtree params v (fun u -> acc := f !acc u);
  !acc
