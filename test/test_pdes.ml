(* The domain-parallel simulation stack: the sharded engine against the
   plain packed core, the no-same-epoch-delivery mailbox property, and
   the headline determinism claim — Pdes_sim runs bit-identically at any
   domain count. *)

open Lesslog_id
module Engine = Lesslog_sim.Engine
module Sharded = Lesslog_sim.Sharded_engine
module Pdes = Lesslog_des.Pdes_sim
module Demand = Lesslog_workload.Demand
module Status_word = Lesslog_membership.Status_word
module Latency = Lesslog_net.Latency
module Histogram = Lesslog_metrics.Histogram

(* --- Sharded engine ---------------------------------------------------- *)

(* A reproducible synthetic workload: event [b] at a node re-posts
   locally while [b > 0], and every third value also crosses to the next
   shard. Pure function of the payload, so the same schedule can be
   replayed on any engine and any domain count. *)
let synthetic_schedule ~shards ~seeds =
  List.concat_map
    (fun seed ->
      List.init 12 (fun i ->
          let t = float_of_int (((seed * 37) + (i * 13)) mod 50) /. 7.0 in
          (i mod shards, t, (seed + i) mod 7, (seed * i) mod 5)))
    seeds

let run_sharded ?fuse ~shards ~domains sched =
  let lookahead = 0.5 in
  let se = Sharded.create ~shards ~lookahead () in
  let log = Array.make shards [] in
  let handlers = Array.make shards (-1) in
  for s = 0 to shards - 1 do
    let eng = Sharded.engine se s in
    let h = ref (-1) in
    let handler a b x =
      log.(s) <- (Engine.now eng, a, b, x) :: log.(s);
      if b > 0 then Engine.post eng ~delay:0.1 ~h:!h ~a ~b:(b - 1) ~x;
      if b > 0 && b mod 3 = 0 && shards > 1 then
        Sharded.send se ~src:s ~dst:((s + 1) mod shards)
          ~delay:(lookahead +. 0.01) ~h:handlers.((s + 1) mod shards) ~a
          ~b:(max 0 (b - 1))
          ~x:(x +. 1.0)
    in
    h := Engine.register_handler eng handler;
    handlers.(s) <- !h
  done;
  List.iter
    (fun (s, t, a, b) ->
      Engine.post_at (Sharded.engine se s) ~time:t ~h:handlers.(s) ~a ~b
        ~x:0.0)
    sched;
  Sharded.run ?fuse ~domains se;
  let phases = Sharded.phases se and epochs = Sharded.epoch se in
  (Array.map List.rev log, epochs, phases)

let test_one_shard_matches_engine () =
  let sched = synthetic_schedule ~shards:1 ~seeds:[ 3; 11; 29 ] in
  let logs, _, _ = run_sharded ~shards:1 ~domains:1 sched in
  let sharded = logs.(0) in
  (* The same schedule on a bare packed engine. *)
  let eng = Engine.create () in
  let log = ref [] in
  let h = ref (-1) in
  let handler a b x =
    log := (Engine.now eng, a, b, x) :: !log;
    if b > 0 then Engine.post eng ~delay:0.1 ~h:!h ~a ~b:(b - 1) ~x
  in
  h := Engine.register_handler eng handler;
  List.iter
    (fun (_, t, a, b) -> Engine.post_at eng ~time:t ~h:!h ~a ~b ~x:0.0)
    sched;
  Engine.run eng;
  Alcotest.(check int) "events" (List.length !log) (List.length sharded);
  Alcotest.(check bool) "sequence identical" true (List.rev !log = sharded)

let test_sharded_domain_invariance () =
  let sched = synthetic_schedule ~shards:4 ~seeds:[ 1; 5; 9; 17; 23 ] in
  let base, _, _ = run_sharded ~shards:4 ~domains:1 sched in
  List.iter
    (fun domains ->
      let other, _, _ = run_sharded ~shards:4 ~domains sched in
      for s = 0 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "shard %d @ %d domains" s domains)
          true
          (base.(s) = other.(s))
      done)
    [ 2; 3; 4; 8 ]

(* Epoch fusion is a pure dispatch optimisation: on any random schedule
   the fused and unfused runs must produce identical event sequences —
   at 1 domain and at several. The generator draws a shard count and a
   handful of schedule seeds, the same recipe as the fixed tests. *)
let qcheck_fused_equals_unfused =
  Test_support.qcheck_case ~count:40 ~name:"fused = unfused on random schedules"
    QCheck2.Gen.(
      pair (int_range 1 4) (list_size (int_range 1 6) (int_range 0 1000)))
    (fun (shards, seeds) ->
      let sched = synthetic_schedule ~shards ~seeds in
      let fused, ep_f, ph_f = run_sharded ~fuse:true ~shards ~domains:1 sched in
      let unfused, ep_u, ph_u =
        run_sharded ~fuse:false ~shards ~domains:1 sched
      in
      let fused3, _, _ = run_sharded ~fuse:true ~shards ~domains:3 sched in
      fused = unfused && fused = fused3 && ep_f = ep_u && ph_u = ep_u
      && ph_f <= ep_f)

let test_fusion_collapses_quiet_epochs () =
  (* A purely local workload (no cross-shard sends, no globals) spans
     many epoch windows but needs only one pool dispatch. *)
  let sched =
    List.init 8 (fun i -> (i mod 2, float_of_int i, 1, 0))
  in
  let _, epochs, phases = run_sharded ~shards:2 ~domains:2 sched in
  Alcotest.(check bool) "many epochs" true (epochs > 1);
  Alcotest.(check int) "one phase" 1 phases

let test_send_below_lookahead_rejected () =
  let se = Sharded.create ~shards:2 ~lookahead:0.5 () in
  let h = Engine.register_handler (Sharded.engine se 1) (fun _ _ _ -> ()) in
  Alcotest.check_raises "below lookahead"
    (Invalid_argument "Sharded_engine.send: cross-shard delay below lookahead")
    (fun () -> Sharded.send se ~src:0 ~dst:1 ~delay:0.25 ~h ~a:0 ~b:0 ~x:0.0)

(* No event is delivered in the epoch that issued it: stamp every
   cross-shard payload with the issuing epoch and check it on arrival. *)
let test_no_same_epoch_delivery () =
  let shards = 3 and lookahead = 0.125 in
  let se = Sharded.create ~shards ~lookahead () in
  let handlers = Array.make shards (-1) in
  let violations = ref 0 and delivered = ref 0 in
  for s = 0 to shards - 1 do
    let eng = Sharded.engine se s in
    let handler a b _x =
      if a >= 0 then begin
        (* Cross-shard delivery: [a] is the issuing epoch. *)
        incr delivered;
        if Sharded.epoch se <= a then incr violations
      end;
      if b > 0 then begin
        let dst = (s + 1) mod shards in
        Sharded.send se ~src:s ~dst ~delay:(lookahead +. 0.001)
          ~h:handlers.(dst) ~a:(Sharded.epoch se) ~b:(b - 1) ~x:0.0;
        Engine.post eng ~delay:0.05 ~h:handlers.(s) ~a:(-1) ~b:(b - 1) ~x:0.0
      end
    in
    handlers.(s) <- Engine.register_handler eng handler
  done;
  for s = 0 to shards - 1 do
    Engine.post_at (Sharded.engine se s) ~time:(0.1 *. float_of_int (s + 1))
      ~h:handlers.(s) ~a:(-1) ~b:6 ~x:0.0
  done;
  Sharded.run ~domains:1 se;
  Alcotest.(check bool) "cross deliveries happened" true (!delivered > 0);
  Alcotest.(check int) "same-epoch deliveries" 0 !violations

let test_globals_fire_in_order () =
  let se = Sharded.create ~shards:2 ~lookahead:1.0 () in
  let fired = ref [] in
  let h =
    Engine.register_handler (Sharded.engine se 0) (fun a _ _ ->
        fired := `Event a :: !fired)
  in
  ignore (Engine.register_handler (Sharded.engine se 1) (fun _ _ _ -> ()));
  List.iter
    (fun t -> Engine.post_at (Sharded.engine se 0) ~time:t ~h ~a:(int_of_float t) ~b:0 ~x:0.0)
    [ 1.0; 3.0; 5.0 ];
  Sharded.run
    ~globals:
      [ (2.0, fun () -> fired := `Global 2 :: !fired);
        (4.0, fun () -> fired := `Global 4 :: !fired) ]
    ~domains:1 se;
  Alcotest.(check bool)
    "interleaved in time order" true
    (List.rev !fired
    = [ `Event 1; `Global 2; `Event 3; `Global 4; `Event 5 ])

(* --- Pdes_sim ----------------------------------------------------------- *)

let pdes_churn params =
  let pid i = Pid.unsafe_of_int (i mod Params.space params) in
  [
    { Pdes.at = 0.6; action = Pdes.Fail (pid 11) };
    { Pdes.at = 0.9; action = Pdes.Leave (pid 42) };
    { Pdes.at = 1.2; action = Pdes.Fail (pid 7) };
    { Pdes.at = 1.7; action = Pdes.Join (pid 11) };
  ]

let run_pdes ?(m = 8) ?(b = 2) ?(loss = 0.02) ~domains () =
  let params = Params.create ~m ~b () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:900.0 in
  Pdes.run
    ~config:{ Pdes.default_config with loss }
    ~churn:(pdes_churn params) ~domains ~seed:4242 ~params ~key:"pdes/object"
    ~demand ~duration:2.5 ()

let check_same_result msg (a : Pdes.result) (b : Pdes.result) =
  Alcotest.(check int) (msg ^ ": digest") a.Pdes.digest b.Pdes.digest;
  Alcotest.(check int) (msg ^ ": served") a.Pdes.served b.Pdes.served;
  Alcotest.(check int) (msg ^ ": faults") a.Pdes.faults b.Pdes.faults;
  Alcotest.(check int) (msg ^ ": requests") a.Pdes.requests b.Pdes.requests;
  Alcotest.(check int)
    (msg ^ ": migrations") a.Pdes.migrations b.Pdes.migrations;
  Alcotest.(check int)
    (msg ^ ": replicas") a.Pdes.replicas_created b.Pdes.replicas_created;
  Alcotest.(check int)
    (msg ^ ": replicas_end") a.Pdes.replicas_end b.Pdes.replicas_end;
  Alcotest.(check int) (msg ^ ": messages") a.Pdes.messages b.Pdes.messages;
  Alcotest.(check int)
    (msg ^ ": latency count")
    (Histogram.count a.Pdes.latencies)
    (Histogram.count b.Pdes.latencies);
  Alcotest.(check (float 1e-9))
    (msg ^ ": latency mean")
    (Histogram.mean a.Pdes.latencies)
    (Histogram.mean b.Pdes.latencies)

let test_pdes_domain_invariance () =
  let base = run_pdes ~domains:1 () in
  Alcotest.(check bool) "run does something" true (base.Pdes.served > 0);
  Alcotest.(check bool) "epochs advanced" true (base.Pdes.epochs > 0);
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "%d domains" domains)
        base
        (run_pdes ~domains ()))
    [ 2; 4; 8 ]

let test_pdes_eight_shards () =
  (* 2^3 subtrees: every domain count up to 8 maps onto real shards. *)
  let base = run_pdes ~m:9 ~b:3 ~domains:1 () in
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "b=3, %d domains" domains)
        base
        (run_pdes ~m:9 ~b:3 ~domains ()))
    [ 2; 4; 8 ]

let test_pdes_oversized_pool () =
  (* The shared pool only grows: after an 8-domain run the pool keeps 8
     workers, and a later 2-domain run hands its epoch job to all of
     them. The engine must ignore workers beyond its own count or two
     of them race on one shard (regression: duplicate-drain race). *)
  ignore (Sys.opaque_identity (Lesslog_parallel.Par.ensure_pool 8));
  let base = run_pdes ~m:9 ~b:3 ~domains:1 () in
  for i = 1 to 5 do
    check_same_result
      (Printf.sprintf "oversized pool, try %d" i)
      base
      (run_pdes ~m:9 ~b:3 ~domains:2 ())
  done

(* The dynamic-RF policy runs in sequential barrier globals and draws no
   randomness, so the headline determinism claim must survive it: the
   same policy-driven run is bit-identical at any domain count. Each run
   needs a fresh policy instance — the policy itself is mutable state. *)
let run_pdes_policy ~domains () =
  let params = Params.create ~m:8 ~b:2 () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:900.0 in
  let policy =
    Lesslog_policy.Rf_policy.create
      ~config:
        {
          Lesslog_policy.Rf_policy.default_config with
          Lesslog_policy.Rf_policy.interval = 0.25;
          rf_max = Params.space params;
          capacity = Some 100.0;
        }
      ~rf0:(Params.subtree_count params)
      ~nodes:(Params.space params) ~files:1 ()
  in
  Pdes.run ~churn:(pdes_churn params) ~policy ~domains ~seed:4242 ~params
    ~key:"pdes/object" ~demand ~duration:2.5 ()

let test_pdes_policy_domain_invariance () =
  let base = run_pdes_policy ~domains:1 () in
  Alcotest.(check bool) "policy replicated" true
    (base.Pdes.replicas_created > 0);
  (* The policy path is load-bearing: it must not reproduce the
     native-trigger run. *)
  Alcotest.(check bool) "differs from native" true
    (base.Pdes.digest <> (run_pdes ~loss:0.0 ~domains:1 ()).Pdes.digest);
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "policy, %d domains" domains)
        base
        (run_pdes_policy ~domains ()))
    [ 2; 4; 8 ]

let test_pdes_cold_tier_domain_invariance () =
  (* The erasure-coded cold tier mutates only in the sequential barrier
     globals, so the digest and the whole cold ledger must survive the
     domain count. The workload's trickle alternates idle and busy
     policy intervals, driving real demote/promote cycles. *)
  let point domains =
    Lesslog_harness.Experiments.coldtier_pdes ~m:7 ~domains ~duration:4.0 ()
  in
  let base = point 1 in
  let bc =
    match base.Pdes.cold with
    | Some c -> c
    | None -> Alcotest.fail "expected a cold ledger"
  in
  Alcotest.(check bool) "tier exercised" true
    (bc.Lesslog_des.Des_sim.demotions >= 1
    && bc.Lesslog_des.Des_sim.coded_serves >= 1);
  Alcotest.(check bool) "payload intact" false
    bc.Lesslog_des.Des_sim.lost_cold;
  List.iter
    (fun domains ->
      let p = point domains in
      check_same_result
        (Printf.sprintf "cold tier, %d domains" domains)
        base p;
      Alcotest.(check bool)
        (Printf.sprintf "cold ledger identical at %d domains" domains)
        true
        (p.Pdes.cold = base.Pdes.cold))
    [ 2; 4; 8 ]

let test_pdes_quiet_run_has_no_faults () =
  (* All nodes live, no loss: every subtree keeps its insertion copy, so
     routing always terminates at a holder. *)
  let params = Params.create ~m:7 ~b:2 () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:400.0 in
  let r =
    Pdes.run ~domains:2 ~seed:7 ~params ~key:"quiet" ~demand ~duration:1.5 ()
  in
  Alcotest.(check int) "no faults" 0 r.Pdes.faults;
  Alcotest.(check int) "no migrations" 0 r.Pdes.migrations;
  Alcotest.(check bool) "requests flowed" true (r.Pdes.requests > 100);
  Alcotest.(check bool) "served <= requests" true
    (r.Pdes.served <= r.Pdes.requests);
  Alcotest.(check bool)
    "insertion copies survive" true
    (r.Pdes.replicas_end >= Params.subtree_count params)

let test_pdes_replication_under_load () =
  (* Hotspot demand far above one node's capacity must create replicas. *)
  let params = Params.create ~m:6 ~b:1 () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:2000.0 in
  let r =
    Pdes.run
      ~config:{ Pdes.default_config with capacity = 50.0 }
      ~domains:2 ~seed:13 ~params ~key:"hot" ~demand ~duration:2.0 ()
  in
  Alcotest.(check bool) "replicated" true (r.Pdes.replicas_created > 0);
  Alcotest.(check bool) "copies at end" true
    (r.Pdes.replicas_end > Params.subtree_count params)

let test_pdes_churn_moves_copies () =
  let params = Params.create ~m:8 ~b:2 () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:600.0 in
  (* Fail every member of subtree 0's insertion chain head-on: the copy
     must be recovered from a sibling subtree, not lost. *)
  let tree_key = "churny" in
  let r =
    Pdes.run ~churn:(pdes_churn params) ~domains:4 ~seed:99 ~params
      ~key:tree_key ~demand ~duration:2.5 ()
  in
  Alcotest.(check bool) "control traffic accounted" true
    (r.Pdes.control_messages > 0);
  Alcotest.(check bool) "copies survive churn" true (r.Pdes.replicas_end > 0)

(* --- Fault plans on Pdes_sim -------------------------------------------- *)

module Faults = Lesslog_workload.Faults
module Rng = Lesslog_prng.Rng

let fault_plan ~seed ~params ~duration =
  let status = Status_word.create params ~initially_live:true in
  Faults.generate ~rng:(Rng.create ~seed)
    ~live:(Status_word.live_pids status)
    ~duration ~crash_fraction:0.1 ~restart_fraction:0.5 ~bursts:2
    ~burst_loss:0.4 ~partitions:0 ()

let run_faulted ?fuse ~domains () =
  let params = Params.create ~m:9 ~b:3 () in
  let duration = 2.5 in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:900.0 in
  Pdes.run
    ~faults:(fault_plan ~seed:77 ~params ~duration)
    ?fuse ~domains ~seed:4242 ~params ~key:"pdes/faulted" ~demand ~duration ()

let test_pdes_faulted_domain_invariance () =
  (* The churn-heavy workload: crashes, restarts and loss bursts as
     barrier globals must not disturb domain-count invariance — and
     fusion must stay a no-op on results. *)
  let base = run_faulted ~domains:1 () in
  Alcotest.(check bool) "run does something" true (base.Pdes.served > 0);
  List.iter
    (fun domains ->
      check_same_result
        (Printf.sprintf "faulted, %d domains" domains)
        base
        (run_faulted ~domains ()))
    [ 2; 8 ];
  let unfused = run_faulted ~fuse:false ~domains:2 () in
  check_same_result "faulted, unfused" base unfused;
  Alcotest.(check int) "unfused: one dispatch per epoch" unfused.Pdes.epochs
    unfused.Pdes.phases;
  Alcotest.(check bool) "fused: fewer dispatches than epochs" true
    (base.Pdes.phases < base.Pdes.epochs)

let test_pdes_loss_burst_drops_messages () =
  (* A wall-to-wall loss burst at p = 1 suppresses every overlay message
     for its span, so far fewer requests resolve than in the quiet run. *)
  let params = Params.create ~m:8 ~b:2 () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:900.0 in
  let go faults =
    Pdes.run ?faults ~domains:2 ~seed:4242 ~params ~key:"bursty" ~demand
      ~duration:2.0 ()
  in
  let quiet = go None in
  let bursty =
    go
      (Some
         {
           Faults.empty with
           Faults.bursts =
             [ { Faults.from_ = 0.1; until = 1.9; loss = 1.0 } ];
         })
  in
  Alcotest.(check bool) "burst suppresses resolutions" true
    (bursty.Pdes.served * 2 < quiet.Pdes.served);
  Alcotest.(check bool) "demand kept flowing" true
    (bursty.Pdes.requests > 100)

let test_pdes_partitions_rejected () =
  let params = Params.create ~m:6 ~b:1 () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:100.0 in
  let faults =
    {
      Faults.empty with
      Faults.partitions =
        [
          {
            Faults.from_ = 0.1;
            until = 0.5;
            group = [ Pid.unsafe_of_int 3 ];
            direction = Faults.Both;
          };
        ];
    }
  in
  Alcotest.check_raises "partitions unsupported"
    (Invalid_argument "Pdes_sim.run: partitions are not supported")
    (fun () ->
      ignore
        (Pdes.run ~faults ~seed:1 ~params ~key:"cut" ~demand ~duration:0.5 ()))

let () =
  Alcotest.run "pdes"
    [
      ( "sharded-engine",
        [
          Alcotest.test_case "one shard = packed engine" `Quick
            test_one_shard_matches_engine;
          Alcotest.test_case "domain invariance" `Quick
            test_sharded_domain_invariance;
          Alcotest.test_case "lookahead enforced" `Quick
            test_send_below_lookahead_rejected;
          Alcotest.test_case "no same-epoch delivery" `Quick
            test_no_same_epoch_delivery;
          Alcotest.test_case "globals in time order" `Quick
            test_globals_fire_in_order;
          qcheck_fused_equals_unfused;
          Alcotest.test_case "fusion collapses quiet epochs" `Quick
            test_fusion_collapses_quiet_epochs;
        ] );
      ( "pdes-sim",
        [
          Alcotest.test_case "bit-identical at 1/2/4/8 domains" `Quick
            test_pdes_domain_invariance;
          Alcotest.test_case "eight shards, 1/2/4/8 domains" `Quick
            test_pdes_eight_shards;
          Alcotest.test_case "oversized pool: workers beyond domains idle"
            `Quick test_pdes_oversized_pool;
          Alcotest.test_case "dynamic-RF policy bit-identical at 1/2/4/8"
            `Quick test_pdes_policy_domain_invariance;
          Alcotest.test_case "cold tier bit-identical at 1/2/4/8" `Quick
            test_pdes_cold_tier_domain_invariance;
          Alcotest.test_case "quiet run: no faults" `Quick
            test_pdes_quiet_run_has_no_faults;
          Alcotest.test_case "replication under load" `Quick
            test_pdes_replication_under_load;
          Alcotest.test_case "churn recovers copies" `Quick
            test_pdes_churn_moves_copies;
        ] );
      ( "pdes-faults",
        [
          Alcotest.test_case "faulted run bit-identical at 1/2/8 domains"
            `Quick test_pdes_faulted_domain_invariance;
          Alcotest.test_case "loss burst drops messages" `Quick
            test_pdes_loss_burst_drops_messages;
          Alcotest.test_case "partitions rejected" `Quick
            test_pdes_partitions_rejected;
        ] );
    ]
