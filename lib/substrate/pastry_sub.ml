module Status_word = Lesslog_membership.Status_word
module Psi = Lesslog_hash.Psi
module Pastry = Lesslog_pastry.Pastry
open Lesslog_id

let make ?digit_bits params status psi =
  let digit_bits =
    match digit_bits with
    | Some b -> b
    | None -> if Params.m params mod 2 = 0 then 2 else 1
  in
  let mesh =
    Substrate.epoch_cached status ~build:(fun () ->
        match Status_word.live_pids status with
        | [] -> None
        | live -> Some (Pastry.create ~digit_bits params ~live))
  in
  let next_hop ~key p =
    match mesh () with
    | None -> None
    | Some t -> Pastry.next_hop t ~from:p ~target:(Psi.target psi key)
  in
  let owner ~key =
    Option.map (fun t -> Pastry.owner_of t (Psi.target psi key)) (mesh ())
  in
  let neighbors ~key:_ p =
    match mesh () with
    | None -> []
    | Some t -> ( try Pastry.leaf_set_of t p with Not_found -> [])
  in
  {
    Substrate.name = "pastry";
    next_hop;
    owner;
    neighbors;
    symmetric_neighbors = false;
    guaranteed_delivery = true;
    membership = Substrate.Generic;
    notify = (fun () -> ());
    replica_target = Substrate.neighbor_replica_target ~neighbors;
  }
