lib/metrics/stats.ml: Float Format
