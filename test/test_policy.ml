(* The weighted dynamic replica-factor policy: PD arithmetic, dynamic
   thresholds, both classification modes, RF clamping and carry-over,
   and the shard-merge entry point. The policy must also be free of
   randomness — Pdes_sim runs it inside sequential barrier globals. *)

module Rf_policy = Lesslog_policy.Rf_policy

let cls =
  Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Rf_policy.class_name c))
    ( = )

(* A pure-mode config with no history so thresholds come from the
   current interval alone — the arithmetic is then exact. *)
let pure =
  {
    Rf_policy.interval = 1.0;
    rf_min = 1;
    rf_max = 8;
    hot_factor = 1.5;
    cold_factor = 0.5;
    history = 0.0;
    capacity = None;
  }

(* --- Validation --------------------------------------------------------- *)

let test_create_rejects_bad_config () =
  let check name msg f =
    Alcotest.check_raises name (Invalid_argument msg) (fun () -> ignore (f ()))
  in
  check "nodes" "Rf_policy.create: nodes" (fun () ->
      Rf_policy.create ~nodes:0 ~files:1 ());
  check "files" "Rf_policy.create: files" (fun () ->
      Rf_policy.create ~nodes:4 ~files:0 ());
  check "interval" "Rf_policy.create: interval" (fun () ->
      Rf_policy.create
        ~config:{ pure with Rf_policy.interval = 0.0 }
        ~nodes:4 ~files:1 ());
  check "rf_min" "Rf_policy.create: rf_min" (fun () ->
      Rf_policy.create
        ~config:{ pure with Rf_policy.rf_min = 0 }
        ~nodes:4 ~files:1 ());
  check "rf_max" "Rf_policy.create: rf_max" (fun () ->
      Rf_policy.create
        ~config:{ pure with Rf_policy.rf_max = 0 }
        ~nodes:4 ~files:1 ());
  check "factors" "Rf_policy.create: cold_factor > hot_factor" (fun () ->
      Rf_policy.create
        ~config:{ pure with Rf_policy.cold_factor = 2.0 }
        ~nodes:4 ~files:1 ());
  check "history" "Rf_policy.create: history" (fun () ->
      Rf_policy.create
        ~config:{ pure with Rf_policy.history = 1.0 }
        ~nodes:4 ~files:1 ());
  check "capacity" "Rf_policy.create: capacity" (fun () ->
      Rf_policy.create
        ~config:{ pure with Rf_policy.capacity = Some 0.0 }
        ~nodes:4 ~files:1 ());
  check "rf0" "Rf_policy.create: rf0" (fun () ->
      Rf_policy.create ~config:pure ~rf0:9 ~nodes:4 ~files:1 ())

let test_record_bounds () =
  let p = Rf_policy.create ~config:pure ~nodes:4 ~files:2 () in
  Alcotest.check_raises "file" (Invalid_argument "Rf_policy.record: file")
    (fun () -> Rf_policy.record p ~file:2 ~node:0);
  Alcotest.check_raises "node" (Invalid_argument "Rf_policy.record: node")
    (fun () -> Rf_policy.record p ~file:0 ~node:4)

(* --- Pure mode: PD arithmetic and dynamic thresholds -------------------- *)

(* Two files over 10 nodes: file 0 accessed 30 times by 6 nodes
   (PD = 0.6 * 30 = 18), file 1 accessed 4 times by 2 nodes
   (PD = 0.2 * 4 = 0.8). Reference = mean PD over accessed files = 9.4;
   hot above 14.1, cold below 4.7 — file 0 is Hot, file 1 Cold. *)
let test_pure_classification () =
  let p = Rf_policy.create ~config:pure ~rf0:2 ~nodes:10 ~files:2 () in
  for i = 0 to 29 do
    Rf_policy.record p ~file:0 ~node:(i mod 6)
  done;
  for i = 0 to 3 do
    Rf_policy.record p ~file:1 ~node:(i mod 2)
  done;
  let d = Rf_policy.end_interval p in
  Alcotest.(check int) "decisions" 2 (Array.length d);
  Alcotest.(check (float 1e-9)) "pd0" 18.0 d.(0).Rf_policy.pd;
  Alcotest.(check (float 1e-9)) "pd1" 0.8 d.(1).Rf_policy.pd;
  Alcotest.(check (float 1e-9)) "reference" 9.4 (Rf_policy.reference_pd p);
  Alcotest.check cls "file 0 hot" Rf_policy.Hot d.(0).Rf_policy.cls;
  Alcotest.check cls "file 1 cold" Rf_policy.Cold d.(1).Rf_policy.cls;
  Alcotest.(check int) "hot stepped up" 3 (Rf_policy.rf p ~file:0);
  Alcotest.(check int) "cold stepped down" 1 (Rf_policy.rf p ~file:1)

let test_unaccessed_file_is_cold () =
  let p = Rf_policy.create ~config:pure ~rf0:3 ~nodes:4 ~files:2 () in
  Rf_policy.record p ~file:0 ~node:1;
  ignore (Rf_policy.end_interval p);
  Alcotest.check cls "no accesses" Rf_policy.Cold
    (Rf_policy.classification p ~file:1);
  Alcotest.(check int) "stepped toward the floor" 2 (Rf_policy.rf p ~file:1)

let test_rf_clamped_and_carried () =
  let p = Rf_policy.create ~config:pure ~rf0:8 ~nodes:4 ~files:2 () in
  (* File 0 stays hot for many intervals: RF pinned at rf_max. File 1
     never accessed: RF walks down one step per interval to rf_min. *)
  for _ = 1 to 12 do
    for i = 0 to 19 do
      Rf_policy.record p ~file:0 ~node:(i mod 4)
    done;
    ignore (Rf_policy.end_interval p)
  done;
  Alcotest.(check int) "capped at rf_max" 8 (Rf_policy.rf p ~file:0);
  Alcotest.(check int) "floored at rf_min" 1 (Rf_policy.rf p ~file:1)

let test_reference_ema () =
  let config = { pure with Rf_policy.history = 0.5 } in
  let p = Rf_policy.create ~config ~nodes:4 ~files:1 () in
  (* Interval 1: one file, 8 accesses from all 4 nodes -> PD 8; the
     first interval seeds the EMA directly. *)
  for i = 0 to 7 do
    Rf_policy.record p ~file:0 ~node:(i mod 4)
  done;
  ignore (Rf_policy.end_interval p);
  Alcotest.(check (float 1e-9)) "seeded" 8.0 (Rf_policy.reference_pd p);
  (* Interval 2: PD 16 -> reference 0.5 * 8 + 0.5 * 16 = 12. *)
  for i = 0 to 15 do
    Rf_policy.record p ~file:0 ~node:(i mod 4)
  done;
  ignore (Rf_policy.end_interval p);
  Alcotest.(check (float 1e-9)) "ema" 12.0 (Rf_policy.reference_pd p)

(* --- Capacity-aware mode ------------------------------------------------ *)

let test_capacity_targets_observed_rate () =
  (* 10 req/s per replica: 35 accesses in a 1 s interval need 4
     replicas. The RF walks one step per interval from 1 up to the
     target, then holds (Warm). *)
  let config = { pure with Rf_policy.capacity = Some 10.0 } in
  let p = Rf_policy.create ~config ~nodes:8 ~files:1 () in
  let tick () =
    for i = 0 to 34 do
      Rf_policy.record p ~file:0 ~node:(i mod 8)
    done;
    Rf_policy.end_interval p
  in
  let d1 = tick () in
  Alcotest.check cls "undersized is hot" Rf_policy.Hot d1.(0).Rf_policy.cls;
  for _ = 1 to 5 do
    ignore (tick ())
  done;
  Alcotest.(check int) "converged to ceil(35/10)" 4 (Rf_policy.rf p ~file:0);
  Alcotest.check cls "holds at the target" Rf_policy.Warm
    (Rf_policy.classification p ~file:0);
  (* Demand gone: the replica set drains back to the floor. *)
  for _ = 1 to 5 do
    ignore (Rf_policy.end_interval p)
  done;
  Alcotest.(check int) "drained" 1 (Rf_policy.rf p ~file:0)

let test_capacity_oversized_is_cold () =
  let config = { pure with Rf_policy.capacity = Some 100.0 } in
  let p = Rf_policy.create ~config ~rf0:6 ~nodes:4 ~files:1 () in
  Rf_policy.record p ~file:0 ~node:0;
  let d = Rf_policy.end_interval p in
  Alcotest.check cls "over-provisioned" Rf_policy.Cold d.(0).Rf_policy.cls;
  Alcotest.(check int) "stepped down" 5 (Rf_policy.rf p ~file:0)

(* --- The shard-merge entry point ---------------------------------------- *)

let test_note_matches_record () =
  (* Tallying through [note] in shard-sized pieces must classify
     exactly like the equivalent [record] stream. *)
  let mk () = Rf_policy.create ~config:pure ~rf0:2 ~nodes:10 ~files:2 () in
  let a = mk () and b = mk () in
  for i = 0 to 29 do
    Rf_policy.record a ~file:0 ~node:(i mod 6)
  done;
  Rf_policy.record a ~file:1 ~node:0;
  Rf_policy.note b ~file:0 ~ac:12 ~dnc:2;
  Rf_policy.note b ~file:0 ~ac:18 ~dnc:4;
  Rf_policy.note b ~file:1 ~ac:1 ~dnc:1;
  let da = Rf_policy.end_interval a and db = Rf_policy.end_interval b in
  Array.iteri
    (fun f (d : Rf_policy.decision) ->
      Alcotest.(check int) "ac" d.Rf_policy.ac db.(f).Rf_policy.ac;
      Alcotest.(check int) "dnc" d.Rf_policy.dnc db.(f).Rf_policy.dnc;
      Alcotest.(check (float 1e-9)) "pd" d.Rf_policy.pd db.(f).Rf_policy.pd;
      Alcotest.check cls "class" d.Rf_policy.cls db.(f).Rf_policy.cls;
      Alcotest.(check int) "rf" (Rf_policy.rf a ~file:f)
        (Rf_policy.rf b ~file:f))
    da

let test_note_saturates_dnc () =
  let p = Rf_policy.create ~config:pure ~nodes:4 ~files:1 () in
  Rf_policy.note p ~file:0 ~ac:100 ~dnc:50;
  let d = Rf_policy.end_interval p in
  Alcotest.(check int) "dnc capped at nodes" 4 d.(0).Rf_policy.dnc

let () =
  Alcotest.run "policy"
    [
      ( "validation",
        [
          Alcotest.test_case "create rejects bad config" `Quick
            test_create_rejects_bad_config;
          Alcotest.test_case "record bounds" `Quick test_record_bounds;
        ] );
      ( "pure mode",
        [
          Alcotest.test_case "PD + dynamic thresholds" `Quick
            test_pure_classification;
          Alcotest.test_case "unaccessed is cold" `Quick
            test_unaccessed_file_is_cold;
          Alcotest.test_case "RF clamped and carried" `Quick
            test_rf_clamped_and_carried;
          Alcotest.test_case "reference EMA" `Quick test_reference_ema;
        ] );
      ( "capacity mode",
        [
          Alcotest.test_case "targets observed rate" `Quick
            test_capacity_targets_observed_rate;
          Alcotest.test_case "oversized is cold" `Quick
            test_capacity_oversized_is_cold;
        ] );
      ( "shard merge",
        [
          Alcotest.test_case "note = record" `Quick test_note_matches_record;
          Alcotest.test_case "dnc saturates" `Quick test_note_saturates_dnc;
        ] );
    ]
