(** Per-hop network delay models for the overlay simulator. *)

type t =
  | Constant of float  (** Every hop takes exactly this many seconds. *)
  | Uniform of { lo : float; hi : float }  (** Uniform in [\[lo, hi\]]. *)
  | Exponential of { mean : float; floor : float }
      (** [floor] plus an exponential tail — a long-tailed WAN model. *)

val default : t
(** [Uniform {lo = 0.010; hi = 0.080}]: wide-area P2P round-trip
    half-times, in seconds. *)

val sample : t -> Lesslog_prng.Rng.t -> float
val mean : t -> float
val pp : Format.formatter -> t -> unit
