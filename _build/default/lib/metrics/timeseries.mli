(** Append-only (time, value) series — replica counts over a run, load over
    time, etc. *)

type t

val create : ?label:string -> unit -> t
val label : t -> string
val record : t -> time:float -> float -> unit
val length : t -> int

val points : t -> (float * float) array
(** Chronological snapshot (fresh array). *)

val last : t -> (float * float) option

val value_at : t -> time:float -> float option
(** Step interpolation: the most recent value at or before [time]. *)
