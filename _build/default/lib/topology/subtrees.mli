(** The fault-tolerant model's subtree decomposition (paper Section 4,
    Figure 4).

    With [b > 0], the last [b] bits of each VID are the node's subtree
    identifier and the first [m - b] bits its subtree VID. Each of the
    [2^b] subtrees is itself a complete binomial lookup tree over subtree
    VIDs, so all Section 3 operations run unchanged inside a subtree; a
    faulting request migrates to a sibling subtree by rewriting the
    identifier bits. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree

val reduced_params : Params.t -> Params.t
(** The [(m - b)]-bit parameter set governing each subtree ([b] reset
    to 0). *)

val subtree_id_of_vid : Params.t -> Vid.t -> int
(** Low [b] bits. *)

val subtree_vid_of_vid : Params.t -> Vid.t -> int
(** High [m - b] bits. *)

val compose_vid : Params.t -> subtree_vid:int -> subtree_id:int -> Vid.t

val subtree_id_of_pid : Ptree.t -> Pid.t -> int
(** The subtree a node belongs to in the given lookup tree. *)

val migrate_vid : Params.t -> Vid.t -> to_subtree:int -> Vid.t
(** Rewrite the subtree identifier, preserving the subtree VID — how a
    faulting request hops to a sibling subtree. *)

val subtree_root : Ptree.t -> subtree_id:int -> Pid.t
(** The node whose subtree VID is all ones within the given subtree. *)

val members : Ptree.t -> subtree_id:int -> Pid.t list
(** All PID slots of a subtree, by descending subtree VID. *)

val parent_in_subtree : Ptree.t -> Pid.t -> Pid.t option
(** Property 2 applied to the subtree VID; [None] on the subtree root. *)

val children_in_subtree : Ptree.t -> Pid.t -> Pid.t list
(** Property 1 on the subtree VID, descending offspring order. *)

val find_live_node_in_subtree :
  Ptree.t -> Status_word.t -> subtree_id:int -> start:Pid.t -> Pid.t option
(** The modified FINDLIVENODE of Section 4: downward scan of subtree VIDs
    from [start] within one subtree. *)

val insertion_target_in_subtree :
  Ptree.t -> Status_word.t -> subtree_id:int -> Pid.t option
(** Where a file is stored in this subtree: the live member with the most
    offspring (scan from the subtree root). *)

val insertion_targets : Ptree.t -> Status_word.t -> Pid.t list
(** The [2^b] per-subtree targets of the fault-tolerant
    ADVANCEDINSERTFILE — one per subtree that still has a live member. *)

val first_alive_ancestor_in_subtree :
  Ptree.t -> Status_word.t -> Pid.t -> Pid.t option

val children_list_in_subtree :
  Ptree.t -> Status_word.t -> Pid.t -> Pid.t list
(** Dead-node-aware children list restricted to the node's subtree, sorted
    by descending subtree VID. *)

val has_live_with_greater_svid : Ptree.t -> Status_word.t -> Pid.t -> bool

val max_live_in_subtree :
  Ptree.t -> Status_word.t -> subtree_id:int -> Pid.t option

val live_offspring_count_in_subtree : Ptree.t -> Status_word.t -> Pid.t -> int
(** Live strict descendants of a node within its own subtree — the
    numerator of the fault-tolerant proportional choice. *)

val route_path_in_subtree :
  Ptree.t -> Status_word.t -> origin:Pid.t -> Pid.t list
(** Resolution path of the advanced GETFILE confined to the origin's
    subtree (origin inclusive). *)
