(* Multi-file balancing and the churn-trace generator. *)

open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Catalog = Lesslog_workload.Catalog
module Multi_balance = Lesslog_flow.Multi_balance
module Policy = Lesslog_flow.Policy
module Churn_trace = Lesslog_des.Churn_trace
module Des_sim = Lesslog_des.Des_sim
module Rng = Lesslog_prng.Rng

let make_catalog ?(files = 5) ?(total = 4000.0) ~m () =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  let rng = Rng.create ~seed:1 in
  let spec =
    Catalog.create (Cluster.status cluster) ~rng ~files ~total
      ~spread:Catalog.Uniform
  in
  let catalog = Catalog.files spec in
  List.iter (fun (key, _) -> ignore (Ops.insert cluster ~key)) catalog;
  (cluster, catalog, rng)

(* --- Multi_balance ------------------------------------------------------- *)

let test_multi_balances_catalog () =
  let cluster, catalog, rng = make_catalog ~m:7 () in
  let outcome =
    Multi_balance.run ~rng ~cluster ~catalog ~capacity:100.0
      ~policy:Policy.Lesslog ()
  in
  Alcotest.(check bool) "balanced" true outcome.Multi_balance.balanced;
  Alcotest.(check bool) "max load ok" true (outcome.Multi_balance.max_load <= 100.0);
  (* The aggregate load check is the real invariant. *)
  let total = Multi_balance.aggregate_loads ~cluster ~catalog in
  Alcotest.(check bool) "no node above capacity" true
    (Array.for_all (fun r -> r <= 100.0 +. 1e-9) total)

let test_multi_hot_file_gets_most_replicas () =
  let cluster, catalog, rng = make_catalog ~m:7 ~files:8 ~total:5000.0 () in
  let outcome =
    Multi_balance.run ~rng ~cluster ~catalog ~capacity:100.0
      ~policy:Policy.Lesslog ()
  in
  let replicas_of key =
    Option.value ~default:0
      (List.assoc_opt key outcome.Multi_balance.replicas_per_key)
  in
  (* Zipf rank 0 carries the most demand, so it needs at least as many
     replicas as the coldest rank. *)
  let hottest, _ = List.hd catalog in
  let coldest, _ = List.nth catalog (List.length catalog - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "hot %d >= cold %d" (replicas_of hottest) (replicas_of coldest))
    true
    (replicas_of hottest >= replicas_of coldest)

let test_multi_noop_under_capacity () =
  let cluster, catalog, rng = make_catalog ~m:7 ~total:100.0 () in
  let outcome =
    Multi_balance.run ~rng ~cluster ~catalog ~capacity:100.0
      ~policy:Policy.Lesslog ()
  in
  Alcotest.(check int) "no replicas" 0 outcome.Multi_balance.total_replicas;
  Alcotest.(check bool) "balanced" true outcome.Multi_balance.balanced

let test_per_key_loads_decomposition () =
  let cluster, catalog, _ = make_catalog ~m:6 ~total:640.0 () in
  let total = Multi_balance.aggregate_loads ~cluster ~catalog in
  (* Per-key decomposition at each node sums back to the aggregate. *)
  Status_word.iter_live (Cluster.status cluster) (fun p ->
      let parts = Multi_balance.per_key_loads ~cluster ~catalog ~at:p in
      let sum = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 parts in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "node %d" (Pid.to_int p))
        total.(Pid.to_int p) sum)

let prop_multi_balance_feasible =
  Test_support.qcheck_case ~count:40 ~name:"multi-file balance succeeds when feasible"
    QCheck2.Gen.(
      int_range 4 7 >>= fun m ->
      int_range 1 6 >>= fun files ->
      int_range 0 1_000_000 >>= fun seed -> return (m, files, seed))
    (fun (m, files, seed) ->
      let params = Params.create ~m () in
      let cluster = Cluster.create params in
      let rng = Rng.create ~seed in
      let capacity = 100.0 in
      (* Keep total well under the aggregate capacity. *)
      let total = 0.5 *. capacity *. float_of_int (Params.space params) in
      let spec =
        Catalog.create (Cluster.status cluster) ~rng ~files ~total
          ~spread:Catalog.Uniform
      in
      let catalog = Catalog.files spec in
      List.iter (fun (key, _) -> ignore (Ops.insert cluster ~key)) catalog;
      let outcome =
        Multi_balance.run ~rng ~cluster ~catalog ~capacity ~policy:Policy.Lesslog ()
      in
      outcome.Multi_balance.balanced)

(* --- Churn trace ----------------------------------------------------------- *)

let test_trace_sorted_and_alternating () =
  let rng = Rng.create ~seed:2 in
  let params = Params.create ~m:4 () in
  let live = Pid.all params in
  let trace =
    Churn_trace.generate ~rng ~live
      { Churn_trace.default with duration = 500.0 }
  in
  (* Sorted by time. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Des_sim.at <= b.Des_sim.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted trace);
  (* Per node: strictly alternating departure/join, starting with a
     departure (everyone starts online). *)
  List.iter
    (fun node ->
      let mine =
        List.filter_map
          (fun e ->
            match e.Des_sim.action with
            | Des_sim.Join p when Pid.equal p node -> Some `Join
            | Des_sim.Leave p when Pid.equal p node -> Some `Down
            | Des_sim.Fail p when Pid.equal p node -> Some `Down
            | _ -> None)
          trace
      in
      let rec alternating expected = function
        | [] -> true
        | e :: rest ->
            e = expected
            && alternating (if expected = `Down then `Join else `Down) rest
      in
      Alcotest.(check bool)
        (Printf.sprintf "node %d alternates" (Pid.to_int node))
        true
        (alternating `Down mine))
    live

let test_trace_fail_fraction_extremes () =
  let rng = Rng.create ~seed:3 in
  let params = Params.create ~m:5 () in
  let live = Pid.all params in
  let all_fail =
    Churn_trace.generate ~rng ~live
      { Churn_trace.default with fail_fraction = 1.0; duration = 400.0 }
  in
  let _, leaves, _ = Churn_trace.summary all_fail in
  Alcotest.(check int) "no clean leaves" 0 leaves;
  let none_fail =
    Churn_trace.generate ~rng ~live
      { Churn_trace.default with fail_fraction = 0.0; duration = 400.0 }
  in
  let _, _, fails = Churn_trace.summary none_fail in
  Alcotest.(check int) "no crashes" 0 fails

let test_trace_horizon () =
  let rng = Rng.create ~seed:4 in
  let params = Params.create ~m:4 () in
  let trace =
    Churn_trace.generate ~rng ~live:(Pid.all params)
      { Churn_trace.default with duration = 100.0 }
  in
  List.iter
    (fun e ->
      Alcotest.(check bool) "within horizon" true (e.Des_sim.at < 100.0))
    trace

let test_trace_intensity_scales () =
  let rng = Rng.create ~seed:5 in
  let params = Params.create ~m:5 () in
  let live = Pid.all params in
  let busy =
    Churn_trace.generate ~rng ~live
      { Churn_trace.default with mean_session = 20.0; mean_downtime = 10.0;
        duration = 300.0 }
  in
  let calm =
    Churn_trace.generate ~rng ~live
      { Churn_trace.default with mean_session = 200.0; mean_downtime = 100.0;
        duration = 300.0 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "busy %d > calm %d" (List.length busy) (List.length calm))
    true
    (List.length busy > List.length calm)

let test_trace_drives_des () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  ignore (Ops.insert cluster ~key:"traced");
  let rng = Rng.create ~seed:6 in
  let trace =
    Churn_trace.generate ~rng
      ~live:(Status_word.live_pids (Cluster.status cluster))
      { Churn_trace.default with duration = 30.0; mean_session = 40.0 }
  in
  let demand = Demand.uniform (Cluster.status cluster) ~total:500.0 in
  let result =
    Des_sim.run ~churn:trace ~rng ~cluster ~key:"traced" ~demand ~duration:30.0 ()
  in
  Alcotest.(check bool) "system kept serving" true (result.Des_sim.served > 0)

let () =
  Alcotest.run "multi"
    [
      ( "multi_balance",
        [
          Alcotest.test_case "balances a catalogue" `Quick
            test_multi_balances_catalog;
          Alcotest.test_case "hot file dominates" `Quick
            test_multi_hot_file_gets_most_replicas;
          Alcotest.test_case "no-op under capacity" `Quick
            test_multi_noop_under_capacity;
          Alcotest.test_case "per-key decomposition" `Quick
            test_per_key_loads_decomposition;
        ] );
      ( "churn_trace",
        [
          Alcotest.test_case "sorted + alternating" `Quick
            test_trace_sorted_and_alternating;
          Alcotest.test_case "fail fraction extremes" `Quick
            test_trace_fail_fraction_extremes;
          Alcotest.test_case "horizon" `Quick test_trace_horizon;
          Alcotest.test_case "intensity scales" `Quick test_trace_intensity_scales;
          Alcotest.test_case "drives the DES" `Quick test_trace_drives_des;
        ] );
      ("properties", [ prop_multi_balance_feasible ]);
    ]
