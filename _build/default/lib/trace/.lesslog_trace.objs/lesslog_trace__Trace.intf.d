lib/trace/trace.mli: Buffer Format
