lib/trace/trace.ml: Buffer Char Format Fun List Printf String
