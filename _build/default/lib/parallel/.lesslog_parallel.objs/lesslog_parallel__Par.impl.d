lib/parallel/par.ml: Array Domain List
