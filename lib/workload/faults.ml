open Lesslog_id
module Rng = Lesslog_prng.Rng

type burst = { from_ : float; until : float; loss : float }

type crash = { node : Pid.t; at : float; restart_at : float option }

type direction = Both | Inbound | Outbound

type partition = {
  from_ : float;
  until : float;
  group : Pid.t list;
  direction : direction;
}

type plan = {
  bursts : burst list;
  crashes : crash list;
  partitions : partition list;
}

let empty = { bursts = []; crashes = []; partitions = [] }

let last_disturbance plan =
  let m = ref 0.0 in
  let see t = if t > !m then m := t in
  List.iter (fun (b : burst) -> see b.until) plan.bursts;
  List.iter
    (fun c ->
      see c.at;
      Option.iter see c.restart_at)
    plan.crashes;
  List.iter (fun (p : partition) -> see p.until) plan.partitions;
  !m

let crashed_at plan ~time =
  List.filter_map
    (fun c ->
      let down =
        time >= c.at
        && match c.restart_at with None -> true | Some r -> time < r
      in
      if down then Some c.node else None)
    plan.crashes

let generate ~rng ~live ~duration ?(active_until = 0.6)
    ?(crash_fraction = 0.05) ?(restart_fraction = 0.5) ?mean_downtime
    ?(bursts = 1) ?(burst_loss = 0.5) ?mean_burst ?(partitions = 0)
    ?(partition_fraction = 0.25) ?mean_partition () =
  if duration <= 0.0 then invalid_arg "Faults.generate: duration";
  if active_until <= 0.05 || active_until > 0.75 then
    invalid_arg "Faults.generate: active_until";
  let mean_downtime = Option.value mean_downtime ~default:(duration /. 8.0) in
  let mean_burst = Option.value mean_burst ~default:(duration /. 10.0) in
  let mean_partition =
    Option.value mean_partition ~default:(duration /. 10.0)
  in
  let settle = 0.75 *. duration in
  let start_in () =
    let lo = 0.05 *. duration and hi = active_until *. duration in
    lo +. Rng.float rng (hi -. lo)
  in
  let window mean =
    let from_ = start_in () in
    let until =
      Float.min settle (from_ +. Rng.exponential rng ~rate:(1.0 /. mean))
    in
    (from_, Float.max until (from_ +. (0.01 *. duration)))
  in
  let pool = Array.of_list live in
  let n = Array.length pool in
  let crash_count =
    int_of_float (Float.round (crash_fraction *. float_of_int n))
  in
  let victims = Rng.sample_without_replacement rng ~k:crash_count pool in
  let crashes =
    Array.to_list victims
    |> List.map (fun node ->
           let at = start_in () in
           let restart_at =
             if Rng.bernoulli rng ~p:restart_fraction then
               let back =
                 at +. Rng.exponential rng ~rate:(1.0 /. mean_downtime)
               in
               (* A restart that would land in the quiet tail is pulled
                  back so convergence is measured against a stable truth. *)
               Some (Float.min settle back)
             else None
           in
           { node; at; restart_at })
  in
  let bursts =
    List.init bursts (fun _ ->
        let from_, until = window mean_burst in
        { from_; until; loss = burst_loss })
  in
  let partitions =
    List.init partitions (fun _ ->
        let from_, until = window mean_partition in
        let k =
          Stdlib.max 1
            (int_of_float (Float.round (partition_fraction *. float_of_int n)))
        in
        let group =
          Array.to_list (Rng.sample_without_replacement rng ~k pool)
        in
        let direction =
          match Rng.int rng 3 with 0 -> Both | 1 -> Inbound | _ -> Outbound
        in
        { from_; until; group; direction })
  in
  { bursts; crashes; partitions }
