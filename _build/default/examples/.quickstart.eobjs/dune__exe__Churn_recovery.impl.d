examples/churn_recovery.ml: Lesslog Lesslog_id Lesslog_membership Lesslog_prng List Params Pid Printf
