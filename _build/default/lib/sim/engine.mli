(** Discrete-event simulation engine: a simulated clock and an ordered
    event queue of callbacks. Events scheduled for the same instant fire
    in scheduling order (a monotone sequence number breaks ties), which
    keeps runs deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time, seconds. Starts at 0. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a callback [delay] seconds from now. [delay >= 0]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a callback at an absolute time [>= now]. *)

val pending : t -> int
(** Events still queued. *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue. [until] stops the clock at that time (later events
    stay queued, [now] is clamped to [until]); [max_events] bounds the
    number of callbacks executed — a runaway guard. *)

val events_executed : t -> int
