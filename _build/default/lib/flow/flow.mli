(** Exact steady-state request-flow solver.

    Given a lookup tree, the membership, and the per-node demand for one
    file, every request travels the Section 3 resolution path of its
    origin and is served by the first copy it meets. This module computes
    each node's serve rate in closed form — the quantity the paper's
    evaluation thresholds against the per-node capacity. Routing is
    precomputed once per (tree, membership) pair so the replication loop
    can re-evaluate loads cheaply as copies appear. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree

type t

val create : Ptree.t -> Status_word.t -> t
(** Precompute the next-hop table (O(N·m)). The membership must not change
    while this value is in use. *)

val tree : t -> Ptree.t
val status : t -> Status_word.t

val next_hop : t -> Pid.t -> Pid.t option
(** The precomputed {!Lesslog_topology.Topology.route_next}. *)

val serving_node :
  t -> holders:(Pid.t -> bool) -> origin:Pid.t -> Pid.t option
(** Which node serves a request originated at a live [origin]; [None] when
    no copy lies on the resolution path (a fault). *)

type loads = {
  serve : float array;  (** Requests/s served, per PID slot. *)
  unserved : float;  (** Demand whose path met no copy. *)
}

val serve_rates :
  t -> holders:(Pid.t -> bool) -> demand:Lesslog_workload.Demand.t -> loads

val inflows :
  t ->
  holders:(Pid.t -> bool) ->
  demand:Lesslog_workload.Demand.t ->
  at:Pid.t ->
  (Pid.t option * float) list
(** Decompose the traffic served at [at] by where it entered: [Some p] for
    requests forwarded by [p] on the hop [p → at], [None] for requests
    originated at [at] itself. This is exactly the information a log-based
    replication method extracts from client-access logs. *)
