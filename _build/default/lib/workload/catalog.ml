module Status_word = Lesslog_membership.Status_word
module Rng = Lesslog_prng.Rng
module Zipf = Lesslog_prng.Zipf

type spread = Uniform | Locality of { hot_fraction : float; hot_share : float }

type t = { files : (string * Demand.t) array }

let demand_for status ~rng ~spread ~total =
  match spread with
  | Uniform -> Demand.uniform status ~total
  | Locality { hot_fraction; hot_share } ->
      Demand.locality ~hot_fraction ~hot_share status ~rng ~total

let create ?(prefix = "file") ?(zipf_s = 0.9) status ~rng ~files ~total ~spread =
  if files <= 0 then invalid_arg "Catalog.create: files";
  let zipf = Zipf.create ~n:files ~s:zipf_s in
  let entries =
    Array.init files (fun rank ->
        let share = Zipf.probability zipf rank in
        let name = Printf.sprintf "%s-%04d" prefix rank in
        (name, demand_for status ~rng ~spread ~total:(total *. share)))
  in
  { files = entries }

let files t = Array.to_list t.files

let demand_of t ~key =
  Array.find_opt (fun (name, _) -> String.equal name key) t.files
  |> Option.map snd

let shift_popularity t ~rng =
  let names = Array.map fst t.files in
  let demands = Array.map snd t.files in
  Rng.shuffle rng names;
  { files = Array.map2 (fun name demand -> (name, demand)) names demands }
