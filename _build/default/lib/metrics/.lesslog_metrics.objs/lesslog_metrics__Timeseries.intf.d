lib/metrics/timeseries.mli:
