(** The self-organized mechanism (paper Section 5): joining, voluntarily
    leaving, and failing nodes.

    A real deployment locates the files affected by a membership change by
    examining children lists tree by tree (Section 5.1); this simulator
    computes the same set directly from the cluster's key registry — the
    test suite checks the outcome matches a from-scratch recomputation of
    every insertion target. *)

open Lesslog_id

type join_stats = {
  took_over : (string * Pid.t) list;
      (** Keys whose inserted copy moved to the joiner, with the previous
          holder (now demoted to a replica holder). *)
}

type leave_stats = {
  reinserted : (string * Pid.t) list;
      (** Inserted files re-homed by ADVANCEDINSERTFILE with the leaver
          marked dead, with their new holder. *)
  dropped_replicas : string list;
      (** Replicated copies simply discarded on departure. *)
}

type fail_stats = {
  lost : string list;
      (** Inserted files with no surviving copy anywhere ([b = 0]: requests
          for these now fault, as Section 5.3 warns). *)
  recovered : (string * Pid.t) list;
      (** [b > 0]: files re-inserted into the failed node's subtree from a
          sibling subtree's copy, with their new holder. *)
  orphaned : string list;
      (** Files whose inserted copy died but which survive as replicas
          somewhere (served in degraded mode). *)
}

val join : ?now:float -> Cluster.t -> Pid.t -> join_stats
(** Register the node live and copy back every file whose insertion target
    it now is. @raise Invalid_argument when the node is already live. *)

val leave : ?now:float -> Cluster.t -> Pid.t -> leave_stats
(** Voluntary departure: broadcast dead status, drop replicas, re-insert
    inserted files elsewhere. @raise Invalid_argument when already dead. *)

val fail : ?now:float -> Cluster.t -> Pid.t -> fail_stats
(** Crash: the node's entire store is lost, then recovery runs (only
    effective when [b > 0]). @raise Invalid_argument when already dead. *)

val expected_targets : Cluster.t -> key:string -> Pid.t list
(** Where the inserted copies of a key belong under the current
    membership: the single FINDLIVENODE target when [b = 0], one per
    subtree when [b > 0]. *)

val integrity_violations : Cluster.t -> (string * Pid.t) list
(** Registered keys whose expected target does not hold an inserted copy —
    empty after any sequence of inserts, joins and leaves (failures with
    [b = 0] may legitimately lose files). *)
