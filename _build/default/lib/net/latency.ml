module Rng = Lesslog_prng.Rng

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }

let default = Uniform { lo = 0.010; hi = 0.080 }

let sample t rng =
  match t with
  | Constant d -> d
  | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
  | Exponential { mean; floor } ->
      floor +. Rng.exponential rng ~rate:(1.0 /. mean)

let mean = function
  | Constant d -> d
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean; floor } -> floor +. mean

let pp fmt = function
  | Constant d -> Format.fprintf fmt "constant(%gs)" d
  | Uniform { lo; hi } -> Format.fprintf fmt "uniform(%g..%gs)" lo hi
  | Exponential { mean; floor } ->
      Format.fprintf fmt "exponential(mean=%gs, floor=%gs)" mean floor
