(** Parallel execution over OCaml 5 domains: a persistent worker pool
    with a reusable start/finish barrier, and a strided parallel map on
    top of it.

    The pool exists because the sharded simulation engine crosses a
    barrier twice per epoch — spawning domains per crossing (as the old
    [map] spawned per call) would dominate the epoch cost. Workers are
    spawned once and idle between jobs on a condition variable; the
    mutex hand-off gives each job the happens-before edges cross-worker
    data exchange (e.g. the engine's shard mailboxes) relies on.

    Determinism: nothing here introduces scheduling-dependent results —
    a job receives its worker index and the split of work across indices
    is fixed by the caller, so outcomes are identical at any domain
    count as long as jobs touch disjoint state. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 16 — or the value of
    the [LESSLOG_DOMAINS] environment variable when set (positive
    integer; overrides both the probe and the cap, e.g. to force an
    8-worker pool on a smaller machine or to raise the cap on a larger
    one). *)

module Pool : sig
  type t

  val create : domains:int -> t
  (** Spawn a pool of [domains] workers ([domains - 1] new domains; the
      calling domain is worker 0). [domains >= 1]. *)

  val size : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f w] on every worker [w] in [0 .. size - 1]
      concurrently and returns when all of them have — one barriered
      step. Worker exceptions are trapped and re-joined; the exception
      of the lowest-numbered failing worker is re-raised after every
      worker has finished, so failure is deterministic too. Not
      reentrant: do not call [run] from inside a job. *)

  val shutdown : t -> unit
  (** Stop and join the workers. Idempotent; [run] after [shutdown]
      raises [Invalid_argument]. *)
end

module Barrier : sig
  (** In-job phase barrier: lets the workers of one {!Pool.run} job cross
      several internal phases without returning to the coordinator — the
      sharded engine's epoch fusion. One {!arrive} per party per phase;
      the last arriver runs a decision closure while the others hold,
      then all are released together. *)

  type t

  val create : ?spin:int -> parties:int -> unit -> t
  (** A barrier for exactly [parties] participants ([>= 1]). [spin] is
      the busy-wait bound before a waiter falls back to blocking on a
      condition variable (default 512) — spinning wins when every party
      has its own core, blocking when the host is oversubscribed. *)

  val parties : t -> int

  val arrive : t -> last:(unit -> unit) -> unit
  (** Block until all [parties] have arrived. The last arriver runs
      [last] before anyone is released: its plain writes are visible to
      every party after [arrive] returns, and every party's plain writes
      made before its own [arrive] are visible inside [last]. With
      [parties = 1], [arrive] just runs [last]. Every party must arrive
      exactly once per phase — a party that skips an arrival (e.g. by
      raising) deadlocks the rest, so callers trap exceptions, arrive,
      and re-raise after release. *)
end

val ensure_pool : int -> Pool.t
(** The shared process-wide pool, created on first use and regrown
    (never shrunk) when more workers are requested; torn down by an
    [at_exit] hook. Callers must not [shutdown] this one. *)

val map : ?domains:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~domains ~f a] applies [f] to every element, splitting the
    index space across [domains] (default {!recommended_domains})
    worker strides of the shared pool. [f] must be safe to run
    concurrently (no shared mutable state). Results are identical at
    any domain count; when several strides fail, the exception of the
    lowest-numbered worker is re-raised after all strides have been
    joined. Called from inside a pool job (a nested [map]), it falls
    back to the sequential path rather than re-entering the pool. *)

val map_list : ?domains:int -> f:('a -> 'b) -> 'a list -> 'b list
