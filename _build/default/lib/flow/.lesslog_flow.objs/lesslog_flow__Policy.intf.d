lib/flow/policy.mli: Flow Lesslog Lesslog_id Lesslog_prng Lesslog_workload Pid
