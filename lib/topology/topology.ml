open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Vtree = Lesslog_vtree.Vtree
module Bitops = Lesslog_bits.Bitops
module Packed_bits = Lesslog_bits.Packed_bits

(* The reference implementations: the seed's per-node scans, kept verbatim
   as the differential-test oracle for the cached word-level versions
   below. test/test_topology.ml asserts bit-identical answers under
   randomized kill/revive sequences. *)
module Naive = struct
  let find_live_node tree status ~start =
    if Status_word.is_live status start then Some start
    else begin
      let rec scan vid =
        if vid < 0 then None
        else
          let p = Ptree.pid_of_vid tree (Vid.unsafe_of_int vid) in
          if Status_word.is_live status p then Some p else scan (vid - 1)
      in
      scan (Vid.to_int (Ptree.vid_of_pid tree start) - 1)
    end

  let insertion_target tree status =
    find_live_node tree status ~start:(Ptree.root tree)

  let first_alive_ancestor tree status p =
    let rec climb p =
      match Ptree.parent tree p with
      | None -> None
      | Some q -> if Status_word.is_live status q then Some q else climb q
    in
    climb p

  let children_list tree status p =
    (* Expand dead children recursively, then sort by descending VID, which
       the paper specifies and which also orders by descending offspring. *)
    let rec expand acc p =
      List.fold_left
        (fun acc c ->
          if Status_word.is_live status c then c :: acc else expand acc c)
        acc (Ptree.children tree p)
    in
    let live_children = expand [] p in
    List.sort
      (fun a b ->
        Vid.compare (Ptree.vid_of_pid tree b) (Ptree.vid_of_pid tree a))
      live_children

  let max_live tree status =
    let rec scan vid =
      if vid < 0 then None
      else
        let p = Ptree.pid_of_vid tree (Vid.unsafe_of_int vid) in
        if Status_word.is_live status p then Some p else scan (vid - 1)
    in
    scan (Params.mask (Ptree.params tree))

  let has_live_with_greater_vid tree status p =
    match max_live tree status with
    | None -> false
    | Some g ->
        Vid.compare (Ptree.vid_of_pid tree g) (Ptree.vid_of_pid tree p) > 0

  let live_offspring_count tree status p =
    Status_word.fold_live status ~init:0 ~f:(fun acc q ->
        if (not (Pid.equal q p)) && Ptree.is_ancestor tree ~ancestor:p q then
          acc + 1
        else acc)

  let route_next tree status p =
    match first_alive_ancestor tree status p with
    | Some a -> Some a
    | None ->
        if Status_word.is_live status (Ptree.root tree) then None
        else begin
          match insertion_target tree status with
          | Some g when not (Pid.equal g p) -> Some g
          | Some _ | None -> None
        end

  let route_path tree status ~origin =
    let rec go acc p =
      match route_next tree status p with
      | None -> List.rev (p :: acc)
      | Some q -> go (p :: acc) q
    in
    go [] origin
end

(* --- Cached word-level implementations --------------------------------- *)

(* Test-only fault injection: the deterministic checker (lib/check) proves
   it can catch real bugs by flipping this flag and demanding a shrunk
   counterexample. Never set outside tests. *)
module Testing = struct
  let broken_find_live_node = ref false
end

let entry tree status = Topology_cache.get status ~comp:(Ptree.comp tree)

let find_live_node tree status ~start =
  if Status_word.is_live status start then Some start
  else
    let v = Vid.to_int (Ptree.vid_of_pid tree start) in
    let e = entry tree status in
    if !Testing.broken_find_live_node then
      (* Deliberately wrong: scans *upward* in VID space, violating the
         paper's FINDLIVENODE contract (first live node strictly below). *)
      let mask = Params.mask (Ptree.params tree) in
      match
        if v >= mask then -1
        else Packed_bits.first_set_at_or_above e.Topology_cache.vids (v + 1)
      with
      | -1 -> None
      | u -> Some (Ptree.pid_of_vid tree (Vid.unsafe_of_int u))
    else if v = 0 then None
    else
      match Packed_bits.first_set_at_or_below e.Topology_cache.vids (v - 1) with
      | -1 -> None
      | u -> Some (Ptree.pid_of_vid tree (Vid.unsafe_of_int u))

let max_live tree status =
  let e = entry tree status in
  match e.Topology_cache.max_live_vid with
  | -1 -> None
  | v -> Some (Ptree.pid_of_vid tree (Vid.unsafe_of_int v))

(* FINDLIVENODE(r, r) starts at the root, whose VID is the maximum, so the
   answer is just the maximum live VID. *)
let insertion_target = max_live

let first_alive_ancestor tree status p =
  (* Climb in VID space: the parent sets the highest zero bit (P2). Pure
     bit arithmetic over the status word's own bitset — individual
     liveness tests translate through comp directly, so this path never
     touches the cache. *)
  let mask = Params.mask (Ptree.params tree) in
  let comp = Ptree.comp tree in
  let bits = Status_word.live_bits status in
  let rec climb v =
    let zeros = lnot v land mask in
    if zeros = 0 then None
    else
      let v' = v lor (1 lsl Bitops.floor_log2 zeros) in
      let p' = v' lxor comp in
      if Packed_bits.get bits p' then Some (Pid.unsafe_of_int p') else climb v'
  in
  climb (Pid.to_int p lxor comp)

let has_live_with_greater_vid tree status p =
  let e = entry tree status in
  e.Topology_cache.max_live_vid > Vid.to_int (Ptree.vid_of_pid tree p)

let children_list tree status p =
  let e = entry tree status in
  let pi = Pid.to_int p in
  match Hashtbl.find_opt e.Topology_cache.children pi with
  | Some l -> l
  | None ->
      let m = Params.m (Ptree.params tree) in
      let vids = e.Topology_cache.vids in
      (* Same recursion as Naive.children_list, but in VID space over the
         cached bitset: a child of v clears one of its n leading one bits
         (bit m-n+i); dead children are transparently expanded. *)
      let rec expand acc v =
        let n = Bitops.leading_ones ~width:m v in
        let acc = ref acc in
        for i = 0 to n - 1 do
          let c = v land lnot (1 lsl (m - n + i)) in
          if Packed_bits.get vids c then acc := c :: !acc
          else acc := expand !acc c
        done;
        !acc
      in
      let vs = expand [] (Vid.to_int (Ptree.vid_of_pid tree p)) in
      let vs = List.sort (fun a b -> compare b a) vs in
      let l = List.map (fun v -> Ptree.pid_of_vid tree (Vid.unsafe_of_int v)) vs in
      Hashtbl.add e.Topology_cache.children pi l;
      l

let live_offspring_count tree status p =
  let params = Ptree.params tree in
  let m = Params.m params in
  let v = Vid.to_int (Ptree.vid_of_pid tree p) in
  let n = Bitops.leading_ones ~width:m v in
  if n = 0 then 0
  else begin
    let e = entry tree status in
    let vids = e.Topology_cache.vids in
    (* The subtree of v is exactly the residue class of v modulo
       2^(m-n): descendants clear subsets of the n leading one bits and
       keep the low m-n bits. Count live members by whichever enumeration
       is smaller — the 2^n strided candidates or the live set. *)
    let size = 1 lsl n in
    let low = v land ((1 lsl (m - n)) - 1) in
    let count = ref 0 in
    if size <= Status_word.live_count status then
      for j = 0 to size - 1 do
        if Packed_bits.get vids ((j lsl (m - n)) lor low) then incr count
      done
    else begin
      let period_mask = (1 lsl (m - n)) - 1 in
      Packed_bits.iter_set vids (fun u ->
          if u land period_mask = low then incr count)
    end;
    if Packed_bits.get vids v then !count - 1 else !count
  end

type router = int array

let router tree status = Topology_cache.next_pids (entry tree status)

let next_hop_int (r : router) pi = Array.unsafe_get r pi

let next_hop r p =
  match next_hop_int r (Pid.to_int p) with
  | -1 -> None
  | q -> Some (Pid.unsafe_of_int q)

let route_next tree status p = next_hop (router tree status) p

let route_path tree status ~origin =
  let r = router tree status in
  let rec go acc p =
    match next_hop_int r (Pid.to_int p) with
    | -1 -> List.rev (p :: acc)
    | q -> go (p :: acc) (Pid.unsafe_of_int q)
  in
  go [] origin
