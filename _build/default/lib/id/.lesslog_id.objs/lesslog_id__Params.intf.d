lib/id/params.mli: Format
