(* Ladder/calendar event queue, struct-of-arrays.

   Items are events (time, seq, h, a, b, x) ordered by (time, seq) with
   Float.compare/Int.compare semantics on finite keys. Storage is three
   bands:

   - [opened]: a small binary min-heap holding the events of the bucket
     currently being drained (plus any event pushed at or before its
     upper bound, e.g. zero-delay messages);
   - a stack of rungs, each a window of [nbuckets] append-only unsorted
     buckets of width [rung.width]; an oversized bucket is split into a
     finer child rung instead of being heaped, which keeps the heap
     small under bursts;
   - [far]: a min-heap for events beyond the outermost rung. When every
     rung is exhausted the far band is scattered into a fresh rung whose
     width is fitted to the observed span.

   All bands store events in parallel scalar arrays (no per-event boxes),
   so pushing or popping allocates nothing once capacity is reached. *)

type vec = {
  mutable t : float array;
  mutable s : int array;
  mutable h : int array;
  mutable a : int array;
  mutable b : int array;
  mutable x : float array;
  mutable len : int;
}

let vec_make () =
  { t = [||]; s = [||]; h = [||]; a = [||]; b = [||]; x = [||]; len = 0 }

let vec_reserve v =
  if v.len = Array.length v.t then begin
    let cap = max 16 (2 * Array.length v.t) in
    let grow_f old =
      let n = Array.make cap 0.0 in
      Array.blit old 0 n 0 v.len; n
    and grow_i old =
      let n = Array.make cap 0 in
      Array.blit old 0 n 0 v.len; n
    in
    v.t <- grow_f v.t;
    v.s <- grow_i v.s;
    v.h <- grow_i v.h;
    v.a <- grow_i v.a;
    v.b <- grow_i v.b;
    v.x <- grow_f v.x
  end

let vec_push v ~time ~seq ~h ~a ~b ~x =
  vec_reserve v;
  let i = v.len in
  Array.unsafe_set v.t i time;
  Array.unsafe_set v.s i seq;
  Array.unsafe_set v.h i h;
  Array.unsafe_set v.a i a;
  Array.unsafe_set v.b i b;
  Array.unsafe_set v.x i x;
  v.len <- i + 1

(* --- binary-heap operations over a vec, keyed by (time, seq) -----------

   Sifts move the hole, not the item: the six payload words are written
   exactly once, at the hole's final position. Indices are maintained
   internally, so unchecked accesses are safe. *)

let copy_slot v ~src ~dst =
  Array.unsafe_set v.t dst (Array.unsafe_get v.t src);
  Array.unsafe_set v.s dst (Array.unsafe_get v.s src);
  Array.unsafe_set v.h dst (Array.unsafe_get v.h src);
  Array.unsafe_set v.a dst (Array.unsafe_get v.a src);
  Array.unsafe_set v.b dst (Array.unsafe_get v.b src);
  Array.unsafe_set v.x dst (Array.unsafe_get v.x src)

let write_slot v i ~time ~seq ~h ~a ~b ~x =
  Array.unsafe_set v.t i time;
  Array.unsafe_set v.s i seq;
  Array.unsafe_set v.h i h;
  Array.unsafe_set v.a i a;
  Array.unsafe_set v.b i b;
  Array.unsafe_set v.x i x

let heap_push v ~time ~seq ~h ~a ~b ~x =
  vec_reserve v;
  let i = ref v.len in
  v.len <- v.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Array.unsafe_get v.t p in
    if time < tp || (time = tp && seq < Array.unsafe_get v.s p) then begin
      copy_slot v ~src:p ~dst:!i;
      i := p
    end
    else continue := false
  done;
  write_slot v !i ~time ~seq ~h ~a ~b ~x

(* Sink the event at [hole] (whose key is [(time, seq)], already read
   out) to its heap position among [v.len] items. *)
let sift_hole_down v hole ~time ~seq ~h ~a ~b ~x =
  let n = v.len in
  let i = ref hole in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < n then begin
          let tl = Array.unsafe_get v.t l and tr = Array.unsafe_get v.t r in
          if
            tr < tl
            || (tr = tl && Array.unsafe_get v.s r < Array.unsafe_get v.s l)
          then r
          else l
        end
        else l
      in
      let tc = Array.unsafe_get v.t c in
      if tc < time || (tc = time && Array.unsafe_get v.s c < seq) then begin
        copy_slot v ~src:c ~dst:!i;
        i := c
      end
      else continue := false
    end
  done;
  write_slot v !i ~time ~seq ~h ~a ~b ~x

(* Insertion sort by (time, seq). Dumped buckets arrive in push order, so
   ties (and the degenerate all-same-time bucket) are already sorted and
   cost two comparisons per element. *)
let sort_vec v =
  for i = 1 to v.len - 1 do
    let time = Array.unsafe_get v.t i and seq = Array.unsafe_get v.s i in
    let tp = Array.unsafe_get v.t (i - 1) in
    if tp > time || (tp = time && Array.unsafe_get v.s (i - 1) > seq) then begin
      let h = Array.unsafe_get v.h i
      and a = Array.unsafe_get v.a i
      and b = Array.unsafe_get v.b i
      and x = Array.unsafe_get v.x i in
      let j = ref (i - 1) in
      copy_slot v ~src:!j ~dst:i;
      decr j;
      let continue = ref true in
      while !continue && !j >= 0 do
        let tj = Array.unsafe_get v.t !j in
        if tj > time || (tj = time && Array.unsafe_get v.s !j > seq) then begin
          copy_slot v ~src:!j ~dst:(!j + 1);
          decr j
        end
        else continue := false
      done;
      write_slot v (!j + 1) ~time ~seq ~h ~a ~b ~x
    end
  done

let heap_drop_root v =
  let last = v.len - 1 in
  v.len <- last;
  if last > 0 then
    sift_hole_down v 0 ~time:(Array.unsafe_get v.t last)
      ~seq:(Array.unsafe_get v.s last) ~h:(Array.unsafe_get v.h last)
      ~a:(Array.unsafe_get v.a last) ~b:(Array.unsafe_get v.b last)
      ~x:(Array.unsafe_get v.x last)

(* --- rungs -------------------------------------------------------------- *)

type rung = {
  mutable start : float;
  mutable width : float;  (* per-bucket time width *)
  mutable inv_width : float;  (* 1 / width, so indexing multiplies *)
  mutable cur : int;      (* buckets below [cur] are drained *)
  mutable count : int;    (* events currently stored in this rung *)
  buckets : vec array;
}

let max_rungs = 24

type t = {
  nbuckets : int;
  split_threshold : int;
  run : vec;  (* current bucket, sorted; drained by [run_pos] *)
  mutable run_pos : int;
  opened : vec;
      (* overflow min-heap: events pushed below [open_bound] while the
         run drains (zero-delay messages, reentrant posts) *)
  far : vec;
  mutable far_max : float;
  mutable rungs : rung array;  (* pooled; [nrungs] are active *)
  mutable nrungs : int;
  mutable open_bound : float;
      (* events strictly below this time belong to [opened] *)
  mutable size : int;
  (* pop cursor *)
  mutable c_time : float;
  mutable c_seq : int;
  mutable c_h : int;
  mutable c_a : int;
  mutable c_b : int;
  mutable c_x : float;
}

let create ?(buckets = 64) ?(split_threshold = 64) () =
  if buckets < 2 then invalid_arg "Ladder_queue.create: buckets";
  {
    nbuckets = buckets;
    split_threshold = max 4 split_threshold;
    run = vec_make ();
    run_pos = 0;
    opened = vec_make ();
    far = vec_make ();
    far_max = neg_infinity;
    rungs = [||];
    nrungs = 0;
    open_bound = neg_infinity;
    size = 0;
    c_time = 0.0;
    c_seq = 0;
    c_h = 0;
    c_a = 0;
    c_b = 0;
    c_x = 0.0;
  }

let length t = t.size
let is_empty t = t.size = 0

let fresh_rung t =
  if t.nrungs = Array.length t.rungs then begin
    let r =
      {
        start = 0.0;
        width = 1.0;
        inv_width = 1.0;
        cur = 0;
        count = 0;
        buckets = Array.init t.nbuckets (fun _ -> vec_make ());
      }
    in
    t.rungs <- Array.append t.rungs [| r |]
  end;
  let r = t.rungs.(t.nrungs) in
  t.nrungs <- t.nrungs + 1;
  r.cur <- 0;
  r.count <- 0;
  r

let bucket_index r time =
  let i = int_of_float ((time -. r.start) *. r.inv_width) in
  if i < 0 then 0 else if i >= Array.length r.buckets then Array.length r.buckets - 1 else i

let rung_end r = r.start +. (r.width *. float_of_int (Array.length r.buckets))

let push t ~time ~seq ~h ~a ~b ~x =
  t.size <- t.size + 1;
  if time < t.open_bound then heap_push t.opened ~time ~seq ~h ~a ~b ~x
  else begin
    (* innermost (finest) rung first: it covers the bucket its parent is
       currently processing. *)
    let rec place i =
      if i < 0 then begin
        heap_push t.far ~time ~seq ~h ~a ~b ~x;
        if time > t.far_max then t.far_max <- time
      end
      else
        let r = t.rungs.(i) in
        if time < rung_end r then begin
          let idx = bucket_index r time in
          if idx < r.cur then
            (* float boundary disagreement with [open_bound]: the bucket
               is already drained, so the event joins the open heap. *)
            heap_push t.opened ~time ~seq ~h ~a ~b ~x
          else begin
            vec_push r.buckets.(idx) ~time ~seq ~h ~a ~b ~x;
            r.count <- r.count + 1
          end
        end
        else place (i - 1)
    in
    place (t.nrungs - 1)
  end

(* Scatter [v] into rung [r] (whose window covers every item), leaving
   [v] empty. *)
let scatter r v =
  for i = 0 to v.len - 1 do
    let time = Array.unsafe_get v.t i in
    let idx = bucket_index r time in
    let dst = r.buckets.(idx) in
    vec_push dst ~time ~seq:(Array.unsafe_get v.s i)
      ~h:(Array.unsafe_get v.h i) ~a:(Array.unsafe_get v.a i)
      ~b:(Array.unsafe_get v.b i) ~x:(Array.unsafe_get v.x i)
  done;
  r.count <- r.count + v.len;
  v.len <- 0

(* Move every event of bucket vec [v] into the (exhausted) run and sort
   it; subsequent pops advance a cursor instead of sifting a heap. *)
let dump_into_run t v =
  let run = t.run in
  run.len <- 0;
  t.run_pos <- 0;
  for i = 0 to v.len - 1 do
    vec_push run ~time:(Array.unsafe_get v.t i) ~seq:(Array.unsafe_get v.s i)
      ~h:(Array.unsafe_get v.h i) ~a:(Array.unsafe_get v.a i)
      ~b:(Array.unsafe_get v.b i) ~x:(Array.unsafe_get v.x i)
  done;
  v.len <- 0;
  sort_vec run

let vec_time_span v =
  let mn = ref infinity and mx = ref neg_infinity in
  for i = 0 to v.len - 1 do
    if v.t.(i) < !mn then mn := v.t.(i);
    if v.t.(i) > !mx then mx := v.t.(i)
  done;
  !mx -. !mn

(* Build a fresh bottom rung from the whole far band. *)
let refill_from_far t =
  let start = t.far.t.(0) in
  let span = t.far_max -. start in
  let width =
    if span <= 0.0 then 1.0
    else span /. float_of_int (t.nbuckets - 1)
  in
  let r = fresh_rung t in
  r.start <- start;
  r.width <- width;
  r.inv_width <- 1.0 /. width;
  scatter r t.far;
  t.far_max <- neg_infinity;
  t.open_bound <- start

let rec ensure_opened t =
  if t.run_pos >= t.run.len && t.opened.len = 0 && t.size > 0 then begin
    if t.nrungs = 0 then refill_from_far t
    else begin
      let r = t.rungs.(t.nrungs - 1) in
      if r.cur >= Array.length r.buckets || r.count = 0 then begin
        (* rung exhausted: resume the parent at its next bucket *)
        t.nrungs <- t.nrungs - 1;
        if t.nrungs > 0 then begin
          let parent = t.rungs.(t.nrungs - 1) in
          parent.cur <- parent.cur + 1;
          t.open_bound <- parent.start +. (parent.width *. float_of_int parent.cur)
        end
      end
      else begin
        let v = r.buckets.(r.cur) in
        if v.len = 0 then begin
          r.cur <- r.cur + 1;
          t.open_bound <- r.start +. (r.width *. float_of_int r.cur)
        end
        else if
          v.len > t.split_threshold
          && t.nrungs < max_rungs
          && r.width > 1e-12
          && vec_time_span v > 0.0
        then begin
          (* split: a finer child rung over exactly this bucket *)
          let child = fresh_rung t in
          child.start <- r.start +. (r.width *. float_of_int r.cur);
          child.width <- r.width /. float_of_int t.nbuckets;
          child.inv_width <- 1.0 /. child.width;
          r.count <- r.count - v.len;
          scatter child v
          (* open_bound unchanged: it already equals child.start *)
        end
        else begin
          r.count <- r.count - v.len;
          dump_into_run t v;
          r.cur <- r.cur + 1;
          t.open_bound <- r.start +. (r.width *. float_of_int r.cur)
        end
      end
    end;
    ensure_opened t
  end

(* The overflow heap only ever holds events earlier than everything still
   banded in rungs or far, so the head of the line is the smaller of the
   run cursor and the overflow root. *)
let take_run t =
  if t.run_pos >= t.run.len then false
  else if t.opened.len = 0 then true
  else begin
    let rt = Array.unsafe_get t.run.t t.run_pos
    and ot = Array.unsafe_get t.opened.t 0 in
    rt < ot
    || (rt = ot && Array.unsafe_get t.run.s t.run_pos < Array.unsafe_get t.opened.s 0)
  end

let min_time t =
  if t.size = 0 then invalid_arg "Ladder_queue.min_time: empty";
  ensure_opened t;
  if take_run t then t.run.t.(t.run_pos) else t.opened.t.(0)

let pop t =
  if t.size = 0 then false
  else begin
    ensure_opened t;
    (if take_run t then begin
       let v = t.run and i = t.run_pos in
       t.c_time <- Array.unsafe_get v.t i;
       t.c_seq <- Array.unsafe_get v.s i;
       t.c_h <- Array.unsafe_get v.h i;
       t.c_a <- Array.unsafe_get v.a i;
       t.c_b <- Array.unsafe_get v.b i;
       t.c_x <- Array.unsafe_get v.x i;
       t.run_pos <- i + 1
     end
     else begin
       let v = t.opened in
       t.c_time <- v.t.(0);
       t.c_seq <- v.s.(0);
       t.c_h <- v.h.(0);
       t.c_a <- v.a.(0);
       t.c_b <- v.b.(0);
       t.c_x <- v.x.(0);
       heap_drop_root v
     end);
    t.size <- t.size - 1;
    true
  end

(* Like [pop] gated on the head's time, but with [ensure_opened] and the
   run-vs-overflow choice done once — [pop] would redo both after the
   bound check, and this is the inner loop of the sharded engine's epoch
   drain. *)
let pop_until t ~bound =
  if t.size = 0 then false
  else begin
    ensure_opened t;
    if take_run t then begin
      let v = t.run and i = t.run_pos in
      let time = Array.unsafe_get v.t i in
      if time < bound then begin
        t.c_time <- time;
        t.c_seq <- Array.unsafe_get v.s i;
        t.c_h <- Array.unsafe_get v.h i;
        t.c_a <- Array.unsafe_get v.a i;
        t.c_b <- Array.unsafe_get v.b i;
        t.c_x <- Array.unsafe_get v.x i;
        t.run_pos <- i + 1;
        t.size <- t.size - 1;
        true
      end
      else false
    end
    else begin
      let v = t.opened in
      let time = v.t.(0) in
      if time < bound then begin
        t.c_time <- time;
        t.c_seq <- v.s.(0);
        t.c_h <- v.h.(0);
        t.c_a <- v.a.(0);
        t.c_b <- v.b.(0);
        t.c_x <- v.x.(0);
        heap_drop_root v;
        t.size <- t.size - 1;
        true
      end
      else false
    end
  end

let time t = t.c_time
let seq t = t.c_seq
let handler t = t.c_h
let arg_a t = t.c_a
let arg_b t = t.c_b
let arg_x t = t.c_x
