(** Minimal CSV writing (RFC-4180-style quoting) for exporting figure
    data. *)

val escape : string -> string
(** Quote a field when it contains commas, quotes or newlines. *)

val line : string list -> string

val of_rows : header:string list -> string list list -> string
(** Full document, trailing newline included. *)

val of_series : x_label:string -> Series.t list -> string
(** Same layout as {!Table.of_series}: x column plus one column per
    series; missing points are empty fields. *)

val write_file : path:string -> string -> unit
