(** Ablation and validation experiments beyond the paper's four figures,
    one per design claim DESIGN.md calls out.

    - {!hops} (A1): the O(log N) lookup claim of Section 1, with Chord as
      the related-work comparison point (Section 7).
    - {!eviction} (A2): the counter-based replica removal suggested in
      Sections 2.2 and 6.
    - {!fault_tolerance} (A3): the Section 4 guarantee — fault rate under
      simultaneous node failures for increasing [b].
    - {!proportional_choice} (A5): the Section 3 proportional choice at
      the max-VID live node versus always-own / always-root.
    - {!fluid_vs_des} (V1): the figure engine cross-validated against the
      message-level simulator.
    - {!churn} (A4): request availability under join/leave/fail churn in
      the message-level simulator. *)

module Series = Lesslog_report.Series

val hops :
  ?ms:int list ->
  ?samples:int ->
  ?seed:int ->
  ?with_can:bool ->
  unit ->
  Series.t list
(** Mean lookup hops vs. log2 N for the LessLog tree and Chord fingers
    (all nodes live; [samples] random origin/target pairs per point), plus
    — when [with_can] (default true) — a CAN (d = 2) series showing the
    O(N^(1/2)) contrast. x is [m] = log2 N. *)

val eviction :
  ?config:Experiments.config ->
  ?decay_factor:float ->
  ?min_rate:float ->
  unit ->
  Series.t list
(** For each demand level: replicas created to balance, then replicas
    remaining after the demand decays by [decay_factor] (default 10×) and
    cold replicas (serving under [min_rate], default 5 req/s) are
    removed. Confirms the removal restores most of the fleet without
    breaking balance at the decayed demand. *)

val fault_tolerance :
  ?m:int ->
  ?bs:int list ->
  ?fractions:float list ->
  ?files:int ->
  ?seed:int ->
  unit ->
  Series.t list
(** Fraction of (live origin, file) reads that fault after a fraction of
    the nodes fail {e simultaneously} (no recovery window), for
    b ∈ [bs] (default 0–3). One series per b; x is the failed fraction. *)

val proportional_choice :
  ?config:Experiments.config -> ?dead_fraction:float -> unit -> Series.t list
(** Replicas to balance under the locality model with a heavily dead
    system, for the proportional choice vs. its two biased variants. *)

val fluid_vs_des :
  ?m:int ->
  ?capacity:float ->
  ?rates:float list ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  Series.t list
(** Replica counts from the closed-form balance loop vs. the event-driven
    simulator on the same workload — the two engines must agree on the
    shape (the DES over-provisions slightly under stochastic arrivals). *)

type lifecycle_outcome = {
  created : int;
  evicted : int;
  final_copies : int;
  peak_copies : float;
  lifecycle_faults : int;
  timeline : (float * float) list;  (** Downsampled (time, copies). *)
}

val eviction_lifecycle :
  ?m:int ->
  ?peak:float ->
  ?calm:float ->
  ?peak_duration:float ->
  ?calm_duration:float ->
  ?period:float ->
  ?min_rate:float ->
  ?seed:int ->
  unit ->
  lifecycle_outcome
(** A2 in message-level form: a flash crowd builds the replica fleet, the
    crowd disperses, and each node's counter-based mechanism (running on
    its own decayed access counters — still logless) trims the fleet. *)

val lifecycle_series : lifecycle_outcome -> Series.t list
(** The copies-over-time curve, for plotting. *)

val update_cost :
  ?m:int -> ?replica_levels:int list -> ?seed:int -> unit -> Series.t list
(** A6: messages per UPDATEFILE as the replica population grows (x is the
    number of copies). The children-list broadcast prunes at non-holders,
    so its cost tracks the copy count; a naive flood pays the full live
    population every time. *)

type session_outcome = {
  mean_session : float;
  availability : float;
  served : int;
  faults : int;
  joins : int;
  leaves : int;
  fails : int;
  replicas_created : int;
  control_messages : int;  (** Status-word broadcast traffic. *)
  file_transfers : int;  (** Files relocated by the Section 5 mechanism. *)
}

val session_churn :
  ?m:int ->
  ?rate:float ->
  ?duration:float ->
  ?mean_sessions:float list ->
  ?seed:int ->
  unit ->
  session_outcome list
(** A7 (the paper's future work): the event-driven simulator under
    realistic alternating session/downtime churn ({!Lesslog_des.Churn_trace}).
    Shorter sessions mean harsher churn. *)

type churn_outcome = {
  events_per_min : float;
  availability : float;  (** served / (served + faults). *)
  faults : int;
  served : int;
  replicas_created : int;
}

val churn :
  ?m:int ->
  ?rate:float ->
  ?duration:float ->
  ?events_per_min:float list ->
  ?seed:int ->
  unit ->
  churn_outcome list
(** Availability under leave/fail/join churn at increasing intensity
    (b = 0, so failures may lose unreplicated files — the paper's stated
    limitation). *)

val churn_series : churn_outcome list -> Series.t list
(** Availability vs. churn intensity as a plottable series. *)
