(* Domain-parallel DES: one packed-core [Engine] per shard, conservative
   epoch synchronization, deterministic at any worker count.

   The decomposition leans on a lookahead [L]: every cross-shard message
   is delivered at least [L] of simulated time after it is sent (the
   minimum inter-shard delivery delay — a network hop in the overlay
   simulators). An epoch is then the window [T, B) where [T] is the
   earliest pending event across all shards and [B = T + L]: a message
   sent during the epoch arrives at [>= T + L = B], so no shard can be
   influenced by another within the window and all shards may drain
   their own queues concurrently.

   Cross-shard sends go to per-(src, dst) mailboxes — single-producer
   by construction, since a shard's events execute on exactly one worker
   during the epoch and nobody reads a mailbox until the barrier. At the
   barrier the coordinator drains every mailbox in a fixed order —
   destination shard, then source shard, then FIFO — into the
   destination engines, whose monotone sequence counters then assign the
   same tie-breaking seq to the same message regardless of how many
   domains executed the epoch. Together with per-shard sequential
   draining this makes the full event sequence — order, timestamps,
   payloads — bit-identical at any domain count, including 1.

   Rare whole-system actions (membership churn, phase changes) run as
   {e global events}: the epoch window is clipped so it never spans one,
   and the action runs sequentially at the barrier with all shard clocks
   lined up on its timestamp. *)

module Par = Lesslog_parallel.Par

type mailbox = {
  mutable t : float array;
  mutable h : int array;
  mutable a : int array;
  mutable b : int array;
  mutable x : float array;
  mutable len : int;
}

let mb_make () =
  { t = [||]; h = [||]; a = [||]; b = [||]; x = [||]; len = 0 }

let mb_push mb ~time ~h ~a ~b ~x =
  if mb.len = Array.length mb.t then begin
    let cap = max 16 (2 * mb.len) in
    let grow_f old =
      let n = Array.make cap 0.0 in
      Array.blit old 0 n 0 mb.len;
      n
    and grow_i old =
      let n = Array.make cap 0 in
      Array.blit old 0 n 0 mb.len;
      n
    in
    mb.t <- grow_f mb.t;
    mb.h <- grow_i mb.h;
    mb.a <- grow_i mb.a;
    mb.b <- grow_i mb.b;
    mb.x <- grow_f mb.x
  end;
  let i = mb.len in
  mb.t.(i) <- time;
  mb.h.(i) <- h;
  mb.a.(i) <- a;
  mb.b.(i) <- b;
  mb.x.(i) <- x;
  mb.len <- i + 1

type t = {
  shards : Engine.t array;
  lookahead : float;
  mail : mailbox array;  (* src * n + dst *)
  mutable epoch : int;
  mutable cross_sends : int;  (* drained mailbox messages, coordinator-only *)
}

let create ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Sharded_engine.create: shards";
  if not (lookahead > 0.0) then invalid_arg "Sharded_engine.create: lookahead";
  {
    shards = Array.init shards (fun _ -> Engine.create ());
    lookahead;
    mail = Array.init (shards * shards) (fun _ -> mb_make ());
    epoch = 0;
    cross_sends = 0;
  }

let shard_count t = Array.length t.shards
let engine t i = t.shards.(i)
let lookahead t = t.lookahead
let now t ~shard = Engine.now t.shards.(shard)
let epoch t = t.epoch
let cross_sends t = t.cross_sends

let events_executed t =
  Array.fold_left (fun acc e -> acc + Engine.events_executed e) 0 t.shards

let pending t =
  let queued = Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.shards
  and mailed = Array.fold_left (fun acc mb -> acc + mb.len) 0 t.mail in
  queued + mailed

let send t ~src ~dst ~delay ~h ~a ~b ~x =
  if src = dst then Engine.post t.shards.(src) ~delay ~h ~a ~b ~x
  else begin
    if delay < t.lookahead then
      invalid_arg "Sharded_engine.send: cross-shard delay below lookahead";
    let time = Engine.now t.shards.(src) +. delay in
    mb_push t.mail.((src * Array.length t.shards) + dst) ~time ~h ~a ~b ~x
  end

(* Barrier hand-off, coordinator only: destination-major, then source,
   then FIFO — the fixed merge order that pins tie-breaking seqs. *)
let flush_mail t =
  let n = Array.length t.shards in
  for dst = 0 to n - 1 do
    let e = t.shards.(dst) in
    for src = 0 to n - 1 do
      let mb = t.mail.((src * n) + dst) in
      for i = 0 to mb.len - 1 do
        Engine.post_at e ~time:mb.t.(i) ~h:mb.h.(i) ~a:mb.a.(i) ~b:mb.b.(i)
          ~x:mb.x.(i)
      done;
      t.cross_sends <- t.cross_sends + mb.len;
      mb.len <- 0
    done
  done

let min_next t =
  Array.fold_left
    (fun acc e ->
      match Engine.next_time e with
      | None -> acc
      | Some ti -> ( match acc with None -> Some ti | Some a -> Some (Float.min a ti)))
    None t.shards

let advance_all t ~time =
  Array.iter (fun e -> Engine.advance_to e ~time) t.shards

let run ?until ?(globals = []) ?(domains = 1) t =
  if domains < 1 then invalid_arg "Sharded_engine.run: domains";
  let n = Array.length t.shards in
  let workers = max 1 (min domains n) in
  let pool = if workers = 1 then None else Some (Par.ensure_pool workers) in
  let in_horizon time =
    match until with None -> true | Some u -> time <= u
  in
  flush_mail t;
  let globals = ref globals in
  let continue = ref true in
  while !continue do
    let tmin = min_next t in
    (* Fire every global action due at or before the event frontier:
       sequential, full access to all shards, then a mailbox flush so
       anything it posted is queued before the window is chosen. *)
    (match (!globals, tmin) with
    | (g_at, fire) :: rest, _
      when in_horizon g_at
           && (match tmin with None -> true | Some ti -> g_at <= ti) ->
        globals := rest;
        advance_all t ~time:g_at;
        fire ();
        flush_mail t
    | _, None ->
        (match until with Some u -> advance_all t ~time:u | None -> ());
        continue := false
    | _, Some ti when not (in_horizon ti) ->
        (match until with Some u -> advance_all t ~time:u | None -> ());
        continue := false
    | _, Some ti ->
        (* One epoch: [ti, bound) — clipped so it spans neither the
           horizon (events at exactly [until] still run: Float.succ
           turns the strict bound inclusive) nor the next global. *)
        let bound = ti +. t.lookahead in
        let bound =
          match until with None -> bound | Some u -> Float.min bound (Float.succ u)
        in
        let bound =
          match !globals with
          | (g_at, _) :: _ when in_horizon g_at -> Float.min bound g_at
          | _ -> bound
        in
        t.epoch <- t.epoch + 1;
        (match pool with
        | None ->
            for s = 0 to n - 1 do
              Engine.drain_below t.shards.(s) ~bound
            done
        | Some pool ->
            (* The shared pool only grows, so it may be wider than
               [workers]; the stride must cover each shard exactly once
               or two workers race on one engine. *)
            Par.Pool.run pool (fun w ->
                if w < workers then begin
                  let s = ref w in
                  while !s < n do
                    Engine.drain_below t.shards.(!s) ~bound;
                    s := !s + workers
                  done
                end));
        flush_mail t)
  done
