(** The pluggable overlay contract: everything the replication core and
    the simulators need from a lookup substrate, as a first-class value.

    LessLog's claim (PAPER.md §1.4) is that logless replication rides on
    the lookup structure alone. This record is that boundary made
    explicit: {!Lesslog.Ops} ([get_via]/[insert_via]/[replicate]) and the
    simulators ([Des_sim]/[Fault_sim] in substrate mode) speak only this
    interface, so the identical protocol code, [lib/net] reliability
    layer, and [Obs] span attribution run over the native binomial trees,
    Chord, Pastry, or CAN.

    {2 Determinism obligations}

    Implementations are used inside deterministic simulations that are
    replayed, diffed event-for-event, and pinned by golden digests
    ([lib/check], [test/test_des.ml]). An implementor must therefore
    guarantee:

    - {b No hidden RNG.} Every answer is a pure function of (the key, the
      queried node, the current membership word, and construction-time
      parameters). Randomized construction (e.g. CAN's join points) must
      draw from a seed derived deterministically from the parameters —
      never from global state, the clock, or [Random]. The only sanctioned
      randomness at query time is the [rng] explicitly threaded into
      {!field-replica_target}, and implementations must draw from it only
      when they actually randomize (a draw consumes stream state that
      other consumers would otherwise see).
    - {b Epoch semantics.} Membership changes are observed through
      {!Lesslog_membership.Status_word}: its [epoch] bumps on every
      effective mutation. Derived routing state (rings, routing tables)
      must be revalidated against the epoch — {!epoch_cached} packages the
      standard lazy-rebuild idiom — or consult liveness bit-by-bit at
      query time, as the CAN adapter does. Answers may never reflect a
      stale membership view once the epoch has moved.
    - {b Termination.} Following {!field-next_hop} from any live node must
      reach a [None] in finitely many steps, with no visited-set help from
      the caller (messages are stateless). The simulators additionally cap
      walks at [hop cap] hops and count an overflow as a routing fault,
      but a correct substrate never hits the cap.
    - {b Totality.} [next_hop]/[owner]/[neighbors] must not raise on any
      live population, including a node that has just joined or an empty
      system ([owner] = [None], [neighbors] = [[]]). A message can be
      in flight from a node that has since died; routing from such a
      stale sender must still answer, not raise.

    Implementations satisfying these obligations are automatically
    compatible with the [lib/check] oracles and (for the native adapter)
    the golden trace digests; the shared conformance suite in
    [test/test_substrate.ml] property-checks the first three obligations
    for every adapter. *)

open Lesslog_id

(** How churn is repaired on this substrate. *)
type membership_style =
  | Self_organized
      (** The native LessLog discipline: the simulators run the paper's
          Section 5 join/leave/fail procedures ({!Lesslog.Self_org})
          verbatim — required for bit-for-bit golden-digest equality. *)
  | Generic
      (** Overlay-agnostic repair driven by the key registry: on a
          membership event the simulator re-homes each key to its current
          {!field-owner} ([Ops.on_membership_via]). *)

type t = {
  name : string;  (** Short identifier used in benches and traces. *)
  next_hop : key:string -> Pid.t -> Pid.t option;
      (** One forwarding hop of a request for [key] at the given node;
          [None] when the node is the end of the route (the responsible
          node — or, on substrates without {!field-guaranteed_delivery},
          a greedy dead end). *)
  owner : key:string -> Pid.t option;
      (** The live node currently responsible for [key] — where
          [insert_via] places the inserted copy and where routing is
          expected to terminate. [None] iff no node is live. *)
  neighbors : key:string -> Pid.t -> Pid.t list;
      (** The node's live overlay neighbors (ring successor/predecessor,
          leaf set, zone neighbors, children list...). Key-dependent only
          on the native substrate, whose topology is a per-key tree;
          overlay adapters ignore [key]. *)
  symmetric_neighbors : bool;
      (** Whether [q ∈ neighbors p ⇔ p ∈ neighbors q] is guaranteed; the
          conformance suite checks symmetry exactly when this is set. *)
  guaranteed_delivery : bool;
      (** Whether a route from a live node always terminates at
          {!field-owner}. CAN sets this [false]: greedy geometric routing
          can dead-end when the zone owning the target point is dead. *)
  membership : membership_style;
  notify : unit -> unit;
      (** Failure/membership notification: called by the simulators after
          each batch of status-word mutations. Epoch-cached adapters may
          treat it as a no-op (the next query revalidates); an eager
          implementation may rebuild here. *)
  replica_target :
    rng:Lesslog_prng.Rng.t ->
    holds:(Pid.t -> bool) ->
    overloaded:Pid.t ->
    key:string ->
    Pid.t option;
      (** Replica placement for an overloaded holder: a live node not yet
          holding a copy ([holds]), or [None] when every candidate holds
          one. The native adapter implements the paper's children-list
          walk with the Section 3 proportional choice; overlay adapters
          use {!neighbor_replica_target}. Must draw from [rng] only when
          actually randomizing. *)
}

val route_path :
  t -> key:string -> origin:Pid.t -> max_hops:int -> Pid.t list * bool
(** The full route of a request from [origin]: origin-first node list
    ending at the terminal node, following {!field-next_hop}. The boolean
    is [true] when the route terminated on its own and [false] when it was
    cut by [max_hops] (only possible on a non-conforming substrate). *)

val neighbor_replica_target :
  neighbors:(key:string -> Pid.t -> Pid.t list) ->
  rng:Lesslog_prng.Rng.t ->
  holds:(Pid.t -> bool) ->
  overloaded:Pid.t ->
  key:string ->
  Pid.t option
(** The generic neighbor-set placement policy shared by the overlay
    adapters: a uniform [rng] draw over the overloaded node's non-holding
    live neighbors (no draw when zero or one candidate). Mirrors the
    successor-list / leaf-set replication of the DHT literature
    (PAPERS.md, cs/0507072). *)

val epoch_cached :
  Lesslog_membership.Status_word.t -> build:(unit -> 'a) -> unit -> 'a
(** [epoch_cached status ~build] is a thunk returning [build ()] memoized
    per status-word epoch: the first call at each epoch rebuilds, later
    calls at the same epoch return the cached value. The standard way for
    an adapter to keep a derived ring/table consistent with membership. *)
