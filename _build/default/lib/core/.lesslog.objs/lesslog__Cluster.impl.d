lib/core/cluster.ml: Array Hashtbl Lesslog_hash Lesslog_id Lesslog_membership Lesslog_ptree Lesslog_storage List Params Pid
