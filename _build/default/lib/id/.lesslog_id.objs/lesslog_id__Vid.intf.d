lib/id/vid.mli: Format Params
