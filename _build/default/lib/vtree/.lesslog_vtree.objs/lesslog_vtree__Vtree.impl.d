lib/vtree/vtree.ml: Lesslog_bits Lesslog_id List Params Vid
