(** The paper's {e distributed} file-location procedures (Section 5).

    {!Self_org} drives recovery from the simulator's global key registry
    for efficiency; a real node has no such table. This module implements
    what the paper actually prescribes, using only information a node can
    gather: the status word, ψ, children-list examination of the lookup
    trees, and each node's local knowledge of which of its copies are
    inserted versus replicated. The test suite checks these procedures
    find exactly the same files as the registry-driven mechanism. *)

open Lesslog_id
module File_store = Lesslog_storage.File_store

val classify : Cluster.t -> at:Pid.t -> key:string -> File_store.origin
(** Section 5.2's rule, computed from ψ and the status word alone: a copy
    of [key] held at [at] is {e inserted} iff [at] is one of the key's
    current insertion targets (the target itself, or the most-offspring
    live node of a dead target's (sub)tree); otherwise it is a replica.
    Agrees with the stored origin tag on any trace of inserts, joins and
    voluntary leaves ([b = 0] failures can orphan files, which is exactly
    the ambiguity the paper concedes). *)

val inserted_files : Cluster.t -> at:Pid.t -> string list
(** The files a leaving node must re-insert (Section 5.2), found by
    classifying every key in its local store. Sorted. *)

val join_candidates : Cluster.t -> joining:Pid.t -> (string * Pid.t) list
(** Section 5.1's search, run after the joiner is registered live: for
    each of the [2^m] lookup trees, examine the joiner's children list —
    or, when the joiner became the tree's max-VID live node, the previous
    max-VID live node — and report every inserted copy whose ψ-target is
    that tree's root, with its current holder. Only supports [b = 0] (the
    per-subtree generalization follows by applying it within each
    subtree). @raise Invalid_argument when [b > 0] or the joiner is
    dead. *)
