(** One entry point per figure of the paper's evaluation (Section 6).

    The setup mirrors the paper: [m = 10] (a 1024-slot identifier space),
    [b = 0], per-node capacity 100 requests/s, a single hot file, and
    total demand swept from 1,000 to 20,000 requests/s. Each experiment
    returns one {!Lesslog_report.Series.t} per curve of the figure; y is
    the number of replicas created to reach a load-balanced system.

    Every point carries an independently seeded RNG, so sweeps are
    reproducible and safe to parallelize over domains. *)

module Series = Lesslog_report.Series

type config = {
  m : int;
  capacity : float;  (** Max requests/s a node may serve. *)
  rates : float list;  (** Total-demand sweep (requests/s). *)
  trials : int;  (** Runs averaged per point (fresh seeds). *)
  seed : int;
  hot_fraction : float;  (** Locality model: fraction of hot nodes. *)
  hot_share : float;  (** Locality model: demand share of hot nodes. *)
  domains : int;  (** Worker domains for the sweep (1 = sequential). *)
}

val default : config
(** The paper's parameters: m = 10, capacity = 100, rates
    1,000–20,000 step 1,000, 3 trials, hot 20%/80%. *)

val quick : config
(** A scaled-down configuration (m = 7, 5 sweep points, 1 trial) for smoke
    tests and CI. *)

type demand_model = Even | Locality

val hot_file : string
(** The key used for the single hot file in every figure. *)

val one_trial :
  config ->
  rng:Lesslog_prng.Rng.t ->
  dead_fraction:float ->
  demand_model:demand_model ->
  policy:Lesslog_flow.Policy.t ->
  rate:float ->
  float
(** One run: fresh cluster, [dead_fraction] of the slots killed, one file
    inserted, demand applied, balanced; returns the replica count. *)

val replicas_to_balance :
  config ->
  rng:Lesslog_prng.Rng.t ->
  dead_fraction:float ->
  demand_model:demand_model ->
  policy:Lesslog_flow.Policy.t ->
  rate:float ->
  float
(** {!one_trial} averaged over [config.trials] runs seeded from [rng]. *)

val fig5 : ?config:config -> unit -> Series.t list
(** Figure 5: evenly-distributed load; one series per policy
    (log-based, LessLog, random). *)

val fig6 : ?config:config -> unit -> Series.t list
(** Figure 6: evenly-distributed load on LessLog with 10%, 20% and 30%
    dead nodes. *)

val fig7 : ?config:config -> unit -> Series.t list
(** Figure 7: the locality model (80% of requests from 20% of nodes);
    one series per policy. *)

val fig8 : ?config:config -> unit -> Series.t list
(** Figure 8: the locality model on LessLog with dead nodes. *)

val render :
  title:string -> x_label:string -> y_label:string -> Series.t list -> string
(** Table plus ASCII plot, ready to print. *)
