lib/workload/catalog.mli: Demand Lesslog_membership Lesslog_prng
