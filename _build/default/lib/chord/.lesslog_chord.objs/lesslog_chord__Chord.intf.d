lib/chord/chord.mli: Lesslog_id Params Pid
