open Lesslog_id
module Engine = Lesslog_sim.Engine
module Latency = Lesslog_net.Latency
module Overlay = Lesslog_net.Overlay
module Rng = Lesslog_prng.Rng

let params = Params.create ~m:4 ()
let pid = Pid.unsafe_of_int

(* --- Latency ------------------------------------------------------------ *)

let test_latency_constant () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10 do
    Alcotest.(check (float 1e-9)) "constant" 0.05
      (Latency.sample (Latency.Constant 0.05) rng)
  done

let test_latency_uniform_bounds () =
  let rng = Rng.create ~seed:2 in
  let model = Latency.Uniform { lo = 0.01; hi = 0.09 } in
  for _ = 1 to 1000 do
    let d = Latency.sample model rng in
    Alcotest.(check bool) "in bounds" true (d >= 0.01 && d <= 0.09)
  done

let test_latency_exponential_floor () =
  let rng = Rng.create ~seed:3 in
  let model = Latency.Exponential { mean = 0.02; floor = 0.005 } in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above floor" true (Latency.sample model rng >= 0.005)
  done

let test_latency_means () =
  Alcotest.(check (float 1e-9)) "constant" 0.1 (Latency.mean (Latency.Constant 0.1));
  Alcotest.(check (float 1e-9)) "uniform" 0.05
    (Latency.mean (Latency.Uniform { lo = 0.0; hi = 0.1 }));
  Alcotest.(check (float 1e-9)) "exp" 0.025
    (Latency.mean (Latency.Exponential { mean = 0.02; floor = 0.005 }))

(* --- Overlay ------------------------------------------------------------ *)

let make_overlay ?loss ?latency () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:4 in
  let overlay = Overlay.create ~engine ~rng ?latency ?loss params in
  (engine, overlay)

let test_overlay_delivery () =
  let engine, overlay = make_overlay ~latency:(Latency.Constant 0.1) () in
  let received = ref [] in
  Overlay.set_handler overlay (pid 3) (fun ~src msg ->
      received := (Pid.to_int src, msg, Engine.now engine) :: !received);
  Overlay.send overlay ~src:(pid 1) ~dst:(pid 3) "hello";
  Alcotest.(check int) "not yet delivered" 0 (List.length !received);
  Engine.run engine;
  Alcotest.(check (list (triple int string (float 1e-9))))
    "delivered with latency"
    [ (1, "hello", 0.1) ]
    !received;
  Alcotest.(check int) "sent" 1 (Overlay.messages_sent overlay);
  Alcotest.(check int) "delivered" 1 (Overlay.messages_delivered overlay)

let test_overlay_no_handler_drops () =
  let engine, overlay = make_overlay () in
  Overlay.send overlay ~src:(pid 1) ~dst:(pid 9) "void";
  Engine.run engine;
  Alcotest.(check int) "dropped" 1 (Overlay.messages_dropped overlay);
  Alcotest.(check int) "not delivered" 0 (Overlay.messages_delivered overlay)

let test_overlay_clear_handler () =
  let engine, overlay = make_overlay () in
  let count = ref 0 in
  Overlay.set_handler overlay (pid 2) (fun ~src:_ _ -> incr count);
  Overlay.send overlay ~src:(pid 0) ~dst:(pid 2) ();
  Engine.run engine;
  Overlay.clear_handler overlay (pid 2);
  Overlay.send overlay ~src:(pid 0) ~dst:(pid 2) ();
  Engine.run engine;
  Alcotest.(check int) "only first delivered" 1 !count;
  Alcotest.(check int) "second dropped" 1 (Overlay.messages_dropped overlay)

let test_overlay_loss () =
  let engine, overlay = make_overlay ~loss:0.5 () in
  let count = ref 0 in
  Overlay.set_handler overlay (pid 2) (fun ~src:_ _ -> incr count);
  for _ = 1 to 1000 do
    Overlay.send overlay ~src:(pid 0) ~dst:(pid 2) ()
  done;
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "roughly half delivered (%d)" !count)
    true
    (!count > 400 && !count < 600);
  Alcotest.(check int) "accounting adds up" 1000
    (Overlay.messages_delivered overlay + Overlay.messages_dropped overlay)

let test_overlay_in_flight_ordering () =
  (* Two messages with different latencies arrive in latency order, not
     send order. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let overlay = Overlay.create ~engine ~rng ~latency:(Latency.Constant 0.0) params in
  ignore overlay;
  let overlay_slow =
    Overlay.create ~engine ~rng ~latency:(Latency.Constant 0.2) params
  in
  let overlay_fast =
    Overlay.create ~engine ~rng ~latency:(Latency.Constant 0.1) params
  in
  let log = ref [] in
  Overlay.set_handler overlay_slow (pid 1) (fun ~src:_ m -> log := m :: !log);
  Overlay.set_handler overlay_fast (pid 1) (fun ~src:_ m -> log := m :: !log);
  Overlay.send overlay_slow ~src:(pid 0) ~dst:(pid 1) "slow";
  Overlay.send overlay_fast ~src:(pid 0) ~dst:(pid 1) "fast";
  Engine.run engine;
  Alcotest.(check (list string)) "latency order" [ "fast"; "slow" ] (List.rev !log)

let () =
  Alcotest.run "net"
    [
      ( "latency",
        [
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "uniform bounds" `Quick test_latency_uniform_bounds;
          Alcotest.test_case "exponential floor" `Quick
            test_latency_exponential_floor;
          Alcotest.test_case "means" `Quick test_latency_means;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "delivery" `Quick test_overlay_delivery;
          Alcotest.test_case "no handler drops" `Quick
            test_overlay_no_handler_drops;
          Alcotest.test_case "clear handler" `Quick test_overlay_clear_handler;
          Alcotest.test_case "loss injection" `Quick test_overlay_loss;
          Alcotest.test_case "latency ordering" `Quick
            test_overlay_in_flight_ordering;
        ] );
    ]
