(* `bench des`: throughput of the packed event core.

   Part 1 pits the scheduler hot path against an in-binary replica of the
   engine this repo shipped before the packed core: one message record
   plus one delivery closure allocated per event (the old Overlay.send
   pattern), in a binary heap ordered by polymorphic [compare]. Both
   engines consume the identical pre-drawn delay stream, so the ratio
   isolates queue, dispatch and allocation cost. The comparison runs at
   two pending-set populations — one message chain per identifier-space
   slot at m = 10 (1,024) and at m = 16 (65,536). The heap pays
   O(log n) polymorphic comparisons per event while the ladder stays
   amortized O(1), so the speedup grows with the population; the 5x
   acceptance gate is enforced at the m = 16 scale-up population.

   Part 2 times the full event-driven simulator on the packed core: a
   throughput run at the paper's m = 10 and a completion run at m = 16
   (65,536 slots), the scale-up target.

   Results append to BENCH_des.json (written to $LESSLOG_BENCH_OUT or the
   working directory); LESSLOG_BENCH_QUICK=1 shrinks the event budgets for
   CI smoke. *)

module Engine = Lesslog_sim.Engine
module Heap = Lesslog_sim.Heap
module Rng = Lesslog_prng.Rng
module E = Lesslog_harness.Experiments
module Bench_json = Lesslog_report.Bench_json

(* The pre-packed-core engine, verbatim: closure events in a heap under
   polymorphic compare. Kept in the benchmark binary only, as the
   baseline of record. *)
module Baseline = struct
  type event = { time : float; seq : int; action : unit -> unit }

  type t = {
    queue : event Heap.t;
    mutable clock : float;
    mutable next_seq : int;
    mutable executed : int;
  }

  let compare_event a b =
    match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

  let create () =
    {
      queue = Heap.create ~cmp:compare_event;
      clock = 0.0;
      next_seq = 0;
      executed = 0;
    }

  let schedule t ~delay action =
    Heap.push t.queue { time = t.clock +. delay; seq = t.next_seq; action };
    t.next_seq <- t.next_seq + 1

  let run ~max_events t =
    let budget = ref max_events in
    let continue = ref true in
    while !continue && !budget > 0 do
      match Heap.pop t.queue with
      | None -> continue := false
      | Some ev ->
          t.clock <- ev.time;
          t.executed <- t.executed + 1;
          ev.action ();
          decr budget
    done
end

(* Pre-drawn delay stream shared by both engines: the workload is
   identical event for event, so only scheduling cost differs. *)
let delays =
  let rng = Rng.create ~seed:11 in
  Array.init 65536 (fun _ -> Rng.exponential rng ~rate:1.0)

(* Message-passing hold model: [chains] concurrent self-rescheduling
   message chains carrying an (origin, hops, issued) payload. *)

type msg = Get of { origin : int; hops : int; issued : float }

let baseline_events_per_sec ~chains ~events =
  let eng = Baseline.create () in
  let di = ref 0 in
  let next_delay () =
    di := (!di + 1) land 65535;
    Array.unsafe_get delays !di
  in
  (* old style: every hop allocates the next message and a fresh closure *)
  let rec deliver msg =
    match msg with
    | Get { origin; hops; issued } ->
        let m = Get { origin; hops = hops + 1; issued } in
        Baseline.schedule eng ~delay:(next_delay ()) (fun () -> deliver m)
  in
  for i = 1 to chains do
    let m = Get { origin = i; hops = 0; issued = 0.0 } in
    Baseline.schedule eng ~delay:(next_delay ()) (fun () -> deliver m)
  done;
  let t0 = Unix.gettimeofday () in
  Baseline.run ~max_events:events eng;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int eng.Baseline.executed /. dt

let core_events_per_sec ~chains ~events =
  let eng = Engine.create () in
  let di = ref 0 in
  let next_delay () =
    di := (!di + 1) land 65535;
    Array.unsafe_get delays !di
  in
  let h = ref 0 in
  h :=
    Engine.register_handler eng (fun a b x ->
        Engine.post eng ~delay:(next_delay ()) ~h:!h ~a ~b:(b + 1) ~x);
  for i = 1 to chains do
    Engine.post eng ~delay:(next_delay ()) ~h:!h ~a:i ~b:0 ~x:0.0
  done;
  let t0 = Unix.gettimeofday () in
  Engine.run ~max_events:events eng;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int (Engine.events_executed eng) /. dt

(* [Gc.compact] between measurements: the baseline leaves a large boxed
   heap behind, and letting it bleed into the next run's GC costs would
   bias the comparison. *)
let measured f =
  Gc.compact ();
  let r = f () in
  Gc.compact ();
  r

let sched_comparison ~chains ~events =
  ignore (baseline_events_per_sec ~chains ~events:(events / 10));
  let baseline = measured (fun () -> baseline_events_per_sec ~chains ~events) in
  ignore (core_events_per_sec ~chains ~events:(events / 10));
  let core = measured (fun () -> core_events_per_sec ~chains ~events) in
  (baseline, core)

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

let run () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  let events = if quick then 300_000 else 1_000_000 in
  print_endline "bench des: packed event core vs closure+heap baseline";
  print_endline "-----------------------------------------------------";
  Printf.printf
    "message hold model, %d events per engine, chains = one per slot\n%!"
    events;
  let chains10 = 1 lsl 10 and chains16 = 1 lsl 16 in
  let base10, core10 = sched_comparison ~chains:chains10 ~events in
  Printf.printf
    "m=10 population (%5d chains): baseline %10.0f ev/s   core %10.0f \
     ev/s   %.2fx\n%!"
    chains10 base10 core10 (core10 /. base10);
  let base16, core16 = sched_comparison ~chains:chains16 ~events in
  Printf.printf
    "m=16 population (%5d chains): baseline %10.0f ev/s   core %10.0f \
     ev/s   %.2fx (target >= 5x)\n\n%!"
    chains16 base16 core16 (core16 /. base16);
  let m10 =
    E.des_point ~m:10
      ~rate_per_node:(if quick then 1.0 else 2.0)
      ~duration:(if quick then 2.0 else 5.0)
      ~capacity:100.0 ~seed:42
  in
  Printf.printf
    "des m=10: %d events in %.3fs = %.3g events/s (served %d, replicas %d)\n%!"
    m10.E.events m10.E.secs m10.E.events_per_sec m10.E.served m10.E.replicas;
  let m16 =
    E.des_point ~m:16
      ~rate_per_node:(if quick then 0.5 else 2.0)
      ~duration:(if quick then 0.5 else 2.0)
      ~capacity:100.0 ~seed:42
  in
  Printf.printf
    "des m=16: %d events over %d nodes in %.3fs = %.3g events/s (served %d, \
     replicas %d)\n\n%!"
    m16.E.events m16.E.nodes m16.E.secs m16.E.events_per_sec m16.E.served
    m16.E.replicas;
  Bench_json.write
    ~path:(out_file "BENCH_des.json")
    [
      ("des/m10_baseline_sched_events_per_sec", base10);
      ("des/m10_core_sched_events_per_sec", core10);
      ("des/m10_sched_speedup", core10 /. base10);
      ("des/m16_baseline_sched_events_per_sec", base16);
      ("des/m16_core_sched_events_per_sec", core16);
      ("des/m16_sched_speedup", core16 /. base16);
      ("des/m10_des_events_per_sec", m10.E.events_per_sec);
      ("des/m16_des_events_per_sec", m16.E.events_per_sec);
      ("des/m16_wall_s", m16.E.secs);
    ];
  Printf.printf "wrote %s\n" (out_file "BENCH_des.json");
  if core16 /. base16 < 5.0 then begin
    Printf.eprintf
      "bench des: FAIL: m=16 scale-up speedup %.2fx below the 5x target\n"
      (core16 /. base16);
    exit 1
  end
