(** Domain-parallel discrete-event engine: one packed-core {!Engine} per
    shard, cross-shard events through per-pair single-producer
    mailboxes, conservative epoch synchronization.

    {2 Model}

    Shards are fixed at creation; workers (OCaml domains) are chosen at
    {!run} time and only decide which domain drains which shard — never
    what happens. The contract callers must uphold:

    - handlers registered on shard [s]'s engine touch only shard-[s]
      state (plus read-only shared data);
    - events destined for another shard go through {!send} with a delay
      of at least the engine's [lookahead].

    Under that contract the event sequence — order, timestamps,
    payloads, per-engine tie-breaking seqs — is bit-identical at any
    domain count, including 1, and with {!run}'s [fuse] on or off: an
    epoch spans [[T, T + lookahead)] where [T] is the earliest pending
    event anywhere, so a cross-shard message (sent at [>= T], delivered
    after [>= lookahead]) can never land in the epoch that issued it;
    and mailboxes are drained in a fixed order (destination shard, then
    source shard, then FIFO), so destination seq assignment does not
    depend on worker interleaving.

    {2 Execution shape}

    {!run} dispatches one pool job per {e phase}, not per epoch. Each
    worker owns a fixed contiguous block of shards; within a phase it
    first delivers the previous window's mail addressed to its own
    destination shards (batched, one {!Engine.post_batch} per nonempty
    mailbox), then drains its shards below the window bound, then
    publishes its local minimum next-event time through a pre-sized
    per-worker slot. Workers meet at an in-job {!Par.Barrier} where the
    last arriver folds the minima and — when the window ended with every
    mailbox empty and neither a global action nor the horizon due —
    opens the next epoch window in place ({e epoch fusion}): a run of
    [k] quiet epochs costs one pool dispatch plus [k] barrier crossings.
    Cross-shard traffic, a due global, or the horizon ends the phase.
    Mailboxes are double-buffered by window parity so delivery of the
    previous window's mail never touches the buffers the current
    window's sends append to. *)

type t

val create : shards:int -> lookahead:float -> unit -> t
(** [shards >= 1]; [lookahead > 0] is the minimum cross-shard delivery
    delay (the epoch width). *)

val shard_count : t -> int
val lookahead : t -> float

val engine : t -> int -> Engine.t
(** Shard [i]'s engine: register handlers and post shard-local events
    directly on it. Handler ids are per-engine; registering the same
    handlers in the same order on every shard keeps ids aligned. *)

val now : t -> shard:int -> float
(** Shard-local clock (shards within an epoch advance independently). *)

val epoch : t -> int
(** Completed-or-running epoch count — the mailbox-ordering property
    ("no event is delivered in its issuing epoch") is observable by
    stamping {!send} payloads with this. *)

val phases : t -> int
(** Pool dispatches so far. [epoch t / phases t] is the fusion factor:
    how many epoch windows the average phase executed in place. Equal to
    {!epoch} when {!run} is called with [~fuse:false]. *)

val send :
  t -> src:int -> dst:int -> delay:float -> h:int -> a:int -> b:int ->
  x:float -> unit
(** Cross-shard post: deliver [(h, a, b, x)] to shard [dst] at
    [now ~shard:src + delay], where [h] names a handler registered on
    the {e destination} shard's engine. [src = dst] degrades to a local
    {!Engine.post}.
    @raise Invalid_argument when [src <> dst] and [delay < lookahead]. *)

val run :
  ?until:float ->
  ?globals:(float * (unit -> unit)) list ->
  ?domains:int ->
  ?fuse:bool ->
  t ->
  unit
(** Drive all shards to completion (or to [until], inclusive, clamping
    every shard clock there) using up to [domains] pool workers
    (default 1; capped at the shard count; the shared {!Par.ensure_pool}
    supplies the domains).

    [fuse] (default [true]) enables epoch fusion — consecutive quiet
    windows executed inside one pool dispatch. [~fuse:false] forces one
    dispatch per epoch; results are identical either way (the knob
    exists for differential tests and overhead measurements).

    [globals] is a time-sorted list of whole-system actions (membership
    churn, phase switches) that run {e sequentially at a barrier}: the
    epoch window is clipped so it never spans one, every shard clock is
    advanced to the action's time, and the action may touch any shard
    and post or {!send} freely. A global due at the same instant as a
    queued event runs before it. Actions past [until] do not fire. *)

val pending : t -> int
(** Events queued across all shards and mailboxes. *)

val events_executed : t -> int
(** Total executed across shards. *)

val cross_sends : t -> int
(** Cross-shard messages delivered so far. *)
