module Fnv = Lesslog_hash.Fnv
module Psi = Lesslog_hash.Psi

let test_fnv_reference () =
  (* Published FNV-1a 64-bit test vectors. *)
  Alcotest.(check int64) "empty" 0xCBF29CE484222325L (Fnv.hash64 "");
  Alcotest.(check int64) "a" 0xAF63DC4C8601EC8CL (Fnv.hash64 "a");
  Alcotest.(check int64) "foobar" 0x85944171F73967E8L (Fnv.hash64 "foobar")

let test_hash63_nonneg () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Fnv.hash63 s >= 0))
    [ ""; "a"; "hello world"; "http://example.com/file.bin" ]

let test_psi_range () =
  let psi = Psi.create ~m:10 in
  for i = 0 to 999 do
    let t = Psi.target psi (Printf.sprintf "file-%d" i) in
    Alcotest.(check bool) "in range" true (t >= 0 && t < 1024)
  done

let test_psi_deterministic () =
  let psi = Psi.create ~m:8 in
  Alcotest.(check int) "stable" (Psi.target psi "x") (Psi.target psi "x")

let test_psi_spread () =
  (* ψ should spread keys across the identifier space: with 4096 keys over
     1024 slots, a majority of slots must be hit. *)
  let psi = Psi.create ~m:10 in
  let hit = Array.make 1024 false in
  for i = 0 to 4095 do
    hit.(Psi.target psi (Printf.sprintf "url/%d/object" i)) <- true
  done;
  let hits = Array.fold_left (fun a b -> if b then a + 1 else a) 0 hit in
  Alcotest.(check bool) (Printf.sprintf "spread %d/1024" hits) true (hits > 900)

let prop_fold_in_range =
  Test_support.qcheck_case ~name:"fold_int64 within bits"
    QCheck2.Gen.(pair (int_range 1 24) string)
    (fun (bits, s) ->
      let v = Fnv.fold_int64 (Fnv.hash64 s) ~bits in
      v >= 0 && v < 1 lsl bits)

let prop_psi_matches_fold =
  Test_support.qcheck_case ~name:"psi = folded fnv"
    QCheck2.Gen.(pair (int_range 1 24) string)
    (fun (m, s) ->
      let psi = Psi.create ~m in
      Psi.target psi s = Fnv.fold_int64 (Fnv.hash64 s) ~bits:m)

let () =
  Alcotest.run "hash"
    [
      ( "fnv",
        [
          Alcotest.test_case "reference vectors" `Quick test_fnv_reference;
          Alcotest.test_case "hash63 non-negative" `Quick test_hash63_nonneg;
        ] );
      ( "psi",
        [
          Alcotest.test_case "range" `Quick test_psi_range;
          Alcotest.test_case "deterministic" `Quick test_psi_deterministic;
          Alcotest.test_case "spread" `Quick test_psi_spread;
        ] );
      ("properties", [ prop_fold_in_range; prop_psi_matches_fold ]);
    ]
