(* Domain-parallel event-driven simulator of the fault-tolerant model
   (paper Section 4): the 2^b binomial subtrees are the shards of a
   {!Lesslog_sim.Sharded_engine}, one packed-core engine per subtree.

   The decomposition works because the Section 4 protocol is already
   subtree-local: ADVANCEDINSERTFILE places one copy per subtree, a GET
   resolves by climbing alive ancestors {e within} the origin's subtree,
   and replica placement picks among the overloaded node's subtree
   children — so the only cross-subtree traffic is a faulting request
   migrating to a sibling subtree (plus the reply it eventually earns),
   and every such hop rides the network with latency at least the
   distribution's minimum, which is exactly the lookahead a conservative
   epoch scheme needs.

   All mutable per-node state is owned by the node's shard and indexed
   by subtree VID: holder bits ({!Lesslog_bits.Packed_bits} over the
   2^(m-b) subtree slots — never the global PID space, whose packed
   words would be shared across shards), access-rate estimators,
   replication cooldowns, result histograms, the span sink and an FNV
   digest accumulator. The status word and lookup tree are shared but
   only read during an epoch; membership churn runs as sequential
   barrier globals. Each shard draws from its own seeded RNG stream, so
   the full run — event order, RNG draws, digest — is bit-identical at
   any domain count, including 1. *)

open Lesslog_id
module Engine = Lesslog_sim.Engine
module Sharded_engine = Lesslog_sim.Sharded_engine
module Latency = Lesslog_net.Latency
module Status_word = Lesslog_membership.Status_word
module Subtrees = Lesslog_topology.Subtrees
module Ptree = Lesslog_ptree.Ptree
module Access_counter = Lesslog_storage.Access_counter
module Demand = Lesslog_workload.Demand
module Histogram = Lesslog_metrics.Histogram
module Packed_bits = Lesslog_bits.Packed_bits
module Rng = Lesslog_prng.Rng
module Faults = Lesslog_workload.Faults
module Psi = Lesslog_hash.Psi
module Fnv = Lesslog_hash.Fnv
module Obs = Lesslog_obs.Obs
module Rf_policy = Lesslog_policy.Rf_policy

type config = {
  capacity : float;
  detection_tau : float;
  cooldown : float;
  latency : Latency.t;
  loss : float;
}

let default_config =
  {
    capacity = 100.0;
    detection_tau = 2.0;
    cooldown = 0.5;
    latency = Latency.default;
    loss = 0.0;
  }

let min_latency = function
  | Latency.Constant c -> c
  | Latency.Uniform { lo; _ } -> lo
  | Latency.Exponential { floor; _ } -> floor

(* Same packed wire format as {!Des_sim} (bits 0-2 the tag, fields
   above, [x] the issue timestamp) — see the table there. *)
let tag_get = 0
let tag_reply = 1
let tag_push = 2
let origin_bits = 24
let origin_mask = (1 lsl origin_bits) - 1
let hops_bits = 6
let hops_mask = (1 lsl hops_bits) - 1
let id_mask = (1 lsl 30) - 1

let get_b ~id ~origin ~hops =
  tag_get lor (origin lsl 3)
  lor ((hops land hops_mask) lsl (3 + origin_bits))
  lor (id lsl (3 + origin_bits + hops_bits))

let reply_b ~id ~server ~hops =
  tag_reply
  lor ((hops land hops_mask) lsl 3)
  lor (server lsl (3 + hops_bits))
  lor (id lsl (3 + hops_bits + origin_bits))

let push_b = tag_push

(* FNV-1a folded over native ints, 63-bit wrap — the per-shard event
   digest. Cheap enough to run on every handled event, and combining
   the per-shard accumulators in shard order gives one run fingerprint
   that any scheduling or RNG reordering perturbs. *)
let fnv_prime = 0x100000001B3
let mix d k = (d lxor k) * fnv_prime land max_int
let mix_time d t = mix d (Int64.to_int (Int64.bits_of_float t) land max_int)

(* Cold-tier runtime (mirrors {!Des_sim.cold_rt}): code parameters
   flattened out of the {!Des_sim.cold_tier} the caller passed, plus the
   tier flags and the byte ledger. Every field is written only inside
   sequential barrier globals; shard event handlers read [coded] and
   [servable] (frozen during an epoch), so the digest stays
   bit-identical at any domain count. *)
type cold_rt = {
  k : int;
  r : int;
  file_bytes : int;
  demote_after : int;
  frag_bytes : int;
  mutable coded : bool;
  mutable servable : bool;  (* coded and >= k fragments live *)
  mutable streak : int;  (* consecutive Cold verdicts while replicated *)
  mutable demotions : int;
  mutable promotions : int;
  mutable fragment_repairs : int;
  mutable lost : bool;
  mutable extra_bytes : int;
      (* demotion spreads, promotion gathers and fragment rebuilds — the
         traffic the end-of-run copy-count formula cannot see *)
  mutable repair_bytes : int;
  mutable byte_seconds : float;
  mutable last_bytes : int;
  mutable last_sample_t : float;
}

type shard = {
  sid : int;
  eng : Engine.t;
  rng : Rng.t;
  holders : Packed_bits.t;  (* subtree-VID indexed *)
  frags : Packed_bits.t;
      (* subtree-VID indexed fragment holders of the cold tier — each
         node carries at most one (distinct) fragment, so the bit count
         is the shard's live-fragment count; mutated only at barriers *)
  estimators : Access_counter.t array;  (* subtree-VID indexed *)
  cooldown_until : float array;
  latencies : Histogram.t;
  hops_h : Histogram.t;
  spans : Obs.Span.sink option;
  sp_lookup : int;
  mutable digest : int;
  mutable served : int;
  mutable faults : int;
  mutable migrations : int;
  mutable replicas_created : int;
  mutable messages : int;
  mutable requests : int;
  mutable h_msg : int;
  mutable h_arrival : int;
  (* Dynamic-RF policy tallies for the current analysis interval, owned
     by the shard: request count and the accessing-origin bitset over
     this subtree's VID slots. Subtrees partition the PID space, so
     summing the per-shard distinct counts at the barrier is exact. *)
  p_seen : Packed_bits.t;
  mutable p_ac : int;
  mutable p_dnc : int;
  mutable c_serves : int;  (* requests served by fragment gather+decode *)
}

type state = {
  config : config;
  mutable loss : float;
      (* current drop probability: [config.loss] raised by active loss
         bursts; only written by barrier globals *)
  params : Params.t;
  tree : Ptree.t;
  status : Status_word.t;
  demand : Demand.t;
  duration : float;
  se : Sharded_engine.t;
  shards : shard array;
  mutable control_messages : int;
  mutable file_transfers : int;
  policy : Rf_policy.t option;
      (* [Some] = the log-driven dynamic-RF competitor runs in sequential
         barrier globals (interval close + holder-bit reconciliation, no
         RNG), so the digest stays bit-identical at any domain count.
         [None] keeps the golden-digest default path untouched. *)
  cold : cold_rt option;
}

type result = {
  served : int;
  faults : int;
  migrations : int;
  requests : int;
  latencies : Histogram.t;
  hops : Histogram.t;
  replicas_created : int;
  replicas_end : int;
  messages : int;
  control_messages : int;
  file_transfers : int;
  events : int;
  epochs : int;
  phases : int;
  cross_sends : int;
  digest : int;
  cold : Des_sim.cold_stats option;
}

type churn_action = Join of Pid.t | Leave of Pid.t | Fail of Pid.t
type churn_event = { at : float; action : churn_action }

let sid_of (st : state) p = Subtrees.subtree_id_of_pid st.tree p

let svid_of (st : state) p =
  Subtrees.subtree_vid_of_vid st.params (Ptree.vid_of_pid st.tree p)

let holds (st : state) p = Packed_bits.get st.shards.(sid_of st p).holders (svid_of st p)

let total_copies (st : state) =
  Array.fold_left (fun acc sh -> acc + Packed_bits.count sh.holders) 0 st.shards

(* One overlay message. The loss coin and the latency draw come from the
   {e sending} shard's stream; a cross-subtree delivery goes through the
   sharded engine's mailboxes (its latency is >= the distribution
   minimum, i.e. the lookahead, by construction). *)
let send_msg st (sh : shard) ~dst ~b ~x =
  sh.messages <- sh.messages + 1;
  if not (st.loss > 0.0 && Rng.bernoulli sh.rng ~p:st.loss) then begin
    let delay = Latency.sample st.config.latency sh.rng in
    let dsid = sid_of st dst in
    Sharded_engine.send st.se ~src:sh.sid ~dst:dsid ~delay
      ~h:st.shards.(dsid).h_msg ~a:(Pid.to_int dst) ~b ~x
  end

let obs_resolved (sh : shard) ~id ~origin ~server ~hops ~issued_at ~at =
  match sh.spans with
  | None -> ()
  | Some spans ->
      Obs.Span.emit_int spans ~name:sh.sp_lookup ~id ~origin ~at:issued_at
        ~dur:(at -. issued_at) ~server ~hops ~attempt:0

(* Replica placement, Section 4 flavour of {!Lesslog.Ops.choose_replica_target}:
   candidates are the overloaded node's dead-node-aware subtree children
   list (or the subtree root's when nothing lives above it), holders
   excluded, and the two lists are weighed by live offspring vs. the rest
   of the subtree population. Everything is subtree-local, so the chosen
   target is always on the overloaded node's own shard. *)
let choose_replica_target st (sh : shard) ~overloaded =
  let tree = st.tree and status = st.status in
  let non_holders = List.filter (fun p -> not (holds st p)) in
  let cl p = non_holders (Subtrees.children_list_in_subtree tree status p) in
  let sroot = Subtrees.subtree_root tree ~subtree_id:sh.sid in
  let own, root_list =
    if Pid.equal overloaded sroot then (cl sroot, [])
    else if Subtrees.has_live_with_greater_svid tree status overloaded then
      (cl overloaded, [])
    else (cl overloaded, cl sroot)
  in
  match (own, root_list) with
  | [], [] -> None
  | c :: _, [] | [], c :: _ -> Some c
  | own_first :: _, root_first :: _ ->
      let offspring =
        Subtrees.live_offspring_count_in_subtree tree status overloaded
      in
      let population =
        List.length
          (List.filter (Status_word.is_live status)
             (Subtrees.members tree ~subtree_id:sh.sid))
      in
      let rest = max 0 (population - 1 - offspring) in
      let total = offspring + rest in
      let p =
        if total = 0 then 0.0 else float_of_int offspring /. float_of_int total
      in
      if Rng.bernoulli sh.rng ~p then Some own_first else Some root_first

let maybe_replicate st (sh : shard) ~overloaded =
  let sv = svid_of st overloaded in
  let now = Engine.now sh.eng in
  let rate = Access_counter.rate sh.estimators.(sv) ~now in
  if rate > st.config.capacity && now >= sh.cooldown_until.(sv) then begin
    match choose_replica_target st sh ~overloaded with
    | None -> ()
    | Some dest ->
        sh.cooldown_until.(sv) <- now +. st.config.cooldown;
        send_msg st sh ~dst:dest ~b:push_b ~x:0.0
  end

let serve st (sh : shard) ~server ~id ~origin ~issued_at ~hops =
  let sv = svid_of st server in
  let now = Engine.now sh.eng in
  Access_counter.record sh.estimators.(sv) ~now;
  sh.served <- sh.served + 1;
  Histogram.add_int sh.hops_h hops;
  if Pid.equal server origin then begin
    Histogram.add sh.latencies (now -. issued_at);
    obs_resolved sh ~id ~origin:(Pid.to_int origin)
      ~server:(Pid.to_int server) ~hops ~issued_at ~at:now
  end
  else
    send_msg st sh ~dst:origin
      ~b:(reply_b ~id ~server:(Pid.to_int server) ~hops)
      ~x:issued_at;
  (* With the dynamic-RF policy active the barrier global owns replica
     management; the native overload trigger stays off. *)
  match st.policy with
  | None -> maybe_replicate st sh ~overloaded:server
  | Some _ -> ()

(* Route one GET standing at [me]: serve, forward within the subtree, or
   — when the subtree dead-ends — migrate to the sibling subtree by
   rewriting the VID's identifier bits (Section 4). Migration lands on
   the rewritten slot when it is alive, else the nearest live stand-in
   of the sibling subtree; each hop burns the packed hop budget, so a
   request circling through dead subtrees faults instead of looping. *)
let rec route_get st (sh : shard) ~me ~id ~origin ~hops ~issued_at =
  if holds st me then serve st sh ~server:me ~id ~origin ~issued_at ~hops
  else begin
    let fault () =
      sh.faults <- sh.faults + 1;
      obs_resolved sh ~id ~origin:(Pid.to_int origin) ~server:(-1) ~hops
        ~issued_at ~at:(Engine.now sh.eng)
    in
    match st.cold with
    | Some c when c.coded && Packed_bits.get sh.frags (svid_of st me) ->
        (* A fragment holder: gather [k] fragments and decode when
           enough survive (the fan-in is byte accounting, not simulated
           messages), a reported fault below [k] — no panic. *)
        if c.servable then begin
          sh.c_serves <- sh.c_serves + 1;
          serve st sh ~server:me ~id ~origin ~issued_at ~hops
        end
        else fault ()
    | _ ->
        route_get_replicated st sh ~me ~id ~origin ~hops ~issued_at ~fault
  end

and route_get_replicated st (sh : shard) ~me ~id ~origin ~hops ~issued_at
    ~fault =
  begin
    let forward next =
      send_msg st sh ~dst:next
        ~b:(get_b ~id ~origin:(Pid.to_int origin) ~hops:(hops + 1))
        ~x:issued_at
    in
    if hops >= hops_mask then fault ()
    else begin
      let next_in_subtree =
        match
          Subtrees.first_alive_ancestor_in_subtree st.tree st.status me
        with
        | Some _ as a -> a
        | None -> (
            (* Dead subtree root: fall back to the insertion scan
               (modified FINDLIVENODE) before giving up on the subtree. *)
            let sroot = Subtrees.subtree_root st.tree ~subtree_id:sh.sid in
            if Status_word.is_live st.status sroot then None
            else
              match
                Subtrees.insertion_target_in_subtree st.tree st.status
                  ~subtree_id:sh.sid
              with
              | Some g when not (Pid.equal g me) -> Some g
              | Some _ | None -> None)
      in
      match next_in_subtree with
      | Some next -> forward next
      | None ->
          let n = Array.length st.shards in
          if n = 1 then fault ()
          else begin
            let to_subtree = (sh.sid + 1) mod n in
            let landing =
              Ptree.pid_of_vid st.tree
                (Subtrees.migrate_vid st.params (Ptree.vid_of_pid st.tree me)
                   ~to_subtree)
            in
            let landing =
              if Status_word.is_live st.status landing then Some landing
              else
                match
                  Subtrees.first_alive_ancestor_in_subtree st.tree st.status
                    landing
                with
                | Some _ as a -> a
                | None ->
                    Subtrees.insertion_target_in_subtree st.tree st.status
                      ~subtree_id:to_subtree
            in
            match landing with
            | None -> fault ()
            | Some next ->
                sh.migrations <- sh.migrations + 1;
                forward next
          end
    end
  end

and issue_request st (sh : shard) ~origin =
  let id = ((sh.requests * Array.length st.shards) + sh.sid) land id_mask in
  sh.requests <- sh.requests + 1;
  (* Policy access log: tally on the origin's own shard — arrivals run
     on it, so this touches no cross-shard state. *)
  (match st.policy with
  | None -> ()
  | Some _ ->
      sh.p_ac <- sh.p_ac + 1;
      let sv = svid_of st origin in
      if not (Packed_bits.get sh.p_seen sv) then begin
        Packed_bits.set sh.p_seen sv;
        sh.p_dnc <- sh.p_dnc + 1
      end);
  route_get st sh ~me:origin ~id ~origin ~hops:0
    ~issued_at:(Engine.now sh.eng)

let handle_msg st (sh : shard) a b x =
  sh.digest <- mix (mix (mix_time sh.digest (Engine.now sh.eng)) a) b;
  let me = Pid.unsafe_of_int a in
  if Status_word.is_live st.status me then begin
    match b land 7 with
    | 0 (* GET *) ->
        let origin = Pid.unsafe_of_int ((b lsr 3) land origin_mask) in
        let hops = (b lsr (3 + origin_bits)) land hops_mask in
        let id = b lsr (3 + origin_bits + hops_bits) in
        route_get st sh ~me ~id ~origin ~hops ~issued_at:x
    | 1 (* REPLY *) ->
        let hops = (b lsr 3) land hops_mask in
        let server = (b lsr (3 + hops_bits)) land origin_mask in
        let id = b lsr (3 + hops_bits + origin_bits) in
        Histogram.add sh.latencies (Engine.now sh.eng -. x);
        obs_resolved sh ~id ~origin:a ~server ~hops ~issued_at:x
          ~at:(Engine.now sh.eng)
    | 2 (* PUSH *) ->
        let sv = svid_of st me in
        if not (Packed_bits.get sh.holders sv) then begin
          Packed_bits.set sh.holders sv;
          sh.replicas_created <- sh.replicas_created + 1
        end
    | _ -> ()
  end

(* One Poisson arrival: issue the request, then draw the next gap — the
   same self-rescheduling chain as {!Des_sim.on_arrival}, per shard. A
   chain stops when its node dies and a rejoin does not restart it. *)
let on_arrival st (sh : shard) a _b _x =
  sh.digest <- mix (mix_time sh.digest (Engine.now sh.eng)) a;
  let origin = Pid.unsafe_of_int a in
  if Status_word.is_live st.status origin then begin
    issue_request st sh ~origin;
    let rate = Demand.rate st.demand origin in
    let t = Engine.now sh.eng +. Rng.exponential sh.rng ~rate in
    if t < st.duration then
      Engine.post_at sh.eng ~time:t ~h:sh.h_arrival ~a ~b:0 ~x:0.0
  end

(* Membership churn, run as sequential barrier globals. The status word
   is broadcast (Section 5: one control message per live node); a copy
   held by the departing node relocates to the subtree's insertion
   target on a graceful leave, is lost on a failure and re-fetched from
   a sibling subtree while one survives, and a joiner that becomes its
   subtree's insertion target takes the local copy over. *)
let account_churn (st : state) ~relocated =
  st.control_messages <-
    st.control_messages + Status_word.live_count st.status;
  st.file_transfers <- st.file_transfers + relocated;
  (* A churn-relocated full copy is failure-triggered wire traffic. *)
  match st.cold with
  | None -> ()
  | Some c -> c.repair_bytes <- c.repair_bytes + (relocated * c.file_bytes)

let highest_holder (sh : shard) =
  Packed_bits.fold_set sh.holders ~init:(-1) ~f:(fun _ sv -> sv)

let reinsert (st : state) ~subtree_id =
  match
    Subtrees.insertion_target_in_subtree st.tree st.status ~subtree_id
  with
  | None -> 0
  | Some t ->
      let sh = st.shards.(subtree_id) in
      let sv = svid_of st t in
      if Packed_bits.get sh.holders sv then 0
      else begin
        Packed_bits.set sh.holders sv;
        1
      end

(* Erasure-coded cold tier, barrier-global half. Fragments are one more
   per-shard bitset over the subtree-VID slots; each node carries at
   most one (distinct) fragment, so the global live-fragment count is
   the sum of bit counts and {!Lesslog.Ops.repair_coded} reduces to
   re-seating the missing difference — no per-index bookkeeping. *)

let frag_total (st : state) =
  Array.fold_left (fun a (sh : shard) -> a + Packed_bits.count sh.frags) 0
    st.shards

let cold_current_bytes st c =
  (total_copies st * c.file_bytes) + (frag_total st * c.frag_bytes)

(* Step integral of stored bytes, sampled at every barrier global and
   closed at [duration] — copies created between barriers are attributed
   from the next barrier onward, exactly like {!Des_sim}. *)
let cold_sample (st : state) ~t =
  match st.cold with
  | None -> ()
  | Some c ->
      c.byte_seconds <-
        c.byte_seconds +. (float_of_int c.last_bytes *. (t -. c.last_sample_t));
      c.last_sample_t <- t;
      c.last_bytes <- cold_current_bytes st c

(* Seat one fragment in [sh]: the subtree's insertion target when free —
   so in-subtree request climbs terminate on a fragment holder — else
   the first live member without one. *)
let place_fragment_in st (sh : shard) =
  let free q =
    Status_word.is_live st.status q
    && not (Packed_bits.get sh.frags (svid_of st q))
  in
  let target =
    match
      Subtrees.insertion_target_in_subtree st.tree st.status
        ~subtree_id:sh.sid
    with
    | Some t when free t -> Some t
    | Some _ | None ->
        List.find_opt free (Subtrees.members st.tree ~subtree_id:sh.sid)
  in
  match target with
  | None -> false
  | Some q ->
      Packed_bits.set sh.frags (svid_of st q);
      true

let place_fragment st ~preferred =
  let n = Array.length st.shards in
  let rec go i =
    i < n && (place_fragment_in st st.shards.((preferred + i) mod n) || go (i + 1))
  in
  go 0

(* Re-seat every fragment lost to churn while [>= k] survive; below [k]
   the payload is unrecoverable — flag it, keep the survivors, and stop
   serving (requests meeting a fragment holder degrade to faults). *)
let cold_churn_repair (st : state) =
  match st.cold with
  | None -> ()
  | Some c when not c.coded -> ()
  | Some c ->
      let total = frag_total st in
      if total < c.k then begin
        c.lost <- true;
        c.servable <- false
      end
      else begin
        let missing = c.k + c.r - total in
        let rebuilt = ref 0 in
        for i = 0 to missing - 1 do
          if place_fragment st ~preferred:(i mod Array.length st.shards) then
            incr rebuilt
        done;
        if !rebuilt > 0 then begin
          c.fragment_repairs <- c.fragment_repairs + !rebuilt;
          (* k fragment reads and one write per rebuilt fragment. *)
          let traffic = !rebuilt * (c.k + 1) * c.frag_bytes in
          c.repair_bytes <- c.repair_bytes + traffic;
          c.extra_bytes <- c.extra_bytes + traffic
        end;
        c.servable <- frag_total st >= c.k
      end

(* Drop the departing node's fragment (a leaver hands full copies off
   but fragments are simply dropped and rebuilt — same contract as
   {!Lesslog.Self_org}); the repair pass runs after the membership
   accounting. *)
let cold_drop_fragment (st : state) (sh : shard) ~sv =
  match st.cold with
  | Some c when c.coded -> Packed_bits.clear sh.frags sv
  | Some _ | None -> ()

let churn_join (st : state) p =
  Status_word.set_live st.status p;
  let s = sid_of st p in
  let sh = st.shards.(s) in
  let moved =
    match Subtrees.insertion_target_in_subtree st.tree st.status ~subtree_id:s with
    | Some t when Pid.equal t p && not (Packed_bits.get sh.holders (svid_of st p))
      -> (
        match highest_holder sh with
        | -1 -> 0
        | old_sv ->
            Packed_bits.clear sh.holders old_sv;
            Packed_bits.set sh.holders (svid_of st p);
            1)
    | _ -> 0
  in
  account_churn st ~relocated:moved;
  cold_churn_repair st

let churn_leave (st : state) p =
  Status_word.set_dead st.status p;
  let s = sid_of st p in
  let sh = st.shards.(s) in
  let sv = svid_of st p in
  cold_drop_fragment st sh ~sv;
  let moved =
    if Packed_bits.get sh.holders sv then begin
      Packed_bits.clear sh.holders sv;
      reinsert st ~subtree_id:s
    end
    else 0
  in
  account_churn st ~relocated:moved;
  cold_churn_repair st

let churn_fail (st : state) p =
  Status_word.set_dead st.status p;
  let s = sid_of st p in
  let sh = st.shards.(s) in
  let sv = svid_of st p in
  cold_drop_fragment st sh ~sv;
  let moved =
    if Packed_bits.get sh.holders sv then begin
      Packed_bits.clear sh.holders sv;
      (* The local copy died with the node: recover it from a sibling
         subtree while any copy survives (Section 4's whole point). *)
      if total_copies st > 0 then reinsert st ~subtree_id:s else 0
    end
    else 0
  in
  account_churn st ~relocated:moved;
  cold_churn_repair st

let churn_globals (st : state) churn =
  List.stable_sort (fun a b -> Float.compare a.at b.at) churn
  |> List.map (fun { at; action } ->
         ( at,
           fun () ->
             match action with
             | Join p ->
                 if Status_word.is_dead st.status p then churn_join st p
             | Leave p ->
                 if Status_word.is_live st.status p then churn_leave st p
             | Fail p ->
                 if Status_word.is_live st.status p then churn_fail st p ))

(* A {!Faults.plan} lowered onto the same barrier-global machinery:
   crashes become [Fail]/[Join] churn, loss bursts become boundary
   globals that recompute the current drop probability. Partitions have
   no subtree-local interpretation here and are rejected. *)
let fault_churn (plan : Faults.plan) =
  List.concat_map
    (fun (c : Faults.crash) ->
      let fail = { at = c.Faults.at; action = Fail c.Faults.node } in
      match c.Faults.restart_at with
      | None -> [ fail ]
      | Some r -> [ fail; { at = r; action = Join c.Faults.node } ])
    plan.Faults.crashes

let burst_globals (st : state) (plan : Faults.plan) =
  let bounds =
    List.sort_uniq Float.compare
      (List.concat_map
         (fun (b : Faults.burst) -> [ b.Faults.from_; b.Faults.until ])
         plan.Faults.bursts)
  in
  List.map
    (fun t ->
      ( t,
        fun () ->
          st.loss <-
            List.fold_left
              (fun acc (b : Faults.burst) ->
                if b.Faults.from_ <= t && t < b.Faults.until then
                  Float.max acc b.Faults.loss
                else acc)
              st.config.loss plan.Faults.bursts ))
    bounds

(* Reconcile the holder bitsets with the policy's replica factor, run
   inside a barrier global: deficits fill round-robin across shards
   (first live non-holder member per shard per round — the spread
   ADVANCEDINSERTFILE would pick), surpluses shed the highest holder
   VID per shard in reverse shard order, draining multi-holder shards
   before emptying a subtree. Entirely deterministic and RNG-free, so
   the event stream downstream of the barrier is bit-identical at any
   domain count. *)
let policy_enforce (st : state) p =
  let rf = Rf_policy.rf p ~file:0 in
  let copies = total_copies st in
  if copies < rf then begin
    let deficit = ref (rf - copies) and progress = ref true in
    while !deficit > 0 && !progress do
      progress := false;
      Array.iter
        (fun (sh : shard) ->
          if !deficit > 0 then
            match
              List.find_opt
                (fun q ->
                  Status_word.is_live st.status q
                  && not (Packed_bits.get sh.holders (svid_of st q)))
                (Subtrees.members st.tree ~subtree_id:sh.sid)
            with
            | None -> ()
            | Some q ->
                Packed_bits.set sh.holders (svid_of st q);
                sh.replicas_created <- sh.replicas_created + 1;
                decr deficit;
                progress := true)
        st.shards
    done
  end
  else if copies > rf then begin
    let surplus = ref (copies - rf) and progress = ref true in
    while !surplus > 0 && !progress do
      progress := false;
      (* First pass per round: only shards keeping another copy. *)
      for i = Array.length st.shards - 1 downto 0 do
        let sh = st.shards.(i) in
        if !surplus > 0 && Packed_bits.count sh.holders > 1 then begin
          Packed_bits.clear sh.holders (highest_holder sh);
          decr surplus;
          progress := true
        end
      done;
      if !surplus > 0 && not !progress then
        for i = Array.length st.shards - 1 downto 0 do
          let sh = st.shards.(i) in
          if !surplus > 0 && Packed_bits.count sh.holders = 1 then begin
            Packed_bits.clear sh.holders (highest_holder sh);
            decr surplus;
            progress := true
          end
        done
    done
  end

(* Tier transitions at the policy tick, mirroring
   {!Des_sim.cold_policy_step}: [demote_after] consecutive Cold verdicts
   trade the full copies for [k + r] fragments (one per shard round-robin,
   preferring insertion targets), the first Hot verdict after that
   gathers [k] fragments and hands the copy count back to the RF
   enforcer. A failed demotion (too few live nodes) retries at the next
   qualifying tick. *)
let cold_demote (st : state) c =
  let n = c.k + c.r in
  if Status_word.live_count st.status >= n then begin
    let seated = ref true in
    for idx = 0 to n - 1 do
      if !seated then
        seated := place_fragment st ~preferred:(idx mod Array.length st.shards)
    done;
    if !seated then begin
      Array.iter (fun (sh : shard) -> Packed_bits.clear_all sh.holders) st.shards;
      c.coded <- true;
      c.servable <- true;
      c.streak <- 0;
      c.demotions <- c.demotions + 1;
      (* The k + r fragment spreads cross the wire. *)
      c.extra_bytes <- c.extra_bytes + (n * c.frag_bytes)
    end
    else
      (* Could not seat every fragment: abort, keep the full copies. *)
      Array.iter (fun (sh : shard) -> Packed_bits.clear_all sh.frags) st.shards
  end

let cold_promote (st : state) c p =
  if frag_total st >= c.k then begin
    Array.iter (fun (sh : shard) -> Packed_bits.clear_all sh.frags) st.shards;
    c.coded <- false;
    c.servable <- false;
    c.promotions <- c.promotions + 1;
    (* k fragments gathered to rebuild; the fan-out copies are counted
       through [replicas_created] like any other fill. *)
    c.extra_bytes <- c.extra_bytes + (c.k * c.frag_bytes);
    policy_enforce st p;
    if total_copies st = 0 then
      (* RF floor safety: never promote into zero copies. *)
      if reinsert st ~subtree_id:0 = 1 then
        st.shards.(0).replicas_created <- st.shards.(0).replicas_created + 1
  end

let cold_policy_step (st : state) c p =
  if not c.coded then begin
    (match Rf_policy.classification p ~file:0 with
    | Rf_policy.Cold -> c.streak <- c.streak + 1
    | Rf_policy.Hot | Rf_policy.Warm -> c.streak <- 0);
    if c.streak >= c.demote_after then cold_demote st c
  end
  else if Rf_policy.classification p ~file:0 = Rf_policy.Hot then
    cold_promote st c p

(* The policy's analysis intervals, lowered onto the barrier-global
   machinery: at each boundary, merge every shard's access tallies into
   the policy (shard order — deterministic), close the interval, run the
   tier transitions, then reconcile the holder bits (only while the key
   has full copies — fragments are not the RF enforcer's to manage). *)
let policy_globals (st : state) =
  match st.policy with
  | None -> []
  | Some p ->
      let period = (Rf_policy.config p).Rf_policy.interval in
      let rec build k acc =
        let t = float_of_int k *. period in
        if t >= st.duration then List.rev acc
        else
          build (k + 1)
            (( t,
               fun () ->
                 Array.iter
                   (fun (sh : shard) ->
                     Rf_policy.note p ~file:0 ~ac:sh.p_ac ~dnc:sh.p_dnc;
                     sh.p_ac <- 0;
                     sh.p_dnc <- 0;
                     Packed_bits.clear_all sh.p_seen)
                   st.shards;
                 ignore (Rf_policy.end_interval p);
                 (match st.cold with
                 | None -> policy_enforce st p
                 | Some c ->
                     cold_policy_step st c p;
                     if not c.coded then policy_enforce st p) )
             :: acc)
      in
      build 1 []

let start_arrivals (st : state) =
  Array.iter
    (fun (sh : shard) ->
      (* Descending subtree VID — a fixed order so the first-gap draws
         from the shard stream are position-independent. *)
      List.iter
        (fun p ->
          if Status_word.is_live st.status p then begin
            let rate = Demand.rate st.demand p in
            if rate > 0.0 then begin
              let t = Rng.exponential sh.rng ~rate in
              if t < st.duration then
                Engine.post_at sh.eng ~time:t ~h:sh.h_arrival
                  ~a:(Pid.to_int p) ~b:0 ~x:0.0
            end
          end)
        (Subtrees.members st.tree ~subtree_id:sh.sid))
    st.shards

let finalize_obs (st : state) (obs : Obs.t) ~latencies ~hops =
  Array.iter
    (fun (sh : shard) ->
      match sh.spans with
      | None -> ()
      | Some s -> Obs.Span.merge_into ~into:obs.Obs.spans s)
    st.shards;
  let r = obs.Obs.registry in
  let count name v = Obs.Registry.add (Obs.Registry.counter r name) v in
  count "pdes/requests"
    (Array.fold_left (fun a (sh : shard) -> a + sh.requests) 0 st.shards);
  count "pdes/served" (Array.fold_left (fun a (sh : shard) -> a + sh.served) 0 st.shards);
  count "pdes/faults" (Array.fold_left (fun a (sh : shard) -> a + sh.faults) 0 st.shards);
  count "pdes/migrations"
    (Array.fold_left (fun a (sh : shard) -> a + sh.migrations) 0 st.shards);
  count "pdes/replications"
    (Array.fold_left (fun a (sh : shard) -> a + sh.replicas_created) 0 st.shards);
  ignore (Obs.Registry.timer_backed r "pdes/latency_s" latencies);
  ignore (Obs.Registry.timer_backed r "pdes/hops" hops)

let run ?(config = default_config) ?(churn = []) ?(faults = Faults.empty) ?obs
    ?policy ?cold_tier ?(domains = 1) ?(fuse = true) ~seed ~params ~key ~demand
    ~duration () =
  if Params.m params > origin_bits then
    invalid_arg "Pdes_sim.run: m exceeds the packed origin field";
  (match policy with
  | Some p when Rf_policy.nodes p <> Params.space params ->
      invalid_arg "Pdes_sim.run: policy accessor population <> PID space"
  | _ -> ());
  (match cold_tier with
  | None -> ()
  | Some (ct : Des_sim.cold_tier) ->
      if Option.is_none policy then
        invalid_arg "Pdes_sim.run: cold_tier needs a policy (its Cold verdicts)";
      if ct.code_k < 1 || ct.code_r < 0 || ct.code_k + ct.code_r > 256 then
        invalid_arg "Pdes_sim.run: invalid cold_tier code parameters";
      if ct.file_bytes <= 0 then
        invalid_arg "Pdes_sim.run: file_bytes must be > 0";
      if ct.demote_after < 1 then
        invalid_arg "Pdes_sim.run: demote_after must be >= 1");
  if faults.Faults.partitions <> [] then
    invalid_arg "Pdes_sim.run: partitions are not supported";
  let nshards = Params.subtree_count params in
  let lmin = min_latency config.latency in
  if nshards > 1 && not (lmin > 0.0) then
    invalid_arg "Pdes_sim.run: latency minimum must be positive (lookahead)";
  (* With a single subtree there is no cross-shard traffic, so the epoch
     width is free — take something comfortably coarse. *)
  let lookahead = if nshards = 1 then Float.max lmin 1.0 else lmin in
  let se = Sharded_engine.create ~shards:nshards ~lookahead () in
  let psi = Psi.create ~m:(Params.m params) in
  let tree = Ptree.make params ~root:(Pid.unsafe_of_int (Psi.target psi key)) in
  let status = Status_word.create params ~initially_live:true in
  let sspace = Params.subtree_space params in
  let shards =
    Array.init nshards (fun sid ->
        let spans =
          match obs with
          | None -> None
          | Some _ -> Some (Obs.Span.create_sink ())
        in
        {
          sid;
          eng = Sharded_engine.engine se sid;
          rng =
            Rng.create
              ~seed:
                (Fnv.hash63 (Printf.sprintf "%d|pdes|%d" seed sid)
                land 0x3FFFFFFF);
          holders = Packed_bits.create sspace;
          estimators =
            Array.init sspace (fun _ ->
                Access_counter.create ~tau:config.detection_tau ~now:0.0 ());
          cooldown_until = Array.make sspace 0.0;
          latencies = Histogram.create ();
          hops_h = Histogram.create ();
          spans;
          sp_lookup =
            (match spans with
            | None -> 0
            | Some s -> Obs.Span.intern s "lookup");
          digest = 0;
          served = 0;
          faults = 0;
          migrations = 0;
          replicas_created = 0;
          messages = 0;
          requests = 0;
          h_msg = -1;
          h_arrival = -1;
          p_seen = Packed_bits.create sspace;
          p_ac = 0;
          p_dnc = 0;
          frags = Packed_bits.create sspace;
          c_serves = 0;
        })
  in
  let st =
    {
      config;
      loss = config.loss;
      params;
      tree;
      status;
      demand;
      duration;
      se;
      shards;
      control_messages = 0;
      file_transfers = 0;
      policy;
      cold =
        Option.map
          (fun (ct : Des_sim.cold_tier) ->
            {
              k = ct.code_k;
              r = ct.code_r;
              file_bytes = ct.file_bytes;
              demote_after = ct.demote_after;
              frag_bytes = (ct.file_bytes + ct.code_k - 1) / ct.code_k;
              coded = false;
              servable = false;
              streak = 0;
              demotions = 0;
              promotions = 0;
              fragment_repairs = 0;
              lost = false;
              extra_bytes = 0;
              repair_bytes = 0;
              byte_seconds = 0.0;
              last_bytes = 0;
              last_sample_t = 0.0;
            })
          cold_tier;
    }
  in
  Array.iter
    (fun (sh : shard) ->
      sh.h_msg <- Engine.register_handler sh.eng (handle_msg st sh);
      sh.h_arrival <- Engine.register_handler sh.eng (on_arrival st sh))
    shards;
  (* ADVANCEDINSERTFILE: one copy per subtree (Section 4). *)
  List.iter
    (fun p -> Packed_bits.set shards.(sid_of st p).holders (svid_of st p))
    (Subtrees.insertion_targets tree status);
  (match st.cold with
  | None -> ()
  | Some c -> c.last_bytes <- cold_current_bytes st c);
  start_arrivals st;
  (* All lists are time-sorted; concat + stable sort is a stable merge,
     so at equal times churn (user first, then crash-derived) precedes
     loss-boundary recomputes, which precede policy-interval closes — a
     fixed, domain-count-free order. *)
  let globals =
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (churn_globals st (churn @ fault_churn faults)
      @ burst_globals st faults @ policy_globals st)
  in
  (* Sample the byte step-integral at every barrier — the only points
     where stored bytes change outside the shard-local PUSH path. *)
  let globals =
    match st.cold with
    | None -> globals
    | Some _ ->
        List.map
          (fun (t, f) ->
            ( t,
              fun () ->
                f ();
                cold_sample st ~t ))
          globals
  in
  Sharded_engine.run ~until:duration ~globals ~domains ~fuse se;
  cold_sample st ~t:duration;
  let latencies = Histogram.create () and hops = Histogram.create () in
  Array.iter
    (fun (sh : shard) ->
      Histogram.merge latencies ~from:sh.latencies;
      Histogram.merge hops ~from:sh.hops_h)
    shards;
  Option.iter (fun o -> finalize_obs st o ~latencies ~hops) obs;
  let sum f = Array.fold_left (fun a (sh : shard) -> a + f sh) 0 shards in
  {
    served = sum (fun sh -> sh.served);
    faults = sum (fun sh -> sh.faults);
    migrations = sum (fun sh -> sh.migrations);
    requests = sum (fun sh -> sh.requests);
    latencies;
    hops;
    replicas_created = sum (fun sh -> sh.replicas_created);
    replicas_end = total_copies st;
    messages = sum (fun sh -> sh.messages);
    control_messages = st.control_messages;
    file_transfers = st.file_transfers;
    events = Sharded_engine.events_executed se;
    epochs = Sharded_engine.epoch se;
    phases = Sharded_engine.phases se;
    cross_sends = Sharded_engine.cross_sends se;
    digest =
      Array.fold_left (fun d (sh : shard) -> mix d sh.digest) 0x1505 shards;
    cold =
      Option.map
        (fun c ->
          {
            Des_sim.demotions = c.demotions;
            promotions = c.promotions;
            fragment_repairs = c.fragment_repairs;
            lost_cold = c.lost;
            coded_at_end = c.coded;
            coded_serves = sum (fun sh -> sh.c_serves);
            bytes_stored_end = cold_current_bytes st c;
            mean_bytes_stored =
              (if duration > 0.0 then c.byte_seconds /. duration else 0.0);
            bytes_moved =
              ((sum (fun sh -> sh.replicas_created) + st.file_transfers)
              * c.file_bytes)
              + c.extra_bytes;
            repair_bytes = c.repair_bytes;
          })
        st.cold;
  }
