(** Steady-state request demand: how many requests per second each node
    originates for one file.

    Two models drive the paper's evaluation (Section 6): requests evenly
    distributed among all nodes (Figures 5 and 6), and a locality model
    where 80% of the requests are received by 20% of the nodes (Figures 7
    and 8). *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word

type t = private {
  rates : float array;  (** Requests/s originated per PID slot; 0 for dead. *)
  total : float;
}

val uniform : Status_word.t -> total:float -> t
(** [total] requests/s spread evenly over the live nodes. *)

val locality :
  ?hot_fraction:float ->
  ?hot_share:float ->
  Status_word.t ->
  rng:Lesslog_prng.Rng.t ->
  total:float ->
  t
(** The locality model: a uniformly chosen [hot_fraction] (default 0.2) of
    the live nodes originates [hot_share] (default 0.8) of the demand; the
    remaining demand spreads over the other live nodes. *)

val hotspot : Status_word.t -> at:Pid.t -> total:float -> t
(** Degenerate locality: the entire demand originates at one node — the
    flash-crowd scenario of the examples. *)

val of_rates : float array -> t
(** Wrap explicit per-slot rates. *)

val rate : t -> Pid.t -> float
val total : t -> float
val scale : t -> factor:float -> t
