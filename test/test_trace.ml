open Lesslog_id
module Trace = Lesslog_trace.Trace
module Event = Lesslog_trace.Trace.Event
module Des_sim = Lesslog_des.Des_sim
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Demand = Lesslog_workload.Demand
module Rng = Lesslog_prng.Rng

let sample_events =
  [
    Event.Request { at = 0.5; origin = 3; server = Some 7; hops = 2 };
    Event.Request { at = 1.25; origin = 9; server = None; hops = 4 };
    Event.Replicate { at = 2.0; src = 7; dst = 12; key = "hot file %1" };
    Event.Evict { at = 3.5; node = 12; key = "hot file %1" };
    Event.Membership { at = 4.0; node = 5; change = `Fail };
    Event.Membership { at = 4.5; node = 5; change = `Join };
    Event.Membership { at = 5.0; node = 6; change = `Leave };
    Event.Timeout { at = 5.5; id = 42; origin = 3; attempt = 0 };
    Event.Retry { at = 5.75; id = 42; origin = 3; attempt = 1 };
    Event.Suspect { at = 6.0; node = 7 };
    Event.Trust { at = 6.5; node = 7 };
    Event.Loss { at = 7.0; until = 8.5; rate = 0.25 };
    Event.Cut { at = 9.0; until = 10.0; direction = `Both; nodes = [ 1; 5 ] };
    Event.Cut { at = 9.5; until = 10.5; direction = `In; nodes = [ 3 ] };
    Event.Cut { at = 9.75; until = 11.0; direction = `Out; nodes = [] };
    Event.Mark { at = 0.0; name = "check/seed"; value = 42.0 };
    Event.Mark { at = 12.0; name = "phase two %x"; value = -1.5 };
  ]

let test_roundtrip_each () =
  List.iter
    (fun e ->
      match Event.of_line (Event.to_line e) with
      | Ok e' -> Alcotest.(check bool) (Event.to_line e) true (Event.equal e e')
      | Error msg -> Alcotest.fail msg)
    sample_events

let test_key_escaping () =
  let nasty = "a b%c\nd\te" in
  let e = Event.Replicate { at = 1.0; src = 0; dst = 1; key = nasty } in
  let line = Event.to_line e in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  match Event.of_line line with
  | Ok (Event.Replicate { key; _ }) -> Alcotest.(check string) "key" nasty key
  | _ -> Alcotest.fail "roundtrip failed"

let test_malformed_rejected () =
  List.iter
    (fun line ->
      match Event.of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [
      "";
      "REQ";
      "REQ x 1 2 3";
      "ZZZ 1 2 3";
      "MEM 1.0 3 explode";
      "LOS 1.0 2.0";
      "LOS 1.0 2.0 nan%";
      "CUT 1.0 2.0 sideways 1,2";
      "CUT 1.0 2.0 both 1,x";
      "MRK 1.0 name";
    ]

let test_writer_and_reader () =
  let buf = Buffer.create 256 in
  let w = Trace.Writer.to_buffer buf in
  List.iter (Trace.Writer.emit w) sample_events;
  Alcotest.(check int) "count" (List.length sample_events) (Trace.Writer.count w);
  Trace.Writer.close w;
  match Trace.read_string (Buffer.contents buf) with
  | Ok events ->
      Alcotest.(check int) "all back" (List.length sample_events)
        (List.length events);
      List.iter2
        (fun a b -> Alcotest.(check bool) "equal" true (Event.equal a b))
        sample_events events
  | Error msg -> Alcotest.fail msg

let test_file_roundtrip () =
  let path = Filename.temp_file "lesslog" ".trace" in
  let w = Trace.Writer.to_file path in
  List.iter (Trace.Writer.emit w) sample_events;
  Trace.Writer.close w;
  Trace.Writer.close w;
  (match Trace.read_file path with
  | Ok events ->
      Alcotest.(check int) "count" (List.length sample_events)
        (List.length events)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_summary () =
  let s = Trace.summarize sample_events in
  Alcotest.(check int) "events" 17 s.Trace.events;
  Alcotest.(check int) "requests" 2 s.Trace.requests;
  Alcotest.(check int) "faults" 1 s.Trace.faults;
  Alcotest.(check int) "replications" 1 s.Trace.replications;
  Alcotest.(check int) "evictions" 1 s.Trace.evictions;
  Alcotest.(check int) "membership" 3 s.Trace.membership_changes;
  Alcotest.(check int) "timeouts" 1 s.Trace.timeouts;
  Alcotest.(check int) "retries" 1 s.Trace.retries;
  Alcotest.(check int) "suspicions" 1 s.Trace.suspicions;
  Alcotest.(check int) "recoveries" 1 s.Trace.recoveries;
  Alcotest.(check (float 1e-9)) "span" 12.0 s.Trace.span

let test_des_emits_trace () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let key = "traced-object" in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:17 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:1500.0 in
  let buf = Buffer.create 65536 in
  let w = Trace.Writer.to_buffer buf in
  let target = Cluster.target_of_key cluster key in
  let other =
    Pid.unsafe_of_int ((Pid.to_int target + 1) mod Params.space params)
  in
  let churn = [ { Des_sim.at = 5.0; action = Des_sim.Leave other } ] in
  let result =
    Des_sim.run ~churn ~sink:(Trace.Writer.emit w) ~rng ~cluster ~key ~demand
      ~duration:10.0 ()
  in
  Trace.Writer.close w;
  match Trace.read_string (Buffer.contents buf) with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
      let s = Trace.summarize events in
      Alcotest.(check int) "requests recorded" result.Des_sim.served
        (s.Trace.requests - s.Trace.faults);
      Alcotest.(check int) "replications recorded"
        result.Des_sim.replicas_created s.Trace.replications;
      Alcotest.(check int) "membership recorded" 1 s.Trace.membership_changes;
      (* Chronological order. *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> Event.time a <= Event.time b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "chronological" true (sorted events)

let test_fault_sim_emits_trace () =
  let params = Params.create ~m:6 () in
  let cluster = Cluster.create params in
  let key = "traced-object" in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:23 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:300.0 in
  let buf = Buffer.create 65536 in
  let w = Trace.Writer.to_buffer buf in
  let live =
    Lesslog_membership.Status_word.live_pids (Cluster.status cluster)
  in
  let plan =
    Lesslog_workload.Faults.generate ~rng ~live ~duration:30.0
      ~crash_fraction:0.05 ~bursts:1 ()
  in
  let config = { Lesslog_des.Fault_sim.default_config with loss = 0.2 } in
  let result =
    Lesslog_des.Fault_sim.run ~config ~plan ~sink:(Trace.Writer.emit w) ~rng
      ~cluster ~key ~demand ~duration:30.0 ()
  in
  Trace.Writer.close w;
  match Trace.read_string (Buffer.contents buf) with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
      let s = Trace.summarize events in
      let module F = Lesslog_des.Fault_sim in
      Alcotest.(check int) "timeouts recorded" result.F.timeouts
        s.Trace.timeouts;
      Alcotest.(check int) "retries recorded" result.F.retransmissions
        s.Trace.retries;
      Alcotest.(check int) "suspicions recorded" result.F.suspicions
        s.Trace.suspicions;
      Alcotest.(check int) "recoveries recorded" result.F.recoveries
        s.Trace.recoveries;
      Alcotest.(check bool) "loss produced timeouts" true (s.Trace.timeouts > 0)

let prop_roundtrip_random =
  Test_support.qcheck_case ~name:"random events round-trip"
    QCheck2.Gen.(
      let key = string_size ~gen:printable (int_range 0 12) in
      let at = float_bound_inclusive 1000.0 in
      let node = int_range 0 4095 in
      oneof
        [
          map2
            (fun (at, origin) (server, hops) ->
              Event.Request { at; origin; server; hops })
            (pair at node)
            (pair (option node) (int_range 0 30));
          map2
            (fun (at, src) (dst, key) -> Event.Replicate { at; src; dst; key })
            (pair at node) (pair node key);
          map2
            (fun (at, node) key -> Event.Evict { at; node; key })
            (pair at node) key;
          map2
            (fun (at, node) change -> Event.Membership { at; node; change })
            (pair at node)
            (oneofl [ `Join; `Leave; `Fail ]);
          map2
            (fun (at, id) (origin, attempt) ->
              Event.Timeout { at; id; origin; attempt })
            (pair at (int_range 0 100_000))
            (pair node (int_range 0 8));
          map2
            (fun (at, id) (origin, attempt) ->
              Event.Retry { at; id; origin; attempt })
            (pair at (int_range 0 100_000))
            (pair node (int_range 0 8));
          map (fun (at, node) -> Event.Suspect { at; node }) (pair at node);
          map (fun (at, node) -> Event.Trust { at; node }) (pair at node);
          map2
            (fun (at, until) rate -> Event.Loss { at; until; rate })
            (pair at at)
            (float_bound_inclusive 1.0);
          map2
            (fun (at, until) (direction, nodes) ->
              Event.Cut { at; until; direction; nodes })
            (pair at at)
            (pair (oneofl [ `Both; `In; `Out ]) (list_size (int_range 0 6) node));
          map2
            (fun (at, name) value -> Event.Mark { at; name; value })
            (pair at (string_size ~gen:printable (int_range 0 12)))
            (float_bound_inclusive 1000.0);
        ])
    (fun e ->
      match Event.of_line (Event.to_line e) with
      | Ok e' -> Event.equal e e'
      | Error _ -> false)

let () =
  Alcotest.run "trace"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_each;
          Alcotest.test_case "key escaping" `Quick test_key_escaping;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
        ] );
      ( "io",
        [
          Alcotest.test_case "writer/reader" `Quick test_writer_and_reader;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "integration",
        [
          Alcotest.test_case "DES emits a coherent trace" `Quick
            test_des_emits_trace;
          Alcotest.test_case "fault sim emits reliability events" `Quick
            test_fault_sim_emits_trace;
        ] );
      ("properties", [ prop_roundtrip_random ]);
    ]
