let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line fields = String.concat "," (List.map escape fields)

let of_rows ~header rows =
  String.concat "\n" (List.map line (header :: rows)) ^ "\n"

let number x = Printf.sprintf "%g" x

let of_series ~x_label series =
  let xs =
    List.concat_map (fun s -> Array.to_list (Series.xs s)) series
    |> List.sort_uniq compare
  in
  let header = x_label :: List.map Series.label series in
  let rows =
    List.map
      (fun x ->
        number x
        :: List.map
             (fun s ->
               match Series.y_at s ~x with Some y -> number y | None -> "")
             series)
      xs
  in
  of_rows ~header rows

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
