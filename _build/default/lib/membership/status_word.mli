(** The status word (paper Section 5.1): one bit per PID slot indicating
    whether the corresponding node is live. Every live node maintains a
    copy; here it is the authoritative membership view of a simulated
    cluster. *)

open Lesslog_id

type t

val create : Params.t -> initially_live:bool -> t
(** All [2^m] slots set to [initially_live]. *)

val of_live_list : Params.t -> Pid.t list -> t
(** Only the listed PIDs are live. *)

val copy : t -> t

val params : t -> Params.t

val is_live : t -> Pid.t -> bool
val is_dead : t -> Pid.t -> bool

val set_live : t -> Pid.t -> unit
(** Register a node as live (idempotent). *)

val set_dead : t -> Pid.t -> unit
(** Register a node as dead (idempotent). *)

val live_count : t -> int
val dead_count : t -> int

val live_pids : t -> Pid.t list
(** Ascending PID order. *)

val dead_pids : t -> Pid.t list

val live_array : t -> Pid.t array
(** Ascending PID order; fresh array. *)

val fold_live : t -> init:'a -> f:('a -> Pid.t -> 'a) -> 'a
val iter_live : t -> (Pid.t -> unit) -> unit

val random_live : t -> Lesslog_prng.Rng.t -> Pid.t option
(** Uniform live PID, [None] when the system is empty. *)

val random_dead : t -> Lesslog_prng.Rng.t -> Pid.t option

val kill_fraction : t -> Lesslog_prng.Rng.t -> fraction:float -> Pid.t list
(** Mark a uniformly chosen [fraction] of the currently live nodes dead and
    return them — the paper's 10/20/30%-dead configurations. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
