lib/hash/fnv.mli:
