open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Catalog = Lesslog_workload.Catalog
module Rng = Lesslog_prng.Rng

let params = Params.create ~m:6 ()
let pid = Pid.unsafe_of_int

let total_of d =
  Array.fold_left ( +. ) 0.0 (d.Demand.rates : float array)

(* --- Uniform ------------------------------------------------------------ *)

let test_uniform_even_split () =
  let status = Status_word.create params ~initially_live:true in
  let d = Demand.uniform status ~total:6400.0 in
  Alcotest.(check (float 1e-6)) "total" 6400.0 (Demand.total d);
  Status_word.iter_live status (fun p ->
      Alcotest.(check (float 1e-9)) "per node" 100.0 (Demand.rate d p))

let test_uniform_skips_dead () =
  let status = Status_word.create params ~initially_live:true in
  Status_word.set_dead status (pid 5);
  let d = Demand.uniform status ~total:6300.0 in
  Alcotest.(check (float 1e-9)) "dead gets none" 0.0 (Demand.rate d (pid 5));
  Alcotest.(check (float 1e-9)) "live share" 100.0 (Demand.rate d (pid 6));
  Alcotest.(check (float 1e-6)) "mass conserved" 6300.0 (total_of d)

let test_uniform_empty_system () =
  let status = Status_word.create params ~initially_live:false in
  let d = Demand.uniform status ~total:1000.0 in
  Alcotest.(check (float 1e-9)) "no demand" 0.0 (Demand.total d)

(* --- Locality ------------------------------------------------------------ *)

let test_locality_shares () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:1 in
  let d = Demand.locality status ~rng ~total:10000.0 in
  Alcotest.(check (float 1e-3)) "mass conserved" 10000.0 (total_of d);
  (* 20% of 64 nodes = 13 hot nodes; they hold 80% of the demand. *)
  let rates =
    List.map (fun p -> Demand.rate d p) (Status_word.live_pids status)
    |> List.sort (fun a b -> compare b a)
  in
  let hot_count = int_of_float (Float.round (0.2 *. 64.0)) in
  let hot_mass =
    List.fold_left ( +. ) 0.0 (List.filteri (fun i _ -> i < hot_count) rates)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hot mass %.0f ~ 8000" hot_mass)
    true
    (Float.abs (hot_mass -. 8000.0) < 1.0)

let test_locality_extremes () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:2 in
  (* Everything hot: degenerates to uniform mass. *)
  let d = Demand.locality ~hot_fraction:1.0 ~hot_share:0.8 status ~rng ~total:640.0 in
  Alcotest.(check (float 1e-3)) "mass conserved" 640.0 (total_of d);
  (* Single hot node takes the whole hot share. *)
  let d2 =
    Demand.locality ~hot_fraction:0.001 ~hot_share:1.0 status ~rng ~total:100.0
  in
  let top =
    List.fold_left
      (fun acc p -> Float.max acc (Demand.rate d2 p))
      0.0
      (Status_word.live_pids status)
  in
  Alcotest.(check (float 1e-6)) "one node has it all" 100.0 top

let test_locality_rejects_bad_params () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "fraction" (Invalid_argument "Demand.locality: hot_fraction")
    (fun () ->
      ignore (Demand.locality ~hot_fraction:1.5 status ~rng ~total:1.0));
  Alcotest.check_raises "share" (Invalid_argument "Demand.locality: hot_share")
    (fun () ->
      ignore (Demand.locality ~hot_share:(-0.1) status ~rng ~total:1.0))

(* --- Hotspot / scale ------------------------------------------------------ *)

let test_hotspot () =
  let status = Status_word.create params ~initially_live:true in
  let d = Demand.hotspot status ~at:(pid 9) ~total:500.0 in
  Alcotest.(check (float 1e-9)) "all at node" 500.0 (Demand.rate d (pid 9));
  Alcotest.(check (float 1e-9)) "others zero" 0.0 (Demand.rate d (pid 10));
  Status_word.set_dead status (pid 3);
  Alcotest.check_raises "dead hotspot" (Invalid_argument "Demand.hotspot: dead node")
    (fun () -> ignore (Demand.hotspot status ~at:(pid 3) ~total:1.0))

let test_scale () =
  let status = Status_word.create params ~initially_live:true in
  let d = Demand.uniform status ~total:640.0 in
  let d2 = Demand.scale d ~factor:0.5 in
  Alcotest.(check (float 1e-9)) "total scaled" 320.0 (Demand.total d2);
  Alcotest.(check (float 1e-9)) "rate scaled" 5.0 (Demand.rate d2 (pid 0))

(* --- Catalog --------------------------------------------------------------- *)

let test_catalog_popularity_order () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:4 in
  let c =
    Catalog.create status ~rng ~files:10 ~total:1000.0 ~spread:Catalog.Uniform
  in
  let totals = List.map (fun (_, d) -> Demand.total d) (Catalog.files c) in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "zipf ordering" true (non_increasing totals);
  Alcotest.(check (float 1e-3)) "mass conserved" 1000.0
    (List.fold_left ( +. ) 0.0 totals)

let test_catalog_lookup () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:5 in
  let c =
    Catalog.create ~prefix:"doc" status ~rng ~files:4 ~total:100.0
      ~spread:Catalog.Uniform
  in
  Alcotest.(check bool) "found" true (Catalog.demand_of c ~key:"doc-0000" <> None);
  Alcotest.(check bool) "missing" true (Catalog.demand_of c ~key:"nope" = None)

let test_catalog_shift_popularity () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:6 in
  let c =
    Catalog.create status ~rng ~files:8 ~total:800.0 ~spread:Catalog.Uniform
  in
  let shifted = Catalog.shift_popularity c ~rng in
  let names l = List.map fst (Catalog.files l) |> List.sort compare in
  Alcotest.(check (list string)) "same name set" (names c) (names shifted);
  let totals l = List.map (fun (_, d) -> Demand.total d) (Catalog.files l) in
  Alcotest.(check (list (float 1e-9))) "same demand profile" (totals c)
    (totals shifted)

(* --- Scenario --------------------------------------------------------------- *)

module Scenario = Lesslog_workload.Scenario

let test_scenario_phases () =
  let status = Status_word.create params ~initially_live:true in
  let d1 = Demand.uniform status ~total:100.0 in
  let d2 = Demand.uniform status ~total:10.0 in
  let s =
    Scenario.of_phases
      [ { Scenario.demand = d1; duration = 5.0 };
        { Scenario.demand = d2; duration = 10.0 } ]
  in
  Alcotest.(check (float 1e-9)) "total duration" 15.0 (Scenario.total_duration s);
  let total_at t =
    match Scenario.demand_at s ~time:t with
    | Some d -> Demand.total d
    | None -> -1.0
  in
  Alcotest.(check (float 1e-9)) "phase 1" 100.0 (total_at 0.0);
  Alcotest.(check (float 1e-9)) "phase 1 end" 100.0 (total_at 4.999);
  Alcotest.(check (float 1e-9)) "phase 2" 10.0 (total_at 5.0);
  Alcotest.(check (float 1e-9)) "past end" (-1.0) (total_at 15.0);
  Alcotest.(check (float 1e-9)) "before start" (-1.0) (total_at (-0.1))

let test_scenario_rejects_bad_phases () =
  let status = Status_word.create params ~initially_live:true in
  let d = Demand.uniform status ~total:1.0 in
  Alcotest.check_raises "empty" (Invalid_argument "Scenario.of_phases: empty")
    (fun () -> ignore (Scenario.of_phases []));
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Scenario.of_phases: non-positive duration") (fun () ->
      ignore (Scenario.of_phases [ { Scenario.demand = d; duration = 0.0 } ]))

let test_flash_crowd_scenario () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:9 in
  let s =
    Scenario.flash_crowd status ~rng ~peak:1000.0 ~calm:50.0 ~peak_duration:10.0
      ~calm_duration:20.0
  in
  Alcotest.(check (float 1e-9)) "duration" 30.0 (Scenario.total_duration s);
  let peak = Option.get (Scenario.demand_at s ~time:1.0) in
  let calm = Option.get (Scenario.demand_at s ~time:15.0) in
  Alcotest.(check (float 1e-3)) "peak total" 1000.0 (Demand.total peak);
  Alcotest.(check (float 1e-3)) "calm total" 50.0 (Demand.total calm);
  (* Same spatial shape, scaled. *)
  Status_word.iter_live status (fun p ->
      Alcotest.(check (float 1e-9)) "scaled shape"
        (Demand.rate peak p /. 20.0)
        (Demand.rate calm p))

(* --- Timeline --------------------------------------------------------------- *)

let test_with_classes_split () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:7 in
  let c =
    Catalog.with_classes status ~rng ~files:8 ~total:1000.0
      ~spread:Catalog.Uniform ~classes:Catalog.default_classes
  in
  let totals = List.map (fun (_, d) -> Demand.total d) (Catalog.files c) in
  (* 1 hot file at 60%, 4 warm sharing 30%, 3 cold sharing 10%. *)
  Alcotest.(check (float 1e-6)) "hot file" 600.0 (List.nth totals 0);
  Alcotest.(check (float 1e-6)) "warm file" 75.0 (List.nth totals 1);
  Alcotest.(check (float 1e-6)) "cold file" (100.0 /. 3.0) (List.nth totals 7);
  Alcotest.(check (float 1e-6)) "mass conserved" 1000.0
    (Catalog.total_demand c)

let test_timeline_flash_and_shift () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:8 in
  let tl =
    Catalog.timeline status ~rng ~files:4 ~total:400.0 ~spread:Catalog.Uniform
      ~shift_every:2
      ~flashes:[ { Catalog.rank = 3; factor = 10.0; from_i = 1; until_i = 2 } ]
      ~intervals:4 ~interval:1.0
  in
  Alcotest.(check int) "intervals" 4 (Catalog.interval_count tl);
  Alcotest.(check (float 1e-9)) "interval" 1.0 (Catalog.interval tl);
  (* The flash multiplies exactly its file, exactly in its window. *)
  let demand_at ~i rank =
    let c = Catalog.step tl ~i in
    match List.nth_opt (Catalog.files c) rank with
    | Some (_, d) -> Demand.total d
    | None -> Alcotest.fail "missing rank"
  in
  let base = Catalog.step tl ~i:0 in
  let flash_name, quiet = List.nth (Catalog.files base) 3 in
  let flashed =
    match Catalog.demand_of (Catalog.step tl ~i:1) ~key:flash_name with
    | Some d -> Demand.total d
    | None -> Alcotest.fail "flash file vanished"
  in
  Alcotest.(check (float 1e-6)) "10x during the flash"
    (10.0 *. Demand.total quiet) flashed;
  Alcotest.(check (float 1e-6)) "over after until_i"
    (demand_at ~i:0 0) (demand_at ~i:2 0);
  (* Time lookup agrees with the step table and ends cleanly. *)
  Alcotest.(check bool) "at inside" true (Catalog.at tl ~time:3.5 <> None);
  Alcotest.(check bool) "at past end" true (Catalog.at tl ~time:4.0 = None)

let test_timeline_rejects_bad_windows () =
  let status = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:10 in
  let mk ?(flashes = []) ~intervals ~interval () =
    ignore
      (Catalog.timeline status ~rng ~files:2 ~total:10.0
         ~spread:Catalog.Uniform ~flashes ~intervals ~interval)
  in
  Alcotest.check_raises "intervals"
    (Invalid_argument "Catalog.timeline: intervals") (fun () ->
      mk ~intervals:0 ~interval:1.0 ());
  Alcotest.check_raises "interval"
    (Invalid_argument "Catalog.timeline: interval") (fun () ->
      mk ~intervals:2 ~interval:0.0 ());
  Alcotest.check_raises "flash window"
    (Invalid_argument "Catalog.timeline: flash window") (fun () ->
      mk
        ~flashes:[ { Catalog.rank = 0; factor = 2.0; from_i = 2; until_i = 2 } ]
        ~intervals:3 ~interval:1.0 ())

let prop_uniform_mass_conserved =
  Test_support.qcheck_case ~name:"uniform conserves mass"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      float_bound_inclusive 10000.0 >>= fun total -> return (status, total))
    (fun (status, total) ->
      let d = Demand.uniform status ~total in
      Float.abs (total_of d -. Demand.total d) < 1e-6)

let prop_locality_mass_conserved =
  Test_support.qcheck_case ~name:"locality conserves mass"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      int_range 0 1_000_000 >>= fun seed ->
      float_bound_inclusive 10000.0 >>= fun total -> return (status, seed, total))
    (fun (status, seed, total) ->
      let rng = Rng.create ~seed in
      let d = Demand.locality status ~rng ~total in
      Float.abs (total_of d -. Demand.total d) < 1e-3
      && Status_word.fold_live status ~init:true ~f:(fun acc p ->
             acc && Demand.rate d p >= 0.0))

let prop_scale_mass_conserved =
  Test_support.qcheck_case ~name:"scale conserves mass"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_status params >>= fun status ->
      float_bound_inclusive 10000.0 >>= fun total ->
      float_bound_inclusive 8.0 >>= fun factor -> return (status, total, factor))
    (fun (status, total, factor) ->
      let d = Demand.uniform status ~total in
      let d2 = Demand.scale d ~factor in
      Float.abs (Demand.total d2 -. (factor *. Demand.total d)) < 1e-6
      && Float.abs (total_of d2 -. Demand.total d2) < 1e-6)

let gen_catalog =
  QCheck2.Gen.(
    Test_support.gen_params >>= fun params ->
    Test_support.gen_status params >>= fun status ->
    int_range 0 1_000_000 >>= fun seed ->
    int_range 1 32 >>= fun files ->
    float_range 0.1 10000.0 >>= fun total -> return (status, seed, files, total))

let prop_catalog_mass_conserved =
  Test_support.qcheck_case ~name:"catalog conserves mass"
    gen_catalog
    (fun (status, seed, files, total) ->
      let rng = Rng.create ~seed in
      let c =
        Catalog.create status ~rng ~files ~total ~spread:Catalog.Uniform
      in
      (* Empty systems spread no demand; live ones conserve it exactly. *)
      let live = Status_word.live_count status > 0 in
      let expect = if live then total else 0.0 in
      Float.abs (Catalog.total_demand c -. expect) < 1e-3)

let prop_shift_popularity_conserves =
  Test_support.qcheck_case ~name:"shift_popularity conserves mass and names"
    gen_catalog
    (fun (status, seed, files, total) ->
      let rng = Rng.create ~seed in
      let c =
        Catalog.create status ~rng ~files ~total ~spread:Catalog.Uniform
      in
      let shifted = Catalog.shift_popularity c ~rng in
      let names l = List.map fst (Catalog.files l) |> List.sort compare in
      Float.abs (Catalog.total_demand shifted -. Catalog.total_demand c)
      < 1e-3
      && names c = names shifted)

let () =
  Alcotest.run "workload"
    [
      ( "uniform",
        [
          Alcotest.test_case "even split" `Quick test_uniform_even_split;
          Alcotest.test_case "skips dead" `Quick test_uniform_skips_dead;
          Alcotest.test_case "empty system" `Quick test_uniform_empty_system;
        ] );
      ( "locality",
        [
          Alcotest.test_case "80/20 shares" `Quick test_locality_shares;
          Alcotest.test_case "extremes" `Quick test_locality_extremes;
          Alcotest.test_case "bad params" `Quick test_locality_rejects_bad_params;
        ] );
      ( "hotspot/scale",
        [
          Alcotest.test_case "hotspot" `Quick test_hotspot;
          Alcotest.test_case "scale" `Quick test_scale;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "phase lookup" `Quick test_scenario_phases;
          Alcotest.test_case "bad phases" `Quick test_scenario_rejects_bad_phases;
          Alcotest.test_case "flash crowd" `Quick test_flash_crowd_scenario;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "zipf popularity" `Quick test_catalog_popularity_order;
          Alcotest.test_case "lookup" `Quick test_catalog_lookup;
          Alcotest.test_case "popularity shift" `Quick
            test_catalog_shift_popularity;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "hot/warm/cold split" `Quick
            test_with_classes_split;
          Alcotest.test_case "flash + shift schedule" `Quick
            test_timeline_flash_and_shift;
          Alcotest.test_case "bad windows" `Quick
            test_timeline_rejects_bad_windows;
        ] );
      ( "properties",
        [
          prop_uniform_mass_conserved;
          prop_locality_mass_conserved;
          prop_scale_mass_conserved;
          prop_catalog_mass_conserved;
          prop_shift_popularity_conserves;
        ] );
    ]
