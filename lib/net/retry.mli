(** Retransmission policies: capped exponential backoff with jitter.

    A request is transmitted up to [max_retries + 1] times. The [k]-th
    retransmission ([k >= 1]) waits [base * factor^(k-1)] seconds after
    the timeout that triggered it, capped at [max_delay]; {!delay}
    additionally spreads the wait uniformly over
    [[backoff * (1 - jitter), backoff]] so that clients whose requests
    were lost together do not retransmit together. *)

type policy = {
  max_retries : int;  (** Retransmissions after the first attempt. *)
  base : float;  (** Backoff before the first retransmission, seconds. *)
  factor : float;  (** Multiplier per further retransmission. *)
  max_delay : float;  (** Backoff cap, seconds. *)
  jitter : float;  (** Fraction of the backoff randomized away, in [0, 1]. *)
}

val default : policy
(** [{max_retries = 4; base = 0.25; factor = 2.0; max_delay = 2.0;
    jitter = 0.5}]. *)

val create :
  ?max_retries:int ->
  ?base:float ->
  ?factor:float ->
  ?max_delay:float ->
  ?jitter:float ->
  unit ->
  policy
(** {!default} with fields overridden.
    @raise Invalid_argument on a negative retry count, non-positive
    [base], [factor < 1], [max_delay < base] or [jitter] outside
    [[0, 1]]. *)

val attempts : policy -> int
(** Total transmissions a request may use: [max_retries + 1]. *)

val backoff : policy -> retry:int -> float
(** Deterministic backoff before retransmission [retry] (1-based):
    [min max_delay (base * factor^(retry-1))].
    @raise Invalid_argument when [retry < 1]. *)

val delay : policy -> Lesslog_prng.Rng.t -> retry:int -> float
(** {!backoff} with jitter applied: uniform over
    [[backoff * (1 - jitter), backoff]]. *)

val max_lifetime : policy -> timeout:float -> float
(** An upper bound on how long a request can stay pending: every attempt
    times out and every backoff hits its jitterless maximum. Useful for
    sizing drain windows in simulations. *)
