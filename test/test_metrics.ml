module Stats = Lesslog_metrics.Stats
module Histogram = Lesslog_metrics.Histogram
module Timeseries = Lesslog_metrics.Timeseries

let feq = Alcotest.(check (float 1e-9))

(* --- Stats ------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  feq "mean" 0.0 (Stats.mean s);
  feq "variance" 0.0 (Stats.variance s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  feq "mean" 5.0 (Stats.mean s);
  feq "variance" 4.0 (Stats.variance s);
  feq "stddev" 2.0 (Stats.stddev s);
  feq "min" 2.0 (Stats.min_value s);
  feq "max" 9.0 (Stats.max_value s);
  feq "total" 40.0 (Stats.total s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-6)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Stats.variance whole)
    (Stats.variance merged);
  feq "min" (Stats.min_value whole) (Stats.min_value merged);
  feq "max" (Stats.max_value whole) (Stats.max_value merged)

let test_stats_merge_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add b 3.0;
  feq "empty-left" 3.0 (Stats.mean (Stats.merge a b));
  feq "empty-right" 3.0 (Stats.mean (Stats.merge b a))

let prop_stats_mean_matches_naive =
  Test_support.qcheck_case ~name:"welford mean = naive mean"
    QCheck2.Gen.(list_size (int_range 1 100) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6)

let prop_stats_merge_associative_count =
  Test_support.qcheck_case ~name:"merge preserves counts/totals"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50) (float_bound_inclusive 100.0))
        (list_size (int_range 0 50) (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      let m = Stats.merge a b in
      Stats.count m = List.length xs + List.length ys
      && Float.abs (Stats.total m -. (Stats.total a +. Stats.total b)) < 1e-6)

(* --- Histogram --------------------------------------------------------- *)

let test_histogram_exact_quantiles () =
  let h = Histogram.Exact.create () in
  List.iter (Histogram.Exact.add_int h) (List.init 101 (fun i -> i));
  feq "median" 50.0 (Histogram.Exact.median h);
  feq "p0" 0.0 (Histogram.Exact.quantile h 0.0);
  feq "p100" 100.0 (Histogram.Exact.quantile h 1.0);
  feq "p25" 25.0 (Histogram.Exact.quantile h 0.25);
  feq "mean" 50.0 (Histogram.Exact.mean h);
  Alcotest.(check int) "count" 101 (Histogram.Exact.count h)

let test_histogram_sketch_quantiles () =
  let h = Histogram.create () in
  List.iter (Histogram.add_int h) (List.init 101 (fun i -> i));
  (* min/max/count/mean are exact; interior quantiles within 0.5%. *)
  feq "p0" 0.0 (Histogram.quantile h 0.0);
  feq "p100" 100.0 (Histogram.quantile h 1.0);
  feq "mean" 50.0 (Histogram.mean h);
  Alcotest.(check int) "count" 101 (Histogram.count h);
  Alcotest.(check (float 0.5)) "median" 50.0 (Histogram.median h);
  Alcotest.(check (float 0.25)) "p25" 25.0 (Histogram.quantile h 0.25)

let test_histogram_merge () =
  let a = Histogram.create ()
  and b = Histogram.create ()
  and whole = Histogram.create () in
  let xs = List.init 60 (fun i -> float_of_int i /. 3.0)
  and ys = List.init 40 (fun i -> float_of_int (i * 7) +. 0.5) in
  List.iter (Histogram.add a) xs;
  List.iter (Histogram.add b) ys;
  List.iter (Histogram.add whole) (xs @ ys);
  Histogram.merge a ~from:b;
  Alcotest.(check int) "count" (Histogram.count whole) (Histogram.count a);
  feq "mean" (Histogram.mean whole) (Histogram.mean a);
  feq "min" (Histogram.min_value whole) (Histogram.min_value a);
  feq "max" (Histogram.max_value whole) (Histogram.max_value a);
  List.iter
    (fun q ->
      feq
        (Printf.sprintf "q%.2f" q)
        (Histogram.quantile whole q) (Histogram.quantile a q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  (* [from] untouched; merging an empty histogram is a no-op. *)
  Alcotest.(check int) "from untouched" 40 (Histogram.count b);
  Histogram.merge a ~from:(Histogram.create ());
  Alcotest.(check int) "empty from" (Histogram.count whole) (Histogram.count a);
  let fresh = Histogram.create () in
  Histogram.merge fresh ~from:a;
  Alcotest.(check int) "into empty" (Histogram.count a) (Histogram.count fresh);
  feq "into empty median" (Histogram.median a) (Histogram.median fresh)

let test_histogram_exact_merge () =
  let a = Histogram.Exact.create () and b = Histogram.Exact.create () in
  List.iter (Histogram.Exact.add a) [ 5.0; 1.0; 9.0 ];
  List.iter (Histogram.Exact.add b) [ 2.0; 8.0 ];
  Histogram.Exact.merge a ~from:b;
  Alcotest.(check int) "count" 5 (Histogram.Exact.count a);
  feq "mean" 5.0 (Histogram.Exact.mean a);
  feq "median" 5.0 (Histogram.Exact.median a);
  feq "min" 1.0 (Histogram.Exact.min_value a);
  feq "max" 9.0 (Histogram.Exact.max_value a);
  Alcotest.(check int) "from untouched" 2 (Histogram.Exact.count b)

let gen_sample_lists =
  QCheck2.Gen.(
    pair
      (list_size (int_range 0 120) (float_range 0.001 5000.0))
      (list_size (int_range 0 120) (float_range 0.001 5000.0)))

let prop_histogram_merge_matches_single_stream =
  Test_support.qcheck_case ~name:"sketch merge = single stream"
    gen_sample_lists
    (fun (xs, ys) ->
      let a = Histogram.create () and whole = Histogram.create () in
      let b = Histogram.create () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      List.iter (Histogram.add whole) (xs @ ys);
      Histogram.merge a ~from:b;
      Histogram.count a = Histogram.count whole
      && Float.abs (Histogram.mean a -. Histogram.mean whole) < 1e-9
      && (xs @ ys = []
         || List.for_all
              (fun q ->
                Histogram.quantile a q = Histogram.quantile whole q)
              [ 0.0; 0.25; 0.5; 0.75; 0.99; 1.0 ]))

let prop_histogram_merge_vs_exact =
  Test_support.qcheck_case ~name:"merged sketch tracks exact oracle"
    gen_sample_lists
    (fun (xs, ys) ->
      match xs @ ys with
      | [] -> true
      | all ->
          let a = Histogram.create () and b = Histogram.create () in
          let e = Histogram.Exact.create () in
          List.iter (Histogram.add a) xs;
          List.iter (Histogram.add b) ys;
          List.iter (Histogram.Exact.add e) all;
          Histogram.merge a ~from:b;
          List.for_all
            (fun q ->
              let s = Histogram.quantile a q
              and x = Histogram.Exact.quantile e q in
              (* γ-bounded relative error, exact at the extremes. *)
              Float.abs (s -. x) <= (0.006 *. x) +. 1e-9)
            [ 0.0; 0.5; 0.9; 1.0 ])

let test_histogram_empty_raises () =
  let h = Histogram.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.quantile: empty")
    (fun () -> ignore (Histogram.quantile h 0.5));
  let e = Histogram.Exact.create () in
  Alcotest.check_raises "exact empty"
    (Invalid_argument "Histogram.quantile: empty") (fun () ->
      ignore (Histogram.Exact.quantile e 0.5))

let test_histogram_buckets () =
  let h = Histogram.Exact.create () in
  List.iter (Histogram.Exact.add h) [ 0.1; 0.2; 1.5; 1.9; 3.0 ];
  Alcotest.(check (list (pair (float 1e-9) int)))
    "buckets"
    [ (0.0, 2); (1.0, 2); (3.0, 1) ]
    (Histogram.Exact.buckets h ~width:1.0);
  (* The sketch bins representatives, which sit within 0.25% of the
     samples — same buckets for values this far from the boundaries. *)
  let s = Histogram.create () in
  List.iter (Histogram.add s) [ 0.1; 0.2; 1.5; 1.9; 3.1 ];
  Alcotest.(check (list (pair (float 1e-2) int)))
    "sketch buckets"
    [ (0.0, 2); (1.0, 2); (3.0, 1) ]
    (Histogram.buckets s ~width:1.0)

let prop_histogram_quantile_monotone =
  Test_support.qcheck_case ~name:"quantiles monotone"
    QCheck2.Gen.(list_size (int_range 2 80) (float_bound_inclusive 100.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let qs = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
      let vals = List.map (Histogram.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

let prop_histogram_sketch_tracks_exact =
  Test_support.qcheck_case ~name:"sketch quantile within 0.5% of exact"
    QCheck2.Gen.(list_size (int_range 1 200) (float_range 1e-3 1e6))
    (fun xs ->
      let s = Histogram.create () and e = Histogram.Exact.create () in
      List.iter
        (fun x ->
          Histogram.add s x;
          Histogram.Exact.add e x)
        xs;
      Histogram.count s = Histogram.Exact.count e
      && Float.abs (Histogram.mean s -. Histogram.Exact.mean e)
         <= 1e-9 *. Float.abs (Histogram.Exact.mean e)
      && List.for_all
           (fun q ->
             let a = Histogram.quantile s q
             and b = Histogram.Exact.quantile e q in
             Float.abs (a -. b) <= 0.005 *. Float.abs b)
           [ 0.0; 0.1; 0.5; 0.9; 0.99; 1.0 ])

(* --- Timeseries --------------------------------------------------------- *)

let test_timeseries_basic () =
  let ts = Timeseries.create ~label:"x" () in
  Timeseries.record ts ~time:0.0 1.0;
  Timeseries.record ts ~time:1.0 2.0;
  Timeseries.record ts ~time:5.0 3.0;
  Alcotest.(check int) "length" 3 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "last" (Some (5.0, 3.0)) (Timeseries.last ts);
  Alcotest.(check (option (float 1e-9))) "value_at 0.5" (Some 1.0)
    (Timeseries.value_at ts ~time:0.5);
  Alcotest.(check (option (float 1e-9))) "value_at 4.9" (Some 2.0)
    (Timeseries.value_at ts ~time:4.9);
  Alcotest.(check (option (float 1e-9))) "value_at 99" (Some 3.0)
    (Timeseries.value_at ts ~time:99.0);
  Alcotest.(check (option (float 1e-9))) "before first" None
    (Timeseries.value_at ts ~time:(-1.0))

let test_timeseries_rejects_backwards () =
  let ts = Timeseries.create () in
  Timeseries.record ts ~time:2.0 1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeseries.record: time went backwards") (fun () ->
      Timeseries.record ts ~time:1.0 0.0)

let test_timeseries_points_chronological () =
  let ts = Timeseries.create () in
  List.iter (fun t -> Timeseries.record ts ~time:t t) [ 0.0; 1.0; 2.0 ];
  Alcotest.(check bool) "ascending" true
    (let pts = Timeseries.points ts in
     pts = [| (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) |])

(* --- Fairness ------------------------------------------------------------ *)

module Fairness = Lesslog_metrics.Fairness

let test_jain_even () =
  feq "even is 1" 1.0 (Fairness.jain [| 5.0; 5.0; 5.0; 5.0 |]);
  feq "empty is 1" 1.0 (Fairness.jain [||]);
  feq "all-zero is 1" 1.0 (Fairness.jain [| 0.0; 0.0 |])

let test_jain_skewed () =
  (* One node takes everything among n: index = 1/n. *)
  feq "monopoly" 0.25 (Fairness.jain [| 8.0; 0.0; 0.0; 0.0 |]);
  let mixed = Fairness.jain [| 4.0; 2.0; 2.0; 0.0 |] in
  Alcotest.(check bool) "between" true (mixed > 0.25 && mixed < 1.0)

let test_jain_nonzero_ignores_idle () =
  feq "even among servers" 1.0 (Fairness.jain_nonzero [| 3.0; 0.0; 3.0; 0.0 |]);
  Alcotest.(check bool) "whole-array view lower" true
    (Fairness.jain [| 3.0; 0.0; 3.0; 0.0 |] < 1.0)

let test_peak_to_mean () =
  feq "even" 1.0 (Fairness.peak_to_mean [| 2.0; 2.0 |]);
  feq "skewed" (4.0 /. 3.0) (Fairness.peak_to_mean [| 2.0; 4.0 |]);
  feq "empty" 1.0 (Fairness.peak_to_mean [||])

let prop_jain_bounds =
  Test_support.qcheck_case ~name:"jain in [1/n, 1]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let j = Fairness.jain a in
      let n = float_of_int (Array.length a) in
      j >= (1.0 /. n) -. 1e-9 && j <= 1.0 +. 1e-9)

let prop_jain_scale_invariant =
  Test_support.qcheck_case ~name:"jain scale-invariant"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (float_range 0.1 100.0))
        (float_range 0.5 10.0))
    (fun (xs, k) ->
      let a = Array.of_list xs in
      let scaled = Array.map (fun x -> x *. k) a in
      Float.abs (Fairness.jain a -. Fairness.jain scaled) < 1e-9)

let () =
  Alcotest.run "metrics"
    [
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact quantiles" `Quick
            test_histogram_exact_quantiles;
          Alcotest.test_case "sketch quantiles" `Quick
            test_histogram_sketch_quantiles;
          Alcotest.test_case "empty raises" `Quick test_histogram_empty_raises;
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "exact merge" `Quick test_histogram_exact_merge;
          prop_histogram_merge_matches_single_stream;
          prop_histogram_merge_vs_exact;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "record/query" `Quick test_timeseries_basic;
          Alcotest.test_case "monotone time" `Quick
            test_timeseries_rejects_backwards;
          Alcotest.test_case "chronological points" `Quick
            test_timeseries_points_chronological;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "even" `Quick test_jain_even;
          Alcotest.test_case "skewed" `Quick test_jain_skewed;
          Alcotest.test_case "nonzero view" `Quick test_jain_nonzero_ignores_idle;
          Alcotest.test_case "peak-to-mean" `Quick test_peak_to_mean;
        ] );
      ( "properties",
        [
          prop_stats_mean_matches_naive;
          prop_stats_merge_associative_count;
          prop_histogram_quantile_monotone;
          prop_histogram_sketch_tracks_exact;
          prop_jain_bounds;
          prop_jain_scale_invariant;
        ] );
    ]
