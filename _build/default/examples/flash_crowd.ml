(* Flash crowd: a file goes viral in one region of a 256-node P2P system.

   The event-driven simulator plays out the scenario the paper's
   introduction motivates: a popular file overloads its host, LessLog
   replicates it down the lookup tree without consulting any access log,
   latency recovers, and once the crowd disperses the counter-based
   mechanism evicts the now-cold replicas.

   Run with: dune exec examples/flash_crowd.exe *)

open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Demand = Lesslog_workload.Demand
module Des_sim = Lesslog_des.Des_sim
module Balance = Lesslog_flow.Balance
module Histogram = Lesslog_metrics.Histogram
module Rng = Lesslog_prng.Rng

let () =
  let params = Params.create ~m:8 () in
  let cluster = Cluster.create params in
  let key = "cdn/viral-clip.webm" in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:2024 in
  Printf.printf "256-node system; %S inserted at P(%d)\n\n" key
    (Pid.to_int (Cluster.target_of_key cluster key));

  (* 3,000 req/s, 80%% of them from a 20%% hot region. *)
  let status = Cluster.status cluster in
  let demand = Demand.locality status ~rng ~total:3000.0 in
  Printf.printf
    "flash crowd: 3000 req/s, locality 80/20, node capacity 100 req/s\n";
  let result = Des_sim.run ~rng ~cluster ~key ~demand ~duration:60.0 () in
  Printf.printf "  served            %d requests\n" result.Des_sim.served;
  Printf.printf "  faults            %d\n" result.Des_sim.faults;
  Printf.printf "  replicas created  %d\n" result.Des_sim.replicas_created;
  (match result.Des_sim.last_replication with
  | Some t -> Printf.printf "  converged at      %.2f s\n" t
  | None -> print_endline "  no replication needed");
  Printf.printf "  latency           p50 %.0f ms   p99 %.0f ms\n"
    (1000.0 *. Histogram.median result.Des_sim.latencies)
    (1000.0 *. Histogram.quantile result.Des_sim.latencies 0.99);
  Printf.printf "  hops              mean %.2f   max %.0f\n"
    (Histogram.mean result.Des_sim.hops)
    (Histogram.max_value result.Des_sim.hops);
  Printf.printf "  overloaded nodes at end: %d\n\n"
    result.Des_sim.overloaded_at_end;

  (* Copies over time: the replication cascade. *)
  let timeline = Lesslog_metrics.Timeseries.points result.Des_sim.replica_timeline in
  print_endline "replica cascade (time s -> copies):";
  Array.iteri
    (fun i (t, v) ->
      if i < 8 || i = Array.length timeline - 1 then
        Printf.printf "  %6.2f  %.0f\n" t v)
    timeline;
  print_newline ();

  (* The crowd disperses: demand drops 20x; cold replicas are evicted by
     the counter-based mechanism, but never so far that a node would
     overload again. *)
  let copies_before = Cluster.total_copies cluster ~key in
  let decayed = Demand.scale demand ~factor:0.05 in
  let evicted =
    Balance.evict_cold ~capacity:100.0 ~cluster ~key ~demand:decayed
      ~min_rate:10.0 ()
  in
  Printf.printf
    "crowd disperses (150 req/s): evicted %d of %d copies; %d remain\n"
    evicted copies_before
    (Cluster.total_copies cluster ~key);
  let loads = Balance.loads ~cluster ~key ~demand:decayed in
  Printf.printf "max per-node load after eviction: %.1f req/s (capacity 100)\n"
    (Array.fold_left Float.max 0.0 loads.Lesslog_flow.Flow.serve)
