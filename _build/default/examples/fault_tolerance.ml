(* Fault tolerance: how many simultaneous failures can the 2^b-subtree
   model absorb? (paper Section 4)

   For b = 0..3 we insert a catalogue of files into a 256-node system,
   crash 30% of the nodes at once (no recovery window), and measure which
   reads still succeed — including how often a surviving read had to
   migrate to a sibling subtree.

   Run with: dune exec examples/fault_tolerance.exe *)

open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module File_store = Lesslog_storage.File_store
module Rng = Lesslog_prng.Rng

let () =
  let m = 8 and files = 40 and kill = 0.3 in
  Printf.printf
    "256-node system, %d files, 30%% of nodes crash simultaneously\n\n" files;
  Printf.printf "%-4s  %-8s  %-10s  %-12s  %s\n" "b" "copies" "faults"
    "fault rate" "migrated reads";
  List.iter
    (fun b ->
      let params = Params.create ~m ~b () in
      let cluster = Cluster.create params in
      let rng = Rng.create ~seed:(100 + b) in
      let keys = List.init files (fun i -> Printf.sprintf "vault/doc-%02d" i) in
      let copies =
        List.fold_left
          (fun acc key -> acc + List.length (Ops.insert cluster ~key))
          0 keys
      in
      (* Simultaneous crash: stores vanish with the nodes. *)
      let status = Cluster.status cluster in
      let victims = Status_word.kill_fraction status rng ~fraction:kill in
      List.iter
        (fun v ->
          let store = Cluster.store cluster v in
          List.iter (fun key -> File_store.remove store ~key)
            (File_store.keys store))
        victims;
      let total = ref 0 and faults = ref 0 and migrated = ref 0 in
      Status_word.iter_live status (fun origin ->
          List.iter
            (fun key ->
              incr total;
              let r = Ops.get cluster ~origin ~key in
              if r.Ops.server = None then incr faults
              else if r.Ops.subtree_migrations > 0 then incr migrated)
            keys);
      Printf.printf "%-4d  %-8d  %-10d  %-12.4f  %d\n" b copies !faults
        (float_of_int !faults /. float_of_int !total)
        !migrated)
    [ 0; 1; 2; 3 ];
  print_endline
    "\nwith b >= 1 every file also survives any single failure by design;\n\
     the paper's guarantee holds as long as the 2^b targets of a file do\n\
     not fail simultaneously."
