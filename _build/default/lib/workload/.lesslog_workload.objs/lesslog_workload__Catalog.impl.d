lib/workload/catalog.ml: Array Demand Lesslog_membership Lesslog_prng Option Printf String
