lib/can/can.mli: Lesslog_prng
