module Status_word = Lesslog_membership.Status_word
module Rng = Lesslog_prng.Rng
module Zipf = Lesslog_prng.Zipf

type spread = Uniform | Locality of { hot_fraction : float; hot_share : float }

type t = {
  files : (string * Demand.t) array;
  index : (string, int) Hashtbl.t;
      (* name -> position in [files]; rebuilt whenever the entry array is,
         so [demand_of] is an O(1) hash probe instead of an O(files)
         linear scan with a string compare per entry — the difference
         between a per-interval poll being free and being quadratic once
         adaptive runs ask for every file's demand every interval. *)
}

let build_index entries =
  let index = Hashtbl.create (Array.length entries * 2) in
  Array.iteri (fun i (name, _) -> Hashtbl.replace index name i) entries;
  index

let of_entries entries = { files = entries; index = build_index entries }

let demand_for status ~rng ~spread ~total =
  match spread with
  | Uniform -> Demand.uniform status ~total
  | Locality { hot_fraction; hot_share } ->
      Demand.locality ~hot_fraction ~hot_share status ~rng ~total

(* Rank digits grow with the catalogue: width is derived from [files]
   (minimum 4, the historical format), so names stay lexically sorted and
   equal-width past 9999 files instead of silently overflowing "%04d". *)
let rank_width files =
  let rec digits n = if n < 10 then 1 else 1 + digits (n / 10) in
  max 4 (digits (max 1 (files - 1)))

let name_of ~prefix ~width rank = Printf.sprintf "%s-%0*d" prefix width rank

let create ?(prefix = "file") ?(zipf_s = 0.9) status ~rng ~files ~total ~spread =
  if files <= 0 then invalid_arg "Catalog.create: files";
  let zipf = Zipf.create ~n:files ~s:zipf_s in
  let width = rank_width files in
  let entries =
    Array.init files (fun rank ->
        let share = Zipf.probability zipf rank in
        let name = name_of ~prefix ~width rank in
        (name, demand_for status ~rng ~spread ~total:(total *. share)))
  in
  of_entries entries

let files t = Array.to_list t.files

let demand_of t ~key =
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some i -> Some (snd t.files.(i))

let shift_popularity t ~rng =
  let names = Array.map fst t.files in
  let demands = Array.map snd t.files in
  Rng.shuffle rng names;
  of_entries (Array.map2 (fun name demand -> (name, demand)) names demands)

(* --- Time-varying catalogues -------------------------------------------- *)

type classes = {
  hot_files : int;
  warm_files : int;
  hot_share : float;
  warm_share : float;
}

let default_classes =
  { hot_files = 1; warm_files = 4; hot_share = 0.6; warm_share = 0.3 }

type flash = { rank : int; factor : float; from_i : int; until_i : int }

type timeline = { interval : float; steps : t array }

(* A hot/warm/cold catalogue: the population splits into three classes
   whose per-file demand is the class share divided evenly over the class
   — the piecewise-constant popularity profile of the dynamic-replication
   literature (as opposed to [create]'s smooth Zipf tail). Total demand
   is conserved exactly: shares are renormalized over the classes that
   are actually populated. *)
let with_classes ?(prefix = "file") status ~rng ~files ~total ~spread ~classes
    =
  if files <= 0 then invalid_arg "Catalog.with_classes: files";
  let { hot_files; warm_files; hot_share; warm_share } = classes in
  if hot_files < 0 || warm_files < 0 || hot_files + warm_files > files then
    invalid_arg "Catalog.with_classes: class sizes";
  if
    hot_share < 0.0 || warm_share < 0.0
    || hot_share +. warm_share > 1.0 +. 1e-9
  then invalid_arg "Catalog.with_classes: class shares";
  let cold_files = files - hot_files - warm_files in
  let cold_share = Float.max 0.0 (1.0 -. hot_share -. warm_share) in
  (* Shares of empty classes are re-spread over the populated ones. *)
  let populated_share =
    (if hot_files > 0 then hot_share else 0.0)
    +. (if warm_files > 0 then warm_share else 0.0)
    +. if cold_files > 0 then cold_share else 0.0
  in
  let norm = if populated_share > 0.0 then 1.0 /. populated_share else 0.0 in
  let per_file rank =
    let share, count =
      if rank < hot_files then (hot_share, hot_files)
      else if rank < hot_files + warm_files then (warm_share, warm_files)
      else (cold_share, cold_files)
    in
    total *. share *. norm /. float_of_int count
  in
  let width = rank_width files in
  let entries =
    Array.init files (fun rank ->
        ( name_of ~prefix ~width rank,
          demand_for status ~rng ~spread ~total:(per_file rank) ))
  in
  of_entries entries

let apply_flashes base ~flashes ~i =
  let active =
    List.filter (fun f -> f.from_i <= i && i < f.until_i) flashes
  in
  if active = [] then base
  else begin
    let entries = Array.copy base.files in
    List.iter
      (fun f ->
        if f.rank >= 0 && f.rank < Array.length entries then begin
          let name, demand = entries.(f.rank) in
          entries.(f.rank) <- (name, Demand.scale demand ~factor:f.factor)
        end)
      active;
    of_entries entries
  end

let timeline ?prefix ?classes ?(shift_every = 0) ?(flashes = []) status ~rng
    ~files ~total ~spread ~intervals ~interval =
  if intervals <= 0 then invalid_arg "Catalog.timeline: intervals";
  if interval <= 0.0 then invalid_arg "Catalog.timeline: interval";
  List.iter
    (fun f ->
      if f.factor < 0.0 then invalid_arg "Catalog.timeline: flash factor";
      if f.from_i >= f.until_i then
        invalid_arg "Catalog.timeline: flash window")
    flashes;
  let base =
    ref
      (match classes with
      | Some classes ->
          with_classes ?prefix status ~rng ~files ~total ~spread ~classes
      | None -> create ?prefix status ~rng ~files ~total ~spread)
  in
  let steps =
    Array.init intervals (fun i ->
        if shift_every > 0 && i > 0 && i mod shift_every = 0 then
          base := shift_popularity !base ~rng;
        apply_flashes !base ~flashes ~i)
  in
  { interval; steps }

let step tl ~i =
  if i < 0 || i >= Array.length tl.steps then
    invalid_arg "Catalog.step: interval index";
  tl.steps.(i)

let interval_count tl = Array.length tl.steps
let interval tl = tl.interval

let at tl ~time =
  if time < 0.0 then None
  else begin
    let i = int_of_float (time /. tl.interval) in
    if i >= Array.length tl.steps then None else Some tl.steps.(i)
  end

let total_demand t =
  Array.fold_left (fun acc (_, d) -> acc +. Demand.total d) 0.0 t.files
