(* `bench pdes`: the domain-parallel sharded simulator.

   Four gates, in increasing cost:

   1. Determinism (always enforced, the CI smoke gate): one Pdes_sim
      configuration run at 1, 2, 4 and 8 worker domains must produce the
      same digest, served count and end-state replica population, bit
      for bit — and so must a churn-heavy fault-plan run (crashes with
      restarts plus loss bursts as barrier globals). Domain count is a
      speed knob only; any divergence is a barrier or mailbox-ordering
      bug and fails the bench.

   2. One-domain overhead (always enforced): best-of-3 events/s of the
      fused sharded loop at 1 domain vs best-of-3 of the packed-core
      simulator at the m = 16 scale-up population. The two simulators do
      different per-event work (subtree indexing, per-shard digesting),
      so parity for this pair of models sits near 0.78 on a quiet host;
      the gate floor of 0.70 catches a real per-epoch regression (e.g.
      losing epoch fusion) without flaking on scheduler noise.

   3. Scaling (enforced only on hosts with >= 8 recommended domains,
      printed as SKIP elsewhere): aggregate events/s at 8 domains must
      be >= 2.5x the packed core at m = 16.

   4. Steady state (always enforced): a large-m run must complete and
      its end-state replica count must land within a small constant
      factor of the mean-field oracle total_rate / capacity — the
      analytic fixed point of flow balancing. The band [1, 4] absorbs
      cooldown quantisation and per-subtree overshoot.

   Between gates 2 and 3 the bench sweeps a domains x m scaling grid and
   emits every cell, plus host context (recommended domain count,
   whether the scaling gate ran) into BENCH_pdes.json so a committed
   snapshot records what machine produced it. Results are written to
   $LESSLOG_BENCH_OUT or the working directory; LESSLOG_BENCH_QUICK=1
   shrinks m, the durations and the grid for CI smoke. *)

module E = Lesslog_harness.Experiments
module Bench_json = Lesslog_report.Bench_json
module Par = Lesslog_parallel.Par

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

let failed = ref false

let fail fmt =
  failed := true;
  Printf.eprintf fmt

let best3 f =
  let b = ref 0.0 in
  for _ = 1 to 3 do
    let v = f () in
    if v > !b then b := v
  done;
  !b

(* Gate 1: the digest (and every headline count) is invariant in the
   domain count — on the quiet workload and on a churn-heavy fault
   plan. *)
let determinism_gate ~quick =
  let m = if quick then 10 else 12 in
  let duration = if quick then 2.0 else 3.0 in
  let check label point =
    let reference : E.pdes_point = point 1 in
    Printf.printf "determinism (%s): m=%d, digest at 1 domain = %d\n%!" label
      m reference.E.pdes_digest;
    List.iter
      (fun domains ->
        let p : E.pdes_point = point domains in
        let same =
          p.E.pdes_digest = reference.E.pdes_digest
          && p.E.pdes_served = reference.E.pdes_served
          && p.E.pdes_replicas_end = reference.E.pdes_replicas_end
          && p.E.pdes_events = reference.E.pdes_events
        in
        Printf.printf "  %d domains: digest %d  served %d  %s\n%!" domains
          p.E.pdes_digest p.E.pdes_served
          (if same then "OK" else "DIVERGED");
        if not same then
          fail
            "bench pdes: FAIL: %s results at %d domains diverge from 1 \
             domain (digest %d vs %d)\n"
            label domains p.E.pdes_digest reference.E.pdes_digest)
      [ 2; 4; 8 ];
    reference
  in
  let reference =
    check "quiet" (fun domains ->
        E.pdes_point ~b:2 ~domains ~m ~rate_per_node:2.0 ~duration
          ~capacity:100.0 ~seed:42 ())
  in
  let faulted =
    check "faulted" (fun domains ->
        E.pdes_fault_point ~b:3 ~domains ~m ~rate_per_node:2.0 ~duration
          ~capacity:100.0 ~seed:42 ())
  in
  (reference, faulted)

(* Gates 2 and 3: m = 16 throughput of the fused loop at 1 and 8 domains
   against the single-domain packed core, best of 3 each. *)
let scaling_gate ~quick =
  let rate_per_node = if quick then 0.5 else 2.0 in
  let duration = if quick then 0.5 else 2.0 in
  let sharded domains =
    E.pdes_point ~b:3 ~domains ~m:16 ~rate_per_node ~duration ~capacity:100.0
      ~seed:42 ()
  in
  let packed_eps =
    best3 (fun () ->
        (E.des_point ~m:16 ~rate_per_node ~duration ~capacity:100.0 ~seed:42)
          .E.events_per_sec)
  in
  let fused = sharded 1 in
  let p1_eps =
    Float.max fused.E.pdes_events_per_sec
      (best3 (fun () -> (sharded 1).E.pdes_events_per_sec))
  in
  let p8_eps = best3 (fun () -> (sharded 8).E.pdes_events_per_sec) in
  let ratio1 = p1_eps /. packed_eps in
  let speedup = p8_eps /. packed_eps in
  Printf.printf
    "scaling m=16: packed %.3g ev/s   sharded 1d %.3g ev/s (%.2fx)   sharded \
     8d %.3g ev/s (%.2fx)   fusion %d epochs / %d phases\n%!"
    packed_eps p1_eps ratio1 p8_eps speedup fused.E.pdes_epochs
    fused.E.pdes_phases;
  if ratio1 < 0.70 then
    fail
      "bench pdes: FAIL: 1-domain fused loop at %.2fx of packed, below the \
       0.70 floor (parity for these models is ~0.78)\n"
      ratio1;
  let cores = Par.recommended_domains () in
  let gate_ran = cores >= 8 in
  if gate_ran then begin
    if speedup < 2.5 then
      fail
        "bench pdes: FAIL: 8-domain speedup %.2fx below the 2.5x target on a \
         %d-domain host\n"
        speedup cores
  end
  else
    Printf.printf
      "  2.5x gate: SKIP (host recommends %d domain(s); gate needs >= 8)\n%!"
      cores;
  (packed_eps, p1_eps, p8_eps, speedup, ratio1, fused, gate_ran, cores)

(* The domains x m grid: every cell is one fused run, emitted to the
   JSON so committed snapshots carry the full scaling picture (and the
   host context above says what machine drew it). *)
let scaling_grid ~quick =
  let ms = if quick then [ 10 ] else [ 12; 14; 16 ] in
  let ds = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let duration = if quick then 0.5 else 2.0 in
  Printf.printf "scaling grid (b=3, ev/s):\n%!";
  let cells =
    List.concat_map
      (fun m ->
        let row =
          List.map
            (fun domains ->
              let p =
                E.pdes_point ~b:3 ~domains ~m ~rate_per_node:2.0 ~duration
                  ~capacity:100.0 ~seed:42 ()
              in
              (m, domains, p))
            ds
        in
        Printf.printf "  m=%2d:%s\n%!" m
          (String.concat ""
             (List.map
                (fun (_, d, (p : E.pdes_point)) ->
                  Printf.sprintf "  %dd %.3g" d p.E.pdes_events_per_sec)
                row));
        row)
      ms
  in
  List.map
    (fun (m, d, (p : E.pdes_point)) ->
      ( Printf.sprintf "pdes/grid_m%d_d%d_events_per_sec" m d,
        p.E.pdes_events_per_sec ))
    cells

(* Gate 4: a large-m run completes and its end-state replica population
   sits within [1x, 4x] of the mean-field oracle. *)
let steady_state_gate ~quick =
  let m = if quick then 12 else 20 in
  let b = if quick then 2 else 3 in
  let rate_per_node = if quick then 2.0 else 0.01 in
  let duration = 6.0 in
  let p =
    E.pdes_point ~b ~domains:1 ~m ~rate_per_node ~duration ~capacity:100.0
      ~seed:42 ()
  in
  let ratio =
    float_of_int p.E.pdes_replicas_end /. p.E.pdes_oracle_replicas
  in
  Printf.printf
    "steady state m=%d: %d events in %.3fs, replicas %d vs oracle %.1f \
     (ratio %.2f, band [1, 4])\n%!"
    m p.E.pdes_events p.E.pdes_secs p.E.pdes_replicas_end
    p.E.pdes_oracle_replicas ratio;
  if ratio < 1.0 || ratio > 4.0 then
    fail
      "bench pdes: FAIL: m=%d replica ratio %.2f outside the mean-field band \
       [1, 4]\n"
      m ratio;
  (p, ratio)

let run () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  print_endline "bench pdes: domain-parallel sharded simulator";
  print_endline "---------------------------------------------";
  let reference, faulted = determinism_gate ~quick in
  let packed_eps, p1_eps, p8_eps, speedup, ratio1, fused, gate_ran, cores =
    scaling_gate ~quick
  in
  let grid = scaling_grid ~quick in
  let steady, ratio = steady_state_gate ~quick in
  Bench_json.write
    ~path:(out_file "BENCH_pdes.json")
    ([
       ("pdes/determinism_digest", float_of_int reference.E.pdes_digest);
       ("pdes/determinism_events", float_of_int reference.E.pdes_events);
       ("pdes/faulted_digest", float_of_int faulted.E.pdes_digest);
       ("pdes/faulted_events", float_of_int faulted.E.pdes_events);
       ("pdes/host_recommended_domains", float_of_int cores);
       ("pdes/scaling_gate_ran", if gate_ran then 1.0 else 0.0);
       ("pdes/one_domain_gate_ratio", ratio1);
       ("pdes/m16_packed_events_per_sec", packed_eps);
       ("pdes/m16_sharded_1d_events_per_sec", p1_eps);
       ("pdes/m16_sharded_8d_events_per_sec", p8_eps);
       ("pdes/m16_speedup_vs_packed", speedup);
       ("pdes/m16_epochs", float_of_int fused.E.pdes_epochs);
       ("pdes/m16_phases", float_of_int fused.E.pdes_phases);
       ("pdes/steady_events_per_sec", steady.E.pdes_events_per_sec);
       ("pdes/steady_replica_ratio", ratio);
       ("pdes/steady_wall_s", steady.E.pdes_secs);
     ]
    @ grid);
  Printf.printf "wrote %s\n" (out_file "BENCH_pdes.json");
  if !failed then exit 1
