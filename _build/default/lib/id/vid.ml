type t = int

let of_int params v =
  if v < 0 || v > Params.mask params then invalid_arg "Vid.of_int";
  v

let unsafe_of_int v = v
let to_int v = v
let root params = Params.mask params
let zero = 0
let equal = Int.equal
let compare = Int.compare
let hash v = v

let pp params fmt v =
  Lesslog_bits.Bitops.pp_binary ~width:(Params.m params) fmt v

let pp_plain = Format.pp_print_int
