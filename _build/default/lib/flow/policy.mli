(** The three replica-placement policies compared in the paper's
    evaluation (Section 6).

    All three resolve lookups through the same binomial lookup tree; they
    differ only in where an overloaded node puts the next copy:
    - {b LessLog}: the paper's logless placement — the first non-holder of
      the (dead-node-aware) children list, with the Section 3 proportional
      choice at the max-VID live node of a dead-root tree.
    - {b Log_based}: an oracle log analysis — the child forwarding the
      most requests right now (an upper bound on any real log-based
      scheme).
    - {b Random}: a uniformly random live non-holder. *)

open Lesslog_id

type t =
  | Lesslog
  | Log_based
  | Random
  | Lesslog_biased of [ `Own | `Root ]
      (** Ablation variants: LessLog with the Section 3 proportional choice
          replaced by always picking the overloaded node's own children
          list ([`Own]) or always the root's ([`Root]). *)

val name : t -> string

val all : t list
(** The paper's three policies (the biased variants are ablation-only). *)

val place :
  t ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  flow:Flow.t ->
  demand:Lesslog_workload.Demand.t ->
  key:string ->
  overloaded:Pid.t ->
  Pid.t option
(** Choose where the overloaded node's next replica of [key] goes, or
    [None] when the policy has no candidate left. Does not create the
    copy. *)
