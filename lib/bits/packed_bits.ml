let bits_per_word = 62

(* Constant division is not strength-reduced by ocamlopt, and [/ 62] in the
   bit-test hot path would cost a hardware divide. Magic-number division:
   for 0 <= i < 2^30, floor (i / 62) = (i * 2_216_757_315) lsr 37.
   All indices here are PID/VID slots, far below 2^30. *)
let word_of_index i = (i * 2_216_757_315) lsr 37
let bit_of_index i = i - (word_of_index i * bits_per_word)

type t = { len : int; words : int array }

let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len <= 0 then invalid_arg "Packed_bits.create";
  { len; words = Array.make (nwords len) 0 }

let tail_mask len =
  let tail = len - ((nwords len - 1) * bits_per_word) in
  (1 lsl tail) - 1

let create_full len =
  let t = create len in
  Array.fill t.words 0 (Array.length t.words) ((1 lsl bits_per_word) - 1);
  t.words.(Array.length t.words - 1) <- tail_mask len;
  t

let length t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let get t i = t.words.(word_of_index i) land (1 lsl bit_of_index i) <> 0

let set t i =
  let w = word_of_index i in
  t.words.(w) <- t.words.(w) lor (1 lsl bit_of_index i)

let clear t i =
  let w = word_of_index i in
  t.words.(w) <- t.words.(w) land lnot (1 lsl bit_of_index i)

let count t = Array.fold_left (fun acc w -> acc + Bitops.popcount w) 0 t.words

let equal a b = a.len = b.len && a.words = b.words

let first_set_at_or_below t i =
  let w = word_of_index i in
  let below = t.words.(w) land ((1 lsl (bit_of_index i + 1)) - 1) in
  if below <> 0 then (w * bits_per_word) + Bitops.floor_log2 below
  else begin
    let rec scan w =
      if w < 0 then -1
      else if t.words.(w) <> 0 then
        (w * bits_per_word) + Bitops.floor_log2 t.words.(w)
      else scan (w - 1)
    in
    scan (w - 1)
  end

let first_set_at_or_above t i =
  let w = word_of_index i in
  let above = t.words.(w) land lnot ((1 lsl bit_of_index i) - 1) in
  if above <> 0 then (w * bits_per_word) + Bitops.trailing_zeros above
  else begin
    let n = Array.length t.words in
    let rec scan w =
      if w >= n then -1
      else if t.words.(w) <> 0 then
        (w * bits_per_word) + Bitops.trailing_zeros t.words.(w)
      else scan (w + 1)
    in
    scan (w + 1)
  end

let first_set_in_range t ~lo ~hi =
  if lo > hi then -1
  else
    let i = first_set_at_or_above t lo in
    if i >= 0 && i <= hi then i else -1

(* Select the n-th (0-based) set bit of a single nonzero word. *)
let select_in_word word n =
  let w = ref word in
  for _ = 1 to n do
    w := !w land (!w - 1)
  done;
  Bitops.trailing_zeros (!w land - !w)

let nth_set t n =
  let rec scan w remaining =
    if w >= Array.length t.words then -1
    else
      let pc = Bitops.popcount t.words.(w) in
      if remaining < pc then
        (w * bits_per_word) + select_in_word t.words.(w) remaining
      else scan (w + 1) (remaining - pc)
  in
  if n < 0 then -1 else scan 0 n

let nth_clear t n =
  let last = Array.length t.words - 1 in
  let rec scan w remaining =
    if w > last then -1
    else
      let width_mask =
        if w = last then tail_mask t.len else (1 lsl bits_per_word) - 1
      in
      let zeros = lnot t.words.(w) land width_mask in
      let pc = Bitops.popcount zeros in
      if remaining < pc then (w * bits_per_word) + select_in_word zeros remaining
      else scan (w + 1) (remaining - pc)
  in
  if n < 0 then -1 else scan 0 n

let iter_word base word f =
  let w = ref word in
  while !w <> 0 do
    let low = !w land - !w in
    f (base + Bitops.trailing_zeros low);
    w := !w land (!w - 1)
  done

let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    if t.words.(w) <> 0 then iter_word (w * bits_per_word) t.words.(w) f
  done

let fold_set t ~init ~f =
  let acc = ref init in
  iter_set t (fun i -> acc := f !acc i);
  !acc

let iter_clear t f =
  let last = Array.length t.words - 1 in
  for w = 0 to last do
    let width_mask =
      if w = last then tail_mask t.len else (1 lsl bits_per_word) - 1
    in
    let zeros = lnot t.words.(w) land width_mask in
    if zeros <> 0 then iter_word (w * bits_per_word) zeros f
  done

let iter_inter a b f =
  if a.len <> b.len then invalid_arg "Packed_bits.iter_inter: length mismatch";
  for w = 0 to Array.length a.words - 1 do
    let inter = a.words.(w) land b.words.(w) in
    if inter <> 0 then iter_word (w * bits_per_word) inter f
  done
