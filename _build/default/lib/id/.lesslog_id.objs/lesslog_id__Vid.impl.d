lib/id/vid.ml: Format Int Lesslog_bits Params
