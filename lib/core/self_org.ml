open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Topology = Lesslog_topology.Topology
module Subtrees = Lesslog_topology.Subtrees
module File_store = Lesslog_storage.File_store

type join_stats = { took_over : (string * Pid.t) list }

type leave_stats = {
  reinserted : (string * Pid.t) list;
  dropped_replicas : string list;
}

type fail_stats = {
  lost : string list;
  recovered : (string * Pid.t) list;
  orphaned : string list;
}

let fault_tolerant cluster = Params.b (Cluster.params cluster) > 0

let expected_targets cluster ~key =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  if fault_tolerant cluster then Subtrees.insertion_targets tree status
  else
    match Topology.insertion_target tree status with
    | None -> []
    | Some p -> [ p ]

(* The live holder of the inserted copy relevant to target [t] of [key]:
   with b = 0 any live inserted holder; with b > 0 the inserted holder in
   the same subtree as [t]. *)
let inserted_holder_for cluster ~key ~target =
  let tree = Cluster.tree_of_key cluster key in
  let same_scope p =
    (not (fault_tolerant cluster))
    || Subtrees.subtree_id_of_pid tree p = Subtrees.subtree_id_of_pid tree target
  in
  List.find_opt
    (fun p ->
      same_scope p
      && File_store.origin (Cluster.store cluster p) ~key
         = Some File_store.Inserted)
    (Cluster.holders cluster ~key)

let join ?(now = 0.0) cluster k =
  let status = Cluster.status cluster in
  if Status_word.is_live status k then invalid_arg "Self_org.join: already live";
  Status_word.set_live status k;
  (* Copy back every file whose insertion target the joiner has become
     (Section 5.1). The previous holder keeps a demoted replica. *)
  let took_over =
    List.filter_map
      (fun key ->
        if List.exists (Pid.equal k) (expected_targets cluster ~key) then begin
          match inserted_holder_for cluster ~key ~target:k with
          | Some donor when not (Pid.equal donor k) ->
              let version =
                Option.value ~default:0
                  (File_store.version (Cluster.store cluster donor) ~key)
              in
              File_store.add (Cluster.store cluster k) ~key
                ~origin:File_store.Inserted ~version ~now;
              File_store.demote_to_replica (Cluster.store cluster donor) ~key;
              Some (key, donor)
          | Some _ | None -> None
        end
        else None)
      (Cluster.registered_keys cluster)
  in
  Log.info (fun f ->
      f "join P(%d): took over %d file(s)" (Pid.to_int k)
        (List.length took_over));
  { took_over }

let reinsert_one cluster ~now ~key ~version ~departing =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  let target =
    if fault_tolerant cluster then
      let sid = Subtrees.subtree_id_of_pid tree departing in
      Subtrees.insertion_target_in_subtree tree status ~subtree_id:sid
    else Topology.insertion_target tree status
  in
  match target with
  | None -> None
  | Some p ->
      File_store.add (Cluster.store cluster p) ~key
        ~origin:File_store.Inserted ~version ~now;
      Some p

let leave ?(now = 0.0) cluster k =
  let status = Cluster.status cluster in
  if Status_word.is_dead status k then invalid_arg "Self_org.leave: already dead";
  let store_k = Cluster.store cluster k in
  let dropped_replicas = File_store.drop_replicas store_k in
  (* Erasure-coded fragments are not re-inserted under their fragment
     key — ψ(fragment key) has nothing to do with where the code wants
     them. They are simply dropped here; [Ops.repair_coded] rebuilds
     the lost fragment from the k survivors. *)
  List.iter (fun key -> File_store.remove store_k ~key)
    (File_store.coded_keys store_k);
  let inserted =
    List.map
      (fun key ->
        (key, Option.value ~default:0 (File_store.version store_k ~key)))
      (File_store.inserted_keys store_k)
  in
  Status_word.set_dead status k;
  let reinserted =
    List.filter_map
      (fun (key, version) ->
        File_store.remove store_k ~key;
        match reinsert_one cluster ~now ~key ~version ~departing:k with
        | Some p -> Some (key, p)
        | None -> None)
      inserted
  in
  Log.info (fun f ->
      f "leave P(%d): re-inserted %d file(s), dropped %d replica(s)"
        (Pid.to_int k) (List.length reinserted)
        (List.length dropped_replicas));
  { reinserted; dropped_replicas }

let fail ?(now = 0.0) cluster k =
  let status = Cluster.status cluster in
  if Status_word.is_dead status k then invalid_arg "Self_org.fail: already dead";
  let store_k = Cluster.store cluster k in
  (* Lost fragments are the cold tier's problem ([Ops.repair_coded]),
     not Section 5.3 recovery — keep them out of the stats. *)
  let held_inserted =
    List.filter
      (fun key ->
        match File_store.tier store_k ~key with
        | Some (File_store.Coded _) -> false
        | _ -> true)
      (File_store.inserted_keys store_k)
  in
  (* The crash loses the entire local store. *)
  List.iter (fun key -> File_store.remove store_k ~key) (File_store.keys store_k);
  Status_word.set_dead status k;
  let lost = ref [] and recovered = ref [] and orphaned = ref [] in
  List.iter
    (fun key ->
      match Cluster.holders cluster ~key with
      | [] -> lost := key :: !lost
      | survivors ->
          if fault_tolerant cluster then begin
            (* Recover from a sibling subtree's inserted copy
               (Section 5.3). *)
            let donor =
              List.find_opt
                (fun p ->
                  File_store.origin (Cluster.store cluster p) ~key
                  = Some File_store.Inserted)
                survivors
            in
            match donor with
            | Some d -> begin
                let version =
                  Option.value ~default:0
                    (File_store.version (Cluster.store cluster d) ~key)
                in
                match reinsert_one cluster ~now ~key ~version ~departing:k with
                | Some p -> recovered := (key, p) :: !recovered
                | None -> orphaned := key :: !orphaned
              end
            | None -> orphaned := key :: !orphaned
          end
          else orphaned := key :: !orphaned)
    held_inserted;
  Log.info (fun f ->
      f "fail P(%d): lost %d, recovered %d, orphaned %d" (Pid.to_int k)
        (List.length !lost) (List.length !recovered) (List.length !orphaned));
  {
    lost = List.rev !lost;
    recovered = List.rev !recovered;
    orphaned = List.rev !orphaned;
  }

let integrity_violations cluster =
  List.concat_map
    (fun key ->
      (* A key demoted to the coded tier deliberately has no full
         inserted copy at its targets. *)
      if Cluster.coded_params cluster ~key <> None then []
      else
        List.filter_map
          (fun target ->
            match File_store.origin (Cluster.store cluster target) ~key with
            | Some File_store.Inserted -> None
            | Some File_store.Replicated | None -> Some (key, target))
          (expected_targets cluster ~key))
    (Cluster.registered_keys cluster)
