module Can = Lesslog_can.Can
module Rng = Lesslog_prng.Rng

let test_single_zone () =
  let rng = Rng.create ~seed:1 in
  let t = Can.create ~rng ~n:1 ~d:2 in
  Alcotest.(check int) "one zone" 1 (Can.node_count t);
  Alcotest.(check int) "owner" 0 (Can.owner_of t [| 0.5; 0.5 |]);
  let r = Can.lookup t ~from:0 ~target:[| 0.9; 0.1 |] in
  Alcotest.(check int) "zero hops" 0 r.Can.hops

let test_zone_count () =
  let rng = Rng.create ~seed:2 in
  let t = Can.create ~rng ~n:64 ~d:2 in
  Alcotest.(check int) "64 zones" 64 (Can.node_count t);
  Alcotest.(check int) "dimension" 2 (Can.dimension t)

let test_invalid_args () =
  let rng = Rng.create ~seed:3 in
  Alcotest.check_raises "n" (Invalid_argument "Can.create: n") (fun () ->
      ignore (Can.create ~rng ~n:0 ~d:2));
  Alcotest.check_raises "d" (Invalid_argument "Can.create: d") (fun () ->
      ignore (Can.create ~rng ~n:4 ~d:9));
  let t = Can.create ~rng ~n:4 ~d:2 in
  Alcotest.check_raises "from" (Invalid_argument "Can.lookup: from") (fun () ->
      ignore (Can.lookup t ~from:99 ~target:[| 0.5; 0.5 |]));
  Alcotest.check_raises "target" (Invalid_argument "Can.lookup: target")
    (fun () -> ignore (Can.lookup t ~from:0 ~target:[| 1.5; 0.5 |]))

let test_neighbors_near_2d () =
  let rng = Rng.create ~seed:4 in
  let t = Can.create ~rng ~n:256 ~d:2 in
  let mean = Can.mean_neighbors t in
  Alcotest.(check bool)
    (Printf.sprintf "mean neighbours %.1f near 2d" mean)
    true
    (mean >= 3.0 && mean <= 8.0)

let test_expected_hops_formula () =
  Alcotest.(check (float 1e-9)) "d=2 n=256" 8.0 (Can.expected_hops ~n:256 ~d:2);
  Alcotest.(check (float 1e-6)) "d=4 n=16" 2.0 (Can.expected_hops ~n:16 ~d:4)

(* --- Properties --------------------------------------------------------- *)

let gen_can =
  QCheck2.Gen.(
    int_range 1 128 >>= fun n ->
    int_range 1 3 >>= fun d ->
    int_range 0 1_000_000 >>= fun seed -> return (n, d, seed))

let prop_zones_partition_space =
  Test_support.qcheck_case ~count:100 ~name:"zones partition the torus"
    gen_can (fun (n, d, seed) ->
      let rng = Rng.create ~seed in
      let t = Can.create ~rng ~n ~d in
      (* Random points have exactly one owner (owner_of raises or picks the
         last match; we probe by counting containment implicitly: owner_of
         total + uniqueness follows from zones being split halves). *)
      let probe = Array.init d (fun _ -> Rng.float rng 1.0) in
      let owner = Can.owner_of t probe in
      owner >= 0 && owner < n)

let prop_lookup_reaches_owner =
  Test_support.qcheck_case ~count:100 ~name:"greedy lookup reaches the owner"
    gen_can (fun (n, d, seed) ->
      let rng = Rng.create ~seed in
      let t = Can.create ~rng ~n ~d in
      let all_good = ref true in
      for _ = 1 to 20 do
        let from = Rng.int rng n in
        let target = Array.init d (fun _ -> Rng.float rng 1.0) in
        let r = Can.lookup t ~from ~target in
        if r.Can.owner <> Can.owner_of t target then all_good := false
      done;
      !all_good)

let prop_hops_scale_with_dimension =
  Test_support.qcheck_case ~count:20 ~name:"hops bounded by O(d n^(1/d))"
    QCheck2.Gen.(
      int_range 32 256 >>= fun n ->
      int_range 0 1_000_000 >>= fun seed -> return (n, seed))
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      let t = Can.create ~rng ~n ~d:2 in
      let worst = ref 0 in
      for _ = 1 to 50 do
        let r = Can.random_lookup t ~rng in
        if r.Can.hops > !worst then worst := r.Can.hops
      done;
      (* Generous constant: random splits skew zone sizes. *)
      float_of_int !worst <= 8.0 *. Can.expected_hops ~n ~d:2 +. 8.0)

let () =
  Alcotest.run "can"
    [
      ( "construction",
        [
          Alcotest.test_case "single zone" `Quick test_single_zone;
          Alcotest.test_case "zone count" `Quick test_zone_count;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "neighbour count" `Quick test_neighbors_near_2d;
          Alcotest.test_case "expected hops formula" `Quick
            test_expected_hops_formula;
        ] );
      ( "properties",
        [
          prop_zones_partition_space;
          prop_lookup_reaches_owner;
          prop_hops_scale_with_dimension;
        ] );
    ]
