lib/des/churn_trace.mli: Des_sim Lesslog_id Lesslog_prng
