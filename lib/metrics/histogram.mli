(** Streaming log-bucketed histogram for latency and hop-count
    distributions. [add]/[count]/[mean] are O(1); [quantile] walks a
    bucket window whose size is bounded by the value range rather than
    the sample count, and answers within ~0.25% relative error (bucket
    boundaries at powers of gamma = 1.005, nearest-bucket rounding).
    Count, sum, min and max are exact; samples [<= 0] share one zero
    bucket, so quantiles are approximate only over positive data — the
    intended use. Quantiles are clamped into [[min, max]].

    {!Exact} is the old sample-retaining implementation with exact
    nearest-rank quantiles — the test oracle, and still fine for small
    sample sets. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val merge : t -> from:t -> unit
(** [merge t ~from] folds [from]'s samples into [t], leaving [from]
    untouched. All sketches share one γ, so this is a bucket-wise count
    add over the union window plus exact count/sum/min/max
    recombination: the result is the sketch a single stream of both
    inputs would have produced (associative and commutative up to float
    addition of the sum). Cross-shard aggregation in the parallel
    engine merges per-shard sketches with this. *)

val count : t -> int
(** O(1). *)

val mean : t -> float
(** O(1), exact (running sum). 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], nearest-rank over the bucket
    counts; [q = 0]/[q = 1] return the exact min/max.
    @raise Invalid_argument when empty or [q] out of range. *)

val median : t -> float
val max_value : t -> float
(** Exact. @raise Invalid_argument when empty. *)

val min_value : t -> float
(** Exact. @raise Invalid_argument when empty. *)

val buckets : t -> width:float -> (float * int) list
(** Fixed-width bucketing [(lower_bound, count)] of the bucket
    representatives, ascending, for display. *)

val pp : Format.formatter -> t -> unit

(** Exact sample-retaining histogram: keeps every sample, sorts on
    demand, nearest-rank quantiles with no error. [count]/[mean] are
    O(1) via running count/sum. *)
module Exact : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val add_int : t -> int -> unit

  val merge : t -> from:t -> unit
  (** Fold [from]'s retained samples into [t] ([from] untouched).
      Quantiles over the merged sample set are exact, so this is the
      test oracle for the sketch's {!Histogram.merge}. *)

  val count : t -> int
  val mean : t -> float

  val quantile : t -> float -> float
  (** @raise Invalid_argument when empty or [q] out of range. *)

  val median : t -> float
  val max_value : t -> float
  val min_value : t -> float
  val buckets : t -> width:float -> (float * int) list
  val pp : Format.formatter -> t -> unit
end
