open Lesslog_id
module Rng = Lesslog_prng.Rng
module Topology = Lesslog_topology.Topology
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Des_sim = Lesslog_des.Des_sim
module Fault_sim = Lesslog_des.Fault_sim
module Obs = Lesslog_obs.Obs

type violation = { oracle : string; at : float; detail : string }

type stats = { served : int; faults : int; checks : int; events : int }

let with_mutation mutation f =
  if not mutation then f ()
  else begin
    Topology.Testing.broken_find_live_node := true;
    Fun.protect
      ~finally:(fun () -> Topology.Testing.broken_find_live_node := false)
      f
  end

let run ?(mutation = false) (sch : Schedule.t) =
  with_mutation mutation @@ fun () ->
  let params = Params.create ~m:sch.m () in
  let cluster = Cluster.create params in
  for i = 0 to sch.keys - 1 do
    ignore (Ops.insert cluster ~key:(Schedule.key_of_index i))
  done;
  let rng = Rng.create ~seed:sch.seed in
  let demand = Schedule.demand sch (Cluster.status cluster) in
  let oracle = Oracle.create cluster ~sim:sch.sim in
  let sink = Oracle.on_event oracle in
  let key = Schedule.key_of_index 0 in
  try
    match sch.sim with
    | Schedule.Des ->
        let churn = Schedule.to_churn sch in
        let obs = Obs.create ~span_capacity:(1 lsl 15) () in
        let config =
          { Des_sim.default_config with capacity = sch.capacity }
        in
        let result =
          Des_sim.run ~config ~churn ~sink ~obs ~rng ~cluster ~key ~demand
            ~duration:sch.duration ()
        in
        Oracle.at_end ~obs ~result oracle ~now:sch.duration;
        Ok
          {
            served = result.Des_sim.served;
            faults = result.Des_sim.faults;
            checks = Oracle.heavy_checks oracle;
            events = Oracle.events_seen oracle;
          }
    | Schedule.Faults ->
        let plan = Schedule.to_plan sch in
        let config =
          { Fault_sim.default_config with capacity = sch.capacity }
        in
        let result =
          Fault_sim.run ~config ~plan ~sink ~rng ~cluster ~key ~demand
            ~duration:sch.duration ()
        in
        Oracle.at_end oracle ~now:sch.duration;
        Ok
          {
            served = result.Fault_sim.served;
            faults = result.Fault_sim.faulted;
            checks = Oracle.heavy_checks oracle;
            events = Oracle.events_seen oracle;
          }
  with Oracle.Violation { oracle; at; detail } -> Error { oracle; at; detail }

(* --- Shrinking ---------------------------------------------------------- *)

let shrink ~mutation (sch : Schedule.t) (v : violation) =
  let pred steps =
    match run ~mutation { sch with steps } with
    | Error v' -> v'.oracle = v.oracle
    | Ok _ -> false
  in
  let steps, stats = Shrink.minimize ~pred sch.Schedule.steps in
  ({ sch with steps }, stats)

(* --- Exploration -------------------------------------------------------- *)

(* Splitmix-style odd-constant spacing keeps derived seeds well apart and
   the whole run a pure function of (master seed, index). *)
let derive_seed master i = (master + ((i + 1) * 0x9E3779B1)) land 0x3FFFFFFF

type found = {
  trial : int;
  schedule : Schedule.t;
  violation : violation;
  shrunk : Schedule.t;
  shrunk_violation : violation;
  shrink_stats : Shrink.stats;
  repro_path : string option;
}

type exploration = Clean of { trials : int } | Found of found

let pp_violation fmt (v : violation) =
  Format.fprintf fmt "%s at t=%.3f: %s" v.oracle v.at v.detail

let sim_name = function Schedule.Des -> "des" | Schedule.Faults -> "faults"

let explore ?(mutation = false) ?out_dir ?(stop = fun () -> false)
    ~log ~seed ~m ~iterations () =
  let result = ref None in
  let trials = ref 0 in
  (try
     for i = 0 to iterations - 1 do
       if stop () then raise Exit;
       let trial_seed = derive_seed seed i in
       let sim = if i mod 2 = 0 then Schedule.Des else Schedule.Faults in
       let sch = Schedule.generate ~seed:trial_seed ~m ~sim in
       incr trials;
       match run ~mutation sch with
       | Ok s ->
           log
             (Printf.sprintf
                "trial %d sim=%s seed=%d steps=%d ok served=%d faults=%d \
                 checks=%d events=%d"
                i (sim_name sim) trial_seed
                (List.length sch.Schedule.steps)
                s.served s.faults s.checks s.events)
       | Error v ->
           log
             (Printf.sprintf "trial %d sim=%s seed=%d steps=%d VIOLATION %s" i
                (sim_name sim) trial_seed
                (List.length sch.Schedule.steps)
                (Format.asprintf "%a" pp_violation v));
           let shrunk, shrink_stats = shrink ~mutation sch v in
           (* One confirming re-run of the minimal schedule pins down the
              violation the repro file promises. *)
           let shrunk_violation =
             match run ~mutation shrunk with
             | Error v' -> v'
             | Ok _ ->
                 (* Shrinking only keeps failing candidates, so this can
                    only mean nondeterminism — itself a bug worth loud
                    reporting. *)
                 {
                   oracle = "checker-nondeterminism";
                   at = 0.0;
                   detail =
                     "minimal schedule passed on the confirming re-run";
                 }
           in
           log
             (Printf.sprintf "shrunk %d -> %d steps in %d runs: %s"
                (List.length sch.Schedule.steps)
                (List.length shrunk.Schedule.steps)
                shrink_stats.Shrink.runs
                (Format.asprintf "%a" pp_violation shrunk_violation));
           let repro_path =
             match out_dir with
             | None -> None
             | Some dir ->
                 let path =
                   Filename.concat dir (Printf.sprintf "repro-%d.trace" trial_seed)
                 in
                 Schedule.save ~expect:shrunk_violation.oracle ~mutation path
                   shrunk;
                 log (Printf.sprintf "repro written to %s" path);
                 Some path
           in
           result :=
             Some
               {
                 trial = i;
                 schedule = sch;
                 violation = v;
                 shrunk;
                 shrunk_violation;
                 shrink_stats;
                 repro_path;
               };
           raise Exit
     done
   with Exit -> ());
  match !result with
  | Some found -> Found found
  | None -> Clean { trials = !trials }

(* --- Replay ------------------------------------------------------------- *)

type replay_outcome =
  | Reproduced of violation
  | Clean_run
  | Mismatch of { expected : string option; got : violation option }

let replay ~log (d : Schedule.decoded) =
  log
    (Printf.sprintf "replaying %s%s%s"
       (Format.asprintf "%a" Schedule.pp d.Schedule.schedule)
       (if d.Schedule.mutation then " [mutation enabled]" else "")
       (match d.Schedule.expect with
       | Some o -> Printf.sprintf " expecting %s" o
       | None -> " expecting a clean run"));
  let outcome = run ~mutation:d.Schedule.mutation d.Schedule.schedule in
  match (outcome, d.Schedule.expect) with
  | Error v, Some oracle when v.oracle = oracle ->
      log (Format.asprintf "reproduced: %a" pp_violation v);
      Reproduced v
  | Ok _, None ->
      log "clean run, as expected";
      Clean_run
  | Error v, _ ->
      log (Format.asprintf "violation did not match: %a" pp_violation v);
      Mismatch { expected = d.Schedule.expect; got = Some v }
  | Ok _, Some oracle ->
      log (Printf.sprintf "expected %s but the run was clean" oracle);
      Mismatch { expected = d.Schedule.expect; got = None }
