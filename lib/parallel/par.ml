let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let map ?domains ~f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let domains =
      max 1 (min n (match domains with Some d -> d | None -> recommended_domains ()))
    in
    if domains = 1 then Array.map f a
    else begin
      let results = Array.make n None in
      (* If [f] raises, every domain must still be joined — including when
         the failure is on the caller's own stride (worker 0), where an
         uncaught exception would leak the spawned domains. Each worker
         traps its first exception; the first one by worker index is
         re-raised after all joins, so the choice is deterministic. *)
      let failures = Array.make domains None in
      let worker w () =
        try
          let i = ref w in
          while !i < n do
            results.(!i) <- Some (f a.(!i));
            i := !i + domains
          done
        with e ->
          failures.(w) <- Some (e, Printexc.get_raw_backtrace ())
      in
      let handles =
        List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      List.iter Domain.join handles;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        failures;
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* every index is covered by a stride *))
        results
    end
  end

let map_list ?domains ~f l =
  Array.to_list (map ?domains ~f (Array.of_list l))
