(** Physical lookup trees (paper Section 2.1, Figure 2, Property 4).

    The physical lookup tree of node [P(r)] maps the virtual tree through
    [PID = VID xor comp(r)], where [comp(r)] is the m-bit complement of [r].
    XOR with a constant is a bijection, so one virtual tree yields the
    [2^m] distinct physical trees, and given the root every PID↔VID
    conversion is a single XOR (Property 4). *)

open Lesslog_id

type t
(** A physical lookup tree: the parameters plus its root PID. Cheap to
    construct (no materialized structure). *)

val make : Params.t -> root:Pid.t -> t

val params : t -> Params.t
val root : t -> Pid.t

val comp : t -> int
(** The XOR constant [comp(root)] mapping PID↔VID. Two trees with the same
    parameters and the same [comp] are the same tree — the topology cache
    keys derived state on it. *)

val vid_of_pid : t -> Pid.t -> Vid.t
val pid_of_vid : t -> Vid.t -> Pid.t

val is_root : t -> Pid.t -> bool

val parent : t -> Pid.t -> Pid.t option
(** Parent in this tree; [None] on the root. Implements the paper's
    three-step FP computation: PID→VID (P4), parent VID (P2), VID→PID (P4). *)

val children : t -> Pid.t -> Pid.t list
(** Children ordered by descending offspring count — the paper's
    "children list" for the complete tree (e.g. the children list of P(4)
    in a 16-node system is (P(5), P(6), P(0), P(12))). *)

val child_count : t -> Pid.t -> int
val offspring_count : t -> Pid.t -> int
val depth : t -> Pid.t -> int

val path_to_root : t -> Pid.t -> Pid.t list
(** Forwarding path from a node (inclusive) up to the root (inclusive). *)

val is_ancestor : t -> ancestor:Pid.t -> Pid.t -> bool
(** Reflexive ancestry in this tree. *)

val iter_subtree : t -> Pid.t -> (Pid.t -> unit) -> unit

val pp : Format.formatter -> t -> unit
(** Render the whole tree (indentation = depth) with PID and VID per node,
    like the paper's figures. Intended for small [m] in docs and tests. *)
