open Lesslog_id
module Rng = Lesslog_prng.Rng

type t = { params : Params.t; bits : Bytes.t; mutable live : int }

let byte_len params = (Params.space params + 7) / 8

let create params ~initially_live =
  let bits = Bytes.make (byte_len params) (if initially_live then '\xff' else '\x00') in
  { params; bits; live = (if initially_live then Params.space params else 0) }

let params t = t.params

let get_bit t i = Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let put_bit t i v =
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bits (i lsr 3) (Char.chr byte)

let is_live t p = get_bit t (Pid.to_int p)
let is_dead t p = not (is_live t p)

let set_live t p =
  if not (is_live t p) then begin
    put_bit t (Pid.to_int p) true;
    t.live <- t.live + 1
  end

let set_dead t p =
  if is_live t p then begin
    put_bit t (Pid.to_int p) false;
    t.live <- t.live - 1
  end

let of_live_list params pids =
  let t = create params ~initially_live:false in
  List.iter (set_live t) pids;
  t

let copy t = { params = t.params; bits = Bytes.copy t.bits; live = t.live }

let live_count t = t.live
let dead_count t = Params.space t.params - t.live

let fold_live t ~init ~f =
  let acc = ref init in
  for i = 0 to Params.space t.params - 1 do
    if get_bit t i then acc := f !acc (Pid.unsafe_of_int i)
  done;
  !acc

let iter_live t f = fold_live t ~init:() ~f:(fun () p -> f p)

let live_pids t = List.rev (fold_live t ~init:[] ~f:(fun acc p -> p :: acc))

let dead_pids t =
  let acc = ref [] in
  for i = Params.space t.params - 1 downto 0 do
    if not (get_bit t i) then acc := Pid.unsafe_of_int i :: !acc
  done;
  !acc

let live_array t =
  let a = Array.make t.live (Pid.unsafe_of_int 0) in
  let j = ref 0 in
  iter_live t (fun p ->
      a.(!j) <- p;
      incr j);
  a

let random_live t rng =
  if t.live = 0 then None
  else begin
    (* Rejection sampling over the slot space: cheap when the live fraction
       is not tiny, which holds for every experiment in the paper. *)
    let space = Params.space t.params in
    let attempts = ref 0 in
    let found = ref None in
    while !found = None do
      incr attempts;
      if !attempts > 64 * space then
        (* Degenerate density: fall back to an exact scan. *)
        found := Some (Lesslog_prng.Rng.pick rng (live_array t))
      else
        let i = Rng.int rng space in
        if get_bit t i then found := Some (Pid.unsafe_of_int i)
    done;
    !found
  end

let random_dead t rng =
  if dead_count t = 0 then None
  else begin
    let space = Params.space t.params in
    let attempts = ref 0 in
    let found = ref None in
    while !found = None do
      incr attempts;
      if !attempts > 64 * space then
        found := Some (Lesslog_prng.Rng.pick rng (Array.of_list (dead_pids t)))
      else
        let i = Rng.int rng space in
        if not (get_bit t i) then found := Some (Pid.unsafe_of_int i)
    done;
    !found
  end

let kill_fraction t rng ~fraction =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Status_word.kill_fraction";
  let live = live_array t in
  let k = int_of_float (Float.round (fraction *. float_of_int (Array.length live))) in
  let victims = Rng.sample_without_replacement rng ~k live in
  Array.iter (set_dead t) victims;
  Array.to_list victims

let equal a b = a.params = b.params && Bytes.equal a.bits b.bits

let pp fmt t =
  Format.fprintf fmt "status_word(live=%d/%d)" t.live (Params.space t.params)
