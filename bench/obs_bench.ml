(* `bench obs`: the observability overhead gate.

   Runs the `bench des` m = 10 workload (full event-driven simulator,
   one Poisson arrival process per node) twice per round — plain, and
   with a metrics registry plus span sink attached — on identical seeds,
   interleaved so neither variant systematically lands on a noisier
   stretch of the machine. Each variant keeps its best (minimum) wall
   time across the rounds: the minimum is the run that dodged
   preemption and GC jitter, so it converges on the clean cost of each
   variant where means and medians keep the noise in. The gate is that
   the instrumented best is within 5% of the plain best. Results append
   to BENCH_obs.json ($LESSLOG_BENCH_OUT or the working directory);
   LESSLOG_BENCH_QUICK=1 shrinks the workload for CI smoke. *)

module Des_sim = Lesslog_des.Des_sim
module Obs = Lesslog_obs.Obs
module Rng = Lesslog_prng.Rng
module Bench_json = Lesslog_report.Bench_json
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Params = Lesslog_id.Params

let key = "bench/hot-object"

(* One full simulator run on a fresh cluster; returns wall seconds and
   engine events. A fresh Obs.t per instrumented run keeps rounds
   independent. *)
let one_run ~m ~rate_per_node ~duration ~seed ~obs () =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  (match Ops.insert cluster ~key with
  | [] -> failwith "bench obs: empty system"
  | _ -> ());
  let status = Cluster.status cluster in
  let total = rate_per_node *. float_of_int (Status_word.live_count status) in
  let demand = Demand.uniform status ~total in
  let rng = Rng.create ~seed in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let r = Des_sim.run ?obs ~rng ~cluster ~key ~demand ~duration () in
  let dt = Unix.gettimeofday () -. t0 in
  (dt, r.Des_sim.events)

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

let run () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  let m = 10 in
  let rate_per_node = 2.0 in
  (* Short runs, many rounds: disturbances (preemption, GC pauses from
     a neighbour) arrive roughly as a Poisson process, so the chance a
     run dodges all of them falls exponentially with its length — each
     variant's minimum converges much faster over many short runs than
     over a few long ones. Runs still simulate long enough that timer
     granularity is negligible. *)
  let duration = if quick then 10.0 else 15.0 in
  let rounds = if quick then 25 else 81 in
  print_endline "bench obs: instrumentation overhead on the des workload";
  print_endline "-------------------------------------------------------";
  Printf.printf "des m=%d, %.0f s simulated, best of %d rounds per variant\n%!"
    m duration rounds;
  let plain () = one_run ~m ~rate_per_node ~duration ~seed:42 ~obs:None () in
  let instrumented () =
    let obs = Obs.create () in
    let dt, events =
      one_run ~m ~rate_per_node ~duration ~seed:42 ~obs:(Some obs) ()
    in
    (dt, events, obs)
  in
  (* Warm-up pair: page in code and let the allocator settle. *)
  ignore (plain ());
  ignore (instrumented ());
  (* One full measurement: interleaved rounds, alternating which variant
     goes first so neither systematically sits on the warmer (or
     noisier) half of each round. *)
  let measure () =
    let best_plain = ref infinity and best_inst = ref infinity in
    let events = ref 0 and last_obs = ref None in
    for r = 1 to rounds do
      let run_plain () =
        let dt, ev = plain () in
        best_plain := Float.min !best_plain dt;
        events := ev
      and run_inst () =
        let dt', _, obs = instrumented () in
        best_inst := Float.min !best_inst dt';
        last_obs := Some obs
      in
      if r land 1 = 0 then (run_plain (); run_inst ())
      else (run_inst (); run_plain ())
    done;
    (!best_plain, !best_inst, !events, Option.get !last_obs)
  in
  (* The gate certifies the clean-floor ratio, but a measurement on a
     busy box can overestimate it when one variant's minimum never finds
     an undisturbed run. Re-measuring on failure keeps the gate from
     tripping on that noise: one clean measurement under budget is the
     evidence the budget holds. *)
  let max_attempts = 3 in
  let rec attempt n =
    let ((best_plain, best_inst, events, obs) as meas) = measure () in
    let overhead = (best_inst /. best_plain) -. 1.0 in
    Printf.printf "plain:        %8.3f s best   %10.0f events/s\n%!" best_plain
      (float_of_int events /. best_plain);
    Printf.printf "instrumented: %8.3f s best   %10.0f events/s\n%!" best_inst
      (float_of_int events /. best_inst);
    Printf.printf
      "overhead %+.2f%% best-of-%d, attempt %d/%d (budget < 5%%); %d spans \
       completed, %d dropped, %d metrics registered\n%!"
      (100.0 *. overhead) rounds n max_attempts
      (Obs.Span.completed obs.Obs.spans)
      (Obs.Span.dropped obs.Obs.spans)
      (List.length (Obs.Registry.snapshot obs.Obs.registry));
    if overhead > 0.05 && n < max_attempts then attempt (n + 1)
    else (meas, overhead)
  in
  let (best_plain, best_inst, events, obs), overhead = attempt 1 in
  Bench_json.write
    ~path:(out_file "BENCH_obs.json")
    [
      ("obs/plain_best_s", best_plain);
      ("obs/instrumented_best_s", best_inst);
      ("obs/plain_events_per_sec", float_of_int events /. best_plain);
      ("obs/instrumented_events_per_sec", float_of_int events /. best_inst);
      ("obs/overhead_frac", overhead);
      ("obs/spans_completed", float_of_int (Obs.Span.completed obs.Obs.spans));
      ("obs/spans_dropped", float_of_int (Obs.Span.dropped obs.Obs.spans));
    ];
  Printf.printf "wrote %s\n" (out_file "BENCH_obs.json");
  if overhead > 0.05 then begin
    Printf.eprintf
      "bench obs: FAIL: instrumentation overhead %.2f%% above the 5%% budget\n"
      (100.0 *. overhead);
    exit 1
  end
