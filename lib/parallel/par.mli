(** Parallel map over OCaml 5 domains, for embarrassingly-parallel
    parameter sweeps (each experiment point is independent and carries its
    own seeded RNG, so results are identical at any domain count). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 — sweeps are short and
    more domains than points is waste. *)

val map : ?domains:int -> f:('a -> 'b) -> 'a array -> 'b array
(** [map ~domains ~f a] applies [f] to every element, splitting the index
    space across [domains] (default {!recommended_domains}) worker
    domains in strides. [f] must be safe to run concurrently (no shared
    mutable state). When [f] raises, every domain is still joined before
    the exception propagates (no leaked domains, whichever stride failed),
    and when several strides fail the exception of the lowest-numbered
    worker is re-raised — deterministic at any domain count. *)

val map_list : ?domains:int -> f:('a -> 'b) -> 'a list -> 'b list
