(** The LessLog file operations — inserting, getting, replicating and
    updating a file (paper Sections 2.2, 3 and 4).

    All operations implement the {e advanced} system model (dead nodes
    allowed); the basic model of Section 2 is the special case where every
    slot is live. When the cluster's parameters have [b > 0], insertion and
    lookup use the fault-tolerant model: [2^b] per-subtree copies and
    subtree migration on faults. *)

open Lesslog_id

type get_result = {
  server : Pid.t option;  (** The node that returned the file; [None] on a fault. *)
  hops : int;  (** Forwarding hops, not counting the client's first contact. *)
  path : Pid.t list;  (** Nodes visited, origin first, server (if any) last. *)
  subtree_migrations : int;
      (** Fault-tolerant model only: how many times the request switched
          subtree before being served. *)
}

type update_result = {
  version : int;  (** Version the copies were raised to. *)
  updated : int;  (** Live copies that received the new version. *)
  messages : int;  (** Update messages broadcast along children lists. *)
}

val insert : ?now:float -> Cluster.t -> key:string -> Pid.t list
(** ADVANCEDINSERTFILE: store [key] at the live node with the most
    offspring in the target's lookup tree — with [b > 0], at that node in
    {e each} of the [2^b] subtrees. Returns the nodes that received the
    inserted copy ([\[\]] iff no live node exists). Registers the key. *)

val get :
  ?now:float ->
  ?registry:Lesslog_obs.Obs.Registry.t ->
  Cluster.t ->
  origin:Pid.t ->
  key:string ->
  get_result
(** GETFILE from a live [origin]: serve locally when a copy is present,
    otherwise forward along first-alive-ancestors in the target's lookup
    tree, with the Section 3 migration to the most-offspring live node when
    the target is dead, and (for [b > 0]) the Section 4 migration to
    sibling subtrees when the origin's subtree faults. Records an access on
    the serving store. With [registry], attributes the lookup to the
    [core/get]* metrics (request/fault counters, hop histogram, subtree
    migrations). @raise Invalid_argument when [origin] is dead. *)

val replication_candidates :
  Cluster.t -> overloaded:Pid.t -> key:string -> Pid.t list * Pid.t list
(** The two candidate children lists for REPLICATEFILE at an overloaded
    node, already filtered to nodes not holding a copy:
    [(own_list, root_list)]. [root_list] is empty except in the
    proportional-choice case (the overloaded node is the max-VID live node
    of a dead-root tree, Section 3). *)

val choose_replica_target :
  rng:Lesslog_prng.Rng.t ->
  Cluster.t ->
  overloaded:Pid.t ->
  key:string ->
  Pid.t option
(** The placement decision of REPLICATEFILE without creating the copy:
    first non-holding node of the children list, with the Section 3
    proportional choice between the overloaded node's and the root's
    children lists when attribution is ambiguous. [None] when every
    candidate already holds the file. *)

val replicate :
  ?now:float ->
  ?registry:Lesslog_obs.Obs.Registry.t ->
  rng:Lesslog_prng.Rng.t ->
  Cluster.t ->
  overloaded:Pid.t ->
  key:string ->
  Pid.t option
(** One REPLICATEFILE step: {!choose_replica_target}, then create the copy
    there. With [registry], counts the decision ([core/replicate]) and
    the actual placement ([core/replicate_placed]). *)

val update : ?now:float -> Cluster.t -> key:string -> update_result
(** UPDATEFILE: bump the version at the target(s) and broadcast top-down
    along children lists; holders update and propagate, non-holders discard,
    dead nodes are bypassed (Sections 2.2 and 3; per subtree when
    [b > 0]). *)

val delete : ?now:float -> Cluster.t -> key:string -> update_result
(** Remove a file from the system (an extension beyond the paper, built
    from the same top-down children-list broadcast as UPDATEFILE): every
    reachable copy is discarded and the key leaves the registry.
    [updated] counts the copies removed. *)

(** {2 Substrate-parameterized operations}

    The same protocol steps, with every routing and placement decision
    delegated to a {!Lesslog_substrate.Substrate.t} — the seam that lets
    identical replication code run over the native binomial trees, Chord,
    Pastry or CAN (see the Substrate contract in ARCHITECTURE.md). The
    substrate mode implements the single-tree model; clusters with
    [b > 0] should use the direct operations above. *)

val insert_via :
  ?now:float -> Lesslog_substrate.Substrate.t -> Cluster.t -> key:string ->
  Pid.t list
(** Register the key and store the inserted copy at the substrate's
    current owner ([\[\]] iff no node is live). On the native substrate
    with [b = 0] this is exactly {!insert}. *)

val get_via :
  ?now:float ->
  ?registry:Lesslog_obs.Obs.Registry.t ->
  Lesslog_substrate.Substrate.t ->
  Cluster.t ->
  origin:Pid.t ->
  key:string ->
  get_result
(** GETFILE over a substrate: serve at the first node on the substrate
    route holding a copy, a fault when the route ends (or exceeds the
    [2^m] hop cap a conforming substrate never reaches) without one.
    Identical metrics attribution to {!get}.
    @raise Invalid_argument when [origin] is dead. *)

val choose_replica_target_via :
  rng:Lesslog_prng.Rng.t ->
  Lesslog_substrate.Substrate.t ->
  Cluster.t ->
  overloaded:Pid.t ->
  key:string ->
  Pid.t option
(** The substrate's replica placement for an overloaded holder, with the
    cluster's holder set supplying the [holds] predicate. *)

val on_membership_via :
  ?now:float ->
  ?on_coded_repair:(key:string -> rebuilt:int -> lost:bool -> unit) ->
  Lesslog_substrate.Substrate.t ->
  Cluster.t ->
  event:[ `Join of Pid.t | `Leave of Pid.t | `Fail of Pid.t ] ->
  int
(** Generic membership repair for {!Lesslog_substrate.Substrate.Generic}
    substrates: apply the status-word mutation, call the substrate's
    [notify], drop a departing node's copies (gracefully handing sole
    copies off on [`Leave], losing them on [`Fail]) and re-home every
    registered key whose current owner lacks a copy — a fully lost key is
    re-created at version 0 from the registry, mirroring the registry
    driven native recovery. Returns the number of copies relocated.
    Substrates with {!Lesslog_substrate.Substrate.Self_organized}
    membership should use {!Self_org} instead.

    Cold-tier keys are repaired too: after the full-copy pass, every
    coded key goes through {!repair_coded} with this substrate's
    placement, and [on_coded_repair] (if given) observes the outcome
    per key — [rebuilt] fragments re-placed, or [lost = true] when
    fewer than [k] fragments survived.
    @raise Invalid_argument on a join of a live node or a leave/fail of a
    dead one. *)

(** {1 Erasure-coded cold tier}

    A Cold-classified key ({!Lesslog_policy} verdicts, in the
    simulators) trades its full copies for the [k + r] fragments of a
    systematic Reed-Solomon [(k, r)] code ({!Lesslog_erasure.Erasure}):
    storage drops from [copies x size] to [(k + r)/k x size] while any
    [k] surviving fragments still rebuild the payload. Fragments live
    as {!File_store} entries (tier [Coded]) under {!frag_key}-derived
    keys, one per node, spread across the [2^b] subtrees exactly like
    ADVANCEDINSERTFILE spreads full copies; the {!Cluster} coded
    registry maps the base key to its code parameters. *)

val frag_key : string -> int -> string
(** The store key of fragment [i] of a base key. *)

val live_fragment_count : Cluster.t -> key:string -> int
(** Distinct fragment indices with at least one live holder (0 when the
    key is not coded). *)

val coded_servable : Cluster.t -> key:string -> bool
(** At least [k] fragments live — the codec's decode precondition. *)

val holds_fragment : Cluster.t -> Pid.t -> key:string -> bool
(** Does this node hold any fragment of the (coded) key? *)

val coded_can_serve : Cluster.t -> key:string -> at:Pid.t -> bool
(** [holds_fragment] at the node and [coded_servable] cluster-wide: the
    node can gather [k] fragments and decode. *)

val demote_to_coded :
  ?now:float ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  Cluster.t ->
  key:string ->
  k:int ->
  r:int ->
  Pid.t list option
(** Replace every full copy (live or stale-on-dead) with [k + r]
    fragment entries at distinct live nodes — fragment [i] preferably
    at subtree [i mod 2^b]'s insertion target so request walks
    terminate on a fragment holder (with a substrate, at the fragment
    key's owner). Returns the fragment holders in index order, or
    [None] when the key is already coded or fewer than [k + r] distinct
    live nodes exist (the demotion does not happen).
    @raise Invalid_argument on invalid [(k, r)]. *)

val promote_from_coded :
  ?now:float ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  Cluster.t ->
  key:string ->
  copies:int ->
  Pid.t list option
(** Rebuild full copies from the fragments and drop every fragment
    entry: inserted copies at the insertion targets (the substrate's
    owner), then plain replicas on ascending live PIDs up to [copies]
    total. [None] — and no change — when the key is not coded, fewer
    than [k] fragments survive, or no node is live. *)

val repair_coded :
  ?now:float ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  Cluster.t ->
  key:string ->
  [ `Intact | `Repaired of int | `Lost ]
(** Rebuild every fragment index without a live holder from the [>= k]
    survivors, placing each on a live node holding no fragment of this
    key. [`Repaired n] re-placed [n] fragments; [`Lost] means fewer
    than [k] survive — the payload is unrecoverable and nothing is
    changed. *)

val stale_copies : Cluster.t -> key:string -> Pid.t list
(** Live copies whose version lags the maximum — non-empty only if an
    update failed to reach some replica. For tests and integrity checks. *)
