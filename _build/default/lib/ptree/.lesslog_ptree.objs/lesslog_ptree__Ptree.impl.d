lib/ptree/ptree.ml: Format Lesslog_bits Lesslog_id Lesslog_vtree List Params Pid String Vid
