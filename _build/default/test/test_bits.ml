module Bitops = Lesslog_bits.Bitops

let check = Alcotest.(check int)

let test_mask () =
  check "mask 1" 1 (Bitops.mask ~width:1);
  check "mask 4" 15 (Bitops.mask ~width:4);
  check "mask 10" 1023 (Bitops.mask ~width:10)

let test_complement () =
  check "comp 4-bit of 4" 0b1011 (Bitops.complement ~width:4 4);
  check "comp 4-bit of 0" 0b1111 (Bitops.complement ~width:4 0);
  check "comp 4-bit of 15" 0 (Bitops.complement ~width:4 15);
  check "comp involutive" 9 (Bitops.complement ~width:4 (Bitops.complement ~width:4 9))

let test_popcount () =
  check "popcount 0" 0 (Bitops.popcount 0);
  check "popcount 1" 1 (Bitops.popcount 1);
  check "popcount 0b1011" 3 (Bitops.popcount 0b1011);
  check "popcount max_int" 62 (Bitops.popcount max_int)

let test_floor_log2 () =
  check "log2 1" 0 (Bitops.floor_log2 1);
  check "log2 2" 1 (Bitops.floor_log2 2);
  check "log2 3" 1 (Bitops.floor_log2 3);
  check "log2 1024" 10 (Bitops.floor_log2 1024);
  check "log2 max_int" 61 (Bitops.floor_log2 max_int);
  Alcotest.check_raises "log2 0" (Invalid_argument "Bitops.floor_log2")
    (fun () -> ignore (Bitops.floor_log2 0))

let test_leading_ones () =
  check "all ones" 4 (Bitops.leading_ones ~width:4 0b1111);
  check "1110" 3 (Bitops.leading_ones ~width:4 0b1110);
  check "1101" 2 (Bitops.leading_ones ~width:4 0b1101);
  check "1011" 1 (Bitops.leading_ones ~width:4 0b1011);
  check "0111" 0 (Bitops.leading_ones ~width:4 0b0111);
  check "0000" 0 (Bitops.leading_ones ~width:4 0)

let test_highest_zero_bit () =
  Alcotest.(check (option int)) "1111" None (Bitops.highest_zero_bit ~width:4 0b1111);
  Alcotest.(check (option int)) "1101" (Some 1) (Bitops.highest_zero_bit ~width:4 0b1101);
  Alcotest.(check (option int)) "0111" (Some 3) (Bitops.highest_zero_bit ~width:4 0b0111);
  Alcotest.(check (option int)) "0000" (Some 3) (Bitops.highest_zero_bit ~width:4 0)

let test_bit_ops () =
  Alcotest.(check bool) "test set" true (Bitops.test_bit 0b100 2);
  Alcotest.(check bool) "test clear" false (Bitops.test_bit 0b100 1);
  check "set" 0b110 (Bitops.set_bit 0b100 1);
  check "set idempotent" 0b100 (Bitops.set_bit 0b100 2);
  check "clear" 0b100 (Bitops.clear_bit 0b110 1);
  check "clear idempotent" 0b110 (Bitops.clear_bit 0b110 0)

let test_trailing_zeros () =
  check "tz 1" 0 (Bitops.trailing_zeros 1);
  check "tz 8" 3 (Bitops.trailing_zeros 8);
  check "tz 12" 2 (Bitops.trailing_zeros 12)

let test_field_extraction () =
  (* Subtree id/vid split of the fault-tolerant model: m=4, b=2. *)
  check "low bits" 0b10 (Bitops.low_bits ~width:2 0b1110);
  check "high bits" 0b11 (Bitops.high_bits ~total:4 ~low:2 0b1110);
  check "splice" 0b1110 (Bitops.splice ~total:4 ~low:2 ~high:0b11 0b10)

let test_binary_string () =
  Alcotest.(check string) "vid rendering" "1011" (Bitops.to_binary_string ~width:4 0b1011);
  Alcotest.(check string) "padded" "0001" (Bitops.to_binary_string ~width:4 1)

(* Properties ---------------------------------------------------------- *)

let gen_width_value =
  QCheck2.Gen.(
    int_range 1 20 >>= fun width ->
    int_range 0 (Bitops.mask ~width) >>= fun v -> return (width, v))

let prop_complement_involutive =
  Test_support.qcheck_case ~name:"complement involutive" gen_width_value
    (fun (width, v) ->
      Bitops.complement ~width (Bitops.complement ~width v) = v)

let prop_popcount_split =
  Test_support.qcheck_case ~name:"popcount v + popcount ~v = width"
    gen_width_value (fun (width, v) ->
      Bitops.popcount v + Bitops.popcount (Bitops.complement ~width v) = width)

let prop_leading_ones_bound =
  Test_support.qcheck_case ~name:"leading_ones bounded by popcount"
    gen_width_value (fun (width, v) ->
      let lo = Bitops.leading_ones ~width v in
      lo >= 0 && lo <= Bitops.popcount v)

let prop_splice_inverse =
  Test_support.qcheck_case ~name:"splice inverts high/low split"
    QCheck2.Gen.(
      int_range 2 16 >>= fun total ->
      int_range 1 (total - 1) >>= fun low ->
      int_range 0 (Bitops.mask ~width:total) >>= fun v -> return (total, low, v))
    (fun (total, low, v) ->
      let high = Bitops.high_bits ~total ~low v in
      let lowv = Bitops.low_bits ~width:low v in
      Bitops.splice ~total ~low ~high lowv = v)

let prop_floor_log2 =
  Test_support.qcheck_case ~name:"floor_log2 bounds"
    QCheck2.Gen.(int_range 1 max_int)
    (fun x ->
      let l = Bitops.floor_log2 x in
      x lsr l = 1)

let () =
  Alcotest.run "bits"
    [
      ( "bitops",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "floor_log2" `Quick test_floor_log2;
          Alcotest.test_case "leading_ones" `Quick test_leading_ones;
          Alcotest.test_case "highest_zero_bit" `Quick test_highest_zero_bit;
          Alcotest.test_case "bit set/clear/test" `Quick test_bit_ops;
          Alcotest.test_case "trailing_zeros" `Quick test_trailing_zeros;
          Alcotest.test_case "field extraction" `Quick test_field_extraction;
          Alcotest.test_case "binary rendering" `Quick test_binary_string;
        ] );
      ( "properties",
        [
          prop_complement_involutive;
          prop_popcount_split;
          prop_leading_ones_bound;
          prop_splice_inverse;
          prop_floor_log2;
        ] );
    ]
