open Lesslog_id
module Cluster = Lesslog.Cluster
module File_store = Lesslog_storage.File_store

type outcome = {
  replicas_per_key : (string * int) list;
  total_replicas : int;
  iterations : int;
  balanced : bool;
  max_load : float;
}

let flows_of cluster catalog =
  List.map
    (fun (key, demand) ->
      let flow = Flow.create (Cluster.tree_of_key cluster key) (Cluster.status cluster) in
      (key, demand, flow))
    catalog

let loads_of cluster flows =
  let params = Cluster.params cluster in
  let total = Array.make (Params.space params) 0.0 in
  let by_key =
    List.map
      (fun (key, demand, flow) ->
        let loads =
          Flow.serve_rates flow ~holders:(fun p -> Cluster.holds cluster p ~key) ~demand
        in
        Array.iteri (fun i r -> total.(i) <- total.(i) +. r) loads.Flow.serve;
        (key, loads))
      flows
  in
  (total, by_key)

let aggregate_loads ~cluster ~catalog =
  fst (loads_of cluster (flows_of cluster catalog))

let per_key_loads ~cluster ~catalog ~at =
  let _, by_key = loads_of cluster (flows_of cluster catalog) in
  List.filter_map
    (fun (key, loads) ->
      let r = loads.Flow.serve.(Pid.to_int at) in
      if r > 0.0 then Some (key, r) else None)
    by_key
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let run ?max_steps ~rng ~cluster ~catalog ~capacity ~policy () =
  if capacity <= 0.0 then invalid_arg "Multi_balance.run: capacity";
  let params = Cluster.params cluster in
  let max_steps =
    match max_steps with Some s -> s | None -> 8 * Params.space params
  in
  let flows = flows_of cluster catalog in
  let created : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let iterations = ref 0 in
  let finished = ref false and balanced = ref false in
  let last_max = ref 0.0 in
  while not !finished do
    incr iterations;
    let total, by_key = loads_of cluster flows in
    last_max := Array.fold_left Float.max 0.0 total;
    if !iterations > max_steps then finished := true
    else begin
      (* Overloaded nodes, most loaded first. *)
      let overloaded =
        let acc = ref [] in
        Array.iteri
          (fun i r -> if r > capacity then acc := (i, r) :: !acc)
          total;
        List.sort (fun (_, a) (_, b) -> compare b a) !acc
      in
      match overloaded with
      | [] ->
          finished := true;
          balanced := true
      | _ ->
          (* For each overloaded node, try its files heaviest-first until
             some placement succeeds. *)
          let placed = ref false in
          let try_node (i, _) =
            if not !placed then begin
              let node = Pid.unsafe_of_int i in
              let files_here =
                List.filter_map
                  (fun (key, loads) ->
                    let r = loads.Flow.serve.(i) in
                    if r > 0.0 then Some (key, r) else None)
                  by_key
                |> List.sort (fun (_, a) (_, b) -> compare b a)
              in
              List.iter
                (fun (key, _) ->
                  if not !placed then begin
                    let demand =
                      match List.assoc_opt key catalog with
                      | Some d -> d
                      | None -> assert false
                    in
                    let flow =
                      let rec find = function
                        | [] -> assert false
                        | (k, _, f) :: rest -> if k = key then f else find rest
                      in
                      find flows
                    in
                    match
                      Policy.place policy ~rng ~cluster ~flow ~demand ~key
                        ~overloaded:node
                    with
                    | Some dest ->
                        let version =
                          Option.value ~default:0
                            (File_store.version (Cluster.store cluster node) ~key)
                        in
                        File_store.add (Cluster.store cluster dest) ~key
                          ~origin:File_store.Replicated ~version ~now:0.0;
                        Hashtbl.replace created key
                          (1 + Option.value ~default:0 (Hashtbl.find_opt created key));
                        placed := true
                    | None -> ()
                  end)
                files_here
            end
          in
          List.iter try_node overloaded;
          if not !placed then begin
            finished := true;
            balanced := false
          end
    end
  done;
  let replicas_per_key =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) created [] |> List.sort compare
  in
  {
    replicas_per_key;
    total_replicas = List.fold_left (fun acc (_, v) -> acc + v) 0 replicas_per_key;
    iterations = !iterations;
    balanced = !balanced;
    max_load = !last_max;
  }
