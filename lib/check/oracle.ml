open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Packed_bits = Lesslog_bits.Packed_bits
module Bitops = Lesslog_bits.Bitops
module Ptree = Lesslog_ptree.Ptree
module Topology = Lesslog_topology.Topology
module Subtrees = Lesslog_topology.Subtrees
module Cluster = Lesslog.Cluster
module Self_org = Lesslog.Self_org
module Trace = Lesslog_trace.Trace
module Obs = Lesslog_obs.Obs
module Des_sim = Lesslog_des.Des_sim

exception Violation of { oracle : string; at : float; detail : string }

let violation ~oracle ~at detail = raise (Violation { oracle; at; detail })

type t = {
  cluster : Cluster.t;
  sim : Schedule.sim;
  mutable now : float;
  mutable last_epoch : int;
  mutable last_count : int;
  mutable last_bits : Packed_bits.t;
  mutable heavy_checks : int;
  mutable events_seen : int;
}

let create cluster ~sim =
  let status = Cluster.status cluster in
  {
    cluster;
    sim;
    now = 0.0;
    last_epoch = Status_word.epoch status;
    last_count = Status_word.live_count status;
    last_bits = Packed_bits.copy (Status_word.live_bits status);
    heavy_checks = 0;
    events_seen = 0;
  }

let heavy_checks t = t.heavy_checks
let events_seen t = t.events_seen

(* --- Cheap oracle: epoch monotonicity (every event) -------------------- *)

let check_epoch t =
  let status = Cluster.status t.cluster in
  let epoch = Status_word.epoch status in
  if epoch < t.last_epoch then
    violation ~oracle:"epoch-monotonic" ~at:t.now
      (Printf.sprintf "epoch went backwards: %d -> %d" t.last_epoch epoch);
  if epoch = t.last_epoch then begin
    if
      Status_word.live_count status <> t.last_count
      || not (Packed_bits.equal (Status_word.live_bits status) t.last_bits)
    then
      violation ~oracle:"epoch-stale" ~at:t.now
        (Printf.sprintf "membership changed but epoch stayed at %d" epoch)
  end
  else begin
    t.last_epoch <- epoch;
    t.last_count <- Status_word.live_count status;
    t.last_bits <- Packed_bits.copy (Status_word.live_bits status)
  end

(* --- Heavy oracles (membership changes + end of run) -------------------- *)

(* Deterministic PID sample: a stride over the space plus every dead
   node (dead sets are small here, and they are exactly where the cached
   and naive scans can disagree). With a [tree] and b > 0, the stride
   runs per subtree instead of over the flat PID space — a flat
   space/16 stride can land every sample in one subtree once 2^b
   divides it, leaving the per-subtree scans (insertion targets,
   alive-ancestor climbs) of the other subtrees unexercised. *)
let sample_pids ?tree status =
  let params = Status_word.params status in
  let space = Params.space params in
  let base =
    match tree with
    | Some tree when Params.b params > 0 ->
        let nsub = Params.subtree_count params in
        let per = max 2 (16 / nsub) in
        List.concat_map
          (fun sid ->
            let members = Subtrees.members tree ~subtree_id:sid in
            let stride = max 1 (List.length members / per) in
            List.filteri (fun i _ -> i mod stride = 0) members)
          (List.init nsub Fun.id)
    | _ ->
        let stride = max 1 (space / 16) in
        let acc = ref [] in
        let i = ref (space - 1) in
        while !i >= 0 do
          acc := Pid.unsafe_of_int !i :: !acc;
          i := !i - stride
        done;
        !acc
  in
  let dead = Status_word.dead_pids status in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  base @ take 32 dead

let pid_opt = function None -> "-" | Some p -> string_of_int (Pid.to_int p)

let check_coherence t tree status samples =
  let fail query start expected got =
    violation ~oracle:"cache-coherence" ~at:t.now
      (Printf.sprintf "%s(start=%d) cached=%s naive=%s (root=%d)" query
         (Pid.to_int start) got expected
         (Pid.to_int (Ptree.root tree)))
  in
  let check_pid_opt query start naive cached =
    if naive <> cached then fail query start (pid_opt naive) (pid_opt cached)
  in
  check_pid_opt "max_live" (Ptree.root tree)
    (Topology.Naive.max_live tree status)
    (Topology.max_live tree status);
  check_pid_opt "insertion_target" (Ptree.root tree)
    (Topology.Naive.insertion_target tree status)
    (Topology.insertion_target tree status);
  List.iteri
    (fun i p ->
      check_pid_opt "find_live_node" p
        (Topology.Naive.find_live_node tree status ~start:p)
        (Topology.find_live_node tree status ~start:p);
      check_pid_opt "first_alive_ancestor" p
        (Topology.Naive.first_alive_ancestor tree status p)
        (Topology.first_alive_ancestor tree status p);
      check_pid_opt "route_next" p
        (Topology.Naive.route_next tree status p)
        (Topology.route_next tree status p);
      let naive_children = Topology.Naive.children_list tree status p in
      let cached_children = Topology.children_list tree status p in
      if not (List.equal Pid.equal naive_children cached_children) then
        fail "children_list" p
          (String.concat "," (List.map (fun p -> string_of_int (Pid.to_int p)) naive_children))
          (String.concat "," (List.map (fun p -> string_of_int (Pid.to_int p)) cached_children));
      if
        Topology.Naive.has_live_with_greater_vid tree status p
        <> Topology.has_live_with_greater_vid tree status p
      then
        fail "has_live_with_greater_vid" p
          (string_of_bool (Topology.Naive.has_live_with_greater_vid tree status p))
          (string_of_bool (Topology.has_live_with_greater_vid tree status p));
      (* The offspring fold over every live node is the one genuinely
         expensive naive query; two samples per check keep trials fast. *)
      if i < 2 then begin
        let naive = Topology.Naive.live_offspring_count tree status p in
        let cached = Topology.live_offspring_count tree status p in
        if naive <> cached then
          fail "live_offspring_count" p (string_of_int naive)
            (string_of_int cached)
      end)
    samples

let check_tree_properties t tree status samples =
  let params = Ptree.params tree in
  let m = Params.m params in
  let fail prop detail =
    violation ~oracle:"tree-properties" ~at:t.now
      (Printf.sprintf "%s: %s (root=%d)" prop detail
         (Pid.to_int (Ptree.root tree)))
  in
  let vid p = Vid.to_int (Ptree.vid_of_pid tree p) in
  List.iter
    (fun p ->
      (* P1/P4: the VID<->PID relabeling is an involution of the space. *)
      let v = Ptree.vid_of_pid tree p in
      if not (Pid.equal (Ptree.pid_of_vid tree v) p) then
        fail "vid-bijection"
          (Printf.sprintf "pid_of_vid(vid_of_pid %d) <> %d" (Pid.to_int p)
             (Pid.to_int p));
      (* P2: the parent sets the leftmost zero bit, so its VID is larger
         and the child count equals the number of leading one bits. *)
      (match Ptree.parent tree p with
      | None ->
          if not (Ptree.is_root tree p) then
            fail "parent" (Printf.sprintf "no parent for non-root %d" (Pid.to_int p))
      | Some q ->
          if vid q <= vid p then
            fail "parent-vid"
              (Printf.sprintf "vid(parent %d)=%d <= vid(%d)=%d" (Pid.to_int q)
                 (vid q) (Pid.to_int p) (vid p));
          if not (List.exists (Pid.equal p) (Ptree.children tree q)) then
            fail "parent-child" (Printf.sprintf "%d not a child of its parent" (Pid.to_int p)));
      (* P3: offspring count is 2^(leading ones) - 1, monotone in VID. *)
      let expected = (1 lsl Bitops.leading_ones ~width:m (vid p)) - 1 in
      if Ptree.offspring_count tree p <> expected then
        fail "offspring-count"
          (Printf.sprintf "offspring(%d) = %d, expected %d" (Pid.to_int p)
             (Ptree.offspring_count tree p) expected);
      (* Advanced-model children list: live only, strictly descending VID. *)
      let cl = Topology.Naive.children_list tree status p in
      List.iter
        (fun c ->
          if not (Status_word.is_live status c) then
            fail "children-live"
              (Printf.sprintf "dead node %d in children_list(%d)" (Pid.to_int c)
                 (Pid.to_int p)))
        cl;
      let rec descending = function
        | a :: (b :: _ as tl) -> vid a > vid b && descending tl
        | _ -> true
      in
      if not (descending cl) then
        fail "children-order"
          (Printf.sprintf "children_list(%d) not in descending VID order"
             (Pid.to_int p)))
    samples;
  (* Routing: from any live origin the path stays live, is bounded, and
     ends at the insertion target (the live node with the most offspring). *)
  let target = Topology.Naive.insertion_target tree status in
  List.iter
    (fun p ->
      if Status_word.is_live status p then begin
        let path = Topology.Naive.route_path tree status ~origin:p in
        if List.length path > m + 2 then
          fail "route-bounded"
            (Printf.sprintf "route from %d has %d hops (> m+2)" (Pid.to_int p)
               (List.length path));
        List.iter
          (fun q ->
            if not (Status_word.is_live status q) then
              fail "route-live"
                (Printf.sprintf "route from %d passes dead node %d"
                   (Pid.to_int p) (Pid.to_int q)))
          path;
        match (List.rev path, target) with
        | last :: _, Some g when not (Pid.equal last g) ->
            fail "route-terminus"
              (Printf.sprintf "route from %d ends at %d, insertion target is %d"
                 (Pid.to_int p) (Pid.to_int last) (Pid.to_int g))
        | _ -> ()
      end)
    samples

(* Replica availability (Des mode only: in Fault_sim the status word lags
   ground truth by design, so store/status relations are transient).
   Failures may legitimately lose or orphan keys (b = 0), so a reported
   integrity violation is only a bug when an inserted copy still exists
   somewhere; reachability is only demanded of keys whose inserted copy
   is in place. *)
let check_availability t status samples =
  let cluster = t.cluster in
  let violations = Self_org.integrity_violations cluster in
  List.iter
    (fun (key, target) ->
      let inserted =
        Cluster.total_copies cluster ~key - Cluster.replica_count cluster ~key
      in
      if inserted > 0 then
        violation ~oracle:"replica-availability" ~at:t.now
          (Printf.sprintf
             "key %S has %d inserted cop%s but none at expected target %d" key
             inserted
             (if inserted = 1 then "y" else "ies")
             (Pid.to_int target)))
    violations;
  List.iter
    (fun key ->
      if not (List.exists (fun (k, _) -> k = key) violations) then begin
        let tree = Cluster.tree_of_key cluster key in
        List.iter
          (fun p ->
            if Status_word.is_live status p then begin
              let path = Topology.Naive.route_path tree status ~origin:p in
              if not (List.exists (fun q -> Cluster.holds cluster q ~key) path)
              then
                violation ~oracle:"replica-availability" ~at:t.now
                  (Printf.sprintf
                     "live node %d cannot reach a copy of %S (path %s)"
                     (Pid.to_int p) key
                     (String.concat "->" (List.map (fun p -> string_of_int (Pid.to_int p)) path)))
            end)
          samples
      end)
    (Cluster.registered_keys cluster)

let heavy_check t =
  t.heavy_checks <- t.heavy_checks + 1;
  let status = Cluster.status t.cluster in
  List.iter
    (fun key ->
      let tree = Cluster.tree_of_key t.cluster key in
      let samples = sample_pids ~tree status in
      check_coherence t tree status samples;
      check_tree_properties t tree status samples)
    (Cluster.registered_keys t.cluster);
  match t.sim with
  | Schedule.Des -> check_availability t status (sample_pids status)
  | Schedule.Faults -> ()

(* --- Event hook --------------------------------------------------------- *)

let on_event t event =
  t.events_seen <- t.events_seen + 1;
  t.now <- Trace.Event.time event;
  check_epoch t;
  match event with
  | Trace.Event.Membership _ | Trace.Event.Suspect _ | Trace.Event.Trust _ ->
      (* The simulators emit membership/verdict events around status-word
         mutations, so these are the only points where the heavy state
         checks can catch something new. *)
      heavy_check t
  | _ -> ()

(* --- End of run --------------------------------------------------------- *)

(* Span accounting: a lookup span is emitted when the request *resolves
   at its origin* (fault detected, local serve, or reply arrival), while
   [served] is tallied at the server when the reply is sent — so replies
   still in flight at engine stop are served-but-spanless. The exact
   identities are therefore: faults and replicate spans are instant
   (counted the moment they are tallied), served lookup spans equal the
   latency histogram's population (both are recorded at reply arrival),
   and the total is bounded by the tallies. *)
let check_spans t ~(obs : Obs.t) ~(result : Des_sim.result) =
  let s = obs.Obs.spans in
  let fail detail = violation ~oracle:"span-consistency" ~at:t.now detail in
  if Obs.Span.open_spans s <> 0 then
    fail (Printf.sprintf "%d spans left open at end of run" (Obs.Span.open_spans s));
  if Obs.Span.retained s + Obs.Span.dropped s <> Obs.Span.completed s then
    fail
      (Printf.sprintf "retained %d + dropped %d <> completed %d"
         (Obs.Span.retained s) (Obs.Span.dropped s) (Obs.Span.completed s));
  let upper =
    result.Des_sim.served + result.Des_sim.faults
    + result.Des_sim.replicas_created
  in
  let lower = result.Des_sim.faults + result.Des_sim.replicas_created in
  if Obs.Span.completed s > upper then
    fail
      (Printf.sprintf "completed %d spans > served+faults+replicas = %d"
         (Obs.Span.completed s) upper);
  if Obs.Span.completed s < lower then
    fail
      (Printf.sprintf "completed %d spans < faults+replicas = %d"
         (Obs.Span.completed s) lower);
  let lookup_served = ref 0 and lookup_faults = ref 0 and replicates = ref 0 in
  Obs.Span.iter s (fun e ->
      (match e with
      | Trace.Event.Span { dur; _ } when dur < 0.0 ->
          fail (Printf.sprintf "negative span duration: %s" (Trace.Event.to_line e))
      | Trace.Event.Span { name = "lookup"; server = Some _; _ } ->
          incr lookup_served
      | Trace.Event.Span { name = "lookup"; server = None; _ } ->
          incr lookup_faults
      | Trace.Event.Span { name = "replicate"; _ } -> incr replicates
      | Trace.Event.Span { name; _ } ->
          fail (Printf.sprintf "unexpected span name %S" name)
      | e -> fail (Printf.sprintf "non-span event exported: %s" (Trace.Event.to_line e)));
      match Trace.Event.of_line (Trace.Event.to_line e) with
      | Ok e' when Trace.Event.equal e e' -> ()
      | Ok _ ->
          fail (Printf.sprintf "span did not round-trip: %s" (Trace.Event.to_line e))
      | Error msg -> fail (Printf.sprintf "span line does not parse: %s" msg));
  if Obs.Span.dropped s = 0 then begin
    if !replicates <> result.Des_sim.replicas_created then
      fail
        (Printf.sprintf "%d replicate spans, %d replicas created" !replicates
           result.Des_sim.replicas_created);
    if !lookup_faults <> result.Des_sim.faults then
      fail
        (Printf.sprintf "%d fault spans, %d faults tallied" !lookup_faults
           result.Des_sim.faults);
    let latency_population =
      Lesslog_metrics.Histogram.count result.Des_sim.latencies
    in
    if !lookup_served <> latency_population then
      fail
        (Printf.sprintf
           "%d served lookup spans, latency histogram holds %d samples"
           !lookup_served latency_population)
  end

let at_end ?obs ?result t ~now =
  t.now <- now;
  check_epoch t;
  heavy_check t;
  match (t.sim, obs, result) with
  | Schedule.Des, Some obs, Some result -> check_spans t ~obs ~result
  | _ -> ()
